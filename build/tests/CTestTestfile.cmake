# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_cip[1]_include.cmake")
include("/root/repo/build/tests/test_ug[1]_include.cmake")
include("/root/repo/build/tests/test_steiner[1]_include.cmake")
include("/root/repo/build/tests/test_sdp[1]_include.cmake")
include("/root/repo/build/tests/test_misdp[1]_include.cmake")
include("/root/repo/build/tests/test_ugcip[1]_include.cmake")
include("/root/repo/build/tests/test_cip_features[1]_include.cmake")
include("/root/repo/build/tests/test_stp_model[1]_include.cmake")
include("/root/repo/build/tests/test_variants[1]_include.cmake")
include("/root/repo/build/tests/test_lp_features[1]_include.cmake")
include("/root/repo/build/tests/test_ug_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_ug_faults[1]_include.cmake")
