file(REMOVE_RECURSE
  "CMakeFiles/test_ug.dir/test_ug.cpp.o"
  "CMakeFiles/test_ug.dir/test_ug.cpp.o.d"
  "test_ug"
  "test_ug.pdb"
  "test_ug[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
