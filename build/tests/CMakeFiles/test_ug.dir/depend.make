# Empty dependencies file for test_ug.
# This may be replaced when dependencies are built.
