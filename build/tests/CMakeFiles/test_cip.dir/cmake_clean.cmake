file(REMOVE_RECURSE
  "CMakeFiles/test_cip.dir/test_cip.cpp.o"
  "CMakeFiles/test_cip.dir/test_cip.cpp.o.d"
  "test_cip"
  "test_cip.pdb"
  "test_cip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
