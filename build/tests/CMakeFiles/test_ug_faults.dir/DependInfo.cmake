
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ug_faults.cpp" "tests/CMakeFiles/test_ug_faults.dir/test_ug_faults.cpp.o" "gcc" "tests/CMakeFiles/test_ug_faults.dir/test_ug_faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ugcip/CMakeFiles/ugcip.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/misdp/CMakeFiles/misdp.dir/DependInfo.cmake"
  "/root/repo/build/src/sdp/CMakeFiles/sdp.dir/DependInfo.cmake"
  "/root/repo/build/src/ug/CMakeFiles/ug.dir/DependInfo.cmake"
  "/root/repo/build/src/cip/CMakeFiles/cip.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
