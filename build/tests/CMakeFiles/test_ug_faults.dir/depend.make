# Empty dependencies file for test_ug_faults.
# This may be replaced when dependencies are built.
