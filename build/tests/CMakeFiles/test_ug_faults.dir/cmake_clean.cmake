file(REMOVE_RECURSE
  "CMakeFiles/test_ug_faults.dir/test_ug_faults.cpp.o"
  "CMakeFiles/test_ug_faults.dir/test_ug_faults.cpp.o.d"
  "test_ug_faults"
  "test_ug_faults.pdb"
  "test_ug_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ug_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
