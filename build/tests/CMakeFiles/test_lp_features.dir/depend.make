# Empty dependencies file for test_lp_features.
# This may be replaced when dependencies are built.
