file(REMOVE_RECURSE
  "CMakeFiles/test_lp_features.dir/test_lp_features.cpp.o"
  "CMakeFiles/test_lp_features.dir/test_lp_features.cpp.o.d"
  "test_lp_features"
  "test_lp_features.pdb"
  "test_lp_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
