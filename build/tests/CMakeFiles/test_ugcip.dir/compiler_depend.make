# Empty compiler generated dependencies file for test_ugcip.
# This may be replaced when dependencies are built.
