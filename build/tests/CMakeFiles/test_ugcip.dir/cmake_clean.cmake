file(REMOVE_RECURSE
  "CMakeFiles/test_ugcip.dir/test_ugcip.cpp.o"
  "CMakeFiles/test_ugcip.dir/test_ugcip.cpp.o.d"
  "test_ugcip"
  "test_ugcip.pdb"
  "test_ugcip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ugcip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
