# Empty dependencies file for test_cip_features.
# This may be replaced when dependencies are built.
