file(REMOVE_RECURSE
  "CMakeFiles/test_cip_features.dir/test_cip_features.cpp.o"
  "CMakeFiles/test_cip_features.dir/test_cip_features.cpp.o.d"
  "test_cip_features"
  "test_cip_features.pdb"
  "test_cip_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cip_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
