# Empty compiler generated dependencies file for test_misdp.
# This may be replaced when dependencies are built.
