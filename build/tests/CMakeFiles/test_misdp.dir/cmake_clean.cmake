file(REMOVE_RECURSE
  "CMakeFiles/test_misdp.dir/test_misdp.cpp.o"
  "CMakeFiles/test_misdp.dir/test_misdp.cpp.o.d"
  "test_misdp"
  "test_misdp.pdb"
  "test_misdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
