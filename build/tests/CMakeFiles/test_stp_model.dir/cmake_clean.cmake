file(REMOVE_RECURSE
  "CMakeFiles/test_stp_model.dir/test_stp_model.cpp.o"
  "CMakeFiles/test_stp_model.dir/test_stp_model.cpp.o.d"
  "test_stp_model"
  "test_stp_model.pdb"
  "test_stp_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
