# Empty compiler generated dependencies file for test_stp_model.
# This may be replaced when dependencies are built.
