file(REMOVE_RECURSE
  "CMakeFiles/test_ug_protocol.dir/test_ug_protocol.cpp.o"
  "CMakeFiles/test_ug_protocol.dir/test_ug_protocol.cpp.o.d"
  "test_ug_protocol"
  "test_ug_protocol.pdb"
  "test_ug_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ug_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
