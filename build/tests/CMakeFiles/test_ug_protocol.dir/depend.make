# Empty dependencies file for test_ug_protocol.
# This may be replaced when dependencies are built.
