# Empty dependencies file for misdp_hybrid.
# This may be replaced when dependencies are built.
