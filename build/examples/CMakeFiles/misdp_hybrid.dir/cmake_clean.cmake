file(REMOVE_RECURSE
  "CMakeFiles/misdp_hybrid.dir/misdp_hybrid.cpp.o"
  "CMakeFiles/misdp_hybrid.dir/misdp_hybrid.cpp.o.d"
  "misdp_hybrid"
  "misdp_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misdp_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
