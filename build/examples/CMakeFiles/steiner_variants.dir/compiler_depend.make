# Empty compiler generated dependencies file for steiner_variants.
# This may be replaced when dependencies are built.
