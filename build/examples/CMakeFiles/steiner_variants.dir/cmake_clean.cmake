file(REMOVE_RECURSE
  "CMakeFiles/steiner_variants.dir/steiner_variants.cpp.o"
  "CMakeFiles/steiner_variants.dir/steiner_variants.cpp.o.d"
  "steiner_variants"
  "steiner_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steiner_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
