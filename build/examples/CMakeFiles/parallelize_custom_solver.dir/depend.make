# Empty dependencies file for parallelize_custom_solver.
# This may be replaced when dependencies are built.
