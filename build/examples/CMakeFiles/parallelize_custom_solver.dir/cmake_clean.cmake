file(REMOVE_RECURSE
  "CMakeFiles/parallelize_custom_solver.dir/parallelize_custom_solver.cpp.o"
  "CMakeFiles/parallelize_custom_solver.dir/parallelize_custom_solver.cpp.o.d"
  "parallelize_custom_solver"
  "parallelize_custom_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelize_custom_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
