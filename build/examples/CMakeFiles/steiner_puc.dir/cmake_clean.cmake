file(REMOVE_RECURSE
  "CMakeFiles/steiner_puc.dir/steiner_puc.cpp.o"
  "CMakeFiles/steiner_puc.dir/steiner_puc.cpp.o.d"
  "steiner_puc"
  "steiner_puc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steiner_puc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
