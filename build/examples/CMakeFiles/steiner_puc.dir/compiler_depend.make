# Empty compiler generated dependencies file for steiner_puc.
# This may be replaced when dependencies are built.
