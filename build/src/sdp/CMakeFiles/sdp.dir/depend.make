# Empty dependencies file for sdp.
# This may be replaced when dependencies are built.
