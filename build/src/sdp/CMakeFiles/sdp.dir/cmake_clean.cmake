file(REMOVE_RECURSE
  "CMakeFiles/sdp.dir/ipm.cpp.o"
  "CMakeFiles/sdp.dir/ipm.cpp.o.d"
  "libsdp.a"
  "libsdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
