file(REMOVE_RECURSE
  "libsdp.a"
)
