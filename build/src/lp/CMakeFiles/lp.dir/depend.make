# Empty dependencies file for lp.
# This may be replaced when dependencies are built.
