file(REMOVE_RECURSE
  "liblp.a"
)
