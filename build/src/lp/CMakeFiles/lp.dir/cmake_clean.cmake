file(REMOVE_RECURSE
  "CMakeFiles/lp.dir/simplex.cpp.o"
  "CMakeFiles/lp.dir/simplex.cpp.o.d"
  "liblp.a"
  "liblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
