file(REMOVE_RECURSE
  "libugcip.a"
)
