file(REMOVE_RECURSE
  "CMakeFiles/ugcip.dir/cipbasesolver.cpp.o"
  "CMakeFiles/ugcip.dir/cipbasesolver.cpp.o.d"
  "CMakeFiles/ugcip.dir/misdp_plugins.cpp.o"
  "CMakeFiles/ugcip.dir/misdp_plugins.cpp.o.d"
  "CMakeFiles/ugcip.dir/stp_plugins.cpp.o"
  "CMakeFiles/ugcip.dir/stp_plugins.cpp.o.d"
  "libugcip.a"
  "libugcip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugcip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
