# Empty compiler generated dependencies file for ugcip.
# This may be replaced when dependencies are built.
