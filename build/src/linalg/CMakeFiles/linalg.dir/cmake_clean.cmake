file(REMOVE_RECURSE
  "CMakeFiles/linalg.dir/eigen.cpp.o"
  "CMakeFiles/linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/linalg.dir/factor.cpp.o"
  "CMakeFiles/linalg.dir/factor.cpp.o.d"
  "CMakeFiles/linalg.dir/matrix.cpp.o"
  "CMakeFiles/linalg.dir/matrix.cpp.o.d"
  "liblinalg.a"
  "liblinalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
