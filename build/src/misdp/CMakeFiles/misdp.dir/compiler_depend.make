# Empty compiler generated dependencies file for misdp.
# This may be replaced when dependencies are built.
