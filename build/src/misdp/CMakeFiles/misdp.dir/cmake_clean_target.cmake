file(REMOVE_RECURSE
  "libmisdp.a"
)
