
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/misdp/instances.cpp" "src/misdp/CMakeFiles/misdp.dir/instances.cpp.o" "gcc" "src/misdp/CMakeFiles/misdp.dir/instances.cpp.o.d"
  "/root/repo/src/misdp/io.cpp" "src/misdp/CMakeFiles/misdp.dir/io.cpp.o" "gcc" "src/misdp/CMakeFiles/misdp.dir/io.cpp.o.d"
  "/root/repo/src/misdp/plugins.cpp" "src/misdp/CMakeFiles/misdp.dir/plugins.cpp.o" "gcc" "src/misdp/CMakeFiles/misdp.dir/plugins.cpp.o.d"
  "/root/repo/src/misdp/solver.cpp" "src/misdp/CMakeFiles/misdp.dir/solver.cpp.o" "gcc" "src/misdp/CMakeFiles/misdp.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cip/CMakeFiles/cip.dir/DependInfo.cmake"
  "/root/repo/build/src/sdp/CMakeFiles/sdp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
