file(REMOVE_RECURSE
  "CMakeFiles/misdp.dir/instances.cpp.o"
  "CMakeFiles/misdp.dir/instances.cpp.o.d"
  "CMakeFiles/misdp.dir/io.cpp.o"
  "CMakeFiles/misdp.dir/io.cpp.o.d"
  "CMakeFiles/misdp.dir/plugins.cpp.o"
  "CMakeFiles/misdp.dir/plugins.cpp.o.d"
  "CMakeFiles/misdp.dir/solver.cpp.o"
  "CMakeFiles/misdp.dir/solver.cpp.o.d"
  "libmisdp.a"
  "libmisdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
