file(REMOVE_RECURSE
  "CMakeFiles/steiner.dir/dualascent.cpp.o"
  "CMakeFiles/steiner.dir/dualascent.cpp.o.d"
  "CMakeFiles/steiner.dir/exactdp.cpp.o"
  "CMakeFiles/steiner.dir/exactdp.cpp.o.d"
  "CMakeFiles/steiner.dir/graph.cpp.o"
  "CMakeFiles/steiner.dir/graph.cpp.o.d"
  "CMakeFiles/steiner.dir/heuristics.cpp.o"
  "CMakeFiles/steiner.dir/heuristics.cpp.o.d"
  "CMakeFiles/steiner.dir/instances.cpp.o"
  "CMakeFiles/steiner.dir/instances.cpp.o.d"
  "CMakeFiles/steiner.dir/maxflow.cpp.o"
  "CMakeFiles/steiner.dir/maxflow.cpp.o.d"
  "CMakeFiles/steiner.dir/plugins.cpp.o"
  "CMakeFiles/steiner.dir/plugins.cpp.o.d"
  "CMakeFiles/steiner.dir/reductions.cpp.o"
  "CMakeFiles/steiner.dir/reductions.cpp.o.d"
  "CMakeFiles/steiner.dir/shortest.cpp.o"
  "CMakeFiles/steiner.dir/shortest.cpp.o.d"
  "CMakeFiles/steiner.dir/stpmodel.cpp.o"
  "CMakeFiles/steiner.dir/stpmodel.cpp.o.d"
  "CMakeFiles/steiner.dir/stpsolver.cpp.o"
  "CMakeFiles/steiner.dir/stpsolver.cpp.o.d"
  "CMakeFiles/steiner.dir/variants.cpp.o"
  "CMakeFiles/steiner.dir/variants.cpp.o.d"
  "libsteiner.a"
  "libsteiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
