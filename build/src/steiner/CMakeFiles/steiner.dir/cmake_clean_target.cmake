file(REMOVE_RECURSE
  "libsteiner.a"
)
