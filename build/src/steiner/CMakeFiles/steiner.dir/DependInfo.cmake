
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/steiner/dualascent.cpp" "src/steiner/CMakeFiles/steiner.dir/dualascent.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/dualascent.cpp.o.d"
  "/root/repo/src/steiner/exactdp.cpp" "src/steiner/CMakeFiles/steiner.dir/exactdp.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/exactdp.cpp.o.d"
  "/root/repo/src/steiner/graph.cpp" "src/steiner/CMakeFiles/steiner.dir/graph.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/graph.cpp.o.d"
  "/root/repo/src/steiner/heuristics.cpp" "src/steiner/CMakeFiles/steiner.dir/heuristics.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/heuristics.cpp.o.d"
  "/root/repo/src/steiner/instances.cpp" "src/steiner/CMakeFiles/steiner.dir/instances.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/instances.cpp.o.d"
  "/root/repo/src/steiner/maxflow.cpp" "src/steiner/CMakeFiles/steiner.dir/maxflow.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/maxflow.cpp.o.d"
  "/root/repo/src/steiner/plugins.cpp" "src/steiner/CMakeFiles/steiner.dir/plugins.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/plugins.cpp.o.d"
  "/root/repo/src/steiner/reductions.cpp" "src/steiner/CMakeFiles/steiner.dir/reductions.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/reductions.cpp.o.d"
  "/root/repo/src/steiner/shortest.cpp" "src/steiner/CMakeFiles/steiner.dir/shortest.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/shortest.cpp.o.d"
  "/root/repo/src/steiner/stpmodel.cpp" "src/steiner/CMakeFiles/steiner.dir/stpmodel.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/stpmodel.cpp.o.d"
  "/root/repo/src/steiner/stpsolver.cpp" "src/steiner/CMakeFiles/steiner.dir/stpsolver.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/stpsolver.cpp.o.d"
  "/root/repo/src/steiner/variants.cpp" "src/steiner/CMakeFiles/steiner.dir/variants.cpp.o" "gcc" "src/steiner/CMakeFiles/steiner.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cip/CMakeFiles/cip.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
