# Empty dependencies file for steiner.
# This may be replaced when dependencies are built.
