
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ug/checkpoint.cpp" "src/ug/CMakeFiles/ug.dir/checkpoint.cpp.o" "gcc" "src/ug/CMakeFiles/ug.dir/checkpoint.cpp.o.d"
  "/root/repo/src/ug/faultycomm.cpp" "src/ug/CMakeFiles/ug.dir/faultycomm.cpp.o" "gcc" "src/ug/CMakeFiles/ug.dir/faultycomm.cpp.o.d"
  "/root/repo/src/ug/loadcoordinator.cpp" "src/ug/CMakeFiles/ug.dir/loadcoordinator.cpp.o" "gcc" "src/ug/CMakeFiles/ug.dir/loadcoordinator.cpp.o.d"
  "/root/repo/src/ug/parasolver.cpp" "src/ug/CMakeFiles/ug.dir/parasolver.cpp.o" "gcc" "src/ug/CMakeFiles/ug.dir/parasolver.cpp.o.d"
  "/root/repo/src/ug/racing.cpp" "src/ug/CMakeFiles/ug.dir/racing.cpp.o" "gcc" "src/ug/CMakeFiles/ug.dir/racing.cpp.o.d"
  "/root/repo/src/ug/simengine.cpp" "src/ug/CMakeFiles/ug.dir/simengine.cpp.o" "gcc" "src/ug/CMakeFiles/ug.dir/simengine.cpp.o.d"
  "/root/repo/src/ug/threadengine.cpp" "src/ug/CMakeFiles/ug.dir/threadengine.cpp.o" "gcc" "src/ug/CMakeFiles/ug.dir/threadengine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cip/CMakeFiles/cip.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
