file(REMOVE_RECURSE
  "CMakeFiles/ug.dir/checkpoint.cpp.o"
  "CMakeFiles/ug.dir/checkpoint.cpp.o.d"
  "CMakeFiles/ug.dir/faultycomm.cpp.o"
  "CMakeFiles/ug.dir/faultycomm.cpp.o.d"
  "CMakeFiles/ug.dir/loadcoordinator.cpp.o"
  "CMakeFiles/ug.dir/loadcoordinator.cpp.o.d"
  "CMakeFiles/ug.dir/parasolver.cpp.o"
  "CMakeFiles/ug.dir/parasolver.cpp.o.d"
  "CMakeFiles/ug.dir/racing.cpp.o"
  "CMakeFiles/ug.dir/racing.cpp.o.d"
  "CMakeFiles/ug.dir/simengine.cpp.o"
  "CMakeFiles/ug.dir/simengine.cpp.o.d"
  "CMakeFiles/ug.dir/threadengine.cpp.o"
  "CMakeFiles/ug.dir/threadengine.cpp.o.d"
  "libug.a"
  "libug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
