# Empty dependencies file for ug.
# This may be replaced when dependencies are built.
