file(REMOVE_RECURSE
  "libug.a"
)
