file(REMOVE_RECURSE
  "libcip.a"
)
