
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cip/params.cpp" "src/cip/CMakeFiles/cip.dir/params.cpp.o" "gcc" "src/cip/CMakeFiles/cip.dir/params.cpp.o.d"
  "/root/repo/src/cip/solver.cpp" "src/cip/CMakeFiles/cip.dir/solver.cpp.o" "gcc" "src/cip/CMakeFiles/cip.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
