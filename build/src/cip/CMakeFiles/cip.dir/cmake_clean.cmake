file(REMOVE_RECURSE
  "CMakeFiles/cip.dir/params.cpp.o"
  "CMakeFiles/cip.dir/params.cpp.o.d"
  "CMakeFiles/cip.dir/solver.cpp.o"
  "CMakeFiles/cip.dir/solver.cpp.o.d"
  "libcip.a"
  "libcip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
