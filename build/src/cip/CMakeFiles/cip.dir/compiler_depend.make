# Empty compiler generated dependencies file for cip.
# This may be replaced when dependencies are built.
