# Empty compiler generated dependencies file for table2_bip_restart.
# This may be replaced when dependencies are built.
