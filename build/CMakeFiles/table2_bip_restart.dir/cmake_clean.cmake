file(REMOVE_RECURSE
  "CMakeFiles/table2_bip_restart.dir/bench/table2_bip_restart.cpp.o"
  "CMakeFiles/table2_bip_restart.dir/bench/table2_bip_restart.cpp.o.d"
  "bench/table2_bip_restart"
  "bench/table2_bip_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bip_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
