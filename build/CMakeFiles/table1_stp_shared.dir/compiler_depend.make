# Empty compiler generated dependencies file for table1_stp_shared.
# This may be replaced when dependencies are built.
