file(REMOVE_RECURSE
  "CMakeFiles/table1_stp_shared.dir/bench/table1_stp_shared.cpp.o"
  "CMakeFiles/table1_stp_shared.dir/bench/table1_stp_shared.cpp.o.d"
  "bench/table1_stp_shared"
  "bench/table1_stp_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_stp_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
