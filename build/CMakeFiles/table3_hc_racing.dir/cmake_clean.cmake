file(REMOVE_RECURSE
  "CMakeFiles/table3_hc_racing.dir/bench/table3_hc_racing.cpp.o"
  "CMakeFiles/table3_hc_racing.dir/bench/table3_hc_racing.cpp.o.d"
  "bench/table3_hc_racing"
  "bench/table3_hc_racing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hc_racing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
