# Empty compiler generated dependencies file for table3_hc_racing.
# This may be replaced when dependencies are built.
