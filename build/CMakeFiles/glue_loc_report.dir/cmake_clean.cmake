file(REMOVE_RECURSE
  "CMakeFiles/glue_loc_report.dir/bench/glue_loc_report.cpp.o"
  "CMakeFiles/glue_loc_report.dir/bench/glue_loc_report.cpp.o.d"
  "bench/glue_loc_report"
  "bench/glue_loc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glue_loc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
