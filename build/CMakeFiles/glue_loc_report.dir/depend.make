# Empty dependencies file for glue_loc_report.
# This may be replaced when dependencies are built.
