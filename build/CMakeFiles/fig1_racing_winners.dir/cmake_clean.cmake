file(REMOVE_RECURSE
  "CMakeFiles/fig1_racing_winners.dir/bench/fig1_racing_winners.cpp.o"
  "CMakeFiles/fig1_racing_winners.dir/bench/fig1_racing_winners.cpp.o.d"
  "bench/fig1_racing_winners"
  "bench/fig1_racing_winners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_racing_winners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
