# Empty dependencies file for fig1_racing_winners.
# This may be replaced when dependencies are built.
