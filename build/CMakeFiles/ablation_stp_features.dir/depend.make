# Empty dependencies file for ablation_stp_features.
# This may be replaced when dependencies are built.
