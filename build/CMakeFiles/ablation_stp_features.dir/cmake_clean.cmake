file(REMOVE_RECURSE
  "CMakeFiles/ablation_stp_features.dir/bench/ablation_stp_features.cpp.o"
  "CMakeFiles/ablation_stp_features.dir/bench/ablation_stp_features.cpp.o.d"
  "bench/ablation_stp_features"
  "bench/ablation_stp_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stp_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
