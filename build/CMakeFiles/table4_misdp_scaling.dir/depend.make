# Empty dependencies file for table4_misdp_scaling.
# This may be replaced when dependencies are built.
