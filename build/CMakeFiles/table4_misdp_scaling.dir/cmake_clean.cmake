file(REMOVE_RECURSE
  "CMakeFiles/table4_misdp_scaling.dir/bench/table4_misdp_scaling.cpp.o"
  "CMakeFiles/table4_misdp_scaling.dir/bench/table4_misdp_scaling.cpp.o.d"
  "bench/table4_misdp_scaling"
  "bench/table4_misdp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_misdp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
