file(REMOVE_RECURSE
  "CMakeFiles/ablation_misdp_modes.dir/bench/ablation_misdp_modes.cpp.o"
  "CMakeFiles/ablation_misdp_modes.dir/bench/ablation_misdp_modes.cpp.o.d"
  "bench/ablation_misdp_modes"
  "bench/ablation_misdp_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_misdp_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
