# Empty compiler generated dependencies file for ablation_misdp_modes.
# This may be replaced when dependencies are built.
