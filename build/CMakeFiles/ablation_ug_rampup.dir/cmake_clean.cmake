file(REMOVE_RECURSE
  "CMakeFiles/ablation_ug_rampup.dir/bench/ablation_ug_rampup.cpp.o"
  "CMakeFiles/ablation_ug_rampup.dir/bench/ablation_ug_rampup.cpp.o.d"
  "bench/ablation_ug_rampup"
  "bench/ablation_ug_rampup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ug_rampup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
