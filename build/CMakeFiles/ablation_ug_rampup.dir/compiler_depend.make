# Empty compiler generated dependencies file for ablation_ug_rampup.
# This may be replaced when dependencies are built.
