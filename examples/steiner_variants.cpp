// Steiner problem variants through the same branch-and-cut machinery — the
// versatility that made SCIP-Jack "by far the most versatile solver" at the
// DIMACS Challenge. One random base graph, four problem flavors.
//
//   ./examples/steiner_variants
#include <cstdio>

#include "steiner/instances.hpp"
#include "steiner/variants.hpp"

int main() {
    steiner::Graph base = steiner::genGeometric(14, 0, 0.55, 5);
    std::printf("base graph: %d vertices, %d edges\n\n", base.numVertices(),
                base.numActiveEdges());

    {
        steiner::PrizeCollectingProblem prob;
        prob.graph = base;
        prob.prize.assign(base.numVertices(), 0.0);
        for (int v = 1; v < base.numVertices(); v += 2)
            prob.prize[v] = 0.35;
        prob.root = 0;
        steiner::SapInstance inst = steiner::buildPrizeCollectingSap(prob);
        steiner::SteinerResult res = steiner::solveVariant(inst);
        std::printf("RPCSTP  (rooted prize-collecting): status=%s "
                    "objective=%.4f nodes=%lld\n",
                    cip::toString(res.status), res.cost,
                    static_cast<long long>(res.stats.nodesProcessed));
    }
    {
        steiner::NodeWeightedProblem prob;
        prob.graph = base;
        prob.graph.setTerminal(0, true);
        prob.graph.setTerminal(7, true);
        prob.graph.setTerminal(13, true);
        prob.nodeCost.assign(base.numVertices(), 0.12);
        steiner::SapInstance inst = steiner::buildNodeWeightedSap(prob);
        steiner::SteinerResult res = steiner::solveVariant(inst);
        std::printf("NWSTP   (node-weighted):            status=%s "
                    "objective=%.4f nodes=%lld\n",
                    cip::toString(res.status), res.cost,
                    static_cast<long long>(res.stats.nodesProcessed));
    }
    {
        steiner::DegreeConstrainedProblem prob;
        prob.graph = base;
        prob.graph.setTerminal(0, true);
        prob.graph.setTerminal(7, true);
        prob.graph.setTerminal(13, true);
        prob.maxDegree.assign(base.numVertices(), 2);
        steiner::SapInstance inst = steiner::buildDegreeConstrainedSap(prob);
        steiner::SteinerResult res = steiner::solveVariant(inst);
        std::printf("DCSTP   (degree-constrained):       status=%s "
                    "objective=%.4f nodes=%lld\n",
                    cip::toString(res.status), res.cost,
                    static_cast<long long>(res.stats.nodesProcessed));
    }
    {
        steiner::GroupSteinerProblem prob;
        prob.graph = base;
        prob.groups = {{0, 1, 2}, {6, 7}, {12, 13}};
        steiner::SapInstance inst = steiner::buildGroupSteinerSap(prob);
        steiner::SteinerResult res = steiner::solveVariant(inst);
        std::printf("GSTP    (group Steiner):            status=%s "
                    "objective=%.4f nodes=%lld\n",
                    cip::toString(res.status), res.cost,
                    static_cast<long long>(res.stats.nodesProcessed));
    }
    return 0;
}
