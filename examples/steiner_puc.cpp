// Solve a Steiner tree instance: either a SteinLib .stp file given on the
// command line (real PUC files work unchanged) or a generated PUC-family
// instance. Runs reductions, sequential branch-and-cut, and the parallel
// solver ug[CIP-Jack, Sim].
//
//   ./examples/steiner_puc [file.stp]
#include <cstdio>

#include "steiner/instances.hpp"
#include "steiner/stpsolver.hpp"
#include "ugcip/stp_plugins.hpp"

int main(int argc, char** argv) {
    steiner::Graph g;
    if (argc > 1) {
        auto loaded = steiner::readStpFile(argv[1]);
        if (!loaded) {
            std::fprintf(stderr, "cannot read %s\n", argv[1]);
            return 1;
        }
        g = std::move(*loaded);
        std::printf("loaded %s: %d vertices, %d edges, %d terminals\n",
                    argv[1], g.numVertices(), g.numActiveEdges(),
                    g.numTerminals());
    } else {
        g = steiner::genBipartite(12, 28, 3, /*perturbedCosts=*/true, 48);
        std::printf("generated %s: %d vertices, %d edges, %d terminals\n",
                    g.name.c_str(), g.numVertices(), g.numActiveEdges(),
                    g.numTerminals());
    }

    steiner::SteinerSolver solver(g);
    solver.presolve();
    const auto& red = solver.reductionStats();
    std::printf("presolve: %lld edges deleted (%lld extended), "
                "%lld vertices removed, fixed cost %g\n",
                red.edgesDeleted, red.extendedDeletions, red.verticesRemoved,
                red.fixedCost);
    std::printf("reduced: %d vertices, %d edges, %d terminals; "
                "dual ascent bound %.2f\n",
                solver.instance().graph.numActiveVertices(),
                solver.instance().graph.numActiveEdges(),
                solver.instance().graph.numTerminals(),
                solver.instance().dualAscentBound);

    steiner::SteinerResult seq = solver.solve();
    std::printf("sequential: status=%s cost=%g nodes=%lld cuts=%lld\n",
                cip::toString(seq.status), seq.cost,
                static_cast<long long>(seq.stats.nodesProcessed),
                static_cast<long long>(seq.stats.cutsAdded));

    if (!solver.instance().trivial()) {
        ug::UgConfig cfg;
        cfg.numSolvers = 8;
        cfg.logInterval = 0.05;  // UG-style coordinator status lines
        ug::UgResult res = ugcip::solveSteinerParallel(solver.instance(), cfg,
                                                       /*simulated=*/true);
        steiner::SteinerResult par = ugcip::toSteinerResult(solver, res);
        std::printf(
            "ug[CIP-Jack,Sim] x%d: status=%s cost=%g sim-time=%.3fs "
            "idle=%.1f%% maxActive=%d transferred=%lld\n",
            cfg.numSolvers, ug::toString(res.status), par.cost, res.elapsed,
            100.0 * res.stats.idleRatio, res.stats.maxActiveSolvers,
            res.stats.transferredNodes);
        if (seq.status == cip::Status::Optimal &&
            std::abs(par.cost - seq.cost) > 1e-6) {
            std::fprintf(stderr, "MISMATCH between sequential and parallel!\n");
            return 1;
        }
    }
    return 0;
}
