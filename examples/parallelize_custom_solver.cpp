// The paper's actual pitch, demonstrated end to end: take a *customized*
// CIP solver — here a knapsack-with-conflicts application built from two
// user plugins — and parallelize it by writing one small CipUserPlugins
// subclass (the analogue of the <200-line stp_plugins.cpp/misdp_plugins.cpp
// glue files). Nothing about the parallelization is application-specific.
//
//   ./examples/parallelize_custom_solver
#include <cstdio>
#include <random>

#include "ugcip/ugcip.hpp"

namespace {

// ---- the "customized solver": an application built from user plugins -----

/// Conflict constraints x_a + x_b <= 1, enforced lazily.
class ConflictHandler : public cip::ConstraintHandler {
public:
    explicit ConflictHandler(std::vector<std::pair<int, int>> pairs)
        : ConstraintHandler("conflict", 0), pairs_(std::move(pairs)) {}

    bool check(cip::Solver&, const std::vector<double>& x) override {
        for (auto [a, b] : pairs_)
            if (x[a] + x[b] > 1.0 + 1e-6) return false;
        return true;
    }
    int separate(cip::Solver& solver, const std::vector<double>& x) override {
        int cuts = 0;
        for (auto [a, b] : pairs_)
            if (x[a] + x[b] > 1.0 + 1e-6) {
                solver.addCut(
                    cip::Row({{a, 1.0}, {b, 1.0}}, -cip::kInf, 1.0));
                ++cuts;
            }
        return cuts;
    }
    int enforce(cip::Solver& solver, const std::vector<double>& x,
                cip::BranchDecision&) override {
        return separate(solver, x);
    }

private:
    std::vector<std::pair<int, int>> pairs_;
};

/// Greedy repair heuristic for the application.
class GreedyConflictFree : public cip::Heuristic {
public:
    GreedyConflictFree(std::vector<std::pair<int, int>> pairs,
                       std::vector<double> weight, double cap)
        : Heuristic("greedy", 0),
          pairs_(std::move(pairs)),
          weight_(std::move(weight)),
          cap_(cap) {}

    std::optional<cip::Solution> run(cip::Solver& solver,
                                     const std::vector<double>& x) override {
        const int n = solver.model().numVars();
        std::vector<int> order(n);
        for (int j = 0; j < n; ++j) order[j] = j;
        std::sort(order.begin(), order.end(),
                  [&](int a, int b) { return x[a] > x[b]; });
        cip::Solution s;
        s.x.assign(n, 0.0);
        double used = 0.0;
        for (int j : order) {
            if (used + weight_[j] > cap_) continue;
            bool conflict = false;
            for (auto [a, b] : pairs_)
                if ((a == j && s.x[b] > 0.5) || (b == j && s.x[a] > 0.5))
                    conflict = true;
            if (conflict) continue;
            s.x[j] = 1.0;
            used += weight_[j];
        }
        return s;
    }

private:
    std::vector<std::pair<int, int>> pairs_;
    std::vector<double> weight_;
    double cap_;
};

// ---- the glue: this is ALL a user writes to go parallel -------------------

class MyUserPlugins : public ugcip::CipUserPlugins {
public:
    MyUserPlugins(std::vector<std::pair<int, int>> pairs,
                  std::vector<double> weight, double cap)
        : pairs_(std::move(pairs)), weight_(std::move(weight)), cap_(cap) {}

    void installPlugins(cip::Solver& solver) override {
        solver.addConstraintHandler(
            std::make_unique<ConflictHandler>(pairs_));
        solver.addHeuristic(
            std::make_unique<GreedyConflictFree>(pairs_, weight_, cap_));
    }

private:
    std::vector<std::pair<int, int>> pairs_;
    std::vector<double> weight_;
    double cap_;
};

}  // namespace

int main() {
    // Random knapsack-with-conflicts instance.
    std::mt19937 rng(2024);
    const int n = 24;
    std::uniform_int_distribution<int> wdist(8, 30);
    std::vector<double> value(n), weight(n);
    double total = 0;
    for (int j = 0; j < n; ++j) {
        weight[j] = wdist(rng);
        value[j] = weight[j] + (j % 4);
        total += weight[j];
    }
    std::vector<std::pair<int, int>> pairs;
    std::uniform_int_distribution<int> pick(0, n - 1);
    for (int c = 0; c < n; ++c) {
        int a = pick(rng), b = pick(rng);
        if (a != b) pairs.emplace_back(std::min(a, b), std::max(a, b));
    }
    const double cap = total / 2.5;

    cip::Model model;
    std::vector<std::pair<int, double>> coefs;
    for (int j = 0; j < n; ++j) {
        model.addVar(-value[j], 0.0, 1.0, true);
        coefs.emplace_back(j, weight[j]);
    }
    model.addLinear(cip::Row(std::move(coefs), -cip::kInf, cap));

    // Sequential customized solver.
    MyUserPlugins plugins(pairs, weight, cap);
    cip::Solver seq;
    seq.setModel(model);
    plugins.installPlugins(seq);
    seq.solve();
    std::printf("sequential custom solver: obj=%g nodes=%lld\n",
                -seq.incumbent().obj,
                static_cast<long long>(seq.stats().nodesProcessed));

    // Parallel, via the glue object — identical plugins everywhere.
    for (int solvers : {2, 4, 8}) {
        ug::UgConfig cfg;
        cfg.numSolvers = solvers;
        ug::UgResult res =
            ugcip::solveSimulated([&] { return model; }, cfg, &plugins);
        std::printf(
            "ug[custom,Sim] x%d: status=%s obj=%g sim-time=%.4fs nodes=%lld\n",
            solvers, ug::toString(res.status), -res.best.obj, res.elapsed,
            res.stats.totalNodesProcessed);
        if (res.best.obj != seq.incumbent().obj) {
            std::fprintf(stderr, "objective mismatch!\n");
            return 1;
        }
    }
    return 0;
}
