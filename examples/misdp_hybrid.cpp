// Solve a mixed-integer semidefinite program three ways: LP-based
// eigenvector cuts, SDP-based nonlinear branch-and-bound, and the parallel
// racing *hybrid* ug[CIP-SDP, Sim] that races both relaxations and keeps
// whichever wins (paper section 3.2).
//
//   ./examples/misdp_hybrid [ttd|cls|mkp]
#include <cstdio>
#include <cstring>

#include "misdp/instances.hpp"
#include "misdp/solver.hpp"
#include "ugcip/misdp_plugins.hpp"

int main(int argc, char** argv) {
    const char* family = argc > 1 ? argv[1] : "cls";
    misdp::MisdpProblem prob;
    if (std::strcmp(family, "ttd") == 0)
        prob = misdp::genTrussTopology(3, 2, 1.8, 11);
    else if (std::strcmp(family, "mkp") == 0)
        prob = misdp::genMinKPartition(6, 3, 11);
    else
        prob = misdp::genCardinalityLS(4, 6, 2, 11);
    std::printf("instance %s (%s): %d vars, %zu SDP block(s), %zu linear rows\n",
                prob.name.c_str(), prob.family.c_str(), prob.numVars,
                prob.blocks.size(), prob.linearRows.size());

    misdp::MisdpSolver solver(prob);
    for (const char* mode : {"lp", "sdp"}) {
        cip::ParamSet params;
        params.setString("misdp/solvemode", mode);
        misdp::MisdpResult r = solver.solve(params);
        std::printf("%s-based:  status=%s objective=%.6f nodes=%lld "
                    "cuts=%lld cost=%lld\n",
                    mode, cip::toString(r.status), r.objective,
                    static_cast<long long>(r.stats.nodesProcessed),
                    static_cast<long long>(r.stats.cutsAdded),
                    static_cast<long long>(r.stats.totalCost));
    }

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    cfg.racingOpenNodesLimit = 10;
    cfg.racingTimeLimit = 0.5;
    ug::UgResult res = ugcip::solveMisdpParallel(prob, cfg, /*simulated=*/true);
    misdp::MisdpResult pr = ugcip::toMisdpResult(res);
    std::printf("ug[CIP-SDP,Sim] x%d racing hybrid: status=%s "
                "objective=%.6f sim-time=%.3fs winner-setting=%d (%s)\n",
                cfg.numSolvers, ug::toString(res.status), pr.objective,
                res.elapsed, res.stats.racingWinnerSetting + 1,
                res.stats.racingWinnerSetting < 0
                    ? "solved during racing"
                    : (res.stats.racingWinnerSetting % 2 == 0 ? "SDP-based"
                                                              : "LP-based"));
    return res.status == ug::UgStatus::Optimal ? 0 : 1;
}
