// Quickstart: build and solve a small mixed-integer program with the CIP
// framework, then solve the same model in parallel with ug[CIP, Sim].
//
//   ./examples/quickstart
#include <cstdio>

#include "cip/model.hpp"
#include "cip/solver.hpp"
#include "ugcip/ugcip.hpp"

int main() {
    // A tiny production-planning MIP:
    //   max 5 x0 + 4 x1 + 7 x2        (CIP minimizes, so negate)
    //   s.t. 2 x0 + 3 x1 + 4 x2 <= 10   (machine hours)
    //        1 x0 + 2 x1 + 3 x2 <= 7    (raw material)
    //        x integer in [0, 4]
    cip::Model model;
    model.addVar(-5.0, 0.0, 4.0, true, "x0");
    model.addVar(-4.0, 0.0, 4.0, true, "x1");
    model.addVar(-7.0, 0.0, 4.0, true, "x2");
    model.addLinear(cip::Row({{0, 2.0}, {1, 3.0}, {2, 4.0}}, -cip::kInf, 10.0));
    model.addLinear(cip::Row({{0, 1.0}, {1, 2.0}, {2, 3.0}}, -cip::kInf, 7.0));

    cip::Solver solver;
    solver.setModel(model);
    const cip::Status status = solver.solve();
    std::printf("sequential: status=%s objective=%g (max sense: %g)\n",
                cip::toString(status), solver.incumbent().obj,
                -solver.incumbent().obj);
    std::printf("  plan: x0=%.0f x1=%.0f x2=%.0f, nodes=%lld\n",
                solver.incumbent().x[0], solver.incumbent().x[1],
                solver.incumbent().x[2],
                static_cast<long long>(solver.stats().nodesProcessed));

    // The same model through the UG layer (deterministic simulated
    // parallelism; swap in solveWithThreads for real threads).
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    ug::UgResult res = ugcip::solveSimulated([&] { return model; }, cfg);
    std::printf("ug[CIP,Sim] x%d: status=%s objective=%g elapsed=%.4fs(sim)\n",
                cfg.numSolvers, ug::toString(res.status), res.best.obj,
                res.elapsed);
    return status == cip::Status::Optimal &&
                   res.status == ug::UgStatus::Optimal
               ? 0
               : 1;
}
