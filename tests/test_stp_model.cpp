// Second Steiner test pass: the SAP model builder, solution mapping, dual
// ascent rows as valid inequalities, the cut constraint handler in
// isolation, and the in-tree reduction propagator.
#include <gtest/gtest.h>

#include "steiner/exactdp.hpp"
#include "steiner/heuristics.hpp"
#include "steiner/instances.hpp"
#include "steiner/plugins.hpp"
#include "steiner/shortest.hpp"
#include "steiner/stpmodel.hpp"
#include "steiner/stpsolver.hpp"

using namespace steiner;

namespace {

Graph starInstance() {
    Graph g(4);
    g.addEdge(0, 1, 1.0);
    g.addEdge(0, 2, 1.0);
    g.addEdge(0, 3, 1.0);
    g.addEdge(1, 2, 2.5);
    g.addEdge(2, 3, 2.5);
    g.setTerminal(1, true);
    g.setTerminal(2, true);
    g.setTerminal(3, true);
    return g;
}

SapInstance buildFor(const Graph& g) {
    Graph copy = g;
    ReductionStats none;  // model the raw graph (no presolve)
    return buildSapInstance(std::move(copy), none);
}

}  // namespace

TEST(StpModel, VariableCountSkipsRootInArcs) {
    Graph g = starInstance();
    SapInstance inst = buildFor(g);
    // 5 edges -> 10 arcs, minus arcs entering the root terminal (vertex 1
    // has degree 2 -> 2 arcs removed).
    EXPECT_EQ(inst.root, 1);
    EXPECT_EQ(inst.model.numVars(), 8);
}

TEST(StpModel, TreeSolutionRoundtrip) {
    Graph g = starInstance();
    SapInstance inst = buildFor(g);
    const std::vector<int> tree{0, 1, 2};  // the three spokes
    std::vector<double> x = treeToModelSolution(inst, tree);
    // Exactly |tree| arcs set.
    double sum = 0;
    for (double v : x) sum += v;
    EXPECT_NEAR(sum, 3.0, 1e-12);
    std::vector<int> back = modelSolutionToTree(inst, x);
    std::sort(back.begin(), back.end());
    EXPECT_EQ(back, tree);
}

TEST(StpModel, TreeSolutionSatisfiesModelRows) {
    Graph g = genHypercube(4, true, 3);
    SapInstance inst = buildFor(g);
    HeuristicSolution heur = primalHeuristic(inst.graph);
    ASSERT_TRUE(heur.valid());
    std::vector<double> x = treeToModelSolution(inst, heur.edges);
    for (int i = 0; i < inst.model.numRows(); ++i) {
        const cip::Row& r = inst.model.row(i);
        const double a = r.activity(x);
        EXPECT_GE(a, r.lhs - 1e-9) << "row " << i;
        EXPECT_LE(a, r.rhs + 1e-9) << "row " << i;
    }
}

TEST(StpModel, FixedEdgesEnterOriginalMapping) {
    // Chain forcing contractions: 0(T)-1-2(T); optimum fully fixed.
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 2.0);
    g.setTerminal(0, true);
    g.setTerminal(2, true);
    Graph reduced = g;
    ReductionStats red = presolve(reduced);
    SapInstance inst = buildSapInstance(std::move(reduced), red);
    EXPECT_TRUE(inst.trivial());
    EXPECT_NEAR(inst.fixedCost, 3.0, 1e-9);
    std::vector<int> edges = toOriginalEdges(inst, {});
    EXPECT_EQ(edges.size(), 2u);
}

TEST(StpModel, DualAscentRowsAreValidForOptimalTree) {
    // Every dual-ascent cut row must be satisfied by an optimal solution.
    Graph g = genHypercube(4, true, 7);
    SapInstance inst = buildFor(g);
    SteinerSolver solver(g);
    SteinerResult res = solver.solve();
    ASSERT_EQ(res.status, cip::Status::Optimal);
    // Map the optimal original-edge set back onto the raw-model instance.
    std::vector<int> tree;
    for (int e : res.originalEdges) tree.push_back(e);
    std::vector<double> x = treeToModelSolution(inst, tree);
    for (int i = 0; i < inst.model.numRows(); ++i) {
        const cip::Row& r = inst.model.row(i);
        if (r.lhs != 1.0) continue;  // the >= 1 cut rows
        EXPECT_GE(r.activity(x), 1.0 - 1e-9) << "cut row " << i;
    }
}

TEST(StpModel, DualAscentBoundBelowOptimum) {
    for (unsigned seed : {1u, 4u, 9u}) {
        Graph g = genHypercube(4, true, seed);
        auto opt = steinerDpOptimal(g);
        ASSERT_TRUE(opt.has_value());
        SapInstance inst = buildFor(g);
        EXPECT_LE(inst.dualAscentBound, *opt + 1e-6) << seed;
        EXPECT_GT(inst.dualAscentBound, 0.0) << seed;
    }
}

TEST(StpPlugins, ConshdlrCheckAcceptsTreeRejectsGap) {
    Graph g = starInstance();
    SapInstance inst = buildFor(g);
    cip::Solver solver;
    solver.setModel(inst.model);
    StpConshdlr handler(inst);
    std::vector<double> good = treeToModelSolution(inst, {0, 1, 2});
    EXPECT_TRUE(handler.check(solver, good));
    std::vector<double> bad(inst.model.numVars(), 0.0);
    EXPECT_FALSE(handler.check(solver, bad));
}

TEST(StpPlugins, ConshdlrSeparatesDisconnectedFractionalPoint) {
    Graph g = starInstance();
    SapInstance inst = buildFor(g);
    cip::Solver solver;
    solver.setModel(inst.model);
    installStpPlugins(solver, inst);
    solver.initSolve();
    // The solve must add cuts at some point (dual ascent rows may already
    // cover the star; at minimum the solver reaches the optimum).
    while (!solver.finished()) solver.step();
    EXPECT_EQ(solver.status(), cip::Status::Optimal);
    EXPECT_NEAR(solver.incumbent().obj, 3.0, 1e-6);
}

TEST(StpPlugins, ReductionPropagatorPreservesOptimum) {
    for (unsigned seed : {2u, 6u}) {
        Graph g = genHypercube(4, true, seed);
        SteinerSolver s1(g), s2(g);
        cip::ParamSet on, off;
        on.setInt("stp/redprop/freq", 2);
        off.setInt("stp/redprop/freq", 0);
        SteinerResult r1 = s1.solve(on);
        SteinerResult r2 = s2.solve(off);
        ASSERT_EQ(r1.status, cip::Status::Optimal);
        ASSERT_EQ(r2.status, cip::Status::Optimal);
        EXPECT_NEAR(r1.cost, r2.cost, 1e-6) << seed;
    }
}

TEST(StpPlugins, VertexBranchStateParsing) {
    Graph g = starInstance();
    SapInstance inst = buildFor(g);
    std::vector<cip::CustomBranch> cbs;
    cbs.push_back({kStpPluginName, {0, 1}});
    cbs.push_back({kStpPluginName, {2, 0}});
    cbs.push_back({"other_plugin", {3, 1}});   // ignored
    cbs.push_back({kStpPluginName, {99, 1}});  // out of range: ignored
    VertexBranchState st = parseVertexBranches(inst, cbs);
    EXPECT_EQ(st.flag[0], 1);
    EXPECT_EQ(st.flag[2], 0);
    EXPECT_EQ(st.flag[3], -1);
}

TEST(StpModel, TrivialInstanceHasNoModel) {
    Graph g(2);
    g.addEdge(0, 1, 5.0);
    g.setTerminal(0, true);
    g.setTerminal(1, true);
    Graph reduced = g;
    ReductionStats red = presolve(reduced);
    SapInstance inst = buildSapInstance(std::move(reduced), red);
    EXPECT_TRUE(inst.trivial());
    EXPECT_EQ(inst.model.numVars(), 0);
    EXPECT_NEAR(inst.fixedCost, 5.0, 1e-9);
}
