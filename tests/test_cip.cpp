#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "cip/model.hpp"
#include "cip/plugins.hpp"
#include "cip/solver.hpp"

using cip::kInf;
using cip::Model;
using cip::Row;
using cip::Solution;
using cip::Solver;
using cip::Status;

namespace {

/// Brute-force oracle for pure binary programs: enumerate all 2^n points.
struct OracleResult {
    bool feasible = false;
    double obj = kInf;
};

OracleResult bruteForceBinary(const Model& m) {
    OracleResult res;
    const int n = m.numVars();
    for (long long mask = 0; mask < (1LL << n); ++mask) {
        std::vector<double> x(n);
        bool okBounds = true;
        for (int j = 0; j < n; ++j) {
            x[j] = (mask >> j) & 1;
            if (x[j] < m.var(j).lb - 1e-9 || x[j] > m.var(j).ub + 1e-9)
                okBounds = false;
        }
        if (!okBounds) continue;
        bool ok = true;
        for (int i = 0; i < m.numRows() && ok; ++i) {
            const double a = m.row(i).activity(x);
            ok = a >= m.row(i).lhs - 1e-9 && a <= m.row(i).rhs + 1e-9;
        }
        if (!ok) continue;
        double obj = m.objOffset;
        for (int j = 0; j < n; ++j) obj += m.var(j).obj * x[j];
        if (!res.feasible || obj < res.obj) {
            res.feasible = true;
            res.obj = obj;
        }
    }
    return res;
}

Model knapsackModel(const std::vector<double>& value,
                    const std::vector<double>& weight, double cap) {
    Model m;
    std::vector<std::pair<int, double>> coefs;
    for (std::size_t j = 0; j < value.size(); ++j) {
        m.addVar(-value[j], 0.0, 1.0, true);  // maximize value
        coefs.emplace_back(static_cast<int>(j), weight[j]);
    }
    m.addLinear(Row(std::move(coefs), -kInf, cap));
    return m;
}

}  // namespace

TEST(CipSolver, SolvesSmallKnapsack) {
    // values 10,13,7,8; weights 5,7,4,3; cap 10 -> best = 13+8=21 (w 10).
    Model m = knapsackModel({10, 13, 7, 8}, {5, 7, 4, 3}, 10);
    Solver s;
    s.setModel(std::move(m));
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_NEAR(s.incumbent().obj, -21.0, 1e-6);
    EXPECT_NEAR(s.primalBound(), s.dualBound(), 1e-6);
}

TEST(CipSolver, InfeasibleIntegerProgram) {
    Model m;
    m.addVar(1.0, 0.0, 1.0, true);
    m.addVar(1.0, 0.0, 1.0, true);
    // x + y = 2 and x + y <= 1 simultaneously.
    m.addLinear(Row({{0, 1.0}, {1, 1.0}}, 2.0, 2.0));
    m.addLinear(Row({{0, 1.0}, {1, 1.0}}, -kInf, 1.0));
    Solver s;
    s.setModel(std::move(m));
    EXPECT_EQ(s.solve(), Status::Infeasible);
}

TEST(CipSolver, MixedIntegerWithContinuousPart) {
    // min -x - 0.5 y, x integer in [0,3], y continuous in [0, 2.5],
    // x + y <= 4 -> x = 3, y = 1 -> obj -3.5
    Model m;
    m.addVar(-1.0, 0.0, 3.0, true);
    m.addVar(-0.5, 0.0, 2.5, false);
    m.addLinear(Row({{0, 1.0}, {1, 1.0}}, -kInf, 4.0));
    Solver s;
    s.setModel(std::move(m));
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_NEAR(s.incumbent().obj, -3.5, 1e-6);
    EXPECT_NEAR(s.incumbent().x[0], 3.0, 1e-6);
    EXPECT_NEAR(s.incumbent().x[1], 1.0, 1e-6);
}

TEST(CipSolver, ObjOffsetRespected) {
    Model m = knapsackModel({5, 4}, {2, 3}, 4);
    m.objOffset = 100.0;
    Solver s;
    s.setModel(std::move(m));
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_NEAR(s.incumbent().obj, 100.0 - 5.0, 1e-6);
}

TEST(CipSolver, NodeLimitReported) {
    // A model needing branching with node limit 1.
    Model m = knapsackModel({3, 5, 7, 9, 11}, {2, 3, 4, 5, 6}, 9);
    Solver s;
    s.setModel(std::move(m));
    s.params().setReal("limits/nodes", 1.0);
    s.params().setInt("heuristics/freq", 0);
    s.params().setBool("heuristics/diving/enabled", false);
    Status st = s.solve();
    EXPECT_TRUE(st == Status::NodeLimit || st == Status::Optimal);
    if (st == Status::NodeLimit) EXPECT_EQ(s.stats().nodesProcessed, 1);
}

TEST(CipSolver, SteppingApiProcessesOneNodeAtATime) {
    Model m = knapsackModel({3, 5, 7, 9, 11, 6, 4}, {2, 3, 4, 5, 6, 3, 2}, 11);
    Solver s;
    s.setModel(std::move(m));
    s.initSolve();
    ASSERT_FALSE(s.finished());
    std::int64_t totalCost = 0;
    int steps = 0;
    while (!s.finished()) {
        totalCost += s.step();
        ++steps;
        ASSERT_LT(steps, 100000);
    }
    EXPECT_EQ(s.status(), Status::Optimal);
    EXPECT_GT(totalCost, 0);
    EXPECT_EQ(s.stats().totalCost, totalCost);
}

TEST(CipSolver, InjectedSolutionEnablesCutoff) {
    Model m = knapsackModel({10, 13, 7, 8}, {5, 7, 4, 3}, 10);
    Solver s;
    s.setModel(std::move(m));
    s.initSolve();
    Solution sol;
    sol.x = {0, 1, 0, 1};  // value 21 -> obj -21 (the optimum)
    sol.obj = -21.0;
    s.injectSolution(sol);
    EXPECT_NEAR(s.primalBound(), -21.0, 1e-9);
    while (!s.finished()) s.step();
    EXPECT_EQ(s.status(), Status::Optimal);
    EXPECT_NEAR(s.incumbent().obj, -21.0, 1e-6);
}

TEST(CipSolver, IncumbentCallbackFires) {
    Model m = knapsackModel({10, 13, 7, 8}, {5, 7, 4, 3}, 10);
    Solver s;
    s.setModel(std::move(m));
    int calls = 0;
    double bestSeen = kInf;
    s.setIncumbentCallback([&](const Solution& sol) {
        ++calls;
        EXPECT_LT(sol.obj, bestSeen);  // strictly improving sequence
        bestSeen = sol.obj;
    });
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_GE(calls, 1);
    EXPECT_NEAR(bestSeen, -21.0, 1e-6);
}

TEST(CipSolver, InterruptFlagStopsSolve) {
    Model m = knapsackModel({3, 5, 7, 9, 11, 6, 4, 8, 2, 9},
                            {2, 3, 4, 5, 6, 3, 2, 4, 1, 5}, 15);
    Solver s;
    s.setModel(std::move(m));
    std::atomic<bool> stop{false};
    s.setInterruptFlag(&stop);
    s.initSolve();
    s.step();
    stop = true;
    while (!s.finished()) s.step();
    EXPECT_EQ(s.status(), Status::Interrupted);
}

TEST(CipSolver, SubproblemTransferPreservesOptimum) {
    // Solve a knapsack; separately, extract an open node early, solve the
    // extracted subproblem in a fresh solver, and verify that combining the
    // extracted subproblem's optimum with the donor's remaining search gives
    // the global optimum. This is the core UG node-transfer invariant.
    auto build = [] {
        return knapsackModel({3, 5, 7, 9, 11, 6, 4, 8},
                             {2, 3, 4, 5, 6, 3, 2, 4}, 13);
    };
    Model ref = build();
    Solver whole;
    whole.setModel(build());
    ASSERT_EQ(whole.solve(), Status::Optimal);
    const double trueOpt = whole.incumbent().obj;

    Solver donor;
    donor.setModel(build());
    donor.params().setInt("heuristics/freq", 0);
    donor.params().setBool("heuristics/diving/enabled", false);
    donor.params().setString("nodeselection", "dfs");
    donor.initSolve();
    // Step until there are at least 2 open nodes to steal one.
    while (!donor.finished() && donor.numOpenNodes() < 2) donor.step();
    ASSERT_FALSE(donor.finished());
    auto stolen = donor.extractOpenNode();
    ASSERT_TRUE(stolen.has_value());

    Solver receiver;
    receiver.setModel(build());
    receiver.loadSubproblem(*stolen);
    Status rst = receiver.solve();
    double recvBest = kInf;
    if (rst == Status::Optimal && receiver.incumbent().valid())
        recvBest = receiver.incumbent().obj;

    while (!donor.finished()) donor.step();
    double donorBest =
        donor.incumbent().valid() ? donor.incumbent().obj : kInf;

    EXPECT_NEAR(std::min(donorBest, recvBest), trueOpt, 1e-6);
}

TEST(CipSolver, DualBoundNeverExceedsPrimal) {
    Model m = knapsackModel({3, 5, 7, 9, 11, 6}, {2, 3, 4, 5, 6, 3}, 9);
    Solver s;
    s.setModel(std::move(m));
    s.initSolve();
    while (!s.finished()) {
        s.step();
        EXPECT_LE(s.dualBound(), s.primalBound() + 1e-6);
    }
    EXPECT_EQ(s.status(), Status::Optimal);
    EXPECT_NEAR(s.gap(), 0.0, 1e-9);
}

// --- plugin tests -----------------------------------------------------------

namespace {

/// Constraint handler enforcing x_a + x_b <= 1 pairs via lazy cuts (a toy
/// "conflict" handler exercising check/separate/enforce).
class ConflictHandler : public cip::ConstraintHandler {
public:
    ConflictHandler(std::vector<std::pair<int, int>> pairs)
        : ConstraintHandler("conflict", 0), pairs_(std::move(pairs)) {}

    bool check(Solver&, const std::vector<double>& x) override {
        for (auto [a, b] : pairs_)
            if (x[a] + x[b] > 1.0 + 1e-6) return false;
        return true;
    }

    int separate(Solver& solver, const std::vector<double>& x) override {
        int cuts = 0;
        for (auto [a, b] : pairs_) {
            if (x[a] + x[b] > 1.0 + 1e-6) {
                solver.addCut(Row({{a, 1.0}, {b, 1.0}}, -kInf, 1.0));
                ++cuts;
            }
        }
        return cuts;
    }

    int enforce(Solver& solver, const std::vector<double>& x,
                cip::BranchDecision&) override {
        return separate(solver, x);
    }

private:
    std::vector<std::pair<int, int>> pairs_;
};

/// Oracle for knapsack + conflicts.
double conflictKnapsackOracle(const std::vector<double>& value,
                              const std::vector<double>& weight, double cap,
                              const std::vector<std::pair<int, int>>& pairs) {
    const int n = static_cast<int>(value.size());
    double best = 0.0;
    for (int mask = 0; mask < (1 << n); ++mask) {
        double w = 0, v = 0;
        for (int j = 0; j < n; ++j)
            if (mask & (1 << j)) {
                w += weight[j];
                v += value[j];
            }
        if (w > cap + 1e-9) continue;
        bool ok = true;
        for (auto [a, b] : pairs)
            if ((mask & (1 << a)) && (mask & (1 << b))) ok = false;
        if (!ok) continue;
        best = std::max(best, v);
    }
    return best;
}

}  // namespace

TEST(CipPlugins, ConstraintHandlerLazyCuts) {
    std::vector<double> value{10, 13, 7, 8, 9};
    std::vector<double> weight{5, 7, 4, 3, 4};
    std::vector<std::pair<int, int>> pairs{{0, 1}, {2, 3}, {1, 4}};
    Model m = knapsackModel(value, weight, 12);
    Solver s;
    s.setModel(std::move(m));
    s.addConstraintHandler(std::make_unique<ConflictHandler>(pairs));
    ASSERT_EQ(s.solve(), Status::Optimal);
    const double oracle = conflictKnapsackOracle(value, weight, 12, pairs);
    EXPECT_NEAR(-s.incumbent().obj, oracle, 1e-6);
}

namespace {

/// A branchrule plugin forcing branching on the highest-index fractional
/// variable; verifies that plugin rules take precedence.
class HighestIndexBranching : public cip::Branchrule {
public:
    HighestIndexBranching() : Branchrule("highestindex", 1000) {}
    cip::BranchDecision branch(Solver& solver,
                               const std::vector<double>& x) override {
        cip::BranchDecision d;
        for (int j = solver.model().numVars() - 1; j >= 0; --j) {
            if (!solver.model().var(j).isInt) continue;
            const double f = x[j] - std::floor(x[j]);
            if (f > 1e-6 && f < 1.0 - 1e-6) {
                d.var = j;
                d.point = x[j];
                ++invocations;
                break;
            }
        }
        return d;
    }
    int invocations = 0;
};

}  // namespace

TEST(CipPlugins, BranchrulePluginTakesPrecedence) {
    // Capacity 10 makes the root LP fractional (greedy ratio order fills the
    // knapsack mid-item), so branching is guaranteed to be invoked.
    Model m = knapsackModel({3, 5, 7, 9, 11, 6, 4}, {2, 3, 4, 5, 6, 3, 2}, 10);
    OracleResult oracle = bruteForceBinary(m);
    ASSERT_TRUE(oracle.feasible);
    Solver s;
    s.setModel(std::move(m));
    s.params().setInt("heuristics/freq", 0);
    s.params().setBool("heuristics/diving/enabled", false);
    auto rule = std::make_unique<HighestIndexBranching>();
    auto* rulePtr = rule.get();
    s.addBranchrule(std::move(rule));
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_NEAR(s.incumbent().obj, oracle.obj, 1e-6);
    EXPECT_GT(rulePtr->invocations, 0);
}

namespace {

class CountingEvents : public cip::EventHandler {
public:
    CountingEvents() : EventHandler("counter", 0) {}
    void onIncumbent(Solver&, const Solution&) override { ++incumbents; }
    void onNodeProcessed(Solver&) override { ++nodes; }
    int incumbents = 0;
    int nodes = 0;
};

}  // namespace

TEST(CipPlugins, EventHandlerSeesNodesAndIncumbents) {
    Model m = knapsackModel({10, 13, 7, 8}, {5, 7, 4, 3}, 10);
    Solver s;
    s.setModel(std::move(m));
    auto ev = std::make_unique<CountingEvents>();
    auto* evPtr = ev.get();
    s.addEventHandler(std::move(ev));
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_GE(evPtr->incumbents, 1);
    EXPECT_EQ(evPtr->nodes, s.stats().nodesProcessed);
}

TEST(CipParams, EmphasisPresetsDiffer) {
    auto def = cip::ParamSet::emphasis("default");
    auto easy = cip::ParamSet::emphasis("easycip");
    EXPECT_NE(def.getString("nodeselection", ""),
              easy.getString("nodeselection", ""));
    EXPECT_THROW(cip::ParamSet::emphasis("nonsense"), std::runtime_error);
}

TEST(CipParams, TypedAccessAndMerge) {
    cip::ParamSet p;
    p.setInt("a", 3);
    p.setReal("b", 1.5);
    p.setBool("c", true);
    p.setString("d", "x");
    EXPECT_EQ(p.getInt("a", 0), 3);
    EXPECT_DOUBLE_EQ(p.getReal("b", 0), 1.5);
    EXPECT_DOUBLE_EQ(p.getReal("a", 0), 3.0);  // int readable as real
    EXPECT_TRUE(p.getBool("c", false));
    EXPECT_EQ(p.getString("d", ""), "x");
    EXPECT_EQ(p.getInt("missing", 42), 42);
    cip::ParamSet q;
    q.setInt("a", 7);
    p.merge(q);
    EXPECT_EQ(p.getInt("a", 0), 7);
    EXPECT_THROW(p.getInt("d", 0), std::runtime_error);
}

// Property test: random binary programs against brute force, across
// emphasis settings and permutation seeds (the racing-diversity knobs).
struct RandomMipCase {
    int seed;
    const char* emphasis;
};

class CipRandomBinary
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(CipRandomBinary, MatchesBruteForce) {
    const int seed = std::get<0>(GetParam());
    const std::string emphasis = std::get<1>(GetParam());
    std::mt19937 rng(seed * 7919 + 13);
    std::uniform_real_distribution<double> coef(-5.0, 5.0);
    std::uniform_int_distribution<int> nv(3, 9);
    std::uniform_int_distribution<int> nr(1, 5);
    for (int rep = 0; rep < 6; ++rep) {
        const int n = nv(rng), rows = nr(rng);
        Model m;
        for (int j = 0; j < n; ++j) m.addVar(coef(rng), 0.0, 1.0, true);
        for (int i = 0; i < rows; ++i) {
            std::vector<std::pair<int, double>> cs;
            for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
            const double rhs = coef(rng);
            m.addLinear(Row(std::move(cs), -kInf, rhs));
        }
        OracleResult oracle = bruteForceBinary(m);
        Solver s;
        s.params().merge(cip::ParamSet::emphasis(emphasis));
        s.params().setInt("randomization/permutationseed", seed);
        s.setModel(std::move(m));
        Status st = s.solve();
        if (oracle.feasible) {
            ASSERT_EQ(st, Status::Optimal) << "seed=" << seed << " rep=" << rep;
            EXPECT_NEAR(s.incumbent().obj, oracle.obj, 1e-5)
                << "seed=" << seed << " rep=" << rep;
        } else {
            EXPECT_EQ(st, Status::Infeasible);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEmphases, CipRandomBinary,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values("default", "easycip", "aggressive",
                                         "fast")));

// Property test: bounded general-integer MIPs against brute force.
class CipRandomInteger : public ::testing::TestWithParam<int> {};

TEST_P(CipRandomInteger, MatchesEnumeration) {
    std::mt19937 rng(GetParam() * 104729 + 7);
    std::uniform_real_distribution<double> coef(-4.0, 4.0);
    for (int rep = 0; rep < 5; ++rep) {
        const int n = 4;
        const int ub = 3;
        Model m;
        for (int j = 0; j < n; ++j) m.addVar(coef(rng), 0.0, ub, true);
        for (int i = 0; i < 3; ++i) {
            std::vector<std::pair<int, double>> cs;
            for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
            m.addLinear(Row(std::move(cs), -8.0, 8.0));
        }
        // Enumerate (ub+1)^n integer points.
        bool feasible = false;
        double best = kInf;
        std::vector<double> x(n);
        const int total = (ub + 1) * (ub + 1) * (ub + 1) * (ub + 1);
        for (int code = 0; code < total; ++code) {
            int c = code;
            for (int j = 0; j < n; ++j) {
                x[j] = c % (ub + 1);
                c /= (ub + 1);
            }
            bool ok = true;
            for (int i = 0; i < m.numRows() && ok; ++i) {
                const double a = m.row(i).activity(x);
                ok = a >= m.row(i).lhs - 1e-9 && a <= m.row(i).rhs + 1e-9;
            }
            if (!ok) continue;
            double obj = 0;
            for (int j = 0; j < n; ++j) obj += m.var(j).obj * x[j];
            if (!feasible || obj < best) {
                feasible = true;
                best = obj;
            }
        }
        Solver s;
        s.setModel(std::move(m));
        Status st = s.solve();
        if (feasible) {
            ASSERT_EQ(st, Status::Optimal);
            EXPECT_NEAR(s.incumbent().obj, best, 1e-5);
        } else {
            EXPECT_EQ(st, Status::Infeasible);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CipRandomInteger,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
