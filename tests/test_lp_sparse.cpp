// Hyper-sparse kernel and pricing tests: the Gilbert–Peierls reach solves
// must be bit-identical to the dense substitution loops (same arithmetic,
// same order, fewer visited positions), through Forrest–Tomlin update
// chains included; and the exact dual steepest-edge rule must keep its
// measured iteration advantage over devex on warm reoptimizations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "lp/lu.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "lp/sparsevec.hpp"

using lp::LpModel;
using lp::LuFactor;
using lp::Row;
using lp::SimplexSolver;
using lp::SolveStatus;
using lp::SparseVec;

namespace {

/// Random sparse nonsingular m x m matrix in CSC: dominant diagonal plus a
/// few off-diagonal entries per column. Shaped like a basis of the box LPs
/// the tree produces: mostly near-triangular, occasional dense-ish columns.
struct Csc {
    int m = 0;
    std::vector<int> ptr, row;
    std::vector<double> val;
};

Csc randomBasis(int m, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> mag(0.2, 1.0);
    std::uniform_int_distribution<int> cnt(0, 4);
    std::uniform_int_distribution<int> pos(0, m - 1);
    Csc a;
    a.m = m;
    a.ptr.push_back(0);
    for (int j = 0; j < m; ++j) {
        std::vector<std::pair<int, double>> ents;
        ents.emplace_back(j, 2.0 + mag(rng));  // dominant diagonal
        const int k = cnt(rng);
        for (int t = 0; t < k; ++t) {
            const int i = pos(rng);
            if (i != j) ents.emplace_back(i, mag(rng) - 0.5);
        }
        std::sort(ents.begin(), ents.end());
        ents.erase(std::unique(ents.begin(), ents.end(),
                               [](const auto& x, const auto& y) {
                                   return x.first == y.first;
                               }),
                   ents.end());
        for (const auto& [i, v] : ents) {
            a.row.push_back(i);
            a.val.push_back(v);
        }
        a.ptr.push_back(static_cast<int>(a.row.size()));
    }
    return a;
}

/// Right-hand sides of three sparsity classes: unit, a few entries, dense.
SparseVec makeRhs(int m, int kind, std::mt19937& rng) {
    std::uniform_int_distribution<int> pos(0, m - 1);
    std::uniform_real_distribution<double> mag(-1.0, 1.0);
    SparseVec v;
    v.reset(m);
    if (kind == 0) {
        v.set(pos(rng), 1.0);
    } else if (kind == 1) {
        for (int t = 0; t < 4; ++t) v.set(pos(rng), mag(rng));
    } else {
        for (int i = 0; i < m; ++i) v.set(i, mag(rng));
    }
    v.sortSupport();
    return v;
}

void expectBitEqual(const SparseVec& a, const SparseVec& b) {
    ASSERT_EQ(a.dim(), b.dim());
    for (int i = 0; i < a.dim(); ++i)
        ASSERT_EQ(a.val[i], b.val[i]) << "component " << i;
}

/// The Steiner-cut-shaped warm-resolve family the benches use: unit-cost-ish
/// columns in [0,1], covering rows with small support plus a connector.
LpModel steinerCutLp(int n, int rows, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> cost(0.5, 2.0);
    std::uniform_int_distribution<int> nnz(4, 8);
    std::uniform_int_distribution<int> col(0, n - 1);
    LpModel m;
    for (int j = 0; j < n; ++j) m.addCol(cost(rng), 0.0, 1.0);
    for (int i = 0; i < rows; ++i) {
        std::vector<std::pair<int, double>> cs;
        const int k = nnz(rng);
        for (int t = 0; t < k; ++t) cs.emplace_back(col(rng), 1.0);
        cs.emplace_back(i % n, 1.0);
        std::sort(cs.begin(), cs.end());
        cs.erase(std::unique(cs.begin(), cs.end(),
                             [](const auto& a, const auto& b) {
                                 return a.first == b.first;
                             }),
                 cs.end());
        m.addRow(Row(std::move(cs), 1.0, lp::kInf));
    }
    return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// LuFactor reach kernels vs dense reference
// ---------------------------------------------------------------------------

TEST(LpSparseKernels, FtranBtranMatchDenseOnRandomBases) {
    long hyperSolves = 0;
    for (unsigned seed : {1u, 7u, 19u, 42u, 77u}) {
        const int m = 60;
        Csc a = randomBasis(m, seed);
        std::vector<int> basic(m);
        for (int j = 0; j < m; ++j) basic[j] = j;

        LuFactor on, off;
        on.setHyperSparse(true);
        off.setHyperSparse(false);
        std::vector<int> rosOn, rosOff;
        ASSERT_TRUE(on.factorize(basic, a.ptr, a.row, a.val, rosOn));
        ASSERT_TRUE(off.factorize(basic, a.ptr, a.row, a.val, rosOff));
        ASSERT_EQ(rosOn, rosOff);

        std::mt19937 rng(seed * 13 + 1);
        for (int trial = 0; trial < 24; ++trial) {
            SparseVec x = makeRhs(m, trial % 3, rng);
            SparseVec y = x;  // identical input to both paths
            hyperSolves += on.ftranSparse(x) ? 1 : 0;
            off.ftranSparse(y);
            expectBitEqual(x, y);

            SparseVec u = makeRhs(m, trial % 3, rng);
            SparseVec v = u;
            hyperSolves += on.btranSparse(u) ? 1 : 0;
            off.btranSparse(v);
            expectBitEqual(u, v);
        }
    }
    // The property only bites if the reach kernels actually ran: on these
    // near-triangular bases with unit RHS they must engage often.
    EXPECT_GT(hyperSolves, 50);
}

TEST(LpSparseKernels, SpikeUpdateChainsMatchDense) {
    for (unsigned seed : {3u, 11u, 29u}) {
        const int m = 50;
        Csc a = randomBasis(m, seed);
        std::vector<int> basic(m);
        for (int j = 0; j < m; ++j) basic[j] = j;

        LuFactor on, off;
        on.setHyperSparse(true);
        off.setHyperSparse(false);
        std::vector<int> ros;
        ASSERT_TRUE(on.factorize(basic, a.ptr, a.row, a.val, ros));
        ASSERT_TRUE(off.factorize(basic, a.ptr, a.row, a.val, ros));

        std::mt19937 rng(seed * 31 + 5);
        std::uniform_int_distribution<int> pos(0, m - 1);
        std::uniform_real_distribution<double> mag(0.3, 1.5);
        for (int piv = 0; piv < 12; ++piv) {
            // Entering column: a few entries, dominant at a random row.
            SparseVec s;
            s.reset(m);
            s.set(pos(rng), 2.0 + mag(rng));
            for (int t = 0; t < 3; ++t) s.set(pos(rng), mag(rng) - 0.75);
            s.sortSupport();
            SparseVec s2 = s;
            on.ftranSpikeSparse(s);
            off.ftranSpikeSparse(s2);
            expectBitEqual(s, s2);

            // Leave on the spike's largest magnitude -> stable new diagonal;
            // identical choice on both paths by the bit-equality just shown.
            int leaveRow = 0;
            for (int i = 1; i < m; ++i)
                if (std::fabs(s.val[i]) > std::fabs(s.val[leaveRow]))
                    leaveRow = i;
            const bool okOn = on.update(leaveRow);
            const bool okOff = off.update(leaveRow);
            ASSERT_EQ(okOn, okOff);
            if (!okOn) break;  // numerically refused: same verdict, done

            // Post-update solves must still agree bit-for-bit: this is what
            // exercises the updated U structure + appended L ops (and the
            // lazy reach-index rebuild) rather than the raw factorization.
            for (int trial = 0; trial < 6; ++trial) {
                SparseVec x = makeRhs(m, trial % 3, rng);
                SparseVec y = x;
                on.ftranSparse(x);
                off.ftranSparse(y);
                expectBitEqual(x, y);

                SparseVec u = makeRhs(m, trial % 3, rng);
                SparseVec v = u;
                on.btranSparse(u);
                off.btranSparse(v);
                expectBitEqual(u, v);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SimplexSolver warm chains
// ---------------------------------------------------------------------------

TEST(LpSparseSimplex, WarmChainBitIdenticalHyperOnOff) {
    const int n = 200;
    LpModel m = steinerCutLp(n, n, 11);
    SimplexSolver a, b;
    a.setHyperSparse(true);
    b.setHyperSparse(false);
    a.load(m);
    b.load(m);
    ASSERT_EQ(a.solve(), SolveStatus::Optimal);
    ASSERT_EQ(b.solve(), SolveStatus::Optimal);
    ASSERT_EQ(a.iterations(), b.iterations());
    ASSERT_EQ(a.objective(), b.objective());  // bit-equal, not just close

    int j = 0;
    bool down = true;
    for (int step = 0; step < 80; ++step) {
        a.changeBounds(j, 0.0, down ? 0.0 : 1.0);
        b.changeBounds(j, 0.0, down ? 0.0 : 1.0);
        a.resolve();
        b.resolve();
        ASSERT_EQ(a.iterations(), b.iterations()) << "step " << step;
        ASSERT_EQ(a.objective(), b.objective()) << "step " << step;
        if (!down) j = (j + 7) % n;
        down = !down;
    }
    // The chain must have exercised both solve paths, or the assertion
    // above compared the dense loop against itself.
    EXPECT_GT(a.hyperSolves(), 0);
    EXPECT_GT(a.denseSolves(), 0);
    EXPECT_EQ(b.hyperSolves(), 0);
}

TEST(LpSparseSimplex, DseBeatsDevexOnBoundChangeReoptimization) {
    // Deep-bound-change warm chain: fix a block of variables, resolve,
    // release, fix the next block — the node-jump pattern DSE's persistent
    // exact norms are for. Measured advantage is ~1.4-1.5x; the assertion
    // only pins "strictly fewer iterations, same optima" so routine noise
    // in unrelated heuristics cannot flake it.
    for (unsigned seed : {11u, 23u}) {
        const int n = 250;
        LpModel m = steinerCutLp(n, n, seed);
        long iters[2];
        double obj[2];
        for (int p = 0; p < 2; ++p) {
            SimplexSolver s;
            s.setPricing(p ? lp::Pricing::DSE : lp::Pricing::Devex);
            s.load(m);
            ASSERT_EQ(s.solve(), SolveStatus::Optimal);
            std::mt19937 rng(seed * 7 + 1);
            std::uniform_int_distribution<int> col(0, n - 1);
            const long it0 = s.iterations();
            std::vector<int> fixed;
            double last = 0.0;
            for (int t = 0; t < 20; ++t) {
                for (int j : fixed) s.changeBounds(j, 0.0, 1.0);
                fixed.clear();
                for (int k = 0; k < 8; ++k) {
                    const int j = col(rng);
                    s.changeBounds(j, 0.0, 0.0);
                    fixed.push_back(j);
                }
                ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
                last += s.objective();
            }
            iters[p] = s.iterations() - it0;
            obj[p] = last;
        }
        EXPECT_NEAR(obj[0], obj[1], 1e-6 * std::fabs(obj[0]))
            << "pricing rules disagree on optima, seed " << seed;
        EXPECT_LT(iters[1], iters[0])
            << "DSE regressed to >= devex pivots, seed " << seed;
    }
}
