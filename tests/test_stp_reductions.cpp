// Tests for the reduction package and the persistent ReduceEngine:
//   * randomized optimum preservation of the individual reduction tests
//     against the exact-DP oracle,
//   * warm-started dual ascent equivalence/validity,
//   * engine incremental sync (skip, delete/restore, vertex branches) and
//     optimum preservation across resyncs,
//   * end-to-end solver equivalence between the incremental engine, the
//     legacy per-node pass, and reduced-cost fixing on/off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "cip/solver.hpp"
#include "steiner/dualascent.hpp"
#include "steiner/exactdp.hpp"
#include "steiner/graph.hpp"
#include "steiner/heuristics.hpp"
#include "steiner/instances.hpp"
#include "steiner/reduceengine.hpp"
#include "steiner/reductions.hpp"
#include "steiner/stpmodel.hpp"
#include "steiner/stpsolver.hpp"

namespace steiner {
namespace {

// Small random instances with few terminals so the DP oracle is exact.
Graph smallRandom(unsigned seed) {
    return seed % 2 == 0 ? genGeometric(22, 6, 0.42, seed)
                         : genGrid(6, 4, 5, seed);
}

void setEdgeUb(const SapInstance& inst, std::vector<double>& ub, int e,
               double val) {
    for (int dir = 0; dir < 2; ++dir) {
        const int var = inst.arcVar[2 * static_cast<std::size_t>(e) + dir];
        if (var >= 0) ub[static_cast<std::size_t>(var)] = val;
    }
}

// Mirror the propagator: engine deletions become arc fixings, so the next
// pass's bounds agree with the working graph.
void foldDeletions(const SapInstance& inst,
                   const ReduceEngine::RunResult& res,
                   std::vector<double>& ub) {
    for (int e : res.inheritedDeleted) setEdgeUb(inst, ub, e, 0.0);
    for (int e : res.localDeleted) setEdgeUb(inst, ub, e, 0.0);
}

// The node-induced subgraph the engine is supposed to be synced to.
Graph nodeSubgraph(const SapInstance& inst, const std::vector<double>& ub) {
    Graph g = inst.graph;
    for (int e = 0; e < g.numEdges(); ++e) {
        if (g.edge(e).deleted) continue;
        const int v0 = inst.arcVar[2 * static_cast<std::size_t>(e)];
        const int v1 = inst.arcVar[2 * static_cast<std::size_t>(e) + 1];
        const bool usable =
            (v0 >= 0 && ub[static_cast<std::size_t>(v0)] > 0.5) ||
            (v1 >= 0 && ub[static_cast<std::size_t>(v1)] > 0.5);
        if (!usable) g.deleteEdge(e);
    }
    return g;
}

bool containsEdge(const std::vector<int>& v, int e) {
    return std::find(v.begin(), v.end(), e) != v.end();
}

TEST(StpReductions, DegreeTestsPreserveOptimum) {
    int exercised = 0;
    for (unsigned seed = 1; seed <= 10; ++seed) {
        Graph g = smallRandom(seed);
        const auto before = steinerDpOptimal(g);
        if (!before) continue;  // generator produced a disconnected instance
        Graph h = g;
        ReductionStats st;
        degreeTests(h, st);
        const auto after = steinerDpOptimal(h);
        ASSERT_TRUE(after.has_value()) << seed;
        EXPECT_NEAR(*before, st.fixedCost + *after, 1e-6) << seed;
        ++exercised;
    }
    EXPECT_GE(exercised, 3);
}

TEST(StpReductions, SdTestPreservesOptimumAndDeletesOnly) {
    int exercised = 0;
    for (unsigned seed = 1; seed <= 10; ++seed) {
        Graph g = smallRandom(seed);
        const auto before = steinerDpOptimal(g);
        if (!before) continue;
        Graph h = g;
        ReductionStats st;
        sdTest(h, st);
        EXPECT_EQ(st.fixedCost, 0.0) << seed;  // deletion-only test
        const auto after = steinerDpOptimal(h);
        ASSERT_TRUE(after.has_value()) << seed;
        EXPECT_NEAR(*before, *after, 1e-6) << seed;
        ++exercised;
    }
    EXPECT_GE(exercised, 3);
}

TEST(StpReductions, BoundBasedTestPreservesOptimum) {
    int exercised = 0;
    for (unsigned seed = 1; seed <= 10; ++seed) {
        Graph g = smallRandom(seed);
        const auto before = steinerDpOptimal(g);
        if (!before) continue;
        const HeuristicSolution heur = primalHeuristic(g);
        ASSERT_TRUE(heur.valid()) << seed;
        ASSERT_GE(heur.cost, *before - 1e-6) << seed;
        Graph h = g;
        ReductionStats st;
        boundBasedTest(h, st, heur.cost, /*useExtended=*/true);
        const auto after = steinerDpOptimal(h);
        ASSERT_TRUE(after.has_value()) << seed;
        EXPECT_NEAR(*before, *after, 1e-6) << seed;
        ++exercised;
    }
    EXPECT_GE(exercised, 3);
}

TEST(StpReductions, WarmAscentFromRawCostsMatchesColdAscent) {
    for (unsigned seed : {3u, 7u, 11u}) {
        Graph g = genHypercube(4, true, seed);
        const DualAscentResult cold = dualAscent(g);
        ASSERT_FALSE(cold.disconnected) << seed;
        std::vector<double> raw(2 * static_cast<std::size_t>(g.numEdges()),
                                kInfCost);
        for (int e = 0; e < g.numEdges(); ++e) {
            if (g.edge(e).deleted) continue;
            raw[2 * static_cast<std::size_t>(e)] = g.edge(e).cost;
            raw[2 * static_cast<std::size_t>(e) + 1] = g.edge(e).cost;
        }
        const DualAscentResult warm = dualAscentWarm(g, raw, 0.0);
        EXPECT_EQ(cold.disconnected, warm.disconnected) << seed;
        EXPECT_DOUBLE_EQ(cold.lowerBound, warm.lowerBound) << seed;
        EXPECT_EQ(cold.cuts.size(), warm.cuts.size()) << seed;
        ASSERT_EQ(cold.redCost.size(), warm.redCost.size()) << seed;
        for (int e = 0; e < g.numEdges(); ++e) {
            if (g.edge(e).deleted) continue;
            for (int dir = 0; dir < 2; ++dir) {
                const std::size_t a = 2 * static_cast<std::size_t>(e) + dir;
                EXPECT_DOUBLE_EQ(cold.redCost[a], warm.redCost[a])
                    << seed << " arc " << a;
            }
        }
    }
}

TEST(StpReductions, WarmAscentAfterDeletionsStaysValid) {
    for (unsigned seed : {2u, 5u, 8u}) {
        Graph g = genHypercube(4, true, seed);
        const DualAscentResult cold = dualAscent(g);
        ASSERT_FALSE(cold.disconnected) << seed;
        // Delete a third of the non-tree edges: terminals stay connected via
        // the heuristic tree, and the warm-start invariant (usable edges are
        // a subset of the ascent graph's) holds.
        const HeuristicSolution keep = primalHeuristic(g);
        ASSERT_TRUE(keep.valid()) << seed;
        std::vector<char> inTree(static_cast<std::size_t>(g.numEdges()), 0);
        for (int e : keep.edges) inTree[static_cast<std::size_t>(e)] = 1;
        Graph h = g;
        int k = 0;
        for (int e = 0; e < h.numEdges(); ++e) {
            if (h.edge(e).deleted || inTree[static_cast<std::size_t>(e)])
                continue;
            if (++k % 3 == 0) h.deleteEdge(e);
        }
        const auto opt = steinerDpOptimal(h);
        ASSERT_TRUE(opt.has_value()) << seed;
        const DualAscentResult warm =
            dualAscentWarm(h, cold.redCost, cold.lowerBound);
        EXPECT_FALSE(warm.disconnected) << seed;
        // Valid bound: no worse than the start, never above the optimum.
        EXPECT_GE(warm.lowerBound, cold.lowerBound - 1e-9) << seed;
        EXPECT_LE(warm.lowerBound, *opt + 1e-6) << seed;
        for (int e = 0; e < h.numEdges(); ++e) {
            if (h.edge(e).deleted) continue;
            for (int dir = 0; dir < 2; ++dir) {
                const std::size_t a = 2 * static_cast<std::size_t>(e) + dir;
                EXPECT_GE(warm.redCost[a], -1e-9) << seed << " arc " << a;
            }
        }
    }
}

TEST(StpReduceEngine, SkipsUnchangedNodeAndResyncsDeltas) {
    Graph g = genHypercube(4, true, 3);
    ReductionStats rs;
    SapInstance inst = buildSapInstance(g, rs);
    ASSERT_FALSE(inst.trivial());
    ReduceEngine eng(inst);
    std::vector<double> ub(static_cast<std::size_t>(inst.model.numVars()),
                           1.0);

    const auto r1 = eng.run(ub, {}, kInfCost, true, {});
    EXPECT_TRUE(r1.ran);
    EXPECT_TRUE(eng.ascentCached());
    foldDeletions(inst, r1, ub);

    // Unchanged bounds + no better incumbent: clean skip, no recompute.
    const auto r2 = eng.run(ub, {}, kInfCost, true, {});
    EXPECT_FALSE(r2.ran);
    EXPECT_GE(eng.stats().lbSkips, 1);

    // Tighten one live edge's arcs: the sync must delete exactly that edge.
    int target = -1;
    for (int e = 0; e < g.numEdges(); ++e) {
        if (eng.workGraph().edge(e).deleted) continue;
        if (inst.arcVar[2 * static_cast<std::size_t>(e)] >= 0 ||
            inst.arcVar[2 * static_cast<std::size_t>(e) + 1] >= 0) {
            target = e;
            break;
        }
    }
    ASSERT_GE(target, 0);
    setEdgeUb(inst, ub, target, 0.0);
    const auto r3 = eng.run(ub, {}, kInfCost, true, {});
    EXPECT_TRUE(r3.ran);
    EXPECT_TRUE(eng.workGraph().edge(target).deleted);
    foldDeletions(inst, r3, ub);

    // Restore it: the cached ascent never saw the edge, so the engine must
    // invalidate the cache and warm-start a fresh ascent.
    const std::int64_t warmBefore = eng.stats().daWarmStarts;
    setEdgeUb(inst, ub, target, 1.0);
    const auto r4 = eng.run(ub, {}, kInfCost, true, {});
    EXPECT_TRUE(r4.ran);
    EXPECT_GT(eng.stats().daWarmStarts, warmBefore);
    // Active again unless a reduction test re-deleted it — in which case the
    // deletion must be reported so the caller can fix the arcs.
    const bool redeleted = containsEdge(r4.inheritedDeleted, target) ||
                           containsEdge(r4.localDeleted, target);
    EXPECT_EQ(eng.workGraph().edge(target).deleted, redeleted);
    foldDeletions(inst, r4, ub);

    // Vertex branch "make v a terminal": synced in, then dropping it again
    // invalidates the cached ascent (its cuts may have been raised for v).
    int v = -1;
    for (int u = 0; u < g.numVertices(); ++u) {
        if (g.vertexAlive(u) && !g.isTerminal(u) &&
            eng.workGraph().degree(u) > 0) {
            v = u;
            break;
        }
    }
    ASSERT_GE(v, 0);
    std::vector<signed char> flag(static_cast<std::size_t>(g.numVertices()),
                                  -1);
    flag[static_cast<std::size_t>(v)] = 1;
    const auto r5 = eng.run(ub, flag, kInfCost, true, {});
    EXPECT_TRUE(r5.ran);
    EXPECT_TRUE(eng.workGraph().isTerminal(v));
    foldDeletions(inst, r5, ub);
    flag[static_cast<std::size_t>(v)] = -1;
    const auto r6 = eng.run(ub, flag, kInfCost, true, {});
    EXPECT_TRUE(r6.ran);
    EXPECT_FALSE(eng.workGraph().isTerminal(v));
}

TEST(StpReduceEngine, PreservesNodeSubgraphOptimumAcrossResyncs) {
    for (unsigned seed : {1u, 5u, 9u}) {
        Graph g = genHypercube(4, true, seed);
        ReductionStats rs;
        SapInstance inst = buildSapInstance(g, rs);
        ReduceEngine eng(inst);
        std::vector<double> ub(
            static_cast<std::size_t>(inst.model.numVars()), 1.0);
        const HeuristicSolution keep = primalHeuristic(g);
        ASSERT_TRUE(keep.valid()) << seed;
        std::vector<char> inTree(static_cast<std::size_t>(g.numEdges()), 0);
        for (int e : keep.edges) inTree[static_cast<std::size_t>(e)] = 1;
        int checked = 0;
        for (int step = 0; step < 3; ++step) {
            const auto nodeOpt = steinerDpOptimal(nodeSubgraph(inst, ub));
            const auto res = eng.run(ub, {}, kInfCost, true, {});
            if (nodeOpt) {
                // All engine deletions are optimum-preserving, so the work
                // graph must keep the node subgraph's optimum exactly.
                const auto engOpt = steinerDpOptimal(eng.workGraph());
                ASSERT_TRUE(engOpt.has_value()) << seed << " step " << step;
                EXPECT_NEAR(*nodeOpt, *engOpt, 1e-6)
                    << seed << " step " << step;
                ++checked;
            }
            foldDeletions(inst, res, ub);
            // Tighten a deterministic batch of non-tree edges for the next
            // step (the heuristic tree keeps the terminals connected).
            int k = 0;
            for (int e = 0; e < g.numEdges() && k < 6; ++e) {
                if (inTree[static_cast<std::size_t>(e)] ||
                    eng.workGraph().edge(e).deleted)
                    continue;
                if ((e + step) % 4 == 0) {
                    setEdgeUb(inst, ub, e, 0.0);
                    ++k;
                }
            }
        }
        EXPECT_GE(checked, 2) << seed;
    }
}

TEST(StpReduceEngine, SolverModesReachIdenticalOptima) {
    for (unsigned seed : {2u, 6u}) {
        Graph g = genHypercube(4, true, seed);
        SteinerSolver incremental(g), legacy(g), noFix(g);
        cip::ParamSet pIncr;  // defaults: engine + LP reduced-cost fixing on
        cip::ParamSet pLegacy;  // the pre-engine per-node behavior
        pLegacy.setBool("stp/redprop/incremental", false);
        pLegacy.setBool("stp/redprop/lpfix", false);
        pLegacy.setBool("propagating/redcostfix", false);
        pLegacy.setBool("propagating/redcostresolve", true);
        cip::ParamSet pNoFix;  // engine on, generic redcost fixing off
        pNoFix.setBool("propagating/redcostfix", false);
        const SteinerResult rIncr = incremental.solve(pIncr);
        const SteinerResult rLegacy = legacy.solve(pLegacy);
        const SteinerResult rNoFix = noFix.solve(pNoFix);
        ASSERT_EQ(rIncr.status, cip::Status::Optimal) << seed;
        ASSERT_EQ(rLegacy.status, cip::Status::Optimal) << seed;
        ASSERT_EQ(rNoFix.status, cip::Status::Optimal) << seed;
        EXPECT_NEAR(rIncr.cost, rLegacy.cost, 1e-6) << seed;
        EXPECT_NEAR(rIncr.cost, rNoFix.cost, 1e-6) << seed;
    }
}

TEST(StpReduceEngine, CountersThreadThroughSolverStats) {
    std::int64_t runs = 0, warmStarts = 0, redcostCalls = 0;
    for (unsigned seed : {1u, 2u, 6u}) {
        SteinerSolver s(genHypercube(4, true, seed));
        const SteinerResult r = s.solve({});
        ASSERT_EQ(r.status, cip::Status::Optimal) << seed;
        runs += r.stats.redpropRuns;
        warmStarts += r.stats.redpropDaWarmStarts;
        redcostCalls += r.stats.redcostCalls;
    }
    EXPECT_GT(runs, 0);
    EXPECT_GT(warmStarts, 0);
    EXPECT_GT(redcostCalls, 0);
}

}  // namespace
}  // namespace steiner
