#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.hpp"
#include "misdp/instances.hpp"
#include "misdp/solver.hpp"
#include "sdp/ipm.hpp"
#include "ugcip/misdp_plugins.hpp"

using linalg::Matrix;
using misdp::MisdpProblem;
using misdp::MisdpResult;
using misdp::MisdpSolver;

namespace {

/// Generic oracle: enumerate all integer assignments, solve the remaining
/// continuous SDP with the (independently tested) interior-point solver,
/// and keep the best feasible value.
double bruteForceOracle(const MisdpProblem& p, bool* feasible) {
    std::vector<int> intIdx;
    for (int i = 0; i < p.numVars; ++i)
        if (p.isInt[i]) intIdx.push_back(i);
    const int ni = static_cast<int>(intIdx.size());
    double best = -1e300;
    *feasible = false;
    // Assume binary integers (true for all generated families).
    for (long long mask = 0; mask < (1LL << ni); ++mask) {
        sdp::SdpProblem sp;
        sp.init(p.numVars);
        sp.b = p.obj;
        sp.lb = p.lb;
        sp.ub = p.ub;
        bool boundsOk = true;
        for (int t = 0; t < ni; ++t) {
            const double v = double((mask >> t) & 1);
            const int i = intIdx[t];
            if (v < p.lb[i] - 1e-9 || v > p.ub[i] + 1e-9) boundsOk = false;
            sp.lb[i] = v;
            sp.ub[i] = v;
        }
        if (!boundsOk) continue;
        // Linear rows as 1x1 blocks.
        sp.blocks = p.blocks;
        for (const lp::Row& r : p.linearRows) {
            if (r.rhs < lp::kInf) {
                sdp::SdpBlock blk;
                blk.dim = 1;
                blk.c = Matrix(1, 1, r.rhs);
                blk.a.assign(p.numVars, Matrix{});
                for (const auto& [j, c] : r.coefs)
                    blk.a[j] = Matrix(1, 1, c);
                sp.addBlock(std::move(blk));
            }
            if (r.lhs > -lp::kInf) {
                sdp::SdpBlock blk;
                blk.dim = 1;
                blk.c = Matrix(1, 1, -r.lhs);
                blk.a.assign(p.numVars, Matrix{});
                for (const auto& [j, c] : r.coefs)
                    blk.a[j] = Matrix(1, 1, -c);
                sp.addBlock(std::move(blk));
            }
        }
        sdp::SdpResult r = sdp::solveSdp(sp);
        if (r.status != sdp::SdpStatus::Optimal) continue;
        *feasible = true;
        best = std::max(best, r.objective);
    }
    return best;
}

/// A tiny hand-crafted MISDP: max y0 + y1, y binary,
/// block [[2, y0+y1], [y0+y1, 1]] >= 0  =>  (y0+y1)^2 <= 2  =>  sum <= 1.
MisdpProblem tinyMisdp() {
    MisdpProblem p;
    p.init(2);
    p.name = "tiny";
    p.obj = {1.0, 1.0};
    p.lb = {0.0, 0.0};
    p.ub = {1.0, 1.0};
    p.isInt = {true, true};
    sdp::SdpBlock blk;
    blk.dim = 2;
    blk.c = Matrix{{2, 0}, {0, 1}};
    Matrix a{{0, -1}, {-1, 0}};
    blk.a = {a, a};
    p.addBlock(std::move(blk));
    return p;
}

}  // namespace

TEST(Misdp, TinyInstanceBothModes) {
    MisdpProblem p = tinyMisdp();
    for (const char* mode : {"sdp", "lp"}) {
        MisdpSolver s(p);
        cip::ParamSet params;
        params.setString("misdp/solvemode", mode);
        MisdpResult r = s.solve(params);
        ASSERT_EQ(r.status, cip::Status::Optimal) << mode;
        EXPECT_NEAR(r.objective, 1.0, 1e-5) << mode;
        EXPECT_NEAR(r.dualBound, 1.0, 1e-4) << mode;
        EXPECT_TRUE(p.isFeasible(r.y, 1e-5));
    }
}

TEST(Misdp, FeasibilityChecker) {
    MisdpProblem p = tinyMisdp();
    EXPECT_TRUE(p.isFeasible({1.0, 0.0}));
    EXPECT_TRUE(p.isFeasible({0.0, 0.0}));
    EXPECT_FALSE(p.isFeasible({1.0, 1.0}));   // PSD violated
    EXPECT_FALSE(p.isFeasible({0.5, 0.0}));   // integrality violated
}

TEST(Misdp, InfeasibleInstanceDetected) {
    // Force y0 + y1 >= 2 via a linear row while PSD allows at most 1.
    MisdpProblem p = tinyMisdp();
    p.linearRows.push_back(lp::Row({{0, 1.0}, {1, 1.0}}, 2.0, lp::kInf));
    for (const char* mode : {"sdp", "lp"}) {
        MisdpSolver s(p);
        cip::ParamSet params;
        params.setString("misdp/solvemode", mode);
        MisdpResult r = s.solve(params);
        EXPECT_EQ(r.status, cip::Status::Infeasible) << mode;
    }
}

TEST(Misdp, CardinalityLSMatchesOracle) {
    MisdpProblem p = misdp::genCardinalityLS(3, 4, 2, 7);
    bool feasible = false;
    const double oracle = bruteForceOracle(p, &feasible);
    ASSERT_TRUE(feasible);
    for (const char* mode : {"sdp", "lp"}) {
        MisdpSolver s(p);
        cip::ParamSet params;
        params.setString("misdp/solvemode", mode);
        MisdpResult r = s.solve(params);
        ASSERT_EQ(r.status, cip::Status::Optimal) << mode;
        EXPECT_NEAR(r.objective, oracle, 1e-3) << mode;
        EXPECT_TRUE(p.isFeasible(r.y, 1e-4)) << mode;
    }
}

TEST(Misdp, TrussTopologyMatchesOracle) {
    MisdpProblem p = misdp::genTrussTopology(2, 2, 2.0, 3);
    ASSERT_LE(p.numVars, 12) << "keep the oracle enumerable";
    bool feasible = false;
    const double oracle = bruteForceOracle(p, &feasible);
    ASSERT_TRUE(feasible);
    MisdpSolver s(p);
    MisdpResult r = s.solve();
    ASSERT_EQ(r.status, cip::Status::Optimal);
    EXPECT_NEAR(r.objective, oracle, 1e-3);
}

TEST(Misdp, MinKPartitionMatchesPartitionEnumeration) {
    const int n = 5, k = 2;
    MisdpProblem p = misdp::genMinKPartition(n, k, 11);
    // Enumerate set partitions into at most k parts directly.
    double best = -1e300;
    for (int mask = 0; mask < (1 << n); ++mask) {
        // mask assigns each node to part 0/1.
        std::vector<double> y(p.numVars, 0.0);
        int v = 0;
        double obj = 0.0;
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j, ++v)
                if (((mask >> i) & 1) == ((mask >> j) & 1)) {
                    y[v] = 1.0;
                    obj += p.obj[v];
                }
        EXPECT_TRUE(p.isFeasible(y, 1e-5))
            << "partition matrices must satisfy the MISDP model";
        best = std::max(best, obj);
    }
    MisdpSolver s(p);
    MisdpResult r = s.solve();
    ASSERT_EQ(r.status, cip::Status::Optimal);
    EXPECT_NEAR(r.objective, best, 1e-4);
}

TEST(Misdp, LpAndSdpModesAgreeAcrossSeeds) {
    for (std::uint64_t seed : {1, 2, 3}) {
        MisdpProblem p = misdp::genCardinalityLS(3, 4, 2, seed);
        MisdpSolver s(p);
        cip::ParamSet lpMode, sdpMode;
        lpMode.setString("misdp/solvemode", "lp");
        sdpMode.setString("misdp/solvemode", "sdp");
        MisdpResult rl = s.solve(lpMode);
        MisdpResult rs = s.solve(sdpMode);
        ASSERT_EQ(rl.status, cip::Status::Optimal) << "seed " << seed;
        ASSERT_EQ(rs.status, cip::Status::Optimal) << "seed " << seed;
        EXPECT_NEAR(rl.objective, rs.objective, 1e-3) << "seed " << seed;
    }
}

// --- ug[CIP-SDP, *] ----------------------------------------------------------

TEST(UgMisdp, ParallelHybridMatchesSequential) {
    MisdpProblem p = misdp::genCardinalityLS(3, 5, 2, 5);
    MisdpSolver seq(p);
    MisdpResult sr = seq.solve();
    ASSERT_EQ(sr.status, cip::Status::Optimal);

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    cfg.racingOpenNodesLimit = 5;
    cfg.racingTimeLimit = 0.3;
    ug::UgResult res = ugcip::solveMisdpParallel(p, cfg, /*simulated=*/true);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    misdp::MisdpResult pr = ugcip::toMisdpResult(res);
    EXPECT_NEAR(pr.objective, sr.objective, 1e-3);
}

TEST(UgMisdp, RacingSettingsAlternateLpAndSdp) {
    MisdpProblem p = tinyMisdp();
    ugcip::MisdpUserPlugins plugins(p);
    auto settings = plugins.racingSettings(8);
    ASSERT_EQ(settings.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        const std::string mode = settings[i].getString("misdp/solvemode", "");
        // Paper convention: odd 1-based setting ids are SDP-based.
        EXPECT_EQ(mode, i % 2 == 0 ? "sdp" : "lp") << "setting " << i + 1;
    }
}

TEST(UgMisdp, NormalRampUpAlsoSolves) {
    MisdpProblem p = misdp::genMinKPartition(5, 2, 3);
    MisdpSolver seq(p);
    MisdpResult sr = seq.solve();
    ASSERT_EQ(sr.status, cip::Status::Optimal);
    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    ug::UgResult res = ugcip::solveMisdpParallel(p, cfg, /*simulated=*/true);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(-res.best.obj, sr.objective, 1e-4);
}

// --- SDPA file format ---------------------------------------------------------

#include <sstream>

#include "misdp/io.hpp"

namespace {

void expectProblemsEquivalent(const MisdpProblem& a, const MisdpProblem& b) {
    ASSERT_EQ(a.numVars, b.numVars);
    for (int j = 0; j < a.numVars; ++j) {
        EXPECT_NEAR(a.obj[j], b.obj[j], 1e-12) << "obj " << j;
        EXPECT_EQ(a.isInt[j], b.isInt[j]) << "int " << j;
    }
    // Equivalence via optima: bounds may be represented as rows after a
    // roundtrip, but the feasible set must be identical.
    MisdpSolver sa(a), sb(b);
    MisdpResult ra = sa.solve();
    MisdpResult rb = sb.solve();
    ASSERT_EQ(ra.status, rb.status);
    if (ra.status == cip::Status::Optimal) {
        EXPECT_NEAR(ra.objective, rb.objective, 1e-4);
    }
}

}  // namespace

TEST(MisdpIo, RoundtripTiny) {
    MisdpProblem p = tinyMisdp();
    std::ostringstream out;
    ASSERT_TRUE(misdp::writeSdpa(out, p));
    std::istringstream in(out.str());
    auto q = misdp::readSdpa(in);
    ASSERT_TRUE(q.has_value());
    expectProblemsEquivalent(p, *q);
}

TEST(MisdpIo, RoundtripGeneratedFamilies) {
    for (const MisdpProblem& p :
         {misdp::genCardinalityLS(3, 4, 2, 3), misdp::genMinKPartition(5, 2, 5),
          misdp::genTrussTopology(2, 2, 2.0, 2)}) {
        std::ostringstream out;
        ASSERT_TRUE(misdp::writeSdpa(out, p)) << p.name;
        std::istringstream in(out.str());
        auto q = misdp::readSdpa(in);
        ASSERT_TRUE(q.has_value()) << p.name;
        expectProblemsEquivalent(p, *q);
    }
}

TEST(MisdpIo, RejectsGarbage) {
    std::istringstream bad("this is not sdpa\n");
    EXPECT_FALSE(misdp::readSdpa(bad).has_value());
    std::istringstream empty("");
    EXPECT_FALSE(misdp::readSdpa(empty).has_value());
}

TEST(MisdpIo, FileRoundtrip) {
    MisdpProblem p = misdp::genCardinalityLS(3, 4, 2, 8);
    const std::string path = "/tmp/ugcop_misdp_io_test.dat-s";
    ASSERT_TRUE(misdp::writeSdpaFile(path, p));
    auto q = misdp::readSdpaFile(path);
    ASSERT_TRUE(q.has_value());
    expectProblemsEquivalent(p, *q);
    std::remove(path.c_str());
    EXPECT_FALSE(misdp::readSdpaFile(path).has_value());
}
