#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "steiner/dualascent.hpp"
#include "steiner/exactdp.hpp"
#include "steiner/graph.hpp"
#include "steiner/heuristics.hpp"
#include "steiner/instances.hpp"
#include "steiner/maxflow.hpp"
#include "steiner/reductions.hpp"
#include "steiner/shortest.hpp"
#include "steiner/stpsolver.hpp"

using namespace steiner;

namespace {

/// A small classic: star center 0 with terminals 1,2,3 (spokes cost 1) and
/// expensive direct terminal-terminal edges -> optimum uses the Steiner
/// vertex: cost 3.
Graph starInstance() {
    Graph g(4);
    g.addEdge(0, 1, 1.0);
    g.addEdge(0, 2, 1.0);
    g.addEdge(0, 3, 1.0);
    g.addEdge(1, 2, 2.5);
    g.addEdge(2, 3, 2.5);
    g.setTerminal(1, true);
    g.setTerminal(2, true);
    g.setTerminal(3, true);
    return g;
}

Graph randomConnectedInstance(int n, int terms, unsigned seed) {
    // Geometric with a fat radius is almost surely connected; regenerate on
    // the rare failure.
    for (unsigned s = seed;; ++s) {
        Graph g = genGeometric(n, terms, 0.6, s);
        SpResult sp = dijkstra(g, 0);
        bool connected = true;
        for (int v = 0; v < n; ++v)
            if (sp.dist[v] >= kInfCost) connected = false;
        if (connected && g.numTerminals() == terms) return g;
    }
}

}  // namespace

// --- graph basics -----------------------------------------------------------

TEST(SteinerGraph, BasicAccounting) {
    Graph g(5);
    const int e0 = g.addEdge(0, 1, 2.0);
    g.addEdge(1, 2, 3.0);
    g.setTerminal(0, true);
    g.setTerminal(2, true);
    EXPECT_EQ(g.numVertices(), 5);
    EXPECT_EQ(g.numActiveEdges(), 2);
    EXPECT_EQ(g.numTerminals(), 2);
    EXPECT_EQ(g.degree(1), 2);
    g.deleteEdge(e0);
    EXPECT_EQ(g.numActiveEdges(), 1);
    EXPECT_EQ(g.degree(1), 1);
    EXPECT_EQ(g.rootTerminal(), 0);
}

TEST(SteinerGraph, ContractionMovesTerminalAndDedups) {
    Graph g(4);
    const int e01 = g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 2.0);
    g.addEdge(0, 2, 5.0);  // parallel after contraction; more expensive
    g.addEdge(2, 3, 1.0);
    g.setTerminal(0, true);
    g.setTerminal(3, true);
    g.contractEdge(e01, 1);  // merge 0 into 1
    EXPECT_FALSE(g.vertexAlive(0));
    EXPECT_TRUE(g.isTerminal(1));
    // Parallel edges (1,2): cost 2 kept, cost 5 dropped.
    int count12 = 0;
    double cost12 = 0;
    for (int e = 0; e < g.numEdges(); ++e) {
        const Edge& ed = g.edge(e);
        if (ed.deleted) continue;
        if ((ed.u == 1 && ed.v == 2) || (ed.u == 2 && ed.v == 1)) {
            ++count12;
            cost12 = ed.cost;
        }
    }
    EXPECT_EQ(count12, 1);
    EXPECT_DOUBLE_EQ(cost12, 2.0);
}

TEST(SteinerGraph, SpansTerminals) {
    Graph g = starInstance();
    EXPECT_TRUE(g.spansTerminals({0, 1, 2}));   // the three spokes
    EXPECT_FALSE(g.spansTerminals({0, 1}));     // terminal 3 missing
}

// --- shortest paths / MST ----------------------------------------------------

TEST(SteinerShortest, DijkstraOnPath) {
    Graph g(4);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 2.0);
    g.addEdge(2, 3, 3.0);
    SpResult sp = dijkstra(g, 0);
    EXPECT_DOUBLE_EQ(sp.dist[3], 6.0);
    EXPECT_DOUBLE_EQ(sp.dist[1], 1.0);
}

TEST(SteinerShortest, CappedStopsEarlyAndSkipsEdge) {
    Graph g(3);
    const int direct = g.addEdge(0, 2, 5.0);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 1.0);
    SpResult sp = dijkstraCapped(g, 0, 10.0, direct);
    EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);  // must avoid the skipped edge
}

TEST(SteinerShortest, VoronoiAssignsNearestTerminal) {
    Graph g(5);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 1.0);
    g.addEdge(2, 3, 1.0);
    g.addEdge(3, 4, 1.0);
    g.setTerminal(0, true);
    g.setTerminal(4, true);
    Voronoi vor = voronoi(g);
    EXPECT_EQ(vor.base[1], 0);
    EXPECT_EQ(vor.base[3], 4);
    EXPECT_DOUBLE_EQ(vor.dist[2], 2.0);
}

TEST(SteinerShortest, InducedMstAndPrune) {
    Graph g = starInstance();
    std::vector<bool> mask(4, true);
    bool connected = false;
    std::vector<int> mst = inducedMst(g, mask, &connected);
    ASSERT_TRUE(connected);
    EXPECT_EQ(mst.size(), 3u);
    EXPECT_DOUBLE_EQ(g.costOf(mst), 3.0);
    // Add a dangling non-terminal to prune.
    Graph g2(5);
    g2.addEdge(0, 1, 1.0);
    g2.addEdge(1, 2, 1.0);
    g2.addEdge(1, 4, 1.0);  // dangles at non-terminal 4
    g2.setTerminal(0, true);
    g2.setTerminal(2, true);
    std::vector<int> pruned = pruneTree(g2, {0, 1, 2});
    EXPECT_EQ(pruned.size(), 2u);
}

// --- max flow ----------------------------------------------------------------

TEST(SteinerMaxFlow, SimpleNetwork) {
    MaxFlow mf(4);
    mf.addArc(0, 1, 1.0);
    mf.addArc(0, 2, 1.0);
    mf.addArc(1, 3, 0.5);
    mf.addArc(2, 3, 0.7);
    EXPECT_NEAR(mf.solve(0, 3), 1.2, 1e-9);
    auto side = mf.minCutSourceSide(0);
    EXPECT_TRUE(side[0]);
    EXPECT_FALSE(side[3]);
}

TEST(SteinerMaxFlow, DisconnectedIsZero) {
    MaxFlow mf(3);
    mf.addArc(0, 1, 1.0);
    EXPECT_DOUBLE_EQ(mf.solve(0, 2), 0.0);
    auto side = mf.minCutSourceSide(0);
    EXPECT_TRUE(side[1]);
    EXPECT_FALSE(side[2]);
}

TEST(SteinerMaxFlow, CapacityUpdateAndClear) {
    MaxFlow mf(2);
    const int a = mf.addArc(0, 1, 1.0);
    EXPECT_DOUBLE_EQ(mf.solve(0, 1), 1.0);
    mf.setCapacity(a, 3.0);
    EXPECT_DOUBLE_EQ(mf.solve(0, 1), 3.0);
    mf.clearFlow();
    EXPECT_DOUBLE_EQ(mf.solve(0, 1), 3.0);
}

// --- generators and I/O --------------------------------------------------------

TEST(SteinerInstances, HypercubeStructure) {
    Graph g = genHypercube(4, false);
    EXPECT_EQ(g.numVertices(), 16);
    EXPECT_EQ(g.numActiveEdges(), 32);  // d * 2^(d-1)
    for (int v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
    EXPECT_EQ(g.numTerminals(), 8);  // even-parity vertices
    EXPECT_EQ(g.name, "hc4u");
}

TEST(SteinerInstances, CodeCoverStructure) {
    Graph g = genCodeCover(3, 3, true, 7);
    EXPECT_EQ(g.numVertices(), 27);
    // Hamming graph H(3,3): each vertex has 3*(3-1)=6 neighbors.
    for (int v = 0; v < 27; ++v) EXPECT_EQ(g.degree(v), 6);
    EXPECT_GE(g.numTerminals(), 2);
}

TEST(SteinerInstances, BipartiteConnected) {
    Graph g = genBipartite(8, 12, 3, false, 3);
    EXPECT_EQ(g.numVertices(), 20);
    EXPECT_EQ(g.numTerminals(), 8);
    SpResult sp = dijkstra(g, 0);
    for (int t : g.terminals()) EXPECT_LT(sp.dist[t], kInfCost);
}

TEST(SteinerInstances, StpRoundtrip) {
    Graph g = genGrid(3, 3, 4, 11);
    std::ostringstream out;
    ASSERT_TRUE(writeStp(out, g));
    std::istringstream in(out.str());
    auto g2 = readStp(in);
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->numVertices(), g.numVertices());
    EXPECT_EQ(g2->numActiveEdges(), g.numActiveEdges());
    EXPECT_EQ(g2->numTerminals(), g.numTerminals());
    // Optimal value must be identical.
    auto opt1 = steinerDpOptimal(g);
    auto opt2 = steinerDpOptimal(*g2);
    ASSERT_TRUE(opt1 && opt2);
    EXPECT_NEAR(*opt1, *opt2, 1e-9);
}

TEST(SteinerInstances, RejectsCorruptStp) {
    std::istringstream bad("SECTION Graph\nE 1 2 3\nEND\nEOF\n");
    EXPECT_FALSE(readStp(bad).has_value());
}

// --- exact DP ------------------------------------------------------------------

TEST(SteinerDp, StarOptimum) {
    Graph g = starInstance();
    auto opt = steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    EXPECT_NEAR(*opt, 3.0, 1e-9);
}

TEST(SteinerDp, TwoTerminalsIsShortestPath) {
    Graph g(4);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 3, 1.0);
    g.addEdge(0, 2, 0.5);
    g.addEdge(2, 3, 2.0);
    g.setTerminal(0, true);
    g.setTerminal(3, true);
    auto opt = steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    EXPECT_NEAR(*opt, 2.0, 1e-9);
}

TEST(SteinerDp, DisconnectedReturnsNullopt) {
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.setTerminal(0, true);
    g.setTerminal(2, true);
    EXPECT_FALSE(steinerDpOptimal(g).has_value());
}

// --- heuristics ------------------------------------------------------------------

TEST(SteinerHeuristics, TmFindsFeasibleTree) {
    Graph g = randomConnectedInstance(25, 6, 1);
    HeuristicSolution sol = primalHeuristic(g);
    ASSERT_TRUE(sol.valid());
    EXPECT_TRUE(g.spansTerminals(sol.edges));
    auto opt = steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    EXPECT_GE(sol.cost, *opt - 1e-9);
    EXPECT_LE(sol.cost, 2.0 * *opt + 1e-9);  // TM is a 2-approximation
}

TEST(SteinerHeuristics, CostOverrideBiasesButTrueCostReported) {
    Graph g = starInstance();
    std::vector<double> override(g.numEdges(), 1.0);
    HeuristicSolution sol = tmHeuristic(g, 3, &override);
    ASSERT_TRUE(sol.valid());
    EXPECT_NEAR(sol.cost, g.costOf(sol.edges), 1e-12);
}

// --- dual ascent -------------------------------------------------------------------

TEST(SteinerDualAscent, BoundsBelowOptimum) {
    for (unsigned seed : {1u, 2u, 3u, 4u}) {
        Graph g = randomConnectedInstance(20, 5, seed);
        auto opt = steinerDpOptimal(g);
        ASSERT_TRUE(opt.has_value());
        DualAscentResult da = dualAscent(g);
        EXPECT_FALSE(da.disconnected);
        EXPECT_GT(da.lowerBound, 0.0);
        EXPECT_LE(da.lowerBound, *opt + 1e-6) << "seed " << seed;
        // Reduced costs stay non-negative.
        for (double rc : da.redCost) {
            if (rc < kInfCost) {
                EXPECT_GE(rc, -1e-9);
            }
        }
    }
}

TEST(SteinerDualAscent, DetectsDisconnected) {
    Graph g(4);
    g.addEdge(0, 1, 1.0);
    g.addEdge(2, 3, 1.0);
    g.setTerminal(0, true);
    g.setTerminal(3, true);
    DualAscentResult da = dualAscent(g);
    EXPECT_TRUE(da.disconnected);
}

// --- reductions --------------------------------------------------------------------

TEST(SteinerReductions, DegreeTestsContractTerminalLeaf) {
    // 0(T) -1- 1 -1- 2(T), plus dangling non-terminal 3.
    Graph g(4);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 1.0);
    g.addEdge(1, 3, 5.0);
    g.setTerminal(0, true);
    g.setTerminal(2, true);
    ReductionStats stats;
    degreeTests(g, stats);
    // Everything collapses: the whole optimum (cost 2) ends up fixed.
    EXPECT_NEAR(stats.fixedCost, 2.0, 1e-9);
    EXPECT_LE(g.numTerminals(), 1);
}

TEST(SteinerReductions, SdDeletesDominatedEdge) {
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 1.0);
    const int heavy = g.addEdge(0, 2, 3.0);
    g.setTerminal(0, true);
    g.setTerminal(2, true);
    ReductionStats stats;
    sdTest(g, stats);
    EXPECT_TRUE(g.edge(heavy).deleted);
    EXPECT_GE(stats.edgesDeleted, 1);
}

// Property: the full presolve loop preserves the optimal value
// (fixedCost + optimum of reduced == optimum of original).
class ReductionSafety : public ::testing::TestWithParam<int> {};

TEST_P(ReductionSafety, PreservesOptimum) {
    const int seed = GetParam();
    for (int rep = 0; rep < 3; ++rep) {
        Graph g = randomConnectedInstance(24, 6, seed * 100 + rep);
        auto optBefore = steinerDpOptimal(g);
        ASSERT_TRUE(optBefore.has_value());
        Graph reduced = g;
        ReductionStats stats = presolve(reduced);
        double after = stats.fixedCost;
        if (reduced.numTerminals() > 1) {
            auto optAfter = steinerDpOptimal(reduced);
            ASSERT_TRUE(optAfter.has_value());
            after += *optAfter;
        }
        EXPECT_NEAR(after, *optBefore, 1e-6)
            << "seed=" << seed << " rep=" << rep;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionSafety,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- full solver ----------------------------------------------------------------

TEST(SteinerSolverTest, StarInstanceExact) {
    SteinerSolver s(starInstance());
    SteinerResult res = s.solve();
    ASSERT_EQ(res.status, cip::Status::Optimal);
    EXPECT_NEAR(res.cost, 3.0, 1e-6);
}

TEST(SteinerSolverTest, SolvedByPresolveOnEasyInstance) {
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 1.0);
    g.setTerminal(0, true);
    g.setTerminal(2, true);
    SteinerSolver s(g);
    SteinerResult res = s.solve();
    ASSERT_EQ(res.status, cip::Status::Optimal);
    EXPECT_TRUE(res.solvedByPresolve);
    EXPECT_NEAR(res.cost, 2.0, 1e-6);
    EXPECT_EQ(res.originalEdges.size(), 2u);
}

TEST(SteinerSolverTest, SolutionEdgesAreConsistent) {
    Graph g = randomConnectedInstance(22, 6, 77);
    SteinerSolver s(g);
    SteinerResult res = s.solve();
    ASSERT_EQ(res.status, cip::Status::Optimal);
    // Returned original edges span the terminals and match the cost.
    EXPECT_TRUE(g.spansTerminals(res.originalEdges));
    EXPECT_NEAR(g.costOf(res.originalEdges), res.cost, 1e-6);
    EXPECT_NEAR(res.dualBound, res.cost, 1e-6);
}

// Property: branch-and-cut matches the DP oracle across random instances.
class SteinerSolverVsDp : public ::testing::TestWithParam<int> {};

TEST_P(SteinerSolverVsDp, MatchesOracle) {
    const int seed = GetParam();
    for (int rep = 0; rep < 2; ++rep) {
        Graph g = randomConnectedInstance(20, 5, seed * 31 + rep);
        auto opt = steinerDpOptimal(g);
        ASSERT_TRUE(opt.has_value());
        SteinerSolver s(g);
        SteinerResult res = s.solve();
        ASSERT_EQ(res.status, cip::Status::Optimal)
            << "seed=" << seed << " rep=" << rep;
        EXPECT_NEAR(res.cost, *opt, 1e-6) << "seed=" << seed << " rep=" << rep;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteinerSolverVsDp,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SteinerSolverTest, VertexBranchingOnAndOffAgree) {
    Graph g = genHypercube(4, true, 5);
    auto opt = steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    for (bool vb : {true, false}) {
        SteinerSolver s(g);
        cip::ParamSet p;
        p.setBool("stp/vertexbranching", vb);
        SteinerResult res = s.solve(p);
        ASSERT_EQ(res.status, cip::Status::Optimal) << "vb=" << vb;
        EXPECT_NEAR(res.cost, *opt, 1e-6) << "vb=" << vb;
    }
}

TEST(SteinerSolverTest, LayeredPresolveOnAndOffAgree) {
    Graph g = genCodeCover(3, 3, true, 2);
    SteinerSolver s1(g), s2(g);
    cip::ParamSet pOn, pOff;
    pOn.setBool("stp/layeredpresolve", true);
    pOff.setBool("stp/layeredpresolve", false);
    SteinerResult r1 = s1.solve(pOn);
    SteinerResult r2 = s2.solve(pOff);
    ASSERT_EQ(r1.status, cip::Status::Optimal);
    ASSERT_EQ(r2.status, cip::Status::Optimal);
    EXPECT_NEAR(r1.cost, r2.cost, 1e-6);
}

TEST(SteinerSolverTest, HypercubeUnitCosts) {
    // hc4u: terminals are the 8 even-parity vertices of Q4; optimum is known
    // to equal the DP result.
    Graph g = genHypercube(4, false);
    auto opt = steinerDpOptimal(g, 8);
    ASSERT_TRUE(opt.has_value());
    SteinerSolver s(g);
    SteinerResult res = s.solve();
    ASSERT_EQ(res.status, cip::Status::Optimal);
    EXPECT_NEAR(res.cost, *opt, 1e-6);
}
