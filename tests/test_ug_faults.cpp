// Fault-tolerance tests of the Supervisor-Worker protocol: every fault
// class FaultyComm can inject (drop, delay, duplicate, reorder, kill, hang)
// must leave the optimum unchanged, on generic CIP instances as well as on
// the Steiner and MISDP example instances. The SimEngine runs are exactly
// reproducible for a fixed FaultPlan seed, so these are deterministic
// regression tests of the recovery paths (heartbeat death declaration,
// requeue-on-failure, idempotent message handling), not flaky chaos tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "misdp/instances.hpp"
#include "misdp/solver.hpp"
#include "steiner/exactdp.hpp"
#include "steiner/instances.hpp"
#include "steiner/stpsolver.hpp"
#include "ugcip/misdp_plugins.hpp"
#include "ugcip/stp_plugins.hpp"
#include "ugcip/ugcip.hpp"

using cip::kInf;
using cip::Model;
using cip::Row;

namespace {

/// Same weakly-correlated knapsack family as test_ug.cpp: decent tree size,
/// known-good via the sequential solver.
Model hardKnapsack(int n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> w(10, 30);
    Model m;
    std::vector<std::pair<int, double>> coefs;
    double total = 0;
    for (int j = 0; j < n; ++j) {
        const double weight = w(rng);
        m.addVar(-(weight + (j % 3)), 0.0, 1.0, true);
        coefs.emplace_back(j, weight);
        total += weight;
    }
    m.addLinear(Row(std::move(coefs), -kInf, std::floor(total / 2)));
    return m;
}

double sequentialOptimum(const Model& m) {
    cip::Solver s;
    Model copy = m;
    s.setModel(std::move(copy));
    EXPECT_EQ(s.solve(), cip::Status::Optimal);
    return s.incumbent().obj;
}

/// The fault classes under test. Each returns a plan with a fixed seed;
/// `heartbeat` says whether the class needs the failure detector for
/// guaranteed termination (drop and kill do; the others are loss-free).
struct FaultCase {
    const char* name;
    ug::FaultPlan plan;
    bool needsHeartbeat;
};

std::vector<FaultCase> faultCases() {
    std::vector<FaultCase> cases;
    {
        ug::FaultPlan p;
        p.dropProb = 0.08;
        cases.push_back({"drop", p, true});
    }
    {
        ug::FaultPlan p;
        p.delayProb = 0.30;
        p.delaySeconds = 0.004;
        cases.push_back({"delay", p, false});
    }
    {
        ug::FaultPlan p;
        p.duplicateProb = 0.30;
        cases.push_back({"duplicate", p, false});
    }
    {
        ug::FaultPlan p;
        p.reorderProb = 0.30;
        p.reorderWindow = 0.004;
        cases.push_back({"reorder", p, false});
    }
    {
        ug::FaultPlan p;
        p.killRank = 2;
        p.killAfterSends = 6;  // mid-subproblem: a few Status reports in
        cases.push_back({"kill", p, true});
    }
    {
        ug::FaultPlan p;
        p.killRank = 2;
        p.killAfterSends = 6;
        p.hang = true;
        cases.push_back({"hang", p, true});
    }
    return cases;
}

long long faultsFired(const ug::UgStats& s) {
    return s.msgsDropped + s.msgsDelayed + s.msgsDuplicated +
           s.msgsReordered + s.msgsSwallowedDead;
}

}  // namespace

TEST(UgFaults, EveryFaultClassPreservesKnapsackOptimum) {
    Model m = hardKnapsack(14, 42);
    const double opt = sequentialOptimum(m);

    ug::UgConfig base;
    base.numSolvers = 4;
    ug::UgResult clean = ugcip::solveSimulated([&] { return m; }, base);
    ASSERT_EQ(clean.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(clean.best.obj, opt, 1e-6);

    for (const FaultCase& fc : faultCases()) {
        ug::UgConfig cfg = base;
        cfg.faults = fc.plan;
        if (fc.needsHeartbeat) cfg.heartbeatTimeout = 0.05;
        ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
        ASSERT_EQ(res.status, ug::UgStatus::Optimal) << fc.name;
        EXPECT_NEAR(res.best.obj, opt, 1e-6) << fc.name;
        EXPECT_GT(faultsFired(res.stats), 0)
            << fc.name << ": plan injected nothing — test is vacuous";
    }
}

TEST(UgFaults, KilledRankSubproblemIsRequeuedAndExcluded) {
    Model m = hardKnapsack(16, 7);
    const double opt = sequentialOptimum(m);

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.heartbeatTimeout = 0.05;
    cfg.faults.killRank = 2;
    cfg.faults.killAfterSends = 6;
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    // The victim was declared dead and its assigned root provably requeued,
    // then re-assigned (transferredNodes counts every assignment).
    EXPECT_EQ(res.stats.deadSolvers, 1);
    EXPECT_GE(res.stats.requeuedNodes, 1);
    EXPECT_GT(res.stats.transferredNodes, res.stats.requeuedNodes);
    EXPECT_GT(res.stats.msgsSwallowedDead, 0);
}

TEST(UgFaults, HungRankIsDeclaredDeadToo) {
    // A hang differs from a crash: the rank keeps computing and receiving
    // but its reports never arrive. From the coordinator's perspective it
    // must be indistinguishable from a crash — silence, then recovery.
    Model m = hardKnapsack(14, 11);
    const double opt = sequentialOptimum(m);

    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    cfg.heartbeatTimeout = 0.05;
    cfg.faults.killRank = 1;  // rank 1 gets the root: guaranteed mid-work
    cfg.faults.killAfterSends = 4;
    cfg.faults.hang = true;
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    EXPECT_EQ(res.stats.deadSolvers, 1);
    EXPECT_GE(res.stats.requeuedNodes, 1);
}

TEST(UgFaults, KillDuringRacingFallsBackToRoot) {
    Model m = hardKnapsack(15, 3);
    const double opt = sequentialOptimum(m);

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    cfg.racingOpenNodesLimit = 5;
    cfg.racingTimeLimit = 0.5;
    cfg.heartbeatTimeout = 0.05;
    cfg.faults.killRank = 1;
    cfg.faults.killAfterSends = 2;  // dies while every racer holds the root
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    EXPECT_EQ(res.stats.deadSolvers, 1);
}

TEST(UgFaults, FaultScheduleIsDeterministicForFixedSeed) {
    Model m = hardKnapsack(14, 42);
    ug::UgResult runs[2];
    for (int i = 0; i < 2; ++i) {
        ug::UgConfig cfg;
        cfg.numSolvers = 4;
        cfg.heartbeatTimeout = 0.05;
        cfg.faults.dropProb = 0.05;
        cfg.faults.delayProb = 0.2;
        cfg.faults.duplicateProb = 0.2;
        cfg.faults.seed = 777;
        runs[i] = ugcip::solveSimulated([&] { return m; }, cfg);
    }
    EXPECT_DOUBLE_EQ(runs[0].elapsed, runs[1].elapsed);
    EXPECT_DOUBLE_EQ(runs[0].best.obj, runs[1].best.obj);
    EXPECT_EQ(runs[0].stats.totalNodesProcessed,
              runs[1].stats.totalNodesProcessed);
    EXPECT_EQ(runs[0].stats.msgsDropped, runs[1].stats.msgsDropped);
    EXPECT_EQ(runs[0].stats.msgsDelayed, runs[1].stats.msgsDelayed);
    EXPECT_EQ(runs[0].stats.msgsDuplicated, runs[1].stats.msgsDuplicated);
    EXPECT_EQ(runs[0].stats.ignoredMessages, runs[1].stats.ignoredMessages);
}

TEST(UgFaults, SteinerInstanceSurvivesEveryFaultClass) {
    steiner::Graph g = steiner::genHypercube(4, true, 3);
    auto opt = steiner::steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    steiner::SteinerSolver seq(g);
    seq.presolve();
    ASSERT_FALSE(seq.instance().trivial());

    for (const FaultCase& fc : faultCases()) {
        ug::UgConfig cfg;
        cfg.numSolvers = 4;
        cfg.faults = fc.plan;
        if (fc.needsHeartbeat) cfg.heartbeatTimeout = 0.05;
        ug::UgResult res = ugcip::solveSteinerParallel(seq.instance(), cfg,
                                                       /*simulated=*/true);
        ASSERT_EQ(res.status, ug::UgStatus::Optimal) << fc.name;
        steiner::SteinerResult sr = ugcip::toSteinerResult(seq, res);
        EXPECT_NEAR(sr.cost, *opt, 1e-6) << fc.name;
        EXPECT_TRUE(g.spansTerminals(sr.originalEdges)) << fc.name;
    }
}

TEST(UgFaults, MisdpInstanceSurvivesEveryFaultClass) {
    misdp::MisdpProblem p = misdp::genCardinalityLS(3, 4, 2, 9);
    misdp::MisdpSolver seq(p);
    misdp::MisdpResult sr = seq.solve();
    ASSERT_EQ(sr.status, cip::Status::Optimal);

    for (const FaultCase& fc : faultCases()) {
        ug::UgConfig cfg;
        cfg.numSolvers = 4;
        cfg.faults = fc.plan;
        if (fc.needsHeartbeat) cfg.heartbeatTimeout = 0.05;
        ug::UgResult res =
            ugcip::solveMisdpParallel(p, cfg, /*simulated=*/true);
        ASSERT_EQ(res.status, ug::UgStatus::Optimal) << fc.name;
        EXPECT_NEAR(-res.best.obj, sr.objective, 1e-4) << fc.name;
    }
}

TEST(UgFaults, ThreadEngineRecoversFromKilledRank) {
    // Wall-clock variant: the victim's thread stops dead mid-subproblem and
    // the heartbeat path (not the deterministic event loop) must recover.
    Model m = hardKnapsack(14, 42);
    const double opt = sequentialOptimum(m);

    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    cfg.heartbeatTimeout = 0.15;  // wall seconds >> one B&B step
    cfg.faults.killRank = 1;      // root solver: guaranteed to be busy
    cfg.faults.killAfterSends = 4;
    ug::UgResult res = ugcip::solveWithThreads([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    EXPECT_EQ(res.stats.deadSolvers, 1);
    EXPECT_GE(res.stats.requeuedNodes, 1);
    EXPECT_GE(res.stats.idleRatio, 0.0);
    EXPECT_LE(res.stats.idleRatio, 1.0);
}

TEST(UgFaults, ThreadEngineBackToBackRunsAreIsolated) {
    // Reentrancy regression: run 1 is cut off by a time limit under message
    // faults (leaving delayed/duplicated traffic in the mailboxes); run 2 on
    // the SAME engine must start from a clean slate and solve to optimality.
    Model m = hardKnapsack(22, 17);
    const double opt = sequentialOptimum(m);

    ugcip::CipSolverFactory factory([&] { return m; });
    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    cfg.timeLimit = 0.002;  // wall seconds: cuts the first run short
    cfg.faults.delayProb = 0.3;
    cfg.faults.delaySeconds = 0.01;
    cfg.faults.duplicateProb = 0.3;
    ug::ThreadEngine engine(factory, cfg);

    ug::UgResult first = engine.run({});
    ASSERT_TRUE(first.status == ug::UgStatus::TimeLimit ||
                first.status == ug::UgStatus::Optimal);

    engine.config().timeLimit = 1e18;
    engine.config().faults = ug::FaultPlan{};
    ug::UgResult second = engine.run({});
    ASSERT_EQ(second.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(second.best.obj, opt, 1e-6);
    EXPECT_GT(second.stats.totalNodesProcessed, 0);
    EXPECT_GE(second.stats.idleRatio, 0.0);
    EXPECT_LE(second.stats.idleRatio, 1.0);
}

TEST(UgFaults, KeepaliveSuppressesFalseDeathUnderSparseStatusReports) {
    // With periodic Status reports effectively disabled, a busy solver is
    // silent for far longer than the heartbeat timeout; the keepalive pings
    // (sent whenever heartbeatTimeout/3 passes without traffic) are the only
    // thing keeping the failure detector from declaring healthy ranks dead.
    Model m = hardKnapsack(14, 42);
    const double opt = sequentialOptimum(m);

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.statusIntervalSteps = 1000000;
    cfg.heartbeatTimeout = 0.05;
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    EXPECT_EQ(res.stats.deadSolvers, 0);
    EXPECT_EQ(res.stats.requeuedNodes, 0);
}

TEST(UgFaults, CorruptedCutBundlesNeverChangeTheSteinerOptimum) {
    // Payload bit-flips on the shared-cut channel: the CRC-free wire framing
    // is defended by decode validation plus receiver-side certification, so
    // heavy corruption may suppress sharing but never the optimum.
    steiner::Graph g = steiner::genHypercube(4, true, 3);
    auto opt = steiner::steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    steiner::SteinerSolver seq(g);
    seq.presolve();
    ASSERT_FALSE(seq.instance().trivial());

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.faults.corruptProb = 0.5;
    ug::UgResult res =
        ugcip::solveSteinerParallel(seq.instance(), cfg, /*simulated=*/true);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    steiner::SteinerResult sr = ugcip::toSteinerResult(seq, res);
    EXPECT_NEAR(sr.cost, *opt, 1e-6);
    EXPECT_GT(res.stats.msgsCorrupted, 0)
        << "plan injected nothing — test is vacuous";
}

// --- stall detection: chatty-but-stuck ranks ---------------------------------

#include "ug/loadcoordinator.hpp"

namespace {

/// Base solver that wedges: it keeps stepping (and thus reporting Status)
/// but never advances its monotone work counter — unless created under the
/// fallback parameter profile, in which case it solves in one step. Models a
/// degenerate-cycling LP that a pricing switch escapes.
class StallableMock : public ug::BaseSolver {
public:
    explicit StallableMock(bool fallback) : fallback_(fallback) {}

    void load(const cip::SubproblemDesc&, const cip::Solution*) override {
        open_ = 1;
        processed_ = 0;
    }
    std::int64_t step() override {
        if (fallback_) {
            processed_ = 1;
            open_ = 0;
            best_.x = {1.0};
            best_.obj = -42.0;
            if (cb_) cb_(best_);
        }
        return 5;
    }
    bool finished() const override { return open_ == 0; }
    ug::BaseStatus status() const override {
        return finished() ? ug::BaseStatus::Optimal : ug::BaseStatus::Working;
    }
    double dualBound() const override { return -100.0; }
    int numOpenNodes() const override { return open_; }
    std::int64_t nodesProcessed() const override { return processed_; }
    const cip::Solution& incumbent() const override { return best_; }
    void injectSolution(const cip::Solution& sol) override { best_ = sol; }
    ug::LpEffort lpEffort() const override { return {}; }
    std::optional<cip::SubproblemDesc> extractOpenNode() override {
        return std::nullopt;
    }
    void setIncumbentCallback(
        std::function<void(const cip::Solution&)> cb) override {
        cb_ = std::move(cb);
    }

private:
    bool fallback_;
    int open_ = 0;
    std::int64_t processed_ = 0;
    cip::Solution best_;
    std::function<void(const cip::Solution&)> cb_;
};

class StallableFactory : public ug::BaseSolverFactory {
public:
    std::unique_ptr<ug::BaseSolver> create(const cip::ParamSet& p) override {
        return std::make_unique<StallableMock>(
            p.getString("lp/pricing", "") == "devex");
    }
};

/// ParaComm with a settable clock, recording every send — drives the
/// LoadCoordinator's failure detector deterministically without an engine.
class ClockComm : public ug::ParaComm {
public:
    explicit ClockComm(int size) : size_(size) {}
    int size() const override { return size_; }
    void send(int src, int dest, ug::Message msg) override {
        msg.src = src;
        sent.emplace_back(dest, std::move(msg));
    }
    double now(int) const override { return t; }

    int count(ug::Tag tag, int dest) const {
        int n = 0;
        for (const auto& [d, m] : sent)
            if (d == dest && m.tag == tag) ++n;
        return n;
    }
    const ug::Message* last(ug::Tag tag, int dest) const {
        const ug::Message* found = nullptr;
        for (const auto& [d, m] : sent)
            if (d == dest && m.tag == tag) found = &m;
        return found;
    }

    double t = 0.0;
    std::vector<std::pair<int, ug::Message>> sent;

private:
    int size_;
};

ug::Message stallStatus(int src, std::int64_t workDone) {
    ug::Message m;
    m.tag = ug::Tag::Status;
    m.src = src;
    m.dualBound = -10.0;
    m.openNodes = 1;
    m.nodesProcessed = 1;
    m.workDone = workDone;
    return m;
}

}  // namespace

TEST(UgStall, SimEngineRecoversFromStalledSolverViaFallbackProfile) {
    StallableFactory factory;
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    cfg.statusIntervalSteps = 1;
    cfg.heartbeatTimeout = 5.0;  // chatty rank: silence detection never fires
    cfg.stallTimeout = 0.02;
    ug::SimEngine engine(factory, cfg);
    ug::UgResult res = engine.run({});
    // The stalled root was soft-interrupted, requeued, and redispatched
    // under the fallback profile — which solves it.
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, -42.0, 1e-12);
    EXPECT_EQ(res.stats.stallInterrupts, 1);
    EXPECT_EQ(res.stats.requeuedNodes, 1);
    EXPECT_EQ(res.stats.deadSolvers, 0);
    EXPECT_EQ(res.stats.transferredNodes, 2);
}

TEST(UgStall, ChattyButStuckRankIsInterruptedThenRedispatchedWithFallback) {
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    cfg.heartbeatTimeout = 100.0;
    cfg.stallTimeout = 1.0;
    ClockComm comm(3);
    ug::LoadCoordinator lc(comm, cfg);
    lc.start({});  // root -> rank 1

    // One genuine progress report, then the watermark freezes while the rank
    // stays chatty: Status keeps flowing but workDone never advances.
    comm.t = 0.5;
    lc.handleMessage(stallStatus(1, 50));
    for (double t : {0.9, 1.2, 1.5}) {
        comm.t = t;
        lc.handleMessage(stallStatus(1, 50));
    }
    comm.t = 1.6;  // 1.1s past the last watermark advance at t=0.5
    lc.onTimer(comm.t);
    EXPECT_EQ(comm.count(ug::Tag::Interrupt, 1), 1);
    EXPECT_EQ(lc.stats().stallInterrupts, 1);
    EXPECT_EQ(lc.stats().deadSolvers, 0);

    // The interrupted rank reports back incomplete: its root is requeued
    // with a bumped retry level and redispatched under the fallback profile.
    ug::Message term;
    term.tag = ug::Tag::Terminated;
    term.src = 1;
    term.completed = false;
    comm.t = 1.7;
    lc.handleMessage(term);
    EXPECT_EQ(lc.stats().requeuedNodes, 1);
    const ug::Message* sub = comm.last(ug::Tag::Subproblem, 1);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->desc.retryLevel, 1);
    EXPECT_EQ(sub->params.getString("lp/pricing", ""), "devex");
    EXPECT_FALSE(sub->params.getBool("stp/redprop/incremental", true));
}

TEST(UgStall, UnresponsiveStalledRankEscalatesToDead) {
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    cfg.heartbeatTimeout = 100.0;
    cfg.stallTimeout = 1.0;
    ClockComm comm(3);
    ug::LoadCoordinator lc(comm, cfg);
    lc.start({});

    comm.t = 0.5;
    lc.handleMessage(stallStatus(1, 50));
    comm.t = 1.6;
    lc.onTimer(comm.t);  // soft Interrupt
    ASSERT_EQ(comm.count(ug::Tag::Interrupt, 1), 1);

    // The Interrupt (or its Terminated reply) was lost: the rank keeps
    // sending zero-progress Status for another full stall window.
    comm.t = 2.0;
    lc.handleMessage(stallStatus(1, 50));
    comm.t = 2.7;  // 1.1s past the Interrupt at t=1.6
    lc.onTimer(comm.t);
    EXPECT_EQ(lc.stats().deadSolvers, 1);
    EXPECT_EQ(lc.stats().stallInterrupts, 1);
    EXPECT_EQ(lc.stats().requeuedNodes, 1);
    // The root moved to the surviving rank, still under the fallback
    // profile (the stall evidence travels with the retry level).
    const ug::Message* sub = comm.last(ug::Tag::Subproblem, 2);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->desc.retryLevel, 1);
    EXPECT_EQ(sub->params.getString("lp/pricing", ""), "devex");

    // Stale traffic from the written-off rank is discarded.
    const long long ignoredBefore = lc.stats().ignoredMessages;
    comm.t = 2.8;
    lc.handleMessage(stallStatus(1, 50));
    EXPECT_GE(lc.stats().ignoredMessages, ignoredBefore + 1);
}

// --- cut-sharing quarantine: repeated corrupt bundles ------------------------

namespace {

ug::Message corruptCutStatus(int src) {
    ug::Message m = stallStatus(src, 0);
    EXPECT_TRUE(m.cuts.append({1, 5, 9}));
    // Word 1 is the support size; the flip turns it into a count that
    // overruns the blob, so decoding is guaranteed to fail.
    m.cuts.flipWireBit(1, 4);
    return m;
}

ug::Message validCutStatus(int src, const std::vector<int>& vars) {
    ug::Message m = stallStatus(src, 0);
    EXPECT_TRUE(m.cuts.append(vars));
    return m;
}

}  // namespace

TEST(UgQuarantine, RepeatedCorruptBundlesSuspendSharingWithBackoff) {
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    cfg.shareQuarantineStreak = 2;
    cfg.shareQuarantineBackoff = 0.5;
    ClockComm comm(3);
    ug::LoadCoordinator lc(comm, cfg);
    lc.start({});

    // Two consecutive corrupt bundles trip the quarantine: suspended until
    // t = 0.2 + 0.5 * 2^0 = 0.7.
    comm.t = 0.1;
    lc.handleMessage(corruptCutStatus(1));
    comm.t = 0.2;
    lc.handleMessage(corruptCutStatus(1));
    EXPECT_EQ(lc.stats().shareCutsDecodeFailures, 2);

    // Inside the window even a valid bundle is dropped whole...
    comm.t = 0.4;
    lc.handleMessage(validCutStatus(1, {2, 7}));
    EXPECT_EQ(lc.stats().shareCutsQuarantined, 1);
    EXPECT_EQ(lc.stats().shareCutsPooled, 0);

    // ...and after it expires, sharing resumes.
    comm.t = 0.8;
    lc.handleMessage(validCutStatus(1, {2, 7}));
    EXPECT_EQ(lc.stats().shareCutsPooled, 1);

    // A repeat offense doubles the backoff: suspended until 1.0 + 0.5*2 = 2.0.
    comm.t = 0.9;
    lc.handleMessage(corruptCutStatus(1));
    comm.t = 1.0;
    lc.handleMessage(corruptCutStatus(1));
    EXPECT_EQ(lc.stats().shareCutsDecodeFailures, 4);
    comm.t = 1.9;
    lc.handleMessage(validCutStatus(1, {3, 8}));
    EXPECT_EQ(lc.stats().shareCutsQuarantined, 2);
    EXPECT_EQ(lc.stats().shareCutsPooled, 1);
    comm.t = 2.1;
    lc.handleMessage(validCutStatus(1, {3, 8}));
    EXPECT_EQ(lc.stats().shareCutsPooled, 2);
}

TEST(UgQuarantine, WorkerReportedDecodeFailuresCountTowardQuarantine) {
    // Corruption on the LC->worker direction surfaces as the worker's
    // sharedDecodeFailures counter; the coordinator folds the delta into the
    // same per-rank quarantine as its own decode failures.
    ug::UgConfig cfg;  // default streak 3, backoff 0.25
    cfg.numSolvers = 2;
    ClockComm comm(3);
    ug::LoadCoordinator lc(comm, cfg);
    lc.start({});

    comm.t = 0.1;
    ug::Message m = stallStatus(1, 0);
    m.lpEffort.sharedDecodeFailures = 3;
    lc.handleMessage(m);
    EXPECT_EQ(lc.stats().shareCutsDecodeFailures, 3);

    // Quarantined until 0.1 + 0.25 = 0.35: a valid bundle inside is dropped.
    comm.t = 0.2;
    ug::Message v = validCutStatus(1, {4, 6});
    v.lpEffort.sharedDecodeFailures = 3;  // unchanged cumulative counter
    lc.handleMessage(v);
    EXPECT_EQ(lc.stats().shareCutsQuarantined, 1);
    EXPECT_EQ(lc.stats().shareCutsPooled, 0);
}
