// Fault-tolerance tests of the Supervisor-Worker protocol: every fault
// class FaultyComm can inject (drop, delay, duplicate, reorder, kill, hang)
// must leave the optimum unchanged, on generic CIP instances as well as on
// the Steiner and MISDP example instances. The SimEngine runs are exactly
// reproducible for a fixed FaultPlan seed, so these are deterministic
// regression tests of the recovery paths (heartbeat death declaration,
// requeue-on-failure, idempotent message handling), not flaky chaos tests.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "misdp/instances.hpp"
#include "misdp/solver.hpp"
#include "steiner/exactdp.hpp"
#include "steiner/instances.hpp"
#include "steiner/stpsolver.hpp"
#include "ugcip/misdp_plugins.hpp"
#include "ugcip/stp_plugins.hpp"
#include "ugcip/ugcip.hpp"

using cip::kInf;
using cip::Model;
using cip::Row;

namespace {

/// Same weakly-correlated knapsack family as test_ug.cpp: decent tree size,
/// known-good via the sequential solver.
Model hardKnapsack(int n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> w(10, 30);
    Model m;
    std::vector<std::pair<int, double>> coefs;
    double total = 0;
    for (int j = 0; j < n; ++j) {
        const double weight = w(rng);
        m.addVar(-(weight + (j % 3)), 0.0, 1.0, true);
        coefs.emplace_back(j, weight);
        total += weight;
    }
    m.addLinear(Row(std::move(coefs), -kInf, std::floor(total / 2)));
    return m;
}

double sequentialOptimum(const Model& m) {
    cip::Solver s;
    Model copy = m;
    s.setModel(std::move(copy));
    EXPECT_EQ(s.solve(), cip::Status::Optimal);
    return s.incumbent().obj;
}

/// The fault classes under test. Each returns a plan with a fixed seed;
/// `heartbeat` says whether the class needs the failure detector for
/// guaranteed termination (drop and kill do; the others are loss-free).
struct FaultCase {
    const char* name;
    ug::FaultPlan plan;
    bool needsHeartbeat;
};

std::vector<FaultCase> faultCases() {
    std::vector<FaultCase> cases;
    {
        ug::FaultPlan p;
        p.dropProb = 0.08;
        cases.push_back({"drop", p, true});
    }
    {
        ug::FaultPlan p;
        p.delayProb = 0.30;
        p.delaySeconds = 0.004;
        cases.push_back({"delay", p, false});
    }
    {
        ug::FaultPlan p;
        p.duplicateProb = 0.30;
        cases.push_back({"duplicate", p, false});
    }
    {
        ug::FaultPlan p;
        p.reorderProb = 0.30;
        p.reorderWindow = 0.004;
        cases.push_back({"reorder", p, false});
    }
    {
        ug::FaultPlan p;
        p.killRank = 2;
        p.killAfterSends = 6;  // mid-subproblem: a few Status reports in
        cases.push_back({"kill", p, true});
    }
    {
        ug::FaultPlan p;
        p.killRank = 2;
        p.killAfterSends = 6;
        p.hang = true;
        cases.push_back({"hang", p, true});
    }
    return cases;
}

long long faultsFired(const ug::UgStats& s) {
    return s.msgsDropped + s.msgsDelayed + s.msgsDuplicated +
           s.msgsReordered + s.msgsSwallowedDead;
}

}  // namespace

TEST(UgFaults, EveryFaultClassPreservesKnapsackOptimum) {
    Model m = hardKnapsack(14, 42);
    const double opt = sequentialOptimum(m);

    ug::UgConfig base;
    base.numSolvers = 4;
    ug::UgResult clean = ugcip::solveSimulated([&] { return m; }, base);
    ASSERT_EQ(clean.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(clean.best.obj, opt, 1e-6);

    for (const FaultCase& fc : faultCases()) {
        ug::UgConfig cfg = base;
        cfg.faults = fc.plan;
        if (fc.needsHeartbeat) cfg.heartbeatTimeout = 0.05;
        ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
        ASSERT_EQ(res.status, ug::UgStatus::Optimal) << fc.name;
        EXPECT_NEAR(res.best.obj, opt, 1e-6) << fc.name;
        EXPECT_GT(faultsFired(res.stats), 0)
            << fc.name << ": plan injected nothing — test is vacuous";
    }
}

TEST(UgFaults, KilledRankSubproblemIsRequeuedAndExcluded) {
    Model m = hardKnapsack(16, 7);
    const double opt = sequentialOptimum(m);

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.heartbeatTimeout = 0.05;
    cfg.faults.killRank = 2;
    cfg.faults.killAfterSends = 6;
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    // The victim was declared dead and its assigned root provably requeued,
    // then re-assigned (transferredNodes counts every assignment).
    EXPECT_EQ(res.stats.deadSolvers, 1);
    EXPECT_GE(res.stats.requeuedNodes, 1);
    EXPECT_GT(res.stats.transferredNodes, res.stats.requeuedNodes);
    EXPECT_GT(res.stats.msgsSwallowedDead, 0);
}

TEST(UgFaults, HungRankIsDeclaredDeadToo) {
    // A hang differs from a crash: the rank keeps computing and receiving
    // but its reports never arrive. From the coordinator's perspective it
    // must be indistinguishable from a crash — silence, then recovery.
    Model m = hardKnapsack(14, 11);
    const double opt = sequentialOptimum(m);

    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    cfg.heartbeatTimeout = 0.05;
    cfg.faults.killRank = 1;  // rank 1 gets the root: guaranteed mid-work
    cfg.faults.killAfterSends = 4;
    cfg.faults.hang = true;
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    EXPECT_EQ(res.stats.deadSolvers, 1);
    EXPECT_GE(res.stats.requeuedNodes, 1);
}

TEST(UgFaults, KillDuringRacingFallsBackToRoot) {
    Model m = hardKnapsack(15, 3);
    const double opt = sequentialOptimum(m);

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    cfg.racingOpenNodesLimit = 5;
    cfg.racingTimeLimit = 0.5;
    cfg.heartbeatTimeout = 0.05;
    cfg.faults.killRank = 1;
    cfg.faults.killAfterSends = 2;  // dies while every racer holds the root
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    EXPECT_EQ(res.stats.deadSolvers, 1);
}

TEST(UgFaults, FaultScheduleIsDeterministicForFixedSeed) {
    Model m = hardKnapsack(14, 42);
    ug::UgResult runs[2];
    for (int i = 0; i < 2; ++i) {
        ug::UgConfig cfg;
        cfg.numSolvers = 4;
        cfg.heartbeatTimeout = 0.05;
        cfg.faults.dropProb = 0.05;
        cfg.faults.delayProb = 0.2;
        cfg.faults.duplicateProb = 0.2;
        cfg.faults.seed = 777;
        runs[i] = ugcip::solveSimulated([&] { return m; }, cfg);
    }
    EXPECT_DOUBLE_EQ(runs[0].elapsed, runs[1].elapsed);
    EXPECT_DOUBLE_EQ(runs[0].best.obj, runs[1].best.obj);
    EXPECT_EQ(runs[0].stats.totalNodesProcessed,
              runs[1].stats.totalNodesProcessed);
    EXPECT_EQ(runs[0].stats.msgsDropped, runs[1].stats.msgsDropped);
    EXPECT_EQ(runs[0].stats.msgsDelayed, runs[1].stats.msgsDelayed);
    EXPECT_EQ(runs[0].stats.msgsDuplicated, runs[1].stats.msgsDuplicated);
    EXPECT_EQ(runs[0].stats.ignoredMessages, runs[1].stats.ignoredMessages);
}

TEST(UgFaults, SteinerInstanceSurvivesEveryFaultClass) {
    steiner::Graph g = steiner::genHypercube(4, true, 3);
    auto opt = steiner::steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    steiner::SteinerSolver seq(g);
    seq.presolve();
    ASSERT_FALSE(seq.instance().trivial());

    for (const FaultCase& fc : faultCases()) {
        ug::UgConfig cfg;
        cfg.numSolvers = 4;
        cfg.faults = fc.plan;
        if (fc.needsHeartbeat) cfg.heartbeatTimeout = 0.05;
        ug::UgResult res = ugcip::solveSteinerParallel(seq.instance(), cfg,
                                                       /*simulated=*/true);
        ASSERT_EQ(res.status, ug::UgStatus::Optimal) << fc.name;
        steiner::SteinerResult sr = ugcip::toSteinerResult(seq, res);
        EXPECT_NEAR(sr.cost, *opt, 1e-6) << fc.name;
        EXPECT_TRUE(g.spansTerminals(sr.originalEdges)) << fc.name;
    }
}

TEST(UgFaults, MisdpInstanceSurvivesEveryFaultClass) {
    misdp::MisdpProblem p = misdp::genCardinalityLS(3, 4, 2, 9);
    misdp::MisdpSolver seq(p);
    misdp::MisdpResult sr = seq.solve();
    ASSERT_EQ(sr.status, cip::Status::Optimal);

    for (const FaultCase& fc : faultCases()) {
        ug::UgConfig cfg;
        cfg.numSolvers = 4;
        cfg.faults = fc.plan;
        if (fc.needsHeartbeat) cfg.heartbeatTimeout = 0.05;
        ug::UgResult res =
            ugcip::solveMisdpParallel(p, cfg, /*simulated=*/true);
        ASSERT_EQ(res.status, ug::UgStatus::Optimal) << fc.name;
        EXPECT_NEAR(-res.best.obj, sr.objective, 1e-4) << fc.name;
    }
}

TEST(UgFaults, ThreadEngineRecoversFromKilledRank) {
    // Wall-clock variant: the victim's thread stops dead mid-subproblem and
    // the heartbeat path (not the deterministic event loop) must recover.
    Model m = hardKnapsack(14, 42);
    const double opt = sequentialOptimum(m);

    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    cfg.heartbeatTimeout = 0.15;  // wall seconds >> one B&B step
    cfg.faults.killRank = 1;      // root solver: guaranteed to be busy
    cfg.faults.killAfterSends = 4;
    ug::UgResult res = ugcip::solveWithThreads([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    EXPECT_EQ(res.stats.deadSolvers, 1);
    EXPECT_GE(res.stats.requeuedNodes, 1);
    EXPECT_GE(res.stats.idleRatio, 0.0);
    EXPECT_LE(res.stats.idleRatio, 1.0);
}

TEST(UgFaults, ThreadEngineBackToBackRunsAreIsolated) {
    // Reentrancy regression: run 1 is cut off by a time limit under message
    // faults (leaving delayed/duplicated traffic in the mailboxes); run 2 on
    // the SAME engine must start from a clean slate and solve to optimality.
    Model m = hardKnapsack(22, 17);
    const double opt = sequentialOptimum(m);

    ugcip::CipSolverFactory factory([&] { return m; });
    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    cfg.timeLimit = 0.002;  // wall seconds: cuts the first run short
    cfg.faults.delayProb = 0.3;
    cfg.faults.delaySeconds = 0.01;
    cfg.faults.duplicateProb = 0.3;
    ug::ThreadEngine engine(factory, cfg);

    ug::UgResult first = engine.run({});
    ASSERT_TRUE(first.status == ug::UgStatus::TimeLimit ||
                first.status == ug::UgStatus::Optimal);

    engine.config().timeLimit = 1e18;
    engine.config().faults = ug::FaultPlan{};
    ug::UgResult second = engine.run({});
    ASSERT_EQ(second.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(second.best.obj, opt, 1e-6);
    EXPECT_GT(second.stats.totalNodesProcessed, 0);
    EXPECT_GE(second.stats.idleRatio, 0.0);
    EXPECT_LE(second.stats.idleRatio, 1.0);
}
