// Second LP test pass: row-bound changes (the managed-row mechanism),
// iteration limits, duals on equality and range rows, degenerate
// plateau handling, anti-cycling, refactorization drift and basis
// snapshot/restore.
#include <gtest/gtest.h>

#include <random>

#include "lp/dense_simplex.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

using lp::kInf;
using lp::LpModel;
using lp::Row;
using lp::SimplexSolver;
using lp::SolveStatus;

TEST(SimplexRows, ChangeRowBoundsActsLikeManagedRow) {
    // max x+y in [0,5]^2 with an initially inactive row x + y <= ?.
    LpModel m;
    m.addCol(-1.0, 0.0, 5.0);
    m.addCol(-1.0, 0.0, 5.0);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, -kInf, kInf));  // free row
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -10.0, 1e-8);
    // Activate the row.
    s.changeRowBounds(0, -kInf, 4.0);
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -4.0, 1e-8);
    // Deactivate again.
    s.changeRowBounds(0, -kInf, kInf);
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -10.0, 1e-8);
    // Tighten to equality.
    s.changeRowBounds(0, 2.0, 2.0);
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -2.0, 1e-8);
}

TEST(SimplexRows, RowBoundsCanMakeLpInfeasible) {
    LpModel m;
    m.addCol(1.0, 0.0, 1.0);
    m.addRow(Row({{0, 1.0}}, -kInf, kInf));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    s.changeRowBounds(0, 5.0, kInf);  // x >= 5 with x <= 1
    EXPECT_EQ(s.resolve(), SolveStatus::Infeasible);
    // And recover.
    s.changeRowBounds(0, -kInf, kInf);
    EXPECT_EQ(s.resolve(), SolveStatus::Optimal);
}

TEST(SimplexLimits, IterLimitReported) {
    std::mt19937 rng(5);
    std::uniform_real_distribution<double> coef(-1.0, 1.0);
    LpModel m;
    const int n = 30;
    for (int j = 0; j < n; ++j) m.addCol(coef(rng), 0.0, 2.0);
    for (int i = 0; i < 30; ++i) {
        std::vector<std::pair<int, double>> cs;
        for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
        m.addRow(Row(std::move(cs), -3.0, 3.0));
    }
    SimplexSolver s;
    s.load(m);
    s.setIterLimit(3);
    SolveStatus st = s.solve();
    EXPECT_TRUE(st == SolveStatus::IterLimit || st == SolveStatus::Optimal);
}

TEST(SimplexDuals, EqualityRowDualMatchesShadowPrice) {
    // min x + 3y s.t. x + y = 4, x <= 3 -> x=3,y=1, obj 6.
    // Shadow price of the equality: d(obj)/d(rhs) = 3 (y absorbs changes).
    LpModel m;
    m.addCol(1.0, 0.0, 3.0);
    m.addCol(3.0, 0.0, kInf);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, 4.0, 4.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), 6.0, 1e-8);
    EXPECT_NEAR(s.duals()[0], 3.0, 1e-7);
}

TEST(SimplexDuals, StrongDualityOnRangeRows) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> coef(-2.0, 2.0);
    for (int rep = 0; rep < 8; ++rep) {
        LpModel m;
        const int n = 5;
        for (int j = 0; j < n; ++j) m.addCol(coef(rng), -1.0, 2.0);
        for (int i = 0; i < 4; ++i) {
            std::vector<std::pair<int, double>> cs;
            for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
            m.addRow(Row(std::move(cs), -3.0, 3.0));
        }
        SimplexSolver s;
        s.load(m);
        if (s.solve() != SolveStatus::Optimal) continue;
        // Lagrangian check: obj == sum_i y_i * activity_i + sum_j rc_j x_j
        // with activity at the binding side (complementary slackness).
        const auto& x = s.primal();
        const auto& y = s.duals();
        const auto& rc = s.reducedCosts();
        double lag = 0.0;
        for (int i = 0; i < m.numRows(); ++i)
            lag += y[i] * m.row(i).activity(x);
        for (int j = 0; j < n; ++j) lag += rc[j] * x[j];
        EXPECT_NEAR(lag, s.objective(), 1e-6) << "rep " << rep;
    }
}

TEST(SimplexAntiCycling, BealeCyclingLpTerminates) {
    // Beale's classic cycling example: textbook Dantzig pricing with a naive
    // ratio test cycles forever on this LP. The stall detector must switch
    // to Bland's rule and reach the optimum (-1/20) in finitely many steps.
    LpModel m;
    m.addCol(-0.75, 0.0, kInf);
    m.addCol(150.0, 0.0, kInf);
    m.addCol(-0.02, 0.0, kInf);
    m.addCol(6.0, 0.0, kInf);
    m.addRow(Row({{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, -kInf, 0.0));
    m.addRow(Row({{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, -kInf, 0.0));
    m.addRow(Row({{2, 1.0}}, -kInf, 1.0));
    SimplexSolver s;
    s.load(m);
    s.setIterLimit(10000);  // cycling would exhaust this
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -0.05, 1e-8);
    EXPECT_LT(s.iterations(), 10000);
}

TEST(SimplexRefactor, EtaGrowthTriggersRefactorization) {
    // A long chain of bound-change reoptimizations accumulates eta updates;
    // the fill budget / residual backstop must refactorize along the way and
    // the final answer must match a cold solve of the same bounds.
    std::mt19937 rng(17);
    std::uniform_real_distribution<double> coef(-1.0, 1.0);
    LpModel m;
    const int n = 20;
    for (int j = 0; j < n; ++j) m.addCol(coef(rng), 0.0, 4.0);
    for (int i = 0; i < 15; ++i) {
        std::vector<std::pair<int, double>> cs;
        for (int j = 0; j < n; ++j)
            if ((i + j) % 3 == 0) cs.emplace_back(j, coef(rng));
        if (cs.empty()) cs.emplace_back(i % n, 1.0);
        m.addRow(Row(std::move(cs), -4.0, 4.0));
    }
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    const long factAfterFirst = s.factorizations();
    const long itersAfterFirst = s.iterations();
    // Alternate every column's upper bound each round; each resolve has to
    // pivot, steadily growing the eta file past its fill budget.
    const int rounds = 40;
    for (int round = 0; round < rounds; ++round) {
        for (int j = 0; j < n; ++j)
            s.changeBounds(j, 0.0, (round + j) % 2 ? 1.0 : 4.0);
        ASSERT_EQ(s.resolve(), SolveStatus::Optimal) << "round " << round;
    }
    ASSERT_GT(s.iterations(), itersAfterFirst);  // the flips did pivot
    EXPECT_GT(s.factorizations(), factAfterFirst)
        << rounds << " reoptimizations never refactorized: drift unchecked";
    // Cold-solve the final bound state for comparison.
    SimplexSolver cold;
    cold.load(m);
    for (int j = 0; j < n; ++j)
        cold.changeBounds(j, 0.0, (rounds - 1 + j) % 2 ? 1.0 : 4.0);
    ASSERT_EQ(cold.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), cold.objective(), 1e-6);
}

TEST(SimplexBasis, SaveRestoreRoundtrip) {
    std::mt19937 rng(23);
    std::uniform_real_distribution<double> coef(-1.0, 1.0);
    LpModel m;
    const int n = 12;
    for (int j = 0; j < n; ++j) m.addCol(coef(rng), 0.0, 3.0);
    for (int i = 0; i < 8; ++i) {
        std::vector<std::pair<int, double>> cs;
        for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
        m.addRow(Row(std::move(cs), -2.0, 2.0));
    }
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    const double optObj = s.objective();
    lp::Basis snap = s.basis();
    ASSERT_TRUE(snap.valid());

    // Wander off: tighten bounds, reoptimize somewhere else.
    s.changeBounds(0, 0.0, 0.5);
    s.changeBounds(1, 1.0, 3.0);
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);

    // Restore bounds + basis: the old optimum must be reproduced with few
    // (ideally zero) pivots since the loaded basis is already optimal.
    s.changeBounds(0, 0.0, 3.0);
    s.changeBounds(1, 0.0, 3.0);
    ASSERT_TRUE(s.loadBasis(snap));
    const long before = s.iterations();
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), optObj, 1e-7);
    EXPECT_LE(s.iterations() - before, 5);
}

TEST(SimplexBasis, LoadBasisAdaptsToRowsAddedSinceSnapshot) {
    LpModel m;
    m.addCol(-1.0, 0.0, 4.0);
    m.addCol(-1.0, 0.0, 4.0);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, -kInf, 6.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    lp::Basis snap = s.basis();  // 2 cols + 1 row

    // Add a cut, then load the pre-cut snapshot: the new row's slack must be
    // patched in as basic and the resolve must honor the cut.
    ASSERT_EQ(s.addRowsAndResolve({Row({{0, 1.0}}, -kInf, 1.0)}),
              SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -5.0, 1e-8);
    ASSERT_TRUE(s.loadBasis(snap));
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -5.0, 1e-8);

    // A snapshot from a solver with a different column count must be
    // rejected (caller then cold-starts).
    lp::Basis wrong;
    wrong.cols = 7;
    wrong.rows = 1;
    wrong.status.assign(8, lp::VarStatus::AtLower);
    EXPECT_FALSE(s.loadBasis(wrong));
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -5.0, 1e-8);
}

TEST(SparseVsDense, RandomLpObjectivesAgree) {
    // The sparse engine must reproduce the retired dense engine's optima.
    std::mt19937 rng(31);
    std::uniform_real_distribution<double> coef(-2.0, 2.0);
    int compared = 0;
    for (int rep = 0; rep < 20; ++rep) {
        LpModel m;
        const int n = 4 + rep % 7;
        for (int j = 0; j < n; ++j) m.addCol(coef(rng), -1.0, 2.0);
        const int rows = 3 + rep % 5;
        for (int i = 0; i < rows; ++i) {
            std::vector<std::pair<int, double>> cs;
            for (int j = 0; j < n; ++j)
                if ((i + j + rep) % 2 == 0) cs.emplace_back(j, coef(rng));
            if (cs.empty()) cs.emplace_back(0, 1.0);
            m.addRow(Row(std::move(cs), -3.0, 3.0));
        }
        SimplexSolver sparse;
        lp::DenseSimplexSolver dense;
        sparse.load(m);
        dense.load(m);
        SolveStatus a = sparse.solve();
        SolveStatus b = dense.solve();
        ASSERT_EQ(a, b) << "rep " << rep;
        if (a == SolveStatus::Optimal) {
            EXPECT_NEAR(sparse.objective(), dense.objective(), 1e-6)
                << "rep " << rep;
            ++compared;
        }
    }
    EXPECT_GT(compared, 10);
}

TEST(SimplexDegeneracy, ManyIdenticalRowsStillFast) {
    // A heavily degenerate LP (many duplicate constraints through one
    // vertex); the anti-degeneracy machinery must terminate quickly.
    LpModel m;
    m.addCol(-1.0, 0.0, kInf);
    m.addCol(-2.0, 0.0, kInf);
    for (int k = 0; k < 40; ++k)
        m.addRow(Row({{0, 1.0}, {1, 1.0}}, -kInf, 3.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -6.0, 1e-8);
    EXPECT_LT(s.iterations(), 2000);
}
