// Second LP test pass: row-bound changes (the managed-row mechanism),
// iteration limits, duals on equality and range rows, and degenerate
// plateau handling.
#include <gtest/gtest.h>

#include <random>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

using lp::kInf;
using lp::LpModel;
using lp::Row;
using lp::SimplexSolver;
using lp::SolveStatus;

TEST(SimplexRows, ChangeRowBoundsActsLikeManagedRow) {
    // max x+y in [0,5]^2 with an initially inactive row x + y <= ?.
    LpModel m;
    m.addCol(-1.0, 0.0, 5.0);
    m.addCol(-1.0, 0.0, 5.0);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, -kInf, kInf));  // free row
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -10.0, 1e-8);
    // Activate the row.
    s.changeRowBounds(0, -kInf, 4.0);
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -4.0, 1e-8);
    // Deactivate again.
    s.changeRowBounds(0, -kInf, kInf);
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -10.0, 1e-8);
    // Tighten to equality.
    s.changeRowBounds(0, 2.0, 2.0);
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -2.0, 1e-8);
}

TEST(SimplexRows, RowBoundsCanMakeLpInfeasible) {
    LpModel m;
    m.addCol(1.0, 0.0, 1.0);
    m.addRow(Row({{0, 1.0}}, -kInf, kInf));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    s.changeRowBounds(0, 5.0, kInf);  // x >= 5 with x <= 1
    EXPECT_EQ(s.resolve(), SolveStatus::Infeasible);
    // And recover.
    s.changeRowBounds(0, -kInf, kInf);
    EXPECT_EQ(s.resolve(), SolveStatus::Optimal);
}

TEST(SimplexLimits, IterLimitReported) {
    std::mt19937 rng(5);
    std::uniform_real_distribution<double> coef(-1.0, 1.0);
    LpModel m;
    const int n = 30;
    for (int j = 0; j < n; ++j) m.addCol(coef(rng), 0.0, 2.0);
    for (int i = 0; i < 30; ++i) {
        std::vector<std::pair<int, double>> cs;
        for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
        m.addRow(Row(std::move(cs), -3.0, 3.0));
    }
    SimplexSolver s;
    s.load(m);
    s.setIterLimit(3);
    SolveStatus st = s.solve();
    EXPECT_TRUE(st == SolveStatus::IterLimit || st == SolveStatus::Optimal);
}

TEST(SimplexDuals, EqualityRowDualMatchesShadowPrice) {
    // min x + 3y s.t. x + y = 4, x <= 3 -> x=3,y=1, obj 6.
    // Shadow price of the equality: d(obj)/d(rhs) = 3 (y absorbs changes).
    LpModel m;
    m.addCol(1.0, 0.0, 3.0);
    m.addCol(3.0, 0.0, kInf);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, 4.0, 4.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), 6.0, 1e-8);
    EXPECT_NEAR(s.duals()[0], 3.0, 1e-7);
}

TEST(SimplexDuals, StrongDualityOnRangeRows) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> coef(-2.0, 2.0);
    for (int rep = 0; rep < 8; ++rep) {
        LpModel m;
        const int n = 5;
        for (int j = 0; j < n; ++j) m.addCol(coef(rng), -1.0, 2.0);
        for (int i = 0; i < 4; ++i) {
            std::vector<std::pair<int, double>> cs;
            for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
            m.addRow(Row(std::move(cs), -3.0, 3.0));
        }
        SimplexSolver s;
        s.load(m);
        if (s.solve() != SolveStatus::Optimal) continue;
        // Lagrangian check: obj == sum_i y_i * activity_i + sum_j rc_j x_j
        // with activity at the binding side (complementary slackness).
        const auto& x = s.primal();
        const auto& y = s.duals();
        const auto& rc = s.reducedCosts();
        double lag = 0.0;
        for (int i = 0; i < m.numRows(); ++i)
            lag += y[i] * m.row(i).activity(x);
        for (int j = 0; j < n; ++j) lag += rc[j] * x[j];
        EXPECT_NEAR(lag, s.objective(), 1e-6) << "rep " << rep;
    }
}

TEST(SimplexDegeneracy, ManyIdenticalRowsStillFast) {
    // A heavily degenerate LP (many duplicate constraints through one
    // vertex); the anti-degeneracy machinery must terminate quickly.
    LpModel m;
    m.addCol(-1.0, 0.0, kInf);
    m.addCol(-2.0, 0.0, kInf);
    for (int k = 0; k < 40; ++k)
        m.addRow(Row({{0, 1.0}, {1, 1.0}}, -kInf, 3.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -6.0, 1e-8);
    EXPECT_LT(s.iterations(), 2000);
}
