#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "ug/checkpoint.hpp"
#include "ug/racing.hpp"
#include "ugcip/ugcip.hpp"

using cip::kInf;
using cip::Model;
using cip::Row;

namespace {

Model knapsackModel(const std::vector<double>& value,
                    const std::vector<double>& weight, double cap) {
    Model m;
    std::vector<std::pair<int, double>> coefs;
    for (std::size_t j = 0; j < value.size(); ++j) {
        m.addVar(-value[j], 0.0, 1.0, true);
        coefs.emplace_back(static_cast<int>(j), weight[j]);
    }
    m.addLinear(Row(std::move(coefs), -kInf, cap));
    return m;
}

/// A knapsack-with-many-near-ties instance generating a decent tree.
Model hardKnapsack(int n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> w(10, 30);
    std::vector<double> value(n), weight(n);
    double total = 0;
    for (int j = 0; j < n; ++j) {
        weight[j] = w(rng);
        value[j] = weight[j] + (j % 3);  // weakly correlated: hard for B&B
        total += weight[j];
    }
    return knapsackModel(value, weight, std::floor(total / 2));
}

double sequentialOptimum(const Model& m) {
    cip::Solver s;
    Model copy = m;
    s.setModel(std::move(copy));
    EXPECT_EQ(s.solve(), cip::Status::Optimal);
    return s.incumbent().obj;
}

}  // namespace

TEST(Checkpoint, RoundtripPreservesEverything) {
    ug::Checkpoint cp;
    cip::SubproblemDesc d1;
    d1.lowerBound = -12.5;
    d1.boundChanges.push_back({3, 1.0, 2.0});
    d1.boundChanges.push_back({7, 0.0, 0.0});
    d1.customBranches.push_back({"stp", {4, -1, 9}});
    cip::SubproblemDesc d2;
    d2.lowerBound = -11.25;
    cp.nodes = {d1, d2};
    cp.incumbent.x = {0.0, 1.0, 0.5};
    cp.incumbent.obj = -10.0;
    cp.dualBound = -13.0;

    const std::string path = "/tmp/ugtest_checkpoint.txt";
    ug::removeCheckpointFiles(path);
    ASSERT_TRUE(ug::saveCheckpoint(path, cp));
    auto loaded = ug::loadCheckpoint(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_DOUBLE_EQ(loaded->dualBound, -13.0);
    EXPECT_DOUBLE_EQ(loaded->incumbent.obj, -10.0);
    ASSERT_EQ(loaded->incumbent.x.size(), 3u);
    EXPECT_DOUBLE_EQ(loaded->incumbent.x[2], 0.5);
    ASSERT_EQ(loaded->nodes.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded->nodes[0].lowerBound, -12.5);
    ASSERT_EQ(loaded->nodes[0].boundChanges.size(), 2u);
    EXPECT_EQ(loaded->nodes[0].boundChanges[0].var, 3);
    ASSERT_EQ(loaded->nodes[0].customBranches.size(), 1u);
    EXPECT_EQ(loaded->nodes[0].customBranches[0].plugin, "stp");
    EXPECT_EQ(loaded->nodes[0].customBranches[0].data[2], 9);
    ug::removeCheckpointFiles(path);
}

TEST(Checkpoint, MissingFileReturnsNullopt) {
    EXPECT_FALSE(ug::loadCheckpoint("/tmp/no_such_checkpoint_file").has_value());
}

TEST(Racing, GenericSettingsAreDiverse) {
    auto settings = ug::makeGenericRacingSettings(8);
    ASSERT_EQ(settings.size(), 8u);
    // All permutation seeds distinct.
    for (int i = 0; i < 8; ++i)
        for (int j = i + 1; j < 8; ++j)
            EXPECT_NE(settings[i].getInt("randomization/permutationseed", -1),
                      settings[j].getInt("randomization/permutationseed", -1));
    // Emphases cycle.
    EXPECT_NE(settings[0].getString("emphasis", ""),
              settings[1].getString("emphasis", ""));
}

TEST(SimEngine, SolvesKnapsackCorrectly) {
    Model m = hardKnapsack(14, 42);
    const double opt = sequentialOptimum(m);
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    ug::UgResult res =
        ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
    EXPECT_NEAR(res.dualBound, opt, 1e-6);
    EXPECT_GT(res.stats.totalNodesProcessed, 0);
    EXPECT_GE(res.stats.idleRatio, 0.0);
    EXPECT_LE(res.stats.idleRatio, 1.0);
    // Real cip solvers report their LP effort over the wire; the coordinator
    // must have folded a nonzero amount of simplex work into the run stats.
    EXPECT_GT(res.stats.lpIterations, 0);
    EXPECT_GT(res.stats.lpFactorizations, 0);
    EXPECT_GE(res.stats.basisWarmStarts, 0);
}

TEST(SimEngine, DeterministicAcrossRuns) {
    Model m = hardKnapsack(14, 7);
    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    ug::UgResult a = ugcip::solveSimulated([&] { return m; }, cfg);
    ug::UgResult b = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(a.status, ug::UgStatus::Optimal);
    EXPECT_DOUBLE_EQ(a.best.obj, b.best.obj);
    EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.stats.totalNodesProcessed, b.stats.totalNodesProcessed);
    EXPECT_EQ(a.stats.transferredNodes, b.stats.transferredNodes);
    EXPECT_EQ(a.stats.collectedNodes, b.stats.collectedNodes);
}

TEST(SimEngine, MoreSolversActivate) {
    Model m = hardKnapsack(18, 99);
    ug::UgConfig cfg;
    cfg.numSolvers = 8;
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    // Ramp-up statistics must be populated on nontrivial trees.
    EXPECT_GE(res.stats.maxActiveSolvers, 2);
    EXPECT_GE(res.stats.transferredNodes, res.stats.maxActiveSolvers);
}

TEST(SimEngine, InfeasibleInstanceReported) {
    Model m;
    m.addVar(1.0, 0.0, 1.0, true);
    m.addLinear(Row({{0, 1.0}}, 2.0, kInf));  // x >= 2 with x <= 1
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    EXPECT_EQ(res.status, ug::UgStatus::Infeasible);
}

TEST(SimEngine, RacingRampUpSolvesCorrectly) {
    Model m = hardKnapsack(16, 5);
    const double opt = sequentialOptimum(m);
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    cfg.racingOpenNodesLimit = 5;
    cfg.racingTimeLimit = 0.5;
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
}

TEST(SimEngine, TimeLimitCheckpointAndRestart) {
    Model m = hardKnapsack(22, 17);
    const std::string path = "/tmp/ugtest_restart_checkpoint.txt";
    ug::removeCheckpointFiles(path);

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.checkpointFile = path;
    cfg.timeLimit = 0.02;  // virtual seconds; enough for a few hundred nodes
    ug::UgResult first = ugcip::solveSimulated([&] { return m; }, cfg);
    const double opt = sequentialOptimum(m);
    if (first.status == ug::UgStatus::Optimal) {
        // Instance finished before the limit on this configuration; the
        // restart path is still exercised below via the saved file when
        // present, otherwise the test degenerates gracefully.
        EXPECT_NEAR(first.best.obj, opt, 1e-6);
        return;
    }
    ASSERT_EQ(first.status, ug::UgStatus::TimeLimit);
    auto cp = ug::loadCheckpoint(path);
    ASSERT_TRUE(cp.has_value());

    // Restart run (unlimited) must finish and find the true optimum.
    ug::UgConfig cfg2;
    cfg2.numSolvers = 4;
    cfg2.checkpointFile = path;
    cfg2.restartFromCheckpoint = true;
    ug::UgResult second = ugcip::solveSimulated([&] { return m; }, cfg2);
    ASSERT_EQ(second.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(second.best.obj, opt, 1e-6);
    EXPECT_GT(second.stats.initialOpenNodes, 0);
    ug::removeCheckpointFiles(path);
}

TEST(ThreadEngine, SolvesKnapsackCorrectly) {
    Model m = hardKnapsack(14, 42);
    const double opt = sequentialOptimum(m);
    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    ug::UgResult res = ugcip::solveWithThreads([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
}

TEST(ThreadEngine, RacingRampUp) {
    Model m = hardKnapsack(15, 3);
    const double opt = sequentialOptimum(m);
    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    cfg.rampUp = ug::RampUp::Racing;
    cfg.racingOpenNodesLimit = 4;
    cfg.racingTimeLimit = 0.05;  // wall seconds
    ug::UgResult res = ugcip::solveWithThreads([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, opt, 1e-6);
}

TEST(CipBaseSolver, LayeredPresolveRespectsSubproblemBounds) {
    Model m = knapsackModel({10, 13, 7, 8}, {5, 7, 4, 3}, 10);
    ugcip::CipSolverFactory factory([&] { return m; });
    auto solver = factory.create(cip::ParamSet{});
    cip::SubproblemDesc desc;
    desc.boundChanges.push_back({1, 0.0, 0.0});  // forbid item 1 (value 13)
    solver->load(desc, nullptr);
    while (!solver->finished()) solver->step();
    EXPECT_EQ(solver->status(), ug::BaseStatus::Optimal);
    // Without item 1: best is 10 + 8 = 18 (w 8) vs 10+7=17 vs 7+8=15.
    EXPECT_NEAR(solver->incumbent().obj, -18.0, 1e-6);
    EXPECT_NEAR(solver->incumbent().x[1], 0.0, 1e-9);
}

// Property: simulated parallel solves with various solver counts always
// match the sequential optimum (random binary programs).
class UgParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UgParallelEquivalence, MatchesSequential) {
    const int seed = std::get<0>(GetParam());
    const int nSolvers = std::get<1>(GetParam());
    std::mt19937 rng(seed * 31337);
    std::uniform_real_distribution<double> coef(-5.0, 5.0);
    for (int rep = 0; rep < 3; ++rep) {
        Model m;
        const int n = 10;
        for (int j = 0; j < n; ++j) m.addVar(coef(rng), 0.0, 1.0, true);
        for (int i = 0; i < 3; ++i) {
            std::vector<std::pair<int, double>> cs;
            for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
            m.addLinear(Row(std::move(cs), -6.0, 6.0));
        }
        cip::Solver seq;
        {
            Model copy = m;
            seq.setModel(std::move(copy));
        }
        const cip::Status seqSt = seq.solve();

        ug::UgConfig cfg;
        cfg.numSolvers = nSolvers;
        ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
        if (seqSt == cip::Status::Optimal) {
            ASSERT_EQ(res.status, ug::UgStatus::Optimal)
                << "seed=" << seed << " rep=" << rep;
            EXPECT_NEAR(res.best.obj, seq.incumbent().obj, 1e-5);
        } else if (seqSt == cip::Status::Infeasible) {
            EXPECT_EQ(res.status, ug::UgStatus::Infeasible);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SeedsBySolvers, UgParallelEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 5, 9)));

// --- ug[CIP-Jack, *]: parallel Steiner solving ------------------------------

#include "steiner/exactdp.hpp"
#include "steiner/instances.hpp"
#include "ugcip/stp_plugins.hpp"

TEST(UgSteiner, SimulatedParallelMatchesOracle) {
    steiner::Graph g = steiner::genHypercube(4, true, 3);
    auto opt = steiner::steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    steiner::SteinerSolver seq(g);
    seq.presolve();
    ASSERT_FALSE(seq.instance().trivial());
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    ug::UgResult res =
        ugcip::solveSteinerParallel(seq.instance(), cfg, /*simulated=*/true);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    steiner::SteinerResult sr = ugcip::toSteinerResult(seq, res);
    EXPECT_NEAR(sr.cost, *opt, 1e-6);
    EXPECT_TRUE(g.spansTerminals(sr.originalEdges));
}

TEST(UgSteiner, ThreadedParallelMatchesOracle) {
    steiner::Graph g = steiner::genHypercube(4, true, 9);
    auto opt = steiner::steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    steiner::SteinerSolver seq(g);
    seq.presolve();
    if (seq.instance().trivial()) GTEST_SKIP() << "presolved away";
    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    ug::UgResult res =
        ugcip::solveSteinerParallel(seq.instance(), cfg, /*simulated=*/false);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    steiner::SteinerResult sr = ugcip::toSteinerResult(seq, res);
    EXPECT_NEAR(sr.cost, *opt, 1e-6);
}

TEST(UgSteiner, RacingWithCustomSettings) {
    steiner::Graph g = steiner::genHypercube(4, true, 11);
    steiner::SteinerSolver seq(g);
    steiner::SteinerResult sres = seq.solve();
    ASSERT_EQ(sres.status, cip::Status::Optimal);
    if (seq.instance().trivial()) GTEST_SKIP() << "presolved away";
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    cfg.racingOpenNodesLimit = 8;
    cfg.racingTimeLimit = 0.5;
    ug::UgResult res =
        ugcip::solveSteinerParallel(seq.instance(), cfg, /*simulated=*/true);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    steiner::SteinerResult sr = ugcip::toSteinerResult(seq, res);
    EXPECT_NEAR(sr.cost, sres.cost, 1e-6);
}

TEST(SimEngine, InitialSolutionWarmStartsTheRun) {
    // The Table-3 mechanism: a best-known solution supplied up front is
    // adopted as the incumbent and is available for cutoff pruning.
    Model m = hardKnapsack(16, 8);
    cip::Solver seq;
    {
        Model copy = m;
        seq.setModel(std::move(copy));
    }
    ASSERT_EQ(seq.solve(), cip::Status::Optimal);

    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    cfg.initialSolution = seq.incumbent();  // warm start with the optimum
    ug::UgResult res = ugcip::solveSimulated([&] { return m; }, cfg);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(res.best.obj, seq.incumbent().obj, 1e-9);

    // A cold run must do at least as much work as the warm-started one.
    ug::UgConfig cold;
    cold.numSolvers = 2;
    ug::UgResult coldRes = ugcip::solveSimulated([&] { return m; }, cold);
    EXPECT_GE(coldRes.stats.totalNodesProcessed,
              res.stats.totalNodesProcessed);
}
