#include <gtest/gtest.h>

#include "steiner/exactdp.hpp"
#include "steiner/instances.hpp"
#include "misdp/instances.hpp"
#include "ugcip/misdp_plugins.hpp"
#include "ugcip/stp_plugins.hpp"
#include "ugcip/ugcip.hpp"

using cip::kInf;
using cip::Model;
using cip::Row;

namespace {

Model simpleKnapsack() {
    Model m;
    std::vector<std::pair<int, double>> coefs;
    const double value[] = {10, 13, 7, 8};
    const double weight[] = {5, 7, 4, 3};
    for (int j = 0; j < 4; ++j) {
        m.addVar(-value[j], 0.0, 1.0, true);
        coefs.emplace_back(j, weight[j]);
    }
    m.addLinear(Row(std::move(coefs), -kInf, 10.0));
    return m;
}

class CountingPlugins : public ugcip::CipUserPlugins {
public:
    void installPlugins(cip::Solver& solver) override {
        ++installs;
        solver.params().setBool("test/installed", true);
    }
    std::vector<cip::ParamSet> racingSettings(int count) override {
        std::vector<cip::ParamSet> out(count);
        for (int i = 0; i < count; ++i) out[i].setInt("test/custom", i);
        return out;
    }
    int installs = 0;
};

}  // namespace

TEST(UgcipGlue, InstallPluginsCalledPerParaSolverInstance) {
    Model m = simpleKnapsack();
    CountingPlugins plugins;
    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    ug::UgResult res =
        ugcip::solveSimulated([&] { return m; }, cfg, &plugins);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    // One base solver per subproblem assignment; at least the root solver
    // must have been created.
    EXPECT_GE(plugins.installs, 1);
    EXPECT_EQ(plugins.installs, res.stats.transferredNodes);
}

TEST(UgcipGlue, PrepareRacingPrefersCustomSettings) {
    CountingPlugins plugins;
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    ugcip::prepareRacing(cfg, &plugins);
    ASSERT_EQ(cfg.racingSettings.size(), 4u);
    EXPECT_EQ(cfg.racingSettings[2].getInt("test/custom", -1), 2);
}

TEST(UgcipGlue, PrepareRacingFallsBackToGeneric) {
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    ugcip::prepareRacing(cfg, nullptr);
    ASSERT_EQ(cfg.racingSettings.size(), 4u);
    EXPECT_TRUE(cfg.racingSettings[0].has("randomization/permutationseed"));
}

TEST(UgcipGlue, PrepareRacingKeepsExplicitTable) {
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    cip::ParamSet p;
    p.setInt("explicit", 1);
    cfg.racingSettings = {p};
    CountingPlugins plugins;
    ugcip::prepareRacing(cfg, &plugins);
    ASSERT_EQ(cfg.racingSettings.size(), 1u);
    EXPECT_EQ(cfg.racingSettings[0].getInt("explicit", 0), 1);
}

TEST(UgcipGlue, CipBaseSolverStatusMapping) {
    Model m = simpleKnapsack();
    ugcip::CipSolverFactory factory([&] { return m; });
    auto solver = factory.create({});
    solver->load({}, nullptr);
    while (!solver->finished()) solver->step();
    EXPECT_EQ(solver->status(), ug::BaseStatus::Optimal);
    EXPECT_NEAR(solver->incumbent().obj, -21.0, 1e-6);
    EXPECT_EQ(solver->numOpenNodes(), 0);
}

TEST(UgcipGlue, SteinerRacingSettingsVaryStpKnobs) {
    steiner::Graph g = steiner::genHypercube(3, true, 1);
    steiner::SteinerSolver s(g);
    s.presolve();
    ugcip::SteinerUserPlugins plugins(s.instance());
    auto settings = plugins.racingSettings(8);
    ASSERT_EQ(settings.size(), 8u);
    bool sawVbOff = false, sawDfs = false;
    for (const auto& p : settings) {
        sawVbOff |= !p.getBool("stp/vertexbranching", true);
        sawDfs |= p.getString("nodeselection", "") == "dfs";
    }
    EXPECT_TRUE(sawVbOff);
    EXPECT_TRUE(sawDfs);
}

TEST(UgcipGlue, ToSteinerResultMapsStatusAndEdges) {
    steiner::Graph g = steiner::genHypercube(4, true, 3);
    auto opt = steiner::steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    steiner::SteinerSolver s(g);
    s.presolve();
    ASSERT_FALSE(s.instance().trivial());
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    ug::UgResult res =
        ugcip::solveSteinerParallel(s.instance(), cfg, /*simulated=*/true);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    steiner::SteinerResult sr = ugcip::toSteinerResult(s, res);
    EXPECT_EQ(sr.status, cip::Status::Optimal);
    EXPECT_NEAR(sr.cost, *opt, 1e-6);
    EXPECT_NEAR(g.costOf(sr.originalEdges), sr.cost, 1e-6);
}

TEST(UgcipGlue, ThreadAndSimEnginesAgreeOnSteiner) {
    steiner::Graph g = steiner::genHypercube(4, true, 12);
    steiner::SteinerSolver s(g);
    s.presolve();
    if (s.instance().trivial()) GTEST_SKIP();
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    ug::UgResult sim =
        ugcip::solveSteinerParallel(s.instance(), cfg, /*simulated=*/true);
    ug::UgResult thr =
        ugcip::solveSteinerParallel(s.instance(), cfg, /*simulated=*/false);
    ASSERT_EQ(sim.status, ug::UgStatus::Optimal);
    ASSERT_EQ(thr.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(sim.best.obj, thr.best.obj, 1e-6);
}

TEST(UgcipGlue, MisdpGlueSolvesBothEngines) {
    misdp::MisdpProblem p = misdp::genCardinalityLS(3, 4, 2, 9);
    misdp::MisdpSolver seq(p);
    misdp::MisdpResult sr = seq.solve();
    ASSERT_EQ(sr.status, cip::Status::Optimal);
    for (bool simulated : {true, false}) {
        ug::UgConfig cfg;
        cfg.numSolvers = 2;
        ug::UgResult res = ugcip::solveMisdpParallel(p, cfg, simulated);
        ASSERT_EQ(res.status, ug::UgStatus::Optimal) << simulated;
        EXPECT_NEAR(-res.best.obj, sr.objective, 1e-4) << simulated;
    }
}
