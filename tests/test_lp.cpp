#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

using lp::kInf;
using lp::LpModel;
using lp::Row;
using lp::SimplexSolver;
using lp::SolveStatus;

namespace {

/// Brute-force reference: solve a small LP by enumerating basic solutions of
/// the standard-form system (vertex enumeration over active constraint
/// subsets). Only for tiny dense models with finite optima; used as the
/// property-test oracle.
struct BruteForceResult {
    bool feasible = false;
    double obj = kInf;
};

// Enumerate over all subsets of {rows at lhs/rhs, cols at lb/ub} is too big;
// instead evaluate the LP on a fine grid refined by random restarts of a
// projected coordinate descent. For the oracle we restrict generated models
// to 2 variables so a fine grid is exact enough.
BruteForceResult gridOracle2D(const LpModel& model, double lo, double hi,
                              int steps) {
    BruteForceResult res;
    const double h = (hi - lo) / steps;
    for (int i = 0; i <= steps; ++i) {
        for (int j = 0; j <= steps; ++j) {
            std::vector<double> x{lo + i * h, lo + j * h};
            bool ok = true;
            for (int c = 0; c < model.numCols() && ok; ++c)
                ok = x[c] >= model.col(c).lb - 1e-9 &&
                     x[c] <= model.col(c).ub + 1e-9;
            for (int r = 0; r < model.numRows() && ok; ++r) {
                const double a = model.row(r).activity(x);
                ok = a >= model.row(r).lhs - 1e-9 &&
                     a <= model.row(r).rhs + 1e-9;
            }
            if (!ok) continue;
            double obj = 0.0;
            for (int c = 0; c < model.numCols(); ++c)
                obj += model.col(c).obj * x[c];
            if (!res.feasible || obj < res.obj) {
                res.feasible = true;
                res.obj = obj;
            }
        }
    }
    return res;
}

}  // namespace

TEST(Simplex, SimpleMaximizationAsMinimization) {
    // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> opt at (4,0): 12
    LpModel m;
    m.addCol(-3.0, 0.0, kInf);
    m.addCol(-2.0, 0.0, kInf);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, -kInf, 4.0));
    m.addRow(Row({{0, 1.0}, {1, 3.0}}, -kInf, 6.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -12.0, 1e-8);
    EXPECT_NEAR(s.primal()[0], 4.0, 1e-8);
    EXPECT_NEAR(s.primal()[1], 0.0, 1e-8);
}

TEST(Simplex, EqualityRow) {
    // min x + y s.t. x + y = 2, x - y = 0  -> x = y = 1, obj 2
    LpModel m;
    m.addCol(1.0, -kInf, kInf);
    m.addCol(1.0, -kInf, kInf);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, 2.0, 2.0));
    m.addRow(Row({{0, 1.0}, {1, -1.0}}, 0.0, 0.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), 2.0, 1e-8);
    EXPECT_NEAR(s.primal()[0], 1.0, 1e-8);
    EXPECT_NEAR(s.primal()[1], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
    LpModel m;
    m.addCol(1.0, 0.0, kInf);
    m.addRow(Row({{0, 1.0}}, 3.0, kInf));   // x >= 3
    m.addRow(Row({{0, 1.0}}, -kInf, 2.0));  // x <= 2
    SimplexSolver s;
    s.load(m);
    EXPECT_EQ(s.solve(), SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
    LpModel m;
    m.addCol(-1.0, 0.0, kInf);  // min -x, x >= 0, no upper limit
    m.addRow(Row({{0, 1.0}}, 0.0, kInf));
    SimplexSolver s;
    s.load(m);
    EXPECT_EQ(s.solve(), SolveStatus::Unbounded);
}

TEST(Simplex, RangeRowAndBoundedVars) {
    // min -x - y, 1 <= x + y <= 3, 0 <= x <= 2, 0 <= y <= 2 -> obj -3
    LpModel m;
    m.addCol(-1.0, 0.0, 2.0);
    m.addCol(-1.0, 0.0, 2.0);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, 1.0, 3.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -3.0, 1e-8);
}

TEST(Simplex, NegativeLowerBounds) {
    // min x, -5 <= x <= 5, x >= -3 via row
    LpModel m;
    m.addCol(1.0, -5.0, 5.0);
    m.addRow(Row({{0, 1.0}}, -3.0, kInf));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -3.0, 1e-8);
}

TEST(Simplex, FreeVariable) {
    // min x + 2y, x free, y >= 0, x + y >= 1, x >= -10
    LpModel m;
    m.addCol(1.0, -kInf, kInf);
    m.addCol(2.0, 0.0, kInf);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, 1.0, kInf));
    m.addRow(Row({{0, 1.0}}, -10.0, kInf));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -10.0 + 2.0 * 11.0 > -10.0 ? -10.0 + 0.0 : 0.0,
                1e+30);  // sanity placeholder, refined below
    // Optimal: push x to -10 requires y >= 11 costing 22; total 12.
    // Better: x = 1, y = 0 -> obj 1. Best: x as small as helpful:
    // d(obj)/dx along x+y=1 is 1-2 = -1 < 0, so x -> -10, y = 11, obj 12?
    // No: obj = x + 2y = x + 2(1-x) = 2 - x for binding row, minimized at
    // x = -10 -> wait, y = 1 - x = 11 >= 0 ok, obj = -10 + 22 = 12.
    // x large instead: y = 0, obj = x >= 1 -> min 1. So optimum is 1? But
    // 2 - x decreases with larger x only until y >= 0 fails at x > 1; at
    // x = 1: obj = 1. For x > 1 row is slack with y = 0, obj = x > 1.
    EXPECT_NEAR(s.objective(), 1.0, 1e-8);
    EXPECT_NEAR(s.primal()[0], 1.0, 1e-8);
}

TEST(Simplex, DualValuesSatisfyStrongDuality) {
    // min c'x with binding constraints; check b'y == c'x (strong duality).
    LpModel m;
    m.addCol(2.0, 0.0, kInf);
    m.addCol(3.0, 0.0, kInf);
    m.addRow(Row({{0, 1.0}, {1, 2.0}}, 4.0, kInf));
    m.addRow(Row({{0, 3.0}, {1, 1.0}}, 6.0, kInf));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    const auto& y = s.duals();
    const double dualObj = 4.0 * y[0] + 6.0 * y[1];
    EXPECT_NEAR(dualObj, s.objective(), 1e-7);
    // Dual feasibility for >= rows of a minimization: y >= 0.
    EXPECT_GE(y[0], -1e-9);
    EXPECT_GE(y[1], -1e-9);
}

TEST(Simplex, ReducedCostsSignCorrect) {
    LpModel m;
    m.addCol(1.0, 0.0, 10.0);
    m.addCol(-1.0, 0.0, 10.0);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, -kInf, 5.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    // x0 at lower bound -> reduced cost >= 0.
    EXPECT_NEAR(s.primal()[0], 0.0, 1e-9);
    EXPECT_GE(s.reducedCosts()[0], -1e-9);
}

TEST(Simplex, WarmRestartAfterAddingCut) {
    // max x + y (min -x-y), x,y in [0,3], x + y <= 5. Then add cut
    // x + y <= 2 and resolve: objective must drop to -2.
    LpModel m;
    m.addCol(-1.0, 0.0, 3.0);
    m.addCol(-1.0, 0.0, 3.0);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, -kInf, 5.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -5.0, 1e-8);
    ASSERT_EQ(s.addRowsAndResolve({Row({{0, 1.0}, {1, 1.0}}, -kInf, 2.0)}),
              SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -2.0, 1e-8);
}

TEST(Simplex, WarmRestartAfterBoundChange) {
    // min -x - 2y, x,y in [0,4], x + y <= 6 -> (2,4), obj -10.
    // Branch y <= 1 -> best (4,1)?? x <= 4, x + y <= 6 -> (4,1), obj -6.
    LpModel m;
    m.addCol(-1.0, 0.0, 4.0);
    m.addCol(-2.0, 0.0, 4.0);
    m.addRow(Row({{0, 1.0}, {1, 1.0}}, -kInf, 6.0));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -10.0, 1e-8);
    s.changeBounds(1, 0.0, 1.0);
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -6.0, 1e-8);
    // And tighten further to an infeasible box: x >= 5 impossible.
    s.changeBounds(0, 5.0, 4.0);
    EXPECT_EQ(s.resolve(), SolveStatus::Infeasible);
}

TEST(Simplex, ManySequentialCuts) {
    // min -x - y with x,y in [0, 10]; repeatedly add x + y <= k cuts for
    // decreasing k; each resolve must track the new optimum exactly.
    LpModel m;
    m.addCol(-1.0, 0.0, 10.0);
    m.addCol(-1.0, 0.0, 10.0);
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -20.0, 1e-8);
    for (int k = 15; k >= 1; k -= 2) {
        ASSERT_EQ(
            s.addRowsAndResolve({Row({{0, 1.0}, {1, 1.0}}, -kInf, double(k))}),
            SolveStatus::Optimal)
            << "cut k=" << k;
        EXPECT_NEAR(s.objective(), -double(k), 1e-7) << "cut k=" << k;
    }
}

TEST(Simplex, DegenerateLpTerminates) {
    // Highly degenerate: many redundant rows through the same vertex.
    LpModel m;
    m.addCol(-1.0, 0.0, kInf);
    m.addCol(-1.0, 0.0, kInf);
    for (int k = 1; k <= 12; ++k)
        m.addRow(Row({{0, double(k)}, {1, double(k)}}, -kInf, 2.0 * k));
    SimplexSolver s;
    s.load(m);
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
    EXPECT_NEAR(s.objective(), -2.0, 1e-8);
}

// Property test: random 2-variable LPs checked against a fine grid oracle.
class SimplexRandom2D : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom2D, MatchesGridOracle) {
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<double> coef(-3.0, 3.0);
    std::uniform_int_distribution<int> nrows(1, 6);
    for (int rep = 0; rep < 20; ++rep) {
        LpModel m;
        // Bounded box keeps the LP bounded so the oracle grid is valid.
        m.addCol(coef(rng), -4.0, 4.0);
        m.addCol(coef(rng), -4.0, 4.0);
        const int rows = nrows(rng);
        for (int r = 0; r < rows; ++r) {
            double a = coef(rng), b = coef(rng);
            double rhs = coef(rng) * 2.0;
            m.addRow(Row({{0, a}, {1, b}}, -kInf, rhs));
        }
        SimplexSolver s;
        s.load(m);
        SolveStatus st = s.solve();
        BruteForceResult oracle = gridOracle2D(m, -4.0, 4.0, 200);
        if (st == SolveStatus::Optimal) {
            // Solver's point must itself be feasible.
            const auto& x = s.primal();
            for (int r = 0; r < m.numRows(); ++r) {
                EXPECT_LE(m.row(r).activity(x), m.row(r).rhs + 1e-6);
            }
            if (oracle.feasible) {
                // Grid resolution limits the oracle's accuracy: the solver
                // may beat the grid slightly, never lose to it by much.
                EXPECT_LE(s.objective(), oracle.obj + 1e-6);
                EXPECT_GE(s.objective(), oracle.obj - 0.35);
            }
        } else if (st == SolveStatus::Infeasible) {
            // A feasible grid point would disprove infeasibility (the grid
            // can miss thin slivers, so the converse is not checked).
            EXPECT_FALSE(oracle.feasible);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom2D,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property test: warm-started resolve after bound changes must match a cold
// solve of the same modified model.
class SimplexWarmVsCold : public ::testing::TestWithParam<int> {};

TEST_P(SimplexWarmVsCold, BoundChangeEquivalence) {
    std::mt19937 rng(1000 + GetParam());
    std::uniform_real_distribution<double> coef(-2.0, 2.0);
    for (int rep = 0; rep < 10; ++rep) {
        const int n = 4, rows = 5;
        LpModel m;
        for (int j = 0; j < n; ++j) m.addCol(coef(rng), 0.0, 5.0);
        for (int r = 0; r < rows; ++r) {
            std::vector<std::pair<int, double>> cs;
            for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
            m.addRow(Row(std::move(cs), -6.0, 6.0));
        }
        SimplexSolver warm;
        warm.load(m);
        ASSERT_EQ(warm.solve(), SolveStatus::Optimal);

        // Apply a random branching-style bound change.
        std::uniform_int_distribution<int> pick(0, n - 1);
        const int j = pick(rng);
        const double newUb = 2.0;
        warm.changeBounds(j, 0.0, newUb);
        SolveStatus wst = warm.resolve();

        LpModel m2 = m;
        m2.col(j).ub = newUb;
        SimplexSolver cold;
        cold.load(m2);
        SolveStatus cst = cold.solve();

        ASSERT_EQ(wst, cst);
        if (wst == SolveStatus::Optimal)
            EXPECT_NEAR(warm.objective(), cold.objective(), 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexWarmVsCold,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Property test: adding random valid cuts (satisfied by the current optimum
// or not) and resolving warm must equal a cold solve with those rows.
class SimplexCutVsCold : public ::testing::TestWithParam<int> {};

TEST_P(SimplexCutVsCold, RowAdditionEquivalence) {
    std::mt19937 rng(2000 + GetParam());
    std::uniform_real_distribution<double> coef(-2.0, 2.0);
    for (int rep = 0; rep < 10; ++rep) {
        const int n = 3;
        LpModel m;
        for (int j = 0; j < n; ++j) m.addCol(coef(rng), -3.0, 3.0);
        for (int r = 0; r < 3; ++r) {
            std::vector<std::pair<int, double>> cs;
            for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
            m.addRow(Row(std::move(cs), -5.0, 5.0));
        }
        SimplexSolver warm;
        warm.load(m);
        ASSERT_EQ(warm.solve(), SolveStatus::Optimal);

        std::vector<Row> cuts;
        for (int k = 0; k < 2; ++k) {
            std::vector<std::pair<int, double>> cs;
            for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
            cuts.push_back(Row(std::move(cs), -4.0, 4.0));
        }
        SolveStatus wst = warm.addRowsAndResolve(cuts);

        LpModel m2 = m;
        for (const Row& c : cuts) m2.addRow(c);
        SimplexSolver cold;
        cold.load(m2);
        SolveStatus cst = cold.solve();

        ASSERT_EQ(wst, cst);
        if (wst == SolveStatus::Optimal)
            EXPECT_NEAR(warm.objective(), cold.objective(), 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexCutVsCold,
                         ::testing::Values(1, 2, 3, 4, 5, 6));
