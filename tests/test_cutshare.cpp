// Cross-solver Steiner cut sharing: wire-format round trips, the
// LoadCoordinator's global dominance pool against a brute-force antichain
// oracle, echo suppression / relevance filtering / capacity eviction,
// receiver-side certification (an invalid shared support must never become
// an LP row), the post-ship frontierWeight fix, and end-to-end shared-pool
// runs — deterministic under SimEngine, oracle-correct, and with all share
// machinery provably quiet when stp/share/enable is off.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "steiner/cutpool.hpp"
#include "steiner/exactdp.hpp"
#include "steiner/instances.hpp"
#include "steiner/plugins.hpp"
#include "steiner/reductions.hpp"
#include "steiner/stpmodel.hpp"
#include "steiner/stpsolver.hpp"
#include "ug/cutbundle.hpp"
#include "ug/globalcutpool.hpp"
#include "ug/loadcoordinator.hpp"
#include "ug/simengine.hpp"
#include "ugcip/stp_plugins.hpp"

// --- wire format --------------------------------------------------------------

TEST(CutBundle, AppendRejectsMalformedSupports) {
    ug::CutBundle b;
    EXPECT_FALSE(b.append({}));            // empty support
    EXPECT_FALSE(b.append({3, 2}));        // unsorted
    EXPECT_FALSE(b.append({2, 2, 5}));     // duplicate
    EXPECT_FALSE(b.append({-1, 4}));       // negative id
    EXPECT_FALSE(b.append({1, 2}, 0));     // rhs class below 1
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.wireWords(), 0u);

    ASSERT_TRUE(b.append({7}));
    ASSERT_TRUE(b.append({0, 3, 9}, 2));
    EXPECT_EQ(b.count(), 2);
    // [rhs, k, var0, deltas...]: 3 words for {7}, 5 for {0,3,9}.
    EXPECT_EQ(b.wireWords(), 8u);
}

TEST(CutBundle, RoundTripPropertyRandomized) {
    std::mt19937 rng(20260807);
    for (int trial = 0; trial < 200; ++trial) {
        std::uniform_int_distribution<int> nCuts(0, 8), width(1, 6),
            varDist(0, 40), rhsDist(1, 3);
        ug::CutBundle b;
        std::vector<ug::CutSupport> expected;
        const int n = nCuts(rng);
        for (int c = 0; c < n; ++c) {
            std::set<int> s;
            const int k = width(rng);
            while (static_cast<int>(s.size()) < k) s.insert(varDist(rng));
            ug::CutSupport cs;
            cs.vars.assign(s.begin(), s.end());
            cs.rhsClass = rhsDist(rng);
            ASSERT_TRUE(b.append(cs.vars, cs.rhsClass));
            expected.push_back(std::move(cs));
        }
        std::vector<ug::CutSupport> got;
        ASSERT_TRUE(b.decode(got));
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].vars, expected[i].vars) << trial;
            EXPECT_EQ(got[i].rhsClass, expected[i].rhsClass) << trial;
        }
        // decode() appends: a second pass doubles the output.
        ASSERT_TRUE(b.decode(got));
        EXPECT_EQ(got.size(), 2 * expected.size());
    }
}

// --- LC global pool vs brute-force antichain oracle ---------------------------

namespace {

using OracleCut = std::pair<int, std::vector<int>>;  // (rhsClass, vars)

/// The specified merge semantics, the obvious O(n^2) way: within an RHS
/// class the live set is an antichain under set inclusion — an offered
/// support is rejected when some live support (same class) is a subset of
/// it, and admits by evicting its live strict supersets.
struct ShareOracle {
    std::vector<OracleCut> alive;

    bool offer(const ug::CutSupport& cs) {
        const std::set<int> s(cs.vars.begin(), cs.vars.end());
        for (const auto& [rhs, vars] : alive) {
            if (rhs != cs.rhsClass) continue;
            if (std::includes(s.begin(), s.end(), vars.begin(), vars.end()))
                return false;  // duplicate or dominated
        }
        std::erase_if(alive, [&](const OracleCut& oc) {
            return oc.first == cs.rhsClass &&
                   std::includes(oc.second.begin(), oc.second.end(),
                                 s.begin(), s.end()) &&
                   oc.second.size() > s.size();
        });
        alive.emplace_back(cs.rhsClass, cs.vars);
        return true;
    }

    std::multiset<OracleCut> asSet() const {
        return {alive.begin(), alive.end()};
    }
};

std::multiset<OracleCut> poolAsSet(const ug::GlobalCutPool& pool) {
    std::multiset<OracleCut> out;
    for (const auto& cs : pool.snapshot()) out.emplace(cs.rhsClass, cs.vars);
    return out;
}

}  // namespace

TEST(GlobalCutPool, MergeMatchesBruteForceOracle) {
    std::mt19937 rng(42);
    for (int trial = 0; trial < 60; ++trial) {
        ug::GlobalCutPool pool(4, 4096);  // capacity never binds here
        ShareOracle oracle;
        std::uniform_int_distribution<int> width(1, 4), varDist(0, 11),
            rhsDist(1, 2), originDist(1, 3), nCuts(1, 5);
        for (int round = 0; round < 40; ++round) {
            ug::CutBundle b;
            std::vector<ug::CutSupport> offered;
            const int n = nCuts(rng);
            for (int c = 0; c < n; ++c) {
                std::set<int> s;
                const int k = width(rng);
                while (static_cast<int>(s.size()) < k) s.insert(varDist(rng));
                ug::CutSupport cs;
                cs.vars.assign(s.begin(), s.end());
                cs.rhsClass = rhsDist(rng);
                ASSERT_TRUE(b.append(cs.vars, cs.rhsClass));
                offered.push_back(std::move(cs));
            }
            const auto ms = pool.merge(b, originDist(rng));
            int oraclePooled = 0;
            for (const auto& cs : offered)
                if (oracle.offer(cs)) ++oraclePooled;
            ASSERT_EQ(ms.reported, n);
            ASSERT_EQ(ms.pooled, oraclePooled) << trial << ":" << round;
            ASSERT_EQ(poolAsSet(pool), oracle.asSet())
                << trial << ":" << round;
            ASSERT_EQ(pool.size(), static_cast<int>(oracle.alive.size()));
        }
    }
}

TEST(GlobalCutPool, NeverEchoesToOriginAndSendsOnce) {
    ug::GlobalCutPool pool(4, 64);
    ug::CutBundle in;
    ASSERT_TRUE(in.append({0, 1}));
    ASSERT_TRUE(in.append({2, 3}));
    ASSERT_EQ(pool.merge(in, 1).pooled, 2);

    // The origin never gets its own cuts back.
    EXPECT_TRUE(pool.bundleFor(1, {}, 16).empty());

    // Another rank gets them exactly once...
    std::vector<ug::CutSupport> got;
    ASSERT_TRUE(pool.bundleFor(2, {}, 16).decode(got));
    EXPECT_EQ(got.size(), 2u);
    EXPECT_TRUE(pool.bundleFor(2, {}, 16).empty());
    // ...and independently of rank 2's delivery, rank 3 still gets both.
    got.clear();
    ASSERT_TRUE(pool.bundleFor(3, {}, 16).decode(got));
    EXPECT_EQ(got.size(), 2u);

    // A duplicate re-report marks the reporter as knowing the cut.
    ug::CutBundle dup;
    ASSERT_TRUE(dup.append({0, 1}));
    ug::GlobalCutPool pool2(4, 64);
    ASSERT_EQ(pool2.merge(in, 1).pooled, 2);
    ASSERT_EQ(pool2.merge(dup, 2).pooled, 0);
    got.clear();
    ASSERT_TRUE(pool2.bundleFor(2, {}, 16).decode(got));
    ASSERT_EQ(got.size(), 1u);  // only {2,3}; rank 2 already knows {0,1}
    EXPECT_EQ(got[0].vars, (std::vector<int>{2, 3}));
}

TEST(GlobalCutPool, RelevanceFilterSkipsSupportsFixedToOne) {
    ug::GlobalCutPool pool(4, 64);
    ug::CutBundle in;
    ASSERT_TRUE(in.append({0, 1}));
    ASSERT_TRUE(in.append({2, 3}));
    ASSERT_EQ(pool.merge(in, 1).pooled, 2);

    // Subproblem with x_2 fixed to 1: the {2,3} row is trivially satisfied
    // there and must not be shipped; {0,1} still is.
    cip::SubproblemDesc desc;
    desc.boundChanges.push_back({2, 1.0, 1.0});
    std::vector<ug::CutSupport> got;
    ASSERT_TRUE(pool.bundleFor(2, desc, 16).decode(got));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].vars, (std::vector<int>{0, 1}));

    // The skipped cut was NOT marked known: an unrestricted assignment to
    // the same rank later still delivers it.
    got.clear();
    ASSERT_TRUE(pool.bundleFor(2, {}, 16).decode(got));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].vars, (std::vector<int>{2, 3}));
}

TEST(GlobalCutPool, CapacityEvictsOldestTouched) {
    ug::GlobalCutPool pool(4, 2);
    for (int v : {0, 1, 2}) {
        ug::CutBundle b;
        ASSERT_TRUE(b.append({v}));
        ASSERT_EQ(pool.merge(b, 1).pooled, 1);
    }
    EXPECT_EQ(pool.size(), 2);
    EXPECT_EQ(pool.capacityEvicted(), 1);
    const auto snap = poolAsSet(pool);
    // {0} is the oldest-touched entry and the one evicted.
    EXPECT_EQ(snap.count({1, {0}}), 0u);
    EXPECT_EQ(snap.count({1, {1}}), 1u);
    EXPECT_EQ(snap.count({1, {2}}), 1u);
}

// --- solver-side export cursor ------------------------------------------------

TEST(CutShare, ExportNewAdmittedSkipsEvictedAndConsumes) {
    steiner::CutPool pool(16);
    ASSERT_EQ(pool.offer({1, 2, 3}), steiner::CutPool::Verdict::Admitted);
    // {2,3} evicts the superset before anything was exported.
    ASSERT_EQ(pool.offer({2, 3}), steiner::CutPool::Verdict::Admitted);

    ug::CutBundle b;
    EXPECT_EQ(pool.exportNewAdmitted(b, 16), 1);
    std::vector<ug::CutSupport> got;
    ASSERT_TRUE(b.decode(got));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].vars, (std::vector<int>{2, 3}));
    EXPECT_EQ(got[0].rhsClass, 1);

    // The cursor consumed everything; only later admissions export.
    ug::CutBundle b2;
    EXPECT_EQ(pool.exportNewAdmitted(b2, 16), 0);
    ASSERT_EQ(pool.offer({5, 6}), steiner::CutPool::Verdict::Admitted);
    EXPECT_EQ(pool.exportNewAdmitted(b2, 16), 1);
    got.clear();
    ASSERT_TRUE(b2.decode(got));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].vars, (std::vector<int>{5, 6}));
}

// --- receiver-side certification ----------------------------------------------

namespace {

/// Vertices reachable from the root over modeled, non-deleted arcs with the
/// support's arcs removed — the certification semantics, recomputed the
/// obvious way.
std::vector<char> reachableWithoutSupport(const steiner::SapInstance& inst,
                                          const std::vector<int>& vars) {
    const steiner::Graph& g = inst.graph;
    std::vector<char> banned(2 * static_cast<std::size_t>(g.numEdges()), 0);
    for (int v : vars) banned[static_cast<std::size_t>(inst.varArc[v])] = 1;
    std::vector<char> seen(static_cast<std::size_t>(g.numVertices()), 0);
    std::vector<int> stack{inst.root};
    seen[static_cast<std::size_t>(inst.root)] = 1;
    while (!stack.empty()) {
        const int v = stack.back();
        stack.pop_back();
        for (int e : g.incident(v)) {
            if (g.edge(e).deleted) continue;
            const int a = (g.edge(e).u == v) ? 2 * e : 2 * e + 1;
            if (inst.arcVar[a] < 0 || banned[static_cast<std::size_t>(a)])
                continue;
            const int w = g.edge(e).u == v ? g.edge(e).v : g.edge(e).u;
            if (!seen[static_cast<std::size_t>(w)]) {
                seen[static_cast<std::size_t>(w)] = 1;
                stack.push_back(w);
            }
        }
    }
    return seen;
}

bool supportIsValidCut(const steiner::SapInstance& inst,
                       const std::vector<int>& vars) {
    const std::vector<char> seen = reachableWithoutSupport(inst, vars);
    for (int t : inst.graph.terminals())
        if (!seen[static_cast<std::size_t>(t)]) return true;
    return false;
}

steiner::SapInstance hypercubeInstance(std::uint64_t seed) {
    steiner::ReductionStats none;
    return steiner::buildSapInstance(steiner::genHypercube(4, true, seed),
                                     none);
}

}  // namespace

TEST(CutShare, InvalidSharedCutsAreRejectedAndNeverEnterTheLp) {
    steiner::SapInstance inst = hypercubeInstance(3);
    // Reference optimum from an isolated solve.
    cip::Solver ref;
    ref.setModel(inst.model);
    ugcip::SteinerUserPlugins plugins(inst);
    plugins.installPlugins(ref);
    ASSERT_EQ(ref.solve(), cip::Status::Optimal);

    // Every single-arc support whose removal keeps all terminals reachable
    // is NOT a valid Steiner cut; prime them all, as a hostile peer would.
    ug::CutBundle bad;
    int nBad = 0;
    for (int v = 0; v < inst.numArcs(); ++v) {
        if (supportIsValidCut(inst, {v})) continue;
        ASSERT_TRUE(bad.append({v}));
        ++nBad;
    }
    ASSERT_GT(nBad, 0) << "instance has no non-bridge arcs?";

    cip::Solver solver;
    solver.setModel(inst.model);
    plugins.installPlugins(solver);
    // Mirror the ParaSolver order: init (which resets stats), then prime.
    solver.initSolve();
    plugins.primeSharedCuts(solver, bad);
    ASSERT_EQ(solver.solve(), cip::Status::Optimal);

    const cip::Stats& s = solver.stats();
    EXPECT_EQ(s.sharedCutsReceived, nBad);
    // Certification is the only gate to the LP: nothing invalid may pass.
    EXPECT_EQ(s.sharedCutsAdmitted, 0);
    EXPECT_GT(s.sharedCutsInvalid, 0);
    EXPECT_LE(s.sharedCutsInvalid, nBad);
    // And the poison had no effect on the optimum.
    EXPECT_NEAR(solver.incumbent().obj, ref.incumbent().obj, 1e-9);
}

TEST(CutShare, HarvestedCutsPrimeAFreshSolverAndPassCertification) {
    steiner::SapInstance inst = hypercubeInstance(5);
    ugcip::SteinerUserPlugins plugins(inst);

    cip::Solver a;
    a.setModel(inst.model);
    plugins.installPlugins(a);
    ASSERT_EQ(a.solve(), cip::Status::Optimal);
    ug::CutBundle bundle = plugins.collectShareableCuts(a, 16);
    ASSERT_GT(bundle.count(), 0);

    // Each harvested support is a genuine Steiner cut.
    std::vector<ug::CutSupport> cuts;
    ASSERT_TRUE(bundle.decode(cuts));
    for (const auto& cs : cuts)
        EXPECT_TRUE(supportIsValidCut(inst, cs.vars));

    // A fresh solver primed with them certifies all of them, rejects none,
    // and admits the ones its first LPs find violated.
    cip::Solver b;
    b.setModel(inst.model);
    plugins.installPlugins(b);
    b.initSolve();  // ParaSolver order: init (stats reset), then prime
    plugins.primeSharedCuts(b, bundle);
    ASSERT_EQ(b.solve(), cip::Status::Optimal);
    const cip::Stats& s = b.stats();
    EXPECT_EQ(s.sharedCutsReceived, bundle.count());
    EXPECT_EQ(s.sharedCutsInvalid, 0);
    EXPECT_GT(s.sharedCutsAdmitted, 0);
    EXPECT_NEAR(b.incumbent().obj, a.incumbent().obj, 1e-9);
}

// --- post-ship frontier accounting (LC fix) -----------------------------------

namespace {

class RecordingComm : public ug::ParaComm {
public:
    explicit RecordingComm(int size) : size_(size) {}
    int size() const override { return size_; }
    void send(int src, int dest, ug::Message msg) override {
        msg.src = src;
        sent.emplace_back(dest, std::move(msg));
    }
    double now(int) const override { return 0.0; }

    int count(ug::Tag tag, int dest) const {
        int n = 0;
        for (const auto& [d, m] : sent)
            if (d == dest && m.tag == tag) ++n;
        return n;
    }
    const ug::Message* last(ug::Tag tag, int dest) const {
        const ug::Message* found = nullptr;
        for (const auto& [d, m] : sent)
            if (d == dest && m.tag == tag) found = &m;
        return found;
    }

    std::vector<std::pair<int, ug::Message>> sent;

private:
    int size_;
};

ug::Message statusMsg(int src, std::int64_t openNodes,
                      std::int64_t nodesProcessed,
                      std::int64_t lpIterations) {
    ug::Message m;
    m.tag = ug::Tag::Status;
    m.src = src;
    m.dualBound = -10.0;
    m.openNodes = openNodes;
    m.nodesProcessed = nodesProcessed;
    m.lpEffort.iterations = lpIterations;
    return m;
}

ug::Message transferMsg(int src) {
    ug::Message m;
    m.tag = ug::Tag::NodeTransfer;
    m.src = src;
    m.desc.boundChanges.push_back({0, 0, 1});
    m.desc.lowerBound = -900.0;
    return m;
}

ug::Message terminatedMsg(int src) {
    ug::Message m;
    m.tag = ug::Tag::Terminated;
    m.src = src;
    m.completed = true;
    m.dualBound = -5.0;
    return m;
}

}  // namespace

TEST(UgCollectMode, NodeTransfersDebitTheSupplierFrontier) {
    // Rank 1 reports 6 open nodes, gets engaged as a supplier, and ships 5
    // of them before its next Status. The coordinator must account each
    // ship: when the pool later drains, rank 1's frontier is ONE heavy node
    // (weight 1000 >= 256), so the re-engagement is the ramp-down keep=0
    // form. With the stale pre-ship count (6) it would be re-engaged as an
    // ordinary keep=1 supplier — the regression this test pins down.
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    RecordingComm comm(cfg.numSolvers + 1);
    ug::LoadCoordinator lc(comm, cfg);
    lc.start({});  // root to rank 1; rank 2 idle

    lc.handleMessage(statusMsg(1, 6, 6, 6000));
    ASSERT_EQ(comm.count(ug::Tag::StartCollecting, 1), 1);
    ASSERT_EQ(comm.last(ug::Tag::StartCollecting, 1)->collectKeep, 1);

    // 5 ships: the first feeds idle rank 2, the rest pool up until the
    // coordinator calls the pool full and stops the collection.
    for (int i = 0; i < 5; ++i) lc.handleMessage(transferMsg(1));
    ASSERT_EQ(comm.count(ug::Tag::StopCollecting, 1), 1);

    // Rank 2 chews through the pooled nodes; when the last one finishes the
    // pool is empty, rank 2 idles, and the coordinator looks for suppliers.
    for (int i = 0; i < 5; ++i) lc.handleMessage(terminatedMsg(2));

    ASSERT_EQ(comm.count(ug::Tag::StartCollecting, 1), 2);
    EXPECT_EQ(comm.last(ug::Tag::StartCollecting, 1)->collectKeep, 0);
}

// --- end-to-end sharing under SimEngine ---------------------------------------

TEST(CutShare, SimulatedSharingMatchesOracleAndIsDeterministic) {
    steiner::Graph g = steiner::genHypercube(4, true, 3);
    auto opt = steiner::steinerDpOptimal(g);
    ASSERT_TRUE(opt.has_value());
    steiner::SteinerSolver seq(g);
    seq.presolve();
    ASSERT_FALSE(seq.instance().trivial());

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    ug::UgResult r1 =
        ugcip::solveSteinerParallel(seq.instance(), cfg, /*simulated=*/true);
    ug::UgResult r2 =
        ugcip::solveSteinerParallel(seq.instance(), cfg, /*simulated=*/true);

    ASSERT_EQ(r1.status, ug::UgStatus::Optimal);
    steiner::SteinerResult sr = ugcip::toSteinerResult(seq, r1);
    EXPECT_NEAR(sr.cost, *opt, 1e-6);

    // Sharing actually happened, the pipe is loss-free (everything the LC
    // attached was delivered and counted by a receiver), and nothing
    // invalid was ever produced by a genuine solver.
    EXPECT_GT(r1.stats.shareCutsReported, 0);
    EXPECT_GE(r1.stats.shareCutsReported, r1.stats.shareCutsPooled);
    EXPECT_EQ(r1.stats.shareCutsReceived, r1.stats.shareCutsSent);
    EXPECT_EQ(r1.stats.shareCutsInvalid, 0);

    // Bit-determinism: identical runs, identical trace.
    EXPECT_DOUBLE_EQ(r1.elapsed, r2.elapsed);
    EXPECT_EQ(r1.stats.totalNodesProcessed, r2.stats.totalNodesProcessed);
    EXPECT_EQ(r1.stats.sepaFlowSolves, r2.stats.sepaFlowSolves);
    EXPECT_EQ(r1.stats.shareCutsReported, r2.stats.shareCutsReported);
    EXPECT_EQ(r1.stats.shareCutsPooled, r2.stats.shareCutsPooled);
    EXPECT_EQ(r1.stats.shareCutsSent, r2.stats.shareCutsSent);
    EXPECT_EQ(r1.stats.shareCutsAdmitted, r2.stats.shareCutsAdmitted);
    EXPECT_DOUBLE_EQ(r1.best.obj, r2.best.obj);
}

TEST(CutShare, DisablingShareSilencesAllMachinery) {
    steiner::Graph g = steiner::genHypercube(4, true, 7);
    steiner::SteinerSolver seq(g);
    seq.presolve();
    if (seq.instance().trivial()) GTEST_SKIP() << "presolved away";

    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.baseParams.setBool("stp/share/enable", false);
    ug::UgResult res =
        ugcip::solveSteinerParallel(seq.instance(), cfg, /*simulated=*/true);
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    EXPECT_EQ(res.stats.shareCutsReported, 0);
    EXPECT_EQ(res.stats.shareCutsPooled, 0);
    EXPECT_EQ(res.stats.shareCutsSent, 0);
    EXPECT_EQ(res.stats.shareCutsReceived, 0);
    EXPECT_EQ(res.stats.shareCutsAdmitted, 0);
    EXPECT_EQ(res.stats.shareCutsInvalid, 0);
}
