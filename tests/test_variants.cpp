// Steiner problem variants (RPCSTP / NWSTP / DCSTP / GSTP) against
// brute-force subset-enumeration oracles.
#include <gtest/gtest.h>

#include <queue>
#include <random>

#include "steiner/instances.hpp"
#include "steiner/variants.hpp"

using namespace steiner;

namespace {

/// Connectivity of an edge subset; returns the set of covered vertices (or
/// empty if the subset is not connected / not a forest spanning them).
std::vector<int> connectedVertices(const Graph& g,
                                   const std::vector<int>& edges,
                                   int mustContain) {
    if (edges.empty()) {
        return mustContain >= 0 ? std::vector<int>{mustContain}
                                : std::vector<int>{};
    }
    std::vector<std::vector<int>> nbr(g.numVertices());
    for (int e : edges) {
        nbr[g.edge(e).u].push_back(g.edge(e).v);
        nbr[g.edge(e).v].push_back(g.edge(e).u);
    }
    int start = mustContain >= 0 ? mustContain : g.edge(edges[0]).u;
    if (mustContain >= 0 && nbr[mustContain].empty() &&
        !edges.empty())
        return {};  // root not touched by the edges
    std::vector<bool> seen(g.numVertices(), false);
    std::queue<int> q;
    q.push(start);
    seen[start] = true;
    int seenEdgesTwice = 0;
    while (!q.empty()) {
        int v = q.front();
        q.pop();
        for (int w : nbr[v]) {
            ++seenEdgesTwice;
            if (!seen[w]) {
                seen[w] = true;
                q.push(w);
            }
        }
    }
    // All chosen edges must lie in the visited component.
    for (int e : edges)
        if (!seen[g.edge(e).u] || !seen[g.edge(e).v]) return {};
    std::vector<int> verts;
    for (int v = 0; v < g.numVertices(); ++v)
        if (seen[v]) verts.push_back(v);
    return verts;
}

Graph smallGraph(unsigned seed, int n = 6, int extraEdges = 4) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> cost(1.0, 5.0);
    Graph g(n);
    // Spanning cycle + random chords: connected, modest edge count.
    for (int v = 0; v < n; ++v)
        g.addEdge(v, (v + 1) % n, std::floor(cost(rng) * 2) / 2.0);
    std::uniform_int_distribution<int> pick(0, n - 1);
    for (int k = 0; k < extraEdges; ++k) {
        int a = pick(rng), b = pick(rng);
        if (a == b || (std::abs(a - b) == 1) || std::abs(a - b) == n - 1)
            continue;
        g.addEdge(a, b, std::floor(cost(rng) * 2) / 2.0);
    }
    return g;
}

}  // namespace

// --- RPCSTP -------------------------------------------------------------------

class PrizeCollecting : public ::testing::TestWithParam<int> {};

TEST_P(PrizeCollecting, MatchesBruteForce) {
    std::mt19937 rng(GetParam() * 17 + 5);
    std::uniform_real_distribution<double> prize(0.0, 6.0);
    for (int rep = 0; rep < 3; ++rep) {
        PrizeCollectingProblem prob;
        prob.graph = smallGraph(GetParam() * 100 + rep);
        prob.prize.assign(prob.graph.numVertices(), 0.0);
        for (int v = 0; v < prob.graph.numVertices(); ++v)
            if (v % 2 == 1) prob.prize[v] = std::floor(prize(rng) * 2) / 2.0;
        prob.root = 0;

        // Oracle: enumerate edge subsets.
        const int m = prob.graph.numEdges();
        ASSERT_LE(m, 16);
        double best = 1e100;
        for (int mask = 0; mask < (1 << m); ++mask) {
            std::vector<int> edges;
            double c = 0;
            for (int e = 0; e < m; ++e)
                if (mask & (1 << e)) {
                    edges.push_back(e);
                    c += prob.graph.edge(e).cost;
                }
            std::vector<int> verts =
                connectedVertices(prob.graph, edges, prob.root);
            if (verts.empty() && !edges.empty()) continue;
            std::vector<bool> in(prob.graph.numVertices(), false);
            for (int v : verts) in[v] = true;
            in[prob.root] = true;
            double forfeit = 0;
            for (int v = 0; v < prob.graph.numVertices(); ++v)
                if (!in[v]) forfeit += prob.prize[v];
            best = std::min(best, c + forfeit);
        }

        SapInstance inst = buildPrizeCollectingSap(prob);
        SteinerResult res = solveVariant(inst);
        ASSERT_EQ(res.status, cip::Status::Optimal)
            << "seed=" << GetParam() << " rep=" << rep;
        EXPECT_NEAR(res.cost, best, 1e-5)
            << "seed=" << GetParam() << " rep=" << rep;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrizeCollecting, ::testing::Values(1, 2, 3, 4));

// --- NWSTP --------------------------------------------------------------------

class NodeWeighted : public ::testing::TestWithParam<int> {};

TEST_P(NodeWeighted, MatchesBruteForce) {
    std::mt19937 rng(GetParam() * 31 + 7);
    std::uniform_real_distribution<double> w(0.0, 4.0);
    for (int rep = 0; rep < 3; ++rep) {
        NodeWeightedProblem prob;
        prob.graph = smallGraph(GetParam() * 200 + rep);
        prob.graph.setTerminal(0, true);
        prob.graph.setTerminal(3, true);
        prob.graph.setTerminal(5, true);
        prob.nodeCost.assign(prob.graph.numVertices(), 0.0);
        for (int v = 0; v < prob.graph.numVertices(); ++v)
            prob.nodeCost[v] = std::floor(w(rng) * 2) / 2.0;

        const int m = prob.graph.numEdges();
        double best = 1e100;
        for (int mask = 0; mask < (1 << m); ++mask) {
            std::vector<int> edges;
            double c = 0;
            for (int e = 0; e < m; ++e)
                if (mask & (1 << e)) {
                    edges.push_back(e);
                    c += prob.graph.edge(e).cost;
                }
            if (!prob.graph.spansTerminals(edges)) continue;
            std::vector<int> verts = connectedVertices(prob.graph, edges, 0);
            if (verts.empty()) continue;
            double nodes = 0;
            for (int v : verts) nodes += prob.nodeCost[v];
            best = std::min(best, c + nodes);
        }

        SapInstance inst = buildNodeWeightedSap(prob);
        SteinerResult res = solveVariant(inst);
        ASSERT_EQ(res.status, cip::Status::Optimal)
            << "seed=" << GetParam() << " rep=" << rep;
        EXPECT_NEAR(res.cost, best, 1e-5)
            << "seed=" << GetParam() << " rep=" << rep;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeWeighted, ::testing::Values(1, 2, 3, 4));

// --- DCSTP --------------------------------------------------------------------

class DegreeConstrained : public ::testing::TestWithParam<int> {};

TEST_P(DegreeConstrained, MatchesBruteForce) {
    for (int rep = 0; rep < 3; ++rep) {
        DegreeConstrainedProblem prob;
        prob.graph = smallGraph(GetParam() * 300 + rep);
        prob.graph.setTerminal(0, true);
        prob.graph.setTerminal(2, true);
        prob.graph.setTerminal(4, true);
        prob.maxDegree.assign(prob.graph.numVertices(), 2);

        const int m = prob.graph.numEdges();
        double best = 1e100;
        for (int mask = 0; mask < (1 << m); ++mask) {
            std::vector<int> edges;
            std::vector<int> deg(prob.graph.numVertices(), 0);
            double c = 0;
            bool degOk = true;
            for (int e = 0; e < m; ++e)
                if (mask & (1 << e)) {
                    edges.push_back(e);
                    c += prob.graph.edge(e).cost;
                    if (++deg[prob.graph.edge(e).u] > 2) degOk = false;
                    if (++deg[prob.graph.edge(e).v] > 2) degOk = false;
                }
            if (!degOk || !prob.graph.spansTerminals(edges)) continue;
            best = std::min(best, c);
        }

        SapInstance inst = buildDegreeConstrainedSap(prob);
        SteinerResult res = solveVariant(inst);
        if (best >= 1e99) {
            EXPECT_NE(res.status, cip::Status::Optimal);
            continue;
        }
        ASSERT_EQ(res.status, cip::Status::Optimal)
            << "seed=" << GetParam() << " rep=" << rep;
        EXPECT_NEAR(res.cost, best, 1e-5)
            << "seed=" << GetParam() << " rep=" << rep;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegreeConstrained,
                         ::testing::Values(1, 2, 3, 4));

// --- GSTP ---------------------------------------------------------------------

class GroupSteiner : public ::testing::TestWithParam<int> {};

TEST_P(GroupSteiner, MatchesBruteForce) {
    for (int rep = 0; rep < 3; ++rep) {
        GroupSteinerProblem prob;
        prob.graph = smallGraph(GetParam() * 400 + rep);
        prob.groups = {{0, 1}, {2, 3}, {4, 5}};

        const int m = prob.graph.numEdges();
        double best = 1e100;
        for (int mask = 0; mask < (1 << m); ++mask) {
            std::vector<int> edges;
            double c = 0;
            for (int e = 0; e < m; ++e)
                if (mask & (1 << e)) {
                    edges.push_back(e);
                    c += prob.graph.edge(e).cost;
                }
            // Single-vertex solutions: a vertex shared by all groups (none
            // here), otherwise need edges; test all anchored components.
            bool ok = false;
            for (int anchor = 0; anchor < prob.graph.numVertices() && !ok;
                 ++anchor) {
                std::vector<int> verts =
                    connectedVertices(prob.graph, edges, anchor);
                if (verts.empty()) continue;
                std::vector<bool> in(prob.graph.numVertices(), false);
                for (int v : verts) in[v] = true;
                bool all = true;
                for (const auto& grp : prob.groups) {
                    bool hit = false;
                    for (int v : grp) hit |= in[v];
                    all &= hit;
                }
                ok = all;
            }
            if (ok) best = std::min(best, c);
        }

        SapInstance inst = buildGroupSteinerSap(prob);
        SteinerResult res = solveVariant(inst);
        ASSERT_EQ(res.status, cip::Status::Optimal)
            << "seed=" << GetParam() << " rep=" << rep;
        EXPECT_NEAR(res.cost, best, 1e-5)
            << "seed=" << GetParam() << " rep=" << rep;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupSteiner, ::testing::Values(1, 2, 3, 4));

// --- structural checks ----------------------------------------------------------

TEST(Variants, PrizeCollectingGadgetStructure) {
    PrizeCollectingProblem prob;
    prob.graph = Graph(3);
    prob.graph.addEdge(0, 1, 1.0);
    prob.graph.addEdge(1, 2, 1.0);
    prob.prize = {0.0, 0.0, 5.0};
    prob.root = 0;
    SapInstance inst = buildPrizeCollectingSap(prob);
    // One gadget terminal for vertex 2.
    EXPECT_EQ(inst.graph.numVertices(), 4);
    EXPECT_EQ(inst.root, 0);
    EXPECT_EQ(inst.graph.numTerminals(), 2);  // root + gadget
    // Cheapest: collect 2 via edges (cost 2) < forfeit 5.
    SteinerResult res = solveVariant(inst);
    ASSERT_EQ(res.status, cip::Status::Optimal);
    EXPECT_NEAR(res.cost, 2.0, 1e-6);
}

TEST(Variants, PrizeCollectingForfeitsCheapPrizes) {
    PrizeCollectingProblem prob;
    prob.graph = Graph(2);
    prob.graph.addEdge(0, 1, 10.0);
    prob.prize = {0.0, 1.0};  // collecting costs 10, forfeiting 1
    prob.root = 0;
    SapInstance inst = buildPrizeCollectingSap(prob);
    SteinerResult res = solveVariant(inst);
    ASSERT_EQ(res.status, cip::Status::Optimal);
    EXPECT_NEAR(res.cost, 1.0, 1e-6);
}

TEST(Variants, NodeWeightsSteerVertexChoice) {
    // Two parallel 2-hop routes 0-1-3 / 0-2-3, same edge costs; vertex 2 is
    // heavy, so the tree must route through vertex 1.
    NodeWeightedProblem prob;
    prob.graph = Graph(4);
    prob.graph.addEdge(0, 1, 1.0);
    prob.graph.addEdge(1, 3, 1.0);
    prob.graph.addEdge(0, 2, 1.0);
    prob.graph.addEdge(2, 3, 1.0);
    prob.graph.setTerminal(0, true);
    prob.graph.setTerminal(3, true);
    prob.nodeCost = {0.0, 1.0, 7.0, 0.0};
    SapInstance inst = buildNodeWeightedSap(prob);
    SteinerResult res = solveVariant(inst);
    ASSERT_EQ(res.status, cip::Status::Optimal);
    EXPECT_NEAR(res.cost, 3.0, 1e-6);  // 2 edges + node 1
}

TEST(Variants, DegreeBoundForcesDetour) {
    // Star center 0 with terminals 1,2,3 but degree(0) <= 2: must use the
    // expensive rim edge for the third terminal.
    DegreeConstrainedProblem prob;
    prob.graph = Graph(4);
    prob.graph.addEdge(0, 1, 1.0);
    prob.graph.addEdge(0, 2, 1.0);
    prob.graph.addEdge(0, 3, 1.0);
    prob.graph.addEdge(1, 3, 2.5);
    prob.graph.setTerminal(1, true);
    prob.graph.setTerminal(2, true);
    prob.graph.setTerminal(3, true);
    prob.maxDegree = {2, 3, 3, 3};
    SapInstance inst = buildDegreeConstrainedSap(prob);
    SteinerResult res = solveVariant(inst);
    ASSERT_EQ(res.status, cip::Status::Optimal);
    EXPECT_NEAR(res.cost, 4.5, 1e-6);  // 1 + 1 + 2.5 instead of 3.0
}

TEST(Variants, GroupSteinerPicksCheapRepresentatives) {
    // Path 0-1-2-3; groups {0,3} and {2}: connect 2 with 3 (cost 1) or with
    // 0 (cost 2) — the gadget must pick the cheap representative.
    GroupSteinerProblem prob;
    prob.graph = Graph(4);
    prob.graph.addEdge(0, 1, 1.0);
    prob.graph.addEdge(1, 2, 1.0);
    prob.graph.addEdge(2, 3, 1.0);
    prob.groups = {{0, 3}, {2}};
    SapInstance inst = buildGroupSteinerSap(prob);
    SteinerResult res = solveVariant(inst);
    ASSERT_EQ(res.status, cip::Status::Optimal);
    EXPECT_NEAR(res.cost, 1.0, 1e-6);  // tree {2,3} hits both groups
}
