#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/eigen.hpp"
#include "sdp/ipm.hpp"

using linalg::Matrix;
using sdp::SdpBlock;
using sdp::SdpProblem;
using sdp::SdpResult;
using sdp::SdpStatus;

namespace {

/// max b'y over two variables, validated against a fine grid (coarse oracle).
double gridOracle(const SdpProblem& p, double lo, double hi, int steps) {
    double best = -1e300;
    const double h = (hi - lo) / steps;
    for (int i = 0; i <= steps; ++i)
        for (int j = 0; j <= steps; ++j) {
            std::vector<double> y{lo + i * h, lo + j * h};
            if (p.isFeasible(y, 1e-9)) best = std::max(best, p.objective(y));
        }
    return best;
}

}  // namespace

TEST(Sdp, ScalarBlockActsLikeLp) {
    // max y s.t. 3 - y >= 0 (1x1 block), y in [0, 10].
    SdpProblem p;
    p.init(1);
    p.b = {1.0};
    p.lb = {0.0};
    p.ub = {10.0};
    SdpBlock blk;
    blk.dim = 1;
    blk.c = Matrix(1, 1, 3.0);
    blk.a = {Matrix(1, 1, 1.0)};
    p.addBlock(std::move(blk));
    SdpResult r = sdp::solveSdp(p);
    ASSERT_EQ(r.status, SdpStatus::Optimal);
    EXPECT_NEAR(r.objective, 3.0, 1e-5);
    EXPECT_GE(r.upperBound, r.objective - 1e-7);
    EXPECT_LE(r.upperBound, 3.0 + 1e-4);
}

TEST(Sdp, CorrelationMatrixBound) {
    // max y s.t. [[1, y], [y, 1]] >= 0  ->  y* = 1.
    SdpProblem p;
    p.init(1);
    p.b = {1.0};
    p.lb = {-5.0};
    p.ub = {5.0};
    SdpBlock blk;
    blk.dim = 2;
    blk.c = Matrix{{1, 0}, {0, 1}};
    blk.a = {Matrix{{0, -1}, {-1, 0}}};  // C - A y = [[1, y],[y, 1]]
    p.addBlock(std::move(blk));
    SdpResult r = sdp::solveSdp(p);
    ASSERT_EQ(r.status, SdpStatus::Optimal);
    EXPECT_NEAR(r.objective, 1.0, 1e-4);
}

TEST(Sdp, SmallestEigenvalueProblem) {
    // max t s.t. A - t I >= 0  ->  t* = lambda_min(A).
    Matrix a{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}};
    const double lmin = linalg::smallestEigenvalue(a);
    SdpProblem p;
    p.init(1);
    p.b = {1.0};
    p.lb = {-100.0};
    p.ub = {100.0};
    SdpBlock blk;
    blk.dim = 3;
    blk.c = a;
    blk.a = {Matrix::identity(3)};
    p.addBlock(std::move(blk));
    SdpResult r = sdp::solveSdp(p);
    ASSERT_EQ(r.status, SdpStatus::Optimal);
    EXPECT_NEAR(r.objective, lmin, 1e-4);
}

TEST(Sdp, FixedVariablesAreEliminated) {
    // y0 fixed to 2 by bounds; max y1 s.t. 5 - y0 - y1 >= 0 -> y1 = 3.
    SdpProblem p;
    p.init(2);
    p.b = {0.0, 1.0};
    p.lb = {2.0, 0.0};
    p.ub = {2.0, 100.0};
    SdpBlock blk;
    blk.dim = 1;
    blk.c = Matrix(1, 1, 5.0);
    blk.a = {Matrix(1, 1, 1.0), Matrix(1, 1, 1.0)};
    p.addBlock(std::move(blk));
    SdpResult r = sdp::solveSdp(p);
    ASSERT_EQ(r.status, SdpStatus::Optimal);
    EXPECT_NEAR(r.y[0], 2.0, 1e-9);
    EXPECT_NEAR(r.objective, 3.0, 1e-4);
}

TEST(Sdp, DetectsInfeasibilityViaPenalty) {
    // 1 - y >= 0 and y - 2 >= 0 simultaneously: empty.
    SdpProblem p;
    p.init(1);
    p.b = {1.0};
    p.lb = {-10.0};
    p.ub = {10.0};
    SdpBlock b1;
    b1.dim = 1;
    b1.c = Matrix(1, 1, 1.0);
    b1.a = {Matrix(1, 1, 1.0)};  // 1 - y >= 0
    p.addBlock(std::move(b1));
    SdpBlock b2;
    b2.dim = 1;
    b2.c = Matrix(1, 1, -2.0);
    b2.a = {Matrix(1, 1, -1.0)};  // y - 2 >= 0
    p.addBlock(std::move(b2));
    SdpResult r = sdp::solveSdp(p);
    EXPECT_EQ(r.status, SdpStatus::Infeasible);
    EXPECT_GT(r.penalty, 1e-4);
}

TEST(Sdp, MultipleBlocksAndBothBounds) {
    // max y1 + y2, blocks [[2 - y1]] and [[2 - y2]], y in [0, 5]^2 -> 4.
    SdpProblem p;
    p.init(2);
    p.b = {1.0, 1.0};
    p.lb = {0.0, 0.0};
    p.ub = {5.0, 5.0};
    for (int i = 0; i < 2; ++i) {
        SdpBlock blk;
        blk.dim = 1;
        blk.c = Matrix(1, 1, 2.0);
        blk.a.assign(2, Matrix{});
        blk.a[i] = Matrix(1, 1, 1.0);
        p.addBlock(std::move(blk));
    }
    SdpResult r = sdp::solveSdp(p);
    ASSERT_EQ(r.status, SdpStatus::Optimal);
    EXPECT_NEAR(r.objective, 4.0, 1e-4);
}

TEST(Sdp, FeasibilityCheckerAgrees) {
    SdpProblem p;
    p.init(1);
    p.b = {1.0};
    p.lb = {-5.0};
    p.ub = {5.0};
    SdpBlock blk;
    blk.dim = 2;
    blk.c = Matrix{{1, 0}, {0, 1}};
    blk.a = {Matrix{{0, -1}, {-1, 0}}};
    p.addBlock(std::move(blk));
    EXPECT_TRUE(p.isFeasible({0.5}));
    EXPECT_TRUE(p.isFeasible({1.0}, 1e-6));
    EXPECT_FALSE(p.isFeasible({1.5}));
    EXPECT_FALSE(p.isFeasible({6.0}));  // bound violation
}

// Property: random 2-variable SDPs against a grid oracle.
class SdpRandom : public ::testing::TestWithParam<int> {};

TEST_P(SdpRandom, MatchesGridOracle) {
    std::mt19937 rng(GetParam() * 7 + 3);
    std::uniform_real_distribution<double> coef(-1.0, 1.0);
    for (int rep = 0; rep < 4; ++rep) {
        SdpProblem p;
        p.init(2);
        p.b = {coef(rng), coef(rng)};
        p.lb = {-2.0, -2.0};
        p.ub = {2.0, 2.0};
        // Block C = diag-dominant random symmetric + margin, so y = 0 is
        // strictly feasible (Slater holds).
        SdpBlock blk;
        blk.dim = 3;
        Matrix c(3, 3);
        for (int i = 0; i < 3; ++i)
            for (int j = i; j < 3; ++j) {
                const double v = coef(rng);
                c(i, j) = v;
                c(j, i) = v;
            }
        for (int i = 0; i < 3; ++i) c(i, i) += 3.0;
        blk.c = c;
        blk.a.resize(2);
        for (int k = 0; k < 2; ++k) {
            Matrix a(3, 3);
            for (int i = 0; i < 3; ++i)
                for (int j = i; j < 3; ++j) {
                    const double v = coef(rng);
                    a(i, j) = v;
                    a(j, i) = v;
                }
            blk.a[k] = a;
        }
        p.addBlock(std::move(blk));
        SdpResult r = sdp::solveSdp(p);
        ASSERT_EQ(r.status, SdpStatus::Optimal) << "rep " << rep;
        const double oracle = gridOracle(p, -2.0, 2.0, 160);
        // The solver's point must be (nearly) feasible and as good as the
        // best grid point; its upper bound must dominate the oracle.
        EXPECT_TRUE(p.isFeasible(r.y, 1e-5));
        EXPECT_GE(r.objective, oracle - 0.05);
        EXPECT_GE(r.upperBound, oracle - 1e-6);
        EXPECT_LE(r.objective, r.upperBound + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdpRandom, ::testing::Values(1, 2, 3, 4, 5, 6));
