// Tests for the sparse LU basis factorization (lp/lu.hpp): kernel-level
// FTRAN/BTRAN round trips and Forrest–Tomlin update correctness against
// fresh factorizations, plus engine-level agreement between the LU, PFI and
// dense simplex implementations and the singular-basis repair path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "lp/dense_simplex.hpp"
#include "lp/lu.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

using lp::Basis;
using lp::DenseSimplexSolver;
using lp::Factorization;
using lp::kInf;
using lp::LpModel;
using lp::LuFactor;
using lp::Row;
using lp::SimplexSolver;
using lp::SolveStatus;
using lp::VarStatus;

namespace {

/// The bench suite's Steiner-cut-shaped LP: 0/1 edge columns with positive
/// costs and sparse ">= 1" cut rows.
LpModel steinerCutLp(int n, int rows, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> cost(0.5, 2.0);
    std::uniform_int_distribution<int> nnz(4, 8);
    std::uniform_int_distribution<int> col(0, n - 1);
    LpModel m;
    for (int j = 0; j < n; ++j) m.addCol(cost(rng), 0.0, 1.0);
    for (int i = 0; i < rows; ++i) {
        std::vector<std::pair<int, double>> cs;
        int k = nnz(rng);
        for (int t = 0; t < k; ++t) cs.emplace_back(col(rng), 1.0);
        cs.emplace_back(i % n, 1.0);
        std::sort(cs.begin(), cs.end());
        cs.erase(std::unique(cs.begin(), cs.end(),
                             [](auto& a, auto& b) { return a.first == b.first; }),
                 cs.end());
        m.addRow(Row(std::move(cs), 1.0, kInf));
    }
    return m;
}

LpModel randomBoxLp(int n, int rows, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> coef(-2.0, 2.0);
    LpModel m;
    for (int j = 0; j < n; ++j) m.addCol(coef(rng), 0.0, 3.0);
    for (int i = 0; i < rows; ++i) {
        std::vector<std::pair<int, double>> cs;
        for (int j = 0; j < n; ++j) cs.emplace_back(j, coef(rng));
        m.addRow(Row(std::move(cs), -5.0, 5.0));
    }
    return m;
}

/// Column-wise sparse matrix with `cols` columns over m rows. Column j
/// carries a dominant entry (strength 3 + u) on row j % m plus a few small
/// off-diagonal entries, so any basic set {j : j % m covers each row once}
/// is strictly column-diagonally-dominant, hence nonsingular.
struct Csc {
    int m = 0;
    std::vector<int> ptr, row;
    std::vector<double> val;
};

Csc makeDominantCsc(int m, int cols, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    std::uniform_int_distribution<int> anyRow(0, m - 1);
    Csc a;
    a.m = m;
    a.ptr.push_back(0);
    for (int j = 0; j < cols; ++j) {
        const int diag = j % m;
        std::vector<std::pair<int, double>> es;
        es.emplace_back(diag, 3.0 + u(rng));
        const int extra = std::min(m - 1, 1 + static_cast<int>(u(rng) * 3));
        for (int t = 0; t < extra; ++t) {
            const int r = anyRow(rng);
            if (r == diag) continue;
            es.emplace_back(r, 2.0 * u(rng) - 1.0);
        }
        std::sort(es.begin(), es.end());
        es.erase(std::unique(es.begin(), es.end(),
                             [](auto& x, auto& y) { return x.first == y.first; }),
                 es.end());
        for (const auto& [r, v] : es) {
            a.row.push_back(r);
            a.val.push_back(v);
        }
        a.ptr.push_back(static_cast<int>(a.row.size()));
    }
    return a;
}

/// b[r] = sum over rows of (column basicAtRow[rowIdx]) * x[rowIdx]: the
/// residual oracle for ftran (x[r] is the coefficient of the column basic
/// in row r).
std::vector<double> applyBasis(const Csc& a, const std::vector<int>& basicAtRow,
                               const std::vector<double>& x) {
    std::vector<double> b(a.m, 0.0);
    for (int r = 0; r < a.m; ++r) {
        const int j = basicAtRow[r];
        for (int p = a.ptr[j]; p < a.ptr[j + 1]; ++p)
            b[a.row[p]] += a.val[p] * x[r];
    }
    return b;
}

double infNormDiff(const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        d = std::max(d, std::fabs(a[i] - b[i]));
    return d;
}

/// Factorize the basic set and return the row -> column assignment
/// (basicAtRow), mirroring what SimplexSolver::refactorize does with
/// rowOfSlot.
bool factorizeBasis(LuFactor& f, const Csc& a, const std::vector<int>& basic,
                    std::vector<int>& basicAtRow) {
    std::vector<int> rowOfSlot;
    if (!f.factorize(basic, a.ptr, a.row, a.val, rowOfSlot)) return false;
    basicAtRow.assign(a.m, -1);
    for (int s = 0; s < a.m; ++s) basicAtRow[rowOfSlot[s]] = basic[s];
    return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Kernel-level property tests on LuFactor directly
// ---------------------------------------------------------------------------

TEST(LuFactorProperty, FtranBtranRoundTrip) {
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> u(-2.0, 2.0);
    for (int m : {3, 8, 25, 60}) {
        for (unsigned seed = 0; seed < 8; ++seed) {
            const Csc a = makeDominantCsc(m, m, 100 * m + seed);
            std::vector<int> basic(m);
            for (int j = 0; j < m; ++j) basic[j] = j;
            LuFactor f;
            std::vector<int> basicAtRow;
            ASSERT_TRUE(factorizeBasis(f, a, basic, basicAtRow));

            // FTRAN: x = B^{-1} b, check B x == b.
            std::vector<double> b(m), x;
            for (double& v : b) v = u(rng);
            x = b;
            f.ftran(x);
            EXPECT_LT(infNormDiff(applyBasis(a, basicAtRow, x), b), 1e-9)
                << "m=" << m << " seed=" << seed;

            // BTRAN: y = B^{-T} c, check (B^T y)[r] = dot(col basicAtRow[r],
            // y) == c[r].
            std::vector<double> c(m), y;
            for (double& v : c) v = u(rng);
            y = c;
            f.btran(y);
            for (int r = 0; r < m; ++r) {
                const int j = basicAtRow[r];
                double dot = 0.0;
                for (int p = a.ptr[j]; p < a.ptr[j + 1]; ++p)
                    dot += a.val[p] * y[a.row[p]];
                EXPECT_NEAR(dot, c[r], 1e-9) << "m=" << m << " seed=" << seed;
            }
        }
    }
}

TEST(LuFactorProperty, ForrestTomlinUpdatesMatchFreshFactorization) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> u(-2.0, 2.0);
    for (int m : {6, 20, 50}) {
        // 3m columns: the basic set starts as the first m and is repeatedly
        // updated with spare columns whose dominant row matches the slot
        // they enter, keeping the basis nonsingular by construction.
        const Csc a = makeDominantCsc(m, 3 * m, 13 * m + 1);
        std::vector<int> basic(m);
        for (int j = 0; j < m; ++j) basic[j] = j;
        LuFactor f;
        std::vector<int> basicAtRow;
        ASSERT_TRUE(factorizeBasis(f, a, basic, basicAtRow));

        std::uniform_int_distribution<int> anySpare(m, 3 * m - 1);
        int applied = 0;
        for (int step = 0; step < 4 * m; ++step) {
            const int q = anySpare(rng);
            const int leaveRow = q % m;  // q's dominant row
            if (basicAtRow[leaveRow] == q) continue;
            // Spike solve, exactly as the simplex layer does it.
            std::vector<double> w(m, 0.0);
            for (int p = a.ptr[q]; p < a.ptr[q + 1]; ++p)
                w[a.row[p]] = a.val[p];
            f.ftranSpike(w);
            if (!f.update(leaveRow)) {
                // Numerically refused pivot: the factor invalidates itself
                // and the caller refactorizes. Do the same here.
                EXPECT_FALSE(f.valid());
                ASSERT_TRUE(factorizeBasis(f, a, basic, basicAtRow));
                continue;
            }
            basicAtRow[leaveRow] = q;
            ++applied;

            // The updated factor must keep solving the *current* basis.
            std::vector<double> b(m), x;
            for (double& v : b) v = u(rng);
            x = b;
            f.ftran(x);
            EXPECT_LT(infNormDiff(applyBasis(a, basicAtRow, x), b), 1e-7)
                << "m=" << m << " step=" << step;

            // Drift check vs a fresh factorization of the same basis: the
            // chained Forrest–Tomlin factor and the fresh factor must agree
            // on the solution itself.
            if (step % 7 == 0) {
                std::vector<int> curBasic(m);
                for (int r = 0; r < m; ++r) curBasic[r] = basicAtRow[r];
                LuFactor fresh;
                std::vector<int> freshAtRow;
                ASSERT_TRUE(factorizeBasis(fresh, a, curBasic, freshAtRow));
                std::vector<double> xf(m);
                // fresh row assignment may differ; compare by column.
                std::vector<double> xr = b;
                fresh.ftran(xr);
                std::vector<double> byColChained(3 * m, 0.0),
                    byColFresh(3 * m, 0.0);
                for (int r = 0; r < m; ++r) {
                    byColChained[basicAtRow[r]] = x[r];
                    byColFresh[freshAtRow[r]] = xr[r];
                }
                EXPECT_LT(infNormDiff(byColChained, byColFresh), 1e-7)
                    << "m=" << m << " step=" << step;
            }
        }
        EXPECT_GT(applied, m) << "update coverage too thin for m=" << m;
        EXPECT_GT(f.updates(), 0);
    }
}

// ---------------------------------------------------------------------------
// Engine-level agreement: LU vs PFI vs dense
// ---------------------------------------------------------------------------

TEST(LuPfiDenseAgreement, ColdSolves) {
    for (unsigned seed = 1; seed <= 5; ++seed) {
        for (bool steiner : {false, true}) {
            LpModel m = steiner ? steinerCutLp(40, 40, seed)
                                : randomBoxLp(25, 25, seed);
            SimplexSolver lu;
            lu.setFactorization(Factorization::LU);
            lu.load(m);
            SimplexSolver pfi;
            pfi.setFactorization(Factorization::PFI);
            pfi.load(m);
            DenseSimplexSolver dense;
            dense.load(m);
            const SolveStatus sl = lu.solve();
            const SolveStatus sp = pfi.solve();
            const SolveStatus sd = dense.solve();
            EXPECT_EQ(sl, sp);
            ASSERT_EQ(sl, SolveStatus::Optimal)
                << "seed=" << seed << " steiner=" << steiner;
            ASSERT_EQ(sd, SolveStatus::Optimal);
            EXPECT_NEAR(lu.objective(), dense.objective(), 1e-6);
            EXPECT_NEAR(pfi.objective(), dense.objective(), 1e-6);
        }
    }
}

TEST(LuPfiDenseAgreement, WarmResolveChain) {
    // Branching-style warm chain: exclude an edge, resolve, re-admit,
    // resolve — all three engines must report identical objectives at every
    // step (this is the bench loop's correctness half).
    const int n = 60;
    LpModel m = steinerCutLp(n, n, 11);
    SimplexSolver lu;
    lu.setFactorization(Factorization::LU);
    lu.load(m);
    SimplexSolver pfi;
    pfi.setFactorization(Factorization::PFI);
    pfi.load(m);
    DenseSimplexSolver dense;
    dense.load(m);
    ASSERT_EQ(lu.solve(), SolveStatus::Optimal);
    ASSERT_EQ(pfi.solve(), SolveStatus::Optimal);
    ASSERT_EQ(dense.solve(), SolveStatus::Optimal);
    int j = 0;
    bool down = true;
    for (int it = 0; it < 200; ++it) {
        const double ub = down ? 0.0 : 1.0;
        lu.changeBounds(j, 0.0, ub);
        pfi.changeBounds(j, 0.0, ub);
        dense.changeBounds(j, 0.0, ub);
        const SolveStatus sl = lu.resolve();
        const SolveStatus sp = pfi.resolve();
        const SolveStatus sd = dense.resolve();
        ASSERT_EQ(sl, SolveStatus::Optimal) << "it=" << it;
        ASSERT_EQ(sp, SolveStatus::Optimal) << "it=" << it;
        ASSERT_EQ(sd, SolveStatus::Optimal) << "it=" << it;
        ASSERT_NEAR(lu.objective(), dense.objective(), 1e-6) << "it=" << it;
        ASSERT_NEAR(pfi.objective(), dense.objective(), 1e-6) << "it=" << it;
        if (!down) j = (j + 7) % n;
        down = !down;
    }
    EXPECT_GT(lu.factorizations(), 1);
}

// ---------------------------------------------------------------------------
// Singular / near-singular basis repair
// ---------------------------------------------------------------------------

namespace {

/// LP whose columns 0 and 1 are (near-)identical: a Basis snapshot naming
/// both of them basic implies a singular basis matrix.
LpModel duplicateColumnLp(double perturb) {
    LpModel m;
    m.addCol(1.0, 0.0, 4.0);   // col 0
    m.addCol(1.5, 0.0, 4.0);   // col 1 == col 0 (up to `perturb`)
    m.addCol(2.0, 0.0, 4.0);   // col 2, independent
    m.addRow(Row({{0, 1.0}, {1, 1.0 + perturb}, {2, 1.0}}, 2.0, kInf));
    m.addRow(Row({{0, 1.0}, {1, 1.0}, {2, -1.0}}, 1.0, kInf));
    return m;
}

Basis duplicateColumnBasis() {
    Basis b;
    b.cols = 3;
    b.rows = 2;
    b.status = {VarStatus::Basic, VarStatus::Basic, VarStatus::AtLower,
                VarStatus::AtLower, VarStatus::AtLower};
    return b;
}

}  // namespace

TEST(SingularBasisRepair, LuHealsDuplicateColumnBasis) {
    for (double perturb : {0.0, 1e-14}) {
        LpModel m = duplicateColumnLp(perturb);
        SimplexSolver cold;
        cold.setFactorization(Factorization::LU);
        cold.load(m);
        ASSERT_EQ(cold.solve(), SolveStatus::Optimal);
        const double ref = cold.objective();

        SimplexSolver s;
        s.setFactorization(Factorization::LU);
        s.load(m);
        // The LU path repairs the singular basis in place (unpivotable
        // slots are filled with slacks of uncovered rows), so the snapshot
        // loads and the subsequent resolve reaches the optimum.
        EXPECT_TRUE(s.loadBasis(duplicateColumnBasis()))
            << "perturb=" << perturb;
        ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
        EXPECT_NEAR(s.objective(), ref, 1e-8) << "perturb=" << perturb;
    }
}

TEST(SingularBasisRepair, PfiRejectsDuplicateColumnBasis) {
    LpModel m = duplicateColumnLp(0.0);
    SimplexSolver s;
    s.setFactorization(Factorization::PFI);
    s.load(m);
    // The eta-file path has no repair: loadBasis must report failure so the
    // caller falls back to a cold solve — and that cold solve must work.
    EXPECT_FALSE(s.loadBasis(duplicateColumnBasis()));
    ASSERT_EQ(s.solve(), SolveStatus::Optimal);
}

TEST(SingularBasisRepair, RepairedWarmChainKeepsSolving) {
    // After a repair the solver must remain usable for further warm
    // resolves (the factor policy state is reset correctly).
    LpModel m = duplicateColumnLp(0.0);
    SimplexSolver s;
    s.setFactorization(Factorization::LU);
    s.load(m);
    ASSERT_TRUE(s.loadBasis(duplicateColumnBasis()));
    ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
    DenseSimplexSolver dense;
    dense.load(m);
    ASSERT_EQ(dense.solve(), SolveStatus::Optimal);
    for (int it = 0; it < 6; ++it) {
        const double ub = (it % 2 == 0) ? 0.0 : 4.0;
        s.changeBounds(it % 3, 0.0, ub);
        dense.changeBounds(it % 3, 0.0, ub);
        ASSERT_EQ(s.resolve(), SolveStatus::Optimal);
        ASSERT_EQ(dense.resolve(), SolveStatus::Optimal);
        ASSERT_NEAR(s.objective(), dense.objective(), 1e-7) << "it=" << it;
    }
}
