// The warm-started Steiner cut separation engine and its max-flow kernel:
// randomized flow/min-cut cross-checks against brute force, warm-vs-cold
// flow equivalence, the violated+valid property of every emitted cut, and
// the dual-bound strength of nested/back cuts at the root.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "steiner/cutsep.hpp"
#include "steiner/heuristics.hpp"
#include "steiner/instances.hpp"
#include "steiner/maxflow.hpp"
#include "steiner/reductions.hpp"
#include "steiner/stpmodel.hpp"
#include "steiner/stpsolver.hpp"

using namespace steiner;

namespace {

struct RandomNet {
    int n = 0;
    std::vector<int> from, to;
    std::vector<double> cap;
};

RandomNet randomNet(std::mt19937& rng) {
    RandomNet net;
    std::uniform_int_distribution<int> nodes(3, 7);
    net.n = nodes(rng);
    std::uniform_int_distribution<int> pick(0, net.n - 1);
    std::uniform_real_distribution<double> c(0.05, 1.5);
    std::uniform_int_distribution<int> arcs(net.n, 3 * net.n);
    const int m = arcs(rng);
    for (int a = 0; a < m; ++a) {
        const int u = pick(rng), v = pick(rng);
        if (u == v) continue;
        net.from.push_back(u);
        net.to.push_back(v);
        net.cap.push_back(c(rng));
    }
    return net;
}

double bruteForceMinCut(const RandomNet& net, int s, int t) {
    double best = 0.0;
    bool any = false;
    for (unsigned mask = 0; mask < (1u << net.n); ++mask) {
        if (!(mask & (1u << s)) || (mask & (1u << t))) continue;
        double cut = 0.0;
        for (std::size_t a = 0; a < net.from.size(); ++a)
            if ((mask & (1u << net.from[a])) && !(mask & (1u << net.to[a])))
                cut += net.cap[a];
        if (!any || cut < best) best = cut;
        any = true;
    }
    return best;
}

// The benchmark's fractional-LP-point recipe: blend two perturbed heuristic
// trees and thin each arc a little, so several terminals are violated.
std::vector<double> fractionalPoint(const SapInstance& inst,
                                    std::uint64_t seed) {
    const Graph& h = inst.graph;
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> perturb(0.5, 1.5);
    std::vector<double> o1(h.numEdges()), o2(h.numEdges());
    for (int e = 0; e < h.numEdges(); ++e) {
        o1[e] = h.edge(e).cost * perturb(rng);
        o2[e] = h.edge(e).cost * perturb(rng);
    }
    auto t1 = primalHeuristic(h, 2, &o1);
    auto t2 = primalHeuristic(h, 2, &o2);
    auto x1 = treeToModelSolution(inst, t1.edges);
    auto x2 = treeToModelSolution(inst, t2.edges);
    std::vector<double> x(x1.size());
    std::uniform_real_distribution<double> thin(0.85, 1.0);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = thin(rng) * std::min(1.0, 0.55 * x1[i] + 0.50 * x2[i]);
    return x;
}

// Per model var, its arc endpoints (same mapping the engine uses).
void varEndpoints(const SapInstance& inst, std::vector<int>& tail,
                  std::vector<int>& head) {
    const Graph& g = inst.graph;
    for (std::size_t var = 0; var < inst.varArc.size(); ++var) {
        const int a = inst.varArc[var];
        const Edge& e = g.edge(a / 2);
        tail.push_back((a % 2 == 0) ? e.u : e.v);
        head.push_back((a % 2 == 0) ? e.v : e.u);
    }
}

// Is `target` reachable from the root through arcs NOT in `cut` (over the
// full modeled arc set, ignoring x)? A valid Steiner cut must disconnect.
bool reachableAvoiding(const SapInstance& inst, const std::vector<int>& tail,
                       const std::vector<int>& head,
                       const std::vector<int>& cut, int target) {
    std::vector<char> banned(tail.size(), 0);
    for (int v : cut) banned[v] = 1;
    std::vector<char> seen(inst.graph.numVertices(), 0);
    std::vector<int> q{inst.root};
    seen[inst.root] = 1;
    for (std::size_t qi = 0; qi < q.size(); ++qi)
        for (std::size_t var = 0; var < tail.size(); ++var)
            if (!banned[var] && tail[var] == q[qi] && !seen[head[var]]) {
                seen[head[var]] = 1;
                q.push_back(head[var]);
            }
    return seen[target] != 0;
}

}  // namespace

// --- kernel vs brute force ---------------------------------------------------

TEST(CutSepKernel, RandomFlowsMatchBruteForceMinCut) {
    std::mt19937 rng(7);
    for (int trial = 0; trial < 120; ++trial) {
        RandomNet net = randomNet(rng);
        if (net.from.empty()) continue;
        const int s = 0, t = net.n - 1;
        MaxFlow mf(net.n);
        for (std::size_t a = 0; a < net.from.size(); ++a)
            mf.addArc(net.from[a], net.to[a], net.cap[a]);
        const double flow = mf.solve(s, t);
        const double cut = bruteForceMinCut(net, s, t);
        ASSERT_NEAR(flow, cut, 1e-9) << "trial " << trial;
        // The residual source side certifies the same cut value.
        auto side = mf.minCutSourceSide(s);
        double certified = 0.0;
        for (std::size_t a = 0; a < net.from.size(); ++a)
            if (side[net.from[a]] && !side[net.to[a]]) certified += net.cap[a];
        ASSERT_NEAR(certified, cut, 1e-9) << "trial " << trial;
    }
}

TEST(CutSepKernel, ActiveArcFilterPreservesFlowValues) {
    std::mt19937 rng(11);
    for (int trial = 0; trial < 60; ++trial) {
        RandomNet net = randomNet(rng);
        if (net.from.empty()) continue;
        MaxFlow plain(net.n), filtered(net.n);
        for (std::size_t a = 0; a < net.from.size(); ++a) {
            plain.addArc(net.from[a], net.to[a], net.cap[a]);
            // Filtered copy: a third of the arcs get zero capacity, which
            // rebuildActive() drops from the traversal lists entirely.
            const double c = (a % 3 == 0) ? 0.0 : net.cap[a];
            filtered.addArc(net.from[a], net.to[a], c);
        }
        for (std::size_t a = 0; a < net.from.size(); ++a)
            if (a % 3 == 0) plain.setCapacity(static_cast<int>(a), 0.0);
        filtered.rebuildActive();
        ASSERT_NEAR(plain.solve(0, net.n - 1), filtered.solve(0, net.n - 1),
                    1e-9)
            << "trial " << trial;
    }
}

TEST(CutSepKernel, ReverseOnlyDrainCancelsWholeFlow) {
    // After any solve, the full flow can be pushed back t->s through reverse
    // entries alone (flow decomposition) — the warm-start drain guarantee.
    std::mt19937 rng(23);
    for (int trial = 0; trial < 60; ++trial) {
        RandomNet net = randomNet(rng);
        if (net.from.empty()) continue;
        MaxFlow mf(net.n);
        for (std::size_t a = 0; a < net.from.size(); ++a)
            mf.addArc(net.from[a], net.to[a], net.cap[a]);
        const int s = 0, t = net.n - 1;
        const double flow = mf.solve(s, t);
        if (flow <= 1e-9) continue;
        const double drained =
            mf.augmentDfs(t, s, flow, /*reverseOnly=*/true);
        ASSERT_NEAR(drained, flow, 1e-9) << "trial " << trial;
        for (std::size_t a = 0; a < net.from.size(); ++a)
            ASSERT_NEAR(mf.flow(static_cast<int>(a)), 0.0, 1e-9)
                << "trial " << trial << " arc " << a;
    }
}

// --- warm vs cold ------------------------------------------------------------

TEST(CutSepEngine, WarmStartedFlowsMatchColdSolves) {
    for (std::uint64_t seed : {3u, 5u, 9u}) {
        Graph g = genHypercube(5, true, seed);
        ReductionStats none;
        SapInstance inst = buildSapInstance(std::move(g), none);
        std::vector<double> x = fractionalPoint(inst, 40 + seed);
        std::vector<int> tail, head;
        varEndpoints(inst, tail, head);

        CutSeparationEngine eng(inst);
        CutSepaConfig cfg;
        cfg.nestedCuts = false;  // keep capacities untouched between targets
        cfg.backCuts = false;
        const double threshold = 1.0 - cfg.violationTol;

        std::vector<int> targets;
        for (int t : inst.graph.terminals())
            if (t != inst.root) targets.push_back(t);
        targets = eng.orderByDeficit(targets);

        eng.beginRound(x, cfg);
        std::vector<SteinerCut> cuts;
        for (int t : targets) {
            eng.separateTarget(t, 4, cuts);
            const double warm = eng.lastFlowValue();
            // Cold reference: a fresh network solved from scratch.
            MaxFlow cold(inst.graph.numVertices());
            for (std::size_t var = 0; var < tail.size(); ++var)
                cold.addArc(tail[var], head[var], std::max(0.0, x[var]));
            const double full = cold.solve(inst.root, t);
            if (warm < threshold - 1e-7) {
                // Engine exhausted the target: its value IS the max flow.
                EXPECT_NEAR(warm, full, 1e-7) << "target " << t;
            } else {
                // Engine stopped at the violation threshold; the true max
                // flow can only be larger.
                EXPECT_GE(full, warm - 1e-7) << "target " << t;
            }
        }
        EXPECT_GT(eng.stats().warmStarts, 0);
        EXPECT_GT(eng.stats().flowSolves, 0);
    }
}

// --- every emitted cut is violated and valid ---------------------------------

TEST(CutSepEngine, EmittedCutsAreViolatedAndValid) {
    std::int64_t nestedTotal = 0, backTotal = 0;
    for (std::uint64_t seed : {1u, 2u, 6u}) {
        Graph g = genHypercube(5, true, seed);
        ReductionStats none;
        SapInstance inst = buildSapInstance(std::move(g), none);
        std::vector<double> x = fractionalPoint(inst, 90 + seed);
        std::vector<int> tail, head;
        varEndpoints(inst, tail, head);

        CutSeparationEngine eng(inst);
        CutSepaConfig cfg;  // nested + back cuts on (defaults)
        eng.beginRound(x, cfg);

        std::vector<int> targets;
        for (int t : inst.graph.terminals())
            if (t != inst.root) targets.push_back(t);
        targets = eng.orderByDeficit(targets);

        int total = 0;
        for (int t : targets) {
            std::vector<SteinerCut> cuts;
            eng.separateTarget(t, 6, cuts);
            for (const SteinerCut& cut : cuts) {
                ASSERT_FALSE(cut.vars.empty());
                // Violated: activity below the threshold, and the recorded
                // activity matches the LP point.
                double act = 0.0;
                for (int var : cut.vars) act += x[var];
                EXPECT_NEAR(act, cut.lpActivity, 1e-9);
                EXPECT_LT(act, 1.0 - cfg.violationTol + 1e-9);
                // Valid: deleting the cut arcs disconnects root -> target.
                EXPECT_FALSE(
                    reachableAvoiding(inst, tail, head, cut.vars, t))
                    << "seed " << seed << " target " << t;
            }
            total += static_cast<int>(cuts.size());
        }
        EXPECT_GT(total, 0) << "seed " << seed;
        nestedTotal += eng.stats().nestedCuts;
        backTotal += eng.stats().backCuts;
    }
    // Nested cuts rarely survive the violation threshold on these random
    // instances (saturating the first cut usually lifts the re-solved flow
    // past it) — the chain test below pins down the nested machinery.
    EXPECT_GT(backTotal, 0);
    (void)nestedTotal;
}

// On a chain root(T) - mid - term(T) with x(root->mid) = 0.5 and
// x(mid->term) = 0.45, the first cut is {mid->term} (activity 0.45);
// saturating it re-solves to flow 0.5, still under the threshold, so the
// nested cut {root->mid} must be emitted at depth 1.
TEST(CutSepEngine, NestedCutsFireOnChainInstance) {
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 1.0);
    g.setTerminal(0, true);
    g.setTerminal(2, true);
    ReductionStats none;
    SapInstance inst = buildSapInstance(std::move(g), none);
    ASSERT_EQ(inst.root, 0);

    std::vector<int> tail, head;
    varEndpoints(inst, tail, head);
    std::vector<double> x(tail.size(), 0.0);
    int rootMid = -1, midTerm = -1;
    for (std::size_t var = 0; var < tail.size(); ++var) {
        if (tail[var] == 0 && head[var] == 1) {
            x[var] = 0.5;
            rootMid = static_cast<int>(var);
        } else if (tail[var] == 1 && head[var] == 2) {
            x[var] = 0.45;
            midTerm = static_cast<int>(var);
        }
    }
    ASSERT_GE(rootMid, 0);
    ASSERT_GE(midTerm, 0);

    CutSeparationEngine eng(inst);
    CutSepaConfig cfg;  // nested cuts on by default
    eng.beginRound(x, cfg);
    std::vector<SteinerCut> cuts;
    const int found = eng.separateTarget(2, 6, cuts);
    ASSERT_EQ(found, 2);
    EXPECT_EQ(cuts[0].vars, std::vector<int>{midTerm});
    EXPECT_NEAR(cuts[0].lpActivity, 0.45, 1e-12);
    EXPECT_EQ(cuts[1].vars, std::vector<int>{rootMid});
    EXPECT_NEAR(cuts[1].lpActivity, 0.5, 1e-12);
    EXPECT_GE(eng.stats().nestedCuts, 1);
    EXPECT_GE(eng.stats().maxNestedDepth, 1);
    for (const SteinerCut& cut : cuts)
        EXPECT_FALSE(reachableAvoiding(inst, tail, head, cut.vars, 2));
}

TEST(CutSepEngine, CreepFlowCutsStayViolatedAndValid) {
    Graph g = genHypercube(5, true, 4);
    ReductionStats none;
    SapInstance inst = buildSapInstance(std::move(g), none);
    std::vector<double> x = fractionalPoint(inst, 77);
    std::vector<int> tail, head;
    varEndpoints(inst, tail, head);

    CutSeparationEngine eng(inst);
    CutSepaConfig cfg;
    cfg.creepFlow = true;  // epsilon capacities must never break validity
    eng.beginRound(x, cfg);
    std::vector<int> targets;
    for (int t : inst.graph.terminals())
        if (t != inst.root) targets.push_back(t);
    int total = 0;
    for (int t : eng.orderByDeficit(targets)) {
        std::vector<SteinerCut> cuts;
        eng.separateTarget(t, 6, cuts);
        for (const SteinerCut& cut : cuts) {
            double act = 0.0;
            for (int var : cut.vars) act += x[var];
            EXPECT_LT(act, 1.0 - cfg.violationTol + 1e-9);
            EXPECT_FALSE(reachableAvoiding(inst, tail, head, cut.vars, t));
        }
        total += static_cast<int>(cuts.size());
    }
    EXPECT_GT(total, 0);
}

// --- epsilon agreement between the augmentation cap and certification --------

namespace {

// Chain root(T) - mid - term(T) with the same x value on both path arcs.
struct ChainPoint {
    SapInstance inst;
    std::vector<int> tail, head;
    std::vector<double> x;
};

ChainPoint chainWithUniformFlow(double value, double midTermValue = -1.0) {
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 1.0);
    g.setTerminal(0, true);
    g.setTerminal(2, true);
    ReductionStats none;
    ChainPoint cp{buildSapInstance(std::move(g), none), {}, {}, {}};
    varEndpoints(cp.inst, cp.tail, cp.head);
    cp.x.assign(cp.tail.size(), 0.0);
    for (std::size_t var = 0; var < cp.tail.size(); ++var) {
        if (cp.tail[var] == 0 && cp.head[var] == 1) cp.x[var] = value;
        if (cp.tail[var] == 1 && cp.head[var] == 2)
            cp.x[var] = midTermValue < 0.0 ? value : midTermValue;
    }
    return cp;
}

}  // namespace

TEST(CutSepEngine, HairlineViolationInsideOldDeadBandIsEmitted) {
    // Max flow = 1 - tol - 5e-8: genuinely violated (by far more than the
    // 1e-9 certification epsilon), but inside the 1e-7 band where the old
    // augmentation cap broke out *before* certification ever saw the cut.
    CutSepaConfig cfg;
    cfg.nestedCuts = false;
    cfg.backCuts = false;
    cfg.creepFlow = false;
    const double threshold = 1.0 - cfg.violationTol;
    ChainPoint cp = chainWithUniformFlow(threshold - 5e-8);

    CutSeparationEngine eng(cp.inst);
    eng.beginRound(cp.x, cfg);
    std::vector<SteinerCut> cuts;
    const int found = eng.separateTarget(2, 4, cuts);
    ASSERT_GE(found, 1);
    for (const SteinerCut& cut : cuts) {
        // Every emitted cut is certified violated and a valid Steiner cut.
        EXPECT_LT(cut.lpActivity, threshold);
        EXPECT_FALSE(
            reachableAvoiding(cp.inst, cp.tail, cp.head, cut.vars, 2));
    }
}

TEST(CutSepEngine, AtThresholdFlowYieldsNoCut) {
    // Max flow exactly at 1 - tol: not violated, so with the unified epsilon
    // the augmentation cap must break out without extracting anything.
    CutSepaConfig cfg;
    cfg.nestedCuts = false;
    cfg.backCuts = false;
    ChainPoint cp = chainWithUniformFlow(1.0 - cfg.violationTol);

    CutSeparationEngine eng(cp.inst);
    eng.beginRound(cp.x, cfg);
    std::vector<SteinerCut> cuts;
    EXPECT_EQ(eng.separateTarget(2, 4, cuts), 0);
    EXPECT_TRUE(cuts.empty());
}

TEST(CutSepEngine, CreepFlowStillEmitsZeroActivityBoundaryCut) {
    // x(root->mid) nearly saturated, x(mid->term) = 0: the max flow consists
    // purely of creep capacity, and the min cut {mid->term} has activity 0.
    // The creep epsilon is sized so it can never push the flow across the
    // (shared) certification threshold, so the cut must be found and pass
    // certification against the raw x.
    CutSepaConfig cfg;
    cfg.nestedCuts = false;
    cfg.backCuts = false;
    cfg.creepFlow = true;
    ChainPoint cp = chainWithUniformFlow(0.9999, 0.0);

    CutSeparationEngine eng(cp.inst);
    eng.beginRound(cp.x, cfg);
    std::vector<SteinerCut> cuts;
    const int found = eng.separateTarget(2, 4, cuts);
    ASSERT_GE(found, 1);
    EXPECT_NEAR(cuts[0].lpActivity, 0.0, 1e-12);
    EXPECT_FALSE(
        reachableAvoiding(cp.inst, cp.tail, cp.head, cuts[0].vars, 2));
}

// --- nested/back cuts strengthen the root bound ------------------------------

TEST(CutSepEngine, NestedAndBackCutsDoNotWeakenRootBound) {
    bool strictlyStronger = false;
    for (std::uint64_t seed : {1u, 2u, 3u, 5u}) {
        Graph g = genHypercube(5, true, seed);

        cip::ParamSet off;
        off.setReal("limits/nodes", 1);
        off.setBool("stp/sepa/nestedcuts", false);
        off.setBool("stp/sepa/backcuts", false);

        cip::ParamSet on;
        on.setReal("limits/nodes", 1);
        on.setBool("stp/sepa/nestedcuts", true);
        on.setBool("stp/sepa/backcuts", true);

        SteinerSolver a(g);
        a.presolve();
        SteinerResult roff = a.solve(off);

        SteinerSolver b(g);
        b.presolve();
        SteinerResult ron = b.solve(on);

        EXPECT_GE(ron.dualBound, roff.dualBound - 1e-6) << "seed " << seed;
        if (ron.dualBound > roff.dualBound + 1e-6) strictlyStronger = true;
    }
    EXPECT_TRUE(strictlyStronger)
        << "nested+back cuts never improved any root bound";
}

// --- parameter combinations still reach the optimum --------------------------

TEST(CutSepEngine, ParamCombinationsReachSameOptimum) {
    Graph g = genHypercube(4, true, 2);
    SteinerSolver ref(g);
    ref.presolve();
    SteinerResult base = ref.solve({});
    ASSERT_EQ(base.status, cip::Status::Optimal);

    struct Combo {
        bool nested, back, creep, warm;
    };
    const Combo combos[] = {
        {false, false, false, false},
        {true, false, false, true},
        {false, true, true, true},
        {true, true, true, false},
    };
    for (const Combo& c : combos) {
        cip::ParamSet p;
        p.setBool("stp/sepa/nestedcuts", c.nested);
        p.setBool("stp/sepa/backcuts", c.back);
        p.setBool("stp/sepa/creepflow", c.creep);
        p.setBool("stp/sepa/warmstart", c.warm);
        p.setInt("stp/sepa/maxcuts", 8);
        SteinerSolver s(g);
        s.presolve();
        SteinerResult r = s.solve(p);
        EXPECT_EQ(r.status, cip::Status::Optimal);
        EXPECT_NEAR(r.cost, base.cost, 1e-6)
            << "nested=" << c.nested << " back=" << c.back
            << " creep=" << c.creep << " warm=" << c.warm;
    }
}
