#include <algorithm>
// Protocol-level tests of the Supervisor-Worker machinery with a scripted
// mock base solver — exercises the LoadCoordinator/ParaSolver message flow
// (Algorithms 1 & 2) independently of the CIP stack: collect-mode node
// transfer, incumbent broadcast, racing winner selection, and termination.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ug/checkpoint.hpp"
#include "ug/simengine.hpp"

namespace {

/// Scripted base solver with *conserved* work: a synthetic tree of
/// `treeNodes` nodes in total. Extracting an open node hands away that node
/// plus half of the not-yet-opened budget, encoded in the subproblem
/// description, so the sum of nodes processed across all solvers equals the
/// original tree size exactly.
class MockSolver : public ug::BaseSolver {
public:
    MockSolver(int treeNodes, std::int64_t stepCost, int solutionAt,
               double solutionObj)
        : treeNodes_(treeNodes),
          stepCost_(stepCost),
          solutionAt_(solutionAt),
          solutionObj_(solutionObj) {}

    void load(const cip::SubproblemDesc& desc,
              const cip::Solution* incumbent) override {
        rootTree_ = desc.boundChanges.empty();
        remaining_ = rootTree_ ? treeNodes_
                               : static_cast<int>(desc.boundChanges.size());
        open_ = 1;
        processed_ = 0;
        if (incumbent && incumbent->valid()) sawIncumbent_ = true;
    }

    std::int64_t step() override {
        ++processed_;
        --open_;
        --remaining_;
        const int spawn =
            std::min(2, std::max(0, remaining_ - open_));
        open_ += spawn;
        if (rootTree_ && processed_ == solutionAt_) {
            best_.x = {0.0};
            best_.obj = solutionObj_;
            if (cb_) cb_(best_);
        } else if (!rootTree_ && processed_ == 1) {
            best_.x = {1.0};
            best_.obj = solutionObj_ + 10.0;  // transferred subtrees: worse
            if (cb_) cb_(best_);
        }
        return stepCost_;
    }

    bool finished() const override { return open_ == 0; }
    ug::BaseStatus status() const override {
        return finished() ? ug::BaseStatus::Optimal
                          : ug::BaseStatus::Working;
    }
    double dualBound() const override { return -1000.0 + processed_; }
    int numOpenNodes() const override { return open_; }
    std::int64_t nodesProcessed() const override { return processed_; }
    const cip::Solution& incumbent() const override { return best_; }
    void injectSolution(const cip::Solution& sol) override {
        if (!best_.valid() || sol.obj < best_.obj) best_ = sol;
        sawIncumbent_ = true;
    }
    ug::LpEffort lpEffort() const override {
        // Deterministic synthetic LP effort: 5 iterations and one
        // factorization per processed node, so aggregated totals follow from
        // the mock's work conservation.
        ug::LpEffort e;
        e.iterations = processed_ * 5;
        e.factorizations = processed_;
        e.basisWarmStarts = processed_;
        // Synthetic cut-pool counters: two duplicate rejections per node and
        // a constant pool size, so the folded totals are exact.
        e.poolDupRejected = processed_ * 2;
        e.poolDominatedRejected = processed_;
        e.poolSize = 7;
        return e;
    }
    std::optional<cip::SubproblemDesc> extractOpenNode() override {
        if (open_ < 2) return std::nullopt;
        const int budget = remaining_ - open_;  // not-yet-opened nodes
        const int take = 1 + std::max(0, budget / 2);
        --open_;
        remaining_ -= take;
        ++extracted_;
        cip::SubproblemDesc d;
        for (int i = 0; i < take; ++i) d.boundChanges.push_back({i, 0, 1});
        d.lowerBound = -900.0;
        return d;
    }
    void setIncumbentCallback(
        std::function<void(const cip::Solution&)> cb) override {
        cb_ = std::move(cb);
    }

    bool sawIncumbent_ = false;
    int extracted_ = 0;

private:
    int treeNodes_;
    std::int64_t stepCost_;
    int solutionAt_;
    double solutionObj_;
    bool rootTree_ = true;
    int remaining_ = 0;
    int open_ = 0;
    std::int64_t processed_ = 0;
    cip::Solution best_;
    std::function<void(const cip::Solution&)> cb_;
};

class MockFactory : public ug::BaseSolverFactory {
public:
    MockFactory(int treeNodes, std::int64_t stepCost)
        : treeNodes_(treeNodes), stepCost_(stepCost) {}
    std::unique_ptr<ug::BaseSolver> create(const cip::ParamSet& p) override {
        ++created;
        // Racing settings can scale the per-step cost (diverse "speeds").
        const std::int64_t cost =
            stepCost_ * (1 + p.getInt("mock/slowdown", 0));
        return std::make_unique<MockSolver>(treeNodes_, cost, 1, -50.0);
    }
    int created = 0;

private:
    int treeNodes_;
    std::int64_t stepCost_;
};

}  // namespace

TEST(UgProtocol, CollectModeFeedsIdleSolvers) {
    MockFactory factory(120, 10);
    ug::UgConfig cfg;
    cfg.numSolvers = 6;
    ug::SimEngine engine(factory, cfg);
    ug::UgResult res = engine.run({});
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    // Normal ramp-up must have transferred nodes to every solver.
    EXPECT_GE(res.stats.transferredNodes, 6);
    EXPECT_GT(res.stats.collectedNodes, 0);
    EXPECT_EQ(res.stats.maxActiveSolvers, 6);
    EXPECT_GE(res.stats.rampUpTime, 0.0);
    // One base solver instance per assignment.
    EXPECT_EQ(factory.created, res.stats.transferredNodes);
}

TEST(UgProtocol, SolutionIsBroadcastAndAdopted) {
    MockFactory factory(60, 10);
    ug::UgConfig cfg;
    cfg.numSolvers = 3;
    ug::SimEngine engine(factory, cfg);
    ug::UgResult res = engine.run({});
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    ASSERT_TRUE(res.best.valid());
    // The best solution is the root-tree solver's.
    EXPECT_NEAR(res.best.obj, -50.0, 1e-12);
    EXPECT_GE(res.stats.solutionsFound, 1);
}

TEST(UgProtocol, BusyAccountingMatchesWorkDone) {
    MockFactory factory(80, 25);
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.costUnitSeconds = 1e-3;
    ug::SimEngine engine(factory, cfg);
    ug::UgResult res = engine.run({});
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    // Work conservation: exactly the original tree is processed, once.
    EXPECT_EQ(res.stats.totalNodesProcessed, 80);
    // Total busy units = steps * 25 (every step costs 25 in the mock).
    EXPECT_EQ(res.stats.busyUnits, res.stats.totalNodesProcessed * 25);
    // Makespan at least the critical path: root solver's share of the work.
    EXPECT_GE(res.elapsed,
              res.stats.busyUnits * cfg.costUnitSeconds / cfg.numSolvers -
                  1e-9);
}

TEST(UgProtocol, LpEffortIsAggregatedIntoRunStats) {
    MockFactory factory(120, 10);
    ug::UgConfig cfg;
    cfg.numSolvers = 6;
    ug::SimEngine engine(factory, cfg);
    ug::UgResult res = engine.run({});
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    // Each solver reports its LpEffort with the Terminated message and the
    // LoadCoordinator folds it into the run statistics; with the mock's
    // conserved tree the totals are exact multiples of the nodes processed.
    EXPECT_EQ(res.stats.lpIterations, res.stats.totalNodesProcessed * 5);
    EXPECT_EQ(res.stats.lpFactorizations, res.stats.totalNodesProcessed);
    EXPECT_EQ(res.stats.basisWarmStarts, res.stats.totalNodesProcessed);
    EXPECT_EQ(res.stats.strongBranchProbes, 0);
    // Cut-pool counters ride the same LpEffort reports.
    EXPECT_EQ(res.stats.cutPoolDupRejected,
              res.stats.totalNodesProcessed * 2);
    EXPECT_EQ(res.stats.cutPoolDominatedRejected,
              res.stats.totalNodesProcessed);
    EXPECT_EQ(res.stats.maxCutPoolSize, 7);
}

TEST(UgProtocol, RacingPicksWinnerAndRecordsSetting) {
    MockFactory factory(200, 10);
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    cfg.racingOpenNodesLimit = 8;
    cfg.racingTimeLimit = 100.0;  // open-node criterion decides
    // Diverse settings: solver 1 fast, others slower.
    for (int i = 0; i < 4; ++i) {
        cip::ParamSet p;
        p.setInt("mock/slowdown", i);
        cfg.racingSettings.push_back(std::move(p));
    }
    ug::SimEngine engine(factory, cfg);
    ug::UgResult res = engine.run({});
    ASSERT_EQ(res.status, ug::UgStatus::Optimal);
    // A winner was chosen (instance too big to finish during racing) and it
    // is recorded; with the open-node criterion the fastest setting (0) has
    // the most progress when the threshold trips.
    EXPECT_GE(res.stats.racingWinnerSetting, 0);
    EXPECT_LT(res.stats.racingWinnerSetting, 4);
}

TEST(UgProtocol, DeterministicTraceWithMockSolver) {
    for (int rep = 0; rep < 2; ++rep) {
        MockFactory f1(150, 7), f2(150, 7);
        ug::UgConfig cfg;
        cfg.numSolvers = 5;
        ug::SimEngine e1(f1, cfg), e2(f2, cfg);
        ug::UgResult a = e1.run({});
        ug::UgResult b = e2.run({});
        EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
        EXPECT_EQ(a.stats.transferredNodes, b.stats.transferredNodes);
        EXPECT_EQ(a.stats.collectedNodes, b.stats.collectedNodes);
        EXPECT_EQ(a.stats.totalNodesProcessed, b.stats.totalNodesProcessed);
    }
}

TEST(UgProtocol, ForceStopDuringRacingCheckpointsOneRootAndRestarts) {
    // Deterministic forceStop while racing is still running: the run must be
    // cut off cleanly (racers interrupted, statistics complete) and the
    // checkpoint must contain exactly ONE copy of the root — not one per
    // racer, which is what the naive per-rank `assigned` walk used to write.
    const std::string path = "/tmp/ugtest_racing_checkpoint.txt";
    ug::removeCheckpointFiles(path);

    const std::int64_t stepCost = 10;
    MockFactory factory(400, stepCost);
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.rampUp = ug::RampUp::Racing;
    // Identical settings are fine here (the mock treats them alike); without
    // an explicit table the engine would skip racing altogether.
    cfg.racingSettings.assign(4, cip::ParamSet{});
    cfg.racingTimeLimit = 100.0;       // neither racing criterion trips...
    cfg.racingOpenNodesLimit = 100000;
    cfg.checkpointFile = path;
    cfg.timeLimit = 0.05;  // ...before the virtual time limit forces a stop
    ug::SimEngine engine(factory, cfg);
    ug::UgResult res = engine.run({});
    ASSERT_EQ(res.status, ug::UgStatus::TimeLimit);
    // Racers were interrupted with their statistics folded in: the mock's
    // work conservation means every processed node cost exactly stepCost.
    EXPECT_GT(res.stats.totalNodesProcessed, 0);
    EXPECT_EQ(res.stats.busyUnits, res.stats.totalNodesProcessed * stepCost);

    // Mid-racing checkpoint: every racer holds the same root, so dedupe to
    // one primitive node.
    auto cp = ug::loadCheckpoint(path);
    ASSERT_TRUE(cp.has_value());
    ASSERT_EQ(cp->nodes.size(), 1u);
    EXPECT_TRUE(cp->nodes[0].isRoot());
    // The incumbent found during racing made it into the checkpoint.
    ASSERT_TRUE(cp->incumbent.valid());
    EXPECT_NEAR(cp->incumbent.obj, -50.0, 1e-12);

    // Restarting from that checkpoint resumes from exactly one open node and
    // runs the instance to completion.
    MockFactory factory2(400, stepCost);
    ug::UgConfig cfg2;
    cfg2.numSolvers = 4;
    cfg2.checkpointFile = path;
    cfg2.restartFromCheckpoint = true;
    ug::SimEngine engine2(factory2, cfg2);
    ug::UgResult second = engine2.run({});
    ASSERT_EQ(second.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(second.best.obj, -50.0, 1e-12);
    EXPECT_EQ(second.stats.initialOpenNodes, 1);
    ug::removeCheckpointFiles(path);
}

TEST(UgProtocol, MoreSolversNeverIncreaseMakespanOnWideTree) {
    // A wide synthetic tree parallelizes well; the simulated makespan must
    // be (weakly) monotone decreasing in solver count.
    double prev = 1e100;
    for (int n : {1, 2, 4, 8}) {
        MockFactory factory(300, 20);
        ug::UgConfig cfg;
        cfg.numSolvers = n;
        ug::SimEngine engine(factory, cfg);
        ug::UgResult res = engine.run({});
        ASSERT_EQ(res.status, ug::UgStatus::Optimal) << n;
        EXPECT_LE(res.elapsed, prev * 1.10) << n;  // 10% protocol tolerance
        prev = res.elapsed;
    }
}

// --- collect-mode ramp-down: heavy single-node suppliers ----------------------

#include "ug/loadcoordinator.hpp"
#include "ug/parasolver.hpp"

namespace {

/// ParaComm that just records every send (src is stamped like the real
/// comms do), for driving LoadCoordinator/ParaSolver handlers directly.
class RecordingComm : public ug::ParaComm {
public:
    explicit RecordingComm(int size) : size_(size) {}
    int size() const override { return size_; }
    void send(int src, int dest, ug::Message msg) override {
        msg.src = src;
        sent.emplace_back(dest, std::move(msg));
    }
    double now(int) const override { return 0.0; }

    int count(ug::Tag tag, int dest) const {
        int n = 0;
        for (const auto& [d, m] : sent)
            if (d == dest && m.tag == tag) ++n;
        return n;
    }
    const ug::Message* last(ug::Tag tag, int dest) const {
        const ug::Message* found = nullptr;
        for (const auto& [d, m] : sent)
            if (d == dest && m.tag == tag) found = &m;
        return found;
    }

    std::vector<std::pair<int, ug::Message>> sent;

private:
    int size_;
};

/// Base solver stuck on exactly one open node forever: the node never
/// finishes on its own, but extraction may drain it to zero (mimicking the
/// cip solver, where finished() only trips on the step after the tree
/// empties).
class LastNodeMock : public ug::BaseSolver {
public:
    void load(const cip::SubproblemDesc&, const cip::Solution*) override {
        open_ = 1;
        finished_ = false;
    }
    std::int64_t step() override {
        if (open_ == 0) {
            finished_ = true;
            return 1;
        }
        ++processed_;
        return 1;
    }
    bool finished() const override { return finished_; }
    ug::BaseStatus status() const override {
        return finished_ ? ug::BaseStatus::Optimal : ug::BaseStatus::Working;
    }
    double dualBound() const override { return -1.0; }
    int numOpenNodes() const override { return open_; }
    std::int64_t nodesProcessed() const override { return processed_; }
    const cip::Solution& incumbent() const override { return best_; }
    void injectSolution(const cip::Solution& sol) override { best_ = sol; }
    ug::LpEffort lpEffort() const override { return {}; }
    std::optional<cip::SubproblemDesc> extractOpenNode() override {
        if (open_ < 1) return std::nullopt;
        --open_;
        cip::SubproblemDesc d;
        d.boundChanges.push_back({0, 0, 1});
        d.lowerBound = -1.0;
        return d;
    }
    void setIncumbentCallback(
        std::function<void(const cip::Solution&)> cb) override {
        cb_ = std::move(cb);
    }

private:
    int open_ = 0;
    bool finished_ = false;
    std::int64_t processed_ = 0;
    cip::Solution best_;
    std::function<void(const cip::Solution&)> cb_;
};

class LastNodeFactory : public ug::BaseSolverFactory {
public:
    std::unique_ptr<ug::BaseSolver> create(const cip::ParamSet&) override {
        return std::make_unique<LastNodeMock>();
    }
};

ug::Message statusReport(int src, std::int64_t openNodes,
                         std::int64_t nodesProcessed,
                         std::int64_t lpIterations) {
    ug::Message m;
    m.tag = ug::Tag::Status;
    m.src = src;
    m.dualBound = -10.0;
    m.openNodes = openNodes;
    m.nodesProcessed = nodesProcessed;
    m.lpEffort.iterations = lpIterations;
    return m;
}

}  // namespace

TEST(UgCollectMode, HeavySingleNodeSolverIsEngagedWithKeepZero) {
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    RecordingComm comm(cfg.numSolvers + 1);
    ug::LoadCoordinator lc(comm, cfg);
    lc.start({});  // root goes to rank 1; rank 2 stays idle

    // Rank 1 sits on ONE open node that has eaten 1000 simplex iterations
    // per processed node: effort-weighted frontier 1000 >= the 256 default
    // threshold. The pre-fix >= 2 gate never engaged such a solver, leaving
    // rank 2 idle for the rest of the run.
    lc.handleMessage(statusReport(1, 1, 4, 4000));

    ASSERT_EQ(comm.count(ug::Tag::StartCollecting, 1), 1);
    const ug::Message* sc = comm.last(ug::Tag::StartCollecting, 1);
    ASSERT_NE(sc, nullptr);
    EXPECT_EQ(sc->collectKeep, 0);  // may ship its last open node
}

TEST(UgCollectMode, CheapSingleNodeSolverIsLeftAlone) {
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    RecordingComm comm(cfg.numSolvers + 1);
    ug::LoadCoordinator lc(comm, cfg);
    lc.start({});

    // Same single open node, but trivial LP effort (weight 1 < 256):
    // shipping it would just move the work, not parallelize it.
    lc.handleMessage(statusReport(1, 1, 4, 4));
    EXPECT_EQ(comm.count(ug::Tag::StartCollecting, 1), 0);
}

TEST(UgCollectMode, MultiNodeSupplierStillKeepsOneNode) {
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    RecordingComm comm(cfg.numSolvers + 1);
    ug::LoadCoordinator lc(comm, cfg);
    lc.start({});

    lc.handleMessage(statusReport(1, 5, 4, 4000));
    ASSERT_EQ(comm.count(ug::Tag::StartCollecting, 1), 1);
    const ug::Message* sc = comm.last(ug::Tag::StartCollecting, 1);
    ASSERT_NE(sc, nullptr);
    EXPECT_EQ(sc->collectKeep, 1);  // ordinary supplier keeps one for itself
}

TEST(UgCollectMode, CollectKeepZeroShipsLastNodeThenTerminates) {
    ug::UgConfig cfg;
    cfg.numSolvers = 1;
    cfg.statusIntervalSteps = 1000000;  // suppress Status noise
    RecordingComm comm(2);
    LastNodeFactory factory;
    ug::ParaSolver ps(1, comm, factory, cfg);

    ug::Message sub;
    sub.tag = ug::Tag::Subproblem;
    ps.handleMessage(sub);

    // Default keep (1): the last open node must stay put.
    ug::Message sc;
    sc.tag = ug::Tag::StartCollecting;
    sc.collectKeep = 1;
    ps.handleMessage(sc);
    ps.work();
    EXPECT_EQ(comm.count(ug::Tag::NodeTransfer, 0), 0);

    // Ramp-down engagement: keep 0 ships the last node...
    sc.collectKeep = 0;
    ps.handleMessage(sc);
    ps.work();
    EXPECT_EQ(comm.count(ug::Tag::NodeTransfer, 0), 1);

    // ...and the next step finds the tree empty and reports Terminated with
    // completed=true (the shipped node carries the remaining coverage).
    ps.work();
    ASSERT_EQ(comm.count(ug::Tag::Terminated, 0), 1);
    const ug::Message* term = comm.last(ug::Tag::Terminated, 0);
    ASSERT_NE(term, nullptr);
    EXPECT_TRUE(term->completed);
    EXPECT_FALSE(ps.hasWork());
}
