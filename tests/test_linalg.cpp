#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/eigen.hpp"
#include "linalg/factor.hpp"
#include "linalg/matrix.hpp"

using linalg::Cholesky;
using linalg::Matrix;
using linalg::Vector;

namespace {

Matrix randomSymmetric(std::size_t n, std::mt19937& rng) {
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) {
            const double v = dist(rng);
            a(i, j) = v;
            a(j, i) = v;
        }
    return a;
}

Matrix randomSpd(std::size_t n, std::mt19937& rng, double shift = 0.5) {
    Matrix a = randomSymmetric(n, rng);
    Matrix spd = a * a.transposed();
    for (std::size_t i = 0; i < n; ++i) spd(i, i) += shift;
    return spd;
}

}  // namespace

TEST(Matrix, InitializerListAndAccess) {
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
    m(0, 0) = -1.0;
    EXPECT_DOUBLE_EQ(m(0, 0), -1.0);
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
    Matrix i = Matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Product) {
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5, 6}, {7, 8}};
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatVec) {
    Matrix a{{1, 2}, {3, 4}};
    Vector x{1.0, -1.0};
    Vector y = a * x;
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, TransposeAndSymmetry) {
    Matrix a{{1, 2}, {3, 4}};
    Matrix t = a.transposed();
    EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
    EXPECT_GT(a.symmetryError(), 0.0);
    a.symmetrize();
    EXPECT_DOUBLE_EQ(a.symmetryError(), 0.0);
    EXPECT_DOUBLE_EQ(a(0, 1), 2.5);
}

TEST(Matrix, QuadFormAndRankOne) {
    Matrix a = Matrix::identity(3);
    Vector v{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(linalg::quadForm(a, v), 14.0);
    linalg::rankOneUpdate(a, 2.0, v);
    EXPECT_DOUBLE_EQ(a(1, 2), 12.0);
    EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
}

TEST(Matrix, FrobeniusDot) {
    Matrix a{{1, 0}, {0, 2}};
    Matrix b{{3, 1}, {1, 4}};
    EXPECT_DOUBLE_EQ(linalg::frobeniusDot(a, b), 11.0);
}

TEST(VectorOps, DotNormAxpy) {
    Vector a{1, 2, 3};
    Vector b{4, 5, 6};
    EXPECT_DOUBLE_EQ(linalg::dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(linalg::norm2(Vector{3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(linalg::normInf(Vector{-7, 2}), 7.0);
    linalg::axpy(2.0, a, b);
    EXPECT_DOUBLE_EQ(b[2], 12.0);
}

TEST(Cholesky, SolvesSpdSystem) {
    Matrix a{{4, 2}, {2, 3}};
    auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    Vector x = chol->solve(Vector{8, 7});
    // 4x + 2y = 8, 2x + 3y = 7 -> x = 1.25, y = 1.5
    EXPECT_NEAR(x[0], 1.25, 1e-12);
    EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
    Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
    EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, LogDet) {
    Matrix a{{4, 0}, {0, 9}};
    auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    EXPECT_NEAR(chol->logDet(), std::log(36.0), 1e-12);
}

TEST(Lu, SolveAndInverse) {
    Matrix a{{0, 1}, {2, 0}};  // needs pivoting
    auto x = linalg::luSolve(a, Vector{3, 4});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 2.0, 1e-12);
    EXPECT_NEAR((*x)[1], 3.0, 1e-12);
    auto inv = linalg::luInverse(a);
    ASSERT_TRUE(inv.has_value());
    Matrix prod = (*inv) * a;
    EXPECT_NEAR((prod - Matrix::identity(2)).frobeniusNorm(), 0.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
    Matrix a{{1, 2}, {2, 4}};
    EXPECT_FALSE(linalg::luSolve(a, Vector{1, 1}).has_value());
    EXPECT_FALSE(linalg::luInverse(a).has_value());
}

TEST(Eigen, DiagonalMatrix) {
    Matrix a{{3, 0}, {0, -1}};
    auto sys = linalg::symmetricEigen(a);
    EXPECT_NEAR(sys.values[0], -1.0, 1e-12);
    EXPECT_NEAR(sys.values[1], 3.0, 1e-12);
}

TEST(Eigen, KnownEigenpair) {
    Matrix a{{2, 1}, {1, 2}};
    auto sys = linalg::symmetricEigen(a);
    EXPECT_NEAR(sys.values[0], 1.0, 1e-10);
    EXPECT_NEAR(sys.values[1], 3.0, 1e-10);
    // Residual check A v = lambda v.
    for (std::size_t k = 0; k < 2; ++k) {
        Vector v = sys.vector(k);
        Vector av = a * v;
        for (std::size_t i = 0; i < 2; ++i)
            EXPECT_NEAR(av[i], sys.values[k] * v[i], 1e-10);
    }
}

TEST(Eigen, SmallestEigenvalueOfPsdIsNonneg) {
    std::mt19937 rng(7);
    Matrix spd = randomSpd(6, rng, 0.1);
    EXPECT_GT(linalg::smallestEigenvalue(spd), 0.0);
    EXPECT_TRUE(linalg::isPositiveSemidefinite(spd));
}

// Property-style sweep: random symmetric matrices of several sizes must give
// orthonormal eigenvectors and tiny residuals.
class EigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigenProperty, ResidualAndOrthonormality) {
    const int n = GetParam();
    std::mt19937 rng(1234 + n);
    for (int rep = 0; rep < 5; ++rep) {
        Matrix a = randomSymmetric(n, rng);
        auto sys = linalg::symmetricEigen(a);
        // Residuals.
        for (int k = 0; k < n; ++k) {
            Vector v = sys.vector(k);
            Vector av = a * v;
            for (int i = 0; i < n; ++i)
                EXPECT_NEAR(av[i], sys.values[k] * v[i], 1e-8);
        }
        // Orthonormality of V.
        Matrix vtv = sys.vectors.transposed() * sys.vectors;
        EXPECT_NEAR((vtv - Matrix::identity(n)).frobeniusNorm(), 0.0, 1e-8);
        // Trace preservation.
        double trA = 0.0, sumLam = 0.0;
        for (int i = 0; i < n; ++i) trA += a(i, i);
        for (double l : sys.values) sumLam += l;
        EXPECT_NEAR(trA, sumLam, 1e-8);
        // Eigenvalues sorted ascending.
        for (int k = 1; k < n; ++k)
            EXPECT_LE(sys.values[k - 1], sys.values[k] + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// Property: Cholesky solve of random SPD systems reproduces the RHS.
class CholeskyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyProperty, SolveResidual) {
    const int n = GetParam();
    std::mt19937 rng(99 + n);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    for (int rep = 0; rep < 5; ++rep) {
        Matrix a = randomSpd(n, rng);
        Vector b(n);
        for (double& v : b) v = dist(rng);
        auto chol = Cholesky::factor(a);
        ASSERT_TRUE(chol.has_value());
        Vector x = chol->solve(b);
        Vector ax = a * x;
        for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values(1, 2, 4, 9, 16, 25));
