// The solver-lifetime dominance-filtered cut pool: randomized verdicts and
// eviction sets against a brute-force subset oracle, pool/LP binding
// consistency across aging and overflow pruning (the stale cutLpIndex_
// regression), warm-vs-cold separation equivalence with the pool enabled,
// and the LP-leanness property — dominance filtering keeps the mean LP rows
// per separation round at or below the append-only baseline without
// weakening the root dual bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "cip/solver.hpp"
#include "steiner/cutpool.hpp"
#include "steiner/instances.hpp"
#include "steiner/plugins.hpp"
#include "steiner/reductions.hpp"
#include "steiner/stpmodel.hpp"
#include "steiner/stpsolver.hpp"

using namespace steiner;

// --- pool unit behaviour ------------------------------------------------------

TEST(CutPool, DuplicateAndDominanceBasics) {
    CutPool pool(16);
    int id123 = -1;
    std::vector<int> evicted;

    ASSERT_EQ(pool.offer({1, 2, 3}, &id123, &evicted),
              CutPool::Verdict::Admitted);
    EXPECT_TRUE(evicted.empty());
    EXPECT_TRUE(pool.contains(id123));
    EXPECT_EQ(pool.size(), 1u);

    // Exact duplicate (unsorted, with repeats) is rejected.
    EXPECT_EQ(pool.offer({3, 1, 2, 2}), CutPool::Verdict::Duplicate);
    // Strict superset of a pooled cut is weaker: rejected.
    EXPECT_EQ(pool.offer({1, 2, 3, 4}), CutPool::Verdict::Dominated);
    EXPECT_EQ(pool.size(), 1u);

    // A strict subset is stronger: admitted, evicting the pooled superset.
    int id23 = -1;
    ASSERT_EQ(pool.offer({2, 3}, &id23, &evicted),
              CutPool::Verdict::Admitted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], id123);
    EXPECT_FALSE(pool.contains(id123));
    EXPECT_TRUE(pool.contains(id23));
    EXPECT_EQ(pool.size(), 1u);

    // Disjoint support coexists.
    EXPECT_EQ(pool.offer({7, 9}), CutPool::Verdict::Admitted);
    EXPECT_EQ(pool.size(), 2u);

    // One subset can evict several pooled supersets at once.
    ASSERT_EQ(pool.offer({2, 3, 7}), CutPool::Verdict::Dominated);
    int id3 = -1;
    ASSERT_EQ(pool.offer({3}, &id3, &evicted), CutPool::Verdict::Admitted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], id23);
    EXPECT_EQ(pool.size(), 2u);  // {3} and {7,9}

    const CutPoolStats& s = pool.stats();
    EXPECT_EQ(s.offered, 7);
    EXPECT_EQ(s.admitted, 4);
    EXPECT_EQ(s.dupRejected, 1);
    EXPECT_EQ(s.dominatedRejected, 2);
    EXPECT_EQ(s.dominatedEvicted, 2);
}

TEST(CutPool, MaxSupportLeavesWideCutsUntracked) {
    CutPool pool(16);
    pool.setMaxSupport(2);
    int id = -7;
    std::vector<int> evicted;
    EXPECT_EQ(pool.offer({1, 2, 3}, &id, &evicted),
              CutPool::Verdict::Untracked);
    EXPECT_EQ(id, -7);  // untouched on non-admission
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(pool.size(), 0u);
    // Untracked cuts leave no trace: the same support is untracked again and
    // a narrow subset of it is admitted normally.
    EXPECT_EQ(pool.offer({1, 2, 3}), CutPool::Verdict::Untracked);
    EXPECT_EQ(pool.offer({1, 2}), CutPool::Verdict::Admitted);
    EXPECT_EQ(pool.stats().untracked, 2);
    // Empty supports are never tracked either.
    EXPECT_EQ(pool.offer({}), CutPool::Verdict::Untracked);
}

TEST(CutPool, RemoveAllowsReadmission) {
    CutPool pool(8);
    int id = -1;
    ASSERT_EQ(pool.offer({0, 5}, &id), CutPool::Verdict::Admitted);
    EXPECT_EQ(pool.offer({0, 5}), CutPool::Verdict::Duplicate);
    pool.remove(id);
    EXPECT_FALSE(pool.contains(id));
    EXPECT_EQ(pool.size(), 0u);
    // After removal (= the solver aged the row out of its LP) the identical
    // cut is no longer a duplicate — the re-admission the lifecycle contract
    // with the conshdlr depends on.
    EXPECT_EQ(pool.offer({0, 5}), CutPool::Verdict::Admitted);
    EXPECT_EQ(pool.size(), 1u);
}

// --- randomized verdicts vs a brute-force dominance oracle --------------------

namespace {

/// Mirror of the pool's specified behaviour, implemented the obvious O(n^2)
/// way over explicit sets.
struct OraclePool {
    std::map<int, std::set<int>> alive;  // pool id -> support

    CutPool::Verdict offer(const std::set<int>& s,
                           std::vector<int>& evicted) const {
        evicted.clear();
        if (s.empty()) return CutPool::Verdict::Untracked;
        for (const auto& [id, p] : alive) {
            if (p == s) return CutPool::Verdict::Duplicate;
            if (std::includes(s.begin(), s.end(), p.begin(), p.end()))
                return CutPool::Verdict::Dominated;
        }
        for (const auto& [id, p] : alive)
            if (p.size() > s.size() &&
                std::includes(p.begin(), p.end(), s.begin(), s.end()))
                evicted.push_back(id);
        return CutPool::Verdict::Admitted;
    }
};

}  // namespace

TEST(CutPool, RandomizedOpsMatchBruteForceOracle) {
    std::mt19937 rng(20260807);
    const int numVars = 12;
    for (int trial = 0; trial < 40; ++trial) {
        CutPool pool(numVars);
        OraclePool oracle;
        std::uniform_int_distribution<int> supportSize(1, 5);
        std::uniform_int_distribution<int> var(0, numVars - 1);
        std::uniform_int_distribution<int> op(0, 9);

        for (int step = 0; step < 300; ++step) {
            if (op(rng) == 0 && !oracle.alive.empty()) {
                // Random removal (models the solver aging a cut out).
                auto it = oracle.alive.begin();
                std::advance(it, static_cast<long>(
                                     rng() % oracle.alive.size()));
                pool.remove(it->first);
                oracle.alive.erase(it);
            } else {
                // Random offer over a tiny var universe so duplicates,
                // subsets and supersets all occur frequently.
                std::vector<int> support(
                    static_cast<std::size_t>(supportSize(rng)));
                for (int& v : support) v = var(rng);
                const std::set<int> s(support.begin(), support.end());

                std::vector<int> expectEvicted;
                const CutPool::Verdict expect = oracle.offer(s, expectEvicted);

                int id = -1;
                std::vector<int> evicted;
                const CutPool::Verdict got = pool.offer(support, &id, &evicted);
                ASSERT_EQ(got, expect)
                    << "trial " << trial << " step " << step;
                if (expect == CutPool::Verdict::Admitted) {
                    std::sort(expectEvicted.begin(), expectEvicted.end());
                    std::sort(evicted.begin(), evicted.end());
                    ASSERT_EQ(evicted, expectEvicted)
                        << "trial " << trial << " step " << step;
                    for (int e : evicted) oracle.alive.erase(e);
                    ASSERT_GE(id, 0);
                    ASSERT_EQ(oracle.alive.count(id), 0u)
                        << "pool reused a live id";
                    oracle.alive[id] = s;
                    // The stored signature is the sorted unique support.
                    ASSERT_TRUE(pool.contains(id));
                    ASSERT_EQ(std::set<int>(pool.support(id).begin(),
                                            pool.support(id).end()),
                              s);
                }
            }
            ASSERT_EQ(pool.size(), oracle.alive.size())
                << "trial " << trial << " step " << step;
        }
        // The surviving pool is an antichain: no pooled support contains
        // another.
        for (const auto& [ida, a] : oracle.alive)
            for (const auto& [idb, b] : oracle.alive)
                if (ida != idb)
                    ASSERT_FALSE(std::includes(a.begin(), a.end(), b.begin(),
                                               b.end()))
                        << "pool kept a dominated cut";
    }
}

// --- pool/LP binding consistency across aging + overflow pruning --------------

namespace {

/// Event handler asserting the PoolCut invariant at every processed node:
/// with a built LP every pooled cut occupies a distinct valid LP row, with a
/// scheduled rebuild every lpIndex is -1. The pre-fix code pruned cutPool_
/// in manageCutPool without touching cutLpIndex_, so after two aging passes
/// between rebuilds the survivors' duals were read from the wrong LP rows.
class BindingChecker : public cip::EventHandler {
public:
    BindingChecker() : EventHandler("binding_check", 0) {}
    void onNodeProcessed(cip::Solver& solver) override {
        ++nodes;
        if (!solver.cutLpBindingConsistent()) ++violations;
    }
    int nodes = 0;
    int violations = 0;
};

}  // namespace

TEST(StpCutPool, PoolLpBindingSurvivesAgingAndOverflowPruning) {
    for (std::uint64_t seed : {1u, 3u, 7u}) {
        Graph g = genHypercube(4, true, seed);
        ReductionStats none;
        SapInstance inst = buildSapInstance(std::move(g), none);

        cip::Solver solver;
        solver.setModel(inst.model);
        installStpPlugins(solver, inst);
        // A pool this small overflows on nearly every separation round, so
        // manageCutPool prunes (and schedules rebuilds) constantly — the
        // exact traffic pattern that exposed the stale-index bug.
        solver.params().setInt("separating/maxpoolsize", 6);
        auto checker = std::make_unique<BindingChecker>();
        BindingChecker* bc = checker.get();
        solver.addEventHandler(std::move(checker));

        const cip::Status st = solver.solve();
        EXPECT_EQ(st, cip::Status::Optimal) << "seed " << seed;
        EXPECT_GT(bc->nodes, 0) << "seed " << seed;
        EXPECT_EQ(bc->violations, 0) << "seed " << seed;
        // The tiny pool must actually have forced retirements, or this test
        // proved nothing.
        EXPECT_GT(solver.stats().cutsRetired, 0) << "seed " << seed;
    }
}

TEST(StpCutPool, TinyPoolPruningDoesNotChangeTheOptimum) {
    // Prune-crazy pool vs default pool: aging cuts out of the LP (and
    // re-admitting them through the dominance pool when they re-violate)
    // must not change the optimum the B&B converges to.
    Graph g = genHypercube(4, true, 2);

    SteinerSolver ref(g);
    ref.presolve();
    SteinerResult base = ref.solve({});
    ASSERT_EQ(base.status, cip::Status::Optimal);

    ReductionStats none;
    Graph g2 = genHypercube(4, true, 2);
    SapInstance inst = buildSapInstance(std::move(g2), none);
    cip::Solver solver;
    solver.setModel(inst.model);
    installStpPlugins(solver, inst);
    solver.params().setInt("separating/maxpoolsize", 4);
    ASSERT_EQ(solver.solve(), cip::Status::Optimal);
    // Reductions preserve the optimum, so the raw model's objective plus its
    // fixed cost must match the reference result exactly.
    EXPECT_NEAR(solver.incumbent().obj + inst.fixedCost, base.cost, 1e-6);
}

// --- warm-vs-cold separation equivalence with the pool enabled ----------------

TEST(StpCutPool, WarmAndColdSeparationAgreeWithPoolOn) {
    for (std::uint64_t seed : {2u, 4u, 8u}) {
        Graph g = genHypercube(4, true, seed);

        cip::ParamSet warm;
        warm.setBool("stp/sepa/pooldominance", true);
        warm.setBool("stp/sepa/warmstart", true);

        cip::ParamSet cold;
        cold.setBool("stp/sepa/pooldominance", true);
        cold.setBool("stp/sepa/warmstart", false);

        SteinerSolver a(g);
        a.presolve();
        SteinerResult ra = a.solve(warm);

        SteinerSolver b(g);
        b.presolve();
        SteinerResult rb = b.solve(cold);

        ASSERT_EQ(ra.status, cip::Status::Optimal) << "seed " << seed;
        ASSERT_EQ(rb.status, cip::Status::Optimal) << "seed " << seed;
        EXPECT_NEAR(ra.cost, rb.cost, 1e-6) << "seed " << seed;
        EXPECT_NEAR(ra.dualBound, rb.dualBound, 1e-6) << "seed " << seed;
    }
}

// --- LP leanness: dominance filtering vs the append-only baseline -------------

namespace {

struct RootStats {
    double meanRows = 0.0;
    double dualBound = -kInfCost;
    cip::Stats stats;
};

/// Root-node-only solve on the raw SAP model (no reductions, so the LP and
/// its separation rounds are non-trivial) with the pool on or off.
RootStats rootSeparationRun(const Graph& g, bool dominance) {
    ReductionStats none;
    Graph copy = g;
    SapInstance inst = buildSapInstance(std::move(copy), none);
    cip::Solver solver;
    solver.setModel(inst.model);
    solver.params().setBool("stp/sepa/pooldominance", dominance);
    solver.params().setReal("limits/nodes", 1);
    // Let root separation run to convergence in both configurations: a
    // mid-flight round or cut budget would compare two arbitrary prefixes of
    // different separation trajectories instead of the settled root bounds.
    solver.params().setInt("separating/maxroundsroot", 200);
    solver.params().setInt("stp/sepa/maxcuts", 64);
    // Disable the tailing-off stall exit: it can stop the two trajectories
    // at slightly different near-fixpoint objectives, which is exactly the
    // noise this comparison must not measure.
    solver.params().setReal("separating/tailoffeps", -1.0);
    // Near-exact separation: with the default 0.05 violation tolerance each
    // trajectory parks at a different point inside the tolerance band, so
    // the bounds are only band-equal. A tiny tolerance makes both runs
    // converge to the unique separation-closure bound of the root LP.
    solver.params().setReal("stp/sepa/violationtol", 1e-6);
    // The incremental reduction engine can solve easy instances outright at
    // the root (heuristic incumbent + bound-based fixing) before a single
    // separation round runs; this test measures separation trajectories, so
    // pin the legacy propagation behavior.
    solver.params().setBool("stp/redprop/incremental", false);
    installStpPlugins(solver, inst);
    solver.solve();
    RootStats rs;
    rs.stats = solver.stats();
    rs.dualBound = solver.dualBound();
    if (rs.stats.sepaRounds > 0)
        rs.meanRows = static_cast<double>(rs.stats.sepaLpRowsSum) /
                      static_cast<double>(rs.stats.sepaRounds);
    return rs;
}

}  // namespace

TEST(StpCutPool, DominanceKeepsLpRowsPerRoundAtOrBelowAppendOnly) {
    double sumOn = 0.0, sumOff = 0.0;
    std::int64_t filtered = 0;
    std::vector<Graph> instances;
    for (std::uint64_t seed : {1u, 2u, 3u})
        instances.push_back(genHypercube(5, true, seed));
    for (std::uint64_t seed : {11u, 12u})
        instances.push_back(genGrid(9, 2, 5, seed));  // chain-like ladders

    for (std::size_t i = 0; i < instances.size(); ++i) {
        const RootStats off = rootSeparationRun(instances[i], false);
        const RootStats on = rootSeparationRun(instances[i], true);
        ASSERT_GT(off.stats.sepaRounds, 0) << "instance " << i;
        ASSERT_GT(on.stats.sepaRounds, 0) << "instance " << i;
        // Never leaner off than on, and the root dual bound never weakens.
        EXPECT_LE(on.meanRows, off.meanRows + 1e-9) << "instance " << i;
        EXPECT_GE(on.dualBound, off.dualBound - 1e-9) << "instance " << i;
        sumOn += on.meanRows;
        sumOff += off.meanRows;
        filtered += on.stats.cutDupRejected + on.stats.cutDominatedRejected +
                    on.stats.cutDominatedEvicted;
        // The baseline run must not have been filtering anything.
        EXPECT_EQ(off.stats.cutDupRejected, 0) << "instance " << i;
        EXPECT_EQ(off.stats.cutDominatedRejected, 0) << "instance " << i;
    }
    // Across the seed set the dominance pool is strictly leaner, and it got
    // there by actually rejecting/evicting cuts.
    EXPECT_LT(sumOn, sumOff);
    EXPECT_GT(filtered, 0);
}

TEST(StpCutPool, PoolCountersReachSolverStats) {
    // End-to-end: the conshdlr's CutPool deltas land in cip::Stats, where
    // the UG layer's LpEffort report picks them up.
    Graph g = genHypercube(4, true, 1);
    ReductionStats none;
    SapInstance inst = buildSapInstance(std::move(g), none);
    cip::Solver solver;
    solver.setModel(inst.model);
    installStpPlugins(solver, inst);
    ASSERT_EQ(solver.solve(), cip::Status::Optimal);
    const cip::Stats& s = solver.stats();
    EXPECT_GT(s.sepaRounds, 0);
    EXPECT_GT(s.sepaLpRowsSum, 0);
    // Duplicate re-finds across rounds are the pool's bread and butter on a
    // hypercube; at least some filtering must have happened.
    EXPECT_GT(s.cutDupRejected + s.cutDominatedRejected +
                  s.cutDominatedEvicted,
              0);
    EXPECT_GE(s.cutPoolSize, 0);
}
