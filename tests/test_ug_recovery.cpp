// Crash-consistency and restart tests of the checkpoint subsystem: the
// versioned section-checksummed binary format, atomic A/B slot rotation,
// torn-write fallback to the previous good generation, the widened payload
// (global cut pool, incumbent provenance, cumulative statistics), and full
// kill -> restart -> kill -> restart sequences under active fault plans.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "ug/checkpoint.hpp"
#include "ug/loadcoordinator.hpp"
#include "ug/paracomm.hpp"
#include "ugcip/ugcip.hpp"

using cip::kInf;
using cip::Model;
using cip::Row;

namespace {

Model hardKnapsack(int n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> w(10, 30);
    Model m;
    std::vector<std::pair<int, double>> coefs;
    double total = 0;
    for (int j = 0; j < n; ++j) {
        const double weight = w(rng);
        m.addVar(-(weight + (j % 3)), 0.0, 1.0, true);
        coefs.emplace_back(j, weight);
        total += weight;
    }
    m.addLinear(Row(std::move(coefs), -kInf, std::floor(total / 2)));
    return m;
}

double sequentialOptimum(const Model& m) {
    cip::Solver s;
    Model copy = m;
    s.setModel(std::move(copy));
    EXPECT_EQ(s.solve(), cip::Status::Optimal);
    return s.incumbent().obj;
}

std::vector<unsigned char> readAll(const std::string& path) {
    std::vector<unsigned char> bytes;
    if (FILE* f = std::fopen(path.c_str(), "rb")) {
        unsigned char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            bytes.insert(bytes.end(), buf, buf + n);
        std::fclose(f);
    }
    return bytes;
}

void writeAll(const std::string& path, const unsigned char* data,
              std::size_t n) {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (n > 0) {
        ASSERT_EQ(std::fwrite(data, 1, n, f), n);
    }
    std::fclose(f);
}

bool fileExists(const std::string& path) {
    if (FILE* f = std::fopen(path.c_str(), "rb")) {
        std::fclose(f);
        return true;
    }
    return false;
}

/// A checkpoint exercising every section with seed-dependent content.
ug::Checkpoint randomCheckpoint(std::mt19937& rng) {
    std::uniform_int_distribution<int> small(0, 4);
    std::uniform_real_distribution<double> val(-100.0, 100.0);
    ug::Checkpoint cp;
    const int nNodes = small(rng);
    for (int i = 0; i < nNodes; ++i) {
        cip::SubproblemDesc d;
        d.lowerBound = val(rng);
        d.retryLevel = small(rng);
        const int nb = small(rng);
        for (int b = 0; b < nb; ++b)
            d.boundChanges.push_back({small(rng), 0.0, 1.0});
        if (small(rng) == 0)
            d.customBranches.push_back({"stp", {small(rng), -1, 7}});
        cp.nodes.push_back(std::move(d));
    }
    if (small(rng) != 0) {
        cp.incumbent.obj = val(rng);
        const int nx = 1 + small(rng);
        for (int i = 0; i < nx; ++i) cp.incumbent.x.push_back(val(rng));
        cp.incumbentSource = small(rng);
        cp.incumbentSetting = small(rng) - 1;
    }
    cp.dualBound = val(rng);
    const int nc = small(rng);
    for (int c = 0; c < nc; ++c) {
        std::vector<int> vars;
        int v = small(rng);
        const int k = 1 + small(rng);
        for (int i = 0; i < k; ++i) {
            vars.push_back(v);
            v += 1 + small(rng);
        }
        EXPECT_TRUE(cp.cuts.append(vars, 1 + small(rng) % 2));
    }
    cp.hasStats = true;
    cp.stats.transferredNodes = small(rng) * 7;
    cp.stats.totalNodesProcessed = small(rng) * 31;
    cp.stats.lpIterations = small(rng) * 1001;
    cp.stats.shareCutsPooled = small(rng) * 13;
    cp.stats.requeuedNodes = small(rng);
    cp.stats.stallInterrupts = small(rng);
    cp.stats.checkpointSaves = 1 + small(rng);
    cp.stats.idleRatio = 0.25;
    cp.racingDone = small(rng) % 2 == 0;
    return cp;
}

void expectEqual(const ug::Checkpoint& a, const ug::Checkpoint& b) {
    EXPECT_DOUBLE_EQ(a.dualBound, b.dualBound);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t i = 0; i < a.nodes.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.nodes[i].lowerBound, b.nodes[i].lowerBound);
        EXPECT_EQ(a.nodes[i].retryLevel, b.nodes[i].retryLevel);
        ASSERT_EQ(a.nodes[i].boundChanges.size(),
                  b.nodes[i].boundChanges.size());
        for (std::size_t j = 0; j < a.nodes[i].boundChanges.size(); ++j) {
            EXPECT_EQ(a.nodes[i].boundChanges[j].var,
                      b.nodes[i].boundChanges[j].var);
            EXPECT_DOUBLE_EQ(a.nodes[i].boundChanges[j].lb,
                             b.nodes[i].boundChanges[j].lb);
            EXPECT_DOUBLE_EQ(a.nodes[i].boundChanges[j].ub,
                             b.nodes[i].boundChanges[j].ub);
        }
        ASSERT_EQ(a.nodes[i].customBranches.size(),
                  b.nodes[i].customBranches.size());
        for (std::size_t j = 0; j < a.nodes[i].customBranches.size(); ++j) {
            EXPECT_EQ(a.nodes[i].customBranches[j].plugin,
                      b.nodes[i].customBranches[j].plugin);
            EXPECT_EQ(a.nodes[i].customBranches[j].data,
                      b.nodes[i].customBranches[j].data);
        }
    }
    EXPECT_EQ(a.incumbent.valid(), b.incumbent.valid());
    if (a.incumbent.valid()) {
        EXPECT_DOUBLE_EQ(a.incumbent.obj, b.incumbent.obj);
        EXPECT_EQ(a.incumbent.x, b.incumbent.x);
        EXPECT_EQ(a.incumbentSource, b.incumbentSource);
        EXPECT_EQ(a.incumbentSetting, b.incumbentSetting);
    }
    EXPECT_EQ(a.cuts.count(), b.cuts.count());
    EXPECT_EQ(a.cuts.wire(), b.cuts.wire());
    ASSERT_EQ(a.hasStats, b.hasStats);
    if (a.hasStats) {
        EXPECT_EQ(a.stats.transferredNodes, b.stats.transferredNodes);
        EXPECT_EQ(a.stats.totalNodesProcessed, b.stats.totalNodesProcessed);
        EXPECT_EQ(a.stats.lpIterations, b.stats.lpIterations);
        EXPECT_EQ(a.stats.shareCutsPooled, b.stats.shareCutsPooled);
        EXPECT_EQ(a.stats.requeuedNodes, b.stats.requeuedNodes);
        EXPECT_EQ(a.stats.stallInterrupts, b.stats.stallInterrupts);
        EXPECT_EQ(a.stats.checkpointSaves, b.stats.checkpointSaves);
        EXPECT_DOUBLE_EQ(a.stats.idleRatio, b.stats.idleRatio);
    }
    EXPECT_EQ(a.racingDone, b.racingDone);
}

}  // namespace

TEST(CheckpointDurability, RandomizedRoundTripPreservesEverySection) {
    const std::string path = "/tmp/ugtest_cp_roundtrip";
    for (unsigned seed = 1; seed <= 8; ++seed) {
        ug::removeCheckpointFiles(path);
        std::mt19937 rng(seed * 7919);
        const ug::Checkpoint cp = randomCheckpoint(rng);
        ASSERT_TRUE(ug::saveCheckpoint(path, cp)) << "seed " << seed;
        auto loaded = ug::loadCheckpoint(path);
        ASSERT_TRUE(loaded.has_value()) << "seed " << seed;
        expectEqual(cp, *loaded);
    }
    ug::removeCheckpointFiles(path);
}

TEST(CheckpointDurability, SlotRotationLoadsNewestAndSurvivesSlotLoss) {
    const std::string path = "/tmp/ugtest_cp_rotation";
    ug::removeCheckpointFiles(path);
    for (int g = 1; g <= 5; ++g) {
        ug::Checkpoint cp;
        cp.dualBound = -g;
        ASSERT_TRUE(ug::saveCheckpoint(path, cp));
        ug::CheckpointLoadReport rep;
        auto loaded = ug::loadCheckpoint(path, &rep);
        ASSERT_TRUE(loaded.has_value()) << g;
        EXPECT_DOUBLE_EQ(loaded->dualBound, -g);
        EXPECT_EQ(rep.generation, static_cast<std::uint64_t>(g));
    }
    // Saves alternate a,b,a,b,a: generation 5 sits in slot A, 4 in slot B.
    EXPECT_TRUE(fileExists(ug::checkpointSlotA(path)));
    EXPECT_TRUE(fileExists(ug::checkpointSlotB(path)));
    std::remove(ug::checkpointSlotA(path).c_str());
    ug::CheckpointLoadReport rep;
    auto loaded = ug::loadCheckpoint(path, &rep);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_DOUBLE_EQ(loaded->dualBound, -4.0);
    EXPECT_EQ(rep.generation, 4u);
    ug::removeCheckpointFiles(path);
}

TEST(CheckpointDurability, TruncationAtEveryByteOffsetLoadsPreviousGen) {
    const std::string path = "/tmp/ugtest_cp_trunc";
    ug::removeCheckpointFiles(path);
    std::mt19937 rng(4242);
    ug::Checkpoint gen1 = randomCheckpoint(rng);
    gen1.dualBound = -111.0;
    ASSERT_TRUE(ug::saveCheckpoint(path, gen1));  // slot A, generation 1
    ug::Checkpoint gen2 = gen1;
    gen2.dualBound = -222.0;
    ASSERT_TRUE(ug::saveCheckpoint(path, gen2));  // slot B, generation 2

    const std::string slotB = ug::checkpointSlotB(path);
    const std::vector<unsigned char> image = readAll(slotB);
    ASSERT_FALSE(image.empty());
    {
        auto intact = ug::loadCheckpoint(path);
        ASSERT_TRUE(intact.has_value());
        EXPECT_DOUBLE_EQ(intact->dualBound, -222.0);
    }
    // Every strict prefix of the newest image must fail validation, and the
    // loader must fall back to the previous good generation — no offset may
    // ever leave the run without a loadable checkpoint.
    for (std::size_t cut = 0; cut < image.size(); ++cut) {
        writeAll(slotB, image.data(), cut);
        ug::CheckpointLoadReport rep;
        auto cp = ug::loadCheckpoint(path, &rep);
        ASSERT_TRUE(cp.has_value()) << "offset " << cut;
        EXPECT_DOUBLE_EQ(cp->dualBound, -111.0) << "offset " << cut;
        EXPECT_EQ(rep.generation, 1u) << "offset " << cut;
        EXPECT_EQ(rep.slotsPresent, 2) << "offset " << cut;
        EXPECT_EQ(rep.slotsCorrupt, 1) << "offset " << cut;
    }
    ug::removeCheckpointFiles(path);
}

TEST(CheckpointDurability, SingleByteCorruptionLoadsPreviousGen) {
    const std::string path = "/tmp/ugtest_cp_bitrot";
    ug::removeCheckpointFiles(path);
    std::mt19937 rng(99);
    ug::Checkpoint gen1 = randomCheckpoint(rng);
    gen1.dualBound = -1.0;
    ASSERT_TRUE(ug::saveCheckpoint(path, gen1));
    ug::Checkpoint gen2 = gen1;
    gen2.dualBound = -2.0;
    ASSERT_TRUE(ug::saveCheckpoint(path, gen2));

    const std::string slotB = ug::checkpointSlotB(path);
    const std::vector<unsigned char> image = readAll(slotB);
    ASSERT_FALSE(image.empty());
    // Flip every byte in turn: the header CRC and the per-section payload
    // CRCs must catch each one, falling back to the previous generation.
    for (std::size_t i = 0; i < image.size(); ++i) {
        std::vector<unsigned char> bad = image;
        bad[i] ^= 0xFFu;
        writeAll(slotB, bad.data(), bad.size());
        auto cp = ug::loadCheckpoint(path);
        ASSERT_TRUE(cp.has_value()) << "byte " << i;
        EXPECT_DOUBLE_EQ(cp->dualBound, -1.0) << "byte " << i;
    }
    ug::removeCheckpointFiles(path);
}

TEST(CheckpointDurability, MissingDistinguishedFromCorrupt) {
    ug::CheckpointLoadReport rep;
    EXPECT_FALSE(
        ug::loadCheckpoint("/tmp/ugtest_cp_nonexistent", &rep).has_value());
    EXPECT_EQ(rep.slotsPresent, 0);

    const std::string path = "/tmp/ugtest_cp_garbage";
    ug::removeCheckpointFiles(path);
    const char junk[] = "this is not a checkpoint";
    writeAll(ug::checkpointSlotA(path),
             reinterpret_cast<const unsigned char*>(junk), sizeof junk);
    ug::CheckpointLoadReport rep2;
    EXPECT_FALSE(ug::loadCheckpoint(path, &rep2).has_value());
    EXPECT_EQ(rep2.slotsPresent, 1);
    EXPECT_EQ(rep2.slotsCorrupt, 1);
    EXPECT_FALSE(rep2.error.empty());
    ug::removeCheckpointFiles(path);
}

TEST(CheckpointDurability, TornWriterInjectsShortWritesThatNeverLoad) {
    const std::string path = "/tmp/ugtest_cp_torn";
    ug::removeCheckpointFiles(path);
    ug::Checkpoint cp;
    cp.dualBound = -7.0;
    ug::TornWriter torn(1.0, 123);  // always truncate
    ASSERT_TRUE(ug::saveCheckpoint(path, cp, &torn));
    EXPECT_EQ(torn.injected(), 1);
    ug::CheckpointLoadReport rep;
    EXPECT_FALSE(ug::loadCheckpoint(path, &rep).has_value());
    EXPECT_EQ(rep.slotsPresent, 1);
    EXPECT_EQ(rep.slotsCorrupt, 1);
    // The next clean save reclaims the invalid slot and loads fine.
    ASSERT_TRUE(ug::saveCheckpoint(path, cp));
    auto loaded = ug::loadCheckpoint(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_DOUBLE_EQ(loaded->dualBound, -7.0);
    ug::removeCheckpointFiles(path);
}

// --- coordinator-level restart semantics ------------------------------------

namespace {

/// ParaComm with a settable clock, recording every send — drives the
/// LoadCoordinator deterministically without an engine.
class ClockComm : public ug::ParaComm {
public:
    explicit ClockComm(int size) : size_(size) {}
    int size() const override { return size_; }
    void send(int src, int dest, ug::Message msg) override {
        msg.src = src;
        sent.emplace_back(dest, std::move(msg));
    }
    double now(int) const override { return t; }

    const ug::Message* last(ug::Tag tag, int dest) const {
        const ug::Message* found = nullptr;
        for (const auto& [d, m] : sent)
            if (d == dest && m.tag == tag) found = &m;
        return found;
    }

    double t = 0.0;
    std::vector<std::pair<int, ug::Message>> sent;

private:
    int size_;
};

}  // namespace

TEST(Recovery, RestartResumesCutPoolIncumbentProvenanceAndStats) {
    const std::string path = "/tmp/ugtest_cp_resume";
    ug::removeCheckpointFiles(path);
    ug::UgConfig cfg;
    cfg.numSolvers = 2;
    cfg.checkpointFile = path;
    ClockComm comm(3);
    ug::LoadCoordinator lc(comm, cfg);
    lc.start({});  // root -> rank 1

    ug::Message sol;
    sol.tag = ug::Tag::SolutionFound;
    sol.src = 1;
    sol.sol.x = {1.0};
    sol.sol.obj = -50.0;
    lc.handleMessage(sol);

    ug::Message st;
    st.tag = ug::Tag::Status;
    st.src = 1;
    st.dualBound = -80.0;
    st.openNodes = 3;
    st.nodesProcessed = 2;
    ASSERT_TRUE(st.cuts.append({1, 4, 9}));
    ASSERT_TRUE(st.cuts.append({2, 3}));
    lc.handleMessage(st);
    EXPECT_EQ(lc.stats().shareCutsPooled, 2);

    lc.forceStop();  // checkpoints before draining the active worker
    EXPECT_EQ(lc.stats().checkpointSaves, 1);

    // The on-disk image carries the widened payload.
    auto cp = ug::loadCheckpoint(path);
    ASSERT_TRUE(cp.has_value());
    EXPECT_EQ(cp->incumbentSource, 1);
    EXPECT_EQ(cp->cuts.count(), 2);
    ASSERT_TRUE(cp->hasStats);
    EXPECT_EQ(cp->stats.shareCutsPooled, 2);
    EXPECT_TRUE(cp->racingDone);

    // A fresh coordinator restarting from it resumes pool, incumbent, and
    // cumulative statistics instead of starting from zero.
    ug::UgConfig cfg2 = cfg;
    cfg2.restartFromCheckpoint = true;
    ClockComm comm2(3);
    ug::LoadCoordinator lc2(comm2, cfg2);
    lc2.start({});
    EXPECT_EQ(lc2.stats().checkpointRestarts, 1);
    EXPECT_EQ(lc2.stats().checkpointSaves, 1);  // cumulative, restored
    EXPECT_EQ(lc2.stats().shareCutsPooled, 2);  // continues, not reset
    EXPECT_EQ(lc2.stats().initialOpenNodes, 1);
    ASSERT_TRUE(lc2.bestSolution().valid());
    EXPECT_DOUBLE_EQ(lc2.bestSolution().obj, -50.0);
    // The first assignment re-primes its receiver from the restored pool.
    const ug::Message* sub = comm2.last(ug::Tag::Subproblem, 1);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->cuts.count(), 2);
    ug::removeCheckpointFiles(path);
}

// --- end-to-end restart sequences under fault plans --------------------------

namespace {

ug::UgResult runPhase(const Model& m, const ug::FaultPlan& plan,
                      double interval, const std::string& path, bool restart,
                      double timeLimit) {
    ug::UgConfig cfg;
    cfg.numSolvers = 4;
    cfg.checkpointFile = path;
    cfg.checkpointInterval = interval;
    cfg.heartbeatTimeout = 0.05;
    cfg.faults = plan;
    cfg.restartFromCheckpoint = restart;
    cfg.timeLimit = timeLimit;
    return ugcip::solveSimulated([&] { return m; }, cfg);
}

}  // namespace

TEST(Recovery, CorruptBothSlotsFallsBackToFreshRootSolve) {
    Model m = hardKnapsack(22, 17);
    const double opt = sequentialOptimum(m);
    const std::string path = "/tmp/ugtest_cp_corruptboth";
    ug::removeCheckpointFiles(path);

    ug::UgResult first =
        runPhase(m, ug::FaultPlan{}, /*interval=*/0.0, path, false, 0.02);
    if (first.status == ug::UgStatus::Optimal) {
        ug::removeCheckpointFiles(path);
        GTEST_SKIP() << "instance finished before the limit";
    }
    ASSERT_EQ(first.status, ug::UgStatus::TimeLimit);

    // Truncate every slot present: no generation survives.
    for (const std::string& slot :
         {ug::checkpointSlotA(path), ug::checkpointSlotB(path)}) {
        const std::vector<unsigned char> image = readAll(slot);
        if (!image.empty()) writeAll(slot, image.data(), image.size() / 2);
    }

    ug::UgResult second =
        runPhase(m, ug::FaultPlan{}, 0.0, path, /*restart=*/true, 1e18);
    ASSERT_EQ(second.status, ug::UgStatus::Optimal);
    EXPECT_NEAR(second.best.obj, opt, 1e-6);
    EXPECT_GE(second.stats.checkpointLoadFailures, 1);
    EXPECT_EQ(second.stats.checkpointRestarts, 0);
    EXPECT_EQ(second.stats.initialOpenNodes, 0);
    ug::removeCheckpointFiles(path);
}

TEST(Recovery, KillRestartKillRestartMatrixReachesOptimum) {
    Model m = hardKnapsack(22, 17);
    const double opt = sequentialOptimum(m);

    struct Case {
        const char* name;
        ug::FaultPlan plan;
        double interval;
    };
    std::vector<Case> cases;
    {
        ug::FaultPlan p;
        p.dropProb = 0.06;
        p.killRank = 2;
        p.killAfterSends = 6;
        p.tornWriteProb = 0.3;
        cases.push_back({"drop_kill_torn", p, 0.004});
    }
    {
        ug::FaultPlan p;
        p.corruptProb = 0.5;
        p.killRank = 3;
        p.killAfterSends = 8;
        p.tornWriteProb = 0.5;
        cases.push_back({"corrupt_kill_torn", p, 0.008});
    }
    // `make faults-stress` widens the matrix beyond the default smoke size.
    if (std::getenv("UG_FAULTS_STRESS")) {
        {
            ug::FaultPlan p;
            p.dropProb = 0.10;
            p.delayProb = 0.3;
            p.delaySeconds = 0.004;
            p.killRank = 1;
            p.killAfterSends = 4;
            p.tornWriteProb = 0.6;
            cases.push_back({"drop_delay_kill_heavytorn", p, 0.004});
        }
        {
            ug::FaultPlan p;
            p.duplicateProb = 0.3;
            p.reorderProb = 0.3;
            p.reorderWindow = 0.004;
            p.killRank = 2;
            p.killAfterSends = 10;
            p.tornWriteProb = 0.3;
            cases.push_back({"dup_reorder_kill_torn", p, 0.012});
        }
        {
            ug::FaultPlan p;
            p.dropProb = 0.08;
            p.corruptProb = 0.4;
            p.killRank = 2;
            p.killAfterSends = 6;
            p.tornWriteProb = 0.4;
            cases.push_back({"drop_corrupt_kill_torn", p, 0.004});
        }
    }

    for (const Case& c : cases) {
        const std::string path =
            std::string("/tmp/ugtest_cp_matrix_") + c.name;
        ug::removeCheckpointFiles(path);
        // Two interrupted phases (kill fires fresh in each), then run to
        // completion: kill -> restart -> kill -> restart. A whole-fleet
        // death (status Failed: heavy drops eventually get every rank
        // declared dead) is just one more crash to restart from — its
        // periodic checkpoints still carry the full frontier.
        ug::UgResult res = runPhase(m, c.plan, c.interval, path, false, 0.015);
        int phases = 1;
        while (res.status != ug::UgStatus::Optimal && phases < 8) {
            const double tl = phases < 3 ? 0.015 : 1e18;
            res = runPhase(m, c.plan, c.interval, path, true, tl);
            ++phases;
        }
        // Zero lost coverage: whatever was killed, dropped, corrupted, or
        // torn, the final run proves the seed optimum.
        ASSERT_EQ(res.status, ug::UgStatus::Optimal) << c.name;
        EXPECT_NEAR(res.best.obj, opt, 1e-6) << c.name;
        if (phases > 1) {
            // Every restart either resumed a good generation (cumulative
            // accounting continues) or detected corruption and fell back to
            // a fresh root solve — both are recorded.
            EXPECT_GE(res.stats.checkpointRestarts +
                          res.stats.checkpointLoadFailures,
                      1)
                << c.name;
            EXPECT_GE(res.stats.checkpointSaves, 1) << c.name;
        }
        ug::removeCheckpointFiles(path);
    }
}

TEST(Recovery, RestartSequenceIsDeterministic) {
    Model m = hardKnapsack(22, 17);
    ug::FaultPlan p;
    p.dropProb = 0.06;
    p.killRank = 2;
    p.killAfterSends = 6;
    p.tornWriteProb = 0.3;
    p.seed = 99;

    long long nodes[2];
    double obj[2], elapsed[2];
    for (int i = 0; i < 2; ++i) {
        const std::string path = "/tmp/ugtest_cp_det";
        ug::removeCheckpointFiles(path);
        ug::UgResult res = runPhase(m, p, 0.004, path, false, 0.015);
        for (int ph = 1; res.status != ug::UgStatus::Optimal && ph < 6; ++ph)
            res = runPhase(m, p, 0.004, path, true, 1e18);
        ASSERT_EQ(res.status, ug::UgStatus::Optimal);
        nodes[i] = res.stats.totalNodesProcessed;
        obj[i] = res.best.obj;
        elapsed[i] = res.elapsed;
        ug::removeCheckpointFiles(path);
    }
    EXPECT_EQ(nodes[0], nodes[1]);
    EXPECT_DOUBLE_EQ(obj[0], obj[1]);
    EXPECT_DOUBLE_EQ(elapsed[0], elapsed[1]);
}
