// Second CIP test pass: managed rows (constraint branching machinery), cut
// pool aging, limits, node-selection strategies and propagation internals.
#include <gtest/gtest.h>

#include <random>

#include "cip/model.hpp"
#include "cip/plugins.hpp"
#include "cip/solver.hpp"

using cip::kInf;
using cip::Model;
using cip::Row;
using cip::Solver;
using cip::Status;

namespace {

Model knapsack(const std::vector<double>& value,
               const std::vector<double>& weight, double cap) {
    Model m;
    std::vector<std::pair<int, double>> coefs;
    for (std::size_t j = 0; j < value.size(); ++j) {
        m.addVar(-value[j], 0.0, 1.0, true);
        coefs.emplace_back(static_cast<int>(j), weight[j]);
    }
    m.addLinear(Row(std::move(coefs), -kInf, cap));
    return m;
}

/// Handler that keeps a managed row "x0 + x1 >= 1" active everywhere,
/// turning it into a plain extra constraint — exercises managed-row
/// plumbing end to end.
class AlwaysOnManagedRow : public cip::ConstraintHandler {
public:
    AlwaysOnManagedRow() : ConstraintHandler("managed", 0) {}
    bool check(Solver&, const std::vector<double>& x) override {
        return x[0] + x[1] >= 1.0 - 1e-6;
    }
    int separate(Solver&, const std::vector<double>&) override { return 0; }
    int enforce(Solver&, const std::vector<double>&,
                cip::BranchDecision&) override {
        return 0;
    }
    void nodeActivated(Solver& solver) override {
        if (handle_ < 0)
            handle_ = solver.addManagedRow(
                Row({{0, 1.0}, {1, 1.0}}, 1.0, kInf));
        solver.setManagedRowBounds(handle_, 1.0, kInf);
    }

private:
    int handle_ = -1;
};

}  // namespace

TEST(CipManagedRows, ActiveRowRestrictsOptimum) {
    // Without the managed row, optimum picks items 1 and 3 (13 + 8).
    // Forcing x0 + x1 >= 1 keeps that optimum valid; force a harder row.
    Model m = knapsack({10, 13, 7, 8}, {5, 7, 4, 3}, 10);
    Solver s;
    s.setModel(std::move(m));
    s.addConstraintHandler(std::make_unique<AlwaysOnManagedRow>());
    ASSERT_EQ(s.solve(), Status::Optimal);
    // x1 = 1 in the unconstrained optimum, so the row holds; value 21.
    EXPECT_NEAR(s.incumbent().obj, -21.0, 1e-6);
    EXPECT_GE(s.incumbent().x[0] + s.incumbent().x[1], 1.0 - 1e-6);
}

namespace {

/// Handler forcing x0 + x1 <= 0 via a managed row (both excluded).
class ExcludingManagedRow : public cip::ConstraintHandler {
public:
    ExcludingManagedRow() : ConstraintHandler("excl", 0) {}
    bool check(Solver&, const std::vector<double>& x) override {
        return x[0] + x[1] <= 1e-6;
    }
    int separate(Solver&, const std::vector<double>&) override { return 0; }
    void nodeActivated(Solver& solver) override {
        if (handle_ < 0)
            handle_ = solver.addManagedRow(
                Row({{0, 1.0}, {1, 1.0}}, -kInf, kInf));
        solver.setManagedRowBounds(handle_, -kInf, 0.0);
    }

private:
    int handle_ = -1;
};

}  // namespace

TEST(CipManagedRows, ExclusionChangesOptimum) {
    Model m = knapsack({10, 13, 7, 8}, {5, 7, 4, 3}, 10);
    Solver s;
    s.setModel(std::move(m));
    s.addConstraintHandler(std::make_unique<ExcludingManagedRow>());
    ASSERT_EQ(s.solve(), Status::Optimal);
    // Without items 0 and 1: best is 7 + 8 = 15.
    EXPECT_NEAR(s.incumbent().obj, -15.0, 1e-6);
}

namespace {

/// Separator producing valid but weak cuts each round, to grow the pool and
/// exercise aging + LP rebuilds.
class NoisyCutSeparator : public cip::Separator {
public:
    NoisyCutSeparator() : Separator("noisy", 0) {}
    int separate(Solver& solver, const std::vector<double>& x) override {
        if (rounds_ >= 40) return 0;
        ++rounds_;
        // Globally valid (sum of 0/1 vars <= n) but usually slack rows,
        // slightly tightened around the current point so they enter the LP.
        const int n = solver.model().numVars();
        double sum = 0.0;
        for (double v : x) sum += v;
        std::vector<std::pair<int, double>> coefs;
        for (int j = 0; j < n; ++j) coefs.emplace_back(j, 1.0);
        solver.addCut(Row(std::move(coefs), -kInf, double(n) + rounds_));
        return 1;
    }
    int rounds_ = 0;
};

}  // namespace

TEST(CipCutPool, AgingKeepsSolverCorrect) {
    Model m = knapsack({3, 5, 7, 9, 11, 6, 4}, {2, 3, 4, 5, 6, 3, 2}, 10);
    Solver plain;
    {
        Model copy = m;
        plain.setModel(std::move(copy));
    }
    ASSERT_EQ(plain.solve(), Status::Optimal);

    Solver s;
    s.setModel(std::move(m));
    s.addSeparator(std::make_unique<NoisyCutSeparator>());
    s.params().setInt("separating/maxpoolsize", 5);  // aggressive trimming
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_NEAR(s.incumbent().obj, plain.incumbent().obj, 1e-6);
    EXPECT_GT(s.stats().cutsAdded, 0);
}

TEST(CipLimits, CostLimitStops) {
    Model m = knapsack({3, 5, 7, 9, 11, 6, 4, 8, 2, 9},
                       {2, 3, 4, 5, 6, 3, 2, 4, 1, 5}, 15);
    Solver s;
    s.setModel(std::move(m));
    s.params().setReal("limits/cost", 5.0);
    s.params().setInt("heuristics/freq", 0);
    s.params().setBool("heuristics/diving/enabled", false);
    Status st = s.solve();
    EXPECT_TRUE(st == Status::CostLimit || st == Status::Optimal);
    if (st == Status::CostLimit) EXPECT_GE(s.stats().totalCost, 5);
}

TEST(CipLimits, GapLimitStops) {
    Model m = knapsack({3, 5, 7, 9, 11, 6, 4, 8}, {2, 3, 4, 5, 6, 3, 2, 4},
                       13);
    Solver s;
    s.setModel(std::move(m));
    s.params().setReal("limits/gap", 0.5);  // 50% gap: satisfied quickly
    Status st = s.solve();
    EXPECT_TRUE(st == Status::GapLimit || st == Status::Optimal);
    if (st == Status::GapLimit) EXPECT_LE(s.gap(), 0.5 + 1e-9);
}

TEST(CipNodesel, AllStrategiesReachTheOptimum) {
    for (const char* sel : {"bestbound", "dfs", "estimate"}) {
        Model m = knapsack({3, 5, 7, 9, 11, 6, 4}, {2, 3, 4, 5, 6, 3, 2}, 10);
        Solver s;
        s.setModel(std::move(m));
        s.params().setString("nodeselection", sel);
        ASSERT_EQ(s.solve(), Status::Optimal) << sel;
        EXPECT_NEAR(s.incumbent().obj, -19.0, 1e-6) << sel;
    }
}

TEST(CipBranching, MostFracAndPseudocostAgree) {
    for (const char* rule : {"mostfrac", "pseudocost"}) {
        Model m = knapsack({4, 7, 9, 11, 6, 13}, {3, 5, 6, 7, 4, 8}, 14);
        Solver s;
        s.setModel(std::move(m));
        s.params().setString("branching", rule);
        ASSERT_EQ(s.solve(), Status::Optimal) << rule;
        EXPECT_NEAR(s.incumbent().obj, -22.0, 1e-6) << rule;
    }
}

TEST(CipPropagation, LinearPropagationFixesForcedVars) {
    // x0 + x1 + x2 >= 3 with binaries forces all to 1 in presolve.
    Model m;
    for (int j = 0; j < 3; ++j) m.addVar(1.0, 0.0, 1.0, true);
    m.addLinear(Row({{0, 1.0}, {1, 1.0}, {2, 1.0}}, 3.0, kInf));
    Solver s;
    s.setModel(std::move(m));
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_NEAR(s.incumbent().obj, 3.0, 1e-9);
    EXPECT_EQ(s.stats().nodesProcessed, 1);  // no branching needed
}

TEST(CipPropagation, DetectsInfeasibilityBeforeLp) {
    Model m;
    m.addVar(0.0, 0.0, 1.0, true);
    m.addVar(0.0, 0.0, 1.0, true);
    m.addLinear(Row({{0, 1.0}, {1, 1.0}}, 3.0, kInf));  // max activity 2
    Solver s;
    s.setModel(std::move(m));
    EXPECT_EQ(s.solve(), Status::Infeasible);
    EXPECT_EQ(s.stats().lpIterations, 0);  // caught in presolve
}

TEST(CipObjIntegral, RoundsDualBound) {
    Model m = knapsack({3, 5, 7}, {2, 3, 4}, 5);
    Solver s;
    s.setModel(std::move(m));
    s.params().setBool("misc/objintegral", true);
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_NEAR(s.dualBound(), s.primalBound(), 1e-9);
    EXPECT_NEAR(std::round(s.incumbent().obj), s.incumbent().obj, 1e-9);
}

TEST(CipSolver, PermutationSeedChangesSearchNotResult) {
    double objRef = 0.0;
    std::vector<long long> nodeCounts;
    for (int seed : {0, 1, 2, 3}) {
        Model m = knapsack({4, 7, 9, 11, 6, 13, 5, 8},
                           {3, 5, 6, 7, 4, 8, 3, 5}, 18);
        Solver s;
        s.setModel(std::move(m));
        s.params().setInt("randomization/permutationseed", seed);
        ASSERT_EQ(s.solve(), Status::Optimal);
        if (seed == 0)
            objRef = s.incumbent().obj;
        else
            EXPECT_NEAR(s.incumbent().obj, objRef, 1e-6);
        nodeCounts.push_back(s.stats().nodesProcessed);
    }
    // All runs correct; node counts recorded (may or may not differ).
    EXPECT_EQ(nodeCounts.size(), 4u);
}

TEST(CipWarmStart, ChildNodesReuseParentBasis) {
    // Best-bound search jumps around the tree, so nearly every node LP
    // should start from its parent's snapshot rather than cold.
    Model m = knapsack({3, 5, 7, 9, 11, 6, 4}, {2, 3, 4, 5, 6, 3, 2}, 10);
    Solver warm;
    warm.setModel(Model(m));
    warm.params().setString("nodeselection", "bestbound");
    ASSERT_EQ(warm.solve(), Status::Optimal);
    EXPECT_GT(warm.stats().basisWarmStarts, 0)
        << "no node LP was warm-started from a parent basis";

    // Same search with warm-starts disabled: identical optimum.
    Solver cold;
    cold.setModel(std::move(m));
    cold.params().setString("nodeselection", "bestbound");
    cold.params().setBool("lp/warmstart", false);
    ASSERT_EQ(cold.solve(), Status::Optimal);
    EXPECT_EQ(cold.stats().basisWarmStarts, 0);
    EXPECT_NEAR(warm.incumbent().obj, cold.incumbent().obj, 1e-6);
}

TEST(CipBranching, StrongBranchingProbesAndSolves) {
    Model m = knapsack({4, 7, 9, 11, 6, 13, 5, 8},
                       {3, 5, 6, 7, 4, 8, 3, 5}, 18);
    Solver ref;
    ref.setModel(Model(m));
    ASSERT_EQ(ref.solve(), Status::Optimal);

    Solver s;
    s.setModel(std::move(m));
    s.params().setString("branching", "strong");
    ASSERT_EQ(s.solve(), Status::Optimal);
    EXPECT_NEAR(s.incumbent().obj, ref.incumbent().obj, 1e-6);
    EXPECT_GT(s.stats().strongBranchProbes, 0)
        << "strong branching rule never probed a candidate";
}
