#include "steiner/shortest.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace steiner {

namespace {
using QueueItem = std::pair<double, int>;  // (dist, vertex)
using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;
}  // namespace

SpResult dijkstra(const Graph& g, int source) {
    return dijkstraCapped(g, source, kInfCost, -1);
}

SpResult dijkstraCapped(const Graph& g, int source, double cap, int skipEdge) {
    SpResult res;
    res.dist.assign(g.numVertices(), kInfCost);
    res.predEdge.assign(g.numVertices(), -1);
    MinQueue q;
    res.dist[source] = 0.0;
    q.push({0.0, source});
    while (!q.empty()) {
        auto [d, v] = q.top();
        q.pop();
        if (d > res.dist[v]) continue;
        if (d > cap) break;
        for (int e : g.incident(v)) {
            if (e == skipEdge) continue;
            const Edge& ed = g.edge(e);
            if (ed.deleted) continue;
            const int w = ed.other(v);
            const double nd = d + ed.cost;
            if (nd < res.dist[w] - 1e-12) {
                res.dist[w] = nd;
                res.predEdge[w] = e;
                q.push({nd, w});
            }
        }
    }
    return res;
}

Voronoi voronoi(const Graph& g) {
    Voronoi res;
    res.base.assign(g.numVertices(), -1);
    res.dist.assign(g.numVertices(), kInfCost);
    res.predEdge.assign(g.numVertices(), -1);
    MinQueue q;
    for (int v = 0; v < g.numVertices(); ++v) {
        if (g.vertexAlive(v) && g.isTerminal(v)) {
            res.base[v] = v;
            res.dist[v] = 0.0;
            q.push({0.0, v});
        }
    }
    while (!q.empty()) {
        auto [d, v] = q.top();
        q.pop();
        if (d > res.dist[v]) continue;
        for (int e : g.incident(v)) {
            const Edge& ed = g.edge(e);
            if (ed.deleted) continue;
            const int w = ed.other(v);
            const double nd = d + ed.cost;
            if (nd < res.dist[w] - 1e-12) {
                res.dist[w] = nd;
                res.base[w] = res.base[v];
                res.predEdge[w] = e;
                q.push({nd, w});
            }
        }
    }
    return res;
}

std::vector<int> inducedMst(const Graph& g, const std::vector<bool>& vertexMask,
                            bool* connected) {
    // Prim over included vertices.
    std::vector<int> out;
    int start = -1, includeCount = 0;
    for (int v = 0; v < g.numVertices(); ++v) {
        if (vertexMask[v] && g.vertexAlive(v)) {
            ++includeCount;
            if (start < 0) start = v;
        }
    }
    if (connected) *connected = true;
    if (includeCount <= 1) return out;
    std::vector<bool> inTree(g.numVertices(), false);
    std::vector<double> key(g.numVertices(), kInfCost);
    std::vector<int> keyEdge(g.numVertices(), -1);
    MinQueue q;
    key[start] = 0.0;
    q.push({0.0, start});
    int added = 0;
    while (!q.empty()) {
        auto [d, v] = q.top();
        q.pop();
        if (inTree[v] || d > key[v]) continue;
        inTree[v] = true;
        ++added;
        if (keyEdge[v] >= 0) out.push_back(keyEdge[v]);
        for (int e : g.incident(v)) {
            const Edge& ed = g.edge(e);
            if (ed.deleted) continue;
            const int w = ed.other(v);
            if (!vertexMask[w] || inTree[w]) continue;
            if (ed.cost < key[w] - 1e-12) {
                key[w] = ed.cost;
                keyEdge[w] = e;
                q.push({key[w], w});
            }
        }
    }
    if (added != includeCount) {
        if (connected) *connected = false;
        out.clear();
    }
    return out;
}

std::vector<int> pruneTree(const Graph& g, std::vector<int> treeEdges) {
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<int> deg(g.numVertices(), 0);
        for (int e : treeEdges) {
            ++deg[g.edge(e).u];
            ++deg[g.edge(e).v];
        }
        std::vector<int> keep;
        keep.reserve(treeEdges.size());
        for (int e : treeEdges) {
            const Edge& ed = g.edge(e);
            const bool leafU = deg[ed.u] == 1 && !g.isTerminal(ed.u);
            const bool leafV = deg[ed.v] == 1 && !g.isTerminal(ed.v);
            if (leafU || leafV) {
                changed = true;
                continue;
            }
            keep.push_back(e);
        }
        treeEdges.swap(keep);
    }
    return treeEdges;
}

}  // namespace steiner
