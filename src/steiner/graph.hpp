// Undirected Steiner problem graph with deletion/contraction support and
// original-edge ancestry, so solutions on the reduced instance can be mapped
// back to the input instance (as SCIP-Jack does after presolving).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace steiner {

constexpr double kInfCost = 1e100;

struct Edge {
    int u = -1;
    int v = -1;
    double cost = 0.0;
    bool deleted = false;
    /// Original-instance edge ids composing this (possibly merged) edge.
    std::vector<int> origin;

    int other(int w) const { return w == u ? v : u; }
};

/// The Steiner tree problem instance: graph + terminal set.
class Graph {
public:
    Graph() = default;
    explicit Graph(int numVertices) { reset(numVertices); }

    void reset(int numVertices);

    /// Append a fresh isolated vertex (used by variant transformations to
    /// create gadget terminals); returns its index.
    int addVertex();

    /// Add an edge; `originId` is its id in the *original* instance
    /// (defaults to the new edge's own id, correct when building inputs).
    int addEdge(int u, int v, double cost, int originId = -1);

    int numVertices() const { return static_cast<int>(adj_.size()); }
    int numEdges() const { return static_cast<int>(edges_.size()); }
    /// Count of non-deleted edges.
    int numActiveEdges() const;
    int numActiveVertices() const;

    const Edge& edge(int e) const { return edges_[e]; }
    Edge& edge(int e) { return edges_[e]; }
    const std::vector<int>& incident(int v) const { return adj_[v]; }

    bool isTerminal(int v) const { return terminal_[v]; }
    void setTerminal(int v, bool t);
    int numTerminals() const { return numTerminals_; }
    std::vector<int> terminals() const;
    /// First terminal (used as the arborescence root); -1 if none.
    int rootTerminal() const;

    bool vertexAlive(int v) const { return alive_[v]; }
    /// Degree counting only non-deleted edges.
    int degree(int v) const;

    void deleteEdge(int e);
    /// Undo deleteEdge: re-attach a deleted edge to its (alive) endpoints.
    /// Only valid for edges removed by deleteEdge — contraction re-homes
    /// endpoints, so contracted edges cannot be restored this way. Used by
    /// the incremental ReduceEngine when the search jumps to a node where a
    /// previously fixed-out arc is free again.
    void restoreEdge(int e);
    /// Delete an isolated, non-terminal vertex.
    void deleteVertex(int v);

    /// Contract edge e, merging its endpoint `from` into `to` (both must be
    /// e's endpoints). Terminal status is inherited by `to`; parallel edges
    /// keep only the cheapest. The contracted edge's origin chain is
    /// recorded by the caller (reductions decide whether it is "fixed").
    void contractEdge(int e, int to);

    /// Sum of costs of a set of edge ids.
    double costOf(const std::vector<int>& edgeIds) const;

    /// Verify that the edge set forms a connected subgraph spanning all
    /// terminals (tree-ness not required; used to validate solutions).
    bool spansTerminals(const std::vector<int>& edgeIds) const;

    std::string name;

private:
    void removeFromAdj(int v, int e);

    std::vector<Edge> edges_;
    std::vector<std::vector<int>> adj_;
    std::vector<bool> terminal_;
    std::vector<bool> alive_;
    int numTerminals_ = 0;
};

}  // namespace steiner
