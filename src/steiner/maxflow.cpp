#include "steiner/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace steiner {

namespace {
constexpr double kFlowEps = 1e-9;
}

MaxFlow::MaxFlow(int numNodes) : n_(numNodes), adj_(numNodes) {}

int MaxFlow::addArc(int from, int to, double capacity) {
    const int id = static_cast<int>(arcRef_.size());
    adj_[from].push_back({to, static_cast<int>(adj_[to].size()), capacity});
    adj_[to].push_back({from, static_cast<int>(adj_[from].size()) - 1, 0.0});
    arcRef_.emplace_back(from, static_cast<int>(adj_[from].size()) - 1);
    capSaved_.push_back(capacity);
    return id;
}

void MaxFlow::setCapacity(int arc, double capacity) {
    auto [v, idx] = arcRef_[arc];
    adj_[v][idx].cap = capacity;
    // Reset the reverse residual as well.
    Arc& fwd = adj_[v][idx];
    adj_[fwd.to][fwd.rev].cap = 0.0;
    capSaved_[arc] = capacity;
}

void MaxFlow::clearFlow() {
    for (std::size_t a = 0; a < arcRef_.size(); ++a) setCapacity(a, capSaved_[a]);
}

bool MaxFlow::bfsLevel(int s, int t) {
    level_.assign(n_, -1);
    std::queue<int> q;
    level_[s] = 0;
    q.push(s);
    while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (const Arc& a : adj_[v]) {
            if (a.cap > kFlowEps && level_[a.to] < 0) {
                level_[a.to] = level_[v] + 1;
                q.push(a.to);
            }
        }
    }
    return level_[t] >= 0;
}

double MaxFlow::dfsAugment(int v, int t, double pushed) {
    if (v == t) return pushed;
    for (int& i = iter_[v]; i < static_cast<int>(adj_[v].size()); ++i) {
        Arc& a = adj_[v][i];
        if (a.cap > kFlowEps && level_[a.to] == level_[v] + 1) {
            const double d = dfsAugment(a.to, t, std::min(pushed, a.cap));
            if (d > kFlowEps) {
                a.cap -= d;
                adj_[a.to][a.rev].cap += d;
                return d;
            }
        }
    }
    return 0.0;
}

double MaxFlow::solve(int s, int t) {
    double flow = 0.0;
    while (bfsLevel(s, t)) {
        iter_.assign(n_, 0);
        for (;;) {
            const double f = dfsAugment(
                s, t, std::numeric_limits<double>::infinity());
            if (f <= kFlowEps) break;
            flow += f;
        }
    }
    return flow;
}

std::vector<bool> MaxFlow::minCutSourceSide(int s) const {
    std::vector<bool> side(n_, false);
    std::queue<int> q;
    side[s] = true;
    q.push(s);
    while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (const Arc& a : adj_[v]) {
            if (a.cap > kFlowEps && !side[a.to]) {
                side[a.to] = true;
                q.push(a.to);
            }
        }
    }
    return side;
}

}  // namespace steiner
