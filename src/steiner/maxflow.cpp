#include "steiner/maxflow.hpp"

#include <algorithm>
#include <limits>

namespace steiner {

namespace {
constexpr double kFlowEps = 1e-9;
}

MaxFlow::MaxFlow(int numNodes) { reset(numNodes); }

void MaxFlow::reset(int numNodes) {
    n_ = numNodes;
    built_ = false;
    from_.clear();
    to_.clear();
    capSaved_.clear();
    head_.clear();
    arcs_.clear();
    fwdIndex_.clear();
    actFirst_.clear();
    actNext_.clear();
    isActive_.clear();
    augmentations_ = 0;
    bfsRounds_ = 0;
}

int MaxFlow::addArc(int from, int to, double capacity) {
    const int id = static_cast<int>(from_.size());
    from_.push_back(from);
    to_.push_back(to);
    capSaved_.push_back(capacity);
    built_ = false;  // structure changed; rebuild lazily
    return id;
}

void MaxFlow::ensureBuilt() {
    if (built_) return;
    const std::size_t m = from_.size();
    head_.assign(n_ + 1, 0);
    for (std::size_t a = 0; a < m; ++a) {
        ++head_[from_[a] + 1];
        ++head_[to_[a] + 1];
    }
    for (int v = 0; v < n_; ++v) head_[v + 1] += head_[v];
    arcs_.resize(2 * m);
    fwdIndex_.resize(m);
    std::vector<int> fill(head_.begin(), head_.end() - 1);
    for (std::size_t a = 0; a < m; ++a) {
        const int f = fill[from_[a]]++;
        const int r = fill[to_[a]]++;
        arcs_[f] = {to_[a], r, capSaved_[a]};
        arcs_[r] = {from_[a], f, 0.0};
        fwdIndex_[a] = f;
    }
    isRev_.assign(arcs_.size(), 0);
    for (std::size_t a = 0; a < m; ++a)
        isRev_[arcs_[fwdIndex_[a]].pair] = 1;
    built_ = true;
    // Start with every arc active (plain Dinic); rebuildActive() narrows the
    // lists to the flow-carrying support when the caller opts in.
    actFirst_.assign(n_, -1);
    actNext_.assign(arcs_.size(), -1);
    isActive_.assign(arcs_.size(), 1);
    for (int v = n_ - 1; v >= 0; --v)
        for (int i = head_[v + 1] - 1; i >= head_[v]; --i) {
            actNext_[i] = actFirst_[v];
            actFirst_[v] = i;
        }
}

void MaxFlow::rebuildActive() {
    ensureBuilt();
    actFirst_.assign(n_, -1);
    actNext_.assign(arcs_.size(), -1);
    isActive_.assign(arcs_.size(), 0);
    // Descending so each node's list comes out in ascending CSR order,
    // matching the unfiltered traversal order (deterministic cuts).
    for (int v = n_ - 1; v >= 0; --v)
        for (int i = head_[v + 1] - 1; i >= head_[v]; --i) {
            const Arc& a = arcs_[i];
            if (!isActive_[i] &&
                (a.cap > kFlowEps || arcs_[a.pair].cap > kFlowEps))
                activatePair(i, v);
        }
}

void MaxFlow::activatePair(int i, int tail) {
    if (isActive_[i]) return;
    isActive_[i] = 1;
    actNext_[i] = actFirst_[tail];
    actFirst_[tail] = i;
    const int j = arcs_[i].pair;
    if (!isActive_[j]) {
        isActive_[j] = 1;
        actNext_[j] = actFirst_[arcs_[i].to];
        actFirst_[arcs_[i].to] = j;
    }
}

void MaxFlow::setCapacity(int arc, double capacity) {
    capSaved_[arc] = capacity;
    levelsAreCut_ = false;
    if (!built_) return;
    Arc& fwd = arcs_[fwdIndex_[arc]];
    fwd.cap = capacity;
    arcs_[fwd.pair].cap = 0.0;  // reset the pair's flow as well
    if (capacity > kFlowEps) activatePair(fwdIndex_[arc], from_[arc]);
}

void MaxFlow::raiseCapacity(int arc, double capacity) {
    if (capacity <= capSaved_[arc]) return;
    const double delta = capacity - capSaved_[arc];
    capSaved_[arc] = capacity;
    levelsAreCut_ = false;
    if (!built_) return;
    arcs_[fwdIndex_[arc]].cap += delta;  // flow (pair cap) untouched
    if (capSaved_[arc] > kFlowEps) activatePair(fwdIndex_[arc], from_[arc]);
}

double MaxFlow::flow(int arc) const {
    if (!built_) return 0.0;
    return arcs_[arcs_[fwdIndex_[arc]].pair].cap;
}

void MaxFlow::clearFlow() {
    levelsAreCut_ = false;
    if (!built_) return;
    for (std::size_t a = 0; a < from_.size(); ++a) {
        Arc& fwd = arcs_[fwdIndex_[a]];
        fwd.cap = capSaved_[a];
        arcs_[fwd.pair].cap = 0.0;
    }
}

bool MaxFlow::bfsLevel(int s, int t) {
    ++bfsRounds_;
    level_.assign(n_, -1);
    levelSource_ = s;
    queue_.clear();
    level_[s] = 0;
    queue_.push_back(s);
    int tLevel = n_ + 1;
    for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
        const int v = queue_[qi];
        // Nodes at or beyond the sink's level cannot lie on a shortest
        // augmenting path; stop growing the level graph there. The blocking
        // flow only walks level+1 edges, so unlabeled nodes are never hit.
        if (level_[v] + 1 > tLevel) break;
        for (int i = actFirst_[v]; i >= 0; i = actNext_[i]) {
            const Arc& a = arcs_[i];
            if (a.cap > kFlowEps && level_[a.to] < 0) {
                level_[a.to] = level_[v] + 1;
                if (a.to == t) tLevel = level_[a.to];
                queue_.push_back(a.to);
            }
        }
    }
    return level_[t] >= 0;
}

double MaxFlow::dfsAugment(int v, int t, double pushed) {
    if (v == t) return pushed;
    for (int& i = iter_[v]; i >= 0; i = actNext_[i]) {
        Arc& a = arcs_[i];
        if (a.cap > kFlowEps && level_[a.to] == level_[v] + 1) {
            const double d = dfsAugment(a.to, t, std::min(pushed, a.cap));
            if (d > kFlowEps) {
                a.cap -= d;
                arcs_[a.pair].cap += d;
                return d;
            }
        }
    }
    return 0.0;
}

double MaxFlow::solve(int s, int t) {
    return augment(s, t, std::numeric_limits<double>::infinity());
}

double MaxFlow::augment(int s, int t, double limit) {
    ensureBuilt();
    levelsAreCut_ = false;
    double flow = 0.0;
    while (flow < limit - kFlowEps) {
        if (!bfsLevel(s, t)) {
            // The failed BFS visited exactly the residual source side;
            // sourceSideFromLastSearch can reuse it until flow or
            // capacities change.
            levelsAreCut_ = true;
            break;
        }
        iter_ = actFirst_;  // per-node current-arc pointers into the lists
        while (flow < limit - kFlowEps) {
            const double f = dfsAugment(s, t, limit - flow);
            if (f <= kFlowEps) break;
            flow += f;
            ++augmentations_;
        }
    }
    return flow;
}

double MaxFlow::augmentDfs(int s, int t, double limit, bool reverseOnly) {
    ensureBuilt();
    if (s == t || limit <= kFlowEps) return 0.0;
    levelsAreCut_ = false;
    double total = 0.0;
    iter_ = actFirst_;  // persistent current-arc pointers for this call
    onPath_.assign(n_, 0);
    pathStack_.clear();
    onPath_[s] = 1;
    int v = s;
    while (true) {
        if (v == t) {
            double delta = limit - total;
            for (int e : pathStack_) delta = std::min(delta, arcs_[e].cap);
            for (int e : pathStack_) {
                arcs_[e].cap -= delta;
                arcs_[arcs_[e].pair].cap += delta;
            }
            total += delta;
            ++augmentations_;
            if (total >= limit - kFlowEps) break;
            // Keep the unsaturated path prefix and resume the walk from the
            // first saturated arc's tail; its owner's iterator still points
            // at that arc and will skip past it.
            std::size_t k = 0;
            while (k < pathStack_.size() &&
                   arcs_[pathStack_[k]].cap > kFlowEps)
                ++k;
            for (std::size_t j = pathStack_.size(); j > k; --j)
                onPath_[arcs_[pathStack_[j - 1]].to] = 0;
            pathStack_.resize(k);
            v = k ? arcs_[pathStack_[k - 1]].to : s;
            continue;
        }
        int& i = iter_[v];
        bool advanced = false;
        while (i >= 0) {
            const Arc& a = arcs_[i];
            if (a.cap > kFlowEps && !onPath_[a.to] &&
                (!reverseOnly || isRev_[i])) {
                pathStack_.push_back(i);
                onPath_[a.to] = 1;
                v = a.to;
                advanced = true;
                break;
            }
            i = actNext_[i];
        }
        if (advanced) continue;
        if (v == s) break;  // source exhausted: no more paths
        // Dead end: retreat and skip the arc that led here.
        onPath_[v] = 0;
        const int e = pathStack_.back();
        pathStack_.pop_back();
        v = arcs_[arcs_[e].pair].to;  // the arc's tail
        iter_[v] = actNext_[e];
    }
    return total;
}

void MaxFlow::sourceSideFromLastSearch(int s, std::vector<char>& side) const {
    if (!built_ || !levelsAreCut_ || levelSource_ != s) {
        residualSourceSide(s, side);
        return;
    }
    side.assign(n_, 0);
    for (int v = 0; v < n_; ++v)
        if (level_[v] >= 0) side[v] = 1;
}

std::vector<bool> MaxFlow::minCutSourceSide(int s) const {
    std::vector<char> side;
    residualSourceSide(s, side);
    return std::vector<bool>(side.begin(), side.end());
}

void MaxFlow::residualSourceSide(int s, std::vector<char>& side) const {
    side.assign(n_, 0);
    if (!built_) {
        if (s >= 0 && s < n_) side[s] = 1;
        return;
    }
    std::vector<int> q;
    side[s] = 1;
    q.push_back(s);
    for (std::size_t qi = 0; qi < q.size(); ++qi) {
        const int v = q[qi];
        for (int i = actFirst_[v]; i >= 0; i = actNext_[i]) {
            const Arc& a = arcs_[i];
            if (a.cap > kFlowEps && !side[a.to]) {
                side[a.to] = 1;
                q.push_back(a.to);
            }
        }
    }
}

void MaxFlow::residualSinkSide(int t, std::vector<char>& side) const {
    side.assign(n_, 0);
    if (!built_) {
        if (t >= 0 && t < n_) side[t] = 1;
        return;
    }
    // v can reach w (in the set) iff the residual arc v->w has capacity;
    // that arc is the pair of some CSR entry (w->v), so scanning the set
    // member's own adjacency finds all residual in-neighbors.
    std::vector<int> q;
    side[t] = 1;
    q.push_back(t);
    for (std::size_t qi = 0; qi < q.size(); ++qi) {
        const int w = q[qi];
        for (int i = actFirst_[w]; i >= 0; i = actNext_[i]) {
            const Arc& a = arcs_[i];
            if (!side[a.to] && arcs_[a.pair].cap > kFlowEps) {
                side[a.to] = 1;
                q.push_back(a.to);
            }
        }
    }
}

}  // namespace steiner
