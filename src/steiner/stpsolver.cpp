#include "steiner/stpsolver.hpp"

#include <cmath>

#include "steiner/plugins.hpp"
#include "steiner/shortest.hpp"

namespace steiner {

void SteinerSolver::presolve(bool extendedReductions) {
    if (presolved_) return;
    presolved_ = true;
    Graph reduced = original_;
    red_ = steiner::presolve(reduced, 8, extendedReductions);
    inst_ = buildSapInstance(std::move(reduced), red_);
}

SteinerResult SteinerSolver::makeResult(cip::Status status,
                                        const cip::Solution& sol,
                                        double dualBound,
                                        const cip::Stats& stats) const {
    SteinerResult res;
    res.status = status;
    res.dualBound = dualBound;
    res.reductions = red_;
    res.stats = stats;
    if (sol.valid()) {
        std::vector<int> tree = modelSolutionToTree(inst_, sol.x);
        tree = pruneTree(inst_.graph, std::move(tree));
        res.cost = inst_.fixedCost + inst_.graph.costOf(tree);
        res.originalEdges = toOriginalEdges(inst_, tree);
    }
    return res;
}

SteinerResult SteinerSolver::solve(const cip::ParamSet& params) {
    presolve();
    if (inst_.trivial()) {
        SteinerResult res;
        res.status = cip::Status::Optimal;
        res.cost = inst_.fixedCost;
        res.dualBound = inst_.fixedCost;
        res.originalEdges = inst_.fixedOriginalEdges;
        res.solvedByPresolve = true;
        res.reductions = red_;
        return res;
    }
    cip::Solver solver;
    solver.setModel(inst_.model);
    solver.params().merge(params);
    // Integral edge costs let the B&B round its dual bound.
    bool integral = std::fabs(inst_.fixedCost - std::round(inst_.fixedCost)) <
                    1e-9;
    for (int e = 0; e < inst_.graph.numEdges() && integral; ++e) {
        if (inst_.graph.edge(e).deleted) continue;
        integral = std::fabs(inst_.graph.edge(e).cost -
                             std::round(inst_.graph.edge(e).cost)) < 1e-9;
    }
    if (integral) solver.params().setBool("misc/objintegral", true);
    installStpPlugins(solver, inst_);
    const cip::Status st = solver.solve();
    return makeResult(st, solver.incumbent(), solver.dualBound(),
                      solver.stats());
}

}  // namespace steiner
