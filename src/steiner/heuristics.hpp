// Primal heuristics for the Steiner tree problem: the repetitive
// shortest-path heuristic of Takahashi-Matsuyama (SCIP-Jack's "TM"), an
// MST-prune improvement, and a Steiner-vertex elimination local search.
// tmHeuristic accepts per-edge cost overrides so the branch-and-cut can run
// it LP-guided (costs scaled by 1 - y_LP), which is how SCIP-Jack turns
// fractional relaxation solutions into strong primal solutions.
#pragma once

#include <optional>
#include <vector>

#include "steiner/graph.hpp"

namespace steiner {

struct HeuristicSolution {
    std::vector<int> edges;  ///< edge ids in g
    double cost = kInfCost;  ///< true cost (original edge costs)
    bool valid() const { return cost < kInfCost; }
};

/// Takahashi-Matsuyama from up to `numRoots` different start terminals;
/// `costOverride` (if non-empty, size numEdges) biases the path searches but
/// the returned cost is always measured in true edge costs.
HeuristicSolution tmHeuristic(const Graph& g, int numRoots = 8,
                              const std::vector<double>* costOverride = nullptr);

/// Improve a solution by rebuilding the MST over its vertices and pruning.
HeuristicSolution mstPruneImprove(const Graph& g, const HeuristicSolution& sol);

/// Steiner-vertex elimination local search: try dropping each non-terminal
/// solution vertex; accept improving rebuilds. `maxRounds` caps the loop.
HeuristicSolution vertexEliminationSearch(const Graph& g,
                                          HeuristicSolution sol,
                                          int maxRounds = 3);

/// Full heuristic pipeline: TM + MST-prune + local search.
HeuristicSolution primalHeuristic(const Graph& g, int numRoots = 8,
                                  const std::vector<double>* costOverride =
                                      nullptr);

}  // namespace steiner
