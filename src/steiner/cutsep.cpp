#include "steiner/cutsep.hpp"

#include <algorithm>
#include <cmath>

namespace steiner {

namespace {
constexpr double kEps = 1e-12;
/// Certification epsilon shared by the augmentation cap and emitIfNew's
/// violation test. Both compare against threshold = 1 - violationTol with
/// *the same* slack: a cut is extracted iff flowValue < threshold - kCertEps
/// and certified iff lpActivity < threshold - kCertEps, and the forward/back
/// cut capacity equals the flow value (activity <= capacity, creep arcs only
/// widen it), so every extracted cut passes certification. The old code
/// capped augmentation at threshold - 1e-7 but certified against threshold
/// exactly, silently losing every cut with activity inside that 1e-7 band.
constexpr double kCertEps = 1e-9;
}

CutSeparationEngine::CutSeparationEngine(const SapInstance& inst)
    : inst_(inst), mf_(inst.graph.numVertices()) {
    const Graph& g = inst.graph;
    tail_.reserve(inst.varArc.size());
    head_.reserve(inst.varArc.size());
    // Arc ids in the kernel correspond positionally to model vars.
    for (std::size_t var = 0; var < inst.varArc.size(); ++var) {
        const int a = inst.varArc[var];
        const Edge& e = g.edge(a / 2);
        const int t = (a % 2 == 0) ? e.u : e.v;
        const int h = (a % 2 == 0) ? e.v : e.u;
        tail_.push_back(t);
        head_.push_back(h);
        mf_.addArc(t, h, 0.0);
    }
}

void CutSeparationEngine::beginRound(const std::vector<double>& x,
                                     const CutSepaConfig& cfg) {
    x_ = &x;
    cfg_ = cfg;
    // Creep epsilon small enough that even every arc carrying it cannot
    // push a target over the violation threshold (and emitIfNew certifies
    // against the raw x regardless).
    creepEps_ =
        cfg.creepFlow
            ? std::min(1e-6,
                       cfg.violationTol /
                           (10.0 * static_cast<double>(std::max<std::size_t>(
                                       1, tail_.size()))))
            : 0.0;
    for (std::size_t var = 0; var < tail_.size(); ++var) {
        double cap = std::max(0.0, x[var]);
        if (cap < creepEps_) cap = creepEps_;
        mf_.setCapacity(static_cast<int>(var), cap);
    }
    // Narrow the kernel's traversals to the support of x (plus creep arcs):
    // LP points are sparse, so most of the network can never carry flow
    // this round. Arcs that gain capacity later (nested-cut saturation)
    // re-activate themselves.
    mf_.rebuildActive();
    raised_.clear();  // capacities were just refreshed wholesale
    lastSink_ = -1;
    flowValue_ = 0.0;
    ++stats_.rounds;
}

std::vector<int> CutSeparationEngine::orderByDeficit(
    const std::vector<int>& targets) const {
    const Graph& g = inst_.graph;
    std::vector<std::pair<double, int>> scored;
    scored.reserve(targets.size());
    for (int t : targets) {
        double inflow = 0.0;
        if (x_) {
            for (int e : g.incident(t)) {
                if (g.edge(e).deleted) continue;
                const int a = (g.edge(e).u == t) ? 2 * e + 1 : 2 * e;  // *->t
                const int var = inst_.arcVar[a];
                if (var >= 0) inflow += (*x_)[var];
            }
        }
        scored.emplace_back(inflow, t);
    }
    // Smallest inflow = largest deficit first; stable for determinism.
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    std::vector<int> order;
    order.reserve(scored.size());
    for (const auto& [inflow, t] : scored) order.push_back(t);
    return order;
}

SteinerCut CutSeparationEngine::extractCut(const std::vector<char>& side,
                                           bool fromSource) const {
    SteinerCut cut;
    const std::vector<double>& x = *x_;
    for (std::size_t var = 0; var < tail_.size(); ++var) {
        const bool crosses =
            fromSource ? (side[tail_[var]] && !side[head_[var]])
                       : (!side[tail_[var]] && side[head_[var]]);
        if (crosses) {
            cut.vars.push_back(static_cast<int>(var));
            cut.lpActivity += x[var];
        }
    }
    return cut;
}

bool CutSeparationEngine::emitIfNew(SteinerCut cut,
                                    std::vector<SteinerCut>& out,
                                    std::vector<std::vector<int>>& seen,
                                    bool isBackCut, int depth) {
    if (cut.vars.empty()) return false;
    // Certify the violation against the LP point itself: creep capacities
    // and saturated arcs never enter this test. The epsilon matches the
    // augmentation cap in separateTarget exactly (see kCertEps).
    if (cut.lpActivity >= 1.0 - cfg_.violationTol - kCertEps) return false;
    for (const auto& s : seen)
        if (s == cut.vars) return false;
    seen.push_back(cut.vars);
    ++stats_.cutsFound;
    if (isBackCut) ++stats_.backCuts;
    if (depth > 0) {
        ++stats_.nestedCuts;
        if (depth > stats_.maxNestedDepth) stats_.maxNestedDepth = depth;
    }
    out.push_back(std::move(cut));
    return true;
}

void CutSeparationEngine::restoreRaised() {
    if (raised_.empty()) return;
    // Nested saturation is strictly per-target: leaving raised capacities in
    // place would mask later targets of the round (their max flow crosses
    // the threshold over arcs that only the saturation widened, so genuinely
    // violated targets yield nothing). The nested top-ups routed flow above
    // the true capacities, so the retained flow cannot be repaired — restart
    // cold from the refreshed capacities.
    for (int var : raised_) {
        double cap = std::max(0.0, (*x_)[var]);
        if (cap < creepEps_) cap = creepEps_;
        mf_.setCapacity(var, cap);
    }
    raised_.clear();
    mf_.clearFlow();
    flowValue_ = 0.0;
    lastSink_ = -1;
}

int CutSeparationEngine::separateTarget(int target, int budget,
                                        std::vector<SteinerCut>& out) {
    if (!x_ || budget <= 0 || target == inst_.root) return 0;
    const int root = inst_.root;
    restoreRaised();

    // Warm start: repair the retained flow for the new sink. The old-sink
    // excess is first rerouted toward the new target (each rerouted unit
    // turns a root->old path into a root->new path), the remainder drained
    // back to the root (always possible by flow decomposition).
    if (lastSink_ >= 0 && lastSink_ != target && !cfg_.warmStart) {
        mf_.clearFlow();
        flowValue_ = 0.0;
    } else if (lastSink_ >= 0 && lastSink_ != target && flowValue_ > kEps) {
        // Repair uses greedy DFS paths: only a handful exist, their length
        // is irrelevant, and skipping Dinic's BFS leveling is what makes
        // warm-starting cheaper than a cold solve. The drain walks only
        // reverse (flow-carrying) entries — a tiny subgraph, and complete
        // there by flow decomposition.
        const double rerouted = mf_.augmentDfs(lastSink_, target, flowValue_);
        double excess = flowValue_ - rerouted;
        if (excess > kEps)
            excess -= mf_.augmentDfs(lastSink_, root, excess,
                                     /*reverseOnly=*/true);
        if (excess > 1e-9) {
            // Numerical corner (decomposition says this cannot happen):
            // fall back to a cold flow rather than keep a broken one.
            mf_.clearFlow();
            flowValue_ = 0.0;
        } else {
            flowValue_ = rerouted;
            ++stats_.warmStarts;
        }
    } else if (lastSink_ != target) {
        flowValue_ = 0.0;
    }
    lastSink_ = target;

    std::vector<std::vector<int>> seen;
    int found = 0;
    // Only ever push flow up to the violation threshold: once the flow
    // reaches 1 - tol the target cannot yield a violated cut, and stopping
    // there avoids grinding out the full max flow across the creep arcs.
    const double threshold = 1.0 - cfg_.violationTol;
    for (int depth = 0;; ++depth) {
        if (flowValue_ < threshold) {
            flowValue_ += mf_.augment(root, target, threshold - flowValue_);
            ++stats_.flowSolves;
        }
        // Hitting the cap means the residual graph may still have paths —
        // the sides would not be cuts, so bail before extraction. Same
        // epsilon as emitIfNew's certification: whatever survives this
        // check is guaranteed to be emitted (capacity = flow >= activity).
        if (flowValue_ >= threshold - kCertEps) break;

        // Forward cut from the source-side residual reachability. Its
        // capacity equals the flow value, so it is violated by x (creep
        // only widens arcs); emitIfNew re-checks against x regardless.
        // The augment above always ran and ended exhausted, so its final
        // failed BFS doubles as the reachability — no extra traversal.
        mf_.sourceSideFromLastSearch(root, side_);
        SteinerCut fwd = extractCut(side_, /*fromSource=*/true);
        const std::vector<int> fwdVars = fwd.vars;
        const int before = found;
        if (found < budget && emitIfNew(std::move(fwd), out, seen,
                                        /*isBackCut=*/false, depth))
            ++found;
        std::vector<int> backVars;
        if (cfg_.backCuts && found < budget) {
            mf_.residualSinkSide(target, side_);
            SteinerCut back = extractCut(side_, /*fromSource=*/false);
            backVars = back.vars;
            if (emitIfNew(std::move(back), out, seen, /*isBackCut=*/true,
                          depth))
                ++found;
        }
        if (found >= budget || found == before) break;
        if (!cfg_.nestedCuts || depth + 1 >= cfg_.maxNested) break;
        // Nested cuts: saturate the cut arcs and re-solve the same target.
        // Raising capacities keeps the current flow feasible, so the
        // re-solve is a warm continuation, and at least one cut arc had
        // capacity < 1 (the cut was violated) — guaranteed progress. The
        // raises are undone before the next target (restoreRaised).
        for (int var : fwdVars) {
            mf_.raiseCapacity(var, 1.0);
            raised_.push_back(var);
        }
        for (int var : backVars) {
            mf_.raiseCapacity(var, 1.0);
            raised_.push_back(var);
        }
    }
    stats_.augmentations = mf_.augmentations();
    return found;
}

}  // namespace steiner
