// Reduction techniques (presolving) for the Steiner tree problem.
//
// SCIP-Jack's three pillars are reductions, heuristics and branch-and-cut;
// this module is the first pillar. Implemented tests:
//   * degree tests (d0/d1 non-terminal, d1 terminal contraction, d2 merge),
//   * parallel-edge dominance,
//   * SD/alternative-path edge deletion (capped Dijkstra witness),
//   * bound-based arc/edge elimination from dual-ascent reduced costs and a
//     primal bound,
//   * a limited *extended* reduction test (paper section 4.1): an arc into a
//     non-terminal must be extended by an outgoing arc, so the reduced-cost
//     bound is strengthened by the cheapest extension before comparison.
// All tests preserve at least one optimal solution; contractions accumulate
// fixed cost and fixed original edges for solution reconstruction.
#pragma once

#include <vector>

#include "steiner/dualascent.hpp"
#include "steiner/graph.hpp"

namespace steiner {

struct ReductionStats {
    double fixedCost = 0.0;
    std::vector<int> fixedOriginalEdges;  ///< forced into every built solution
    long long edgesDeleted = 0;
    long long verticesRemoved = 0;
    long long extendedDeletions = 0;  ///< deletions owed to the extended test
};

/// Degree-0/1/2 tests + parallel edge dominance until fixpoint.
void degreeTests(Graph& g, ReductionStats& stats);

/// SD-lite: delete edge (u,v) if an alternative u-v path of cost <= c(u,v)
/// exists. `scanLimit` caps Dijkstra effort per edge.
void sdTest(Graph& g, ReductionStats& stats, int scanLimit = 2000);

/// Bound-based deletion using dual-ascent reduced costs (lb + rc > ub).
/// `useExtended` additionally applies the extension-strengthened test.
/// Returns the number of edges deleted.
long long boundBasedTest(Graph& g, ReductionStats& stats, double upperBound,
                         bool useExtended);

/// Same test driven by a caller-supplied dual-ascent state (the ReduceEngine
/// passes its warm-started ascent instead of paying a cold one here). `da`
/// must be valid for g: computed on a graph whose usable edges were a
/// superset of g's and whose terminals were a subset of g's (see
/// dualAscentWarm). Arcs deleted in g are simply never queried.
long long boundBasedTestWithDa(Graph& g, ReductionStats& stats,
                               double upperBound, bool useExtended,
                               const DualAscentResult& da);

/// Full presolve loop: degree + SD + (optionally) bound-based with a TM
/// heuristic upper bound, until fixpoint or `maxRounds`.
ReductionStats presolve(Graph& g, int maxRounds = 8, bool useExtended = true);

}  // namespace steiner
