// Warm-started incremental separation engine for violated directed Steiner
// cuts (Formulation 1, constraint (4)).
//
// The engine owns one flow network whose arcs correspond positionally to
// the model's arc variables. The network is built once per solver; a
// separation round only refreshes capacities in place from the LP point
// (beginRound). Within a round it applies the SCIP-Jack separation tricks
// the SCIP Optimization Suite reports attribute the separator's throughput
// to:
//   - warm-started flows: the flow computed for one target is retained and
//     repaired for the next (old-sink excess is rerouted toward the new
//     target, the remainder drained back to the root) instead of solving
//     cold per target;
//   - creep flow (optional): zero-valued arcs get a tiny epsilon capacity,
//     so min cuts use few arcs and lie deeper in the graph. This trades
//     extra flow work (the epsilon arcs densify the residual network) for
//     sparser rows, hence it is off by default and a per-solver parameter;
//   - nested cuts: the arcs of a found cut are saturated to capacity 1.0
//     and the same target re-solved, extracting a family of cuts from one
//     warm flow; saturation only raises capacities, so the retained flow
//     stays feasible for the rest of the round;
//   - back cuts: a second cut read off the sink-side residual reachability
//     of the same flow.
// Every emitted cut is certified violated against the actual LP values
// (creep capacities never enter the violation test).
#pragma once

#include <cstdint>
#include <vector>

#include "steiner/maxflow.hpp"
#include "steiner/stpmodel.hpp"

namespace steiner {

/// Engine knobs, mirrored 1:1 by the "stp/sepa/*" cip::Params entries.
struct CutSepaConfig {
    bool nestedCuts = true;      ///< stp/sepa/nestedcuts
    bool backCuts = true;        ///< stp/sepa/backcuts
    bool creepFlow = false;      ///< stp/sepa/creepflow (extra work, see above)
    bool warmStart = true;       ///< repair flows between targets (vs clearFlow)
    int maxCuts = 12;            ///< stp/sepa/maxcuts (per separation round)
    double violationTol = 0.05;  ///< stp/sepa/violationtol
    int maxNested = 8;           ///< nested re-solves per target
};

/// Cumulative engine statistics (lifetime of the engine = one cip::Solver).
struct CutSepaStats {
    std::int64_t rounds = 0;         ///< beginRound calls
    std::int64_t flowSolves = 0;     ///< max-flow computations (incl. nested)
    std::int64_t augmentations = 0;  ///< augmenting paths found in the kernel
    std::int64_t cutsFound = 0;      ///< violated cuts emitted
    std::int64_t nestedCuts = 0;     ///< cuts found at nested depth >= 1
    std::int64_t backCuts = 0;       ///< sink-side (back) cuts emitted
    std::int64_t warmStarts = 0;     ///< targets warm-started from a prior flow
    int maxNestedDepth = 0;          ///< deepest nested re-solve chain
};

/// One violated Steiner cut: the arc variables crossing it (coefficient 1
/// each, row sense ">= 1") plus its activity at the separating LP point.
struct SteinerCut {
    std::vector<int> vars;
    double lpActivity = 0.0;
};

class CutSeparationEngine {
public:
    explicit CutSeparationEngine(const SapInstance& inst);

    /// Start a separation round at LP point `x`: refresh all arc capacities
    /// in place (max(0, x) plus creep epsilon) and drop the retained flow.
    void beginRound(const std::vector<double>& x, const CutSepaConfig& cfg);

    /// Separate cuts for `target` (a terminal, or a branching-required
    /// vertex). Appends at most `budget` violated cuts to `out`; returns
    /// the number appended. Must be called between beginRound calls.
    int separateTarget(int target, int budget, std::vector<SteinerCut>& out);

    /// Order targets by LP in-flow deficit (1 - inflow), largest first —
    /// the most-violated targets get the budget before it runs out.
    std::vector<int> orderByDeficit(const std::vector<int>& targets) const;

    /// Max-flow value of the last separateTarget call (test hook: equals
    /// the cold per-target max flow when nested cuts are off).
    double lastFlowValue() const { return flowValue_; }

    const CutSepaStats& stats() const { return stats_; }
    const MaxFlow& kernel() const { return mf_; }

private:
    /// Extract the cut induced by a residual side set; `fromSource` picks
    /// delta+(S) (source side) vs delta-(T) (sink side).
    SteinerCut extractCut(const std::vector<char>& side, bool fromSource) const;
    bool emitIfNew(SteinerCut cut, std::vector<SteinerCut>& out,
                   std::vector<std::vector<int>>& seen, bool isBackCut,
                   int depth);
    /// Undo the previous target's nested-cut saturation (restore true
    /// capacities, drop the now-infeasible retained flow).
    void restoreRaised();

    const SapInstance& inst_;
    MaxFlow mf_;
    std::vector<int> tail_, head_;  ///< per model var: arc endpoints
    const std::vector<double>* x_ = nullptr;  ///< current LP point
    CutSepaConfig cfg_;
    double creepEps_ = 0.0;
    std::vector<int> raised_;  ///< vars saturated for the current target
    int lastSink_ = -1;      ///< sink of the retained flow (-1: none)
    double flowValue_ = 0.0; ///< value of the retained flow
    std::vector<char> side_; ///< reusable reachability scratch
    CutSepaStats stats_;
};

}  // namespace steiner
