#include "steiner/stpmodel.hpp"

#include <cmath>
#include <queue>

#include "steiner/dualascent.hpp"

namespace steiner {

SapInstance buildSapInstance(Graph reducedGraph, const ReductionStats& red,
                             int maxInitialCuts) {
    SapInstance inst;
    inst.graph = std::move(reducedGraph);
    inst.fixedCost = red.fixedCost;
    inst.fixedOriginalEdges = red.fixedOriginalEdges;
    const Graph& g = inst.graph;
    inst.root = g.rootTerminal();
    inst.arcVar.assign(2 * static_cast<std::size_t>(g.numEdges()), -1);
    if (inst.trivial()) return inst;

    bool integralCosts = true;
    // Variables: one per arc, skipping arcs entering the root.
    for (int e = 0; e < g.numEdges(); ++e) {
        const Edge& ed = g.edge(e);
        if (ed.deleted) continue;
        if (std::fabs(ed.cost - std::round(ed.cost)) > 1e-9)
            integralCosts = false;
        if (ed.v != inst.root) {
            inst.arcVar[2 * e] =
                inst.model.addVar(ed.cost, 0.0, 1.0, true);
            inst.varArc.push_back(2 * e);
        }
        if (ed.u != inst.root) {
            inst.arcVar[2 * e + 1] =
                inst.model.addVar(ed.cost, 0.0, 1.0, true);
            inst.varArc.push_back(2 * e + 1);
        }
    }
    inst.model.objOffset = inst.fixedCost;

    auto inArcsOf = [&](int v) {
        std::vector<std::pair<int, double>> coefs;
        for (int e : g.incident(v)) {
            if (g.edge(e).deleted) continue;
            const int a = (g.edge(e).u == v) ? 2 * e + 1 : 2 * e;  // * -> v
            if (inst.arcVar[a] >= 0) coefs.emplace_back(inst.arcVar[a], 1.0);
        }
        return coefs;
    };
    auto outArcsOf = [&](int v) {
        std::vector<std::pair<int, double>> coefs;
        for (int e : g.incident(v)) {
            if (g.edge(e).deleted) continue;
            const int a = (g.edge(e).u == v) ? 2 * e : 2 * e + 1;  // v -> *
            if (inst.arcVar[a] >= 0) coefs.emplace_back(inst.arcVar[a], 1.0);
        }
        return coefs;
    };

    for (int v = 0; v < g.numVertices(); ++v) {
        if (!g.vertexAlive(v) || v == inst.root) continue;
        auto in = inArcsOf(v);
        if (in.empty()) continue;
        if (g.isTerminal(v)) {
            // Non-root terminal: exactly one incoming arc.
            inst.model.addLinear(cip::Row(in, 1.0, 1.0));
        } else {
            // In-degree <= 1.
            inst.model.addLinear(cip::Row(in, -cip::kInf, 1.0));
            // Flow balance (5): in <= out.
            auto out = outArcsOf(v);
            std::vector<std::pair<int, double>> coefs = in;
            for (auto& [var, c] : out) coefs.emplace_back(var, -c);
            inst.model.addLinear(cip::Row(std::move(coefs), -cip::kInf, 0.0));
        }
    }

    // Initial cut rows from dual ascent.
    DualAscentResult da = dualAscent(g, inst.root, maxInitialCuts);
    if (!da.disconnected) {
        inst.dualAscentBound = da.lowerBound + inst.fixedCost;
        for (const auto& cut : da.cuts) {
            std::vector<std::pair<int, double>> coefs;
            for (int a : cut)
                if (inst.arcVar[a] >= 0)
                    coefs.emplace_back(inst.arcVar[a], 1.0);
            if (!coefs.empty())
                inst.model.addLinear(cip::Row(std::move(coefs), 1.0, cip::kInf));
        }
    }
    (void)integralCosts;  // exposed via params by the caller if desired
    return inst;
}

std::vector<double> treeToModelSolution(const SapInstance& inst,
                                        const std::vector<int>& treeEdges) {
    std::vector<double> x(inst.model.numVars(), 0.0);
    const Graph& g = inst.graph;
    // Orient from the root with a BFS over the tree's adjacency.
    std::vector<std::vector<int>> nbr(g.numVertices());
    for (int e : treeEdges) {
        nbr[g.edge(e).u].push_back(e);
        nbr[g.edge(e).v].push_back(e);
    }
    std::vector<bool> seen(g.numVertices(), false);
    std::queue<int> q;
    q.push(inst.root);
    seen[inst.root] = true;
    while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (int e : nbr[v]) {
            const int w = g.edge(e).other(v);
            if (seen[w]) continue;
            seen[w] = true;
            const int a = (g.edge(e).u == v) ? 2 * e : 2 * e + 1;  // v -> w
            if (inst.arcVar[a] >= 0) x[inst.arcVar[a]] = 1.0;
            q.push(w);
        }
    }
    return x;
}

std::vector<int> modelSolutionToTree(const SapInstance& inst,
                                     const std::vector<double>& x) {
    std::vector<int> edges;
    std::vector<bool> used(inst.graph.numEdges(), false);
    for (std::size_t var = 0; var < inst.varArc.size(); ++var) {
        if (x[var] > 0.5) {
            const int e = inst.varArc[var] / 2;
            if (!used[e]) {
                used[e] = true;
                edges.push_back(e);
            }
        }
    }
    return edges;
}

std::vector<int> toOriginalEdges(const SapInstance& inst,
                                 const std::vector<int>& reducedEdges) {
    std::vector<int> out = inst.fixedOriginalEdges;
    for (int e : reducedEdges)
        for (int o : inst.graph.edge(e).origin) out.push_back(o);
    return out;
}

}  // namespace steiner
