// Instance generators for the PUC benchmark families plus SteinLib .stp I/O.
//
// The PUC set (Rosseti et al. 2001) is synthetic by construction; these
// generators reproduce the three families' structure at parametric sizes
// (see DESIGN.md's substitution table):
//   hc — hypercube graphs, terminals = even-parity vertices,
//        unit (u) or perturbed (p) costs;
//   cc — "code covering" Hamming graphs over a q-ary alphabet with randomly
//        chosen codeword terminals;
//   bip — sparse bipartite-flavored instances with a terminal layer and a
//        Steiner-vertex layer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "steiner/graph.hpp"

namespace steiner {

/// hc<d>{u|p}: d-dimensional hypercube; 2^d vertices, d*2^(d-1) edges.
Graph genHypercube(int dim, bool perturbedCosts, std::uint64_t seed = 1);

/// cc<d>-<a>{u|p}: Hamming graph H(d, a); a^d vertices; terminals are a
/// random "code" of roughly |V|/4 vertices.
Graph genCodeCover(int dim, int alphabet, bool perturbedCosts,
                   std::uint64_t seed = 1);

/// bip<nT>_<nS>{u|p}: terminal layer of nT vertices, Steiner layer of nS
/// vertices, each terminal linked to `degree` random Steiner vertices and
/// the Steiner layer connected by a sparse random subgraph.
Graph genBipartite(int numTerminals, int numSteiner, int degree,
                   bool perturbedCosts, std::uint64_t seed = 1);

/// Random geometric instance (for tests): n points in the unit square,
/// edges within radius, k random terminals, Euclidean costs.
Graph genGeometric(int n, int k, double radius, std::uint64_t seed = 1);

/// Grid instance: w x h grid with unit costs and k random terminals.
Graph genGrid(int w, int h, int k, std::uint64_t seed = 1);

/// SteinLib .stp format.
bool writeStp(std::ostream& os, const Graph& g);
std::optional<Graph> readStp(std::istream& is);
bool writeStpFile(const std::string& path, const Graph& g);
std::optional<Graph> readStpFile(const std::string& path);

}  // namespace steiner
