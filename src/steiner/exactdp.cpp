#include "steiner/exactdp.hpp"

#include <queue>
#include <vector>

namespace steiner {

std::optional<double> steinerDpOptimal(const Graph& g, int maxTerminals) {
    const std::vector<int> terms = g.terminals();
    const int t = static_cast<int>(terms.size());
    if (t > maxTerminals) return std::nullopt;
    if (t <= 1) return 0.0;
    const int n = g.numVertices();
    // dp[S][v]: min cost of a tree connecting terminal subset S (over the
    // first t-1 terminals) together with vertex v.
    const int full = (1 << (t - 1)) - 1;
    std::vector<std::vector<double>> dp(
        full + 1, std::vector<double>(n, kInfCost));

    using QI = std::pair<double, int>;
    auto relax = [&](std::vector<double>& d) {
        // Multi-source Dijkstra completing dp[S][*] over graph edges.
        std::priority_queue<QI, std::vector<QI>, std::greater<>> q;
        for (int v = 0; v < n; ++v)
            if (d[v] < kInfCost) q.push({d[v], v});
        while (!q.empty()) {
            auto [dist, v] = q.top();
            q.pop();
            if (dist > d[v]) continue;
            for (int e : g.incident(v)) {
                const Edge& ed = g.edge(e);
                if (ed.deleted) continue;
                const int w = ed.other(v);
                if (dist + ed.cost < d[w] - 1e-12) {
                    d[w] = dist + ed.cost;
                    q.push({d[w], w});
                }
            }
        }
    };

    // Singletons.
    for (int i = 0; i < t - 1; ++i) {
        const int s = 1 << i;
        dp[s][terms[i]] = 0.0;
        relax(dp[s]);
    }
    // Larger subsets: merge two sub-trees at v, then re-relax.
    for (int s = 1; s <= full; ++s) {
        if ((s & (s - 1)) == 0) continue;  // singleton: done
        auto& d = dp[s];
        for (int sub = (s - 1) & s; sub > 0; sub = (sub - 1) & s) {
            const int rest = s ^ sub;
            if (sub < rest) continue;  // each split once
            const auto& a = dp[sub];
            const auto& b = dp[rest];
            for (int v = 0; v < n; ++v) {
                if (a[v] < kInfCost && b[v] < kInfCost) {
                    const double c = a[v] + b[v];
                    if (c < d[v]) d[v] = c;
                }
            }
        }
        relax(d);
    }
    const double ans = dp[full][terms[t - 1]];
    if (ans >= kInfCost) return std::nullopt;
    return ans;
}

}  // namespace steiner
