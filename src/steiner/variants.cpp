#include "steiner/variants.hpp"

#include <functional>

#include "steiner/dualascent.hpp"
#include "steiner/plugins.hpp"

namespace steiner {

namespace {

/// Generalized SAP model builder: per-arc costs and per-arc usability on an
/// (already gadget-augmented) graph. Structure matches buildSapInstance;
/// dual-ascent rows are included because directed Steiner cut rows are
/// structurally valid regardless of the cost function.
SapInstance buildGeneralSap(
    Graph g, double fixedOffset,
    const std::function<double(const Graph&, int e, int dir)>& arcCost,
    const std::function<bool(const Graph&, int e, int dir)>& arcAllowed) {
    SapInstance inst;
    inst.graph = std::move(g);
    inst.fixedCost = fixedOffset;
    const Graph& gr = inst.graph;
    inst.root = gr.rootTerminal();
    inst.arcVar.assign(2 * static_cast<std::size_t>(gr.numEdges()), -1);
    if (inst.trivial()) return inst;

    for (int e = 0; e < gr.numEdges(); ++e) {
        const Edge& ed = gr.edge(e);
        if (ed.deleted) continue;
        for (int dir = 0; dir < 2; ++dir) {
            const int head = dir == 0 ? ed.v : ed.u;
            if (head == inst.root) continue;
            if (!arcAllowed(gr, e, dir)) continue;
            inst.arcVar[2 * e + dir] =
                inst.model.addVar(arcCost(gr, e, dir), 0.0, 1.0, true);
            inst.varArc.push_back(2 * e + dir);
        }
    }
    inst.model.objOffset = fixedOffset;

    auto arcsOf = [&](int v, bool incoming) {
        std::vector<std::pair<int, double>> coefs;
        for (int e : gr.incident(v)) {
            if (gr.edge(e).deleted) continue;
            const bool uSide = gr.edge(e).u == v;
            // incoming: * -> v, i.e. dir 1 if v == u else dir 0.
            const int dir = (uSide == incoming) ? 1 : 0;
            const int var = inst.arcVar[2 * e + dir];
            if (var >= 0) coefs.emplace_back(var, 1.0);
        }
        return coefs;
    };

    for (int v = 0; v < gr.numVertices(); ++v) {
        if (!gr.vertexAlive(v) || v == inst.root) continue;
        auto in = arcsOf(v, true);
        if (in.empty()) continue;
        if (gr.isTerminal(v)) {
            inst.model.addLinear(cip::Row(in, 1.0, 1.0));
        } else {
            inst.model.addLinear(cip::Row(in, -cip::kInf, 1.0));
            auto out = arcsOf(v, false);
            std::vector<std::pair<int, double>> coefs = in;
            for (auto& [var, c] : out) coefs.emplace_back(var, -c);
            inst.model.addLinear(cip::Row(std::move(coefs), -cip::kInf, 0.0));
        }
    }

    DualAscentResult da = dualAscent(gr, inst.root, 256);
    if (!da.disconnected) {
        for (const auto& cut : da.cuts) {
            std::vector<std::pair<int, double>> coefs;
            for (int a : cut)
                if (inst.arcVar[a] >= 0)
                    coefs.emplace_back(inst.arcVar[a], 1.0);
            if (!coefs.empty())
                inst.model.addLinear(
                    cip::Row(std::move(coefs), 1.0, cip::kInf));
        }
    }
    return inst;
}

}  // namespace

SapInstance buildPrizeCollectingSap(const PrizeCollectingProblem& prob) {
    Graph g = prob.graph;
    for (int v = 0; v < g.numVertices(); ++v) g.setTerminal(v, false);
    const int baseEdges = g.numEdges();
    // Gadgets: terminal t_v reachable via v (collect, cost 0) or directly
    // from the root (forfeit, cost p_v).
    std::vector<int> gadgetOf;  // vertex index of t_v per gadget edge pair
    for (int v = 0; v < prob.graph.numVertices(); ++v) {
        if (v == prob.root || prob.prize[v] <= 0.0) continue;
        const int tv = g.addVertex();
        g.setTerminal(tv, true);
        g.addEdge(v, tv, 0.0);
        g.addEdge(prob.root, tv, prob.prize[v]);
        gadgetOf.push_back(tv);
    }
    // Make the root a terminal *after* gadget creation and force it to be
    // the arborescence root (rootTerminal() picks the smallest index; the
    // root may not be vertex 0, so mark only it among original vertices).
    g.setTerminal(prob.root, true);
    const int numOrig = prob.graph.numVertices();
    auto allowed = [numOrig](const Graph& gg, int e, int dir) {
        const Edge& ed = gg.edge(e);
        const int tail = dir == 0 ? ed.u : ed.v;
        // Gadget terminals are pure sinks.
        return tail < numOrig;
    };
    auto cost = [](const Graph& gg, int e, int) { return gg.edge(e).cost; };
    SapInstance inst = buildGeneralSap(std::move(g), 0.0, cost, allowed);
    // Root selection: rootTerminal() returns the smallest-index terminal,
    // which is prob.root since gadget vertices come after all originals and
    // no other original vertex is a terminal.
    (void)baseEdges;
    return inst;
}

SapInstance buildNodeWeightedSap(const NodeWeightedProblem& prob) {
    Graph g = prob.graph;
    const int root = g.rootTerminal();
    double offset = root >= 0 ? prob.nodeCost[root] : 0.0;
    auto cost = [&prob](const Graph& gg, int e, int dir) {
        const Edge& ed = gg.edge(e);
        const int head = dir == 0 ? ed.v : ed.u;
        return ed.cost + prob.nodeCost[head];
    };
    auto allowed = [](const Graph&, int, int) { return true; };
    return buildGeneralSap(std::move(g), offset, cost, allowed);
}

SapInstance buildDegreeConstrainedSap(const DegreeConstrainedProblem& prob) {
    Graph g = prob.graph;
    auto cost = [](const Graph& gg, int e, int) { return gg.edge(e).cost; };
    auto allowed = [](const Graph&, int, int) { return true; };
    SapInstance inst = buildGeneralSap(std::move(g), 0.0, cost, allowed);
    // Undirected degree rows: every incident arc (either direction) counts.
    for (int v = 0; v < inst.graph.numVertices(); ++v) {
        if (v >= static_cast<int>(prob.maxDegree.size())) break;
        if (prob.maxDegree[v] <= 0) continue;
        std::vector<std::pair<int, double>> coefs;
        for (int e : inst.graph.incident(v)) {
            if (inst.graph.edge(e).deleted) continue;
            for (int dir = 0; dir < 2; ++dir) {
                const int var = inst.arcVar[2 * e + dir];
                if (var >= 0) coefs.emplace_back(var, 1.0);
            }
        }
        if (!coefs.empty())
            inst.model.addLinear(cip::Row(std::move(coefs), -cip::kInf,
                                          double(prob.maxDegree[v])));
    }
    return inst;
}

SapInstance buildGroupSteinerSap(const GroupSteinerProblem& prob) {
    Graph g = prob.graph;
    for (int v = 0; v < g.numVertices(); ++v) g.setTerminal(v, false);
    const int numOrig = g.numVertices();
    // One gadget terminal per group, linked by zero-cost edges.
    std::vector<int> gadget;
    for (const auto& group : prob.groups) {
        const int tg = g.addVertex();
        g.setTerminal(tg, true);
        for (int v : group) g.addEdge(v, tg, 0.0);
        gadget.push_back(tg);
    }
    if (gadget.empty()) {
        SapInstance inst;
        inst.graph = std::move(g);
        return inst;
    }
    const int root = gadget[0];  // smallest-index terminal == group 0 gadget
    auto cost = [](const Graph& gg, int e, int) { return gg.edge(e).cost; };
    auto allowed = [numOrig, root](const Graph& gg, int e, int dir) {
        const Edge& ed = gg.edge(e);
        const int tail = dir == 0 ? ed.u : ed.v;
        // Non-root gadget terminals are pure sinks; the root gadget may
        // only be left (it has no incoming arcs anyway).
        if (tail >= numOrig && tail != root) return false;
        return true;
    };
    SapInstance inst = buildGeneralSap(std::move(g), 0.0, cost, allowed);
    // The virtual root must pick exactly one group-0 representative, or the
    // "tree" would be a forest in the original graph.
    std::vector<std::pair<int, double>> rootOut;
    for (int e : inst.graph.incident(root)) {
        if (inst.graph.edge(e).deleted) continue;
        for (int dir = 0; dir < 2; ++dir) {
            const int var = inst.arcVar[2 * e + dir];
            if (var >= 0) rootOut.emplace_back(var, 1.0);
        }
    }
    if (!rootOut.empty())
        inst.model.addLinear(cip::Row(std::move(rootOut), 1.0, 1.0));
    return inst;
}

SteinerResult solveVariant(const SapInstance& inst,
                           const cip::ParamSet& params) {
    SteinerResult res;
    if (inst.trivial()) {
        res.status = cip::Status::Optimal;
        res.cost = inst.fixedCost;
        res.dualBound = inst.fixedCost;
        res.solvedByPresolve = true;
        return res;
    }
    cip::Solver solver;
    solver.setModel(inst.model);
    solver.params().merge(params);
    installStpPlugins(solver, inst);
    // Variant gadget graphs break the plain-SPG assumptions of the
    // reduction package; exactness comes from branch-and-cut alone.
    solver.params().setBool("stp/layeredpresolve", false);
    solver.params().setInt("stp/redprop/freq", 0);
    res.status = solver.solve();
    res.dualBound = solver.dualBound();
    res.stats = solver.stats();
    if (solver.incumbent().valid()) {
        res.cost = solver.incumbent().obj;
        res.originalEdges = modelSolutionToTree(inst, solver.incumbent().x);
    }
    return res;
}

}  // namespace steiner
