// Solver-lifetime dominance-filtered cut pool for directed Steiner cuts.
//
// Every cut the separation engine emits is a 0/1 row "sum of arc vars >= 1".
// For two such rows P and C with support(P) a subset of support(C), P implies
// C (any nonnegative point with sum over P >= 1 has sum over C >= 1), so C is
// redundant whenever P is present. The engine's per-round `seen` list only
// dedups within one beginRound; across rounds and nodes the LP used to grow
// append-only. This pool is the cross-round memory:
//
//   - exact duplicates of a pooled cut are rejected (Verdict::Duplicate);
//   - an incoming cut whose support is a strict superset of a pooled cut's
//     support is rejected (Verdict::Dominated);
//   - a pooled cut whose support is a strict superset of an incoming cut's
//     support is evicted (the caller retires its LP row — replacing a weaker
//     row by a stronger one can only tighten the relaxation).
//
// The pool is keyed by the sorted support signature and maintains a support
// index (var -> pooled cut ids), so one offer() costs
// O(|support| + sum of index-list lengths touched), i.e. proportional to the
// candidates actually sharing a variable instead of the whole pool.
//
// Lifecycle contract with the owner (StpConshdlr): the pool mirrors exactly
// the cuts currently alive in the cip::Solver (pending or in the LP). When
// the solver ages a cut out of its LP pool it reports the cut's token back,
// and the owner must call remove() so a later re-violated cut can be
// re-admitted. Only globally valid cuts may be pooled — node-local rows
// (vertex-branching cuts) are only valid while their vertex is required and
// must never dominate a global cut.
// Cross-solver sharing: every admission is stamped and logged, and
// exportNewAdmitted() drains the log into a ug::CutBundle (delta-encoded
// var-id sets + RHS class — the solver-independent form that crosses rank
// boundaries). cutbundle.hpp is header-only, so the steiner library encodes
// bundles without linking the ug library.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ug/cutbundle.hpp"

namespace steiner {

/// Lifetime counters of one CutPool (lifetime of one cip::Solver).
struct CutPoolStats {
    std::int64_t offered = 0;            ///< offer() calls
    std::int64_t admitted = 0;           ///< cuts registered in the pool
    std::int64_t dupRejected = 0;        ///< exact duplicates rejected
    std::int64_t dominatedRejected = 0;  ///< supersets of a pooled cut rejected
    std::int64_t dominatedEvicted = 0;   ///< pooled cuts evicted by a subset cut
    std::int64_t untracked = 0;          ///< support wider than maxSupport
};

class CutPool {
public:
    enum class Verdict {
        Admitted,   ///< registered; id() assigned, dominated entries evicted
        Duplicate,  ///< identical support already pooled
        Dominated,  ///< a pooled cut's support is a subset — incoming is weaker
        Untracked,  ///< support wider than maxSupport; usable but not pooled
    };

    explicit CutPool(int numVars) : index_(numVars > 0 ? numVars : 0) {}

    /// Only cuts with at most `m` support entries are tracked (0 = no cap).
    /// Wider cuts return Untracked: the caller may still add them to the LP,
    /// the pool just refuses to spend index memory on rows that dominance
    /// will almost never fire on.
    void setMaxSupport(int m) { maxSupport_ = m; }

    /// Offer a cut's support (model variable ids, any order, duplicates
    /// tolerated). On Admitted, `*id` (if non-null) receives the pool id and
    /// `*evicted` (if non-null) the ids of pooled cuts the new cut dominates
    /// — those are already removed from the pool; the caller must retire
    /// their LP rows. On any rejection, `*id` is left untouched and
    /// `*evicted` comes back empty.
    Verdict offer(const std::vector<int>& support, int* id = nullptr,
                  std::vector<int>* evicted = nullptr);

    /// Drop a pooled cut (the solver aged its LP row out). Id may be reused
    /// by later admissions.
    void remove(int id);

    bool contains(int id) const {
        return id >= 0 && id < static_cast<int>(cuts_.size()) &&
               cuts_[static_cast<std::size_t>(id)].alive;
    }
    /// Sorted support of a pooled cut; only valid while contains(id).
    const std::vector<int>& support(int id) const {
        return cuts_[static_cast<std::size_t>(id)].vars;
    }
    std::size_t size() const { return alive_; }
    const CutPoolStats& stats() const { return stats_; }

    /// Serialize cuts admitted since the last call into `bundle` (consuming
    /// cursor over the admission log; at most `maxCuts` per call, the rest
    /// stays queued). Cuts evicted or removed before export are skipped —
    /// only supports still alive in the pool are worth shipping. Every
    /// pooled cut is a globally valid "sum >= 1" row, so everything exported
    /// is safe to share across ranks. Returns the number appended.
    int exportNewAdmitted(ug::CutBundle& bundle, int maxCuts);

private:
    struct Entry {
        std::vector<int> vars;  ///< sorted, unique support signature
        std::uint64_t stamp = 0;  ///< admission stamp (detects id reuse)
        bool alive = false;
    };

    void unindex(int id);

    std::vector<Entry> cuts_;
    std::vector<std::vector<int>> index_;  ///< var -> alive cut ids
    std::vector<int> freeIds_;             ///< recyclable entry slots
    // offer() scratch: per-cut-id touch counters, reset via touched_ after
    // each call so no O(pool) clearing happens per offer.
    std::vector<int> touchCount_;
    std::vector<int> touched_;
    std::vector<int> sorted_;  ///< reusable sorted-support buffer
    /// Admission log for exportNewAdmitted: (id, stamp) per admission; the
    /// stamp disambiguates recycled ids (an id re-admitted after eviction
    /// must not re-export the old entry's position twice).
    std::vector<std::pair<int, std::uint64_t>> admitLog_;
    std::size_t shareCursor_ = 0;
    std::uint64_t admitClock_ = 0;
    std::size_t alive_ = 0;
    int maxSupport_ = 0;
    CutPoolStats stats_;
};

}  // namespace steiner
