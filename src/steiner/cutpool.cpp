#include "steiner/cutpool.hpp"

#include <algorithm>

namespace steiner {

void CutPool::unindex(int id) {
    Entry& e = cuts_[static_cast<std::size_t>(id)];
    for (int v : e.vars) {
        auto& lst = index_[static_cast<std::size_t>(v)];
        lst.erase(std::remove(lst.begin(), lst.end(), id), lst.end());
    }
}

void CutPool::remove(int id) {
    if (!contains(id)) return;
    unindex(id);
    Entry& e = cuts_[static_cast<std::size_t>(id)];
    e.alive = false;
    e.vars.clear();
    e.vars.shrink_to_fit();
    freeIds_.push_back(id);
    --alive_;
}

CutPool::Verdict CutPool::offer(const std::vector<int>& support, int* id,
                                std::vector<int>* evicted) {
    if (evicted) evicted->clear();
    ++stats_.offered;

    sorted_.assign(support.begin(), support.end());
    std::sort(sorted_.begin(), sorted_.end());
    sorted_.erase(std::unique(sorted_.begin(), sorted_.end()), sorted_.end());
    if (sorted_.empty() ||
        (maxSupport_ > 0 &&
         static_cast<int>(sorted_.size()) > maxSupport_)) {
        ++stats_.untracked;
        return Verdict::Untracked;
    }
    const int n = static_cast<int>(sorted_.size());

    // Count, per pooled cut sharing at least one variable with the incoming
    // support C, how many of C's variables it contains. A pooled cut P with
    // count == |P| satisfies P subseteq C; with count == |C| it satisfies
    // C subseteq P. Supports are unique-element sets, so the counts are
    // exact. touchCount_ is kept all-zero between calls via touched_.
    touched_.clear();
    for (int v : sorted_) {
        if (v < 0 || v >= static_cast<int>(index_.size())) continue;
        for (int cid : index_[static_cast<std::size_t>(v)]) {
            if (touchCount_[static_cast<std::size_t>(cid)] == 0)
                touched_.push_back(cid);
            ++touchCount_[static_cast<std::size_t>(cid)];
        }
    }

    Verdict verdict = Verdict::Admitted;
    for (int cid : touched_) {
        const int common = touchCount_[static_cast<std::size_t>(cid)];
        const int psize =
            static_cast<int>(cuts_[static_cast<std::size_t>(cid)].vars.size());
        if (common == psize) {
            // P subseteq C: the pooled cut is at least as strong.
            verdict = (psize == n) ? Verdict::Duplicate : Verdict::Dominated;
            break;
        }
    }

    int newId = -1;
    if (verdict == Verdict::Admitted) {
        // Claim the new cut's slot *before* evicting, so an id freed by this
        // very call is never handed back as the id of the cut that evicted
        // it — callers observe evicted ids as dead after offer() returns.
        if (!freeIds_.empty()) {
            newId = freeIds_.back();
            freeIds_.pop_back();
        } else {
            newId = static_cast<int>(cuts_.size());
            cuts_.emplace_back();
            touchCount_.push_back(0);
        }
        // No pooled cut dominates C; evict every pooled strict superset of C.
        for (int cid : touched_) {
            const int common = touchCount_[static_cast<std::size_t>(cid)];
            const int psize = static_cast<int>(
                cuts_[static_cast<std::size_t>(cid)].vars.size());
            if (common == n && psize > n) {
                remove(cid);
                ++stats_.dominatedEvicted;
                if (evicted) evicted->push_back(cid);
            }
        }
    }

    for (int cid : touched_) touchCount_[static_cast<std::size_t>(cid)] = 0;

    if (verdict == Verdict::Duplicate) {
        ++stats_.dupRejected;
        return verdict;
    }
    if (verdict == Verdict::Dominated) {
        ++stats_.dominatedRejected;
        return verdict;
    }

    Entry& e = cuts_[static_cast<std::size_t>(newId)];
    e.vars = sorted_;
    e.stamp = ++admitClock_;
    e.alive = true;
    admitLog_.emplace_back(newId, e.stamp);
    for (int v : e.vars) {
        if (v >= static_cast<int>(index_.size()))
            index_.resize(static_cast<std::size_t>(v) + 1);
        if (v >= 0) index_[static_cast<std::size_t>(v)].push_back(newId);
    }
    ++alive_;
    ++stats_.admitted;
    if (id) *id = newId;
    return Verdict::Admitted;
}

int CutPool::exportNewAdmitted(ug::CutBundle& bundle, int maxCuts) {
    int appended = 0;
    while (shareCursor_ < admitLog_.size() && appended < maxCuts) {
        const auto [cid, stamp] = admitLog_[shareCursor_++];
        const Entry& e = cuts_[static_cast<std::size_t>(cid)];
        // Skip entries that died (or whose id was recycled by a *later*
        // admission — that one has its own log record) before export.
        if (!e.alive || e.stamp != stamp) continue;
        if (bundle.append(e.vars, /*rhsClass=*/1)) ++appended;
    }
    return appended;
}

}  // namespace steiner
