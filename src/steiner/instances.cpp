#include "steiner/instances.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>

namespace steiner {

namespace {

double drawCost(bool perturbed, std::mt19937_64& rng) {
    if (!perturbed) return 1.0;
    std::uniform_int_distribution<int> d(100, 110);
    return static_cast<double>(d(rng));
}

}  // namespace

Graph genHypercube(int dim, bool perturbedCosts, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    const int n = 1 << dim;
    Graph g(n);
    std::ostringstream name;
    name << "hc" << dim << (perturbedCosts ? "p" : "u");
    g.name = name.str();
    for (int v = 0; v < n; ++v)
        for (int b = 0; b < dim; ++b) {
            const int w = v ^ (1 << b);
            if (w > v) g.addEdge(v, w, drawCost(perturbedCosts, rng));
        }
    for (int v = 0; v < n; ++v)
        if (__builtin_popcount(static_cast<unsigned>(v)) % 2 == 0)
            g.setTerminal(v, true);
    return g;
}

Graph genCodeCover(int dim, int alphabet, bool perturbedCosts,
                   std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    int n = 1;
    for (int i = 0; i < dim; ++i) n *= alphabet;
    Graph g(n);
    std::ostringstream name;
    name << "cc" << dim << "-" << alphabet << (perturbedCosts ? "p" : "u");
    g.name = name.str();
    // Vertices are base-`alphabet` strings of length dim; edges connect
    // Hamming-distance-1 strings.
    std::vector<int> pow(dim + 1, 1);
    for (int i = 1; i <= dim; ++i) pow[i] = pow[i - 1] * alphabet;
    for (int v = 0; v < n; ++v) {
        for (int pos = 0; pos < dim; ++pos) {
            const int digit = (v / pow[pos]) % alphabet;
            for (int nd = digit + 1; nd < alphabet; ++nd) {
                const int w = v + (nd - digit) * pow[pos];
                g.addEdge(v, w, drawCost(perturbedCosts, rng));
            }
        }
    }
    // Random "codewords" as terminals: ~|V|/4, at least 2.
    std::vector<int> verts(n);
    for (int v = 0; v < n; ++v) verts[v] = v;
    std::shuffle(verts.begin(), verts.end(), rng);
    const int k = std::max(2, n / 4);
    for (int i = 0; i < k; ++i) g.setTerminal(verts[i], true);
    return g;
}

Graph genBipartite(int numTerminals, int numSteiner, int degree,
                   bool perturbedCosts, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    const int n = numTerminals + numSteiner;
    Graph g(n);
    std::ostringstream name;
    name << "bip" << numTerminals << "_" << numSteiner
         << (perturbedCosts ? "p" : "u");
    g.name = name.str();
    std::uniform_int_distribution<int> pickS(numTerminals, n - 1);
    // Terminal -> Steiner links.
    for (int t = 0; t < numTerminals; ++t) {
        g.setTerminal(t, true);
        std::vector<bool> used(n, false);
        for (int d = 0; d < degree; ++d) {
            int s = pickS(rng);
            int guard = 0;
            while (used[s] && guard++ < 50) s = pickS(rng);
            if (used[s]) continue;
            used[s] = true;
            g.addEdge(t, s, drawCost(perturbedCosts, rng));
        }
    }
    // Sparse Steiner-layer ring + random chords keep it connected.
    for (int s = numTerminals; s < n; ++s) {
        const int nxt = (s + 1 - numTerminals) % numSteiner + numTerminals;
        if (nxt != s) g.addEdge(s, nxt, drawCost(perturbedCosts, rng));
    }
    const int chords = numSteiner * (degree - 1) / 2;
    for (int c = 0; c < chords; ++c) {
        const int a = pickS(rng);
        const int b = pickS(rng);
        if (a != b) g.addEdge(a, b, drawCost(perturbedCosts, rng));
    }
    return g;
}

Graph genGeometric(int n, int k, double radius, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> coord(0.0, 1.0);
    std::vector<double> x(n), y(n);
    for (int i = 0; i < n; ++i) {
        x[i] = coord(rng);
        y[i] = coord(rng);
    }
    Graph g(n);
    g.name = "geometric";
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) {
            const double d = std::hypot(x[i] - x[j], y[i] - y[j]);
            if (d <= radius) g.addEdge(i, j, d);
        }
    std::vector<int> verts(n);
    for (int i = 0; i < n; ++i) verts[i] = i;
    std::shuffle(verts.begin(), verts.end(), rng);
    for (int i = 0; i < std::min(k, n); ++i) g.setTerminal(verts[i], true);
    return g;
}

Graph genGrid(int w, int h, int k, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    const int n = w * h;
    Graph g(n);
    g.name = "grid";
    auto id = [w](int r, int c) { return r * w + c; };
    for (int r = 0; r < h; ++r)
        for (int c = 0; c < w; ++c) {
            if (c + 1 < w) g.addEdge(id(r, c), id(r, c + 1), 1.0);
            if (r + 1 < h) g.addEdge(id(r, c), id(r + 1, c), 1.0);
        }
    std::vector<int> verts(n);
    for (int i = 0; i < n; ++i) verts[i] = i;
    std::shuffle(verts.begin(), verts.end(), rng);
    for (int i = 0; i < std::min(k, n); ++i) g.setTerminal(verts[i], true);
    return g;
}

bool writeStp(std::ostream& os, const Graph& g) {
    os << "33D32945 STP File, STP Format Version 1.0\n";
    os << "SECTION Comment\n";
    os << "Name \"" << (g.name.empty() ? "unnamed" : g.name) << "\"\n";
    os << "Creator \"ugcop\"\n";
    os << "END\n\n";
    os << "SECTION Graph\n";
    os << "Nodes " << g.numVertices() << "\n";
    os << "Edges " << g.numActiveEdges() << "\n";
    for (int e = 0; e < g.numEdges(); ++e) {
        const Edge& ed = g.edge(e);
        if (ed.deleted) continue;
        os << "E " << ed.u + 1 << " " << ed.v + 1 << " " << ed.cost << "\n";
    }
    os << "END\n\n";
    os << "SECTION Terminals\n";
    auto terms = g.terminals();
    os << "Terminals " << terms.size() << "\n";
    for (int t : terms) os << "T " << t + 1 << "\n";
    os << "END\n\nEOF\n";
    return static_cast<bool>(os);
}

std::optional<Graph> readStp(std::istream& is) {
    std::string line;
    Graph g;
    bool haveGraph = false;
    std::string section;
    int expectNodes = -1;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word)) continue;
        if (word == "SECTION") {
            ls >> section;
            continue;
        }
        if (word == "END") {
            section.clear();
            continue;
        }
        if (word == "EOF") break;
        if (section == "Graph") {
            if (word == "Nodes") {
                ls >> expectNodes;
                if (expectNodes <= 0) return std::nullopt;
                g.reset(expectNodes);
                haveGraph = true;
            } else if (word == "E" || word == "A") {
                int u, v;
                double c;
                if (!(ls >> u >> v >> c) || !haveGraph) return std::nullopt;
                if (u < 1 || v < 1 || u > expectNodes || v > expectNodes)
                    return std::nullopt;
                if (u != v) g.addEdge(u - 1, v - 1, c);
            }
        } else if (section == "Terminals") {
            if (word == "T") {
                int t;
                if (!(ls >> t) || !haveGraph) return std::nullopt;
                if (t < 1 || t > expectNodes) return std::nullopt;
                g.setTerminal(t - 1, true);
            }
        } else if (section == "Comment") {
            if (word == "Name") {
                std::string rest;
                std::getline(ls, rest);
                // Strip quotes/spaces.
                std::string nm;
                for (char ch : rest)
                    if (ch != '"' && ch != ' ') nm += ch;
                g.name = nm;
            }
        }
    }
    if (!haveGraph) return std::nullopt;
    return g;
}

bool writeStpFile(const std::string& path, const Graph& g) {
    std::ofstream out(path);
    if (!out) return false;
    return writeStp(out, g);
}

std::optional<Graph> readStpFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    return readStp(in);
}

}  // namespace steiner
