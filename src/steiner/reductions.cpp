#include "steiner/reductions.hpp"

#include <algorithm>

#include "steiner/dualascent.hpp"
#include "steiner/heuristics.hpp"
#include "steiner/shortest.hpp"

namespace steiner {

namespace {

/// Delete dominated parallel edges at vertex v (keep cheapest per neighbor).
long long dedupParallel(Graph& g, int v) {
    long long deleted = 0;
    // neighbor -> best edge
    std::vector<std::pair<int, int>> best;  // (neighbor, edge)
    std::vector<int> inc = g.incident(v);
    for (int e : inc) {
        if (g.edge(e).deleted) continue;
        const int w = g.edge(e).other(v);
        bool found = false;
        for (auto& [nb, be] : best) {
            if (nb == w) {
                found = true;
                if (g.edge(e).cost < g.edge(be).cost) {
                    g.deleteEdge(be);
                    be = e;
                } else {
                    g.deleteEdge(e);
                }
                ++deleted;
                break;
            }
        }
        if (!found) best.emplace_back(w, e);
    }
    return deleted;
}

}  // namespace

void degreeTests(Graph& g, ReductionStats& stats) {
    bool changed = true;
    while (changed) {
        changed = false;
        for (int v = 0; v < g.numVertices(); ++v) {
            if (!g.vertexAlive(v)) continue;
            stats.edgesDeleted += dedupParallel(g, v);
            const int deg = g.degree(v);
            if (g.isTerminal(v)) {
                if (deg == 1 && g.numTerminals() > 1) {
                    // The unique edge of a degree-1 terminal is in every
                    // feasible solution: contract and fix it.
                    int e = -1;
                    for (int cand : g.incident(v))
                        if (!g.edge(cand).deleted) {
                            e = cand;
                            break;
                        }
                    const int to = g.edge(e).other(v);
                    stats.fixedCost += g.edge(e).cost;
                    for (int o : g.edge(e).origin)
                        stats.fixedOriginalEdges.push_back(o);
                    g.contractEdge(e, to);
                    ++stats.verticesRemoved;
                    ++stats.edgesDeleted;
                    changed = true;
                }
                continue;
            }
            if (deg == 0) {
                g.deleteVertex(v);
                ++stats.verticesRemoved;
                changed = true;
            } else if (deg == 1) {
                // Dangling non-terminal: never useful.
                for (int e : std::vector<int>(g.incident(v)))
                    if (!g.edge(e).deleted) g.deleteEdge(e);
                g.deleteVertex(v);
                ++stats.verticesRemoved;
                ++stats.edgesDeleted;
                changed = true;
            } else if (deg == 2) {
                // Path-through vertex: replace the two edges by one.
                int e1 = -1, e2 = -1;
                for (int e : g.incident(v)) {
                    if (g.edge(e).deleted) continue;
                    (e1 < 0 ? e1 : e2) = e;
                }
                const int a = g.edge(e1).other(v);
                const int b = g.edge(e2).other(v);
                const double c = g.edge(e1).cost + g.edge(e2).cost;
                std::vector<int> origin = g.edge(e1).origin;
                origin.insert(origin.end(), g.edge(e2).origin.begin(),
                              g.edge(e2).origin.end());
                g.deleteEdge(e1);
                g.deleteEdge(e2);
                g.deleteVertex(v);
                stats.edgesDeleted += 2;
                ++stats.verticesRemoved;
                if (a != b) {
                    const int ne = g.addEdge(a, b, c);
                    g.edge(ne).origin = std::move(origin);
                    // New parallel edges are resolved on the next sweep.
                }
                changed = true;
            }
        }
    }
}

void sdTest(Graph& g, ReductionStats& stats, int scanLimit) {
    (void)scanLimit;
    const int m = g.numEdges();
    for (int e = 0; e < m; ++e) {
        if (g.edge(e).deleted) continue;
        const int u = g.edge(e).u;
        const int v = g.edge(e).v;
        const double c = g.edge(e).cost;
        SpResult sp = dijkstraCapped(g, u, c + 1e-9, e);
        if (sp.dist[v] <= c + 1e-9) {
            // An alternative u-v path of no greater cost exists, so some
            // optimal solution avoids e.
            g.deleteEdge(e);
            ++stats.edgesDeleted;
        }
    }
}

long long boundBasedTest(Graph& g, ReductionStats& stats, double upperBound,
                         bool useExtended) {
    if (upperBound >= kInfCost) return 0;
    DualAscentResult da = dualAscent(g);
    return boundBasedTestWithDa(g, stats, upperBound, useExtended, da);
}

long long boundBasedTestWithDa(Graph& g, ReductionStats& stats,
                               double upperBound, bool useExtended,
                               const DualAscentResult& da) {
    if (upperBound >= kInfCost) return 0;
    if (da.root < 0 || da.disconnected) return 0;
    const double lb = da.lowerBound;
    long long deleted = 0;

    // Distances from the root in the zero-rc graph would strengthen this;
    // the plain arc test is: using arc a costs at least lb + rc(a).
    auto minExtension = [&](int vertex, int fromVertex) {
        // Cheapest reduced cost of an arc leaving `vertex` not returning to
        // fromVertex (flow-balance: a used arc into a non-terminal must be
        // extended).
        double best = kInfCost;
        for (int e : g.incident(vertex)) {
            if (g.edge(e).deleted) continue;
            const int w = g.edge(e).other(vertex);
            if (w == fromVertex) continue;
            const int a = (g.edge(e).u == vertex) ? 2 * e : 2 * e + 1;
            best = std::min(best, da.redCost[a]);
        }
        return best == kInfCost ? 0.0 : best;
    };

    const int m = g.numEdges();
    const double slack = upperBound - lb;
    for (int e = 0; e < m; ++e) {
        if (g.edge(e).deleted) continue;
        const int u = g.edge(e).u;
        const int v = g.edge(e).v;
        double costUV = da.redCost[2 * e];      // u -> v
        double costVU = da.redCost[2 * e + 1];  // v -> u
        bool extendedUsed = false;
        if (useExtended) {
            // Arc u->v entering non-terminal v must be extended beyond v.
            if (!g.isTerminal(v)) {
                const double ext = minExtension(v, u);
                if (ext > 0) {
                    costUV += ext;
                    extendedUsed = true;
                }
            }
            if (!g.isTerminal(u)) {
                const double ext = minExtension(u, v);
                if (ext > 0) {
                    costVU += ext;
                    extendedUsed = true;
                }
            }
        }
        // The edge is only usable if one of its arcs is; delete when both
        // orientations exceed the primal bound. Strict inequality keeps at
        // least one optimal solution.
        if (costUV > slack + 1e-9 && costVU > slack + 1e-9) {
            g.deleteEdge(e);
            ++deleted;
            ++stats.edgesDeleted;
            if (extendedUsed) ++stats.extendedDeletions;
        }
    }
    return deleted;
}

ReductionStats presolve(Graph& g, int maxRounds, bool useExtended) {
    ReductionStats stats;
    for (int round = 0; round < maxRounds; ++round) {
        const long long before = stats.edgesDeleted + stats.verticesRemoved;
        degreeTests(g, stats);
        sdTest(g, stats);
        degreeTests(g, stats);
        if (g.numTerminals() > 1) {
            HeuristicSolution heur = primalHeuristic(g);
            if (heur.valid())
                boundBasedTest(g, stats, heur.cost, useExtended);
            degreeTests(g, stats);
        }
        if (stats.edgesDeleted + stats.verticesRemoved == before) break;
    }
    return stats;
}

}  // namespace steiner
