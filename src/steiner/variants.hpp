// Steiner problem variants, transformed to the Steiner arborescence problem
// (SAP) — the mechanism behind SCIP-Jack's versatility ("SCIP-Jack
// transforms all problem classes to the Steiner arborescence problem,
// sometimes with additional constraints"; it handled 10+ variants at the
// DIMACS Challenge). Implemented here:
//
//   * RPCSTP — rooted prize-collecting Steiner tree: pay edge costs, forfeit
//     the prize of every uncollected vertex. Transformation: per prized
//     vertex v a gadget terminal t_v with arcs v->t_v (cost 0) and
//     root->t_v (cost p_v); the reverse arcs are fixed to zero.
//   * NWSTP — node-weighted Steiner tree: entering vertex v costs an extra
//     w_v. Transformation: asymmetric arc costs c(u,v) + w_v.
//   * DCSTP — degree-constrained Steiner tree: per-vertex degree bounds as
//     additional linear rows on the SAP model.
//   * GSTP — group Steiner tree: connect at least one vertex of every
//     group. Transformation: a gadget terminal per group, linked to the
//     group members by zero-cost arcs (outgoing arcs fixed to zero so the
//     gadget cannot act as a shortcut).
//
// Variant instances skip the undirected reduction package (its tests assume
// plain SPG semantics); exactness comes from the branch-and-cut itself.
#pragma once

#include <vector>

#include "steiner/stpsolver.hpp"

namespace steiner {

/// Rooted prize-collecting: minimize tree cost + sum of forfeited prizes.
/// `prize[v] > 0` marks a prized vertex; `root` must be part of the tree.
struct PrizeCollectingProblem {
    Graph graph;                 ///< terminals in `graph` are ignored
    std::vector<double> prize;   ///< size numVertices
    int root = 0;
};
SapInstance buildPrizeCollectingSap(const PrizeCollectingProblem& prob);

/// Node-weighted: minimize edge costs + node weights of used vertices
/// (terminals' weights are always paid and enter the fixed offset).
struct NodeWeightedProblem {
    Graph graph;                 ///< with terminals set
    std::vector<double> nodeCost;///< size numVertices, >= 0
};
SapInstance buildNodeWeightedSap(const NodeWeightedProblem& prob);

/// Degree-constrained: a plain SPG plus degree(v) <= maxDegree[v].
struct DegreeConstrainedProblem {
    Graph graph;                 ///< with terminals set
    std::vector<int> maxDegree;  ///< size numVertices (<=0: unconstrained)
};
SapInstance buildDegreeConstrainedSap(const DegreeConstrainedProblem& prob);

/// Group Steiner: connect at least one member of every group.
struct GroupSteinerProblem {
    Graph graph;                 ///< terminals in `graph` are ignored
    std::vector<std::vector<int>> groups;
};
SapInstance buildGroupSteinerSap(const GroupSteinerProblem& prob);

/// Solve any variant instance sequentially with the standard plugin set.
SteinerResult solveVariant(const SapInstance& inst,
                           const cip::ParamSet& params = {});

}  // namespace steiner
