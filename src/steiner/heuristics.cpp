#include "steiner/heuristics.hpp"

#include <algorithm>
#include <queue>

#include "steiner/shortest.hpp"

namespace steiner {

namespace {

using QI = std::pair<double, int>;

/// TM from a single root using (possibly overridden) costs.
HeuristicSolution tmFromRoot(const Graph& g, int root,
                             const std::vector<double>* costOverride) {
    auto edgeCost = [&](int e) {
        return costOverride ? (*costOverride)[e] : g.edge(e).cost;
    };
    const std::vector<int> terms = g.terminals();
    HeuristicSolution sol;
    if (terms.empty()) {
        sol.cost = 0.0;
        return sol;
    }
    std::vector<bool> inTree(g.numVertices(), false);
    std::vector<bool> edgeInTree(g.numEdges(), false);
    inTree[root] = true;
    int connected = 1;

    std::vector<double> dist(g.numVertices());
    std::vector<int> pred(g.numVertices());
    while (connected < static_cast<int>(terms.size())) {
        // Multi-source Dijkstra from the current tree.
        std::fill(dist.begin(), dist.end(), kInfCost);
        std::fill(pred.begin(), pred.end(), -1);
        std::priority_queue<QI, std::vector<QI>, std::greater<>> q;
        for (int v = 0; v < g.numVertices(); ++v)
            if (inTree[v]) {
                dist[v] = 0.0;
                q.push({0.0, v});
            }
        int best = -1;
        while (!q.empty()) {
            auto [d, v] = q.top();
            q.pop();
            if (d > dist[v]) continue;
            if (g.isTerminal(v) && !inTree[v]) {
                best = v;
                break;
            }
            for (int e : g.incident(v)) {
                const Edge& ed = g.edge(e);
                if (ed.deleted) continue;
                const int w = ed.other(v);
                const double nd = d + edgeCost(e);
                if (nd < dist[w] - 1e-12) {
                    dist[w] = nd;
                    pred[w] = e;
                    q.push({nd, w});
                }
            }
        }
        if (best < 0) return {};  // disconnected
        // Add the path into the tree.
        int v = best;
        while (!inTree[v]) {
            inTree[v] = true;
            const int e = pred[v];
            edgeInTree[e] = true;
            v = g.edge(e).other(v);
        }
        // Recount connected terminals (cheap at our sizes).
        connected = 0;
        for (int t : terms)
            if (inTree[t]) ++connected;
    }
    for (int e = 0; e < g.numEdges(); ++e)
        if (edgeInTree[e]) sol.edges.push_back(e);
    sol.edges = pruneTree(g, sol.edges);
    sol.cost = g.costOf(sol.edges);
    return sol;
}

std::vector<bool> solutionVertexMask(const Graph& g,
                                     const HeuristicSolution& sol) {
    std::vector<bool> mask(g.numVertices(), false);
    for (int e : sol.edges) {
        mask[g.edge(e).u] = true;
        mask[g.edge(e).v] = true;
    }
    for (int t : g.terminals()) mask[t] = true;
    return mask;
}

}  // namespace

HeuristicSolution tmHeuristic(const Graph& g, int numRoots,
                              const std::vector<double>* costOverride) {
    const std::vector<int> terms = g.terminals();
    HeuristicSolution best;
    if (terms.empty()) {
        best.cost = 0.0;
        return best;
    }
    const int tries =
        std::min<int>(std::max(1, numRoots), static_cast<int>(terms.size()));
    for (int i = 0; i < tries; ++i) {
        // Spread the roots over the terminal list.
        const int root = terms[(i * terms.size()) / tries];
        HeuristicSolution sol = tmFromRoot(g, root, costOverride);
        if (sol.valid() && sol.cost < best.cost) best = std::move(sol);
    }
    return best;
}

HeuristicSolution mstPruneImprove(const Graph& g,
                                  const HeuristicSolution& sol) {
    if (!sol.valid()) return sol;
    std::vector<bool> mask = solutionVertexMask(g, sol);
    bool connected = false;
    std::vector<int> mst = inducedMst(g, mask, &connected);
    if (!connected) return sol;
    mst = pruneTree(g, std::move(mst));
    HeuristicSolution improved;
    improved.edges = std::move(mst);
    improved.cost = g.costOf(improved.edges);
    if (improved.cost < sol.cost - 1e-12 &&
        g.spansTerminals(improved.edges))
        return improved;
    return sol;
}

HeuristicSolution vertexEliminationSearch(const Graph& g,
                                          HeuristicSolution sol,
                                          int maxRounds) {
    if (!sol.valid()) return sol;
    for (int round = 0; round < maxRounds; ++round) {
        bool improved = false;
        std::vector<bool> mask = solutionVertexMask(g, sol);
        for (int v = 0; v < g.numVertices(); ++v) {
            if (!mask[v] || g.isTerminal(v) || !g.vertexAlive(v)) continue;
            mask[v] = false;
            bool connected = false;
            std::vector<int> mst = inducedMst(g, mask, &connected);
            if (connected) {
                mst = pruneTree(g, std::move(mst));
                const double c = g.costOf(mst);
                if (c < sol.cost - 1e-12 && g.spansTerminals(mst)) {
                    sol.edges = std::move(mst);
                    sol.cost = c;
                    improved = true;
                    mask = solutionVertexMask(g, sol);
                    continue;
                }
            }
            mask[v] = true;
        }
        if (!improved) break;
    }
    return sol;
}

HeuristicSolution primalHeuristic(const Graph& g, int numRoots,
                                  const std::vector<double>* costOverride) {
    HeuristicSolution sol = tmHeuristic(g, numRoots, costOverride);
    sol = mstPruneImprove(g, sol);
    sol = vertexEliminationSearch(g, std::move(sol));
    return sol;
}

}  // namespace steiner
