// SCIP-Jack-style user plugins for the CIP framework:
//   StpConshdlr          — lazy separation of directed Steiner cuts (4) via
//                          max-flow, plus node-local rows for vertex
//                          branching ("make v a terminal");
//   StpVertexBranching   — constraint branching on vertices: v-in-solution /
//                          v-deleted children, transferred between
//                          ParaSolvers as CustomBranch payloads (the
//                          ug-0.8.6 feature the paper highlights);
//   StpHeuristic         — LP-guided TM + local search, mapped back to model
//                          space;
//   StpSubproblemReducer — layered presolving: re-runs the (deletion-only)
//                          reduction tests on each received subproblem's
//                          modified graph, where the extended tests often
//                          fire even when root presolving could not (paper
//                          section 4.1).
#pragma once

#include <unordered_map>
#include <vector>

#include "cip/plugins.hpp"
#include "cip/solver.hpp"
#include "steiner/cutpool.hpp"
#include "steiner/cutsep.hpp"
#include "steiner/reduceengine.hpp"
#include "steiner/stpmodel.hpp"

namespace steiner {

/// Plugin name shared by all STP custom-branch payloads.
inline constexpr const char* kStpPluginName = "stp";

/// Node-local vertex state parsed from custom branches: +1 in-solution,
/// 0 deleted, absent = unbranched.
struct VertexBranchState {
    std::vector<signed char> flag;  ///< -1 unbranched, 0 deleted, 1 required
    explicit VertexBranchState(int n) : flag(n, -1) {}
};

VertexBranchState parseVertexBranches(const SapInstance& inst,
                                      const std::vector<cip::CustomBranch>& cbs);

class StpConshdlr : public cip::ConstraintHandler {
public:
    explicit StpConshdlr(const SapInstance& inst);

    bool check(cip::Solver& solver, const std::vector<double>& x) override;
    int separate(cip::Solver& solver, const std::vector<double>& x) override;
    int enforce(cip::Solver& solver, const std::vector<double>& x,
                cip::BranchDecision& decision) override;
    void nodeActivated(cip::Solver& solver) override;

    /// The separation engine (exposed for tests and benchmarks).
    const CutSeparationEngine& engine() const { return engine_; }
    /// The solver-lifetime dominance pool (exposed for tests/benchmarks).
    const CutPool& cutPool() const { return pool_; }

    // -- Cross-solver cut sharing ------------------------------------------
    /// Queue shared supports received with the assignment. Nothing enters
    /// the LP here: each support is violation-checked against the current
    /// relaxation and certified valid (removing its arcs must disconnect
    /// some terminal from the root) during separate() before activation, so
    /// a corrupt or stale bundle can never inject an invalid row.
    void primeSharedCuts(cip::Solver& solver, const ug::CutBundle& cuts);
    /// Serialize up to `maxCuts` newly pool-admitted supports (consuming
    /// cursor; see CutPool::exportNewAdmitted) for piggybacking on
    /// Status/Terminated messages.
    ug::CutBundle takeShareableCuts(int maxCuts);
    /// Number of received-but-not-yet-activated shared supports (tests).
    std::size_t primedPending() const { return primed_.size(); }

    /// Queue locally generated candidate supports (e.g. dual-ascent cuts
    /// from the ReduceEngine). They ride the same violation-check +
    /// certification gate as shared supports but are kept out of the
    /// cross-solver sharing statistics: their admission/rejection says
    /// nothing about the coordinator's bundles.
    void primeLocalSupports(std::vector<std::vector<int>> supports);

private:
    CutSepaConfig sepaConfig(const cip::Solver& solver) const;
    std::vector<std::pair<int, double>> inArcCoefs(int v) const;
    /// Drop cuts the solver aged out of its LP pool from the dominance pool
    /// (consumes Solver::takeRetiredCutTokens), so they can be re-admitted.
    void syncRetiredCuts(cip::Solver& solver);
    /// Certification oracle for shared supports: true iff deleting the
    /// support's arcs leaves some terminal unreachable from the root, i.e.
    /// "sum of support arcs >= 1" holds for every feasible arborescence.
    bool certifySupport(const std::vector<int>& vars);
    /// Activate violated+certified primed supports (dominance pool +
    /// solver.addCut); returns the number added, records shared-cut stats.
    int activatePrimedCuts(cip::Solver& solver, const std::vector<double>& x,
                           double violationTol);

    const SapInstance& inst_;
    CutSeparationEngine engine_;
    CutSepaStats reported_;  ///< engine stats already pushed to the solver
    std::vector<signed char> required_;  ///< current node: extra terminals
    std::unordered_map<int, int> vertexRow_;  ///< v -> managed indeg>=1 row
    std::vector<std::pair<int, int>> localCuts_;  ///< (vertex, row handle)

    // Solver-lifetime dominance pool over the *global* terminal cuts (the
    // node-local vertex cuts above are only valid while their vertex is
    // required and must never enter it). Maps keep the pool ids and the
    // solver's cut tokens in 1:1 correspondence.
    CutPool pool_;
    CutPoolStats reportedPool_;  ///< pool stats already pushed to the solver
    std::unordered_map<int, std::int64_t> tokenOf_;   ///< pool id -> token
    std::unordered_map<std::int64_t, int> poolIdOf_;  ///< token -> pool id
    std::vector<int> evictScratch_;
    std::vector<std::int64_t> retireScratch_;

    // Shared/local supports waiting for activation. cert: 0 = not yet
    // certified, 1 = certified valid (certification runs once; invalid
    // supports are dropped — and, for shared ones, counted — the moment
    // certification fails). local: 1 = generated by this solver (ascent
    // harvest), excluded from shared-cut statistics.
    struct PrimedCut {
        std::vector<int> vars;
        signed char cert = 0;
        signed char local = 0;
    };
    std::vector<PrimedCut> primed_;
    std::vector<char> arcMask_;  ///< certifySupport scratch: arcs removed
};

class StpVertexBranching : public cip::Branchrule {
public:
    explicit StpVertexBranching(const SapInstance& inst);
    cip::BranchDecision branch(cip::Solver& solver,
                               const std::vector<double>& x) override;

private:
    const SapInstance& inst_;
};

class StpHeuristic : public cip::Heuristic {
public:
    explicit StpHeuristic(const SapInstance& inst);
    std::optional<cip::Solution> run(cip::Solver& solver,
                                     const std::vector<double>& x) override;

private:
    const SapInstance& inst_;
};

class StpSubproblemReducer : public cip::Presolver {
public:
    explicit StpSubproblemReducer(const SapInstance& inst);
    cip::ReduceResult presolve(cip::Solver& solver) override;

private:
    const SapInstance& inst_;
    bool ran_ = false;
};

/// In-tree reductions ("reduction techniques are extremely important both
/// in presolving and domain propagation", paper section 3.1), run as domain
/// propagation at frequency-selected depths and additionally whenever the
/// primal bound improved since the last pass.
///
/// With "stp/redprop/incremental" (default on) the pass runs on a
/// persistent ReduceEngine: the node subgraph is synced by bound-change
/// deltas, the dual ascent is warm-started from the cached parent/root
/// state, unchanged nodes skip the pass entirely, and harvested ascent cuts
/// are fed to the constraint handler's primed-cut path. Bound-derived
/// fixings are recorded into the node description so children inherit them.
/// With the parameter off, the original rebuild-everything
/// reduceSubgraphAndFix pass runs instead (per-node behavior unchanged).
///
/// propagateLp adds LP-reduced-cost arc fixing strengthened by the
/// flow-balance extension argument: an arc into a non-required non-terminal
/// must be extended by an outgoing arc, so its exclusion test may add the
/// cheapest outgoing reduced cost. Only arcs at zero in the current LP
/// optimum are fixed (the propagateLp contract: the LP point stays
/// feasible, no re-solve needed).
class StpReductionPropagator : public cip::Propagator {
public:
    StpReductionPropagator(const SapInstance& inst, StpConshdlr* conshdlr);
    cip::ReduceResult propagate(cip::Solver& solver) override;
    cip::ReduceResult propagateLp(cip::Solver& solver) override;

    /// The persistent reduction engine (tests/diagnostics).
    const ReduceEngine& engine() const { return engine_; }

private:
    const SapInstance& inst_;
    StpConshdlr* conshdlr_;  ///< sink for harvested ascent cuts (may be null)
    ReduceEngine engine_;
    std::int64_t lastNode_ = -1;
    double lastPrimal_ = cip::kInf;  ///< primal bound at the last engine pass
    ReduceEngineStats reported_;     ///< engine stats already pushed upstream
    // propagateLp dedup: the last (node, LP objective, cutoff) processed —
    // identical state cannot yield new fixings.
    std::int64_t lastLpNode_ = -1;
    double lastLpObj_ = -cip::kInf;
    double lastLpCutoff_ = cip::kInf;
};

/// Shared deletion-only reduction pass on the subgraph induced by the
/// solver's current local bounds + vertex-branching state; fixes deleted
/// edges' arcs to zero via tightenUb.
cip::ReduceResult reduceSubgraphAndFix(cip::Solver& solver,
                                       const SapInstance& inst,
                                       bool extended);

/// Install the full SCIP-Jack-style plugin set into a solver.
void installStpPlugins(cip::Solver& solver, const SapInstance& inst);

}  // namespace steiner
