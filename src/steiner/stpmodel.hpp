// Transformation of a (reduced) Steiner tree instance into the Steiner
// arborescence problem and its flow-balance directed-cut CIP model
// (Formulation 1 of the paper).
//
// Rows included statically: in-degree <= 1 for every vertex, in-degree == 1
// for non-root terminals, flow balance (5) for non-terminals, plus the cut
// rows raised by Wong's dual ascent (SCIP-Jack's initial LP). The
// exponential cut family (4) is separated lazily by StpConshdlr.
#pragma once

#include <vector>

#include "cip/model.hpp"
#include "steiner/graph.hpp"
#include "steiner/reductions.hpp"

namespace steiner {

struct SapInstance {
    Graph graph;  ///< the reduced undirected instance (frozen after build)
    int root = -1;
    double fixedCost = 0.0;                ///< cost fixed by presolving
    std::vector<int> fixedOriginalEdges;   ///< edges forced by presolving
    std::vector<int> arcVar;               ///< arc id (2e+dir) -> var or -1
    std::vector<int> varArc;               ///< var -> arc id
    cip::Model model;
    double dualAscentBound = 0.0;          ///< root lower bound from Wong DA

    int numArcs() const { return static_cast<int>(varArc.size()); }
    /// Trivial when <=1 terminal survived presolving.
    bool trivial() const { return graph.numTerminals() <= 1; }
};

/// Build the SAP model for an already reduced graph. `maxInitialCuts` caps
/// the number of dual-ascent rows copied into the static model.
SapInstance buildSapInstance(Graph reducedGraph, const ReductionStats& red,
                             int maxInitialCuts = 256);

/// Orient an undirected tree (edge ids of `inst.graph`) from the root and
/// produce the corresponding 0/1 model solution vector.
std::vector<double> treeToModelSolution(const SapInstance& inst,
                                        const std::vector<int>& treeEdges);

/// Extract the tree edge set (reduced-graph edge ids) from a model solution.
std::vector<int> modelSolutionToTree(const SapInstance& inst,
                                     const std::vector<double>& x);

/// Map a reduced-graph edge set to original-instance edge ids, including the
/// presolve-fixed edges.
std::vector<int> toOriginalEdges(const SapInstance& inst,
                                 const std::vector<int>& reducedEdges);

}  // namespace steiner
