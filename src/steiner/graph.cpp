#include "steiner/graph.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace steiner {

void Graph::reset(int numVertices) {
    edges_.clear();
    adj_.assign(numVertices, {});
    terminal_.assign(numVertices, false);
    alive_.assign(numVertices, true);
    numTerminals_ = 0;
}

int Graph::addVertex() {
    adj_.emplace_back();
    terminal_.push_back(false);
    alive_.push_back(true);
    return numVertices() - 1;
}

int Graph::addEdge(int u, int v, double cost, int originId) {
    assert(u != v);
    const int id = static_cast<int>(edges_.size());
    Edge e;
    e.u = u;
    e.v = v;
    e.cost = cost;
    e.origin.push_back(originId < 0 ? id : originId);
    edges_.push_back(std::move(e));
    adj_[u].push_back(id);
    adj_[v].push_back(id);
    return id;
}

int Graph::numActiveEdges() const {
    int c = 0;
    for (const Edge& e : edges_)
        if (!e.deleted) ++c;
    return c;
}

int Graph::numActiveVertices() const {
    int c = 0;
    for (bool a : alive_)
        if (a) ++c;
    return c;
}

void Graph::setTerminal(int v, bool t) {
    if (terminal_[v] == t) return;
    terminal_[v] = t;
    numTerminals_ += t ? 1 : -1;
}

std::vector<int> Graph::terminals() const {
    std::vector<int> out;
    for (int v = 0; v < numVertices(); ++v)
        if (terminal_[v] && alive_[v]) out.push_back(v);
    return out;
}

int Graph::rootTerminal() const {
    for (int v = 0; v < numVertices(); ++v)
        if (terminal_[v] && alive_[v]) return v;
    return -1;
}

int Graph::degree(int v) const {
    int d = 0;
    for (int e : adj_[v])
        if (!edges_[e].deleted) ++d;
    return d;
}

void Graph::removeFromAdj(int v, int e) {
    auto& a = adj_[v];
    a.erase(std::remove(a.begin(), a.end(), e), a.end());
}

void Graph::deleteEdge(int e) {
    if (edges_[e].deleted) return;
    edges_[e].deleted = true;
    removeFromAdj(edges_[e].u, e);
    removeFromAdj(edges_[e].v, e);
}

void Graph::restoreEdge(int e) {
    Edge& ed = edges_[e];
    if (!ed.deleted) return;
    assert(alive_[ed.u] && alive_[ed.v]);
    ed.deleted = false;
    adj_[ed.u].push_back(e);
    adj_[ed.v].push_back(e);
}

void Graph::deleteVertex(int v) {
    assert(!terminal_[v]);
    assert(degree(v) == 0);
    alive_[v] = false;
}

void Graph::contractEdge(int e, int to) {
    Edge& ce = edges_[e];
    assert(!ce.deleted);
    assert(to == ce.u || to == ce.v);
    const int from = ce.other(to);
    deleteEdge(e);
    if (terminal_[from]) {
        setTerminal(from, false);
        setTerminal(to, true);
    }
    // Re-home `from`'s edges to `to`.
    std::vector<int> fromEdges = adj_[from];
    for (int fe : fromEdges) {
        Edge& g = edges_[fe];
        if (g.deleted) continue;
        const int w = g.other(from);
        if (w == to) {
            deleteEdge(fe);  // would become a self-loop
            continue;
        }
        // Check for an existing parallel edge (to, w); keep the cheaper.
        int parallel = -1;
        for (int pe : adj_[to]) {
            const Edge& p = edges_[pe];
            if (!p.deleted && p.other(to) == w) {
                parallel = pe;
                break;
            }
        }
        if (parallel >= 0) {
            if (edges_[parallel].cost <= g.cost) {
                deleteEdge(fe);
                continue;
            }
            deleteEdge(parallel);
        }
        // Move endpoint from -> to.
        removeFromAdj(from, fe);
        if (g.u == from)
            g.u = to;
        else
            g.v = to;
        adj_[to].push_back(fe);
    }
    alive_[from] = false;
}

double Graph::costOf(const std::vector<int>& edgeIds) const {
    double c = 0.0;
    for (int e : edgeIds) c += edges_[e].cost;
    return c;
}

bool Graph::spansTerminals(const std::vector<int>& edgeIds) const {
    std::vector<int> terms = terminals();
    if (terms.empty()) return true;
    std::vector<std::vector<int>> nbr(numVertices());
    for (int e : edgeIds) {
        if (edges_[e].deleted) return false;
        nbr[edges_[e].u].push_back(edges_[e].v);
        nbr[edges_[e].v].push_back(edges_[e].u);
    }
    std::vector<bool> seen(numVertices(), false);
    std::queue<int> q;
    q.push(terms[0]);
    seen[terms[0]] = true;
    while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (int w : nbr[v])
            if (!seen[w]) {
                seen[w] = true;
                q.push(w);
            }
    }
    for (int t : terms)
        if (!seen[t]) return false;
    return true;
}

}  // namespace steiner
