#include "steiner/plugins.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>

#include "steiner/dualascent.hpp"
#include "steiner/heuristics.hpp"
#include "steiner/reductions.hpp"
#include "steiner/shortest.hpp"

namespace steiner {

VertexBranchState parseVertexBranches(
    const SapInstance& inst, const std::vector<cip::CustomBranch>& cbs) {
    VertexBranchState st(inst.graph.numVertices());
    for (const cip::CustomBranch& cb : cbs) {
        if (cb.plugin != kStpPluginName || cb.data.size() != 2) continue;
        const int v = static_cast<int>(cb.data[0]);
        if (v < 0 || v >= inst.graph.numVertices()) continue;
        st.flag[v] = static_cast<signed char>(cb.data[1]);
    }
    return st;
}

// ---------------------------------------------------------------------------
// StpConshdlr
// ---------------------------------------------------------------------------

StpConshdlr::StpConshdlr(const SapInstance& inst)
    : ConstraintHandler(kStpPluginName, 0),
      inst_(inst),
      engine_(inst),
      required_(inst.graph.numVertices(), 0),
      pool_(inst.model.numVars()) {}

void StpConshdlr::syncRetiredCuts(cip::Solver& solver) {
    for (const std::int64_t tok : solver.takeRetiredCutTokens()) {
        auto it = poolIdOf_.find(tok);
        if (it == poolIdOf_.end()) continue;  // not one of ours
        pool_.remove(it->second);
        tokenOf_.erase(it->second);
        poolIdOf_.erase(it);
    }
}

void StpConshdlr::primeSharedCuts(cip::Solver& solver,
                                  const ug::CutBundle& cuts) {
    if (cuts.empty()) return;
    std::vector<ug::CutSupport> decoded;
    if (!cuts.decode(decoded)) {
        // Corrupt framing: nothing in the bundle is trustworthy. The decode
        // failure itself is counted so the coordinator can quarantine the
        // link that keeps delivering corrupt bundles.
        solver.recordSharedCutStats(cuts.count(), 0, cuts.count(), 1);
        return;
    }
    std::int64_t invalid = 0;
    const int numVars = inst_.model.numVars();
    for (ug::CutSupport& cs : decoded) {
        // Structural screen: only "sum >= 1" rows over known model vars may
        // even be queued; graph-level certification happens at activation.
        bool ok = (cs.rhsClass == 1);
        if (ok)
            for (int var : cs.vars)
                if (var < 0 || var >= numVars) {
                    ok = false;
                    break;
                }
        if (!ok) {
            ++invalid;
            continue;
        }
        primed_.push_back({std::move(cs.vars), 0, 0});
    }
    solver.recordSharedCutStats(static_cast<std::int64_t>(decoded.size()), 0,
                                invalid);
}

void StpConshdlr::primeLocalSupports(std::vector<std::vector<int>> supports) {
    const int numVars = inst_.model.numVars();
    for (std::vector<int>& vars : supports) {
        bool ok = !vars.empty();
        if (ok)
            for (int var : vars)
                if (var < 0 || var >= numVars) {
                    ok = false;
                    break;
                }
        if (!ok) continue;
        primed_.push_back({std::move(vars), 0, 1});
    }
}

ug::CutBundle StpConshdlr::takeShareableCuts(int maxCuts) {
    ug::CutBundle bundle;
    if (maxCuts > 0) pool_.exportNewAdmitted(bundle, maxCuts);
    return bundle;
}

bool StpConshdlr::certifySupport(const std::vector<int>& vars) {
    const Graph& g = inst_.graph;
    const int arcSpace = 2 * g.numEdges();
    arcMask_.assign(static_cast<std::size_t>(arcSpace), 0);
    for (int var : vars) {
        if (var < 0 || var >= static_cast<int>(inst_.varArc.size()))
            return false;
        const int a = inst_.varArc[static_cast<std::size_t>(var)];
        if (a < 0 || a >= arcSpace) return false;
        arcMask_[static_cast<std::size_t>(a)] = 1;
    }
    // "sum of support arcs >= 1" is valid iff every feasible arborescence
    // uses a support arc, iff removing the support disconnects some terminal
    // from the root. BFS over the remaining modeled arcs (mirrors check()).
    std::vector<bool> seen(g.numVertices(), false);
    std::queue<int> q;
    q.push(inst_.root);
    seen[inst_.root] = true;
    while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (int e : g.incident(v)) {
            if (g.edge(e).deleted) continue;
            const int a = (g.edge(e).u == v) ? 2 * e : 2 * e + 1;  // v -> w
            if (inst_.arcVar[static_cast<std::size_t>(a)] < 0 ||
                arcMask_[static_cast<std::size_t>(a)])
                continue;
            const int w = g.edge(e).other(v);
            if (!seen[w]) {
                seen[w] = true;
                q.push(w);
            }
        }
    }
    for (int t : g.terminals())
        if (!seen[t]) return true;  // disconnects a terminal: valid
    return false;
}

int StpConshdlr::activatePrimedCuts(cip::Solver& solver,
                                    const std::vector<double>& x,
                                    double violationTol) {
    if (primed_.empty()) return 0;
    const bool dominance =
        solver.params().getBool("stp/sepa/pooldominance", true);
    int added = 0;
    std::int64_t sharedAdded = 0;
    std::int64_t invalid = 0;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < primed_.size(); ++i) {
        PrimedCut pc = std::move(primed_[i]);
        double sum = 0.0;
        for (int var : pc.vars) sum += x[static_cast<std::size_t>(var)];
        if (sum >= 1.0 - violationTol) {
            // Satisfied by the current relaxation: keep it queued — a later
            // LP solution may violate it (certification is also deferred, so
            // never-violated supports cost no BFS at all).
            primed_[keep++] = std::move(pc);
            continue;
        }
        if (pc.cert == 0) {
            if (!certifySupport(pc.vars)) {
                // Stale/corrupt/node-local support: dropped, never a row.
                // Only shared supports count as invalid — a locally
                // harvested ascent cut failing the gate is the expected
                // fate of subtree-specific cuts, not a sharing defect.
                if (!pc.local) ++invalid;
                continue;
            }
            pc.cert = 1;
        }
        int poolId = -1;
        if (dominance) {
            const CutPool::Verdict v =
                pool_.offer(pc.vars, &poolId, &evictScratch_);
            if (v == CutPool::Verdict::Duplicate ||
                v == CutPool::Verdict::Dominated)
                continue;  // an at-least-as-strong local row already exists
            if (v == CutPool::Verdict::Untracked) poolId = -1;
            if (!evictScratch_.empty()) {
                retireScratch_.clear();
                for (int pid : evictScratch_) {
                    auto it = tokenOf_.find(pid);
                    if (it == tokenOf_.end()) continue;
                    retireScratch_.push_back(it->second);
                    poolIdOf_.erase(it->second);
                    tokenOf_.erase(it);
                }
                solver.retireCuts(retireScratch_);
            }
        }
        std::vector<std::pair<int, double>> coefs;
        coefs.reserve(pc.vars.size());
        for (int var : pc.vars) coefs.emplace_back(var, 1.0);
        const std::int64_t token =
            solver.addCut(cip::Row(std::move(coefs), 1.0, cip::kInf));
        if (poolId >= 0) {
            tokenOf_[poolId] = token;
            poolIdOf_[token] = poolId;
        }
        ++added;
        if (!pc.local) ++sharedAdded;
    }
    primed_.resize(keep);
    if (sharedAdded > 0 || invalid > 0)
        solver.recordSharedCutStats(0, sharedAdded, invalid);
    return added;
}

CutSepaConfig StpConshdlr::sepaConfig(const cip::Solver& solver) const {
    const cip::ParamSet& p = solver.params();
    CutSepaConfig cfg;
    cfg.nestedCuts = p.getBool("stp/sepa/nestedcuts", cfg.nestedCuts);
    cfg.backCuts = p.getBool("stp/sepa/backcuts", cfg.backCuts);
    cfg.creepFlow = p.getBool("stp/sepa/creepflow", cfg.creepFlow);
    cfg.warmStart = p.getBool("stp/sepa/warmstart", cfg.warmStart);
    cfg.maxCuts = p.getInt("stp/sepa/maxcuts", cfg.maxCuts);
    cfg.violationTol = p.getReal("stp/sepa/violationtol", cfg.violationTol);
    cfg.maxNested = p.getInt("stp/sepa/maxnested", cfg.maxNested);
    return cfg;
}

std::vector<std::pair<int, double>> StpConshdlr::inArcCoefs(int v) const {
    std::vector<std::pair<int, double>> coefs;
    for (int e : inst_.graph.incident(v)) {
        if (inst_.graph.edge(e).deleted) continue;
        const int a = (inst_.graph.edge(e).u == v) ? 2 * e + 1 : 2 * e;
        if (inst_.arcVar[a] >= 0) coefs.emplace_back(inst_.arcVar[a], 1.0);
    }
    return coefs;
}

void StpConshdlr::nodeActivated(cip::Solver& solver) {
    const cip::Node* node = solver.currentNode();
    if (!node) return;
    VertexBranchState st = parseVertexBranches(inst_, node->desc.customBranches);
    std::fill(required_.begin(), required_.end(), 0);
    for (int v = 0; v < inst_.graph.numVertices(); ++v)
        if (st.flag[v] == 1) required_[v] = 1;

    // In-degree >= 1 rows for required vertices (create lazily).
    for (int v = 0; v < inst_.graph.numVertices(); ++v) {
        if (required_[v] && vertexRow_.find(v) == vertexRow_.end()) {
            auto coefs = inArcCoefs(v);
            if (coefs.empty()) continue;
            vertexRow_[v] =
                solver.addManagedRow(cip::Row(std::move(coefs), 1.0, cip::kInf));
        }
    }
    for (auto& [v, handle] : vertexRow_) {
        if (required_[v])
            solver.setManagedRowBounds(handle, 1.0, cip::kInf);
        else
            solver.setManagedRowBounds(handle, -cip::kInf, cip::kInf);
    }
    // Node-local Steiner cuts separated for required vertices.
    for (auto& [v, handle] : localCuts_) {
        if (required_[v])
            solver.setManagedRowBounds(handle, 1.0, cip::kInf);
        else
            solver.setManagedRowBounds(handle, -cip::kInf, cip::kInf);
    }
}

bool StpConshdlr::check(cip::Solver&, const std::vector<double>& x) {
    // Global feasibility: every *real* terminal reachable from the root by
    // arcs with value 1 (vertex-branching requirements are node-local and
    // deliberately not part of the global check).
    const Graph& g = inst_.graph;
    std::vector<bool> seen(g.numVertices(), false);
    std::queue<int> q;
    q.push(inst_.root);
    seen[inst_.root] = true;
    while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (int e : g.incident(v)) {
            if (g.edge(e).deleted) continue;
            const int a = (g.edge(e).u == v) ? 2 * e : 2 * e + 1;  // v -> w
            const int var = inst_.arcVar[a];
            if (var < 0 || x[var] < 0.5) continue;
            const int w = g.edge(e).other(v);
            if (!seen[w]) {
                seen[w] = true;
                q.push(w);
            }
        }
    }
    for (int t : g.terminals())
        if (!seen[t]) return false;
    return true;
}

int StpConshdlr::separate(cip::Solver& solver, const std::vector<double>& x) {
    const auto t0 = std::chrono::steady_clock::now();
    const Graph& g = inst_.graph;
    const CutSepaConfig cfg = sepaConfig(solver);
    const cip::ParamSet& params = solver.params();
    const bool dominance = params.getBool("stp/sepa/pooldominance", true);
    pool_.setMaxSupport(params.getInt("separating/poolmaxsupport", 0));
    // Mirror the solver's pool first: cuts it aged out of the LP since the
    // last round must leave the dominance pool, or a later re-violation of
    // the same cut would be rejected as a "duplicate" of a row that no
    // longer exists.
    syncRetiredCuts(solver);

    // Shared supports received from the coordinator activate first: they are
    // free (no max-flow solve), already filtered for relevance, and each one
    // that fires replaces separation work the donor already paid for. When
    // any fire, the round ends here — the LP must absorb the donor's rows
    // before it is worth paying max-flow solves on a fractional point those
    // rows are about to cut off; the engine separates the re-solved point on
    // the next round.
    const int primedAdded = activatePrimedCuts(solver, x, cfg.violationTol);
    if (primedAdded > 0) {
        solver.addCost(1);  // deterministic round charge, same as below
        const CutPoolStats& ps = pool_.stats();
        solver.recordCutPoolStats(
            ps.dupRejected - reportedPool_.dupRejected,
            ps.dominatedRejected - reportedPool_.dominatedRejected,
            ps.dominatedEvicted - reportedPool_.dominatedEvicted,
            static_cast<std::int64_t>(pool_.size()));
        reportedPool_ = ps;
        return primedAdded;
    }
    engine_.beginRound(x, cfg);

    std::vector<int> terms;
    for (int t : g.terminals())
        if (t != inst_.root) terms.push_back(t);
    std::vector<int> verts;
    for (int v = 0; v < g.numVertices(); ++v)
        if (required_[v] && !g.isTerminal(v)) verts.push_back(v);

    // Fair budget split: branching-required vertices get a share of the
    // round budget proportional to their count (at least one when any
    // exist), so terminal cuts can no longer starve the node-local managed
    // cuts at deep nodes. Whatever the terminals leave unused rolls over.
    const int total = std::max(1, cfg.maxCuts);
    int vertReserve = 0;
    if (!verts.empty()) {
        const std::size_t pool = terms.size() + verts.size();
        vertReserve = std::max<int>(
            1, static_cast<int>((static_cast<std::size_t>(total) *
                                 verts.size()) / std::max<std::size_t>(1, pool)));
        vertReserve = std::min(vertReserve, total);
    }

    // One target may not eat the whole round: nested/back cuts multiply the
    // cuts per target, and without a per-target cap the first (deepest
    // deficit) targets would starve the rest, leaving most terminals
    // unseparated for the round and weakening the bound progress.
    const int perTarget = std::max(1, (total - vertReserve) / 4);

    std::vector<SteinerCut> cuts;
    int termCuts = 0;
    int termBudget = total - vertReserve;
    for (int t : engine_.orderByDeficit(terms)) {
        if (termBudget <= 0) break;
        cuts.clear();
        engine_.separateTarget(t, std::min(termBudget, perTarget), cuts);
        int added = 0;
        for (SteinerCut& c : cuts) {
            int poolId = -1;
            if (dominance) {
                // Offer the support to the solver-lifetime pool; only cuts
                // that survive duplicate + subset-dominance filtering reach
                // the LP, and pooled supersets of the new cut are retired.
                const CutPool::Verdict v =
                    pool_.offer(c.vars, &poolId, &evictScratch_);
                if (v == CutPool::Verdict::Duplicate ||
                    v == CutPool::Verdict::Dominated)
                    continue;  // an at-least-as-strong row already exists
                if (v == CutPool::Verdict::Untracked) poolId = -1;
                if (!evictScratch_.empty()) {
                    retireScratch_.clear();
                    for (int pid : evictScratch_) {
                        auto it = tokenOf_.find(pid);
                        if (it == tokenOf_.end()) continue;
                        retireScratch_.push_back(it->second);
                        poolIdOf_.erase(it->second);
                        tokenOf_.erase(it);
                    }
                    solver.retireCuts(retireScratch_);
                }
            }
            std::vector<std::pair<int, double>> coefs;
            coefs.reserve(c.vars.size());
            for (int var : c.vars) coefs.emplace_back(var, 1.0);
            const std::int64_t token =
                solver.addCut(cip::Row(std::move(coefs), 1.0, cip::kInf));
            if (poolId >= 0) {
                tokenOf_[poolId] = token;
                poolIdOf_[token] = poolId;
            }
            ++added;
        }
        // Budget accounting runs on cuts actually handed to the LP: rounds
        // with many pool rejections are free to probe more targets without
        // growing the LP past the round budget.
        termBudget -= added;
        termCuts += added;
    }
    int vertBudget = total - termCuts;
    int vertCuts = 0;
    for (int v : engine_.orderByDeficit(verts)) {
        if (vertBudget <= 0) break;
        cuts.clear();
        const int k =
            engine_.separateTarget(v, std::min(vertBudget, perTarget), cuts);
        for (SteinerCut& c : cuts) {
            std::vector<std::pair<int, double>> coefs;
            coefs.reserve(c.vars.size());
            for (int var : c.vars) coefs.emplace_back(var, 1.0);
            const int handle = solver.addManagedRow(
                cip::Row(std::move(coefs), 1.0, cip::kInf));
            solver.setManagedRowBounds(handle, 1.0, cip::kInf);
            localCuts_.emplace_back(v, handle);
        }
        vertBudget -= k;
        vertCuts += k;
    }

    // Charge deterministic work and thread the engine's counters (deltas
    // since the last report) through the solver statistics.
    const CutSepaStats& es = engine_.stats();
    solver.addCost(1 + (es.augmentations - reported_.augmentations));
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    solver.recordSeparationStats(
        es.flowSolves - reported_.flowSolves,
        es.cutsFound - reported_.cutsFound,
        es.nestedCuts - reported_.nestedCuts,
        es.backCuts - reported_.backCuts, es.maxNestedDepth, seconds);
    reported_ = es;
    const CutPoolStats& ps = pool_.stats();
    solver.recordCutPoolStats(
        ps.dupRejected - reportedPool_.dupRejected,
        ps.dominatedRejected - reportedPool_.dominatedRejected,
        ps.dominatedEvicted - reportedPool_.dominatedEvicted,
        static_cast<std::int64_t>(pool_.size()));
    reportedPool_ = ps;
    return termCuts + vertCuts;
}

int StpConshdlr::enforce(cip::Solver& solver, const std::vector<double>& x,
                         cip::BranchDecision&) {
    return separate(solver, x);
}

// ---------------------------------------------------------------------------
// StpVertexBranching
// ---------------------------------------------------------------------------

StpVertexBranching::StpVertexBranching(const SapInstance& inst)
    : Branchrule("stp_branch", 100), inst_(inst) {}

cip::BranchDecision StpVertexBranching::branch(cip::Solver& solver,
                                               const std::vector<double>& x) {
    cip::BranchDecision dec;
    if (!solver.params().getBool("stp/vertexbranching", true)) return dec;
    const cip::Node* node = solver.currentNode();
    if (!node) return dec;
    VertexBranchState st = parseVertexBranches(inst_, node->desc.customBranches);
    const Graph& g = inst_.graph;

    int bestV = -1;
    double bestScore = 0.1;  // minimum fractionality to prefer vertex branch
    for (int v = 0; v < g.numVertices(); ++v) {
        if (!g.vertexAlive(v) || g.isTerminal(v) || v == inst_.root) continue;
        if (st.flag[v] != -1) continue;
        double inflow = 0.0;
        bool anyArc = false;
        for (int e : g.incident(v)) {
            if (g.edge(e).deleted) continue;
            const int a = (g.edge(e).u == v) ? 2 * e + 1 : 2 * e;
            const int var = inst_.arcVar[a];
            if (var < 0) continue;
            anyArc = true;
            inflow += x[var];
        }
        if (!anyArc) continue;
        const double score = std::min(inflow, 1.0 - inflow);
        if (score > bestScore) {
            bestScore = score;
            bestV = v;
        }
    }
    if (bestV < 0) return dec;  // fall back to arc variable branching

    // Child A: bestV must be part of the solution (in-degree >= 1 managed
    // row + terminal status for layered presolving/heuristics).
    cip::BranchDecision::Child inChild;
    inChild.customBranches.push_back({kStpPluginName, {bestV, 1}});
    // Child B: bestV deleted — all incident arcs fixed to zero.
    cip::BranchDecision::Child outChild;
    for (int e : inst_.graph.incident(bestV)) {
        if (inst_.graph.edge(e).deleted) continue;
        for (int dir = 0; dir < 2; ++dir) {
            const int var = inst_.arcVar[2 * e + dir];
            if (var >= 0) outChild.boundChanges.push_back({var, 0.0, 0.0});
        }
    }
    outChild.customBranches.push_back({kStpPluginName, {bestV, 0}});
    dec.children.push_back(std::move(inChild));
    dec.children.push_back(std::move(outChild));
    return dec;
}

// ---------------------------------------------------------------------------
// StpHeuristic
// ---------------------------------------------------------------------------

StpHeuristic::StpHeuristic(const SapInstance& inst)
    : Heuristic("stp_tm", 0), inst_(inst) {}

std::optional<cip::Solution> StpHeuristic::run(cip::Solver& solver,
                                               const std::vector<double>& x) {
    const cip::Node* node = solver.currentNode();
    // Working copy reflecting the node state.
    Graph h = inst_.graph;
    if (node) {
        VertexBranchState st =
            parseVertexBranches(inst_, node->desc.customBranches);
        for (int v = 0; v < h.numVertices(); ++v)
            if (st.flag[v] == 1 && h.vertexAlive(v)) h.setTerminal(v, true);
    }
    const auto& ub = solver.localUb();
    std::vector<double> override(h.numEdges(), kInfCost);
    for (int e = 0; e < h.numEdges(); ++e) {
        if (h.edge(e).deleted) continue;
        const int v0 = inst_.arcVar[2 * e];
        const int v1 = inst_.arcVar[2 * e + 1];
        const bool usable = (v0 >= 0 && ub[v0] > 0.5) ||
                            (v1 >= 0 && ub[v1] > 0.5);
        if (!usable) {
            h.deleteEdge(e);
            continue;
        }
        double frac = 0.0;
        if (v0 >= 0) frac += x[v0];
        if (v1 >= 0) frac += x[v1];
        frac = std::min(1.0, frac);
        override[e] = h.edge(e).cost * (1.0 - frac) + 1e-6;
    }
    HeuristicSolution sol = primalHeuristic(h, 4, &override);
    if (!sol.valid()) return std::nullopt;
    // Strip branching-required leaves: globally only real terminals matter.
    std::vector<int> pruned = pruneTree(inst_.graph, sol.edges);
    cip::Solution out;
    out.x = treeToModelSolution(inst_, pruned);
    return out;
}

// ---------------------------------------------------------------------------
// StpSubproblemReducer (layered presolving)
// ---------------------------------------------------------------------------

StpSubproblemReducer::StpSubproblemReducer(const SapInstance& inst)
    : Presolver("stp_reduce", 10), inst_(inst) {}

cip::ReduceResult StpSubproblemReducer::presolve(cip::Solver& solver) {
    if (ran_) return cip::ReduceResult::Unchanged;
    ran_ = true;
    if (!solver.params().getBool("stp/layeredpresolve", true))
        return cip::ReduceResult::Unchanged;
    const bool extended = solver.params().getBool("stp/extended", true);
    return reduceSubgraphAndFix(solver, inst_, extended);
}

StpReductionPropagator::StpReductionPropagator(const SapInstance& inst,
                                               StpConshdlr* conshdlr)
    : Propagator("stp_redprop", 10),
      inst_(inst),
      conshdlr_(conshdlr),
      engine_(inst) {}

cip::ReduceResult StpReductionPropagator::propagate(cip::Solver& solver) {
    const cip::Node* node = solver.currentNode();
    if (!node || node->id == lastNode_)  // once per node
        return cip::ReduceResult::Unchanged;
    const bool extended = solver.params().getBool("stp/extended", true);
    const int freq = solver.params().getInt("stp/redprop/freq", 4);
    if (!solver.params().getBool("stp/redprop/incremental", true)) {
        // Legacy path: rebuild the subgraph from scratch at selected depths.
        if (freq <= 0 || node->depth == 0 || node->depth % freq != 0)
            return cip::ReduceResult::Unchanged;
        lastNode_ = node->id;
        return reduceSubgraphAndFix(solver, inst_, extended);
    }

    // Incremental path: run at frequency-selected depths (including the
    // root, which seeds the ascent cache) and whenever the primal bound
    // improved since the last pass — a better incumbent re-arms the
    // bound-based test at any depth.
    const double primal = solver.primalBound();
    const bool primalImproved = primal < lastPrimal_ - 1e-9;
    const bool freqDue = freq > 0 && node->depth % freq == 0;
    if (!freqDue && !primalImproved) return cip::ReduceResult::Unchanged;
    lastNode_ = node->id;
    lastPrimal_ = primal;

    VertexBranchState st = parseVertexBranches(inst_, node->desc.customBranches);
    const double offset = inst_.model.objOffset;
    const double pruning = solver.pruningCutoff();
    const double cutoffGraph =
        pruning < cip::kInf ? pruning - offset : kInfCost;
    // Submitting the in-pass heuristic solution (when it improves the
    // incumbent) is what makes the bound-based deletions below inheritable:
    // afterwards every solution they exclude is worse than the incumbent.
    const auto sink = [&](const HeuristicSolution& heur) -> double {
        std::vector<int> pruned = pruneTree(inst_.graph, heur.edges);
        cip::Solution cand;
        cand.x = treeToModelSolution(inst_, pruned);
        solver.submitSolution(std::move(cand));
        const double pc = solver.pruningCutoff();
        return pc < cip::kInf ? pc - offset : heur.cost;
    };
    ReduceEngine::RunResult res =
        engine_.run(solver.localUb(), st.flag, cutoffGraph, extended, sink);
    solver.addCost(res.cost);

    std::int64_t arcsFixed = 0;
    std::int64_t cutsFed = 0;
    bool reduced = false;
    bool infeasible = res.infeasible;
    if (res.ran && !infeasible) {
        const bool inherit =
            solver.params().getBool("propagating/redcostinherit", true);
        const auto& ub = solver.localUb();
        const auto fixEdges = [&](const std::vector<int>& edges,
                                  bool inheritable) {
            for (int e : edges) {
                for (int dir = 0; dir < 2; ++dir) {
                    const int var =
                        inst_.arcVar[2 * static_cast<std::size_t>(e) + dir];
                    if (var < 0 || ub[static_cast<std::size_t>(var)] <= 0.5)
                        continue;
                    const cip::ReduceResult r = solver.tightenUb(var, 0.0);
                    if (r == cip::ReduceResult::Infeasible) {
                        infeasible = true;
                        return;
                    }
                    if (r == cip::ReduceResult::Reduced) {
                        reduced = true;
                        ++arcsFixed;
                        if (inheritable && inherit)
                            solver.recordInheritedBound(var);
                    }
                }
            }
        };
        fixEdges(res.inheritedDeleted, true);
        if (!infeasible) fixEdges(res.localDeleted, false);
    }
    if (conshdlr_) {
        std::vector<std::vector<int>> cuts = engine_.takePendingCutVars();
        if (!cuts.empty()) {
            cutsFed = static_cast<std::int64_t>(cuts.size());
            conshdlr_->primeLocalSupports(std::move(cuts));
        }
    }
    const ReduceEngineStats& es = engine_.stats();
    solver.recordReductionStats(es.runs - reported_.runs, arcsFixed,
                                es.daWarmStarts - reported_.daWarmStarts,
                                es.lbSkips - reported_.lbSkips, cutsFed);
    reported_ = es;
    if (infeasible) return cip::ReduceResult::Infeasible;
    return reduced ? cip::ReduceResult::Reduced
                   : cip::ReduceResult::Unchanged;
}

cip::ReduceResult StpReductionPropagator::propagateLp(cip::Solver& solver) {
    if (!solver.params().getBool("stp/redprop/incremental", true) ||
        !solver.params().getBool("stp/redprop/lpfix", true))
        return cip::ReduceResult::Unchanged;
    const cip::Node* node = solver.currentNode();
    if (!node) return cip::ReduceResult::Unchanged;
    const double cutoff = solver.pruningCutoff();
    if (cutoff >= cip::kInf) return cip::ReduceResult::Unchanged;
    const double lpObj = solver.lpObjective();
    const double gap = cutoff - lpObj;
    if (gap <= 0) return cip::ReduceResult::Unchanged;  // pruned anyway
    if (node->id == lastLpNode_ && std::fabs(lpObj - lastLpObj_) <= 1e-12 &&
        std::fabs(cutoff - lastLpCutoff_) <= 1e-12)
        return cip::ReduceResult::Unchanged;  // same state, nothing new
    lastLpNode_ = node->id;
    lastLpObj_ = lpObj;
    lastLpCutoff_ = cutoff;

    const auto& rc = solver.lpRedcosts();
    const auto& x = solver.lpPrimal();
    const auto& lb = solver.localLb();
    const auto& ub = solver.localUb();
    const Graph& g = inst_.graph;
    VertexBranchState st = parseVertexBranches(inst_, node->desc.customBranches);
    const bool inherit =
        solver.params().getBool("propagating/redcostinherit", true);
    const auto isTerm = [&](int v) {
        return g.isTerminal(v) || st.flag[static_cast<std::size_t>(v)] == 1;
    };
    // Cheapest nonnegative reduced cost of a usable modeled arc leaving
    // `vertex` without returning to `fromVertex` (kInfCost: none exists).
    const auto minExtension = [&](int vertex, int fromVertex) -> double {
        double best = kInfCost;
        for (int e : g.incident(vertex)) {
            if (g.edge(e).deleted) continue;
            const int w = g.edge(e).other(vertex);
            if (w == fromVertex) continue;
            const int a = (g.edge(e).u == vertex) ? 2 * e : 2 * e + 1;
            const int var = inst_.arcVar[static_cast<std::size_t>(a)];
            if (var < 0 || static_cast<std::size_t>(var) >= rc.size() ||
                ub[static_cast<std::size_t>(var)] <= 0.5)
                continue;
            best = std::min(best, std::max(0.0, rc[static_cast<std::size_t>(var)]));
            if (best <= 0.0) break;
        }
        return best;
    };

    bool reduced = false;
    std::int64_t fixed = 0;
    for (int e = 0; e < g.numEdges(); ++e) {
        if (g.edge(e).deleted) continue;
        for (int dir = 0; dir < 2; ++dir) {
            const int var =
                inst_.arcVar[2 * static_cast<std::size_t>(e) + dir];
            if (var < 0 || static_cast<std::size_t>(var) >= rc.size())
                continue;
            if (ub[static_cast<std::size_t>(var)] <= 0.5 ||
                lb[static_cast<std::size_t>(var)] >= 0.5)
                continue;  // already fixed either way
            // Only arcs at zero in the LP optimum may be fixed (the
            // propagateLp contract: the LP point must stay feasible).
            if (x[static_cast<std::size_t>(var)] > 1e-6) continue;
            const double r = rc[static_cast<std::size_t>(var)];
            if (r <= 1e-9) continue;
            const int head = dir == 0 ? g.edge(e).v : g.edge(e).u;
            const int tail = dir == 0 ? g.edge(e).u : g.edge(e).v;
            double needed = r;
            if (!isTerm(head)) {
                // Flow balance: an arc into a non-required non-terminal
                // must be extended by an outgoing arc, whose reduced cost
                // any improving solution pays on top.
                const double ext = minExtension(head, tail);
                needed = ext >= kInfCost ? kInfCost : r + ext;
            }
            if (needed > gap + 1e-9) {
                const cip::ReduceResult rr = solver.tightenUb(var, 0.0);
                if (rr == cip::ReduceResult::Infeasible) return rr;
                if (rr == cip::ReduceResult::Reduced) {
                    reduced = true;
                    ++fixed;
                    if (inherit) solver.recordInheritedBound(var);
                }
            }
        }
    }
    if (fixed > 0) solver.recordReductionStats(0, fixed, 0, 0, 0);
    return reduced ? cip::ReduceResult::Reduced : cip::ReduceResult::Unchanged;
}

cip::ReduceResult reduceSubgraphAndFix(cip::Solver& solver,
                                       const SapInstance& inst_,
                                       bool extended) {
    // Materialize the subproblem's graph from the local bounds.
    Graph h = inst_.graph;
    const auto& ub = solver.localUb();
    for (int e = 0; e < h.numEdges(); ++e) {
        if (h.edge(e).deleted) continue;
        const int v0 = inst_.arcVar[2 * e];
        const int v1 = inst_.arcVar[2 * e + 1];
        const bool usable = (v0 >= 0 && ub[v0] > 0.5) ||
                            (v1 >= 0 && ub[v1] > 0.5);
        if (!usable) h.deleteEdge(e);
    }
    const std::vector<cip::CustomBranch>& cbs =
        solver.currentNode() ? solver.currentNode()->desc.customBranches
                             : solver.rootSubproblem().customBranches;
    VertexBranchState st = parseVertexBranches(inst_, cbs);
    for (int v = 0; v < h.numVertices(); ++v)
        if (st.flag[v] == 1 && h.vertexAlive(v)) h.setTerminal(v, true);

    // Deletion-only reduction loop (no contractions: the variable space is
    // fixed). Because branching has deleted vertices and added terminals,
    // these tests frequently fire even when root presolving could not.
    ReductionStats stats;
    for (int round = 0; round < 2; ++round) {
        const long long before = stats.edgesDeleted;
        // Dangling non-terminal chains: single-pass queue-based degree-1
        // peel (deleting a leaf edge can only turn its neighbor into the
        // next leaf, so seeding with the current leaves is complete).
        std::queue<int> leaves;
        for (int v = 0; v < h.numVertices(); ++v)
            if (h.vertexAlive(v) && !h.isTerminal(v) && h.degree(v) == 1)
                leaves.push(v);
        while (!leaves.empty()) {
            const int v = leaves.front();
            leaves.pop();
            if (!h.vertexAlive(v) || h.isTerminal(v) || h.degree(v) != 1)
                continue;
            int live = -1;
            for (int e : h.incident(v))
                if (!h.edge(e).deleted) {
                    live = e;
                    break;
                }
            if (live < 0) continue;
            const int w = h.edge(live).other(v);
            h.deleteEdge(live);
            ++stats.edgesDeleted;
            if (h.vertexAlive(w) && !h.isTerminal(w) && h.degree(w) == 1)
                leaves.push(w);
        }
        sdTest(h, stats);
        if (h.numTerminals() > 1) {
            HeuristicSolution heur = primalHeuristic(h, 4);
            if (heur.valid())
                boundBasedTest(h, stats, heur.cost, extended);
        }
        if (stats.edgesDeleted == before) break;
    }

    // Charge deterministic work for the reduction pass.
    solver.addCost(1 + h.numActiveEdges() / 8);

    // Translate deletions into local arc fixings.
    bool reduced = false;
    for (int e = 0; e < h.numEdges(); ++e) {
        if (!h.edge(e).deleted || inst_.graph.edge(e).deleted) continue;
        for (int dir = 0; dir < 2; ++dir) {
            const int var = inst_.arcVar[2 * e + dir];
            if (var < 0 || ub[var] <= 0.5) continue;
            const cip::ReduceResult r = solver.tightenUb(var, 0.0);
            if (r == cip::ReduceResult::Infeasible) return r;
            reduced |= (r == cip::ReduceResult::Reduced);
        }
    }
    return reduced ? cip::ReduceResult::Reduced
                   : cip::ReduceResult::Unchanged;
}

void installStpPlugins(cip::Solver& solver, const SapInstance& inst) {
    auto conshdlr = std::make_unique<StpConshdlr>(inst);
    StpConshdlr* conshdlrPtr = conshdlr.get();
    solver.addConstraintHandler(std::move(conshdlr));
    solver.addBranchrule(std::make_unique<StpVertexBranching>(inst));
    solver.addHeuristic(std::make_unique<StpHeuristic>(inst));
    solver.addPresolver(std::make_unique<StpSubproblemReducer>(inst));
    solver.addPropagator(
        std::make_unique<StpReductionPropagator>(inst, conshdlrPtr));
    // The generic LP diving heuristic rounds arc variables into meaningless
    // non-trees; the TM heuristic replaces it.
    solver.params().setBool("heuristics/diving/enabled", false);
    // Separate Steiner cuts heavily at the root, sparingly in the tree, and
    // keep the dense LP lean through the cut pool.
    if (!solver.params().has("separating/maxroundsroot"))
        solver.params().setInt("separating/maxroundsroot", 20);
    solver.params().setInt("separating/maxrounds", 3);
    solver.params().setInt("separating/maxpoolsize", 250);
    // Cut separation engine defaults (overridable from the outside).
    cip::ParamSet& p = solver.params();
    if (!p.has("stp/sepa/nestedcuts")) p.setBool("stp/sepa/nestedcuts", true);
    if (!p.has("stp/sepa/backcuts")) p.setBool("stp/sepa/backcuts", true);
    if (!p.has("stp/sepa/creepflow")) p.setBool("stp/sepa/creepflow", false);
    if (!p.has("stp/sepa/warmstart")) p.setBool("stp/sepa/warmstart", true);
    if (!p.has("stp/sepa/maxcuts")) p.setInt("stp/sepa/maxcuts", 12);
    if (!p.has("stp/sepa/violationtol"))
        p.setReal("stp/sepa/violationtol", 0.05);
    if (!p.has("stp/sepa/maxnested")) p.setInt("stp/sepa/maxnested", 8);
    // Solver-lifetime dominance-filtered cut pool: reject duplicate and
    // dominated (superset-support) cuts across rounds, retire pooled cuts a
    // stronger subset cut supersedes. 0 = pool every cut regardless of
    // support width.
    if (!p.has("stp/sepa/pooldominance"))
        p.setBool("stp/sepa/pooldominance", true);
    if (!p.has("separating/poolmaxsupport"))
        p.setInt("separating/poolmaxsupport", 0);
    // Cross-solver cut sharing: piggyback newly admitted pool supports on
    // Status/Terminated (bounded batches) and accept certification-gated
    // priming bundles with assignments. Read by the ug layer and by the
    // SteinerUserPlugins sharing hooks; disabling reproduces strictly
    // per-solver separation.
    if (!p.has("stp/share/enable")) p.setBool("stp/share/enable", true);
    if (!p.has("stp/share/maxcutsup")) p.setInt("stp/share/maxcutsup", 32);
    // In-tree reduction propagation: incremental persistent engine with
    // warm-started dual ascent (off: the legacy rebuild-per-pass loop), and
    // LP-reduced-cost arc fixing with the flow-balance extension.
    if (!p.has("stp/redprop/incremental"))
        p.setBool("stp/redprop/incremental", true);
    if (!p.has("stp/redprop/lpfix")) p.setBool("stp/redprop/lpfix", true);
}

}  // namespace steiner
