#include "steiner/plugins.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "steiner/dualascent.hpp"
#include "steiner/heuristics.hpp"
#include "steiner/maxflow.hpp"
#include "steiner/reductions.hpp"
#include "steiner/shortest.hpp"

namespace steiner {

namespace {
constexpr double kCutViolationTol = 0.05;
constexpr int kMaxCutsPerRound = 12;
}  // namespace

VertexBranchState parseVertexBranches(
    const SapInstance& inst, const std::vector<cip::CustomBranch>& cbs) {
    VertexBranchState st(inst.graph.numVertices());
    for (const cip::CustomBranch& cb : cbs) {
        if (cb.plugin != kStpPluginName || cb.data.size() != 2) continue;
        const int v = static_cast<int>(cb.data[0]);
        if (v < 0 || v >= inst.graph.numVertices()) continue;
        st.flag[v] = static_cast<signed char>(cb.data[1]);
    }
    return st;
}

// ---------------------------------------------------------------------------
// StpConshdlr
// ---------------------------------------------------------------------------

StpConshdlr::StpConshdlr(const SapInstance& inst)
    : ConstraintHandler(kStpPluginName, 0),
      inst_(inst),
      required_(inst.graph.numVertices(), 0) {}

std::vector<std::pair<int, double>> StpConshdlr::inArcCoefs(int v) const {
    std::vector<std::pair<int, double>> coefs;
    for (int e : inst_.graph.incident(v)) {
        if (inst_.graph.edge(e).deleted) continue;
        const int a = (inst_.graph.edge(e).u == v) ? 2 * e + 1 : 2 * e;
        if (inst_.arcVar[a] >= 0) coefs.emplace_back(inst_.arcVar[a], 1.0);
    }
    return coefs;
}

void StpConshdlr::nodeActivated(cip::Solver& solver) {
    const cip::Node* node = solver.currentNode();
    if (!node) return;
    VertexBranchState st = parseVertexBranches(inst_, node->desc.customBranches);
    std::fill(required_.begin(), required_.end(), 0);
    for (int v = 0; v < inst_.graph.numVertices(); ++v)
        if (st.flag[v] == 1) required_[v] = 1;

    // In-degree >= 1 rows for required vertices (create lazily).
    for (int v = 0; v < inst_.graph.numVertices(); ++v) {
        if (required_[v] && vertexRow_.find(v) == vertexRow_.end()) {
            auto coefs = inArcCoefs(v);
            if (coefs.empty()) continue;
            vertexRow_[v] =
                solver.addManagedRow(cip::Row(std::move(coefs), 1.0, cip::kInf));
        }
    }
    for (auto& [v, handle] : vertexRow_) {
        if (required_[v])
            solver.setManagedRowBounds(handle, 1.0, cip::kInf);
        else
            solver.setManagedRowBounds(handle, -cip::kInf, cip::kInf);
    }
    // Node-local Steiner cuts separated for required vertices.
    for (auto& [v, handle] : localCuts_) {
        if (required_[v])
            solver.setManagedRowBounds(handle, 1.0, cip::kInf);
        else
            solver.setManagedRowBounds(handle, -cip::kInf, cip::kInf);
    }
}

bool StpConshdlr::check(cip::Solver&, const std::vector<double>& x) {
    // Global feasibility: every *real* terminal reachable from the root by
    // arcs with value 1 (vertex-branching requirements are node-local and
    // deliberately not part of the global check).
    const Graph& g = inst_.graph;
    std::vector<bool> seen(g.numVertices(), false);
    std::queue<int> q;
    q.push(inst_.root);
    seen[inst_.root] = true;
    while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (int e : g.incident(v)) {
            if (g.edge(e).deleted) continue;
            const int a = (g.edge(e).u == v) ? 2 * e : 2 * e + 1;  // v -> w
            const int var = inst_.arcVar[a];
            if (var < 0 || x[var] < 0.5) continue;
            const int w = g.edge(e).other(v);
            if (!seen[w]) {
                seen[w] = true;
                q.push(w);
            }
        }
    }
    for (int t : g.terminals())
        if (!seen[t]) return false;
    return true;
}

int StpConshdlr::separateTarget(cip::Solver& solver,
                                const std::vector<double>& x, int target,
                                bool asManaged) {
    const Graph& g = inst_.graph;
    MaxFlow mf(g.numVertices());
    // Arc ids in mf correspond positionally to model vars.
    for (std::size_t var = 0; var < inst_.varArc.size(); ++var) {
        const int a = inst_.varArc[var];
        const Edge& e = g.edge(a / 2);
        const int tail = (a % 2 == 0) ? e.u : e.v;
        const int head = (a % 2 == 0) ? e.v : e.u;
        mf.addArc(tail, head, std::max(0.0, x[var]));
    }
    const double flow = mf.solve(inst_.root, target);
    if (flow >= 1.0 - kCutViolationTol) return 0;
    std::vector<bool> side = mf.minCutSourceSide(inst_.root);
    std::vector<std::pair<int, double>> coefs;
    for (std::size_t var = 0; var < inst_.varArc.size(); ++var) {
        const int a = inst_.varArc[var];
        const Edge& e = g.edge(a / 2);
        const int tail = (a % 2 == 0) ? e.u : e.v;
        const int head = (a % 2 == 0) ? e.v : e.u;
        if (side[tail] && !side[head])
            coefs.emplace_back(static_cast<int>(var), 1.0);
    }
    if (coefs.empty()) return 0;
    if (asManaged) {
        const int handle =
            solver.addManagedRow(cip::Row(std::move(coefs), 1.0, cip::kInf));
        solver.setManagedRowBounds(handle, 1.0, cip::kInf);
        localCuts_.emplace_back(target, handle);
    } else {
        solver.addCut(cip::Row(std::move(coefs), 1.0, cip::kInf));
    }
    return 1;
}

int StpConshdlr::separate(cip::Solver& solver, const std::vector<double>& x) {
    const Graph& g = inst_.graph;
    int cuts = 0;
    for (int t : g.terminals()) {
        if (t == inst_.root) continue;
        cuts += separateTarget(solver, x, t, /*asManaged=*/false);
        if (cuts >= kMaxCutsPerRound) return cuts;
    }
    for (int v = 0; v < g.numVertices(); ++v) {
        if (!required_[v] || g.isTerminal(v)) continue;
        cuts += separateTarget(solver, x, v, /*asManaged=*/true);
        if (cuts >= kMaxCutsPerRound) return cuts;
    }
    return cuts;
}

int StpConshdlr::enforce(cip::Solver& solver, const std::vector<double>& x,
                         cip::BranchDecision&) {
    return separate(solver, x);
}

// ---------------------------------------------------------------------------
// StpVertexBranching
// ---------------------------------------------------------------------------

StpVertexBranching::StpVertexBranching(const SapInstance& inst)
    : Branchrule("stp_branch", 100), inst_(inst) {}

cip::BranchDecision StpVertexBranching::branch(cip::Solver& solver,
                                               const std::vector<double>& x) {
    cip::BranchDecision dec;
    if (!solver.params().getBool("stp/vertexbranching", true)) return dec;
    const cip::Node* node = solver.currentNode();
    if (!node) return dec;
    VertexBranchState st = parseVertexBranches(inst_, node->desc.customBranches);
    const Graph& g = inst_.graph;

    int bestV = -1;
    double bestScore = 0.1;  // minimum fractionality to prefer vertex branch
    for (int v = 0; v < g.numVertices(); ++v) {
        if (!g.vertexAlive(v) || g.isTerminal(v) || v == inst_.root) continue;
        if (st.flag[v] != -1) continue;
        double inflow = 0.0;
        bool anyArc = false;
        for (int e : g.incident(v)) {
            if (g.edge(e).deleted) continue;
            const int a = (g.edge(e).u == v) ? 2 * e + 1 : 2 * e;
            const int var = inst_.arcVar[a];
            if (var < 0) continue;
            anyArc = true;
            inflow += x[var];
        }
        if (!anyArc) continue;
        const double score = std::min(inflow, 1.0 - inflow);
        if (score > bestScore) {
            bestScore = score;
            bestV = v;
        }
    }
    if (bestV < 0) return dec;  // fall back to arc variable branching

    // Child A: bestV must be part of the solution (in-degree >= 1 managed
    // row + terminal status for layered presolving/heuristics).
    cip::BranchDecision::Child inChild;
    inChild.customBranches.push_back({kStpPluginName, {bestV, 1}});
    // Child B: bestV deleted — all incident arcs fixed to zero.
    cip::BranchDecision::Child outChild;
    for (int e : inst_.graph.incident(bestV)) {
        if (inst_.graph.edge(e).deleted) continue;
        for (int dir = 0; dir < 2; ++dir) {
            const int var = inst_.arcVar[2 * e + dir];
            if (var >= 0) outChild.boundChanges.push_back({var, 0.0, 0.0});
        }
    }
    outChild.customBranches.push_back({kStpPluginName, {bestV, 0}});
    dec.children.push_back(std::move(inChild));
    dec.children.push_back(std::move(outChild));
    return dec;
}

// ---------------------------------------------------------------------------
// StpHeuristic
// ---------------------------------------------------------------------------

StpHeuristic::StpHeuristic(const SapInstance& inst)
    : Heuristic("stp_tm", 0), inst_(inst) {}

std::optional<cip::Solution> StpHeuristic::run(cip::Solver& solver,
                                               const std::vector<double>& x) {
    const cip::Node* node = solver.currentNode();
    // Working copy reflecting the node state.
    Graph h = inst_.graph;
    if (node) {
        VertexBranchState st =
            parseVertexBranches(inst_, node->desc.customBranches);
        for (int v = 0; v < h.numVertices(); ++v)
            if (st.flag[v] == 1 && h.vertexAlive(v)) h.setTerminal(v, true);
    }
    const auto& ub = solver.localUb();
    std::vector<double> override(h.numEdges(), kInfCost);
    for (int e = 0; e < h.numEdges(); ++e) {
        if (h.edge(e).deleted) continue;
        const int v0 = inst_.arcVar[2 * e];
        const int v1 = inst_.arcVar[2 * e + 1];
        const bool usable = (v0 >= 0 && ub[v0] > 0.5) ||
                            (v1 >= 0 && ub[v1] > 0.5);
        if (!usable) {
            h.deleteEdge(e);
            continue;
        }
        double frac = 0.0;
        if (v0 >= 0) frac += x[v0];
        if (v1 >= 0) frac += x[v1];
        frac = std::min(1.0, frac);
        override[e] = h.edge(e).cost * (1.0 - frac) + 1e-6;
    }
    HeuristicSolution sol = primalHeuristic(h, 4, &override);
    if (!sol.valid()) return std::nullopt;
    // Strip branching-required leaves: globally only real terminals matter.
    std::vector<int> pruned = pruneTree(inst_.graph, sol.edges);
    cip::Solution out;
    out.x = treeToModelSolution(inst_, pruned);
    return out;
}

// ---------------------------------------------------------------------------
// StpSubproblemReducer (layered presolving)
// ---------------------------------------------------------------------------

StpSubproblemReducer::StpSubproblemReducer(const SapInstance& inst)
    : Presolver("stp_reduce", 10), inst_(inst) {}

cip::ReduceResult StpSubproblemReducer::presolve(cip::Solver& solver) {
    if (ran_) return cip::ReduceResult::Unchanged;
    ran_ = true;
    if (!solver.params().getBool("stp/layeredpresolve", true))
        return cip::ReduceResult::Unchanged;
    const bool extended = solver.params().getBool("stp/extended", true);
    return reduceSubgraphAndFix(solver, inst_, extended);
}

StpReductionPropagator::StpReductionPropagator(const SapInstance& inst)
    : Propagator("stp_redprop", 10), inst_(inst) {}

cip::ReduceResult StpReductionPropagator::propagate(cip::Solver& solver) {
    const cip::Node* node = solver.currentNode();
    if (!node || node->id == lastNode_)  // once per node
        return cip::ReduceResult::Unchanged;
    const int freq = solver.params().getInt("stp/redprop/freq", 4);
    if (freq <= 0 || node->depth == 0 || node->depth % freq != 0)
        return cip::ReduceResult::Unchanged;
    lastNode_ = node->id;
    const bool extended = solver.params().getBool("stp/extended", true);
    return reduceSubgraphAndFix(solver, inst_, extended);
}

cip::ReduceResult reduceSubgraphAndFix(cip::Solver& solver,
                                       const SapInstance& inst_,
                                       bool extended) {
    // Materialize the subproblem's graph from the local bounds.
    Graph h = inst_.graph;
    const auto& ub = solver.localUb();
    for (int e = 0; e < h.numEdges(); ++e) {
        if (h.edge(e).deleted) continue;
        const int v0 = inst_.arcVar[2 * e];
        const int v1 = inst_.arcVar[2 * e + 1];
        const bool usable = (v0 >= 0 && ub[v0] > 0.5) ||
                            (v1 >= 0 && ub[v1] > 0.5);
        if (!usable) h.deleteEdge(e);
    }
    const std::vector<cip::CustomBranch>& cbs =
        solver.currentNode() ? solver.currentNode()->desc.customBranches
                             : solver.rootSubproblem().customBranches;
    VertexBranchState st = parseVertexBranches(inst_, cbs);
    for (int v = 0; v < h.numVertices(); ++v)
        if (st.flag[v] == 1 && h.vertexAlive(v)) h.setTerminal(v, true);

    // Deletion-only reduction loop (no contractions: the variable space is
    // fixed). Because branching has deleted vertices and added terminals,
    // these tests frequently fire even when root presolving could not.
    ReductionStats stats;
    for (int round = 0; round < 2; ++round) {
        const long long before = stats.edgesDeleted;
        // Dangling non-terminal chains.
        bool changed = true;
        while (changed) {
            changed = false;
            for (int v = 0; v < h.numVertices(); ++v) {
                if (!h.vertexAlive(v) || h.isTerminal(v)) continue;
                if (h.degree(v) == 1) {
                    for (int e : std::vector<int>(h.incident(v)))
                        if (!h.edge(e).deleted) h.deleteEdge(e);
                    ++stats.edgesDeleted;
                    changed = true;
                }
            }
        }
        sdTest(h, stats);
        if (h.numTerminals() > 1) {
            HeuristicSolution heur = primalHeuristic(h, 4);
            if (heur.valid())
                boundBasedTest(h, stats, heur.cost, extended);
        }
        if (stats.edgesDeleted == before) break;
    }

    // Charge deterministic work for the reduction pass.
    solver.addCost(1 + h.numActiveEdges() / 8);

    // Translate deletions into local arc fixings.
    bool reduced = false;
    for (int e = 0; e < h.numEdges(); ++e) {
        if (!h.edge(e).deleted || inst_.graph.edge(e).deleted) continue;
        for (int dir = 0; dir < 2; ++dir) {
            const int var = inst_.arcVar[2 * e + dir];
            if (var < 0 || ub[var] <= 0.5) continue;
            const cip::ReduceResult r = solver.tightenUb(var, 0.0);
            if (r == cip::ReduceResult::Infeasible) return r;
            reduced |= (r == cip::ReduceResult::Reduced);
        }
    }
    return reduced ? cip::ReduceResult::Reduced
                   : cip::ReduceResult::Unchanged;
}

void installStpPlugins(cip::Solver& solver, const SapInstance& inst) {
    solver.addConstraintHandler(std::make_unique<StpConshdlr>(inst));
    solver.addBranchrule(std::make_unique<StpVertexBranching>(inst));
    solver.addHeuristic(std::make_unique<StpHeuristic>(inst));
    solver.addPresolver(std::make_unique<StpSubproblemReducer>(inst));
    solver.addPropagator(std::make_unique<StpReductionPropagator>(inst));
    // The generic LP diving heuristic rounds arc variables into meaningless
    // non-trees; the TM heuristic replaces it.
    solver.params().setBool("heuristics/diving/enabled", false);
    // Separate Steiner cuts heavily at the root, sparingly in the tree, and
    // keep the dense LP lean through the cut pool.
    if (!solver.params().has("separating/maxroundsroot"))
        solver.params().setInt("separating/maxroundsroot", 20);
    solver.params().setInt("separating/maxrounds", 3);
    solver.params().setInt("separating/maxpoolsize", 250);
}

}  // namespace steiner
