#include "steiner/reduceengine.hpp"

#include <algorithm>
#include <queue>

#include "steiner/reductions.hpp"

namespace steiner {

namespace {
constexpr std::size_t kMaxPendingCuts = 64;
}  // namespace

ReduceEngine::ReduceEngine(const SapInstance& inst)
    : inst_(inst),
      work_(inst.graph),
      extraTerm_(inst.graph.numVertices(), 0) {}

bool ReduceEngine::edgeUsable(const std::vector<double>& ub, int e) const {
    const int v0 = inst_.arcVar[2 * static_cast<std::size_t>(e)];
    const int v1 = inst_.arcVar[2 * static_cast<std::size_t>(e) + 1];
    return (v0 >= 0 && ub[static_cast<std::size_t>(v0)] > 0.5) ||
           (v1 >= 0 && ub[static_cast<std::size_t>(v1)] > 0.5);
}

ReduceEngine::SyncDelta ReduceEngine::sync(
    const std::vector<double>& ub,
    const std::vector<signed char>& requiredFlag) {
    SyncDelta d;
    const Graph& base = inst_.graph;
    for (int e = 0; e < base.numEdges(); ++e) {
        if (base.edge(e).deleted) continue;  // gone before the model existed
        const bool usable = edgeUsable(ub, e);
        const bool active = !work_.edge(e).deleted;
        if (active && !usable) {
            work_.deleteEdge(e);
            ++deletedCount_;
            ++d.deletions;
        } else if (!active && usable) {
            work_.restoreEdge(e);
            --deletedCount_;
            ++d.restorations;
            // The cached ascent never saw this edge: its reduced costs do
            // not constrain it, so the dual state is no longer feasible.
            if (daValid_ &&
                (daActive_.size() <= static_cast<std::size_t>(e) ||
                 !daActive_[static_cast<std::size_t>(e)]))
                daValid_ = false;
        }
    }
    const bool haveFlags = !requiredFlag.empty();
    for (int v = 0; v < base.numVertices(); ++v) {
        const bool want = haveFlags && base.vertexAlive(v) &&
                          !base.isTerminal(v) &&
                          requiredFlag[static_cast<std::size_t>(v)] == 1;
        const bool have = extraTerm_[static_cast<std::size_t>(v)] != 0;
        if (want && !have) {
            work_.setTerminal(v, true);
            extraTerm_[static_cast<std::size_t>(v)] = 1;
            ++extraTermCount_;
            ++d.termAdds;
        } else if (!want && have) {
            work_.setTerminal(v, false);
            extraTerm_[static_cast<std::size_t>(v)] = 0;
            --extraTermCount_;
            ++d.termDrops;
            // Cuts raised to satisfy this terminal may no longer be valid
            // Steiner cuts: the cached bound cannot be trusted.
            if (daValid_ && daExtra_.size() > static_cast<std::size_t>(v) &&
                daExtra_[static_cast<std::size_t>(v)])
                daValid_ = false;
        }
    }
    stats_.syncDeletions += d.deletions;
    stats_.syncRestorations += d.restorations;
    return d;
}

void ReduceEngine::snapshotAscentState() {
    daActive_.assign(static_cast<std::size_t>(work_.numEdges()), 0);
    for (int e = 0; e < work_.numEdges(); ++e)
        if (!work_.edge(e).deleted) daActive_[static_cast<std::size_t>(e)] = 1;
    daExtra_ = extraTerm_;
}

void ReduceEngine::harvest(const std::vector<std::vector<int>>& arcCuts) {
    std::vector<int> vars;
    for (const std::vector<int>& cut : arcCuts) {
        vars.clear();
        for (int a : cut) {
            // Unmodeled arcs are identically zero in the model; dropping
            // them from the support keeps the row's meaning.
            const int var = inst_.arcVar[static_cast<std::size_t>(a)];
            if (var >= 0) vars.push_back(var);
        }
        if (vars.empty()) continue;
        std::sort(vars.begin(), vars.end());
        vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
        if (pendingCutVars_.size() >= kMaxPendingCuts)
            pendingCutVars_.erase(pendingCutVars_.begin());
        pendingCutVars_.push_back(vars);
        ++stats_.cutsHarvested;
    }
}

std::vector<std::vector<int>> ReduceEngine::takePendingCutVars() {
    std::vector<std::vector<int>> out;
    out.swap(pendingCutVars_);
    return out;
}

void ReduceEngine::captureActive(std::vector<char>& out) const {
    out.assign(static_cast<std::size_t>(work_.numEdges()), 0);
    for (int e = 0; e < work_.numEdges(); ++e)
        if (!work_.edge(e).deleted) out[static_cast<std::size_t>(e)] = 1;
}

void ReduceEngine::appendNewlyDeleted(const std::vector<char>& before,
                                      std::vector<int>& out) {
    for (int e = 0; e < work_.numEdges(); ++e)
        if (before[static_cast<std::size_t>(e)] && work_.edge(e).deleted)
            out.push_back(e);
}

void ReduceEngine::peelDanglingChains(std::vector<int>& deletedOut) {
    // Queue-based degree-1 peel: deleting a leaf edge can only turn its
    // neighbor into the next leaf, so seeding with current leaves suffices.
    // Edges only — vertices stay alive so restoreEdge stays legal.
    std::queue<int> leaves;
    for (int v = 0; v < work_.numVertices(); ++v)
        if (work_.vertexAlive(v) && !work_.isTerminal(v) &&
            work_.degree(v) == 1)
            leaves.push(v);
    while (!leaves.empty()) {
        const int v = leaves.front();
        leaves.pop();
        if (!work_.vertexAlive(v) || work_.isTerminal(v) ||
            work_.degree(v) != 1)
            continue;
        int live = -1;
        for (int e : work_.incident(v))
            if (!work_.edge(e).deleted) {
                live = e;
                break;
            }
        if (live < 0) continue;
        const int w = work_.edge(live).other(v);
        work_.deleteEdge(live);
        deletedOut.push_back(live);
        if (work_.vertexAlive(w) && !work_.isTerminal(w) &&
            work_.degree(w) == 1)
            leaves.push(w);
    }
}

ReduceEngine::RunResult ReduceEngine::run(
    const std::vector<double>& ub,
    const std::vector<signed char>& requiredFlag, double cutoffGraph,
    bool useExtended, const HeuristicSink& onImprovingHeuristic) {
    RunResult out;
    const SyncDelta d = sync(ub, requiredFlag);
    out.cost = 1;
    const bool boundImproved = cutoffGraph < lastBound_ - 1e-9;
    if (!d.any() && daValid_ && !boundImproved) {
        // Same subgraph, same terminals, no better incumbent: the previous
        // pass already reached its fixpoint here, so re-running the tests
        // (and the ascent) cannot find anything new.
        ++stats_.lbSkips;
        out.lowerBound = da_.lowerBound;
        return out;
    }
    ++stats_.runs;
    out.ran = true;
    out.cost += work_.numActiveEdges() / 8;

    const bool multiTerminal = work_.numTerminals() > 1 && inst_.root >= 0;
    if (multiTerminal) {
        if (d.any() || !daValid_) {
            if (!daValid_) {
                if (!rootDaValid_) {
                    rootDa_ = dualAscent(inst_.graph, inst_.root);
                    rootDaValid_ = true;
                    ++stats_.daColdStarts;
                    out.cost += inst_.graph.numActiveEdges() / 8;
                    // The model's initial rows were capped; late ascent cuts
                    // beyond the cap are new. Already-present duplicates are
                    // never violated, so the primed gate skips them for free.
                    harvest(rootDa_.cuts);
                }
                da_ = dualAscentWarm(work_, rootDa_.redCost,
                                     rootDa_.lowerBound, inst_.root);
            } else {
                da_ = dualAscentWarm(work_, da_.redCost, da_.lowerBound,
                                     inst_.root);
            }
            ++stats_.daWarmStarts;
            daValid_ = true;
            snapshotAscentState();
            out.cost += work_.numActiveEdges() / 16;
            harvest(da_.cuts);
        } else {
            // Only the incumbent moved: the cached ascent is still a valid
            // bound for this subgraph — rerun the tests, skip the ascent.
            ++stats_.lbSkips;
        }
        out.lowerBound = da_.lowerBound;
        if (da_.disconnected ||
            (cutoffGraph < kInfCost &&
             da_.lowerBound >= cutoffGraph + 1e-6)) {
            out.infeasible = true;
            lastBound_ = cutoffGraph;
            return out;
        }
    }

    double bound = cutoffGraph;
    if (multiTerminal) {
        HeuristicSolution heur = primalHeuristic(work_, 4);
        out.cost += work_.numActiveEdges() / 16;
        if (heur.valid() && heur.cost < bound - 1e-9)
            bound = std::min(onImprovingHeuristic
                                 ? onImprovingHeuristic(heur)
                                 : heur.cost,
                             heur.cost);
    }

    ReductionStats rstats;
    for (int round = 0; round < 2; ++round) {
        const std::size_t before =
            out.inheritedDeleted.size() + out.localDeleted.size();
        peelDanglingChains(out.localDeleted);
        captureActive(activeScratch_);
        sdTest(work_, rstats);
        appendNewlyDeleted(activeScratch_, out.localDeleted);
        if (multiTerminal && daValid_ && bound < kInfCost) {
            captureActive(activeScratch_);
            boundBasedTestWithDa(work_, rstats, bound, useExtended, da_);
            appendNewlyDeleted(activeScratch_, out.inheritedDeleted);
        }
        if (out.inheritedDeleted.size() + out.localDeleted.size() == before)
            break;
    }
    deletedCount_ += static_cast<int>(out.inheritedDeleted.size() +
                                      out.localDeleted.size());
    stats_.boundDeleted +=
        static_cast<std::int64_t>(out.inheritedDeleted.size());
    stats_.altDeleted += static_cast<std::int64_t>(out.localDeleted.size());
    lastBound_ = std::min(cutoffGraph, bound);
    return out;
}

}  // namespace steiner
