// Dinic max-flow / min-cut on a small directed graph — the separation
// engine for violated directed Steiner cuts (Formulation 1, constraint (4)).
#pragma once

#include <vector>

namespace steiner {

class MaxFlow {
public:
    explicit MaxFlow(int numNodes);

    /// Add a directed arc; returns its id (for capacity updates / queries).
    int addArc(int from, int to, double capacity);

    void setCapacity(int arc, double capacity);

    /// Max flow from s to t. Mutates internal flow state; call minCutSourceSide
    /// afterwards for the cut.
    double solve(int s, int t);

    /// Vertices reachable from s in the residual network (after solve()).
    std::vector<bool> minCutSourceSide(int s) const;

    /// Reset flows to zero (capacities kept).
    void clearFlow();

private:
    struct Arc {
        int to;
        int rev;       ///< index of the reverse arc in adj_[to]
        double cap;
    };
    bool bfsLevel(int s, int t);
    double dfsAugment(int v, int t, double pushed);

    int n_;
    std::vector<std::vector<Arc>> adj_;
    std::vector<std::pair<int, int>> arcRef_;  ///< arc id -> (node, idx)
    std::vector<double> capSaved_;
    std::vector<int> level_, iter_;
};

}  // namespace steiner
