// Dinic max-flow / min-cut kernel of the Steiner cut separation engine.
//
// The network is stored in CSR form (one flat residual-arc array plus
// per-node offsets) and is built once; between solves only capacities
// change. The kernel supports the warm-start discipline the separation
// engine relies on:
//   - solve()/augment() continue from the *current* flow state, so a flow
//     computed for one sink can be repaired (rerouted/drained) and reused
//     for the next instead of restarting cold;
//   - raiseCapacity() widens an arc without touching its flow (nested-cut
//     saturation is a pure capacity increase, which never invalidates a
//     feasible flow);
//   - all BFS/DFS scratch buffers are reused across calls, and
//     augmentation/BFS-round counters expose the incremental cost;
//   - traversals only walk "active" arcs (positive residual capacity on the
//     entry or its pair), kept in per-node intrusive lists. LP points are
//     sparse, so this skips the vast majority of the network. The lists only
//     grow within a round (capacity updates activate arcs, flow never
//     deactivates them); rebuildActive() compacts them for a fresh round.
#pragma once

#include <cstdint>
#include <vector>

namespace steiner {

class MaxFlow {
public:
    explicit MaxFlow(int numNodes = 0);

    /// Drop all arcs and scratch state; the network has `numNodes` nodes.
    void reset(int numNodes);

    /// Add a directed arc; returns its id (for capacity updates / queries).
    /// Arcs added after a solve invalidate the built network (it is rebuilt
    /// lazily with all flow cleared).
    int addArc(int from, int to, double capacity);

    /// Set an arc's capacity, clearing any flow on the arc pair.
    void setCapacity(int arc, double capacity);

    /// Raise an arc's capacity to `capacity` (if larger) while keeping its
    /// current flow intact — the nested-cut saturation primitive.
    void raiseCapacity(int arc, double capacity);

    double capacity(int arc) const { return capSaved_[arc]; }
    /// Current flow on an arc (0 before any solve).
    double flow(int arc) const;

    /// Augment from the current flow state until no s->t augmenting path
    /// remains; returns the *additional* flow found (with zero initial flow
    /// this is the max-flow value). Call minCutSourceSide afterwards for
    /// the cut.
    double solve(int s, int t);

    /// Bounded augmentation: push at most `limit` additional units from s
    /// to t; returns the amount pushed.
    double augment(int s, int t, double limit);

    /// Bounded augmentation along greedy DFS paths (no BFS leveling), with
    /// per-node current-arc pointers persisting across the paths of one
    /// call: every arc is scanned past at most once, so a whole call costs
    /// one traversal plus the paths themselves. Cheaper than augment() for
    /// the flow-repair steps of the separation engine (reroute old-sink
    /// excess to the new sink, drain the rest back to the root).
    ///
    /// With `reverseOnly` the search walks only reverse (flow-carrying)
    /// entries — the drain case. There capacities only decrease, which makes
    /// the current-arc discipline exact: if a path exists it is found (flow
    /// decomposition guarantees one for draining excess). Without it the
    /// search is best-effort (a skipped arc may become useful again), which
    /// the reroute tolerates — whatever is missed is drained instead.
    double augmentDfs(int s, int t, double limit, bool reverseOnly = false);

    /// Source-side reachability of the most recent exhausted augment()/
    /// solve() call (its final failed level BFS visits exactly the residual
    /// source side), without running another BFS. Falls back to
    /// residualSourceSide(s, side) if the cached levels are stale.
    void sourceSideFromLastSearch(int s, std::vector<char>& side) const;

    /// Reset flows to zero (capacities kept).
    void clearFlow();

    /// Recompute the active-arc lists from the current capacities, dropping
    /// arcs that went inactive (e.g. zeroed by setCapacity since the last
    /// rebuild). Call once per separation round after refreshing capacities.
    void rebuildActive();

    /// Vertices reachable from s in the residual network (after solve()).
    std::vector<bool> minCutSourceSide(int s) const;

    /// Forward-residual reachability from s written into `side` (resized;
    /// 1 = reachable). Allocation-free variant of minCutSourceSide.
    void residualSourceSide(int s, std::vector<char>& side) const;

    /// Reverse-residual reachability: side[v] = 1 iff v can reach t through
    /// arcs with positive residual capacity. The arcs entering this set from
    /// outside form the sink-side min cut ("back cut").
    void residualSinkSide(int t, std::vector<char>& side) const;

    std::int64_t augmentations() const { return augmentations_; }
    std::int64_t bfsRounds() const { return bfsRounds_; }

private:
    struct Arc {
        int to;
        int pair;    ///< index of the paired (reverse) entry in arcs_
        double cap;  ///< residual capacity
    };
    void ensureBuilt();
    bool bfsLevel(int s, int t);
    double dfsAugment(int v, int t, double pushed);
    /// Put CSR entry `i` (leaving node `tail`) and its pair on the active
    /// lists if not there yet.
    void activatePair(int i, int tail);

    int n_ = 0;
    bool built_ = false;
    // Staged arc list (authoritative for structure + nominal capacities).
    std::vector<int> from_, to_;
    std::vector<double> capSaved_;
    // CSR residual network: arcs_[head_[v]..head_[v+1]) leave node v.
    std::vector<int> head_;
    std::vector<Arc> arcs_;
    std::vector<int> fwdIndex_;  ///< arc id -> index of forward entry in arcs_
    // Active-arc filter: intrusive singly-linked list per node over CSR
    // entries whose pair could carry residual flow.
    std::vector<int> actFirst_;   ///< per node: first active entry (-1 none)
    std::vector<int> actNext_;    ///< per entry: next active entry (-1 end)
    std::vector<char> isActive_;  ///< per entry: on the active list?
    // Reusable scratch.
    std::vector<int> level_, iter_, queue_;
    std::vector<int> pathStack_;   ///< augmentDfs: CSR entries of current path
    std::vector<char> onPath_;     ///< augmentDfs: node is on the current path
    std::vector<char> isRev_;      ///< per CSR entry: reverse half of its pair
    /// True while level_ holds the final (failed, hence complete) BFS of the
    /// last augment() — i.e. exact source-side reachability. Any flow or
    /// capacity change invalidates it.
    bool levelsAreCut_ = false;
    int levelSource_ = -1;  ///< source node of the BFS stored in level_
    std::int64_t augmentations_ = 0;
    std::int64_t bfsRounds_ = 0;
};

}  // namespace steiner
