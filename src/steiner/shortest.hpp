// Shortest paths, Voronoi partition w.r.t. terminals, and minimum spanning
// trees — shared primitives of the reductions and heuristics.
#pragma once

#include <vector>

#include "steiner/graph.hpp"

namespace steiner {

struct SpResult {
    std::vector<double> dist;  ///< kInfCost if unreachable
    std::vector<int> predEdge; ///< edge used to reach vertex (-1 at sources)
};

/// Dijkstra from a single source over non-deleted edges.
SpResult dijkstra(const Graph& g, int source);

/// Dijkstra from `source` with early termination: stops scanning once the
/// smallest queued distance exceeds `cap` and ignores edge `skipEdge`.
SpResult dijkstraCapped(const Graph& g, int source, double cap, int skipEdge);

/// Voronoi partition with respect to the terminal set: for each vertex, the
/// nearest terminal (base) and the distance to it.
struct Voronoi {
    std::vector<int> base;     ///< nearest terminal (-1 if unreachable)
    std::vector<double> dist;
    std::vector<int> predEdge;
};
Voronoi voronoi(const Graph& g);

/// Minimum spanning tree over the subgraph induced by `vertexMask`
/// (vertexMask[v] true => v included). Returns edge ids; empty if the
/// induced subgraph is disconnected (flag set false).
std::vector<int> inducedMst(const Graph& g, const std::vector<bool>& vertexMask,
                            bool* connected);

/// Remove non-terminal leaves from a tree given as edge ids (iteratively),
/// returning the pruned edge set.
std::vector<int> pruneTree(const Graph& g, std::vector<int> treeEdges);

}  // namespace steiner
