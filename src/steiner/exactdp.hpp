// Exact Steiner tree via the Dreyfus-Wagner / Erickson-Monma-Veinott
// dynamic program over terminal subsets, O(3^t n + 2^t m log n).
//
// Used as the ground-truth oracle in tests (|T| <= ~12) — the branch-and-cut
// solver must reproduce these optima exactly — and as the FPT comparison
// point the paper mentions for the PACE 2018 challenge tracks.
#pragma once

#include <optional>

#include "steiner/graph.hpp"

namespace steiner {

struct DpResult {
    double cost = kInfCost;
    /// Note: the DP reconstructs the optimal cost only (edge recovery is
    /// not needed for its oracle role).
};

/// Optimal Steiner tree cost; nullopt if terminals are disconnected or the
/// terminal count exceeds `maxTerminals` (guard against exponential blowup).
std::optional<double> steinerDpOptimal(const Graph& g, int maxTerminals = 14);

}  // namespace steiner
