#include "steiner/dualascent.hpp"

#include <algorithm>
#include <queue>

namespace steiner {

namespace {

/// Arc head/tail for the 2e / 2e+1 convention.
inline int arcTail(const Graph& g, int a) {
    const Edge& e = g.edge(a / 2);
    return (a % 2 == 0) ? e.u : e.v;
}
inline int arcHead(const Graph& g, int a) {
    const Edge& e = g.edge(a / 2);
    return (a % 2 == 0) ? e.v : e.u;
}

/// The ascent loop proper; `res.redCost` / `res.lowerBound` / `res.root`
/// must be initialized (cold: raw edge costs, warm: a previous result).
void runAscent(const Graph& g, int maxCuts, DualAscentResult& res);

}  // namespace

DualAscentResult dualAscent(const Graph& g, int root, int maxCuts) {
    DualAscentResult res;
    if (root < 0) root = g.rootTerminal();
    res.root = root;
    res.redCost.assign(2 * static_cast<std::size_t>(g.numEdges()), kInfCost);
    for (int e = 0; e < g.numEdges(); ++e) {
        if (g.edge(e).deleted) continue;
        res.redCost[2 * e] = g.edge(e).cost;
        res.redCost[2 * e + 1] = g.edge(e).cost;
    }
    if (root < 0) return res;
    runAscent(g, maxCuts, res);
    return res;
}

DualAscentResult dualAscentWarm(const Graph& g,
                                const std::vector<double>& warmRedCost,
                                double warmLowerBound, int root, int maxCuts) {
    DualAscentResult res;
    if (root < 0) root = g.rootTerminal();
    res.root = root;
    res.lowerBound = warmLowerBound;
    // Start from the caller's dual state; arcs whose edges are deleted in g
    // (or that the warm state never saw) are unusable.
    res.redCost.assign(2 * static_cast<std::size_t>(g.numEdges()), kInfCost);
    const std::size_t known = warmRedCost.size();
    for (int e = 0; e < g.numEdges(); ++e) {
        if (g.edge(e).deleted) continue;
        for (int a = 2 * e; a <= 2 * e + 1; ++a)
            res.redCost[a] = static_cast<std::size_t>(a) < known
                                 ? warmRedCost[static_cast<std::size_t>(a)]
                                 : g.edge(e).cost;
    }
    if (root < 0) return res;
    runAscent(g, maxCuts, res);
    return res;
}

namespace {

void runAscent(const Graph& g, int maxCuts, DualAscentResult& res) {
    const int root = res.root;

    std::vector<int> terms = g.terminals();
    std::vector<char> reached(g.numVertices(), 0);
    std::vector<char> inComp(g.numVertices(), 0);

    // A terminal t is satisfied when a zero-reduced-cost path root -> t
    // exists. We grow t's "cut component": vertices that reach t via
    // zero-rc arcs; while root is outside, raise duals on entering arcs.
    auto findComponent = [&](int t, std::vector<int>& comp) -> bool {
        // Backward BFS from t along zero-rc arcs (v -> t direction means we
        // look at arcs a with head inside the component).
        std::fill(inComp.begin(), inComp.end(), 0);
        comp.clear();
        std::queue<int> q;
        q.push(t);
        inComp[t] = 1;
        comp.push_back(t);
        while (!q.empty()) {
            const int v = q.front();
            q.pop();
            if (v == root) return true;  // connected
            for (int e : g.incident(v)) {
                if (g.edge(e).deleted) continue;
                const int w = g.edge(e).other(v);
                if (inComp[w]) continue;
                // Arc w -> v has zero reduced cost?
                const int a = (g.edge(e).u == w) ? 2 * e : 2 * e + 1;
                if (res.redCost[a] <= 1e-12) {
                    inComp[w] = 1;
                    comp.push_back(w);
                    q.push(w);
                }
            }
        }
        return false;
    };

    bool progress = true;
    int guard = 0;
    const int guardLimit = 50 * g.numEdges() + 1000;
    while (progress && guard++ < guardLimit) {
        progress = false;
        for (int t : terms) {
            if (t == root || reached[t]) continue;
            std::vector<int> comp;
            if (findComponent(t, comp)) {
                reached[t] = 1;
                continue;
            }
            // Entering arcs: tail outside comp, head inside.
            double delta = kInfCost;
            std::vector<int> entering;
            for (int v : comp) {
                for (int e : g.incident(v)) {
                    if (g.edge(e).deleted) continue;
                    const int w = g.edge(e).other(v);
                    if (inComp[w]) continue;
                    const int a = (g.edge(e).u == w) ? 2 * e : 2 * e + 1;
                    entering.push_back(a);
                    delta = std::min(delta, res.redCost[a]);
                }
            }
            if (entering.empty() || delta >= kInfCost) {
                res.disconnected = true;
                res.lowerBound = kInfCost;
                return;
            }
            for (int a : entering) res.redCost[a] -= delta;
            res.lowerBound += delta;
            if (static_cast<int>(res.cuts.size()) >= maxCuts)
                res.cuts.erase(res.cuts.begin());
            res.cuts.push_back(std::move(entering));
            progress = true;
        }
    }
}

}  // namespace

}  // namespace steiner
