// Wong's dual ascent for the Steiner arborescence problem (reference [55] of
// the paper). Produces a lower bound, reduced costs on arcs, and the cut
// rows raised along the way — SCIP-Jack uses exactly these to seed the
// initial LP and to drive bound-based reductions/propagation.
//
// Arc indexing convention (shared with the LP model builder): edge e yields
// arc 2e (u -> v) and arc 2e+1 (v -> u); deleted edges have no usable arcs.
#pragma once

#include <vector>

#include "steiner/graph.hpp"

namespace steiner {

struct DualAscentResult {
    double lowerBound = 0.0;
    bool disconnected = false;      ///< some terminal unreachable from root
    std::vector<double> redCost;    ///< size 2*numEdges
    /// Cut sets raised during the ascent: each entry is the arc-id list of a
    /// violated directed Steiner cut (usable as initial LP rows).
    std::vector<std::vector<int>> cuts;
    int root = -1;
};

/// Run dual ascent rooted at `root` (default: first terminal).
/// `maxCuts` bounds the number of recorded cut rows (most recent kept).
DualAscentResult dualAscent(const Graph& g, int root = -1, int maxCuts = 512);

/// Warm-started dual ascent: continue the ascent from a previous result's
/// reduced costs and lower bound instead of from the raw edge costs.
///
/// Validity invariant (the caller must guarantee it): `warmRedCost` and
/// `warmLowerBound` must stem from an ascent on a graph whose usable edge
/// set was a SUPERSET of g's and whose terminal set was a SUBSET of g's,
/// with the same root. Edge deletions only remove arcs from cuts (every
/// raised cut stays a valid directed Steiner cut) and extra terminals only
/// add unsatisfied constraints, so the dual solution stays feasible — this
/// holds along any root -> node path of the branch-and-bound tree.
/// Arcs of edges deleted in g are reset to +inf; with warmRedCost equal to
/// the raw edge costs and warmLowerBound == 0 this is exactly dualAscent().
DualAscentResult dualAscentWarm(const Graph& g,
                                const std::vector<double>& warmRedCost,
                                double warmLowerBound, int root = -1,
                                int maxCuts = 512);

}  // namespace steiner
