// Persistent per-solver reduction engine for in-tree Steiner propagation.
//
// The previous propagator rebuilt the node-induced subgraph from scratch at
// every pass (full graph copy + cold dual ascent). This engine keeps ONE
// working graph for the solver's lifetime and syncs it to the current node
// by edge delete/restore diffs derived from the local variable bounds, so a
// pass at an unchanged node costs a single sweep and no dual ascent at all.
//
// Dual-ascent caching. Wong's dual ascent produces reduced costs and a lower
// bound that remain valid for every graph whose usable edge set is a SUBSET
// of the ascent graph's and whose terminal set is a SUPERSET of the ascent
// terminals (same root): deletions only shrink raised cuts, extra terminals
// only add unsatisfied constraints. The engine therefore snapshots the
// active-edge set and extra-terminal set at ascent time and keeps the ascent
// as a warm start while the node moves *down* the tree; a jump to another
// subtree (an edge restored or a required-terminal dropped relative to the
// snapshot) falls back to a lazily computed root-graph ascent, which is a
// valid warm start for every node.
//
// Cut harvest. Cuts raised by the ascent are mapped to model-variable
// supports and handed to the caller as candidate separation rows; they are
// activated through the constraint handler's primed-cut path, whose
// violation check + global certification gate makes node-local supports
// harmless (invalid ones are dropped before ever reaching the LP).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "steiner/dualascent.hpp"
#include "steiner/graph.hpp"
#include "steiner/heuristics.hpp"
#include "steiner/stpmodel.hpp"

namespace steiner {

struct ReduceEngineStats {
    std::int64_t runs = 0;           ///< passes that ran the reduction tests
    std::int64_t syncDeletions = 0;  ///< edges deleted while syncing to bounds
    std::int64_t syncRestorations = 0;  ///< edges restored while syncing
    std::int64_t daWarmStarts = 0;   ///< warm-started ascents (prev or root)
    std::int64_t daColdStarts = 0;   ///< cold root-graph ascents
    std::int64_t lbSkips = 0;        ///< cached ascent reused, no recompute
    std::int64_t boundDeleted = 0;   ///< bound-based deletions (inheritable)
    std::int64_t altDeleted = 0;     ///< alternative-path/peel deletions
    std::int64_t cutsHarvested = 0;  ///< ascent cuts queued for separation
};

class ReduceEngine {
public:
    explicit ReduceEngine(const SapInstance& inst);

    struct RunResult {
        bool ran = false;         ///< false: clean skip, nothing changed
        bool infeasible = false;  ///< no improving solution below this node
        /// Edges newly deleted by cutoff-derived tests. Valid in the whole
        /// subtree: any solution using them is no better than the incumbent.
        /// The caller may record the corresponding arc fixings into the
        /// node's subproblem description (children inherit them).
        std::vector<int> inheritedDeleted;
        /// Edges newly deleted by optimality-preserving-only tests
        /// (alternative paths, dangling chains). Only sound node-locally: a
        /// later branching may remove the witness, so these must NOT be
        /// inherited.
        std::vector<int> localDeleted;
        double lowerBound = 0.0;  ///< graph-space dual-ascent bound (0 if none)
        std::int64_t cost = 0;    ///< deterministic work units for this call
    };

    /// Invoked when the in-pass heuristic beats the current pruning bound:
    /// receives the heuristic tree (engine-graph edge ids + cost) and
    /// returns the graph-space pruning bound to use for the bound-based test
    /// afterwards — typically the caller submits the solution and returns
    /// the updated cutoff, which is what makes the bound-test deletions
    /// inheritable. May be empty: the heuristic cost is used directly.
    using HeuristicSink = std::function<double(const HeuristicSolution&)>;

    /// Sync the working graph to (ub, requiredFlag) and run the reduction
    /// pass unless nothing changed since the previous call.
    ///  - ub: current local upper bounds over model variables,
    ///  - requiredFlag: vertex branch state (-1/0/1 per vertex; empty = no
    ///    vertex branches),
    ///  - cutoffGraph: graph-space pruning bound (model pruning cutoff minus
    ///    the model objective offset; kInfCost while no incumbent exists),
    ///  - useExtended: apply the extension-strengthened bound test.
    RunResult run(const std::vector<double>& ub,
                  const std::vector<signed char>& requiredFlag,
                  double cutoffGraph, bool useExtended,
                  const HeuristicSink& onImprovingHeuristic);

    /// Model-variable supports of dual-ascent cuts harvested since the last
    /// call (consuming read). Each is sorted + deduplicated; global validity
    /// is NOT guaranteed — feed them through a certification gate.
    std::vector<std::vector<int>> takePendingCutVars();

    const ReduceEngineStats& stats() const { return stats_; }
    /// The synced working graph (tests/diagnostics).
    const Graph& workGraph() const { return work_; }
    /// True while the cached ascent is valid for the working graph.
    bool ascentCached() const { return daValid_; }

private:
    struct SyncDelta {
        int deletions = 0;
        int restorations = 0;
        int termAdds = 0;
        int termDrops = 0;
        bool any() const {
            return deletions || restorations || termAdds || termDrops;
        }
    };

    SyncDelta sync(const std::vector<double>& ub,
                   const std::vector<signed char>& requiredFlag);
    bool edgeUsable(const std::vector<double>& ub, int e) const;
    void snapshotAscentState();
    void harvest(const std::vector<std::vector<int>>& arcCuts);
    void captureActive(std::vector<char>& out) const;
    void appendNewlyDeleted(const std::vector<char>& before,
                            std::vector<int>& out);
    void peelDanglingChains(std::vector<int>& deletedOut);

    const SapInstance& inst_;
    Graph work_;                       ///< persistent node-synced subgraph
    std::vector<signed char> extraTerm_;  ///< branch-required terminal flags
    int deletedCount_ = 0;  ///< edges deleted in work_ beyond the base graph
    int extraTermCount_ = 0;

    // Cached ascent for the working graph + its validity snapshot.
    DualAscentResult da_;
    bool daValid_ = false;
    std::vector<char> daActive_;        ///< edge-active set at ascent time
    std::vector<signed char> daExtra_;  ///< extra terminals at ascent time

    // Root-graph ascent: a valid warm start for every node (lazy).
    DualAscentResult rootDa_;
    bool rootDaValid_ = false;

    double lastBound_ = kInfCost;  ///< pruning bound used by the last pass
    std::vector<std::vector<int>> pendingCutVars_;
    ReduceEngineStats stats_;
    std::vector<char> activeScratch_;
};

}  // namespace steiner
