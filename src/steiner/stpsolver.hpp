// SteinerSolver — the sequential SCIP-Jack-analogue facade: reductions,
// SAP transformation, branch-and-cut via the CIP framework, and solution
// mapping back to the original instance.
#pragma once

#include "cip/solver.hpp"
#include "steiner/stpmodel.hpp"

namespace steiner {

struct SteinerResult {
    cip::Status status = cip::Status::Unsolved;
    double cost = kInfCost;            ///< total cost (incl. presolve-fixed)
    double dualBound = -kInfCost;      ///< proven lower bound
    std::vector<int> originalEdges;    ///< solution edges in the input graph
    bool solvedByPresolve = false;
    ReductionStats reductions;
    cip::Stats stats;
};

class SteinerSolver {
public:
    explicit SteinerSolver(Graph instance) : original_(std::move(instance)) {}

    /// Run the reduction package and build the SAP model. Idempotent.
    void presolve(bool extendedReductions = true);

    /// The reduced instance + model (valid after presolve()).
    const SapInstance& instance() const { return inst_; }
    const ReductionStats& reductionStats() const { return red_; }

    /// Solve sequentially with the given parameters.
    SteinerResult solve(const cip::ParamSet& params = {});

    /// Convert a CIP solution on the SAP model into a result (tree pruned to
    /// the real terminals, costs recomputed, edges mapped to the original).
    SteinerResult makeResult(cip::Status status, const cip::Solution& sol,
                             double dualBound, const cip::Stats& stats) const;

    const Graph& originalGraph() const { return original_; }

private:
    Graph original_;
    SapInstance inst_;
    ReductionStats red_;
    bool presolved_ = false;
};

}  // namespace steiner
