// Abstraction of the "base solver" UG parallelizes.
//
// Each ParaSolver owns one BaseSolver instance per received subproblem; a
// fresh instance is created on every assignment so that presolving runs
// again on the subproblem — the paper's layered presolving.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "cip/model.hpp"
#include "cip/node.hpp"
#include "cip/params.hpp"
#include "ug/message.hpp"

namespace ug {

enum class BaseStatus {
    Working,
    Optimal,      ///< subproblem fully solved (or pruned empty)
    Infeasible,
    Interrupted,
    Failed,
};

class BaseSolver {
public:
    virtual ~BaseSolver() = default;

    /// Load a subproblem; `incumbent` may be null. Implementations run their
    /// (layered) presolve lazily on the first step.
    virtual void load(const cip::SubproblemDesc& desc,
                      const cip::Solution* incumbent) = 0;

    /// Process one unit of work (one B&B node); returns deterministic cost.
    virtual std::int64_t step() = 0;

    virtual bool finished() const = 0;
    virtual BaseStatus status() const = 0;

    virtual double dualBound() const = 0;
    virtual int numOpenNodes() const = 0;
    virtual std::int64_t nodesProcessed() const = 0;

    /// Cumulative LP effort on the current subproblem (see ug::LpEffort).
    /// Base solvers without an LP relaxation report all-zero counters.
    virtual LpEffort lpEffort() const { return {}; }

    /// Best solution found so far (invalid Solution if none).
    virtual const cip::Solution& incumbent() const = 0;

    /// Adopt an externally found solution / cutoff.
    virtual void injectSolution(const cip::Solution& sol) = 0;

    /// Extract one open subproblem for transfer (collect mode); the node
    /// leaves this solver's tree.
    virtual std::optional<cip::SubproblemDesc> extractOpenNode() = 0;

    /// Register a callback fired on each new incumbent.
    virtual void setIncumbentCallback(
        std::function<void(const cip::Solution&)> cb) = 0;

    /// Consume up to `maxCuts` globally valid cut supports newly admitted to
    /// this solver's dominance pool since the last call (cross-solver cut
    /// sharing; piggybacked on Status/Terminated). Base solvers without a
    /// shareable cut pool return an empty bundle.
    virtual CutBundle takeShareableCuts(int maxCuts) {
        (void)maxCuts;
        return {};
    }

    /// Offer shared cut supports received with the assignment. They must not
    /// enter the LP directly — implementations certify validity and check
    /// violation against their own relaxation first. Default: ignore.
    virtual void primeSharedCuts(const CutBundle& cuts) { (void)cuts; }
};

/// Creates base solvers; `params` carries racing settings (merged on top of
/// the instance defaults).
class BaseSolverFactory {
public:
    virtual ~BaseSolverFactory() = default;
    virtual std::unique_ptr<BaseSolver> create(const cip::ParamSet& params) = 0;
};

}  // namespace ug
