// Checkpoint serialization: primitive nodes + incumbent, as plain text.
//
// UG's checkpointing strategy (paper section 2.2): only primitive nodes —
// nodes with no ancestor inside the LoadCoordinator — are saved. Restarting
// regenerates the discarded subtrees, an overhead that the paper notes is
// often outweighed by re-applying global presolving on restart.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cip/model.hpp"
#include "cip/node.hpp"

namespace ug {

struct Checkpoint {
    std::vector<cip::SubproblemDesc> nodes;
    cip::Solution incumbent;      ///< may be invalid (no solution yet)
    double dualBound = -cip::kInf;
};

/// Serialize to a file; returns false on I/O failure.
bool saveCheckpoint(const std::string& path, const Checkpoint& cp);

/// Load from a file; nullopt on missing/corrupt file.
std::optional<Checkpoint> loadCheckpoint(const std::string& path);

}  // namespace ug
