// Crash-consistent checkpoint serialization.
//
// UG's checkpointing strategy (paper section 2.2): only primitive nodes —
// nodes with no ancestor inside the LoadCoordinator — are saved. Restarting
// regenerates the discarded subtrees, an overhead that the paper notes is
// often outweighed by re-applying global presolving on restart.
//
// Durability model (src/ug/README.md "Recovery" documents the format):
//  - Binary, versioned, little-endian. The file is a fixed header (magic,
//    version, generation, section count, header CRC32) followed by typed
//    sections, each framed as {id, payload length, payload CRC32, payload}.
//    Every strict prefix of a valid file fails validation, so a torn or
//    short write can never be mistaken for a checkpoint.
//  - Atomic replace: the image is written to `<slot>.tmp`, flushed and
//    fsync'd, then rename(2)d over the slot (and the directory fsync'd), so
//    a crash mid-write leaves the previous slot contents intact.
//  - A/B double buffering: `saveCheckpoint(path, ...)` alternates between
//    `path.a` and `path.b`, always overwriting the older (or invalid) slot
//    with a strictly increasing generation number. `loadCheckpoint(path)`
//    validates both slots and returns the newest one that passes — if the
//    latest generation is corrupt (torn write, bit rot), the previous good
//    generation is still there.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "cip/model.hpp"
#include "cip/node.hpp"
#include "ug/config.hpp"
#include "ug/cutbundle.hpp"

namespace ug {

struct Checkpoint {
    std::vector<cip::SubproblemDesc> nodes;
    cip::Solution incumbent;      ///< may be invalid (no solution yet)
    double dualBound = -cip::kInf;

    // Incumbent provenance: rank that reported it and the racing setting it
    // ran under (-1: unknown / initial solution).
    int incumbentSource = -1;
    int incumbentSetting = -1;

    /// Global cut pool supports in the delta-coded wire form, so a restart
    /// resumes cross-solver sharing instead of re-deriving the fleet's
    /// accumulated root cuts from scratch.
    CutBundle cuts;

    /// Cumulative run statistics; restored on restart so effort accounting
    /// continues across interruptions instead of resetting.
    bool hasStats = false;
    UgStats stats;

    /// Whether the racing ramp-up phase had already been resolved when the
    /// checkpoint was taken (restarts skip racing either way; recorded for
    /// diagnostics and forward compatibility).
    bool racingDone = false;
};

/// Why a load failed (or how it succeeded) — for logging and tests.
struct CheckpointLoadReport {
    int slotsPresent = 0;         ///< slot files that exist
    int slotsCorrupt = 0;         ///< present slots that failed validation
    std::uint64_t generation = 0; ///< generation loaded (0: none)
    std::string error;            ///< first validation failure, if any
};

/// Deterministic torn-write fault injector (FaultPlan::tornWriteProb): with
/// the configured probability a checkpoint image is truncated at a random
/// byte offset before it replaces its slot, simulating a crash mid-write
/// that rename() made visible anyway (the worst case a real fs can hand us
/// back after a power cut with insufficient barriers).
class TornWriter {
public:
    TornWriter(double prob, unsigned seed) : prob_(prob), rng_(seed ^ 0x70171u) {}

    /// Bytes of an `n`-byte image to keep; n itself means "write cleanly".
    std::size_t truncateAt(std::size_t n) {
        if (n == 0 ||
            std::uniform_real_distribution<double>(0.0, 1.0)(rng_) >= prob_)
            return n;
        ++injected_;
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng_);
    }

    long long injected() const { return injected_; }

private:
    double prob_;
    std::mt19937 rng_;
    long long injected_ = 0;
};

/// The two slot files behind a logical checkpoint path.
std::string checkpointSlotA(const std::string& path);
std::string checkpointSlotB(const std::string& path);

/// Remove both slots (and a stale tmp file) — test/cleanup helper.
void removeCheckpointFiles(const std::string& path);

/// Serialize to the older/invalid slot of `path` with the next generation
/// number, atomically (tmp + fsync + rename). Returns false on I/O failure.
/// `torn` optionally injects a short write (fault testing).
bool saveCheckpoint(const std::string& path, const Checkpoint& cp,
                    TornWriter* torn = nullptr);

/// Load the newest valid generation across both slots; nullopt when neither
/// slot validates. `report`, when given, receives the failure reason and
/// slot census (a caller distinguishes "no checkpoint yet" from "checkpoint
/// corrupt" via slotsPresent).
std::optional<Checkpoint> loadCheckpoint(const std::string& path,
                                         CheckpointLoadReport* report = nullptr);

}  // namespace ug
