// LoadCoordinator-side global cut pool (cross-solver cut sharing).
//
// Solvers piggyback their newly admitted dominance-pool supports on
// Status/Terminated/RacingFinished messages; the LoadCoordinator merges them
// here under the same antichain invariant the per-solver steiner::CutPool
// keeps (duplicate rejection, subset-dominance rejection, retroactive
// superset eviction), then attaches a relevance-filtered bundle to every
// Subproblem / RacingSubproblem assignment so a receiving solver starts from
// the fleet's accumulated root cuts instead of an empty pool.
//
// Per-entry "already knows" rank bitsets prevent echoing a cut back to the
// solver that reported it (or re-sending one already shipped); a touch clock
// (bumped on admission, duplicate re-report, and send) drives oldest-first
// eviction once the pool exceeds capacity. All state lives in plain vectors
// and every operation iterates in deterministic order, so SimEngine runs are
// bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "cip/node.hpp"
#include "ug/cutbundle.hpp"

namespace ug {

class GlobalCutPool {
public:
    /// `numRanks` is the highest solver rank + 1 (ranks are 1-based, rank 0
    /// is the coordinator); `capacity` bounds the number of live supports.
    GlobalCutPool(int numRanks, int capacity);

    struct MergeStats {
        int reported = 0;  ///< supports decoded from the bundle
        int pooled = 0;    ///< newly admitted (survived the dominance filter)
        bool decodeFailed = false;  ///< bundle framing was corrupt (dropped
                                    ///< whole); feeds the sender quarantine
    };

    /// Merges a solver-reported bundle. The origin rank is marked as knowing
    /// every support it reported (admitted or duplicate), so the pool never
    /// echoes a cut back to its source. A corrupt bundle is dropped whole.
    MergeStats merge(const CutBundle& bundle, int origin);

    /// Builds the priming bundle for an assignment to `receiver`: up to
    /// `maxCuts` live supports the receiver does not already know, skipping
    /// supports made trivially satisfied by the subproblem (any support var
    /// fixed to 1 — the row cannot separate anything there). Popular
    /// supports — independently admitted by >= 2 solvers' local dominance
    /// pools — go first (they proved useful across subtrees, so they are the
    /// best bet for yet another receiver), newest-touched within each class;
    /// everything sent is marked known to the receiver and touch-refreshed
    /// (a cut in active circulation should not age out).
    CutBundle bundleFor(int receiver, const cip::SubproblemDesc& desc,
                        int maxCuts);

    int size() const { return liveCount_; }

    /// All live supports in deterministic (id) order — test/oracle hook.
    std::vector<CutSupport> snapshot() const;

    // Cumulative counters (coordinator-side telemetry).
    std::int64_t pooled() const { return pooled_; }
    std::int64_t sent() const { return sent_; }
    std::int64_t dupRejected() const { return dupRejected_; }
    std::int64_t dominatedRejected() const { return dominatedRejected_; }
    std::int64_t dominatedEvicted() const { return dominatedEvicted_; }
    std::int64_t capacityEvicted() const { return capacityEvicted_; }

private:
    struct Entry {
        std::vector<int> vars;  ///< sorted unique support var ids
        int rhsClass = 1;
        std::uint64_t touch = 0;            ///< last-use stamp (monotone)
        std::vector<std::uint64_t> known;   ///< rank bitset: already has it
        std::vector<std::uint64_t> reporters;  ///< rank bitset: admitted it
                                               ///< into its local pool
        int admits = 0;  ///< distinct ranks that reported (re-found) the cut
        bool alive = false;
    };

    bool knows(const Entry& e, int rank) const {
        return (e.known[static_cast<std::size_t>(rank) >> 6] >>
                (static_cast<unsigned>(rank) & 63u)) & 1u;
    }
    void markKnown(Entry& e, int rank) {
        e.known[static_cast<std::size_t>(rank) >> 6] |=
            std::uint64_t{1} << (static_cast<unsigned>(rank) & 63u);
    }
    /// Count `rank` as a distinct reporter of `e` (a solver whose local pool
    /// admitted the cut); feeds the popularity ordering of bundleFor().
    void markReported(Entry& e, int rank) {
        std::uint64_t& w = e.reporters[static_cast<std::size_t>(rank) >> 6];
        const std::uint64_t bit = std::uint64_t{1}
                                  << (static_cast<unsigned>(rank) & 63u);
        if (!(w & bit)) {
            w |= bit;
            ++e.admits;
        }
    }

    /// Offers one decoded support; returns true iff admitted.
    bool offer(const CutSupport& cs, int origin);
    void evict(int id, std::int64_t* counter);
    void indexEntry(int id);
    void unindexEntry(int id);
    void evictOldestOver(int keepId);

    int knownWords_ = 1;
    int capacity_ = 0;
    int liveCount_ = 0;
    std::uint64_t clock_ = 0;

    std::vector<Entry> entries_;
    std::vector<int> freeIds_;
    std::vector<std::vector<int>> index_;  ///< var -> live entry ids
    std::vector<int> touchCount_;          ///< scratch: per-id overlap count
    std::vector<int> touched_;             ///< scratch: ids with count > 0
    std::vector<char> fixedOne_;           ///< scratch: var fixed to 1 in desc
    std::vector<int> order_;               ///< scratch: candidate ordering

    std::int64_t pooled_ = 0;
    std::int64_t sent_ = 0;
    std::int64_t dupRejected_ = 0;
    std::int64_t dominatedRejected_ = 0;
    std::int64_t dominatedEvicted_ = 0;
    std::int64_t capacityEvicted_ = 0;
};

}  // namespace ug
