// Message types of the Supervisor-Worker protocol (Algorithms 1 & 2 of the
// paper). Everything transferred between ranks is plain value data — the
// "solver independent form" UG requires so subproblems and solutions can
// cross process boundaries.
#pragma once

#include <cstdint>
#include <string>

#include "cip/model.hpp"
#include "cip/node.hpp"
#include "cip/params.hpp"
#include "ug/cutbundle.hpp"

namespace ug {

enum class Tag {
    // Supervisor -> Worker
    Subproblem,       ///< assignment of a subproblem (desc + incumbent)
    RacingSubproblem, ///< racing ramp-up: root + per-solver settings
    RacingStop,       ///< racing resolved; loser must stop
    CollectAll,       ///< racing winner: hand over all open nodes
    StartCollecting,  ///< enter collect mode (Algorithm 1)
    StopCollecting,   ///< leave collect mode
    SolutionPush,     ///< broadcast of a new incumbent
    Termination,      ///< global shutdown
    Interrupt,        ///< stop current subproblem, report open nodes

    // Worker -> Supervisor
    SolutionFound,    ///< new incumbent discovered
    Status,           ///< periodic bound / open-node report; doubles as the
                      ///< liveness heartbeat (any worker message refreshes
                      ///< the LoadCoordinator's failure detector, Status is
                      ///< simply the one guaranteed to flow periodically)
    NodeTransfer,     ///< one extracted open subproblem (collect mode)
    Terminated,       ///< current subproblem finished (or racing stopped)
    RacingFinished,   ///< racing solver solved the instance outright
};

const char* toString(Tag t);

/// Per-solver LP effort counters, reported with Status and Terminated.
/// They quantify how *hard* the solver's nodes are — a frontier whose nodes
/// each burn thousands of simplex iterations is heavier than one with the
/// same node count and trivial LPs — and the LoadCoordinator weighs its
/// racing-winner pick and collect-mode targeting by them. Counters are
/// cumulative over the solver's current subproblem.
struct LpEffort {
    std::int64_t iterations = 0;        ///< simplex iterations
    std::int64_t factorizations = 0;    ///< basis (re)factorizations
    std::int64_t basisWarmStarts = 0;   ///< node LPs hot-started from parent
    std::int64_t strongBranchProbes = 0;///< strong-branching LP probes
    std::int64_t sepaFlowSolves = 0;    ///< separation oracle (max-flow) calls
    std::int64_t sepaCuts = 0;          ///< violated cuts found by separators

    // Basis-solve sparsity split (FTRAN/BTRAN answered by the hyper-sparse
    // reach kernels vs the dense fallback loops) and summed result support;
    // mean result nnz = solveNnzSum / (hyperSolves + denseSolves).
    std::int64_t hyperSolves = 0;       ///< reach-kernel basis solves
    std::int64_t denseSolves = 0;       ///< dense-loop basis solves
    std::int64_t solveNnzSum = 0;       ///< summed solve-result support

    // Dominance-filtered cut-pool counters (how lean the worker keeps its
    // LP): rejected/evicted cuts and the current pool size.
    std::int64_t poolDupRejected = 0;        ///< exact re-finds rejected
    std::int64_t poolDominatedRejected = 0;  ///< weaker incoming cuts rejected
    std::int64_t poolDominatedEvicted = 0;   ///< pooled cuts evicted by subsets
    std::int64_t poolSize = 0;               ///< current dominance-pool size

    // Cross-solver cut sharing, receiver side: supports delivered with
    // assignments, and their fate at local certification.
    std::int64_t sharedReceived = 0;  ///< shared supports delivered to solver
    std::int64_t sharedAdmitted = 0;  ///< certified + violated, entered the LP
    std::int64_t sharedInvalid = 0;   ///< failed certification, dropped
    std::int64_t sharedDecodeFailures = 0;  ///< priming bundles that failed
                                            ///< to decode (corrupt framing)

    // Tree-level variable fixing: the built-in LP reduced-cost fixing pass
    // and the graph-reduction propagation (e.g. the Steiner ReduceEngine).
    std::int64_t redcostCalls = 0;        ///< reduced-cost fixing passes run
    std::int64_t redcostTightenings = 0;  ///< bounds tightened by those passes
    std::int64_t redcostFixings = 0;      ///< domains closed to a point
    std::int64_t redpropRuns = 0;         ///< reduction-engine passes executed
    std::int64_t redpropArcsFixed = 0;    ///< variables fixed by reductions
    std::int64_t redpropDaWarmStarts = 0; ///< dual ascents warm-started
    std::int64_t redpropLbSkips = 0;      ///< cached dual bounds reused
    std::int64_t redpropDaCutsFed = 0;    ///< dual-ascent cuts fed to sepa
};

/// One message. Fields are used depending on the tag; unused fields stay at
/// their defaults. Copy semantics everywhere: a sent message shares no state
/// with the sender (the MPI discipline, enforced in shared memory too).
struct Message {
    Tag tag = Tag::Status;
    int src = -1;

    cip::SubproblemDesc desc;  ///< Subproblem / NodeTransfer / RacingSubproblem
    cip::Solution sol;         ///< SolutionFound / SolutionPush / Subproblem /
                               ///< Terminated (the worker's best known
                               ///< incumbent rides along so a lost
                               ///< SolutionFound cannot lose the optimum)
    double dualBound = -cip::kInf;   ///< Status / Terminated
    std::int64_t openNodes = 0;      ///< Status
    std::int64_t nodesProcessed = 0; ///< Status / Terminated
    std::int64_t busyCost = 0;       ///< Status / Terminated: work units spent
    std::int64_t workDone = 0;       ///< Status: monotone progress watermark
                                     ///< (LP iterations + nodes processed);
                                     ///< the stall detector compares
                                     ///< successive values, so any strictly
                                     ///< increasing measure of useful work
                                     ///< qualifies
    LpEffort lpEffort;               ///< Status / Terminated / RacingFinished
    int settingId = -1;              ///< racing setting index
    bool completed = true;           ///< Terminated: subproblem fully solved
    int collectKeep = 1;             ///< StartCollecting: minimum open nodes
                                     ///< the supplier must keep for itself
                                     ///< (0: may ship its last open node)
    cip::ParamSet params;            ///< RacingSubproblem settings
    CutBundle cuts;                  ///< piggybacked shared-cut supports:
                                     ///< worker->LC on Status / Terminated /
                                     ///< RacingFinished (newly admitted pool
                                     ///< cuts, bounded by stp/share/maxcutsup);
                                     ///< LC->worker on Subproblem /
                                     ///< RacingSubproblem (relevance-filtered
                                     ///< priming bundle from the global pool)
    std::string text;                ///< diagnostics
};

}  // namespace ug
