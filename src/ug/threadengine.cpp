#include "ug/threadengine.hpp"

#include <algorithm>

namespace ug {

ThreadEngine::ThreadEngine(BaseSolverFactory& factory, UgConfig cfg)
    : factory_(factory), cfg_(std::move(cfg)) {
    boxes_.resize(cfg_.numSolvers + 1);
    for (auto& b : boxes_) b = std::make_unique<Mailbox>();
}

ThreadEngine::~ThreadEngine() {
    for (auto& t : threads_)
        if (t.joinable()) t.join();
}

void ThreadEngine::send(int src, int dest, Message msg) {
    msg.src = src;
    Mailbox& box = *boxes_[dest];
    {
        std::lock_guard lock(box.mutex);
        box.queue.push_back(Entry{0.0, std::move(msg)});
    }
    box.cv.notify_one();
}

void ThreadEngine::sendDelayed(int src, int dest, Message msg,
                               double delaySeconds) {
    msg.src = src;
    Mailbox& box = *boxes_[dest];
    {
        std::lock_guard lock(box.mutex);
        box.queue.push_back(Entry{now(src) + delaySeconds, std::move(msg)});
    }
    box.cv.notify_one();
}

double ThreadEngine::now(int) const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
}

bool ThreadEngine::tryReceive(Mailbox& box, Message& out) {
    const double t = now(0);
    std::lock_guard lock(box.mutex);
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->readyAt <= t) {
            out = std::move(it->msg);
            box.queue.erase(it);
            return true;
        }
    }
    return false;
}

void ThreadEngine::clearMailboxes() {
    // run() reentrancy: leftovers of a previous run (a late Terminated that
    // raced past done-detection, a still-delayed fault-injected message)
    // must not be delivered into a fresh LoadCoordinator/ParaSolver set.
    for (auto& b : boxes_) {
        std::lock_guard lock(b->mutex);
        b->queue.clear();
    }
}

void ThreadEngine::solverLoop(int rank) {
    ParaSolver& ps = *solvers_[rank];
    Mailbox& box = *boxes_[rank];
    while (!ps.terminated()) {
        if (faulty_ && faulty_->killed(rank)) break;  // crashed: stop dead
        // Drain pending (ready) messages.
        for (;;) {
            Message m;
            if (!tryReceive(box, m)) break;
            ps.handleMessage(m);
            if (ps.terminated()) break;
        }
        if (ps.terminated()) break;
        if (ps.hasWork()) {
            const double t = now(rank);
            ps.work();
            busyWall_[rank] += now(rank) - t;
        } else {
            std::unique_lock lock(box.mutex);
            box.cv.wait_for(lock, std::chrono::milliseconds(2),
                            [&] { return !box.queue.empty(); });
        }
    }
    exitWall_[rank] = now(rank);
}

UgResult ThreadEngine::run(const cip::SubproblemDesc& root) {
    const int n = cfg_.numSolvers;
    t0_ = std::chrono::steady_clock::now();
    clearMailboxes();
    faulty_.reset();
    if (cfg_.faults.active())
        faulty_ = std::make_unique<FaultyComm>(*this, cfg_.faults);
    ParaComm& comm = faulty_ ? static_cast<ParaComm&>(*faulty_)
                             : static_cast<ParaComm&>(*this);
    lc_ = std::make_unique<LoadCoordinator>(comm, cfg_);
    solvers_.clear();
    solvers_.resize(n + 1);
    busyWall_.assign(n + 1, 0.0);
    exitWall_.assign(n + 1, 0.0);
    for (int r = 1; r <= n; ++r)
        solvers_[r] = std::make_unique<ParaSolver>(r, comm, factory_, cfg_);
    threads_.clear();
    for (int r = 1; r <= n; ++r)
        threads_.emplace_back([this, r] { solverLoop(r); });

    lc_->start(root);
    Mailbox& box = *boxes_[0];
    while (!lc_->done()) {
        Message m;
        bool got = tryReceive(box, m);
        if (!got) {
            std::unique_lock lock(box.mutex);
            box.cv.wait_for(lock, std::chrono::milliseconds(2),
                            [&] { return !box.queue.empty(); });
            lock.unlock();
            got = tryReceive(box, m);
        }
        if (got) lc_->handleMessage(m);
        lc_->onTimer(now(0));
    }

    for (auto& t : threads_)
        if (t.joinable()) t.join();
    threads_.clear();

    const double endTime = now(0);
    UgResult res = lc_->result(endTime);
    // Idle ratio over each solver thread's actual lifetime: threads keep
    // running (and would keep accruing wall time) briefly after the
    // coordinator is done, so the denominator uses the per-thread loop-exit
    // timestamps, not endTime * n.
    double busySum = 0.0, total = 0.0;
    for (int r = 1; r <= n; ++r) {
        busySum += busyWall_[r];
        total += exitWall_[r] > 0.0 ? exitWall_[r] : endTime;
    }
    res.stats.idleRatio =
        total > 0 ? std::clamp(1.0 - busySum / total, 0.0, 1.0) : 0.0;
    if (faulty_) {
        const FaultyComm::Counters c = faulty_->counters();
        res.stats.msgsDropped = c.dropped;
        res.stats.msgsDelayed = c.delayed;
        res.stats.msgsDuplicated = c.duplicated;
        res.stats.msgsReordered = c.reordered;
        res.stats.msgsSwallowedDead = c.swallowedDead;
        res.stats.msgsCorrupted = c.corrupted;
    }
    return res;
}

}  // namespace ug
