#include "ug/threadengine.hpp"

#include <algorithm>

namespace ug {

ThreadEngine::ThreadEngine(BaseSolverFactory& factory, UgConfig cfg)
    : factory_(factory), cfg_(std::move(cfg)) {
    boxes_.resize(cfg_.numSolvers + 1);
    for (auto& b : boxes_) b = std::make_unique<Mailbox>();
}

ThreadEngine::~ThreadEngine() {
    for (auto& t : threads_)
        if (t.joinable()) t.join();
}

void ThreadEngine::send(int src, int dest, Message msg) {
    msg.src = src;
    Mailbox& box = *boxes_[dest];
    {
        std::lock_guard lock(box.mutex);
        box.queue.push_back(std::move(msg));
    }
    box.cv.notify_one();
}

double ThreadEngine::now(int) const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
}

void ThreadEngine::solverLoop(int rank) {
    ParaSolver& ps = *solvers_[rank];
    Mailbox& box = *boxes_[rank];
    while (!ps.terminated()) {
        // Drain pending messages.
        for (;;) {
            Message m;
            {
                std::lock_guard lock(box.mutex);
                if (box.queue.empty()) break;
                m = std::move(box.queue.front());
                box.queue.pop_front();
            }
            ps.handleMessage(m);
            if (ps.terminated()) return;
        }
        if (ps.hasWork()) {
            const double t = now(rank);
            ps.work();
            busyWall_[rank] += now(rank) - t;
        } else {
            std::unique_lock lock(box.mutex);
            box.cv.wait_for(lock, std::chrono::milliseconds(2),
                            [&] { return !box.queue.empty(); });
        }
    }
}

UgResult ThreadEngine::run(const cip::SubproblemDesc& root) {
    const int n = cfg_.numSolvers;
    t0_ = std::chrono::steady_clock::now();
    lc_ = std::make_unique<LoadCoordinator>(*this, cfg_);
    solvers_.clear();
    solvers_.resize(n + 1);
    busyWall_.assign(n + 1, 0.0);
    for (int r = 1; r <= n; ++r)
        solvers_[r] = std::make_unique<ParaSolver>(r, *this, factory_, cfg_);
    threads_.clear();
    for (int r = 1; r <= n; ++r)
        threads_.emplace_back([this, r] { solverLoop(r); });

    lc_->start(root);
    Mailbox& box = *boxes_[0];
    while (!lc_->done()) {
        Message m;
        bool got = false;
        {
            std::unique_lock lock(box.mutex);
            box.cv.wait_for(lock, std::chrono::milliseconds(2),
                            [&] { return !box.queue.empty(); });
            if (!box.queue.empty()) {
                m = std::move(box.queue.front());
                box.queue.pop_front();
                got = true;
            }
        }
        if (got) lc_->handleMessage(m);
        lc_->onTimer(now(0));
    }

    for (auto& t : threads_)
        if (t.joinable()) t.join();
    threads_.clear();

    const double endTime = now(0);
    UgResult res = lc_->result(endTime);
    double busySum = 0.0;
    for (int r = 1; r <= n; ++r) busySum += busyWall_[r];
    const double total = endTime * n;
    res.stats.idleRatio = total > 0 ? std::max(0.0, 1.0 - busySum / total) : 0.0;
    return res;
}

}  // namespace ug
