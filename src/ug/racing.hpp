// Racing ramp-up settings tables.
//
// Racing diversity in UG comes from running the same root problem under
// different parameter settings and variable permutations (the paper cites
// MIPLIB 2010's performance-variability evidence for why permutations alone
// already diversify search trees). Customized racing lets an application
// supply its own problem-specific table — the MISDP glue does so with
// alternating SDP/LP settings.
#pragma once

#include <vector>

#include "cip/params.hpp"

namespace ug {

/// Generic diverse settings: emphasis x branching x node selection, each
/// with its own permutation seed. settings[i] is what racing solver i+1 runs.
std::vector<cip::ParamSet> makeGenericRacingSettings(int count);

}  // namespace ug
