#include "ug/parasolver.hpp"

namespace ug {

const char* toString(Tag t) {
    switch (t) {
        case Tag::Subproblem: return "Subproblem";
        case Tag::RacingSubproblem: return "RacingSubproblem";
        case Tag::RacingStop: return "RacingStop";
        case Tag::CollectAll: return "CollectAll";
        case Tag::StartCollecting: return "StartCollecting";
        case Tag::StopCollecting: return "StopCollecting";
        case Tag::SolutionPush: return "SolutionPush";
        case Tag::Termination: return "Termination";
        case Tag::Interrupt: return "Interrupt";
        case Tag::SolutionFound: return "SolutionFound";
        case Tag::Status: return "Status";
        case Tag::NodeTransfer: return "NodeTransfer";
        case Tag::Terminated: return "Terminated";
        case Tag::RacingFinished: return "RacingFinished";
    }
    return "?";
}

const char* toString(UgStatus s) {
    switch (s) {
        case UgStatus::Optimal: return "optimal";
        case UgStatus::Infeasible: return "infeasible";
        case UgStatus::TimeLimit: return "timelimit";
        case UgStatus::Failed: return "failed";
    }
    return "?";
}

ParaSolver::ParaSolver(int rank, ParaComm& comm, BaseSolverFactory& factory,
                       const UgConfig& cfg)
    : rank_(rank),
      comm_(comm),
      factory_(factory),
      cfg_(cfg),
      shareCuts_(cfg.baseParams.getBool("stp/share/enable", true)),
      shareMaxCuts_(cfg.baseParams.getInt("stp/share/maxcutsup", 32)) {}

bool ParaSolver::hasWork() const {
    return active_ && solver_ && !solver_->finished() && !terminated_;
}

void ParaSolver::startSubproblem(const Message& m, bool racing) {
    if (active_ || terminated_) {
        // Duplicated (or badly delayed) assignment: the coordinator never
        // legitimately assigns to a busy rank, so starting over would throw
        // away the in-flight subproblem without reporting it. Ignore.
        return;
    }
    cip::ParamSet params = cfg_.baseParams;
    // Racing settings and stall-fallback profiles both travel in m.params;
    // ordinary assignments carry an empty set, so the merge is a no-op there.
    params.merge(m.params);
    solver_ = factory_.create(params);
    racing_ = racing;
    settingId_ = m.settingId;
    stepsSinceStatus_ = 0;
    lastStatusTime_ = comm_.now(rank_);
    busyUnits_ = 0;  // per-subproblem: the coordinator sums Terminated reports
    if (m.sol.valid() &&
        (!bestKnown_.valid() || m.sol.obj < bestKnown_.obj)) {
        bestKnown_ = m.sol;
    }
    solver_->setIncumbentCallback([this](const cip::Solution& sol) {
        if (!bestKnown_.valid() || sol.obj < bestKnown_.obj - 1e-12) {
            bestKnown_ = sol;
            Message out;
            out.tag = Tag::SolutionFound;
            out.sol = sol;
            out.settingId = settingId_;
            comm_.send(rank_, 0, out);
        }
    });
    solver_->load(m.desc, bestKnown_.valid() ? &bestKnown_ : nullptr);
    // Shared-cut priming: offer the coordinator's bundle before the first
    // step. The base solver certifies + violation-checks each support against
    // its own relaxation before any of them can become an LP row.
    if (shareCuts_ && !m.cuts.empty()) solver_->primeSharedCuts(m.cuts);
    active_ = true;
    // Layered presolving may already settle the subproblem (infeasibility or
    // trivial optimality); report immediately, or the coordinator would wait
    // forever for a worker that has no work to do.
    if (solver_->finished()) finishSubproblem(solver_->status());
}

void ParaSolver::finishSubproblem(BaseStatus status) {
    Message out;
    out.tag = racing_ ? (status == BaseStatus::Optimal ||
                                 status == BaseStatus::Infeasible
                             ? Tag::RacingFinished
                             : Tag::Terminated)
                      : Tag::Terminated;
    out.dualBound = solver_ ? solver_->dualBound() : -cip::kInf;
    out.nodesProcessed = solver_ ? solver_->nodesProcessed() : 0;
    out.busyCost = busyUnits_;
    if (solver_) out.lpEffort = solver_->lpEffort();
    if (solver_ && shareCuts_)
        out.cuts = solver_->takeShareableCuts(shareMaxCuts_);
    out.settingId = settingId_;
    out.completed =
        status == BaseStatus::Optimal || status == BaseStatus::Infeasible;
    // Always attach the best known incumbent: if an earlier SolutionFound
    // was lost in transit, the final report re-delivers the certificate
    // (echoing the coordinator's own broadcast back is harmless — adoption
    // requires strict improvement).
    cip::Solution report = bestKnown_;
    if (solver_ && solver_->incumbent().valid() &&
        (!report.valid() || solver_->incumbent().obj < report.obj))
        report = solver_->incumbent();
    if (report.valid()) out.sol = std::move(report);
    comm_.send(rank_, 0, out);
    active_ = false;
    racing_ = false;
    collectMode_ = false;  // the coordinator resets its flag on Terminated
    collectKeep_ = 1;
    solver_.reset();
}

void ParaSolver::sendStatus() {
    if (!solver_) return;
    Message out;
    out.tag = Tag::Status;
    out.dualBound = solver_->dualBound();
    out.openNodes = solver_->numOpenNodes();
    out.nodesProcessed = solver_->nodesProcessed();
    out.busyCost = busyUnits_;
    out.lpEffort = solver_->lpEffort();
    // Monotone progress watermark for the coordinator's stall detector: a
    // healthy solver strictly advances it, a looping one does not.
    out.workDone = out.lpEffort.iterations + out.nodesProcessed;
    if (shareCuts_) out.cuts = solver_->takeShareableCuts(shareMaxCuts_);
    out.settingId = settingId_;
    lastStatusTime_ = comm_.now(rank_);
    comm_.send(rank_, 0, out);
}

void ParaSolver::drainAllOpenNodes() {
    if (!solver_) return;
    while (auto node = solver_->extractOpenNode()) {
        Message out;
        out.tag = Tag::NodeTransfer;
        out.desc = std::move(*node);
        comm_.send(rank_, 0, out);
    }
}

void ParaSolver::handleMessage(const Message& m) {
    switch (m.tag) {
        case Tag::Subproblem:
            startSubproblem(m, /*racing=*/false);
            break;
        case Tag::RacingSubproblem:
            startSubproblem(m, /*racing=*/true);
            break;
        case Tag::RacingStop:
            // Lost the race: the tree is discarded; solutions were already
            // reported through SolutionFound messages. Only meaningful while
            // actually racing — a stale/duplicated copy arriving during a
            // later normal subproblem must not kill it.
            if (active_ && racing_) finishSubproblem(BaseStatus::Interrupted);
            break;
        case Tag::CollectAll:
            // Racing winner: hand the entire frontier to the coordinator,
            // then become an ordinary idle worker. Same staleness guard as
            // RacingStop: draining a *normal* subproblem's frontier and
            // self-terminating would force the coordinator down the requeue
            // path for no reason.
            if (active_ && racing_) {
                drainAllOpenNodes();
                finishSubproblem(BaseStatus::Interrupted);
            }
            break;
        case Tag::StartCollecting:
            collectMode_ = true;
            // collectKeep = 0 marks a ramp-down engagement: the coordinator
            // decided this solver's single remaining node is heavy enough to
            // be worth re-parallelizing, so it may ship its last node and go
            // idle.
            collectKeep_ = m.collectKeep < 0 ? 0 : m.collectKeep;
            break;
        case Tag::StopCollecting:
            collectMode_ = false;
            collectKeep_ = 1;
            break;
        case Tag::SolutionPush:
            if (m.sol.valid() &&
                (!bestKnown_.valid() || m.sol.obj < bestKnown_.obj - 1e-12)) {
                bestKnown_ = m.sol;
                if (solver_) solver_->injectSolution(m.sol);
            }
            break;
        case Tag::Interrupt:
            if (active_) finishSubproblem(BaseStatus::Interrupted);
            break;
        case Tag::Termination:
            if (active_) finishSubproblem(BaseStatus::Interrupted);
            terminated_ = true;
            break;
        default:
            break;  // worker->supervisor tags are never delivered here
    }
}

std::int64_t ParaSolver::work() {
    if (!hasWork()) return 0;
    const std::int64_t cost = solver_->step();
    busyUnits_ += cost;

    if (solver_->finished()) {
        finishSubproblem(solver_->status());
        return cost;
    }

    ++stepsSinceStatus_;
    // Keepalive: a solver diving deep between scheduled Status reports (a
    // large statusIntervalSteps, or simply expensive steps) must not trip
    // the coordinator's failure detector while healthy. One third of the
    // timeout leaves room for two lost/late keepalives plus latency before
    // silence reaches heartbeatTimeout. Deterministic under SimEngine: the
    // comparison uses the rank's virtual clock.
    const bool keepalive =
        cfg_.heartbeatTimeout > 0 &&
        comm_.now(rank_) - lastStatusTime_ >= cfg_.heartbeatTimeout / 3.0;
    if (stepsSinceStatus_ >= cfg_.statusIntervalSteps || keepalive) {
        sendStatus();
        stepsSinceStatus_ = 0;
    }

    // In collect mode, ship the best candidate open node. Normally at least
    // one node is kept so this solver stays busy; a ramp-down engagement
    // (collectKeep_ == 0) allows shipping the last node so its heavy subtree
    // can be split across idle ranks.
    if (collectMode_ && !racing_ &&
        solver_->numOpenNodes() > static_cast<std::int64_t>(collectKeep_)) {
        if (auto node = solver_->extractOpenNode()) {
            Message out;
            out.tag = Tag::NodeTransfer;
            out.desc = std::move(*node);
            comm_.send(rank_, 0, out);
        }
    }
    return cost;
}

}  // namespace ug
