#include "ug/globalcutpool.hpp"

#include <algorithm>

namespace ug {

GlobalCutPool::GlobalCutPool(int numRanks, int capacity)
    : knownWords_(std::max(1, (numRanks + 63) / 64)),
      capacity_(std::max(1, capacity)) {}

GlobalCutPool::MergeStats GlobalCutPool::merge(const CutBundle& bundle,
                                               int origin) {
    MergeStats ms;
    if (bundle.empty()) return ms;
    std::vector<CutSupport> cuts;
    if (!bundle.decode(cuts)) {  // corrupt: drop whole bundle
        ms.decodeFailed = true;
        return ms;
    }
    ms.reported = static_cast<int>(cuts.size());
    for (const CutSupport& cs : cuts)
        if (offer(cs, origin)) ++ms.pooled;
    pooled_ += ms.pooled;
    return ms;
}

bool GlobalCutPool::offer(const CutSupport& cs, int origin) {
    const int n = static_cast<int>(cs.vars.size());
    if (n == 0) return false;

    // Overlap counting over the inverted index: one pass over the incoming
    // support classifies every indexed entry as duplicate, dominating subset,
    // or dominated superset (same trick as steiner::CutPool::offer).
    touched_.clear();
    const int maxVar = cs.vars.back();
    if (maxVar >= static_cast<int>(index_.size()))
        index_.resize(static_cast<std::size_t>(maxVar) + 1);
    for (int v : cs.vars) {
        for (int id : index_[static_cast<std::size_t>(v)]) {
            if (static_cast<std::size_t>(id) >= touchCount_.size())
                touchCount_.resize(entries_.size(), 0);
            if (touchCount_[static_cast<std::size_t>(id)]++ == 0)
                touched_.push_back(id);
        }
    }

    bool rejected = false;
    bool duplicate = false;
    for (int id : touched_) {
        Entry& e = entries_[static_cast<std::size_t>(id)];
        const int common = touchCount_[static_cast<std::size_t>(id)];
        const int esize = static_cast<int>(e.vars.size());
        if (e.rhsClass != cs.rhsClass) continue;  // incomparable rows
        if (common == esize && esize <= n) {
            // Existing support is a subset (or equal): it dominates us.
            rejected = true;
            duplicate = (esize == n);
            if (duplicate) {
                markKnown(e, origin);
                markReported(e, origin);  // independent re-find: popularity++
                e.touch = ++clock_;  // re-reported: still in circulation
            }
            break;
        }
    }
    if (rejected) {
        for (int id : touched_) touchCount_[static_cast<std::size_t>(id)] = 0;
        if (duplicate)
            ++dupRejected_;
        else
            ++dominatedRejected_;
        return false;
    }

    // Admit: claim the slot first, then evict strict supersets (evicting
    // first would let the new entry reuse an id still listed in touched_).
    int newId;
    if (!freeIds_.empty()) {
        newId = freeIds_.back();
        freeIds_.pop_back();
    } else {
        newId = static_cast<int>(entries_.size());
        entries_.emplace_back();
        touchCount_.push_back(0);
    }
    for (int id : touched_) {
        const int common = touchCount_[static_cast<std::size_t>(id)];
        touchCount_[static_cast<std::size_t>(id)] = 0;
        const Entry& e = entries_[static_cast<std::size_t>(id)];
        if (e.alive && e.rhsClass == cs.rhsClass && common == n &&
            static_cast<int>(e.vars.size()) > n)
            evict(id, &dominatedEvicted_);
    }

    Entry& e = entries_[static_cast<std::size_t>(newId)];
    e.vars = cs.vars;
    e.rhsClass = cs.rhsClass;
    e.touch = ++clock_;
    e.known.assign(static_cast<std::size_t>(knownWords_), 0);
    e.reporters.assign(static_cast<std::size_t>(knownWords_), 0);
    e.admits = 0;
    e.alive = true;
    markKnown(e, origin);
    markReported(e, origin);
    indexEntry(newId);
    ++liveCount_;

    if (liveCount_ > capacity_) evictOldestOver(newId);
    return true;
}

CutBundle GlobalCutPool::bundleFor(int receiver,
                                   const cip::SubproblemDesc& desc,
                                   int maxCuts) {
    CutBundle out;
    if (maxCuts <= 0 || liveCount_ == 0) return out;

    // Vars fixed to 1 on the node's root path make "sum >= 1" rows over them
    // trivially satisfied — not worth the receiver's certification work.
    int maxFixed = -1;
    for (const cip::BoundChange& bc : desc.boundChanges)
        if (bc.lb > 0.5 && bc.var > maxFixed) maxFixed = bc.var;
    fixedOne_.assign(static_cast<std::size_t>(maxFixed) + 1, 0);
    for (const cip::BoundChange& bc : desc.boundChanges)
        if (bc.lb > 0.5 && bc.var >= 0)
            fixedOne_[static_cast<std::size_t>(bc.var)] = 1;

    order_.clear();
    for (int id = 0; id < static_cast<int>(entries_.size()); ++id) {
        const Entry& e = entries_[static_cast<std::size_t>(id)];
        if (e.alive && !knows(e, receiver)) order_.push_back(id);
    }
    // Popular supports first — a cut independently admitted by >= 2 local
    // dominance pools has proved itself across subtrees — then
    // newest-touched within each class. The touch clock is strictly
    // monotone, so the order (and with it the whole run) is deterministic.
    std::sort(order_.begin(), order_.end(), [this](int a, int b) {
        const Entry& ea = entries_[static_cast<std::size_t>(a)];
        const Entry& eb = entries_[static_cast<std::size_t>(b)];
        const bool pa = ea.admits >= 2, pb = eb.admits >= 2;
        if (pa != pb) return pa;
        return ea.touch > eb.touch;
    });

    for (int id : order_) {
        if (out.count() >= maxCuts) break;
        Entry& e = entries_[static_cast<std::size_t>(id)];
        bool trivial = false;
        for (int v : e.vars)
            if (v <= maxFixed && fixedOne_[static_cast<std::size_t>(v)]) {
                trivial = true;
                break;
            }
        if (trivial) continue;
        if (!out.append(e.vars, e.rhsClass)) continue;
        markKnown(e, receiver);
        e.touch = ++clock_;
        ++sent_;
    }
    return out;
}

std::vector<CutSupport> GlobalCutPool::snapshot() const {
    std::vector<CutSupport> out;
    for (const Entry& e : entries_)
        if (e.alive) out.push_back({e.vars, e.rhsClass});
    return out;
}

void GlobalCutPool::evict(int id, std::int64_t* counter) {
    Entry& e = entries_[static_cast<std::size_t>(id)];
    unindexEntry(id);
    e.alive = false;
    e.vars.clear();
    e.known.clear();
    e.reporters.clear();
    e.admits = 0;
    freeIds_.push_back(id);
    --liveCount_;
    ++*counter;
}

void GlobalCutPool::indexEntry(int id) {
    for (int v : entries_[static_cast<std::size_t>(id)].vars)
        index_[static_cast<std::size_t>(v)].push_back(id);
}

void GlobalCutPool::unindexEntry(int id) {
    for (int v : entries_[static_cast<std::size_t>(id)].vars) {
        std::vector<int>& lst = index_[static_cast<std::size_t>(v)];
        lst.erase(std::remove(lst.begin(), lst.end(), id), lst.end());
    }
}

void GlobalCutPool::evictOldestOver(int keepId) {
    while (liveCount_ > capacity_) {
        int oldest = -1;
        for (int id = 0; id < static_cast<int>(entries_.size()); ++id) {
            const Entry& e = entries_[static_cast<std::size_t>(id)];
            if (!e.alive || id == keepId) continue;
            if (oldest < 0 ||
                e.touch < entries_[static_cast<std::size_t>(oldest)].touch)
                oldest = id;
        }
        if (oldest < 0) return;  // only the just-admitted entry is left
        evict(oldest, &capacityEvicted_);
    }
}

}  // namespace ug
