#include "ug/racing.hpp"

namespace ug {

std::vector<cip::ParamSet> makeGenericRacingSettings(int count) {
    static const char* emphases[] = {"default", "easycip", "aggressive",
                                     "fast"};
    static const char* branchings[] = {"pseudocost", "mostfrac"};
    static const char* nodesels[] = {"bestbound", "dfs", "estimate"};
    std::vector<cip::ParamSet> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i) {
        cip::ParamSet p = cip::ParamSet::emphasis(emphases[i % 4]);
        p.setString("branching", branchings[(i / 4) % 2]);
        p.setString("nodeselection", nodesels[(i / 8) % 3]);
        p.setInt("randomization/permutationseed", 1000 + i);
        out.push_back(std::move(p));
    }
    return out;
}

}  // namespace ug
