// SimEngine: deterministic discrete-event execution of the Supervisor-Worker
// protocol with a virtual clock per rank.
//
// This is the repository's substitute for running ug[*, MPI] on a cluster
// (see DESIGN.md): every ParaSolver advances its own virtual clock by the
// deterministic cost of each base-solver step; messages travel with a
// configurable latency; the LoadCoordinator observes virtual time. The
// makespan, idle ratios, ramp-up times and max-active-solver statistics of
// Tables 1-3 are read off this simulation. Single-threaded and exactly
// reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "ug/basesolver.hpp"
#include "ug/config.hpp"
#include "ug/loadcoordinator.hpp"
#include "ug/paracomm.hpp"
#include "ug/parasolver.hpp"

namespace ug {

class SimEngine : public ParaComm {
public:
    SimEngine(BaseSolverFactory& factory, UgConfig cfg);
    ~SimEngine() override;

    /// Run the whole parallel solve; `root` is the instance root subproblem.
    UgResult run(const cip::SubproblemDesc& root = {});

    // ParaComm
    int size() const override { return cfg_.numSolvers + 1; }
    void send(int src, int dest, Message msg) override;
    double now(int rank) const override;

    /// Per-rank busy time (virtual seconds), available after run().
    const std::vector<double>& busyTime() const { return busy_; }

private:
    enum class EventKind { MsgArrival, SolverRun, Timer };
    struct Event {
        double time;
        std::int64_t seq;
        EventKind kind;
        int rank;
        Message msg;
    };
    struct EventOrder {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    void flushOutbox(double sendTime);
    void attend(int rank, double time);

    BaseSolverFactory& factory_;
    UgConfig cfg_;

    std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
    std::int64_t seq_ = 0;
    std::vector<std::pair<int, Message>> outbox_;

    std::unique_ptr<LoadCoordinator> lc_;
    std::vector<std::unique_ptr<ParaSolver>> solvers_;  ///< index 1..N
    std::vector<std::queue<std::pair<double, Message>>> inbox_;
    std::vector<double> vclock_;
    std::vector<double> busy_;
    double lcTime_ = 0.0;
    bool running_ = false;
};

}  // namespace ug
