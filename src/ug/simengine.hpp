// SimEngine: deterministic discrete-event execution of the Supervisor-Worker
// protocol with a virtual clock per rank.
//
// This is the repository's substitute for running ug[*, MPI] on a cluster
// (see DESIGN.md): every ParaSolver advances its own virtual clock by the
// deterministic cost of each base-solver step; messages travel with a
// configurable latency; the LoadCoordinator observes virtual time. The
// makespan, idle ratios, ramp-up times and max-active-solver statistics of
// Tables 1-3 are read off this simulation. Single-threaded and exactly
// reproducible.
//
// Fault injection: when cfg.faults is active all traffic is routed through a
// FaultyComm decorator; delayed/reordered messages become events with extra
// latency, a crashed rank stops being scheduled, and (with heartbeats
// enabled) a recurring virtual-time timer keeps the LoadCoordinator's
// failure detector running even when no messages flow. Fault schedules are
// a deterministic function of the FaultPlan seed.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "ug/basesolver.hpp"
#include "ug/config.hpp"
#include "ug/faultycomm.hpp"
#include "ug/loadcoordinator.hpp"
#include "ug/paracomm.hpp"
#include "ug/parasolver.hpp"

namespace ug {

class SimEngine : public ParaComm {
public:
    SimEngine(BaseSolverFactory& factory, UgConfig cfg);
    ~SimEngine() override;

    /// Run the whole parallel solve; `root` is the instance root subproblem.
    UgResult run(const cip::SubproblemDesc& root = {});

    /// Mutable run configuration — lets a harness retune (time limit,
    /// faults, ...) between back-to-back run() calls on the same engine.
    UgConfig& config() { return cfg_; }

    /// The fault layer of the current/last run (null when no plan active).
    const FaultyComm* faultyComm() const { return faulty_.get(); }

    // ParaComm
    int size() const override { return cfg_.numSolvers + 1; }
    void send(int src, int dest, Message msg) override;
    void sendDelayed(int src, int dest, Message msg,
                     double delaySeconds) override;
    double now(int rank) const override;

    /// Per-rank busy time (virtual seconds), available after run().
    const std::vector<double>& busyTime() const { return busy_; }

private:
    enum class EventKind { MsgArrival, SolverRun, Timer };
    /// Recurring coordinator timers re-arm themselves by kind; one-shot
    /// timers (racing deadline, time limit) use OneShot.
    enum class TimerKind { OneShot, Checkpoint, Heartbeat };
    struct Event {
        double time;
        std::int64_t seq;
        EventKind kind;
        int rank;
        Message msg;
        TimerKind timer = TimerKind::OneShot;
    };
    struct EventOrder {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };
    struct Pending {
        int dest;
        Message msg;
        double extraDelay;  ///< fault-injected latency on top of msgLatency
    };

    void flushOutbox(double sendTime);
    void attend(int rank, double time);

    BaseSolverFactory& factory_;
    UgConfig cfg_;

    std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
    std::int64_t seq_ = 0;
    std::vector<Pending> outbox_;

    std::unique_ptr<FaultyComm> faulty_;
    std::unique_ptr<LoadCoordinator> lc_;
    std::vector<std::unique_ptr<ParaSolver>> solvers_;  ///< index 1..N
    std::vector<std::queue<std::pair<double, Message>>> inbox_;
    std::vector<double> vclock_;
    std::vector<double> busy_;
    double lcTime_ = 0.0;
    bool running_ = false;
};

}  // namespace ug
