#pragma once

// Compact wire format for cross-solver cut sharing.
//
// A shared cut is a support (sorted set of model variable ids) plus an RHS
// class: the row it stands for is  sum_{v in support} x_v >= rhsClass.
// For directed Steiner cuts rhsClass is always 1, but the framing carries it
// so other problem classes can reuse the channel.
//
// Supports are delta-encoded into a flat int32 blob
// ([rhsClass, k, var0, delta1, ..., delta_{k-1}] per cut) so a bundle is a
// single contiguous buffer regardless of cut count. The header is
// dependency-free on purpose: the steiner layer encodes bundles without
// linking the ug library (top-level include path only), and the
// LoadCoordinator decodes them without knowing anything about graphs.

#include <cstdint>
#include <vector>

namespace ug {

/// One decoded shared cut: sorted unique variable ids + RHS class.
struct CutSupport {
    std::vector<int> vars;
    int rhsClass = 1;
};

class CutBundle {
public:
    /// Appends one support. Rejects (returns false, leaves the bundle
    /// unchanged) unless `vars` is non-empty, sorted, strictly increasing,
    /// non-negative, and rhsClass >= 1 — so every encoded bundle decodes.
    bool append(const std::vector<int>& vars, int rhsClass = 1) {
        if (vars.empty() || rhsClass < 1) return false;
        if (vars.front() < 0) return false;
        for (std::size_t i = 1; i < vars.size(); ++i)
            if (vars[i] <= vars[i - 1]) return false;
        blob_.push_back(rhsClass);
        blob_.push_back(static_cast<std::int32_t>(vars.size()));
        blob_.push_back(vars.front());
        for (std::size_t i = 1; i < vars.size(); ++i)
            blob_.push_back(vars[i] - vars[i - 1]);
        ++count_;
        return true;
    }

    /// Decodes every cut into `out` (appending). Returns false — with `out`
    /// restored to its input size — if the blob is truncated or violates the
    /// encoding invariants, so a corrupt bundle is rejected wholesale rather
    /// than half-applied.
    bool decode(std::vector<CutSupport>& out) const {
        const std::size_t outStart = out.size();
        std::size_t pos = 0;
        for (std::int32_t c = 0; c < count_; ++c) {
            if (pos + 2 > blob_.size()) return fail(out, outStart);
            const std::int32_t rhs = blob_[pos++];
            const std::int32_t k = blob_[pos++];
            if (rhs < 1 || k < 1 || pos + static_cast<std::size_t>(k) > blob_.size())
                return fail(out, outStart);
            CutSupport cs;
            cs.rhsClass = rhs;
            cs.vars.resize(static_cast<std::size_t>(k));
            std::int32_t v = blob_[pos++];
            if (v < 0) return fail(out, outStart);
            cs.vars[0] = v;
            for (std::int32_t i = 1; i < k; ++i) {
                const std::int32_t d = blob_[pos++];
                if (d < 1) return fail(out, outStart);
                v += d;
                cs.vars[static_cast<std::size_t>(i)] = v;
            }
            out.push_back(std::move(cs));
        }
        if (pos != blob_.size()) return fail(out, outStart);
        return true;
    }

    int count() const { return count_; }
    bool empty() const { return count_ == 0; }
    /// Wire payload size in int32 words (count_ travels in the framing).
    std::size_t wireWords() const { return blob_.size(); }
    void clear() {
        blob_.clear();
        count_ = 0;
    }

    /// Raw wire words — serialization (checkpointing) and fault-injection
    /// hooks only; the encoding invariants are documented above.
    const std::vector<std::int32_t>& wire() const { return blob_; }

    /// Restore from a serialized (count, wire words) pair, validating by a
    /// full decode. On malformed input the bundle is left empty and false is
    /// returned — a corrupt checkpoint section cannot smuggle in a blob that
    /// later decode() calls would reject.
    bool restoreWire(std::int32_t count, std::vector<std::int32_t> blob) {
        count_ = count;
        blob_ = std::move(blob);
        std::vector<CutSupport> scratch;
        if (count_ < 0 || !decode(scratch)) {
            clear();
            return false;
        }
        return true;
    }

    /// Fault-injection hook: flip one bit of one wire word (payload
    /// corruption in transit). No-op on an empty bundle.
    void flipWireBit(std::size_t word, unsigned bit) {
        if (word < blob_.size())
            blob_[word] ^= static_cast<std::int32_t>(1u << (bit & 31u));
    }

private:
    static bool fail(std::vector<CutSupport>& out, std::size_t outStart) {
        out.resize(outStart);
        return false;
    }

    std::vector<std::int32_t> blob_;
    std::int32_t count_ = 0;
};

}  // namespace ug
