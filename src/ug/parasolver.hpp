// ParaSolver: the Worker of the Supervisor-Worker scheme (Algorithm 2).
//
// Engine-agnostic: an engine delivers messages via handleMessage() and
// drives computation via work(); all outbound communication goes through
// ParaComm::send. One fresh BaseSolver instance is created per received
// subproblem, which is what re-runs presolving on each subproblem (layered
// presolving).
//
// Message handling is idempotent/defensive (see src/ug/README.md): a
// duplicated assignment while busy is ignored, racing control messages
// (RacingStop/CollectAll) only apply while actually racing, and every
// Terminated report carries the worker's best known incumbent so a lost
// SolutionFound cannot lose the optimum.
#pragma once

#include <cstdint>
#include <memory>

#include "ug/basesolver.hpp"
#include "ug/config.hpp"
#include "ug/paracomm.hpp"

namespace ug {

class ParaSolver {
public:
    ParaSolver(int rank, ParaComm& comm, BaseSolverFactory& factory,
               const UgConfig& cfg);

    void handleMessage(const Message& m);

    /// True while an unfinished subproblem is loaded.
    bool hasWork() const;

    /// One unit of work on the current subproblem; returns its cost.
    /// Sends Status / NodeTransfer / SolutionFound / Terminated as needed.
    std::int64_t work();

    bool terminated() const { return terminated_; }
    int rank() const { return rank_; }
    /// Work units spent on the *current* subproblem (reset per assignment;
    /// the coordinator accumulates the per-subproblem totals it receives).
    std::int64_t busyUnits() const { return busyUnits_; }

private:
    void startSubproblem(const Message& m, bool racing);
    void finishSubproblem(BaseStatus status);
    void sendStatus();
    void drainAllOpenNodes();

    int rank_;
    ParaComm& comm_;
    BaseSolverFactory& factory_;
    const UgConfig& cfg_;

    std::unique_ptr<BaseSolver> solver_;
    bool active_ = false;
    bool terminated_ = false;
    bool racing_ = false;
    bool collectMode_ = false;
    int collectKeep_ = 1;  ///< min open nodes kept while collecting (from
                           ///< StartCollecting; 0 = may ship the last node)
    int settingId_ = -1;
    bool shareCuts_ = true;  ///< stp/share/enable (from cfg.baseParams)
    int shareMaxCuts_ = 32;  ///< stp/share/maxcutsup: per-message batch bound
    int stepsSinceStatus_ = 0;
    double lastStatusTime_ = 0.0;  ///< engine time of the last Status sent;
                                   ///< drives the keepalive that stops a
                                   ///< deep dive between scheduled Status
                                   ///< reports from looking like a death
    std::int64_t busyUnits_ = 0;
    cip::Solution bestKnown_;  ///< latest incumbent seen (local or pushed)
};

}  // namespace ug
