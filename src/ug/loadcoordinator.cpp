#include "ug/loadcoordinator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "ug/checkpoint.hpp"

namespace ug {

LoadCoordinator::LoadCoordinator(ParaComm& comm, const UgConfig& cfg)
    : comm_(comm),
      cfg_(cfg),
      cutPool_(cfg.numSolvers + 1,
               cfg.baseParams.getInt("stp/share/maxpool", 512)),
      shareCuts_(cfg.baseParams.getBool("stp/share/enable", true)),
      shareMaxCuts_(cfg.baseParams.getInt("stp/share/maxcutsup", 32)),
      shareAdaptive_(cfg.baseParams.getBool("stp/share/adaptivebatch", true)),
      cutoff_(cip::kInf) {
    info_.resize(cfg_.numSolvers + 1);
    stallParams_ = cfg_.stallFallbackParams;
    if (stallParams_.raw().empty()) {
        // Built-in fallback profile for stalled-root redispatch: a different
        // pricing rule and non-incremental reduction propagation sidestep
        // the two subsystems most likely to loop on a pathological node.
        stallParams_.setString("lp/pricing", "devex");
        stallParams_.setBool("stp/redprop/incremental", false);
    }
    if (cfg_.faults.tornWriteProb > 0)
        tornWriter_.emplace(cfg_.faults.tornWriteProb, cfg_.faults.seed);
}

void LoadCoordinator::noteDecodeFailure(SolverInfo& si, double now) {
    if (++si.decodeFailStreak < std::max(1, cfg_.shareQuarantineStreak))
        return;
    // Streak reached: suspend sharing with this rank, doubling the window on
    // every repeat offense. A transiently corrupting link recovers after one
    // short suspension; a persistently bad one converges to effectively
    // disabled sharing instead of wasting wire and certification work
    // forever.
    si.decodeFailStreak = 0;
    const int level = std::min(si.quarantineLevel, 16);
    si.quarantineUntil =
        now + cfg_.shareQuarantineBackoff * static_cast<double>(1 << level);
    ++si.quarantineLevel;
}

void LoadCoordinator::mergeSharedCuts(const Message& m) {
    if (!shareCuts_ || m.cuts.empty()) return;
    SolverInfo& si = info_[m.src];
    const double now = comm_.now(0);
    if (now < si.quarantineUntil) {
        stats_.shareCutsQuarantined += m.cuts.count();
        return;
    }
    const GlobalCutPool::MergeStats ms = cutPool_.merge(m.cuts, m.src);
    stats_.shareCutsReported += ms.reported;
    stats_.shareCutsPooled += ms.pooled;
    if (ms.decodeFailed) {
        ++stats_.shareCutsDecodeFailures;
        noteDecodeFailure(si, now);
    } else {
        si.decodeFailStreak = 0;
    }
}

void LoadCoordinator::observeShareTelemetry(SolverInfo& si, const LpEffort& e) {
    // Counters are cumulative over the rank's current subproblem; the
    // lastShared* baselines are reset whenever a new subproblem is assigned,
    // so each report contributes exactly its delta. A negative delta means
    // the baseline is stale (reordered or lost traffic) — resynchronize
    // without feeding the EWMA.
    const std::int64_t dR = e.sharedReceived - si.lastSharedReceived;
    const std::int64_t dA = e.sharedAdmitted - si.lastSharedAdmitted;
    if (dR > 0 && dA >= 0) {
        const double rate =
            std::min(1.0, static_cast<double>(dA) / static_cast<double>(dR));
        si.admitEwma = 0.7 * si.admitEwma + 0.3 * rate;
    }
    si.lastSharedReceived = e.sharedReceived;
    si.lastSharedAdmitted = e.sharedAdmitted;

    // Worker-side decode failures implicate the same link as LC-side ones
    // (the priming direction instead of the reporting direction); each failed
    // bundle counts toward the rank's quarantine streak.
    const std::int64_t dF =
        e.sharedDecodeFailures - si.lastSharedDecodeFailures;
    if (dF > 0) {
        stats_.shareCutsDecodeFailures += dF;
        for (std::int64_t i = 0; i < dF; ++i)
            noteDecodeFailure(si, comm_.now(0));
    }
    si.lastSharedDecodeFailures = e.sharedDecodeFailures;
}

int LoadCoordinator::primingBatchFor(int receiver) const {
    if (!shareAdaptive_) return shareMaxCuts_;
    // A rank admitting everything gets up to 2x the configured batch, one
    // rejecting everything ramps down; clamp keeps the bundle useful without
    // letting a hot streak flood the wire.
    const double scaled = 2.0 * shareMaxCuts_ * info_[receiver].admitEwma;
    return std::clamp(static_cast<int>(scaled), 8, 128);
}

void LoadCoordinator::attachSharedCuts(Message& m, int receiver) {
    if (!shareCuts_) return;
    if (comm_.now(0) < info_[receiver].quarantineUntil) return;
    m.cuts = cutPool_.bundleFor(receiver, m.desc, primingBatchFor(receiver));
    stats_.shareCutsSent += m.cuts.count();
}

int LoadCoordinator::activeCount() const {
    int c = 0;
    for (int r = 1; r <= cfg_.numSolvers; ++r)
        if (info_[r].active) ++c;
    return c;
}

int LoadCoordinator::aliveCount() const {
    int c = 0;
    for (int r = 1; r <= cfg_.numSolvers; ++r)
        if (!info_[r].dead) ++c;
    return c;
}

double LoadCoordinator::frontierWeight(const SolverInfo& si) const {
    // Open nodes weighted by observed node hardness: a solver whose nodes
    // average many simplex iterations holds a heavier frontier than one with
    // the same count of cheap nodes. With no LP data yet (ramp-up, LP-free
    // base solvers) the weight degrades to the plain open-node count.
    double avgIters = 1.0;
    if (si.lpEffort.iterations > 0 && si.nodesProcessed > 0)
        avgIters = static_cast<double>(si.lpEffort.iterations) /
                   static_cast<double>(si.nodesProcessed);
    return static_cast<double>(si.openNodes) * std::max(1.0, avgIters);
}

void LoadCoordinator::foldLpEffort(const LpEffort& e) {
    stats_.lpIterations += e.iterations;
    stats_.lpFactorizations += e.factorizations;
    stats_.basisWarmStarts += e.basisWarmStarts;
    stats_.strongBranchProbes += e.strongBranchProbes;
    stats_.sepaFlowSolves += e.sepaFlowSolves;
    stats_.sepaCuts += e.sepaCuts;
    stats_.lpHyperSolves += e.hyperSolves;
    stats_.lpDenseSolves += e.denseSolves;
    stats_.lpSolveNnzSum += e.solveNnzSum;
    stats_.cutPoolDupRejected += e.poolDupRejected;
    stats_.cutPoolDominatedRejected += e.poolDominatedRejected;
    stats_.cutPoolDominatedEvicted += e.poolDominatedEvicted;
    stats_.shareCutsReceived += e.sharedReceived;
    stats_.shareCutsAdmitted += e.sharedAdmitted;
    stats_.shareCutsInvalid += e.sharedInvalid;
    stats_.redcostCalls += e.redcostCalls;
    stats_.redcostTightenings += e.redcostTightenings;
    stats_.redcostFixings += e.redcostFixings;
    stats_.redpropRuns += e.redpropRuns;
    stats_.redpropArcsFixed += e.redpropArcsFixed;
    stats_.redpropDaWarmStarts += e.redpropDaWarmStarts;
    stats_.redpropLbSkips += e.redpropLbSkips;
    stats_.redpropDaCutsFed += e.redpropDaCutsFed;
    stats_.maxCutPoolSize = std::max(stats_.maxCutPoolSize,
                                     static_cast<long long>(e.poolSize));
}

void LoadCoordinator::noteActivity() {
    const int act = activeCount();
    const double now = comm_.now(0);
    if (act > stats_.maxActiveSolvers) {
        stats_.maxActiveSolvers = act;
        stats_.firstMaxActiveTime = now;
    }
    if (act == cfg_.numSolvers && stats_.rampUpTime < 0)
        stats_.rampUpTime = now;
}

void LoadCoordinator::start(const cip::SubproblemDesc& root) {
    rootDesc_ = root;
    if (cfg_.initialSolution.valid()) {
        best_ = cfg_.initialSolution;
        cutoff_ = best_.obj;
    }
    nextCheckpoint_ = cfg_.checkpointInterval > 0
                          ? comm_.now(0) + cfg_.checkpointInterval
                          : 0.0;
    if (cfg_.restartFromCheckpoint && loadCheckpoint()) {
        // Restart: pool already filled; ramp up by distributing saved
        // primitive nodes (racing is skipped on restarts, as in ParaSCIP).
        broadcastSolution();
        assignNodes();
        updateCollectMode();
        return;
    }

    if (cfg_.rampUp == RampUp::Racing && cfg_.numSolvers > 1 &&
        !cfg_.racingSettings.empty()) {
        racingPhase_ = true;
        racingStart_ = comm_.now(0);
        for (int r = 1; r <= cfg_.numSolvers; ++r) {
            Message m;
            m.tag = Tag::RacingSubproblem;
            m.desc = root;
            const int idx =
                (r - 1) % static_cast<int>(cfg_.racingSettings.size());
            m.params = cfg_.racingSettings[idx];
            m.settingId = idx;
            if (best_.valid()) m.sol = best_;
            attachSharedCuts(m, r);  // non-empty only on restarted pools
            info_[r].active = true;
            info_[r].settingId = idx;
            info_[r].assigned = root;
            info_[r].lastHeard = racingStart_;
            info_[r].lastSharedReceived = 0;
            info_[r].lastSharedAdmitted = 0;
            info_[r].lastSharedDecodeFailures = 0;
            info_[r].lastProgress = 0;
            info_[r].lastProgressTime = racingStart_;
            info_[r].stallInterrupted = false;
            comm_.send(0, r, m);
        }
        noteActivity();
        return;
    }

    pool_.push_back(root);
    assignNodes();
    updateCollectMode();
}

void LoadCoordinator::assignNodes() {
    if (racingPhase_ || stopping_ || done_) return;
    while (!pool_.empty()) {
        int idleRank = -1;
        for (int r = 1; r <= cfg_.numSolvers; ++r) {
            if (!info_[r].active && !info_[r].dead) {
                idleRank = r;
                break;
            }
        }
        if (idleRank < 0) break;
        // Best node first (lowest bound).
        std::size_t pick = 0;
        for (std::size_t i = 1; i < pool_.size(); ++i)
            if (pool_[i].lowerBound < pool_[pick].lowerBound) pick = i;
        cip::SubproblemDesc desc = std::move(pool_[pick]);
        pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(pick));
        if (cutoff_ < cip::kInf && desc.lowerBound >= cutoff_ - 1e-9)
            continue;  // node already cut off by the incumbent
        Message m;
        m.tag = Tag::Subproblem;
        m.desc = desc;
        if (best_.valid()) m.sol = best_;
        // A requeued root (its first run failed or stalled) retries under the
        // fallback parameter profile — a different configuration is the best
        // bet against a deterministic stall reproducing itself.
        if (desc.retryLevel > 0) m.params = stallParams_;
        attachSharedCuts(m, idleRank);
        info_[idleRank].active = true;
        info_[idleRank].dualBound = desc.lowerBound;
        info_[idleRank].openNodes = 0;
        info_[idleRank].assigned = std::move(desc);
        info_[idleRank].lastHeard = comm_.now(0);
        // The fresh solver's cumulative counters restart at zero.
        info_[idleRank].lastSharedReceived = 0;
        info_[idleRank].lastSharedAdmitted = 0;
        info_[idleRank].lastSharedDecodeFailures = 0;
        info_[idleRank].lastProgress = 0;
        info_[idleRank].lastProgressTime = info_[idleRank].lastHeard;
        info_[idleRank].stallInterrupted = false;
        ++stats_.transferredNodes;
        comm_.send(0, idleRank, m);
        noteActivity();
    }
}

void LoadCoordinator::updateCollectMode() {
    if (racingPhase_ || stopping_ || done_) return;
    int idle = 0;
    for (int r = 1; r <= cfg_.numSolvers; ++r)
        if (!info_[r].active && !info_[r].dead) ++idle;
    const std::size_t target = static_cast<std::size_t>(
        std::max(1, cfg_.poolTargetPerSolver * std::max(idle, 1)));
    const bool wantCollect =
        pool_.size() < target && (idle > 0 || pool_.size() < target / 2 + 1);

    if (wantCollect) {
        // Ask the solvers holding the heaviest frontiers to share — heaviest
        // in LP effort, not raw node count: nodes that cost many simplex
        // iterations are the ones worth spreading across ranks. Engage
        // suppliers in weight order only until their surplus (a supplier
        // normally keeps one node for itself) covers the pool deficit, so
        // cheap frontiers keep their warm-start locality.
        //
        // Ramp-down exception: with idle solvers around, a solver sitting on
        // exactly ONE open node is also a candidate when the effort-weighted
        // frontier marks that node heavy — it may ship its last node
        // (collectKeep = 0) and go idle, letting the coordinator hand the
        // heavy subtree to a rank that can split it. The old >= 2 gate made
        // such solvers permanently unable to supply, serializing the tail of
        // the search on whichever rank happened to hold the last hard node.
        std::vector<int> cands;
        for (int r = 1; r <= cfg_.numSolvers; ++r) {
            const SolverInfo& si = info_[r];
            if (!si.active || si.collecting) continue;
            const bool heavySingle =
                si.openNodes == 1 && idle > 0 &&
                frontierWeight(si) >= cfg_.collectHeavySingleWeight;
            if (si.openNodes >= 2 || heavySingle) cands.push_back(r);
        }
        std::stable_sort(cands.begin(), cands.end(), [&](int a, int b) {
            return frontierWeight(info_[a]) > frontierWeight(info_[b]);
        });
        const long long deficit = static_cast<long long>(target) -
                                  static_cast<long long>(pool_.size());
        long long expected = 0;
        for (int r : cands) {
            const int keep = info_[r].openNodes >= 2 ? 1 : 0;
            Message m;
            m.tag = Tag::StartCollecting;
            m.collectKeep = keep;
            comm_.send(0, r, m);
            info_[r].collecting = true;
            expected += info_[r].openNodes - keep;
            if (expected >= deficit) break;
        }
    } else if (pool_.size() >= 2 * target + 2) {
        for (int r = 1; r <= cfg_.numSolvers; ++r) {
            SolverInfo& si = info_[r];
            if (si.collecting) {
                Message m;
                m.tag = Tag::StopCollecting;
                comm_.send(0, r, m);
                si.collecting = false;
            }
        }
    }
}

void LoadCoordinator::broadcastSolution() {
    if (!best_.valid()) return;
    for (int r = 1; r <= cfg_.numSolvers; ++r) {
        if (info_[r].dead) continue;
        Message m;
        m.tag = Tag::SolutionPush;
        m.sol = best_;
        comm_.send(0, r, m);
    }
}

bool LoadCoordinator::adoptSolution(const cip::Solution& sol, int source,
                                    int settingId) {
    if (!sol.valid() || (best_.valid() && sol.obj >= best_.obj - 1e-12))
        return false;
    best_ = sol;
    cutoff_ = best_.obj;
    bestSource_ = source;
    bestSetting_ = settingId;
    // Drop pool nodes that are now cut off.
    std::erase_if(pool_, [&](const cip::SubproblemDesc& d) {
        return d.lowerBound >= cutoff_ - 1e-9;
    });
    broadcastSolution();
    return true;
}

void LoadCoordinator::pickRacingWinner() {
    if (!racingPhase_ || racingWinnerPicked_) return;
    racingWinnerPicked_ = true;
    // Winner criterion (paper): combination of lower bound and open nodes.
    // Bound ties break on the LP-effort-weighted frontier (open nodes times
    // the racer's average simplex iterations per node) rather than the raw
    // count: the winner's tree is the one the whole run inherits, and hard
    // nodes are worth more kept inside a warm tree than re-derived from a
    // transferred description.
    int winner = -1;
    for (int r = 1; r <= cfg_.numSolvers; ++r) {
        const SolverInfo& si = info_[r];
        if (!si.active || si.dead) continue;
        if (winner < 0 ||
            si.dualBound > info_[winner].dualBound + 1e-12 ||
            (std::fabs(si.dualBound - info_[winner].dualBound) <= 1e-12 &&
             frontierWeight(si) > frontierWeight(info_[winner])))
            winner = r;
    }
    if (winner < 0) return;  // everyone already finished
    stats_.racingWinnerSetting = info_[winner].settingId;
    for (int r = 1; r <= cfg_.numSolvers; ++r) {
        if (!info_[r].active) continue;
        Message m;
        m.tag = (r == winner) ? Tag::CollectAll : Tag::RacingStop;
        comm_.send(0, r, m);
    }
}

void LoadCoordinator::maybeFinishRacing() {
    if (!racingPhase_ || activeCount() > 0) return;
    racingPhase_ = false;
    if (instanceSolvedInRacing_) {
        pool_.clear();
    } else if (pool_.empty()) {
        // Winner delivered no open nodes (interrupted mid-node, or it died
        // before handing its frontier over): fall back to re-exploring from
        // the root with the accumulated incumbent. Correctness over lost
        // work.
        pool_.push_back(rootDesc_);
    }
    assignNodes();
    updateCollectMode();
}

void LoadCoordinator::handleMessage(const Message& m) {
    if (done_) return;
    const int r = m.src;
    if (r < 1 || r > cfg_.numSolvers) return;
    SolverInfo& si = info_[r];

    if (si.dead) {
        // Stale traffic from a rank the failure detector already wrote off:
        // its assigned root was requeued, so everything it reports is
        // re-derived elsewhere. Solutions are still self-contained
        // certificates, though — adopt those, discard the rest.
        if (m.tag == Tag::SolutionFound) {
            ++stats_.solutionsFound;
            adoptSolution(m.sol, r, si.settingId);
        } else {
            ++stats_.ignoredMessages;
        }
        return;
    }
    si.lastHeard = comm_.now(0);

    switch (m.tag) {
        case Tag::SolutionFound: {
            ++stats_.solutionsFound;
            adoptSolution(m.sol, r, si.settingId);
            break;
        }
        case Tag::Status: {
            if (!si.active) {
                // Stale report delivered after the rank's Terminated was
                // processed (reordered or duplicated traffic); its counters
                // no longer describe a running subproblem.
                ++stats_.ignoredMessages;
                break;
            }
            // Progress watermark: the stall detector only trusts forward
            // motion of the monotone work counter, not the mere arrival of
            // Status traffic (a wedged solver can stay chatty).
            if (m.workDone > si.lastProgress) {
                si.lastProgress = m.workDone;
                si.lastProgressTime = si.lastHeard;
            }
            si.dualBound = std::max(si.dualBound, m.dualBound);
            si.openNodes = m.openNodes;
            si.nodesProcessed = m.nodesProcessed;
            si.busyUnits = m.busyCost;
            observeShareTelemetry(si, m.lpEffort);
            si.lpEffort = m.lpEffort;
            mergeSharedCuts(m);
            // The pool-size gauge peaks mid-subproblem, so track it from
            // Status reports too (foldLpEffort only sees terminal reports).
            stats_.maxCutPoolSize =
                std::max(stats_.maxCutPoolSize,
                         static_cast<long long>(m.lpEffort.poolSize));
            if (racingPhase_ && !racingWinnerPicked_ &&
                m.openNodes >= cfg_.racingOpenNodesLimit)
                pickRacingWinner();
            if (!racingPhase_) updateCollectMode();
            break;
        }
        case Tag::NodeTransfer: {
            // Accepted even from an inactive rank: a node sent just before
            // the sender's Terminated(completed) is the only copy of that
            // part of the search space. (Dead ranks were filtered above —
            // their coverage travels via the requeued root instead.)
            ++stats_.collectedNodes;
            // The sender's frontier just shrank by one, but its next Status
            // may be many steps away: account the ship here so
            // frontierWeight reflects the post-ship frontier. Without this,
            // collect-mode supplier targeting keeps re-selecting a solver it
            // has already drained (its stale pre-ship openNodes looks heavy)
            // while genuinely heavy frontiers sit unasked.
            if (si.active && si.openNodes > 0) --si.openNodes;
            if (!(cutoff_ < cip::kInf &&
                  m.desc.lowerBound >= cutoff_ - 1e-9))
                pool_.push_back(m.desc);
            if (!racingPhase_) {
                assignNodes();
                updateCollectMode();
            }
            break;
        }
        case Tag::RacingFinished: {
            if (!si.active || !racingPhase_) {
                // Duplicate, or a straggler arriving after racing already
                // ended; the first copy did all the work, but the attached
                // solution is still a certificate.
                ++stats_.ignoredMessages;
                adoptSolution(m.sol, r, si.settingId);
                break;
            }
            // A racer solved the instance outright during the racing stage.
            adoptSolution(m.sol, r, si.settingId);
            mergeSharedCuts(m);
            instanceSolvedInRacing_ = true;
            si.active = false;
            si.assigned.reset();
            stats_.totalNodesProcessed += m.nodesProcessed;
            stats_.busyUnits += m.busyCost;
            observeShareTelemetry(si, m.lpEffort);
            foldLpEffort(m.lpEffort);
            si.lpEffort = {};
            si.dualBound = m.dualBound;
            // Stop the remaining racers.
            for (int rr = 1; rr <= cfg_.numSolvers; ++rr) {
                if (info_[rr].active) {
                    Message stop;
                    stop.tag = Tag::RacingStop;
                    comm_.send(0, rr, stop);
                }
            }
            racingWinnerPicked_ = true;
            maybeFinishRacing();
            checkDone();
            break;
        }
        case Tag::Terminated: {
            if (!si.active) {
                // A second Terminated from the same rank (duplicated
                // message, or a re-solve triggered by a duplicated
                // assignment). Folding it in again would double-count the
                // statistics and could requeue an already-covered root.
                ++stats_.ignoredMessages;
                // its incumbent is still a certificate
                adoptSolution(m.sol, r, si.settingId);
                break;
            }
            si.active = false;
            si.collecting = false;
            stats_.totalNodesProcessed += m.nodesProcessed;
            stats_.busyUnits += m.busyCost;
            observeShareTelemetry(si, m.lpEffort);
            foldLpEffort(m.lpEffort);
            si.lpEffort = {};
            adoptSolution(m.sol, r, si.settingId);
            mergeSharedCuts(m);
            if (m.completed) {
                si.assigned.reset();
                if (m.dualBound > -cip::kInf)
                    si.dualBound = std::max(si.dualBound, m.dualBound);
            } else if (stopping_ || racingPhase_) {
                // Shutdown (root already checkpointed) or racing loser
                // (tree intentionally discarded; the maybeFinishRacing
                // root fallback keeps the search exhaustive).
                si.assigned.reset();
            } else {
                // Unexpected incomplete termination (solver failure or a
                // stall-detector Interrupt): the subproblem's coverage would
                // be lost — requeue its root. A stall-interrupted root gets
                // its retry level bumped so the redispatch attaches the
                // fallback parameter profile.
                if (si.assigned) {
                    cip::SubproblemDesc d = std::move(*si.assigned);
                    if (si.stallInterrupted) ++d.retryLevel;
                    pool_.push_back(std::move(d));
                    ++stats_.requeuedNodes;
                }
                si.assigned.reset();
            }
            si.stallInterrupted = false;
            si.openNodes = 0;
            if (stopping_) {
                if (activeCount() == 0) terminateAll();
                break;
            }
            if (racingPhase_) {
                maybeFinishRacing();
            } else {
                assignNodes();
                updateCollectMode();
            }
            checkDone();
            break;
        }
        default:
            ++stats_.ignoredMessages;
            break;  // supervisor->worker tags never legitimately arrive here
    }
}

void LoadCoordinator::checkDone() {
    if (done_ || stopping_) return;
    if (racingPhase_) return;
    if (!pool_.empty() || activeCount() > 0) return;
    finalStatus_ = best_.valid() ? UgStatus::Optimal : UgStatus::Infeasible;
    finalDualBound_ = best_.valid() ? best_.obj : cip::kInf;
    terminateAll();
}

void LoadCoordinator::terminateAll() {
    stats_.openNodesAtEnd = static_cast<long long>(pool_.size());
    for (int r = 1; r <= cfg_.numSolvers; ++r) {
        stats_.openNodesAtEnd += info_[r].active ? info_[r].openNodes : 0;
        Message m;
        m.tag = Tag::Termination;
        comm_.send(0, r, m);
    }
    done_ = true;
}

void LoadCoordinator::forceStop() {
    if (done_ || stopping_) return;
    stopping_ = true;
    finalStatus_ = UgStatus::TimeLimit;
    finalDualBound_ = globalDualBound();
    // Primitive nodes (pool + assigned roots) go to the checkpoint before
    // the workers' in-tree progress is discarded (UG semantics).
    if (!cfg_.checkpointFile.empty()) saveCheckpoint();
    // Drain: interrupt the active workers and wait for their Terminated
    // reports so node/busy statistics are complete; idle workers terminate
    // immediately.
    bool anyActive = false;
    for (int r = 1; r <= cfg_.numSolvers; ++r) {
        Message m;
        if (info_[r].active) {
            anyActive = true;
            m.tag = Tag::Interrupt;
        } else {
            m.tag = Tag::Termination;
        }
        comm_.send(0, r, m);
    }
    if (!anyActive) terminateAll();
}

void LoadCoordinator::declareDead(int r, double now, const char* why) {
    SolverInfo& si = info_[r];
    si.dead = true;
    si.active = false;
    si.collecting = false;
    ++stats_.deadSolvers;
    // Fold in its last reported progress — the authoritative Terminated
    // report will never come (and is ignored if it does).
    stats_.totalNodesProcessed += si.nodesProcessed;
    stats_.busyUnits += si.busyUnits;
    foldLpEffort(si.lpEffort);
    si.nodesProcessed = 0;
    si.busyUnits = 0;
    si.lpEffort = {};
    si.openNodes = 0;
    if (si.assigned && !racingPhase_ && !stopping_) {
        // The requeue-on-failure invariant: the victim's primitive root
        // goes back into the pool, so its subtree is re-covered. During
        // racing every racer holds the same root (maybeFinishRacing
        // restores one copy if all racers die); during shutdown the
        // root is already in the checkpoint. A stall-escalation victim's
        // root gets a bumped retry level: it already proved pathological
        // under the current configuration.
        cip::SubproblemDesc d = std::move(*si.assigned);
        if (si.stallInterrupted) ++d.retryLevel;
        pool_.push_back(std::move(d));
        ++stats_.requeuedNodes;
    }
    si.assigned.reset();
    si.stallInterrupted = false;
    if (cfg_.logInterval > 0) {
        std::printf("[LC %8.3fs] rank %d declared dead (%s); "
                    "requeued %lld node(s)\n",
                    now, r, why, stats_.requeuedNodes);
        std::fflush(stdout);
    }
}

void LoadCoordinator::checkHeartbeats(double now) {
    if ((cfg_.heartbeatTimeout <= 0 && cfg_.stallTimeout <= 0) || done_)
        return;
    bool anyDied = false;
    for (int r = 1; r <= cfg_.numSolvers; ++r) {
        SolverInfo& si = info_[r];
        if (!si.active || si.dead) continue;

        // Dead = silent: an active rank whose traffic stopped entirely.
        if (cfg_.heartbeatTimeout > 0 &&
            now - si.lastHeard >= cfg_.heartbeatTimeout) {
            declareDead(r, now, "silent");
            anyDied = true;
            continue;
        }

        // Stalled = chatty but not advancing the progress watermark: still
        // sending Status, yet the monotone work counter has not moved for a
        // full stall window. First offense gets a soft Interrupt — the
        // solver reports Terminated(incomplete) and the Terminated handler
        // requeues its root with a bumped retry level. If the rank is still
        // active a full window later (the Interrupt or its reply was lost,
        // or the solver is too wedged to honor it), escalate to dead.
        if (cfg_.stallTimeout <= 0 ||
            now - si.lastProgressTime < cfg_.stallTimeout)
            continue;
        if (!si.stallInterrupted) {
            si.stallInterrupted = true;
            si.lastProgressTime = now;  // restart the escalation clock
            ++stats_.stallInterrupts;
            Message m;
            m.tag = Tag::Interrupt;
            comm_.send(0, r, m);
            if (cfg_.logInterval > 0) {
                std::printf("[LC %8.3fs] rank %d stalled (no progress for "
                            "%.3fs); interrupting\n",
                            now, r, cfg_.stallTimeout);
                std::fflush(stdout);
            }
        } else {
            declareDead(r, now, "stalled, unresponsive to interrupt");
            anyDied = true;
        }
    }
    if (!anyDied) return;

    if (stopping_) {
        if (activeCount() == 0) terminateAll();
        return;
    }
    if (racingPhase_) {
        maybeFinishRacing();
    } else {
        assignNodes();
        updateCollectMode();
    }
    checkDone();
    if (!done_ && aliveCount() == 0) {
        // Every solver failed with work outstanding: nobody is left to
        // process the pool, so report failure instead of spinning.
        finalStatus_ = UgStatus::Failed;
        finalDualBound_ = globalDualBound();
        terminateAll();
    }
}

void LoadCoordinator::onTimer(double now) {
    if (done_) return;
    if (cfg_.logInterval > 0 && now >= nextLog_) {
        nextLog_ = now + cfg_.logInterval;
        const double primal = best_.valid() ? best_.obj : cip::kInf;
        const double dual = globalDualBound();
        long long lpIt = stats_.lpIterations;
        for (int r = 1; r <= cfg_.numSolvers; ++r)
            if (info_[r].active) lpIt += info_[r].lpEffort.iterations;
        std::printf(
            "[LC %8.3fs] active %d/%d pool %zu primal %s dual %g trans %lld "
            "coll %lld lpIt %lld\n",
            now, activeCount(), cfg_.numSolvers, pool_.size(),
            primal < cip::kInf ? std::to_string(primal).c_str() : "-", dual,
            stats_.transferredNodes, stats_.collectedNodes, lpIt);
        std::fflush(stdout);
    }
    if (racingPhase_ && !racingWinnerPicked_ &&
        now - racingStart_ >= cfg_.racingTimeLimit)
        pickRacingWinner();
    checkHeartbeats(now);
    if (done_) return;  // the failure detector may have terminated the run
    if (cfg_.checkpointInterval > 0 && !cfg_.checkpointFile.empty() &&
        now >= nextCheckpoint_) {
        saveCheckpoint();
        nextCheckpoint_ = now + cfg_.checkpointInterval;
    }
    if (now >= cfg_.timeLimit) forceStop();
}

double LoadCoordinator::globalDualBound() const {
    double bound = cip::kInf;
    bool any = false;
    for (const auto& d : pool_) {
        bound = std::min(bound, d.lowerBound);
        any = true;
    }
    for (int r = 1; r <= cfg_.numSolvers; ++r) {
        if (info_[r].active) {
            bound = std::min(bound, info_[r].dualBound);
            any = true;
        }
    }
    if (!any) return best_.valid() ? best_.obj : -cip::kInf;
    return bound;
}

void LoadCoordinator::saveCheckpoint() {
    Checkpoint cp;
    cp.nodes = pool_;
    if (racingPhase_) {
        // Racing: every racer holds the *same* root as its assigned node.
        // Writing one copy per racer would make a restart distribute N
        // duplicate roots and re-solve the instance N times — save exactly
        // one, with the best dual bound any racer has proven for it (each
        // racer solves the full root problem, so each reported bound is a
        // valid bound for it). Nothing to save if a racer already solved
        // the instance outright.
        if (!instanceSolvedInRacing_) {
            cip::SubproblemDesc d = rootDesc_;
            for (int r = 1; r <= cfg_.numSolvers; ++r)
                if (info_[r].active && info_[r].dualBound > -cip::kInf)
                    d.lowerBound = std::max(d.lowerBound, info_[r].dualBound);
            cp.nodes.push_back(std::move(d));
        }
    } else {
        for (int r = 1; r <= cfg_.numSolvers; ++r) {
            if (info_[r].active && info_[r].assigned) {
                cip::SubproblemDesc d = *info_[r].assigned;
                d.lowerBound = std::max(d.lowerBound, info_[r].dualBound);
                cp.nodes.push_back(std::move(d));
            }
        }
    }
    cp.incumbent = best_;
    cp.incumbentSource = bestSource_;
    cp.incumbentSetting = bestSetting_;
    cp.dualBound = globalDualBound();
    cp.racingDone = !racingPhase_;
    // The global cut-pool snapshot rides along so a restart resumes sharing
    // from the fleet's accumulated supports instead of an empty pool.
    for (const CutSupport& cs : cutPool_.snapshot())
        cp.cuts.append(cs.vars, cs.rhsClass);
    ++stats_.checkpointSaves;
    cp.hasStats = true;
    cp.stats = stats_;
    TornWriter* torn = tornWriter_ ? &*tornWriter_ : nullptr;
    ug::saveCheckpoint(cfg_.checkpointFile, cp, torn);
    if (torn) stats_.checkpointTornWrites = torn->injected();
}

bool LoadCoordinator::loadCheckpoint() {
    CheckpointLoadReport report;
    auto cp = ug::loadCheckpoint(cfg_.checkpointFile, &report);
    if (!cp) {
        if (report.slotsPresent > 0) {
            // Slot files existed but none validated (torn writes or on-disk
            // corruption in every generation): log why, count it, and fall
            // back to a fresh root solve rather than trusting bad bytes.
            ++stats_.checkpointLoadFailures;
            std::fprintf(stderr,
                         "[LC] checkpoint restart failed (%s); "
                         "falling back to a fresh root solve\n",
                         report.error.c_str());
            std::fflush(stderr);
        }
        return false;
    }
    pool_ = std::move(cp->nodes);
    if (cp->incumbent.valid()) {
        best_ = std::move(cp->incumbent);
        cutoff_ = best_.obj;
        bestSource_ = cp->incumbentSource;
        bestSetting_ = cp->incumbentSetting;
    }
    if (cp->hasStats) {
        // Resume cumulative accounting across the restart; gauges that
        // describe a single run (ramp-up, activity peaks, end-of-run pool)
        // restart fresh.
        stats_ = cp->stats;
        stats_.maxActiveSolvers = 0;
        stats_.firstMaxActiveTime = 0.0;
        stats_.rampUpTime = -1.0;
        stats_.racingWinnerSetting = -1;
        stats_.idleRatio = 0.0;
        stats_.openNodesAtEnd = 0;
    }
    ++stats_.checkpointRestarts;
    if (!cp->cuts.empty()) {
        // Restored supports re-seed the global pool with origin 0 (the
        // coordinator itself). MergeStats are deliberately ignored: the
        // original run already counted these supports as reported/pooled,
        // and the restored cumulative stats carry those counts.
        cutPool_.merge(cp->cuts, 0);
    }
    stats_.initialOpenNodes = static_cast<long long>(pool_.size());
    if (pool_.empty() && !best_.valid()) pool_.push_back(rootDesc_);
    return true;
}

UgResult LoadCoordinator::result(double endTime) const {
    UgResult res;
    res.status = finalStatus_;
    res.best = best_;
    res.dualBound = done_ && finalStatus_ == UgStatus::Optimal
                        ? finalDualBound_
                        : globalDualBound();
    res.elapsed = endTime;
    res.stats = stats_;
    return res;
}

}  // namespace ug
