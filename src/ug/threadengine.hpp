// ThreadEngine: the shared-memory instantiation (ug[*, C++11]) — one
// std::thread per ParaSolver, mailbox message passing, wall-clock time.
//
// The LoadCoordinator runs on the calling thread. All cross-thread state is
// confined to the mailboxes; ParaSolver/LoadCoordinator objects are only
// ever touched by their owning thread, which is the MPI discipline that
// makes the same logic portable to distributed memory.
//
// run() is reentrant: each invocation drains every mailbox first, so
// messages left over from a previous (e.g. timed-out) run cannot leak into
// the next one. When cfg.faults is active, all traffic is routed through a
// FaultyComm decorator and a crashed rank's thread exits early.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ug/basesolver.hpp"
#include "ug/config.hpp"
#include "ug/faultycomm.hpp"
#include "ug/loadcoordinator.hpp"
#include "ug/paracomm.hpp"
#include "ug/parasolver.hpp"

namespace ug {

class ThreadEngine : public ParaComm {
public:
    ThreadEngine(BaseSolverFactory& factory, UgConfig cfg);
    ~ThreadEngine() override;

    UgResult run(const cip::SubproblemDesc& root = {});

    /// Mutable run configuration — lets a harness retune (time limit,
    /// faults, ...) between back-to-back run() calls on the same engine.
    UgConfig& config() { return cfg_; }

    /// The fault layer of the current/last run (null when no plan active).
    const FaultyComm* faultyComm() const { return faulty_.get(); }

    // ParaComm
    int size() const override { return cfg_.numSolvers + 1; }
    void send(int src, int dest, Message msg) override;
    void sendDelayed(int src, int dest, Message msg,
                     double delaySeconds) override;
    double now(int rank) const override;

private:
    /// A mailbox entry only becomes visible once wall time reaches readyAt
    /// (0 for normal traffic; the fault layer uses sendDelayed).
    struct Entry {
        double readyAt = 0.0;
        Message msg;
    };
    struct Mailbox {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<Entry> queue;
    };

    bool tryReceive(Mailbox& box, Message& out);
    void solverLoop(int rank);
    void clearMailboxes();

    BaseSolverFactory& factory_;
    UgConfig cfg_;
    std::vector<std::unique_ptr<Mailbox>> boxes_;
    std::unique_ptr<FaultyComm> faulty_;
    std::unique_ptr<LoadCoordinator> lc_;
    std::vector<std::unique_ptr<ParaSolver>> solvers_;
    std::vector<std::thread> threads_;
    std::vector<double> busyWall_;
    std::vector<double> exitWall_;  ///< per-thread solver-loop exit times
    std::chrono::steady_clock::time_point t0_;
};

}  // namespace ug
