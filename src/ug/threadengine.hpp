// ThreadEngine: the shared-memory instantiation (ug[*, C++11]) — one
// std::thread per ParaSolver, mailbox message passing, wall-clock time.
//
// The LoadCoordinator runs on the calling thread. All cross-thread state is
// confined to the mailboxes; ParaSolver/LoadCoordinator objects are only
// ever touched by their owning thread, which is the MPI discipline that
// makes the same logic portable to distributed memory.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ug/basesolver.hpp"
#include "ug/config.hpp"
#include "ug/loadcoordinator.hpp"
#include "ug/paracomm.hpp"
#include "ug/parasolver.hpp"

namespace ug {

class ThreadEngine : public ParaComm {
public:
    ThreadEngine(BaseSolverFactory& factory, UgConfig cfg);
    ~ThreadEngine() override;

    UgResult run(const cip::SubproblemDesc& root = {});

    // ParaComm
    int size() const override { return cfg_.numSolvers + 1; }
    void send(int src, int dest, Message msg) override;
    double now(int rank) const override;

private:
    struct Mailbox {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<Message> queue;
    };

    void solverLoop(int rank);

    BaseSolverFactory& factory_;
    UgConfig cfg_;
    std::vector<std::unique_ptr<Mailbox>> boxes_;
    std::unique_ptr<LoadCoordinator> lc_;
    std::vector<std::unique_ptr<ParaSolver>> solvers_;
    std::vector<std::thread> threads_;
    std::vector<double> busyWall_;
    std::chrono::steady_clock::time_point t0_;
};

}  // namespace ug
