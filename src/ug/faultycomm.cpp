#include "ug/faultycomm.hpp"

namespace ug {

FaultyComm::FaultyComm(ParaComm& inner, const FaultPlan& plan)
    : inner_(inner), plan_(plan), rng_(plan.seed) {}

bool FaultyComm::killed(int rank) const {
    std::lock_guard lock(mu_);
    return tripped_ && !plan_.hang && rank == plan_.killRank;
}

bool FaultyComm::silenced(int rank) const {
    std::lock_guard lock(mu_);
    return tripped_ && rank == plan_.killRank;
}

FaultyComm::Counters FaultyComm::counters() const {
    std::lock_guard lock(mu_);
    return c_;
}

void FaultyComm::send(int src, int dest, Message msg) {
    std::unique_lock lock(mu_);

    // Kill/hang: after the victim's killAfterSends-th outbound message, all
    // further traffic it emits is swallowed; a crashed (non-hang) victim
    // also stops receiving — except Termination, so engine threads can
    // still shut down cleanly.
    if (plan_.killRank >= 0) {
        if (src == plan_.killRank) {
            ++victimSends_;
            if (victimSends_ > plan_.killAfterSends) tripped_ = true;
        }
        if (tripped_) {
            if (src == plan_.killRank ||
                (dest == plan_.killRank && !plan_.hang &&
                 msg.tag != Tag::Termination)) {
                ++c_.swallowedDead;
                return;
            }
        }
    }

    // Payload corruption: flip one random bit of the shared-cut blob. Only
    // messages carrying cuts are eligible — the cuts channel is the one with
    // end-to-end defenses (CRC-framed checkpoints, receiver certification,
    // wholesale decode rejection), whereas corrupting a node or solution
    // would break the optimum invariant rather than exercise recovery. The
    // roll is skipped entirely when unconfigured so pre-existing fault
    // schedules replay identically.
    if (plan_.corruptProb > 0 && msg.tag != Tag::Termination &&
        !msg.cuts.wire().empty()) {
        const double u =
            std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
        if (u < plan_.corruptProb) {
            const std::size_t words = msg.cuts.wire().size();
            const std::size_t word = std::uniform_int_distribution<
                std::size_t>(0, words - 1)(rng_);
            const unsigned bit = static_cast<unsigned>(
                std::uniform_int_distribution<int>(0, 31)(rng_));
            msg.cuts.flipWireBit(word, bit);
            ++c_.corrupted;
        }
    }

    // Shutdown is reliable: Termination bypasses every message fault.
    if (msg.tag != Tag::Termination) {
        const double u =
            std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
        const bool protectedTag = msg.tag == Tag::NodeTransfer;
        double lo = 0.0;
        auto roll = [&](double p) {
            const bool hit = u >= lo && u < lo + p;
            lo += p;
            return hit;
        };
        if (roll(plan_.dropProb)) {
            if (!protectedTag) {
                ++c_.dropped;
                return;
            }
            // NodeTransfer survives the drop roll (delivered normally).
        } else if (roll(plan_.delayProb)) {
            if (!protectedTag) {
                ++c_.delayed;
                ++c_.delivered;
                lock.unlock();
                inner_.sendDelayed(src, dest, std::move(msg),
                                   plan_.delaySeconds);
                return;
            }
        } else if (roll(plan_.duplicateProb)) {
            ++c_.duplicated;
            ++c_.delivered;
            Message copy = msg;
            lock.unlock();
            inner_.send(src, dest, std::move(copy));
            inner_.send(src, dest, std::move(msg));
            return;
        } else if (roll(plan_.reorderProb)) {
            if (!protectedTag) {
                // Overtaking window: this message is held back just long
                // enough for traffic sent after it to arrive first.
                ++c_.reordered;
                ++c_.delivered;
                lock.unlock();
                inner_.sendDelayed(src, dest, std::move(msg),
                                   plan_.reorderWindow);
                return;
            }
        }
    }

    ++c_.delivered;
    lock.unlock();
    inner_.send(src, dest, std::move(msg));
}

void FaultyComm::sendDelayed(int src, int dest, Message msg,
                             double delaySeconds) {
    // Only the fault layer itself issues delayed sends; forward verbatim.
    inner_.sendDelayed(src, dest, std::move(msg), delaySeconds);
}

}  // namespace ug
