// LoadCoordinator: the Supervisor of the Supervisor-Worker scheme
// (Algorithm 1 of the paper).
//
// Responsibilities reproduced from UG: ramp-up (normal and racing), the
// dynamic load-balancing collect-mode protocol, incumbent broadcasting,
// termination detection, and checkpointing of primitive nodes (only the
// subtree roots it owns — pool nodes plus currently assigned subproblem
// roots — are saved, matching the paper's restart semantics where run 1
// ends with 271,781 open nodes but run 2 restarts from just 18).
//
// Fault tolerance (src/ug/README.md documents the protocol invariants): a
// heartbeat failure detector declares a silent active rank dead after
// cfg.heartbeatTimeout, requeues its assigned root into the pool — the
// generalization of the "unexpected incomplete termination" path — and
// excludes the rank from future scheduling; message handling is defensive,
// so duplicated or stale traffic (a second Terminated from the same rank, a
// NodeTransfer from a rank already declared dead) cannot corrupt the active
// count, the statistics, or the done-detection invariant.
#pragma once

#include <optional>
#include <vector>

#include "ug/checkpoint.hpp"
#include "ug/config.hpp"
#include "ug/globalcutpool.hpp"
#include "ug/paracomm.hpp"

namespace ug {

class LoadCoordinator {
public:
    LoadCoordinator(ParaComm& comm, const UgConfig& cfg);

    /// Kick off ramp-up (or restart from a checkpoint file).
    void start(const cip::SubproblemDesc& root);

    void handleMessage(const Message& m);

    /// Periodic duties: racing deadline, checkpoints, time limit. Engines
    /// call this regularly with the current engine time.
    void onTimer(double now);

    bool done() const { return done_; }

    /// Assemble the final result; `endTime` is the engine's elapsed time.
    UgResult result(double endTime) const;

    const UgStats& stats() const { return stats_; }
    double globalDualBound() const;
    const cip::Solution& bestSolution() const { return best_; }

    /// Force checkpoint + global termination (external stop).
    void forceStop();

private:
    struct SolverInfo {
        bool active = false;
        bool collecting = false;
        bool dead = false;  ///< declared failed; excluded from scheduling
        double dualBound = -cip::kInf;
        double lastHeard = 0.0;  ///< engine time of the last message from it
        long long openNodes = 0;
        long long nodesProcessed = 0;  ///< last reported (running subproblem)
        long long busyUnits = 0;
        LpEffort lpEffort;  ///< last reported (running subproblem)
        int settingId = -1;
        std::optional<cip::SubproblemDesc> assigned;  ///< for checkpointing

        // Shared-cut telemetry for adaptive priming-batch sizing: EWMA of
        // the rank's observed admit rate (admitted/received at its local
        // certification gate) and the cumulative counters at the last
        // report, so each report contributes its delta exactly once.
        double admitEwma = 0.5;  ///< neutral prior until telemetry arrives
        std::int64_t lastSharedReceived = 0;
        std::int64_t lastSharedAdmitted = 0;
        std::int64_t lastSharedDecodeFailures = 0;

        // Stall detection (progress watermarks): the highest workDone the
        // rank has reported for its current subproblem and when it last
        // advanced. A rank that keeps sending Status but never moves the
        // watermark past cfg.stallTimeout is *stalled*, not dead.
        std::int64_t lastProgress = 0;
        double lastProgressTime = 0.0;
        bool stallInterrupted = false;  ///< soft Interrupt sent; waiting for
                                        ///< the Terminated report (escalates
                                        ///< to dead after another timeout)

        // Cut-sharing quarantine: consecutive corrupt bundles on this rank's
        // link, and the exponential-backoff suspension window.
        int decodeFailStreak = 0;
        int quarantineLevel = 0;      ///< backoff exponent (offense count)
        double quarantineUntil = 0.0; ///< sharing suspended before this time
    };

    void assignNodes();
    void updateCollectMode();
    void pickRacingWinner();
    /// Effort-weighted frontier size of a solver: open nodes scaled by the
    /// average simplex iterations its nodes cost so far. The unit of "load"
    /// used to pick racing winners and collect-mode suppliers.
    double frontierWeight(const SolverInfo& si) const;
    /// Fold a final LP-effort report into the aggregate statistics.
    void foldLpEffort(const LpEffort& e);
    /// Adopt `sol` if it improves the incumbent: prune the pool against the
    /// new cutoff and broadcast. Returns true if adopted. `source` and
    /// `settingId` record the incumbent's provenance for checkpointing.
    bool adoptSolution(const cip::Solution& sol, int source = -1,
                       int settingId = -1);
    void broadcastSolution();
    /// Racing epilogue shared by Terminated handling and failure detection:
    /// once the last racer is gone, leave the racing phase and fall back to
    /// the root if the winner delivered nothing.
    void maybeFinishRacing();
    /// Failure detector: declare silent-but-active ranks dead (requeue their
    /// assigned roots, exclude them from all future scheduling), and soft-
    /// interrupt chatty-but-stalled ranks so their roots retry under the
    /// fallback parameter profile.
    void checkHeartbeats(double now);
    /// Declare rank `r` dead and requeue its root; shared by the silence and
    /// stall-escalation paths.
    void declareDead(int r, double now, const char* why);
    /// Record one corrupt-bundle event on a rank's link; trips the
    /// exponential-backoff sharing quarantine after a configured streak.
    void noteDecodeFailure(SolverInfo& si, double now);
    /// Merge a worker-reported cut bundle into the global pool (no-op when
    /// sharing is disabled or the bundle is empty).
    void mergeSharedCuts(const Message& m);
    /// Attach the relevance-filtered priming bundle to an assignment.
    void attachSharedCuts(Message& m, int receiver);
    /// Fold a worker report's shared-cut counters into the rank's admit-rate
    /// EWMA (deltas against the previous report of the same subproblem).
    void observeShareTelemetry(SolverInfo& si, const LpEffort& e);
    /// Per-receiver priming batch bound: the static stp/share/maxcutsup, or
    /// the EWMA-scaled adaptive size clamped to [8, 128].
    int primingBatchFor(int receiver) const;
    void checkDone();
    void terminateAll();
    void saveCheckpoint();
    bool loadCheckpoint();
    int activeCount() const;
    int aliveCount() const;  ///< ranks not declared dead
    void noteActivity();

    ParaComm& comm_;
    UgConfig cfg_;

    std::vector<cip::SubproblemDesc> pool_;
    GlobalCutPool cutPool_;  ///< cross-solver shared cut supports
    bool shareCuts_ = true;  ///< stp/share/enable (from cfg.baseParams)
    int shareMaxCuts_ = 32;  ///< stp/share/maxcutsup: per-message batch bound
    bool shareAdaptive_ = true;  ///< stp/share/adaptivebatch: scale the batch
                                 ///< per receiver by its admit-rate EWMA
    std::vector<SolverInfo> info_;  ///< index 1..numSolvers (0 unused)
    cip::Solution best_;
    double cutoff_;  ///< objective of best_, or +inf
    int bestSource_ = -1;   ///< rank that reported best_ (-1: unknown)
    int bestSetting_ = -1;  ///< racing setting best_ was found under

    /// Fallback profile attached when redispatching a stalled root
    /// (cfg.stallFallbackParams, or the built-in default).
    cip::ParamSet stallParams_;
    /// Torn-write fault injection on checkpoint saves (faults.tornWriteProb).
    std::optional<TornWriter> tornWriter_;

    cip::SubproblemDesc rootDesc_;
    bool racingPhase_ = false;
    bool racingWinnerPicked_ = false;
    double racingStart_ = 0.0;
    bool instanceSolvedInRacing_ = false;
    bool stopping_ = false;  ///< forceStop in progress
    bool done_ = false;
    UgStatus finalStatus_ = UgStatus::Failed;

    double nextCheckpoint_ = 0.0;
    double nextLog_ = 0.0;
    UgStats stats_;
    mutable double finalDualBound_ = -cip::kInf;
};

}  // namespace ug
