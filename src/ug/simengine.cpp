#include "ug/simengine.hpp"

#include <algorithm>

namespace ug {

SimEngine::SimEngine(BaseSolverFactory& factory, UgConfig cfg)
    : factory_(factory), cfg_(std::move(cfg)) {}

SimEngine::~SimEngine() = default;

void SimEngine::send(int src, int dest, Message msg) {
    msg.src = src;
    outbox_.emplace_back(dest, std::move(msg));
}

double SimEngine::now(int rank) const {
    if (rank == 0) return lcTime_;
    return vclock_[rank];
}

void SimEngine::flushOutbox(double sendTime) {
    for (auto& [dest, msg] : outbox_) {
        events_.push(Event{sendTime + cfg_.msgLatency, seq_++,
                           EventKind::MsgArrival, dest, std::move(msg)});
    }
    outbox_.clear();
}

void SimEngine::attend(int rank, double time) {
    // Give rank `rank` attention at event time `time`: deliver due messages
    // and let it work one step.
    ParaSolver& ps = *solvers_[rank];
    double eff = std::max(vclock_[rank], time);

    bool handledAny = false;
    while (!inbox_[rank].empty() && inbox_[rank].front().first <= eff + 1e-15) {
        Message m = std::move(inbox_[rank].front().second);
        inbox_[rank].pop();
        ps.handleMessage(m);
        handledAny = true;
    }
    if (handledAny) {
        // Message handling itself is treated as instantaneous; its outbound
        // messages leave at eff.
        flushOutbox(eff);
    }

    if (ps.hasWork()) {
        // Every step advances time by at least one unit (guards against
        // zero-cost steps stalling the event loop).
        const std::int64_t cost = std::max<std::int64_t>(1, ps.work());
        const double dt = static_cast<double>(cost) * cfg_.costUnitSeconds;
        busy_[rank] += dt;
        vclock_[rank] = eff + dt;
        flushOutbox(vclock_[rank]);
        events_.push(Event{vclock_[rank], seq_++, EventKind::SolverRun, rank,
                           Message{}});
    } else {
        vclock_[rank] = eff;
        outbox_.clear();  // nothing should be pending here
        if (!inbox_[rank].empty()) {
            events_.push(Event{inbox_[rank].front().first, seq_++,
                               EventKind::SolverRun, rank, Message{}});
        }
    }
}

UgResult SimEngine::run(const cip::SubproblemDesc& root) {
    const int n = cfg_.numSolvers;
    lc_ = std::make_unique<LoadCoordinator>(*this, cfg_);
    solvers_.clear();
    solvers_.resize(n + 1);
    inbox_.assign(n + 1, {});
    vclock_.assign(n + 1, 0.0);
    busy_.assign(n + 1, 0.0);
    lcTime_ = 0.0;
    running_ = true;
    for (int r = 1; r <= n; ++r)
        solvers_[r] = std::make_unique<ParaSolver>(r, *this, factory_, cfg_);

    lc_->start(root);
    flushOutbox(0.0);
    if (cfg_.timeLimit < 1e17)
        events_.push(
            Event{cfg_.timeLimit, seq_++, EventKind::Timer, 0, Message{}});
    if (cfg_.rampUp == RampUp::Racing)
        events_.push(Event{cfg_.racingTimeLimit, seq_++, EventKind::Timer, 0,
                           Message{}});
    if (cfg_.checkpointInterval > 0)
        events_.push(Event{cfg_.checkpointInterval, seq_++, EventKind::Timer,
                           0, Message{}});

    while (!events_.empty() && !lc_->done()) {
        Event ev = events_.top();
        events_.pop();
        if (ev.kind == EventKind::Timer) {
            lcTime_ = std::max(lcTime_, ev.time);
            lc_->onTimer(ev.time);
            flushOutbox(ev.time);
            if (cfg_.checkpointInterval > 0 && ev.rank == 0 &&
                !lc_->done()) {
                // Re-arm the periodic checkpoint timer.
                events_.push(Event{ev.time + cfg_.checkpointInterval, seq_++,
                                   EventKind::Timer, 0, Message{}});
            }
            continue;
        }
        if (ev.kind == EventKind::MsgArrival) {
            if (ev.rank == 0) {
                lcTime_ = std::max(lcTime_, ev.time);
                lc_->handleMessage(ev.msg);
                flushOutbox(lcTime_);
                lc_->onTimer(lcTime_);
                flushOutbox(lcTime_);
            } else {
                inbox_[ev.rank].emplace(ev.time, std::move(ev.msg));
                attend(ev.rank, ev.time);
            }
            continue;
        }
        // SolverRun
        attend(ev.rank, ev.time);
    }

    running_ = false;
    const double endTime = lcTime_;
    UgResult res = lc_->result(endTime);
    // Idle ratio over the makespan: fraction of solver-seconds not spent in
    // base-solver work.
    double busySum = 0.0;
    for (int r = 1; r <= n; ++r) busySum += busy_[r];
    const double total = endTime * n;
    res.stats.idleRatio = total > 0 ? std::max(0.0, 1.0 - busySum / total) : 0.0;
    // Drain leftover events for reuse safety.
    while (!events_.empty()) events_.pop();
    outbox_.clear();
    return res;
}

}  // namespace ug
