#include "ug/simengine.hpp"

#include <algorithm>

namespace ug {

SimEngine::SimEngine(BaseSolverFactory& factory, UgConfig cfg)
    : factory_(factory), cfg_(std::move(cfg)) {}

SimEngine::~SimEngine() = default;

void SimEngine::send(int src, int dest, Message msg) {
    msg.src = src;
    outbox_.push_back(Pending{dest, std::move(msg), 0.0});
}

void SimEngine::sendDelayed(int src, int dest, Message msg,
                            double delaySeconds) {
    msg.src = src;
    outbox_.push_back(Pending{dest, std::move(msg), delaySeconds});
}

double SimEngine::now(int rank) const {
    if (rank == 0) return lcTime_;
    return vclock_[rank];
}

void SimEngine::flushOutbox(double sendTime) {
    for (auto& p : outbox_) {
        events_.push(Event{sendTime + cfg_.msgLatency + p.extraDelay, seq_++,
                           EventKind::MsgArrival, p.dest, std::move(p.msg)});
    }
    outbox_.clear();
}

void SimEngine::attend(int rank, double time) {
    // Give rank `rank` attention at event time `time`: deliver due messages
    // and let it work one step. A crashed rank is never attended again (its
    // queued events and inbox simply rot).
    if (faulty_ && faulty_->killed(rank)) return;
    ParaSolver& ps = *solvers_[rank];
    double eff = std::max(vclock_[rank], time);

    bool handledAny = false;
    while (!inbox_[rank].empty() && inbox_[rank].front().first <= eff + 1e-15) {
        Message m = std::move(inbox_[rank].front().second);
        inbox_[rank].pop();
        ps.handleMessage(m);
        handledAny = true;
    }
    if (handledAny) {
        // Message handling itself is treated as instantaneous; its outbound
        // messages leave at eff.
        flushOutbox(eff);
    }

    if (ps.hasWork()) {
        // Every step advances time by at least one unit (guards against
        // zero-cost steps stalling the event loop).
        const std::int64_t cost = std::max<std::int64_t>(1, ps.work());
        const double dt = static_cast<double>(cost) * cfg_.costUnitSeconds;
        busy_[rank] += dt;
        vclock_[rank] = eff + dt;
        flushOutbox(vclock_[rank]);
        events_.push(Event{vclock_[rank], seq_++, EventKind::SolverRun, rank,
                           Message{}});
    } else {
        vclock_[rank] = eff;
        outbox_.clear();  // nothing should be pending here
        if (!inbox_[rank].empty()) {
            events_.push(Event{inbox_[rank].front().first, seq_++,
                               EventKind::SolverRun, rank, Message{}});
        }
    }
}

UgResult SimEngine::run(const cip::SubproblemDesc& root) {
    const int n = cfg_.numSolvers;
    faulty_.reset();
    if (cfg_.faults.active())
        faulty_ = std::make_unique<FaultyComm>(*this, cfg_.faults);
    ParaComm& comm = faulty_ ? static_cast<ParaComm&>(*faulty_)
                             : static_cast<ParaComm&>(*this);
    lc_ = std::make_unique<LoadCoordinator>(comm, cfg_);
    solvers_.clear();
    solvers_.resize(n + 1);
    inbox_.assign(n + 1, {});
    vclock_.assign(n + 1, 0.0);
    busy_.assign(n + 1, 0.0);
    lcTime_ = 0.0;
    running_ = true;
    for (int r = 1; r <= n; ++r)
        solvers_[r] = std::make_unique<ParaSolver>(r, comm, factory_, cfg_);

    lc_->start(root);
    flushOutbox(0.0);
    if (cfg_.timeLimit < 1e17)
        events_.push(
            Event{cfg_.timeLimit, seq_++, EventKind::Timer, 0, Message{}});
    if (cfg_.rampUp == RampUp::Racing)
        events_.push(Event{cfg_.racingTimeLimit, seq_++, EventKind::Timer, 0,
                           Message{}});
    if (cfg_.checkpointInterval > 0)
        events_.push(Event{cfg_.checkpointInterval, seq_++, EventKind::Timer,
                           0, Message{}, TimerKind::Checkpoint});
    // The failure detector needs the flow of virtual time even when no
    // messages flow (e.g. the only busy rank just crashed): poll at half the
    // tightest configured timeout so a death/stall is declared within 1.5x
    // the configured window. Stall detection polls through the same timer.
    double detectTimeout = cfg_.heartbeatTimeout;
    if (cfg_.stallTimeout > 0)
        detectTimeout = detectTimeout > 0
                            ? std::min(detectTimeout, cfg_.stallTimeout)
                            : cfg_.stallTimeout;
    const double hbPeriod = detectTimeout / 2.0;
    if (detectTimeout > 0)
        events_.push(Event{hbPeriod, seq_++, EventKind::Timer, 0, Message{},
                           TimerKind::Heartbeat});

    while (!events_.empty() && !lc_->done()) {
        Event ev = events_.top();
        events_.pop();
        if (ev.kind == EventKind::Timer) {
            lcTime_ = std::max(lcTime_, ev.time);
            lc_->onTimer(ev.time);
            flushOutbox(lcTime_);
            if (!lc_->done()) {
                // Recurring coordinator timers re-arm by kind (one-shot
                // racing/time-limit events must not re-arm anything).
                if (ev.timer == TimerKind::Checkpoint)
                    events_.push(Event{ev.time + cfg_.checkpointInterval,
                                       seq_++, EventKind::Timer, 0, Message{},
                                       TimerKind::Checkpoint});
                else if (ev.timer == TimerKind::Heartbeat)
                    events_.push(Event{ev.time + hbPeriod, seq_++,
                                       EventKind::Timer, 0, Message{},
                                       TimerKind::Heartbeat});
            }
            continue;
        }
        if (ev.kind == EventKind::MsgArrival) {
            if (ev.rank == 0) {
                lcTime_ = std::max(lcTime_, ev.time);
                lc_->handleMessage(ev.msg);
                flushOutbox(lcTime_);
                lc_->onTimer(lcTime_);
                flushOutbox(lcTime_);
            } else {
                inbox_[ev.rank].emplace(ev.time, std::move(ev.msg));
                attend(ev.rank, ev.time);
            }
            continue;
        }
        // SolverRun
        attend(ev.rank, ev.time);
    }

    running_ = false;
    const double endTime = lcTime_;
    UgResult res = lc_->result(endTime);
    // Idle ratio over the makespan: fraction of solver-seconds not spent in
    // base-solver work.
    double busySum = 0.0;
    for (int r = 1; r <= n; ++r) busySum += busy_[r];
    const double total = endTime * n;
    res.stats.idleRatio = total > 0 ? std::max(0.0, 1.0 - busySum / total) : 0.0;
    if (faulty_) {
        const FaultyComm::Counters c = faulty_->counters();
        res.stats.msgsDropped = c.dropped;
        res.stats.msgsDelayed = c.delayed;
        res.stats.msgsDuplicated = c.duplicated;
        res.stats.msgsReordered = c.reordered;
        res.stats.msgsSwallowedDead = c.swallowedDead;
        res.stats.msgsCorrupted = c.corrupted;
    }
    // Drain leftover events for reuse safety.
    while (!events_.empty()) events_.pop();
    outbox_.clear();
    return res;
}

}  // namespace ug
