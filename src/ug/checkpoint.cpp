#include "ug/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ug {

namespace {

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

const std::array<std::uint32_t, 256>& crcTable() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

std::uint32_t crc32(const unsigned char* p, std::size_t n) {
    const auto& t = crcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Flat byte buffer I/O. The reader is bounds-checked on every primitive so a
// truncated or bit-flipped payload fails parsing instead of reading garbage.

class Writer {
public:
    void raw(const void* p, std::size_t n) {
        const auto* b = static_cast<const unsigned char*>(p);
        buf_.insert(buf_.end(), b, b + n);
    }
    void u8(std::uint8_t v) { raw(&v, 1); }
    void u32(std::uint32_t v) { raw(&v, 4); }
    void u64(std::uint64_t v) { raw(&v, 8); }
    void i32(std::int32_t v) { raw(&v, 4); }
    void i64(std::int64_t v) { raw(&v, 8); }
    void f64(double v) { raw(&v, 8); }
    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    std::vector<unsigned char>& bytes() { return buf_; }

private:
    std::vector<unsigned char> buf_;
};

class Reader {
public:
    Reader(const unsigned char* p, std::size_t n) : p_(p), n_(n) {}

    bool raw(void* out, std::size_t n) {
        if (pos_ + n > n_) return false;
        std::memcpy(out, p_ + pos_, n);
        pos_ += n;
        return true;
    }
    bool u8(std::uint8_t& v) { return raw(&v, 1); }
    bool u32(std::uint32_t& v) { return raw(&v, 4); }
    bool u64(std::uint64_t& v) { return raw(&v, 8); }
    bool i32(std::int32_t& v) { return raw(&v, 4); }
    bool i64(std::int64_t& v) { return raw(&v, 8); }
    bool f64(double& v) { return raw(&v, 8); }
    bool str(std::string& s) {
        std::uint32_t n = 0;
        if (!u32(n) || pos_ + n > n_) return false;
        s.assign(reinterpret_cast<const char*>(p_ + pos_), n);
        pos_ += n;
        return true;
    }
    bool skip(std::size_t n) {
        if (pos_ + n > n_) return false;
        pos_ += n;
        return true;
    }

    std::size_t remaining() const { return n_ - pos_; }
    bool done() const { return pos_ == n_; }

private:
    const unsigned char* p_;
    std::size_t n_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// UgStats <-> bytes. One visitor defines the field order for both directions,
// so writer and reader cannot drift apart; the serialized field count guards
// against loading a checkpoint written by a different stats layout.

template <class F>
void forEachStatField(UgStats& s, F&& f) {
    f(s.transferredNodes);
    f(s.collectedNodes);
    f(s.totalNodesProcessed);
    f(s.solutionsFound);
    f(s.maxActiveSolvers);
    f(s.firstMaxActiveTime);
    f(s.rampUpTime);
    f(s.racingWinnerSetting);
    f(s.busyUnits);
    f(s.lpIterations);
    f(s.lpFactorizations);
    f(s.basisWarmStarts);
    f(s.strongBranchProbes);
    f(s.sepaFlowSolves);
    f(s.sepaCuts);
    f(s.lpHyperSolves);
    f(s.lpDenseSolves);
    f(s.lpSolveNnzSum);
    f(s.cutPoolDupRejected);
    f(s.cutPoolDominatedRejected);
    f(s.cutPoolDominatedEvicted);
    f(s.maxCutPoolSize);
    f(s.shareCutsReported);
    f(s.shareCutsPooled);
    f(s.shareCutsSent);
    f(s.shareCutsReceived);
    f(s.shareCutsAdmitted);
    f(s.shareCutsInvalid);
    f(s.shareCutsDecodeFailures);
    f(s.shareCutsQuarantined);
    f(s.redcostCalls);
    f(s.redcostTightenings);
    f(s.redcostFixings);
    f(s.redpropRuns);
    f(s.redpropArcsFixed);
    f(s.redpropDaWarmStarts);
    f(s.redpropLbSkips);
    f(s.redpropDaCutsFed);
    f(s.idleRatio);
    f(s.openNodesAtEnd);
    f(s.initialOpenNodes);
    f(s.requeuedNodes);
    f(s.deadSolvers);
    f(s.stallInterrupts);
    f(s.ignoredMessages);
    f(s.msgsDropped);
    f(s.msgsDelayed);
    f(s.msgsDuplicated);
    f(s.msgsReordered);
    f(s.msgsSwallowedDead);
    f(s.msgsCorrupted);
    f(s.checkpointSaves);
    f(s.checkpointTornWrites);
    f(s.checkpointLoadFailures);
    f(s.checkpointRestarts);
}

std::uint32_t countStatFields() {
    UgStats s;
    std::uint32_t n = 0;
    forEachStatField(s, [&](auto&) { ++n; });
    return n;
}

struct StatWriter {
    Writer& w;
    void operator()(long long& v) { w.i64(static_cast<std::int64_t>(v)); }
    void operator()(int& v) { w.i64(v); }
    void operator()(double& v) { w.f64(v); }
};

struct StatReader {
    Reader& r;
    bool ok = true;
    void operator()(long long& v) {
        std::int64_t x = 0;
        ok = ok && r.i64(x);
        v = static_cast<long long>(x);
    }
    void operator()(int& v) {
        std::int64_t x = 0;
        ok = ok && r.i64(x);
        v = static_cast<int>(x);
    }
    void operator()(double& v) { ok = ok && r.f64(v); }
};

// ---------------------------------------------------------------------------
// Section payloads. Writer/parser pairs; every parser must consume its
// payload exactly (the section loop verifies that).

constexpr std::uint32_t kMagic = 0x50434755u;  // "UGCP"
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kSecPhase = 1;
constexpr std::uint32_t kSecNodes = 2;
constexpr std::uint32_t kSecIncumbent = 3;
constexpr std::uint32_t kSecCuts = 4;
constexpr std::uint32_t kSecStats = 5;
constexpr std::size_t kHeaderBytes = 24;  // magic,version,gen,count,crc

void writePhase(Writer& w, const Checkpoint& cp) {
    w.f64(cp.dualBound);
    w.u8(cp.racingDone ? 1 : 0);
    w.u8(cp.hasStats ? 1 : 0);
}

bool parsePhase(Reader& r, Checkpoint& cp) {
    std::uint8_t racing = 0, hasStats = 0;
    if (!r.f64(cp.dualBound) || !r.u8(racing) || !r.u8(hasStats)) return false;
    if (racing > 1 || hasStats > 1) return false;
    cp.racingDone = racing != 0;
    cp.hasStats = hasStats != 0;
    return true;
}

void writeNodes(Writer& w, const Checkpoint& cp) {
    w.u64(cp.nodes.size());
    for (const cip::SubproblemDesc& d : cp.nodes) {
        w.f64(d.lowerBound);
        w.i32(d.retryLevel);
        w.u32(static_cast<std::uint32_t>(d.boundChanges.size()));
        for (const cip::BoundChange& bc : d.boundChanges) {
            w.i32(bc.var);
            w.f64(bc.lb);
            w.f64(bc.ub);
        }
        w.u32(static_cast<std::uint32_t>(d.customBranches.size()));
        for (const cip::CustomBranch& cb : d.customBranches) {
            w.str(cb.plugin);
            w.u64(cb.data.size());
            for (std::int64_t v : cb.data) w.i64(v);
        }
    }
}

bool parseNodes(Reader& r, Checkpoint& cp) {
    std::uint64_t n = 0;
    if (!r.u64(n)) return false;
    // Cheap sanity bound before resize: every node costs >= 20 payload bytes,
    // so a bit-flipped count cannot trigger a huge allocation.
    if (n > r.remaining() / 20 + 1) return false;
    cp.nodes.resize(static_cast<std::size_t>(n));
    for (cip::SubproblemDesc& d : cp.nodes) {
        std::uint32_t nbc = 0, ncb = 0;
        if (!r.f64(d.lowerBound) || !r.i32(d.retryLevel) || !r.u32(nbc))
            return false;
        if (nbc > r.remaining() / 20 + 1) return false;
        d.boundChanges.resize(nbc);
        for (cip::BoundChange& bc : d.boundChanges)
            if (!r.i32(bc.var) || !r.f64(bc.lb) || !r.f64(bc.ub)) return false;
        if (!r.u32(ncb) || ncb > r.remaining() / 12 + 1) return false;
        d.customBranches.resize(ncb);
        for (cip::CustomBranch& cb : d.customBranches) {
            std::uint64_t nd = 0;
            if (!r.str(cb.plugin) || !r.u64(nd) || nd > r.remaining() / 8 + 1)
                return false;
            cb.data.resize(static_cast<std::size_t>(nd));
            for (std::int64_t& v : cb.data)
                if (!r.i64(v)) return false;
        }
    }
    return true;
}

void writeIncumbent(Writer& w, const Checkpoint& cp) {
    w.u8(cp.incumbent.valid() ? 1 : 0);
    if (cp.incumbent.valid()) {
        w.f64(cp.incumbent.obj);
        w.u64(cp.incumbent.x.size());
        for (double v : cp.incumbent.x) w.f64(v);
    }
    w.i32(cp.incumbentSource);
    w.i32(cp.incumbentSetting);
}

bool parseIncumbent(Reader& r, Checkpoint& cp) {
    std::uint8_t valid = 0;
    if (!r.u8(valid) || valid > 1) return false;
    if (valid) {
        std::uint64_t n = 0;
        if (!r.f64(cp.incumbent.obj) || !r.u64(n) ||
            n > r.remaining() / 8 + 1)
            return false;
        cp.incumbent.x.resize(static_cast<std::size_t>(n));
        for (double& v : cp.incumbent.x)
            if (!r.f64(v)) return false;
        // A marked-valid incumbent with no coordinates would deserialize to
        // Solution::valid() == false and silently drop the objective —
        // reject the inconsistent frame instead.
        if (cp.incumbent.x.empty()) return false;
    }
    return r.i32(cp.incumbentSource) && r.i32(cp.incumbentSetting);
}

void writeCuts(Writer& w, const Checkpoint& cp) {
    w.i32(cp.cuts.count());
    const std::vector<std::int32_t>& wire = cp.cuts.wire();
    w.u64(wire.size());
    for (std::int32_t v : wire) w.i32(v);
}

bool parseCuts(Reader& r, Checkpoint& cp) {
    std::int32_t count = 0;
    std::uint64_t words = 0;
    if (!r.i32(count) || !r.u64(words) || words > r.remaining() / 4)
        return false;
    std::vector<std::int32_t> wire(static_cast<std::size_t>(words));
    for (std::int32_t& v : wire)
        if (!r.i32(v)) return false;
    // restoreWire re-validates the delta coding itself.
    return cp.cuts.restoreWire(count, std::move(wire));
}

void writeStats(Writer& w, const Checkpoint& cp) {
    w.u32(countStatFields());
    UgStats s = cp.stats;  // visitor takes mutable refs
    forEachStatField(s, StatWriter{w});
}

bool parseStats(Reader& r, Checkpoint& cp) {
    std::uint32_t n = 0;
    if (!r.u32(n) || n != countStatFields()) return false;
    StatReader sr{r};
    forEachStatField(cp.stats, sr);
    return sr.ok;
}

// ---------------------------------------------------------------------------
// Whole-image serialize / parse.

std::vector<unsigned char> serializeImage(const Checkpoint& cp,
                                          std::uint64_t generation) {
    Writer header;
    header.u32(kMagic);
    header.u32(kVersion);
    header.u64(generation);
    header.u32(5);  // section count
    header.u32(crc32(header.bytes().data(), header.bytes().size()));

    std::vector<unsigned char> img = std::move(header.bytes());
    const auto addSection = [&](std::uint32_t id, auto&& writeBody) {
        Writer body;
        writeBody(body);
        Writer frame;
        frame.u32(id);
        frame.u64(body.bytes().size());
        frame.u32(crc32(body.bytes().data(), body.bytes().size()));
        img.insert(img.end(), frame.bytes().begin(), frame.bytes().end());
        img.insert(img.end(), body.bytes().begin(), body.bytes().end());
    };
    addSection(kSecPhase, [&](Writer& w) { writePhase(w, cp); });
    addSection(kSecNodes, [&](Writer& w) { writeNodes(w, cp); });
    addSection(kSecIncumbent, [&](Writer& w) { writeIncumbent(w, cp); });
    addSection(kSecCuts, [&](Writer& w) { writeCuts(w, cp); });
    addSection(kSecStats, [&](Writer& w) { writeStats(w, cp); });
    return img;
}

struct ParsedImage {
    Checkpoint cp;
    std::uint64_t generation = 0;
};

std::optional<ParsedImage> parseImage(const unsigned char* data,
                                      std::size_t size, std::string* err) {
    const auto fail = [&](const char* why) -> std::optional<ParsedImage> {
        if (err) *err = why;
        return std::nullopt;
    };
    if (size < kHeaderBytes) return fail("file shorter than header");
    Reader hr(data, kHeaderBytes);
    std::uint32_t magic = 0, version = 0, sections = 0, hcrc = 0;
    std::uint64_t generation = 0;
    hr.u32(magic);
    hr.u32(version);
    hr.u64(generation);
    hr.u32(sections);
    hr.u32(hcrc);
    if (magic != kMagic) return fail("bad magic");
    if (version != kVersion) return fail("unsupported version");
    if (hcrc != crc32(data, kHeaderBytes - 4))
        return fail("header CRC mismatch");
    if (sections != 5) return fail("unexpected section count");
    if (generation == 0) return fail("zero generation");

    ParsedImage out;
    out.generation = generation;
    Reader r(data + kHeaderBytes, size - kHeaderBytes);
    // Sections are written (and required) in a fixed order.
    const std::uint32_t expect[5] = {kSecPhase, kSecNodes, kSecIncumbent,
                                     kSecCuts, kSecStats};
    for (std::uint32_t want : expect) {
        std::uint32_t id = 0, crc = 0;
        std::uint64_t len = 0;
        if (!r.u32(id) || !r.u64(len) || !r.u32(crc))
            return fail("truncated section frame");
        if (id != want) return fail("unexpected section id");
        if (len > r.remaining()) return fail("truncated section payload");
        const unsigned char* payload = data + (size - r.remaining());
        if (crc != crc32(payload, static_cast<std::size_t>(len)))
            return fail("section CRC mismatch");
        Reader body(payload, static_cast<std::size_t>(len));
        bool ok = false;
        switch (id) {
            case kSecPhase: ok = parsePhase(body, out.cp); break;
            case kSecNodes: ok = parseNodes(body, out.cp); break;
            case kSecIncumbent: ok = parseIncumbent(body, out.cp); break;
            case kSecCuts: ok = parseCuts(body, out.cp); break;
            case kSecStats: ok = parseStats(body, out.cp); break;
        }
        if (!ok) return fail("section payload malformed");
        if (!body.done()) return fail("section payload has trailing bytes");
        r.skip(static_cast<std::size_t>(len));
    }
    if (!r.done()) return fail("trailing bytes after last section");
    return out;
}

// ---------------------------------------------------------------------------
// File I/O.

std::optional<std::vector<unsigned char>> readFile(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return std::nullopt;
    std::vector<unsigned char> buf;
    unsigned char chunk[4096];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        buf.insert(buf.end(), chunk, chunk + n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok) return std::nullopt;
    return buf;
}

bool writeAtomic(const std::string& dest, const unsigned char* data,
                 std::size_t n) {
    const std::string tmp = dest + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) return false;
    bool ok = n == 0 || std::fwrite(data, 1, n, f) == n;
    ok = std::fflush(f) == 0 && ok;
#ifdef __unix__
    if (ok) ok = ::fsync(fileno(f)) == 0;
#endif
    ok = std::fclose(f) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), dest.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
#ifdef __unix__
    // Persist the rename itself: fsync the containing directory.
    std::string dir = dest;
    const std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos
              ? "."
              : dir.substr(0, std::max<std::size_t>(slash, 1));
    const int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
#endif
    return true;
}

/// Fully validate a slot; its generation on success, 0 otherwise.
std::uint64_t slotGeneration(const std::string& slot) {
    const auto bytes = readFile(slot);
    if (!bytes) return 0;
    const auto img = parseImage(bytes->data(), bytes->size(), nullptr);
    return img ? img->generation : 0;
}

}  // namespace

std::string checkpointSlotA(const std::string& path) { return path + ".a"; }
std::string checkpointSlotB(const std::string& path) { return path + ".b"; }

void removeCheckpointFiles(const std::string& path) {
    for (const std::string& p :
         {checkpointSlotA(path), checkpointSlotB(path)}) {
        std::remove(p.c_str());
        std::remove((p + ".tmp").c_str());
    }
    std::remove(path.c_str());  // pre-A/B single-file layout leftovers
}

bool saveCheckpoint(const std::string& path, const Checkpoint& cp,
                    TornWriter* torn) {
    const std::string slotA = checkpointSlotA(path);
    const std::string slotB = checkpointSlotB(path);
    const std::uint64_t genA = slotGeneration(slotA);
    const std::uint64_t genB = slotGeneration(slotB);
    // Overwrite the invalid slot if there is one, else the older generation;
    // either way the newest good generation survives this write even if it
    // tears.
    const std::string& target =
        genA == 0 ? slotA : (genB == 0 || genB < genA) ? slotB : slotA;
    const std::uint64_t newGen = std::max(genA, genB) + 1;

    std::vector<unsigned char> img = serializeImage(cp, newGen);
    const std::size_t keep = torn ? torn->truncateAt(img.size()) : img.size();
    return writeAtomic(target, img.data(), keep);
}

std::optional<Checkpoint> loadCheckpoint(const std::string& path,
                                         CheckpointLoadReport* report) {
    CheckpointLoadReport rep;
    std::optional<ParsedImage> best;
    for (const std::string& slot :
         {checkpointSlotA(path), checkpointSlotB(path)}) {
        const auto bytes = readFile(slot);
        if (!bytes) continue;
        ++rep.slotsPresent;
        std::string err;
        auto img = parseImage(bytes->data(), bytes->size(), &err);
        if (!img) {
            ++rep.slotsCorrupt;
            if (rep.error.empty()) rep.error = slot + ": " + err;
            continue;
        }
        if (!best || img->generation > best->generation) best = std::move(img);
    }
    if (best) {
        rep.generation = best->generation;
        if (report) *report = std::move(rep);
        return std::move(best->cp);
    }
    if (rep.slotsPresent == 0 && rep.error.empty())
        rep.error = "no checkpoint slot file exists";
    if (report) *report = std::move(rep);
    return std::nullopt;
}

}  // namespace ug
