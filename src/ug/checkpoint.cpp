#include "ug/checkpoint.hpp"

#include <fstream>
#include <iomanip>

namespace ug {

bool saveCheckpoint(const std::string& path, const Checkpoint& cp) {
    std::ofstream out(path);
    if (!out) return false;
    out << std::setprecision(17);
    out << "ugcheckpoint 1\n";
    out << "dualbound " << cp.dualBound << "\n";
    if (cp.incumbent.valid()) {
        out << "incumbent " << cp.incumbent.obj << " "
            << cp.incumbent.x.size();
        for (double v : cp.incumbent.x) out << " " << v;
        out << "\n";
    } else {
        out << "noincumbent\n";
    }
    out << "nodes " << cp.nodes.size() << "\n";
    for (const auto& d : cp.nodes) {
        out << "node " << d.lowerBound << " " << d.boundChanges.size() << " "
            << d.customBranches.size() << "\n";
        for (const auto& bc : d.boundChanges)
            out << "bc " << bc.var << " " << bc.lb << " " << bc.ub << "\n";
        for (const auto& cb : d.customBranches) {
            out << "cb " << cb.plugin << " " << cb.data.size();
            for (auto v : cb.data) out << " " << v;
            out << "\n";
        }
    }
    return static_cast<bool>(out);
}

std::optional<Checkpoint> loadCheckpoint(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::string word;
    int version = 0;
    if (!(in >> word >> version) || word != "ugcheckpoint" || version != 1)
        return std::nullopt;
    Checkpoint cp;
    if (!(in >> word >> cp.dualBound) || word != "dualbound")
        return std::nullopt;
    if (!(in >> word)) return std::nullopt;
    if (word == "incumbent") {
        std::size_t n = 0;
        if (!(in >> cp.incumbent.obj >> n)) return std::nullopt;
        cp.incumbent.x.resize(n);
        for (double& v : cp.incumbent.x)
            if (!(in >> v)) return std::nullopt;
    } else if (word != "noincumbent") {
        return std::nullopt;
    }
    std::size_t numNodes = 0;
    if (!(in >> word >> numNodes) || word != "nodes") return std::nullopt;
    cp.nodes.resize(numNodes);
    for (auto& d : cp.nodes) {
        std::size_t nbc = 0, ncb = 0;
        if (!(in >> word >> d.lowerBound >> nbc >> ncb) || word != "node")
            return std::nullopt;
        d.boundChanges.resize(nbc);
        for (auto& bc : d.boundChanges)
            if (!(in >> word >> bc.var >> bc.lb >> bc.ub) || word != "bc")
                return std::nullopt;
        d.customBranches.resize(ncb);
        for (auto& cb : d.customBranches) {
            std::size_t nd = 0;
            if (!(in >> word >> cb.plugin >> nd) || word != "cb")
                return std::nullopt;
            cb.data.resize(nd);
            for (auto& v : cb.data)
                if (!(in >> v)) return std::nullopt;
        }
    }
    return cp;
}

}  // namespace ug
