// Message-passing abstraction between the LoadCoordinator (rank 0) and the
// ParaSolvers (ranks 1..N).
//
// Two implementations exist, mirroring the paper's parallelization
// libraries: ThreadComm (std::thread mailboxes — the "C++11" instantiation)
// and the discrete-event SimComm inside SimEngine (substituting for MPI on
// clusters; see DESIGN.md). The LoadCoordinator/ParaSolver logic is written
// against this interface only, which is exactly UG's portability claim.
#pragma once

#include <utility>

#include "ug/message.hpp"

namespace ug {

class ParaComm {
public:
    virtual ~ParaComm() = default;

    /// Total rank count, including the LoadCoordinator at rank 0.
    virtual int size() const = 0;

    /// Enqueue a message from `src` to `dest`. Never blocks.
    virtual void send(int src, int dest, Message msg) = 0;

    /// Enqueue a message that becomes visible to `dest` only after an extra
    /// `delaySeconds` of engine time (on top of the engine's base latency).
    /// Used by the fault-injection layer to model slow or reordered links;
    /// the default ignores the delay, which is always correct (delivery is
    /// merely earlier than requested).
    virtual void sendDelayed(int src, int dest, Message msg,
                             double delaySeconds) {
        (void)delaySeconds;
        send(src, dest, std::move(msg));
    }

    /// Engine time as observed by `rank` (wall seconds for ThreadComm,
    /// virtual seconds for SimComm).
    virtual double now(int rank) const = 0;
};

}  // namespace ug
