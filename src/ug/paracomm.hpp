// Message-passing abstraction between the LoadCoordinator (rank 0) and the
// ParaSolvers (ranks 1..N).
//
// Two implementations exist, mirroring the paper's parallelization
// libraries: ThreadComm (std::thread mailboxes — the "C++11" instantiation)
// and the discrete-event SimComm inside SimEngine (substituting for MPI on
// clusters; see DESIGN.md). The LoadCoordinator/ParaSolver logic is written
// against this interface only, which is exactly UG's portability claim.
#pragma once

#include "ug/message.hpp"

namespace ug {

class ParaComm {
public:
    virtual ~ParaComm() = default;

    /// Total rank count, including the LoadCoordinator at rank 0.
    virtual int size() const = 0;

    /// Enqueue a message from `src` to `dest`. Never blocks.
    virtual void send(int src, int dest, Message msg) = 0;

    /// Engine time as observed by `rank` (wall seconds for ThreadComm,
    /// virtual seconds for SimComm).
    virtual double now(int rank) const = 0;
};

}  // namespace ug
