// FaultyComm: a fault-injecting decorator over any ParaComm.
//
// Sits between the LoadCoordinator/ParaSolvers and the real engine comm and
// perturbs traffic according to a seeded FaultPlan: drop, extra latency
// (delay), duplication, reordering (a short overtaking window implemented as
// latency, so delivery is guaranteed and no message can be held forever),
// and killing or hanging one chosen solver rank after a chosen number of
// its outbound messages. Works with both ThreadEngine (thread-safe, wall
// clock) and SimEngine (single-threaded, virtual clock — runs are exactly
// reproducible for a fixed seed).
//
// Protocol-safety exemptions (see src/ug/README.md for the invariants):
//  - Tag::Termination is always delivered verbatim: shutdown is reliable.
//  - Tag::NodeTransfer is never dropped, delayed or reordered: a transferred
//    node is the only copy of that part of the search space once its
//    sender's Terminated(completed) is processed, so losing it — or letting
//    it arrive after done-detection — would silently lose coverage. It MAY
//    be duplicated (redundant coverage is harmless) and it dies with a
//    killed rank (safe: the victim's whole assigned root is requeued).
#pragma once

#include <mutex>
#include <random>
#include <vector>

#include "ug/config.hpp"
#include "ug/paracomm.hpp"

namespace ug {

class FaultyComm : public ParaComm {
public:
    FaultyComm(ParaComm& inner, const FaultPlan& plan);

    struct Counters {
        long long delivered = 0;
        long long dropped = 0;
        long long delayed = 0;
        long long duplicated = 0;
        long long reordered = 0;
        long long swallowedDead = 0;  ///< messages from/to the killed rank
        long long corrupted = 0;      ///< payload bit-flips injected
    };

    // ParaComm
    int size() const override { return inner_.size(); }
    void send(int src, int dest, Message msg) override;
    void sendDelayed(int src, int dest, Message msg,
                     double delaySeconds) override;
    double now(int rank) const override { return inner_.now(rank); }

    /// True once `rank` has crashed (kill plan tripped, not hang mode).
    /// Engines stop executing a crashed rank; a *hung* rank keeps computing
    /// and receiving, only its outbound traffic is swallowed.
    bool killed(int rank) const;

    /// True once `rank` is silenced (crashed or hung).
    bool silenced(int rank) const;

    Counters counters() const;

private:
    ParaComm& inner_;
    const FaultPlan plan_;

    mutable std::mutex mu_;
    std::mt19937 rng_;
    long long victimSends_ = 0;  ///< outbound messages seen from killRank
    bool tripped_ = false;       ///< kill/hang threshold reached
    Counters c_;
};

}  // namespace ug
