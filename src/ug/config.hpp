// Run configuration and aggregate statistics of a UG run.
#pragma once

#include <string>
#include <vector>

#include "cip/model.hpp"
#include "cip/params.hpp"

namespace ug {

enum class RampUp { Normal, Racing };

/// Fault-injection plan executed by FaultyComm (see faultycomm.hpp). All
/// randomness comes from `seed`, so a given plan replays identically on the
/// deterministic SimEngine. Message drops model lost traffic from a failing
/// process; kill/hang model the process failure itself. Tag::Termination is
/// always delivered (shutdown is assumed reliable) and Tag::NodeTransfer is
/// never dropped or delayed (losing or reordering a transferred node past
/// its sender's Terminated report would silently lose coverage; a *killed*
/// rank's in-flight transfers are safe because its whole root is requeued).
struct FaultPlan {
    unsigned seed = 20190814u;  ///< RNG seed (reproducibility)

    double dropProb = 0.0;       ///< per-message drop probability
    double delayProb = 0.0;      ///< per-message extra-latency probability
    double delaySeconds = 0.01;  ///< extra latency applied to delayed messages
    double duplicateProb = 0.0;  ///< per-message duplication probability
    double reorderProb = 0.0;    ///< probability of an overtaking-window hold
    double reorderWindow = 0.005;///< latency that lets later messages overtake

    /// Per-message payload bit-flip probability: one random bit of the
    /// message's shared-cut blob is flipped in transit (only messages
    /// carrying a cut bundle are eligible — the cuts channel is the one
    /// defended by checksums/certification, and corrupting node or solution
    /// payloads would violate the optimum invariant every fault test pins).
    double corruptProb = 0.0;

    /// Per-checkpoint-save torn-write probability: the image is truncated at
    /// a random byte offset before it replaces its slot (see TornWriter in
    /// checkpoint.hpp). Exercises the A/B fallback path.
    double tornWriteProb = 0.0;

    int killRank = -1;             ///< solver rank to fail (-1: none)
    long long killAfterSends = 0;  ///< outbound messages before the failure
    bool hang = false;  ///< hang (keeps computing/receiving, stops sending)
                        ///< instead of crash (all traffic stops)

    /// Whether any fault is configured (engines wrap their comm iff so).
    /// tornWriteProb is excluded: it is consumed by the LoadCoordinator's
    /// checkpoint writer, not the message layer.
    bool active() const {
        return dropProb > 0 || delayProb > 0 || duplicateProb > 0 ||
               reorderProb > 0 || corruptProb > 0 || killRank >= 0;
    }
};

struct UgConfig {
    int numSolvers = 4;
    RampUp rampUp = RampUp::Normal;

    /// Racing ramp-up settings table; solver i gets settings[i % size].
    /// The MISDP glue fills this with alternating SDP/LP settings (paper
    /// section 3.2); empty means "derive a generic diverse table".
    std::vector<cip::ParamSet> racingSettings;
    double racingTimeLimit = 5.0;    ///< engine seconds before winner pick
    int racingOpenNodesLimit = 50;   ///< ...or when the best racer has this many

    /// Parameters applied to every base solver (instance defaults).
    cip::ParamSet baseParams;

    /// Optional warm-start incumbent (e.g. the best known solution of an
    /// open instance, as in the paper's hc10p runs): used for presolving,
    /// propagation and heuristics from the very first node.
    cip::Solution initialSolution;

    int statusIntervalSteps = 1;   ///< worker status report frequency (steps)
    int poolTargetPerSolver = 1;   ///< desired pool size per (possibly idle) solver

    /// Collect-mode ramp-down: a solver sitting on exactly one open node may
    /// be engaged as a supplier (and told it may ship that last node) when
    /// idle solvers exist and its effort-weighted frontier — open nodes
    /// times average simplex iterations per node — is at least this heavy.
    /// Below the threshold single-node solvers are left alone, as shipping
    /// a cheap last node just moves the work without parallelizing it.
    double collectHeavySingleWeight = 256.0;

    // SimEngine knobs (ignored by ThreadEngine).
    double costUnitSeconds = 1e-4;  ///< virtual seconds per base-solver work unit
    double msgLatency = 1e-3;       ///< virtual message latency (seconds)

    /// Periodic coordinator status lines (engine seconds; 0 = quiet), in the
    /// style of UG's solving-status output.
    double logInterval = 0.0;

    double timeLimit = 1e18;        ///< engine seconds; triggers checkpoint+stop
    std::string checkpointFile;     ///< path for checkpoint save (empty: off)
    double checkpointInterval = 0;  ///< engine seconds between saves (0: only on stop)
    bool restartFromCheckpoint = false;

    /// Liveness: a solver that is marked active but has sent nothing (its
    /// liveness piggybacks on Tag::Status) for this many engine seconds is
    /// declared dead — its assigned root is requeued into the pool and the
    /// rank is excluded from all future scheduling decisions. 0 disables
    /// failure detection (the seed behaviour). Must comfortably exceed the
    /// worst-case base-solver step time plus message latency, or slow-but-
    /// alive solvers get declared dead (correct but wasteful).
    double heartbeatTimeout = 0.0;

    /// Stall detection: an active rank that keeps sending Status reports but
    /// whose monotone work counter (Message::workDone — LP iterations plus
    /// nodes processed) has not advanced for this many engine seconds is
    /// *stalled* (as opposed to *dead* = silent): it gets a soft Interrupt,
    /// its root is requeued with a bumped retry level, and the redispatch
    /// attaches `stallFallbackParams` so the retry runs a different
    /// configuration. A rank that stays active for another stallTimeout
    /// after the Interrupt (the Interrupt or its Terminated reply was lost)
    /// escalates to dead. 0 disables stall detection.
    double stallTimeout = 0.0;

    /// Parameter overrides attached when redispatching a stalled root
    /// (retryLevel > 0). Empty means "use the built-in fallback profile"
    /// (lp/pricing=devex, stp/redprop/incremental=false).
    cip::ParamSet stallFallbackParams;

    /// Cut-sharing quarantine: after this many *consecutive* corrupt (decode-
    /// failing) bundles involving one rank, sharing with that rank is
    /// suspended for `shareQuarantineBackoff * 2^level` engine seconds, with
    /// the level growing on every repeat offense (exponential backoff).
    int shareQuarantineStreak = 3;
    double shareQuarantineBackoff = 0.25;

    /// Fault injection (off by default); see FaultPlan. dropProb > 0 needs
    /// heartbeatTimeout > 0 for guaranteed termination, since a dropped
    /// assignment or Terminated report is only recovered via the failure
    /// detector.
    FaultPlan faults;
};

struct UgStats {
    long long transferredNodes = 0;   ///< subproblems assigned to ParaSolvers
    long long collectedNodes = 0;     ///< open nodes pulled back (collect mode)
    long long totalNodesProcessed = 0;///< B&B nodes generated across all solvers
    long long solutionsFound = 0;
    int maxActiveSolvers = 0;
    double firstMaxActiveTime = 0.0;  ///< engine time the max was first reached
    double rampUpTime = -1.0;         ///< first time all solvers were active
    int racingWinnerSetting = -1;
    long long busyUnits = 0;          ///< total busy work units across solvers

    // LP effort aggregated over all solvers' Terminated reports (plus the
    // last Status of ranks the failure detector wrote off).
    long long lpIterations = 0;       ///< simplex iterations
    long long lpFactorizations = 0;   ///< basis (re)factorizations
    long long basisWarmStarts = 0;    ///< node LPs hot-started from parent
    long long strongBranchProbes = 0; ///< strong-branching LP probes
    long long sepaFlowSolves = 0;     ///< separation oracle (max-flow) calls
    long long sepaCuts = 0;           ///< violated cuts found by separators
    long long lpHyperSolves = 0;      ///< basis solves via reach kernels
    long long lpDenseSolves = 0;      ///< basis solves via dense loops
    long long lpSolveNnzSum = 0;      ///< summed solve-result support
    long long cutPoolDupRejected = 0;       ///< exact re-finds rejected
    long long cutPoolDominatedRejected = 0; ///< dominated incoming cuts rejected
    long long cutPoolDominatedEvicted = 0;  ///< pooled cuts evicted by subsets
    long long maxCutPoolSize = 0;     ///< largest reported dominance pool

    // Cross-solver cut sharing. LC-side global pool flow (reported supports
    // in, admitted after dominance merge, attached to assignments out) plus
    // the receiver-side certification outcomes folded from worker reports.
    long long shareCutsReported = 0;  ///< supports piggybacked to the LC
    long long shareCutsPooled = 0;    ///< admitted into the LC global pool
    long long shareCutsSent = 0;      ///< supports attached to assignments
    long long shareCutsReceived = 0;  ///< supports delivered to base solvers
    long long shareCutsAdmitted = 0;  ///< certified + violated, entered an LP
    long long shareCutsInvalid = 0;   ///< failed receiver certification
    long long shareCutsDecodeFailures = 0;  ///< corrupt bundles (either side)
    long long shareCutsQuarantined = 0;     ///< supports dropped while a
                                            ///< rank's sharing was suspended

    // Tree-level variable fixing aggregated across solvers: built-in LP
    // reduced-cost fixing and graph-reduction propagation (ReduceEngine).
    long long redcostCalls = 0;        ///< reduced-cost fixing passes run
    long long redcostTightenings = 0;  ///< bounds tightened by those passes
    long long redcostFixings = 0;      ///< domains closed to a point
    long long redpropRuns = 0;         ///< reduction-engine passes executed
    long long redpropArcsFixed = 0;    ///< variables fixed by reductions
    long long redpropDaWarmStarts = 0; ///< dual ascents warm-started
    long long redpropLbSkips = 0;      ///< cached dual bounds reused
    long long redpropDaCutsFed = 0;    ///< dual-ascent cuts fed to separation
    double idleRatio = 0.0;           ///< filled in by the engine at the end
    long long openNodesAtEnd = 0;     ///< pool + in-tree nodes on termination
    long long initialOpenNodes = 0;   ///< pool size after a checkpoint restart

    // Fault tolerance.
    long long requeuedNodes = 0;   ///< roots requeued after a solver failure
    int deadSolvers = 0;           ///< ranks declared dead by the heartbeat
    long long stallInterrupts = 0; ///< soft interrupts sent to stalled ranks
    long long ignoredMessages = 0; ///< stale/duplicate messages discarded

    // Fault injection (filled from FaultyComm when a plan is active).
    long long msgsDropped = 0;
    long long msgsDelayed = 0;
    long long msgsDuplicated = 0;
    long long msgsReordered = 0;
    long long msgsSwallowedDead = 0;  ///< traffic from/to a killed rank
    long long msgsCorrupted = 0;      ///< payload bit-flips injected

    // Checkpointing / recovery.
    long long checkpointSaves = 0;        ///< images written (incl. torn)
    long long checkpointTornWrites = 0;   ///< injected short writes
    long long checkpointLoadFailures = 0; ///< restart loads that failed
    long long checkpointRestarts = 0;     ///< successful checkpoint restores
};

enum class UgStatus { Optimal, Infeasible, TimeLimit, Failed };

const char* toString(UgStatus s);

struct UgResult {
    UgStatus status = UgStatus::Failed;
    cip::Solution best;
    double dualBound = -cip::kInf;
    double elapsed = 0.0;  ///< engine seconds (virtual for SimEngine)
    UgStats stats;
};

}  // namespace ug
