// Run configuration and aggregate statistics of a UG run.
#pragma once

#include <string>
#include <vector>

#include "cip/model.hpp"
#include "cip/params.hpp"

namespace ug {

enum class RampUp { Normal, Racing };

struct UgConfig {
    int numSolvers = 4;
    RampUp rampUp = RampUp::Normal;

    /// Racing ramp-up settings table; solver i gets settings[i % size].
    /// The MISDP glue fills this with alternating SDP/LP settings (paper
    /// section 3.2); empty means "derive a generic diverse table".
    std::vector<cip::ParamSet> racingSettings;
    double racingTimeLimit = 5.0;    ///< engine seconds before winner pick
    int racingOpenNodesLimit = 50;   ///< ...or when the best racer has this many

    /// Parameters applied to every base solver (instance defaults).
    cip::ParamSet baseParams;

    /// Optional warm-start incumbent (e.g. the best known solution of an
    /// open instance, as in the paper's hc10p runs): used for presolving,
    /// propagation and heuristics from the very first node.
    cip::Solution initialSolution;

    int statusIntervalSteps = 1;   ///< worker status report frequency (steps)
    int poolTargetPerSolver = 1;   ///< desired pool size per (possibly idle) solver

    // SimEngine knobs (ignored by ThreadEngine).
    double costUnitSeconds = 1e-4;  ///< virtual seconds per base-solver work unit
    double msgLatency = 1e-3;       ///< virtual message latency (seconds)

    /// Periodic coordinator status lines (engine seconds; 0 = quiet), in the
    /// style of UG's solving-status output.
    double logInterval = 0.0;

    double timeLimit = 1e18;        ///< engine seconds; triggers checkpoint+stop
    std::string checkpointFile;     ///< path for checkpoint save (empty: off)
    double checkpointInterval = 0;  ///< engine seconds between saves (0: only on stop)
    bool restartFromCheckpoint = false;
};

struct UgStats {
    long long transferredNodes = 0;   ///< subproblems assigned to ParaSolvers
    long long collectedNodes = 0;     ///< open nodes pulled back (collect mode)
    long long totalNodesProcessed = 0;///< B&B nodes generated across all solvers
    long long solutionsFound = 0;
    int maxActiveSolvers = 0;
    double firstMaxActiveTime = 0.0;  ///< engine time the max was first reached
    double rampUpTime = -1.0;         ///< first time all solvers were active
    int racingWinnerSetting = -1;
    long long busyUnits = 0;          ///< total busy work units across solvers
    double idleRatio = 0.0;           ///< filled in by the engine at the end
    long long openNodesAtEnd = 0;     ///< pool + in-tree nodes on termination
    long long initialOpenNodes = 0;   ///< pool size after a checkpoint restart
};

enum class UgStatus { Optimal, Infeasible, TimeLimit, Failed };

const char* toString(UgStatus s);

struct UgResult {
    UgStatus status = UgStatus::Failed;
    cip::Solution best;
    double dualBound = -cip::kInf;
    double elapsed = 0.0;  ///< engine seconds (virtual for SimEngine)
    UgStats stats;
};

}  // namespace ug
