// LP problem container shared by the simplex solver and the CIP framework.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// One sparse row: lhs <= sum coef_k * x_{idx_k} <= rhs.
struct Row {
    std::vector<std::pair<int, double>> coefs;
    double lhs = -kInf;
    double rhs = kInf;
    std::string name;

    Row() = default;
    Row(std::vector<std::pair<int, double>> c, double l, double r,
        std::string n = {})
        : coefs(std::move(c)), lhs(l), rhs(r), name(std::move(n)) {}

    /// Evaluate the row activity for a dense point x.
    double activity(const std::vector<double>& x) const {
        double a = 0.0;
        for (const auto& [j, v] : coefs) a += v * x[j];
        return a;
    }
};

/// One column: objective coefficient and bounds.
struct Col {
    double obj = 0.0;
    double lb = 0.0;
    double ub = kInf;
    std::string name;
};

/// A linear program: minimize c'x subject to row ranges and column bounds.
class LpModel {
public:
    int addCol(double obj, double lb, double ub, std::string name = {}) {
        cols_.push_back({obj, lb, ub, std::move(name)});
        return static_cast<int>(cols_.size()) - 1;
    }

    int addRow(Row row) {
        rows_.push_back(std::move(row));
        return static_cast<int>(rows_.size()) - 1;
    }

    int numCols() const { return static_cast<int>(cols_.size()); }
    int numRows() const { return static_cast<int>(rows_.size()); }

    const Col& col(int j) const { return cols_[j]; }
    Col& col(int j) { return cols_[j]; }
    const Row& row(int i) const { return rows_[i]; }
    Row& row(int i) { return rows_[i]; }

    const std::vector<Col>& cols() const { return cols_; }
    const std::vector<Row>& rows() const { return rows_; }

private:
    std::vector<Col> cols_;
    std::vector<Row> rows_;
};

}  // namespace lp
