// Product-form-inverse (PFI) eta file: the sparse factorization behind the
// revised simplex engine.
//
// The basis inverse is represented as a product of elementary "eta" matrices
//   B^{-1} = E_k^{-1} * ... * E_2^{-1} * E_1^{-1}
// where each E is the identity with one column replaced by a sparse eta
// vector. A refactorization emits exactly m etas (one Gaussian pivot per
// basic column); every simplex pivot appends one more. FTRAN/BTRAN apply the
// inverses column- resp. row-wise and skip etas whose pivot position carries
// an exact zero, which is where the sparsity win over an explicit dense
// B^{-1} comes from: the cost is O(sum of eta fill actually touched) instead
// of O(m^2) per solve.
//
// Storage is a single packed pool (one offset array plus flat index/value
// arrays) rather than a vector of per-eta vectors: FTRAN/BTRAN walk the pool
// strictly sequentially, and appending an eta never allocates per eta.
//
// Numerical contract: entries below kEtaDropTol are dropped when an eta is
// appended (they are products of already-rounded quantities); the simplex
// layer runs a periodic residual check against the raw constraint matrix and
// refactorizes when accumulated drift exceeds its tolerance, so dropped fill
// never survives long.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "lp/sparsevec.hpp"

namespace lp {

inline constexpr double kEtaDropTol = 1e-13;

class EtaFile {
public:
    /// Reset to an empty product for an m-row basis (B^{-1} = I).
    void clear(int m) {
        m_ = m;
        col_.clear();
        pivot_.clear();
        start_.assign(1, 0);
        idx_.clear();
        val_.clear();
    }

    int dim() const { return m_; }
    int size() const { return static_cast<int>(col_.size()); }

    /// Total stored off-diagonal fill; the simplex layer refactorizes when
    /// this outgrows a multiple of the basis dimension.
    long fill() const { return static_cast<long>(idx_.size()); }

    /// Append the eta that maps the dense column w to e_col (w[col] is the
    /// pivot element). Used both by refactorization and by simplex pivots.
    void append(int col, const std::vector<double>& w) {
        col_.push_back(col);
        pivot_.push_back(w[col]);
        for (int i = 0; i < m_; ++i) {
            if (i == col) continue;
            if (std::fabs(w[i]) > kEtaDropTol) {
                idx_.push_back(i);
                val_.push_back(w[i]);
            }
        }
        start_.push_back(idx_.size());
    }

    /// Sparse-pattern append: like append(), but only the positions listed
    /// in pattern are scanned — the caller guarantees w is exactly zero
    /// everywhere else (as produced by ftranSparse). Refactorization uses
    /// this to stay O(fill) instead of O(m) per eta.
    void append(int col, const std::vector<double>& w,
                const std::vector<int>& pattern) {
        col_.push_back(col);
        pivot_.push_back(w[col]);
        for (int i : pattern) {
            if (i == col) continue;
            if (std::fabs(w[i]) > kEtaDropTol) {
                idx_.push_back(i);
                val_.push_back(w[i]);
            }
        }
        start_.push_back(idx_.size());
    }

    /// Append a trivial eta with a single diagonal entry (slack basis).
    void appendUnit(int col, double pivot) {
        col_.push_back(col);
        pivot_.push_back(pivot);
        start_.push_back(idx_.size());
    }

    /// FTRAN: x <- B^{-1} x. Applies E_1^{-1}, E_2^{-1}, ... in creation
    /// order; an eta whose pivot position holds 0 is the identity on x.
    void ftran(std::vector<double>& x) const {
        const std::size_t k = col_.size();
        for (std::size_t e = 0; e < k; ++e) {
            double p = x[col_[e]];
            if (p == 0.0) continue;
            p /= pivot_[e];
            x[col_[e]] = p;
            for (std::size_t q = start_[e]; q < start_[e + 1]; ++q)
                x[idx_[q]] -= val_[q] * p;
        }
    }

    /// Pattern-tracking FTRAN: same as ftran(), but every position that
    /// becomes (or starts) nonzero is recorded in pattern and flagged in
    /// mark. On entry pattern/mark must already describe the nonzeros of x
    /// (mark[i] != 0 iff i may be nonzero); the caller clears both via the
    /// pattern afterwards. Keeps PFI-mode refactorization O(fill).
    void ftranSparse(std::vector<double>& x, std::vector<int>& pattern,
                     std::vector<char>& mark) const {
        const std::size_t k = col_.size();
        for (std::size_t e = 0; e < k; ++e) {
            double p = x[col_[e]];
            if (p == 0.0) continue;
            p /= pivot_[e];
            x[col_[e]] = p;
            for (std::size_t q = start_[e]; q < start_[e + 1]; ++q) {
                const int i = idx_[q];
                x[i] -= val_[q] * p;
                if (!mark[i]) {
                    mark[i] = 1;
                    pattern.push_back(i);
                }
            }
        }
    }

    /// SparseVec adapters matching LuFactor's hyper-sparse entry points so
    /// SimplexSolver can dispatch on one vector type. PFI has no reach
    /// kernel — these run the dense loops and hand back a dense-mode
    /// vector, and return false so the caller counts them as dense solves.
    bool ftranSparseVec(SparseVec& x) const {
        x.markDense();
        ftran(x.val);
        return false;
    }
    bool btranSparseVec(SparseVec& y) const {
        y.markDense();
        btran(y.val);
        return false;
    }

    /// BTRAN: y <- B^{-T} y. Applies the transposed inverses in reverse
    /// creation order; only the eta's own entries of y are read.
    void btran(std::vector<double>& y) const {
        for (std::size_t e = col_.size(); e-- > 0;) {
            double s = y[col_[e]];
            for (std::size_t q = start_[e]; q < start_[e + 1]; ++q)
                s -= val_[q] * y[idx_[q]];
            y[col_[e]] = s / pivot_[e];
        }
    }

private:
    int m_ = 0;
    std::vector<int> col_;        ///< pivot column per eta
    std::vector<double> pivot_;   ///< pivot value per eta
    std::vector<std::size_t> start_;  ///< off-diagonal range per eta (size+1)
    std::vector<int> idx_;        ///< packed off-diagonal rows
    std::vector<double> val_;     ///< packed off-diagonal values
};

}  // namespace lp
