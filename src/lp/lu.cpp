#include "lp/lu.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

namespace lp {

namespace {
/// Markowitz search examines the active columns whose count is within this
/// slack of the minimum (capped at kMaxSearchCols) — enough to find a
/// low-fill stable pivot without rescanning the whole active matrix.
constexpr int kCountSlack = 1;
constexpr int kMaxSearchCols = 16;

// Hyper-sparse fallback hysteresis: below kHyperMinDim the dense loops win
// outright; otherwise a per-direction EWMA of the result density switches to
// the dense path above kHyperEnter and back to the reach kernel only once it
// has fallen below kHyperReenter, so a workload sitting near the threshold
// does not flap between kernels every solve.
constexpr int kHyperMinDim = 32;
constexpr double kHyperEnter = 0.30;
constexpr double kHyperReenter = 0.15;
constexpr double kHyperEwmaDecay = 0.95;
}  // namespace

void LuFactor::clear(int m) {
    m_ = m;
    valid_ = false;
    updates_ = 0;
    lPiv_.clear();
    lStart_.assign(1, 0);
    lRow_.clear();
    lVal_.clear();
    Udiag_.assign(m, 0.0);
    // Keep inner-vector capacities across refactorizations: U's sparsity
    // pattern is stable between consecutive factorizations of a slowly
    // changing basis, so reusing the buffers makes steady-state
    // refactorization allocation-free.
    const int keep = std::min<int>(m, static_cast<int>(Ucol_.size()));
    Ucol_.resize(m);
    Urow_.resize(m);
    for (int i = 0; i < keep; ++i) {
        Ucol_[i].clear();
        Urow_[i].clear();
    }
    rowOfId_.assign(m, -1);
    idAtRow_.assign(m, -1);
    order_.resize(m);
    posOf_.resize(m);
    for (int i = 0; i < m; ++i) {
        order_[i] = i;
        posOf_[i] = i;
    }
    uFill_ = 0;
    spike_.assign(m, 0.0);
    spikeValid_ = false;
    // spike_ is all zeros, which the empty spikeIdx_ describes exactly.
    spikeIdx_.clear();
    spikeSparse_ = true;
    alpha_.assign(m, 0.0);
    const int keepL = std::min<int>(m, static_cast<int>(lOpsOfRow_.size()));
    lOpsOfRow_.resize(m);
    lOpsOfTarget_.resize(m);
    for (int i = 0; i < keepL; ++i) {
        lOpsOfRow_[i].clear();
        lOpsOfTarget_[i].clear();
    }
    opQueued_.clear();
    elimQueued_.assign(m, 0);
    reachMark_.assign(m, 0);
    lOpsValid_ = true;
}

void LuFactor::FactorWork::reset(int m) {
    const int keep = std::min<int>(m, static_cast<int>(col.size()));
    col.resize(m);
    rowCols.resize(m);
    urow.resize(m);
    for (int i = 0; i < keep; ++i) {
        col[i].clear();
        rowCols[i].clear();
        urow[i].clear();
    }
    rowCount.assign(m, 0);
    colCount.assign(m, 0);
    rowDone.assign(m, 0);
    colDone.assign(m, 0);
    pivRow.assign(m, -1);
    pivSlot.assign(m, -1);
    pivVal.assign(m, 0.0);
    acc.assign(m, 0.0);
    mark.assign(m, 0);
    seenSlot.assign(m, 0);
    pattern.clear();
    cand.clear();
    singles.clear();
    idOfSlot.assign(m, -1);
}

void LuFactor::loadSlack(int m, double diag) {
    clear(m);
    for (int i = 0; i < m; ++i) {
        Udiag_[i] = diag;
        rowOfId_[i] = i;
        idAtRow_[i] = i;
    }
    valid_ = true;
}

void LuFactor::eraseEntry(std::vector<UEnt>& v, int id) {
    for (auto it = v.begin(); it != v.end(); ++it) {
        if (it->id == id) {
            *it = v.back();
            v.pop_back();
            return;
        }
    }
}

void LuFactor::appendLOp(int pivotRow) {
    lPiv_.push_back(pivotRow);
    lStart_.push_back(lRow_.size());
}

void LuFactor::rebuildLOps() {
    for (auto& v : lOpsOfRow_) v.clear();
    for (auto& v : lOpsOfTarget_) v.clear();
    const std::size_t ops = lPiv_.size();
    for (std::size_t e = 0; e < ops; ++e) {
        lOpsOfRow_[lPiv_[e]].push_back(static_cast<int>(e));
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q)
            lOpsOfTarget_[lRow_[q]].push_back(static_cast<int>(e));
    }
    lOpsValid_ = true;
}

bool LuFactor::factorize(const std::vector<int>& basic,
                         const std::vector<int>& cscPtr,
                         const std::vector<int>& cscRow,
                         const std::vector<double>& cscVal,
                         std::vector<int>& rowOfSlot) {
    const int m = static_cast<int>(basic.size());
    clear(m);
    rowOfSlot.assign(m, -1);

    // Active-matrix working copy, column-wise, plus a row -> columns map.
    // rowCols may hold stale slots (entries dropped below kLuDropTol keep
    // their rowCols record); consumers re-verify by scanning the column.
    work_.reset(m);
    auto& col = work_.col;
    auto& rowCols = work_.rowCols;
    auto& rowCount = work_.rowCount;
    auto& colCount = work_.colCount;
    auto& rowDone = work_.rowDone;
    auto& colDone = work_.colDone;
    // Singleton-column stack: a column with exactly one active entry is a
    // zero-fill pivot with a trivially satisfied stability test. Basis
    // matrices here are near-triangular (slacks + sparse cut columns), so
    // popping singletons resolves most steps in O(1) and the Markowitz scan
    // below only runs on the irreducible core. Entries are lazily
    // validated on pop (a slot may have been pivoted or refilled since).
    auto& singles = work_.singles;
    for (int s = 0; s < m; ++s) {
        const int j = basic[s];
        for (int p = cscPtr[j]; p < cscPtr[j + 1]; ++p) {
            const int r = cscRow[p];
            col[s].push_back({r, cscVal[p]});
            rowCols[r].push_back(s);
            ++rowCount[r];
        }
        colCount[s] = static_cast<int>(col[s].size());
        if (colCount[s] == 1) singles.push_back(s);
    }

    // Per-pivot recordings (translated into final storage on success).
    auto& urow = work_.urow;  // (slot, val)
    auto& pivRow = work_.pivRow;
    auto& pivSlot = work_.pivSlot;
    auto& pivVal = work_.pivVal;

    auto& acc = work_.acc;
    auto& mark = work_.mark;
    auto& pattern = work_.pattern;
    auto& seenSlot = work_.seenSlot;
    auto& cand = work_.cand;

    bool ok = true;
    int t = 0;
    for (; t < m; ++t) {
        // --- pivot selection ------------------------------------------
        int bestSlot = -1, bestRow = -1;
        double bestVal = 0.0;
        // Fast path: pop a singleton column (zero Markowitz cost).
        while (!singles.empty()) {
            const int s = singles.back();
            singles.pop_back();
            if (colDone[s] || colCount[s] != 1) continue;
            const auto& e = col[s].front();
            if (std::fabs(e.second) <= kLuPivotTol) continue;
            bestSlot = s;
            bestRow = e.first;
            bestVal = e.second;
            break;
        }
        if (bestSlot < 0) {
            // Markowitz scan on the irreducible core: sparsest columns
            // first, full scan only if no stable pivot was found among
            // them.
            int minCount = std::numeric_limits<int>::max();
            for (int s = 0; s < m; ++s) {
                if (!colDone[s] && colCount[s] > 0 && colCount[s] < minCount)
                    minCount = colCount[s];
            }
            if (minCount == std::numeric_limits<int>::max()) {
                ok = false;  // every remaining column is (numerically) empty
                break;
            }
            long bestCost = std::numeric_limits<long>::max();
            for (int round = 0; round < 2 && bestSlot < 0; ++round) {
                cand.clear();
                for (int s = 0; s < m; ++s) {
                    if (colDone[s] || colCount[s] == 0) continue;
                    if (round == 0) {
                        if (colCount[s] <= minCount + kCountSlack) {
                            cand.push_back(s);
                            if (static_cast<int>(cand.size()) >=
                                kMaxSearchCols)
                                break;
                        }
                    } else {
                        cand.push_back(s);
                    }
                }
                for (int s : cand) {
                    double colmax = 0.0;
                    for (const auto& e : col[s])
                        colmax = std::max(colmax, std::fabs(e.second));
                    if (colmax <= kLuPivotTol) continue;
                    const double cutoff = kLuMarkowitzTau * colmax;
                    for (const auto& e : col[s]) {
                        const double a = std::fabs(e.second);
                        if (a < cutoff || a <= kLuPivotTol) continue;
                        const long cost =
                            static_cast<long>(rowCount[e.first] - 1) *
                            static_cast<long>(colCount[s] - 1);
                        if (cost < bestCost ||
                            (cost == bestCost && a > std::fabs(bestVal))) {
                            bestCost = cost;
                            bestSlot = s;
                            bestRow = e.first;
                            bestVal = e.second;
                        }
                    }
                }
            }
        }
        if (bestSlot < 0) {
            ok = false;
            break;
        }

        const int r = bestRow, s = bestSlot;
        const double d = bestVal;
        pivRow[t] = r;
        pivSlot[t] = s;
        pivVal[t] = d;
        rowOfSlot[s] = r;
        rowDone[r] = 1;
        colDone[s] = 1;

        // U row t: remaining entries of pivot row r across active columns.
        for (int c2 : rowCols[r]) {
            if (colDone[c2] || seenSlot[c2]) continue;
            seenSlot[c2] = 1;
            for (const auto& e : col[c2]) {
                if (e.first == r) {
                    urow[t].push_back({c2, e.second});
                    break;
                }
            }
        }
        for (const auto& ue : urow[t]) seenSlot[ue.first] = 0;
        for (int c2 : rowCols[r]) seenSlot[c2] = 0;

        // L column: one elementary op eliminating column s below the pivot.
        appendLOp(r);
        for (const auto& e : col[s]) {
            if (e.first == r) continue;
            --rowCount[e.first];
            const double mult = e.second / d;
            if (std::fabs(mult) <= kLuDropTol) continue;
            lRow_.push_back(e.first);
            lVal_.push_back(mult);
        }
        lStart_.back() = lRow_.size();
        const std::size_t lb = lStart_[lStart_.size() - 2];
        const std::size_t le = lStart_.back();

        // Rank-1 update of every column the pivot row touches.
        for (const auto& ue : urow[t]) {
            const int c2 = ue.first;
            const double u = ue.second;
            pattern.clear();
            for (const auto& e : col[c2]) {
                if (e.first == r) continue;  // pivot row leaves the matrix
                acc[e.first] = e.second;
                mark[e.first] = 2;  // pre-existing entry
                pattern.push_back(e.first);
            }
            for (std::size_t q = lb; q < le; ++q) {
                const int r2 = lRow_[q];
                acc[r2] -= lVal_[q] * u;
                if (!mark[r2]) {
                    mark[r2] = 1;  // fill-in
                    pattern.push_back(r2);
                }
            }
            col[c2].clear();
            for (int r2 : pattern) {
                const bool keep = std::fabs(acc[r2]) > kLuDropTol;
                if (keep) {
                    col[c2].push_back({r2, acc[r2]});
                    if (mark[r2] == 1) {
                        ++rowCount[r2];
                        rowCols[r2].push_back(c2);
                    }
                } else if (mark[r2] == 2) {
                    --rowCount[r2];
                }
                acc[r2] = 0.0;
                mark[r2] = 0;
            }
            colCount[c2] = static_cast<int>(col[c2].size());
            if (colCount[c2] == 1) singles.push_back(c2);
        }
    }

    if (!ok) {
        // Leave partial rowOfSlot for the caller's repair path.
        return false;
    }

    // Translate recordings into the id-keyed final storage: pivot step t
    // becomes id t, positions start out equal to ids.
    auto& idOfSlot = work_.idOfSlot;
    for (int k = 0; k < m; ++k) idOfSlot[pivSlot[k]] = k;
    for (int k = 0; k < m; ++k) {
        Udiag_[k] = pivVal[k];
        rowOfId_[k] = pivRow[k];
        idAtRow_[pivRow[k]] = k;
        for (const auto& ue : urow[k]) {
            const int idc = idOfSlot[ue.first];
            Urow_[k].push_back({idc, pivRow[idc], ue.second});
            Ucol_[idc].push_back({k, pivRow[k], ue.second});
            ++uFill_;
        }
    }
    // Reach indexes over the L ops (ascending per row because e ascends).
    const std::size_t ops = lPiv_.size();
    for (std::size_t e = 0; e < ops; ++e) {
        lOpsOfRow_[lPiv_[e]].push_back(static_cast<int>(e));
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q)
            lOpsOfTarget_[lRow_[q]].push_back(static_cast<int>(e));
    }
    valid_ = true;
    return true;
}

void LuFactor::ftran(std::vector<double>& x) const {
    // L stage: apply elementary ops in creation order.
    const std::size_t ops = lPiv_.size();
    for (std::size_t e = 0; e < ops; ++e) {
        const double p = x[lPiv_[e]];
        if (p == 0.0) continue;
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q)
            x[lRow_[q]] -= lVal_[q] * p;
    }
    // U stage: back substitution over pivot positions, descending. Scatters
    // from position k only touch rows of strictly earlier positions, which
    // still hold right-hand-side values.
    for (int k = m_ - 1; k >= 0; --k) {
        const int id = order_[k];
        const int r = rowOfId_[id];
        double v = x[r];
        if (v != 0.0) {
            v /= Udiag_[id];
            for (const auto& e : Ucol_[id]) x[e.row] -= e.val * v;
            x[r] = v;
        }
    }
}

void LuFactor::ftranSpike(std::vector<double>& x) {
    const std::size_t ops = lPiv_.size();
    for (std::size_t e = 0; e < ops; ++e) {
        const double p = x[lPiv_[e]];
        if (p == 0.0) continue;
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q)
            x[lRow_[q]] -= lVal_[q] * p;
    }
    spike_ = x;
    spikeValid_ = true;
    spikeSparse_ = false;  // dense copy: spikeIdx_ no longer describes it
    for (int k = m_ - 1; k >= 0; --k) {
        const int id = order_[k];
        const int r = rowOfId_[id];
        double v = x[r];
        if (v != 0.0) {
            v /= Udiag_[id];
            for (const auto& e : Ucol_[id]) x[e.row] -= e.val * v;
            x[r] = v;
        }
    }
}

void LuFactor::btran(std::vector<double>& y) const {
    // Hyper-sparsity shortcut: forward substitution in ascending pivot
    // order means a position can only become nonzero through strictly
    // earlier positions, so everything before the first nonzero of y stays
    // zero and is skipped outright. The dual engine's dominant right-hand
    // side rho = B^{-T} e_r has a single nonzero, which on average sits
    // halfway down the order — this one O(m) scan halves the U^T pass.
    int kStart = 0;
    while (kStart < m_ && y[rowOfId_[order_[kStart]]] == 0.0) ++kStart;
    // U^T stage: forward substitution over pivot positions, ascending.
    for (int k = kStart; k < m_; ++k) {
        const int id = order_[k];
        const int r = rowOfId_[id];
        double s = y[r];
        for (const auto& e : Ucol_[id]) s -= e.val * y[e.row];
        y[r] = s / Udiag_[id];
    }
    // L^T stage: transposed ops in reverse creation order.
    for (std::size_t e = lPiv_.size(); e-- > 0;) {
        double s = y[lPiv_[e]];
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q)
            s -= lVal_[q] * y[lRow_[q]];
        y[lPiv_[e]] = s;
    }
}

bool LuFactor::chooseSparse(HyperCtl& c, const SparseVec& v) const {
    if (!hyper_ || m_ < kHyperMinDim) return false;
    if (c.dense && c.ewma < kHyperReenter) c.dense = false;
    if (c.dense) return false;
    if (v.dense) return false;  // dense-mode input has no support list
    // Per-call guard: a right-hand side already denser than the threshold
    // can only produce a denser result; skip the symbolic pass outright.
    return static_cast<double>(v.idx.size()) <= kHyperEnter * m_;
}

void LuFactor::noteDensity(HyperCtl& c, const SparseVec& v) {
    if (m_ == 0) return;
    const double density = static_cast<double>(v.nnz()) / m_;
    c.ewma = kHyperEwmaDecay * c.ewma + (1.0 - kHyperEwmaDecay) * density;
    if (c.ewma > kHyperEnter) c.dense = true;
}

void LuFactor::ftranLSparse(SparseVec& x) {
    // A nonzero at row r fires exactly the ops pivoted on r that the dense
    // loop has not passed yet. A min-heap of op ids seeded from the support
    // rows pops in increasing id order — the dense execution order — and a
    // row first touched while applying op e contributes only its ops with
    // id > e (its earlier ops saw a zero and were identities). Each op has
    // one pivot row and every row is enqueued at most once, so no op enters
    // the heap twice.
    heap_.clear();
    for (int r : x.idx)
        for (int e : lOpsOfRow_[r]) heap_.push_back(e);
    std::make_heap(heap_.begin(), heap_.end(), std::greater<int>());
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<int>());
        const int e = heap_.back();
        heap_.pop_back();
        const double p = x.val[lPiv_[e]];
        if (p == 0.0) continue;
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q) {
            const int r2 = lRow_[q];
            x.val[r2] -= lVal_[q] * p;
            if (!x.flag[r2]) {
                x.flag[r2] = 1;
                x.idx.push_back(r2);
                const auto& rops = lOpsOfRow_[r2];
                for (auto it = std::upper_bound(rops.begin(), rops.end(), e);
                     it != rops.end(); ++it) {
                    heap_.push_back(*it);
                    std::push_heap(heap_.begin(), heap_.end(),
                                   std::greater<int>());
                }
            }
        }
    }
}

void LuFactor::ftranUSparse(SparseVec& x) {
    // Symbolic reach: position k scatters into strictly earlier positions
    // (the Ucol_ edges), so a DFS from the support ids over Ucol_ collects
    // every position the back substitution can write. Executing the reach
    // in descending pivot position is the dense loop order restricted to
    // the reach; unreached positions hold exact zeros the dense loop would
    // have skipped anyway.
    reachIds_.clear();
    for (int r : x.idx) {
        const int id0 = idAtRow_[r];
        if (reachMark_[id0]) continue;
        reachMark_[id0] = 1;
        dfsStack_.push_back({id0, 0});
        while (!dfsStack_.empty()) {
            auto& top = dfsStack_.back();
            const auto& edges = Ucol_[top.first];
            if (top.second == static_cast<int>(edges.size())) {
                reachIds_.push_back(top.first);
                dfsStack_.pop_back();
                continue;
            }
            const int child = edges[top.second++].id;
            if (!reachMark_[child]) {
                reachMark_[child] = 1;
                dfsStack_.push_back({child, 0});
            }
        }
    }
    std::sort(reachIds_.begin(), reachIds_.end(),
              [&](int a, int b) { return posOf_[a] > posOf_[b]; });
    for (int id : reachIds_) {
        reachMark_[id] = 0;
        const int r = rowOfId_[id];
        x.touch(r);
        double v = x.val[r];
        if (v != 0.0) {
            v /= Udiag_[id];
            for (const auto& e : Ucol_[id])
                x.val[e.row] -= e.val * v;
            x.val[r] = v;
        }
    }
}

void LuFactor::btranUSparse(SparseVec& y) {
    // Transposed U: position k reads strictly earlier positions, so a
    // nonzero propagates forward along Urow_ edges. Reach DFS over Urow_,
    // then execute ascending — again the dense order on the reach.
    reachIds_.clear();
    for (int r : y.idx) {
        const int id0 = idAtRow_[r];
        if (reachMark_[id0]) continue;
        reachMark_[id0] = 1;
        dfsStack_.push_back({id0, 0});
        while (!dfsStack_.empty()) {
            auto& top = dfsStack_.back();
            const auto& edges = Urow_[top.first];
            if (top.second == static_cast<int>(edges.size())) {
                reachIds_.push_back(top.first);
                dfsStack_.pop_back();
                continue;
            }
            const int child = edges[top.second++].id;
            if (!reachMark_[child]) {
                reachMark_[child] = 1;
                dfsStack_.push_back({child, 0});
            }
        }
    }
    std::sort(reachIds_.begin(), reachIds_.end(),
              [&](int a, int b) { return posOf_[a] < posOf_[b]; });
    for (int id : reachIds_) {
        reachMark_[id] = 0;
        const int r = rowOfId_[id];
        double s = y.val[r];
        for (const auto& e : Ucol_[id])
            s -= e.val * y.val[e.row];
        y.val[r] = s / Udiag_[id];
        y.touch(r);
    }
}

void LuFactor::btranLSparse(SparseVec& y) {
    // Transposed L ops run in reverse creation order and op e only changes
    // y[pivot] when some target row of e is nonzero. Max-heap of op ids
    // seeded from the support rows' target-op lists pops in decreasing id
    // order (= dense order); a pivot row first written while applying op e
    // wakes only its target ops with id < e (the later ones already ran).
    // Unlike the FTRAN case an op has several target rows, so a per-op
    // queued flag dedups the heap.
    const std::size_t ops = lPiv_.size();
    if (opQueued_.size() < ops) opQueued_.resize(ops, 0);
    heap_.clear();
    for (int r : y.idx)
        for (int e : lOpsOfTarget_[r])
            if (!opQueued_[e]) {
                opQueued_[e] = 1;
                heap_.push_back(e);
            }
    std::make_heap(heap_.begin(), heap_.end());
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end());
        const int e = heap_.back();
        heap_.pop_back();
        opQueued_[e] = 0;
        double s = y.val[lPiv_[e]];
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q)
            s -= lVal_[q] * y.val[lRow_[q]];
        const int pr = lPiv_[e];
        y.val[pr] = s;
        if (!y.flag[pr]) {
            y.flag[pr] = 1;
            y.idx.push_back(pr);
            for (int e2 : lOpsOfTarget_[pr]) {
                if (e2 >= e) break;  // sorted ascending: the rest ran already
                if (!opQueued_[e2]) {
                    opQueued_[e2] = 1;
                    heap_.push_back(e2);
                    std::push_heap(heap_.begin(), heap_.end());
                }
            }
        }
    }
}

bool LuFactor::ftranSparse(SparseVec& x, LuRhs cls) {
    HyperCtl& ctl = ftranCtl_[static_cast<int>(cls)];
    const bool sparse = chooseSparse(ctl, x);
    if (sparse) {
        if (!lOpsValid_) rebuildLOps();
        ftranLSparse(x);
        ftranUSparse(x);
        x.sortSupport();
    } else {
        // Dense fallback: don't pay an O(m) support rebuild for a result
        // that is dense anyway — hand the consumer a dense-mode vector.
        x.markDense();
        ftran(x.val);
    }
    noteDensity(ctl, x);
    return sparse;
}

bool LuFactor::ftranSpikeSparse(SparseVec& x) {
    HyperCtl& ctl = ftranCtl_[static_cast<int>(LuRhs::Column)];
    const bool sparse = chooseSparse(ctl, x);
    if (sparse) {
        if (!lOpsValid_) rebuildLOps();
        ftranLSparse(x);
        x.sortSupport();
        // Cache the post-L spike sparsely: clear the previous support (or
        // the whole array if the last spike came through the dense path),
        // then copy the new one.
        if (spikeSparse_)
            for (int r : spikeIdx_) spike_[r] = 0.0;
        else
            spike_.assign(m_, 0.0);
        spikeIdx_ = x.idx;
        for (int r : spikeIdx_) spike_[r] = x.val[r];
        spikeValid_ = true;
        spikeSparse_ = true;
        ftranUSparse(x);
        x.sortSupport();
    } else {
        x.markDense();
        ftranSpike(x.val);
        spikeSparse_ = false;
    }
    noteDensity(ctl, x);
    return sparse;
}

bool LuFactor::btranSparse(SparseVec& y, LuRhs cls) {
    HyperCtl& ctl = btranCtl_[static_cast<int>(cls)];
    const bool sparse = chooseSparse(ctl, y);
    if (sparse) {
        if (!lOpsValid_) rebuildLOps();
        btranUSparse(y);
        btranLSparse(y);
        y.sortSupport();
    } else {
        y.markDense();
        btran(y.val);
    }
    noteDensity(ctl, y);
    return sparse;
}

bool LuFactor::update(int leaveRow) {
    if (!spikeValid_) {
        valid_ = false;
        return false;
    }
    spikeValid_ = false;

    const int id0 = idAtRow_[leaveRow];
    const int t0 = posOf_[id0];

    // Detach row id0 and column id0 from U. The row's entries drive the
    // eliminations below; the column is about to be replaced by the spike.
    std::vector<UEnt> u = std::move(Urow_[id0]);
    Urow_[id0].clear();
    for (const auto& e : u) eraseEntry(Ucol_[e.id], id0);
    for (const auto& e : Ucol_[id0]) eraseEntry(Urow_[e.id], id0);
    uFill_ -= static_cast<long>(u.size() + Ucol_[id0].size());
    Ucol_[id0].clear();

    // Cyclically shifting position t0 to the end leaves the detached row as
    // the only sub-diagonal row; eliminate it by forward substitution over
    // positions t0+1..m-1, appending one single-entry row op to L per
    // surviving multiplier. alpha_ holds the row's current value per id.
    // Only positions the row actually touches can carry a nonzero. When the
    // detached row is sparse relative to the tail the scan is driven by a
    // min-heap of positions seeded from its entries and fed by the Urow_
    // scatters (all of which land at strictly later positions) — ascending
    // pops reproduce the dense elimination order exactly. A dense-ish row
    // uses the plain linear position scan instead: at high fill the heap
    // maintenance costs more than touching every tail position once.
    for (const auto& e : u) alpha_[e.id] = e.val;
    double delta = spike_[leaveRow];
    // Skip reach-index upkeep while no reach kernel can run (every
    // (direction, class) controller is on the dense fallback, or the
    // kernels are switched off); the indexes go stale and are rebuilt on
    // demand.
    const bool maintainLOps = lOpsValid_ && hyper_ && !allCtlDense();
    if (!maintainLOps) lOpsValid_ = false;
    auto eliminate = [&](int id, double a) {
        const double mult = a / Udiag_[id];
        const int pr = rowOfId_[id];
        const int opIdx = static_cast<int>(lPiv_.size());
        lPiv_.push_back(pr);
        lRow_.push_back(leaveRow);
        lVal_.push_back(mult);
        lStart_.push_back(lRow_.size());
        if (maintainLOps) {
            lOpsOfRow_[pr].push_back(opIdx);
            lOpsOfTarget_[leaveRow].push_back(opIdx);
        }
        delta -= mult * spike_[pr];
        return mult;
    };
    // The heap walk pays off only when the whole elimination stays sparse.
    // The detached row's initial size misses fill-in: scattering a row of a
    // spike-dense U wakes hundreds of later positions, and every wake-up
    // costs a push_heap. Require low average U fill (raw factors have ~a
    // handful of entries per row; accumulated dense FT spikes blow past
    // this) before trusting the initial size as a sparsity signal.
    const int tail = m_ - 1 - t0;
    if (static_cast<long>(u.size()) * 4 < tail && uFill_ < 8L * m_) {
        heap_.clear();
        for (const auto& e : u)
            if (!elimQueued_[e.id]) {
                elimQueued_[e.id] = 1;
                heap_.push_back(posOf_[e.id]);
            }
        std::make_heap(heap_.begin(), heap_.end(), std::greater<int>());
        while (!heap_.empty()) {
            std::pop_heap(heap_.begin(), heap_.end(), std::greater<int>());
            const int k = heap_.back();
            heap_.pop_back();
            const int id = order_[k];
            elimQueued_[id] = 0;
            const double a = alpha_[id];
            alpha_[id] = 0.0;
            if (std::fabs(a) <= kLuDropTol) continue;
            const double mult = eliminate(id, a);
            for (const auto& e : Urow_[id]) {
                alpha_[e.id] -= mult * e.val;
                if (!elimQueued_[e.id]) {
                    elimQueued_[e.id] = 1;
                    heap_.push_back(posOf_[e.id]);
                    std::push_heap(heap_.begin(), heap_.end(),
                                   std::greater<int>());
                }
            }
        }
    } else {
        for (int k = t0 + 1; k < m_; ++k) {
            const int id = order_[k];
            const double a = alpha_[id];
            alpha_[id] = 0.0;
            if (std::fabs(a) <= kLuDropTol) continue;
            const double mult = eliminate(id, a);
            for (const auto& e : Urow_[id])
                alpha_[e.id] -= mult * e.val;
        }
    }

    if (std::fabs(delta) < kLuPivotTol || !std::isfinite(delta)) {
        valid_ = false;
        return false;
    }

    // Insert the spike as the new last column, keyed by the recycled id0.
    // All its entries sit above the new diagonal by construction. A sparse
    // spike walks its (ascending) support instead of all rows — same visit
    // order, and rows outside the support hold exact zeros.
    auto insertSpikeRow = [&](int r) {
        if (r == leaveRow) return;
        const double v = spike_[r];
        if (std::fabs(v) <= kLuDropTol) return;
        const int id = idAtRow_[r];
        Ucol_[id0].push_back({id, r, v});
        Urow_[id].push_back({id0, leaveRow, v});
        ++uFill_;
    };
    if (spikeSparse_)
        for (int r : spikeIdx_) insertSpikeRow(r);
    else
        for (int r = 0; r < m_; ++r) insertSpikeRow(r);
    Udiag_[id0] = delta;

    // Rotate the pivot order: id0 moves from position t0 to the end.
    order_.erase(order_.begin() + t0);
    order_.push_back(id0);
    for (int k = t0; k < m_; ++k) posOf_[order_[k]] = k;
    ++updates_;
    return true;
}

}  // namespace lp
