#include "lp/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lp {

namespace {
/// Markowitz search examines the active columns whose count is within this
/// slack of the minimum (capped at kMaxSearchCols) — enough to find a
/// low-fill stable pivot without rescanning the whole active matrix.
constexpr int kCountSlack = 1;
constexpr int kMaxSearchCols = 16;
}  // namespace

void LuFactor::clear(int m) {
    m_ = m;
    valid_ = false;
    updates_ = 0;
    lPiv_.clear();
    lStart_.assign(1, 0);
    lRow_.clear();
    lVal_.clear();
    Udiag_.assign(m, 0.0);
    // Keep inner-vector capacities across refactorizations: U's sparsity
    // pattern is stable between consecutive factorizations of a slowly
    // changing basis, so reusing the buffers makes steady-state
    // refactorization allocation-free.
    const int keep = std::min<int>(m, static_cast<int>(Ucol_.size()));
    Ucol_.resize(m);
    Urow_.resize(m);
    for (int i = 0; i < keep; ++i) {
        Ucol_[i].clear();
        Urow_[i].clear();
    }
    rowOfId_.assign(m, -1);
    idAtRow_.assign(m, -1);
    order_.resize(m);
    posOf_.resize(m);
    for (int i = 0; i < m; ++i) {
        order_[i] = i;
        posOf_[i] = i;
    }
    uFill_ = 0;
    spike_.assign(m, 0.0);
    spikeValid_ = false;
    alpha_.assign(m, 0.0);
}

void LuFactor::FactorWork::reset(int m) {
    const int keep = std::min<int>(m, static_cast<int>(col.size()));
    col.resize(m);
    rowCols.resize(m);
    urow.resize(m);
    for (int i = 0; i < keep; ++i) {
        col[i].clear();
        rowCols[i].clear();
        urow[i].clear();
    }
    rowCount.assign(m, 0);
    colCount.assign(m, 0);
    rowDone.assign(m, 0);
    colDone.assign(m, 0);
    pivRow.assign(m, -1);
    pivSlot.assign(m, -1);
    pivVal.assign(m, 0.0);
    acc.assign(m, 0.0);
    mark.assign(m, 0);
    seenSlot.assign(m, 0);
    pattern.clear();
    cand.clear();
    singles.clear();
    idOfSlot.assign(m, -1);
}

void LuFactor::loadSlack(int m, double diag) {
    clear(m);
    for (int i = 0; i < m; ++i) {
        Udiag_[i] = diag;
        rowOfId_[i] = i;
        idAtRow_[i] = i;
    }
    valid_ = true;
}

void LuFactor::eraseEntry(std::vector<std::pair<int, double>>& v, int id) {
    for (auto it = v.begin(); it != v.end(); ++it) {
        if (it->first == id) {
            *it = v.back();
            v.pop_back();
            return;
        }
    }
}

void LuFactor::appendLOp(int pivotRow) {
    lPiv_.push_back(pivotRow);
    lStart_.push_back(lRow_.size());
}

bool LuFactor::factorize(const std::vector<int>& basic,
                         const std::vector<int>& cscPtr,
                         const std::vector<int>& cscRow,
                         const std::vector<double>& cscVal,
                         std::vector<int>& rowOfSlot) {
    const int m = static_cast<int>(basic.size());
    clear(m);
    rowOfSlot.assign(m, -1);

    // Active-matrix working copy, column-wise, plus a row -> columns map.
    // rowCols may hold stale slots (entries dropped below kLuDropTol keep
    // their rowCols record); consumers re-verify by scanning the column.
    work_.reset(m);
    auto& col = work_.col;
    auto& rowCols = work_.rowCols;
    auto& rowCount = work_.rowCount;
    auto& colCount = work_.colCount;
    auto& rowDone = work_.rowDone;
    auto& colDone = work_.colDone;
    // Singleton-column stack: a column with exactly one active entry is a
    // zero-fill pivot with a trivially satisfied stability test. Basis
    // matrices here are near-triangular (slacks + sparse cut columns), so
    // popping singletons resolves most steps in O(1) and the Markowitz scan
    // below only runs on the irreducible core. Entries are lazily
    // validated on pop (a slot may have been pivoted or refilled since).
    auto& singles = work_.singles;
    for (int s = 0; s < m; ++s) {
        const int j = basic[s];
        for (int p = cscPtr[j]; p < cscPtr[j + 1]; ++p) {
            const int r = cscRow[p];
            col[s].push_back({r, cscVal[p]});
            rowCols[r].push_back(s);
            ++rowCount[r];
        }
        colCount[s] = static_cast<int>(col[s].size());
        if (colCount[s] == 1) singles.push_back(s);
    }

    // Per-pivot recordings (translated into final storage on success).
    auto& urow = work_.urow;  // (slot, val)
    auto& pivRow = work_.pivRow;
    auto& pivSlot = work_.pivSlot;
    auto& pivVal = work_.pivVal;

    auto& acc = work_.acc;
    auto& mark = work_.mark;
    auto& pattern = work_.pattern;
    auto& seenSlot = work_.seenSlot;
    auto& cand = work_.cand;

    bool ok = true;
    int t = 0;
    for (; t < m; ++t) {
        // --- pivot selection ------------------------------------------
        int bestSlot = -1, bestRow = -1;
        double bestVal = 0.0;
        // Fast path: pop a singleton column (zero Markowitz cost).
        while (!singles.empty()) {
            const int s = singles.back();
            singles.pop_back();
            if (colDone[s] || colCount[s] != 1) continue;
            const auto& e = col[s].front();
            if (std::fabs(e.second) <= kLuPivotTol) continue;
            bestSlot = s;
            bestRow = e.first;
            bestVal = e.second;
            break;
        }
        if (bestSlot < 0) {
            // Markowitz scan on the irreducible core: sparsest columns
            // first, full scan only if no stable pivot was found among
            // them.
            int minCount = std::numeric_limits<int>::max();
            for (int s = 0; s < m; ++s) {
                if (!colDone[s] && colCount[s] > 0 && colCount[s] < minCount)
                    minCount = colCount[s];
            }
            if (minCount == std::numeric_limits<int>::max()) {
                ok = false;  // every remaining column is (numerically) empty
                break;
            }
            long bestCost = std::numeric_limits<long>::max();
            for (int round = 0; round < 2 && bestSlot < 0; ++round) {
                cand.clear();
                for (int s = 0; s < m; ++s) {
                    if (colDone[s] || colCount[s] == 0) continue;
                    if (round == 0) {
                        if (colCount[s] <= minCount + kCountSlack) {
                            cand.push_back(s);
                            if (static_cast<int>(cand.size()) >=
                                kMaxSearchCols)
                                break;
                        }
                    } else {
                        cand.push_back(s);
                    }
                }
                for (int s : cand) {
                    double colmax = 0.0;
                    for (const auto& e : col[s])
                        colmax = std::max(colmax, std::fabs(e.second));
                    if (colmax <= kLuPivotTol) continue;
                    const double cutoff = kLuMarkowitzTau * colmax;
                    for (const auto& e : col[s]) {
                        const double a = std::fabs(e.second);
                        if (a < cutoff || a <= kLuPivotTol) continue;
                        const long cost =
                            static_cast<long>(rowCount[e.first] - 1) *
                            static_cast<long>(colCount[s] - 1);
                        if (cost < bestCost ||
                            (cost == bestCost && a > std::fabs(bestVal))) {
                            bestCost = cost;
                            bestSlot = s;
                            bestRow = e.first;
                            bestVal = e.second;
                        }
                    }
                }
            }
        }
        if (bestSlot < 0) {
            ok = false;
            break;
        }

        const int r = bestRow, s = bestSlot;
        const double d = bestVal;
        pivRow[t] = r;
        pivSlot[t] = s;
        pivVal[t] = d;
        rowOfSlot[s] = r;
        rowDone[r] = 1;
        colDone[s] = 1;

        // U row t: remaining entries of pivot row r across active columns.
        for (int c2 : rowCols[r]) {
            if (colDone[c2] || seenSlot[c2]) continue;
            seenSlot[c2] = 1;
            for (const auto& e : col[c2]) {
                if (e.first == r) {
                    urow[t].push_back({c2, e.second});
                    break;
                }
            }
        }
        for (const auto& ue : urow[t]) seenSlot[ue.first] = 0;
        for (int c2 : rowCols[r]) seenSlot[c2] = 0;

        // L column: one elementary op eliminating column s below the pivot.
        appendLOp(r);
        for (const auto& e : col[s]) {
            if (e.first == r) continue;
            --rowCount[e.first];
            const double mult = e.second / d;
            if (std::fabs(mult) <= kLuDropTol) continue;
            lRow_.push_back(e.first);
            lVal_.push_back(mult);
        }
        lStart_.back() = lRow_.size();
        const std::size_t lb = lStart_[lStart_.size() - 2];
        const std::size_t le = lStart_.back();

        // Rank-1 update of every column the pivot row touches.
        for (const auto& ue : urow[t]) {
            const int c2 = ue.first;
            const double u = ue.second;
            pattern.clear();
            for (const auto& e : col[c2]) {
                if (e.first == r) continue;  // pivot row leaves the matrix
                acc[e.first] = e.second;
                mark[e.first] = 2;  // pre-existing entry
                pattern.push_back(e.first);
            }
            for (std::size_t q = lb; q < le; ++q) {
                const int r2 = lRow_[q];
                acc[r2] -= lVal_[q] * u;
                if (!mark[r2]) {
                    mark[r2] = 1;  // fill-in
                    pattern.push_back(r2);
                }
            }
            col[c2].clear();
            for (int r2 : pattern) {
                const bool keep = std::fabs(acc[r2]) > kLuDropTol;
                if (keep) {
                    col[c2].push_back({r2, acc[r2]});
                    if (mark[r2] == 1) {
                        ++rowCount[r2];
                        rowCols[r2].push_back(c2);
                    }
                } else if (mark[r2] == 2) {
                    --rowCount[r2];
                }
                acc[r2] = 0.0;
                mark[r2] = 0;
            }
            colCount[c2] = static_cast<int>(col[c2].size());
            if (colCount[c2] == 1) singles.push_back(c2);
        }
    }

    if (!ok) {
        // Leave partial rowOfSlot for the caller's repair path.
        return false;
    }

    // Translate recordings into the id-keyed final storage: pivot step t
    // becomes id t, positions start out equal to ids.
    auto& idOfSlot = work_.idOfSlot;
    for (int k = 0; k < m; ++k) idOfSlot[pivSlot[k]] = k;
    for (int k = 0; k < m; ++k) {
        Udiag_[k] = pivVal[k];
        rowOfId_[k] = pivRow[k];
        idAtRow_[pivRow[k]] = k;
        for (const auto& ue : urow[k]) {
            const int idc = idOfSlot[ue.first];
            Urow_[k].push_back({idc, ue.second});
            Ucol_[idc].push_back({k, ue.second});
            ++uFill_;
        }
    }
    valid_ = true;
    return true;
}

void LuFactor::ftran(std::vector<double>& x) const {
    // L stage: apply elementary ops in creation order.
    const std::size_t ops = lPiv_.size();
    for (std::size_t e = 0; e < ops; ++e) {
        const double p = x[lPiv_[e]];
        if (p == 0.0) continue;
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q)
            x[lRow_[q]] -= lVal_[q] * p;
    }
    // U stage: back substitution over pivot positions, descending. Scatters
    // from position k only touch rows of strictly earlier positions, which
    // still hold right-hand-side values.
    for (int k = m_ - 1; k >= 0; --k) {
        const int id = order_[k];
        const int r = rowOfId_[id];
        double v = x[r];
        if (v != 0.0) {
            v /= Udiag_[id];
            for (const auto& e : Ucol_[id]) x[rowOfId_[e.first]] -= e.second * v;
            x[r] = v;
        }
    }
}

void LuFactor::ftranSpike(std::vector<double>& x) {
    const std::size_t ops = lPiv_.size();
    for (std::size_t e = 0; e < ops; ++e) {
        const double p = x[lPiv_[e]];
        if (p == 0.0) continue;
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q)
            x[lRow_[q]] -= lVal_[q] * p;
    }
    spike_ = x;
    spikeValid_ = true;
    for (int k = m_ - 1; k >= 0; --k) {
        const int id = order_[k];
        const int r = rowOfId_[id];
        double v = x[r];
        if (v != 0.0) {
            v /= Udiag_[id];
            for (const auto& e : Ucol_[id]) x[rowOfId_[e.first]] -= e.second * v;
            x[r] = v;
        }
    }
}

void LuFactor::btran(std::vector<double>& y) const {
    // Hyper-sparsity shortcut: forward substitution in ascending pivot
    // order means a position can only become nonzero through strictly
    // earlier positions, so everything before the first nonzero of y stays
    // zero and is skipped outright. The dual engine's dominant right-hand
    // side rho = B^{-T} e_r has a single nonzero, which on average sits
    // halfway down the order — this one O(m) scan halves the U^T pass.
    int kStart = 0;
    while (kStart < m_ && y[rowOfId_[order_[kStart]]] == 0.0) ++kStart;
    // U^T stage: forward substitution over pivot positions, ascending.
    for (int k = kStart; k < m_; ++k) {
        const int id = order_[k];
        const int r = rowOfId_[id];
        double s = y[r];
        for (const auto& e : Ucol_[id]) s -= e.second * y[rowOfId_[e.first]];
        y[r] = s / Udiag_[id];
    }
    // L^T stage: transposed ops in reverse creation order.
    for (std::size_t e = lPiv_.size(); e-- > 0;) {
        double s = y[lPiv_[e]];
        for (std::size_t q = lStart_[e]; q < lStart_[e + 1]; ++q)
            s -= lVal_[q] * y[lRow_[q]];
        y[lPiv_[e]] = s;
    }
}

bool LuFactor::update(int leaveRow) {
    if (!spikeValid_) {
        valid_ = false;
        return false;
    }
    spikeValid_ = false;

    const int id0 = idAtRow_[leaveRow];
    const int t0 = posOf_[id0];

    // Detach row id0 and column id0 from U. The row's entries drive the
    // eliminations below; the column is about to be replaced by the spike.
    std::vector<std::pair<int, double>> u = std::move(Urow_[id0]);
    Urow_[id0].clear();
    for (const auto& e : u) eraseEntry(Ucol_[e.first], id0);
    for (const auto& e : Ucol_[id0]) eraseEntry(Urow_[e.first], id0);
    uFill_ -= static_cast<long>(u.size() + Ucol_[id0].size());
    Ucol_[id0].clear();

    // Cyclically shifting position t0 to the end leaves the detached row as
    // the only sub-diagonal row; eliminate it by forward substitution over
    // positions t0+1..m-1, appending one single-entry row op to L per
    // surviving multiplier. alpha_ holds the row's current value per id.
    for (const auto& e : u) alpha_[e.first] = e.second;
    double delta = spike_[leaveRow];
    for (int k = t0 + 1; k < m_; ++k) {
        const int id = order_[k];
        const double a = alpha_[id];
        alpha_[id] = 0.0;
        if (std::fabs(a) <= kLuDropTol) continue;
        const double mult = a / Udiag_[id];
        const int pr = rowOfId_[id];
        lPiv_.push_back(pr);
        lRow_.push_back(leaveRow);
        lVal_.push_back(mult);
        lStart_.push_back(lRow_.size());
        for (const auto& e : Urow_[id]) alpha_[e.first] -= mult * e.second;
        delta -= mult * spike_[pr];
    }

    if (std::fabs(delta) < kLuPivotTol || !std::isfinite(delta)) {
        valid_ = false;
        return false;
    }

    // Insert the spike as the new last column, keyed by the recycled id0.
    // All its entries sit above the new diagonal by construction.
    for (int r = 0; r < m_; ++r) {
        if (r == leaveRow) continue;
        const double v = spike_[r];
        if (std::fabs(v) <= kLuDropTol) continue;
        const int id = idAtRow_[r];
        Ucol_[id0].push_back({id, v});
        Urow_[id].push_back({id0, v});
        ++uFill_;
    }
    Udiag_[id0] = delta;

    // Rotate the pivot order: id0 moves from position t0 to the end.
    order_.erase(order_.begin() + t0);
    order_.push_back(id0);
    for (int k = t0; k < m_; ++k) posOf_[order_[k]] = k;
    ++updates_;
    return true;
}

}  // namespace lp
