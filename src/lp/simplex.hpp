// Sparse revised simplex (primal phase I/II + dual reoptimize).
//
// This plays the role CPLEX/SoPlex play for SCIP in the paper: the LP
// relaxation engine under branch-and-cut. It supports
//   * solving from scratch (composite phase-1 primal simplex),
//   * adding rows (cuts) and reoptimizing with the dual simplex,
//   * changing column bounds (branching) and reoptimizing dually,
//   * dual values and reduced costs (needed for reduced-cost fixing and
//     dual-ascent-style bound reasoning in the Steiner solver),
//   * basis snapshots (basis()/loadBasis()) so the branch-and-bound layer
//     can warm-start child nodes from their parent's optimal basis and
//     strong-branching probes can restore the pre-probe state.
//
// Engine internals (see src/lp/README.md for the full story):
//   * the constraint matrix is kept both as a dynamic per-column build view
//     (cheap row appends for cuts) and as a packed CSC copy used by every
//     hot loop (pricing, FTRAN scatter, dual ratio test);
//   * the basis is factorized either as a sparse Markowitz LU with
//     Forrest–Tomlin updates (lp/lu.hpp, the default) or as a
//     product-form-inverse eta file (lp/eta.hpp, kept selectable as the
//     A/B baseline) — both provide sparse FTRAN/BTRAN instead of an
//     explicit dense B^{-1};
//   * pricing scans a rotating candidate window (partial pricing) scored by
//     devex reference weights, falling back to full Dantzig/Bland scans on
//     degenerate stalls — full scans also certify optimality;
//   * a periodic residual check against the raw matrix triggers
//     refactorization before accumulated factor drift can corrupt the
//     objective; fill growth beyond a ratio of the fresh factorization's
//     fill (or an update-count cap) does the same.
#pragma once

#include <vector>

#include "lp/basis.hpp"
#include "lp/eta.hpp"
#include "lp/lu.hpp"
#include "lp/model.hpp"
#include "lp/sparsevec.hpp"

namespace lp {

/// Basis factorization kernel selector (cip parameter `lp/factorization`).
enum class Factorization {
    PFI,  ///< product-form-inverse eta file (one eta per pivot)
    LU,   ///< Markowitz LU with Forrest–Tomlin updates (default)
};

const char* toString(Factorization f);

/// Dual leaving-row pricing rule (cip parameter `lp/pricing`).
enum class Pricing {
    Devex,  ///< approximate reference-framework row weights
    DSE,    ///< exact dual steepest-edge, one extra FTRAN per dual pivot
            ///< (default: ~1.4-1.5x fewer warm-resolve iterations measured
            ///< at every bound-change depth on the Steiner-cut LP family)
};

const char* toString(Pricing p);

enum class SolveStatus {
    Optimal,
    Infeasible,
    Unbounded,
    IterLimit,
    NumericalTrouble,
};

const char* toString(SolveStatus s);

class SimplexSolver {
public:
    SimplexSolver() = default;

    /// Load a model (copies rows/cols into internal column-wise form).
    void load(const LpModel& model);

    /// Solve from scratch (fresh slack basis, primal phase I/II).
    SolveStatus solve();

    /// Append rows (e.g. separated cuts) and reoptimize with dual simplex.
    SolveStatus addRowsAndResolve(const std::vector<Row>& rows);

    /// Change bounds of a structural column and reoptimize dually.
    /// Multiple bound changes may be batched before a single resolve().
    void changeBounds(int col, double lb, double ub);

    /// Change the side bounds (lhs/rhs) of an existing row — equivalent to
    /// re-bounding its slack variable. Used for node-locally activated rows
    /// (constraint branching).
    void changeRowBounds(int row, double lhs, double rhs) {
        changeBounds(n_ + row, lhs, rhs);
    }

    /// Reoptimize after bound changes (dual simplex; falls back to a fresh
    /// primal solve on numerical trouble).
    SolveStatus resolve();

    // -- basis warm-starts --------------------------------------------------
    /// Snapshot the current basis. Invalid (empty) if no basis is held.
    Basis basis() const;
    /// Restore a snapshot: re-derives row assignment by refactorizing and
    /// adapts to rows added/removed since the snapshot (new-row slacks go
    /// basic). Returns false — leaving the solver in a cold state — if the
    /// column count changed or the implied basis is singular; the caller
    /// must then solve() from scratch.
    bool loadBasis(const Basis& b);

    // -- solution access (valid after Optimal) ------------------------------
    double objective() const { return obj_; }
    const std::vector<double>& primal() const { return primalX_; }
    /// Dual multiplier of row i (sign convention: c - A'y are the reduced
    /// costs; y_i >= 0 for binding >= rows, <= 0 for binding <= rows).
    const std::vector<double>& duals() const { return dualY_; }
    /// Reduced cost of structural column j.
    const std::vector<double>& reducedCosts() const { return redCost_; }

    long iterations() const { return totalIters_; }
    /// Basis (re)factorizations performed (slack setups, periodic/residual
    /// refactorizations, basis loads). Exposed for drift tests and stats.
    long factorizations() const { return numFactor_; }
    int numRows() const { return m_; }
    int numCols() const { return n_; }

    /// Select the basis factorization kernel. Switching kinds invalidates
    /// any held basis (the next solve is cold); call before load()/solve().
    void setFactorization(Factorization f) {
        if (f == factKind_) return;
        factKind_ = f;
        basisValid_ = false;
    }
    Factorization factorization() const { return factKind_; }
    /// Current factor fill (L+U nonzeros, or eta-file fill incl. pivots).
    /// Drives the refactorization policy; exposed for benchmarks/tests.
    long factorFill() const {
        return factKind_ == Factorization::PFI ? eta_.fill() + eta_.size()
                                               : lu_.fill();
    }

    /// Iteration limit per (re)solve; guards against cycling in pathological
    /// cases. Default is generous.
    void setIterLimit(long lim) { iterLimit_ = lim; }
    long iterLimit() const { return iterLimit_; }

    /// Dual pricing rule. DSE (default) maintains exact steepest-edge row
    /// norms across resolves of an unchanged basis at one extra FTRAN per
    /// dual pivot; devex restarts approximate reference weights on every
    /// resolve — cheaper per pivot, measurably more pivots on warm
    /// reoptimizations. Cold solves start in primal phase 1 and are
    /// insensitive to this choice.
    void setPricing(Pricing p) { pricing_ = p; }
    Pricing pricing() const { return pricing_; }

    /// Enable/disable the hyper-sparse reach kernels (LU mode only; the
    /// automatic density fallback still applies when enabled). Exposed for
    /// the `lp/hypersparse` parameter and the on/off equivalence tests.
    void setHyperSparse(bool on) {
        hyper_ = on;
        lu_.setHyperSparse(on);
    }
    bool hyperSparse() const { return hyper_; }

    // Sparsity telemetry: basis solves answered by the reach kernels vs the
    // dense loops, and the summed result support size (mean nnz =
    // solveNnzSum / (hyperSolves + denseSolves)).
    long hyperSolves() const { return hyperSolves_; }
    long denseSolves() const { return denseSolves_; }
    long solveNnzSum() const { return solveNnzSum_; }

private:
    using VStat = VarStatus;

    // Dynamic per-column build view over [structural | slack] variables;
    // row appends (cuts) push entries here. Hot loops use the packed CSC
    // mirror below instead.
    struct SparseCol {
        std::vector<std::pair<int, double>> entries;  // (row, coef)
    };

    int n_ = 0;  ///< structural columns
    int m_ = 0;  ///< rows
    std::vector<SparseCol> cols_;   ///< size n_ + m_ (slack j has single -1)
    std::vector<double> cost_;      ///< size n_ + m_ (slack cost 0)
    std::vector<double> lb_, ub_;   ///< size n_ + m_
    std::vector<VStat> vstat_;      ///< size n_ + m_
    std::vector<int> basic_;        ///< size m_: variable index basic in row
    std::vector<double> xb_;        ///< basic variable values

    // Packed CSC mirror of cols_ (rebuilt lazily after structural changes)
    // plus a CSR transpose: the dual ratio test scatters one sparse rho row
    // through the CSR view instead of dotting rho against every column.
    std::vector<int> cscPtr_;       ///< size n_ + m_ + 1
    std::vector<int> cscRow_;
    std::vector<double> cscVal_;
    std::vector<int> csrPtr_;       ///< size m_ + 1
    std::vector<int> csrCol_;
    std::vector<double> csrVal_;
    bool cscDirty_ = true;

    // Basis factorization: exactly one of the two kernels is live at a
    // time, selected by factKind_ and dispatched through fact*() helpers.
    Factorization factKind_ = Factorization::LU;
    EtaFile eta_;                   ///< product-form basis inverse (PFI mode)
    LuFactor lu_;                   ///< Markowitz LU + FT updates (LU mode)

    // Fill-ratio refactorization policy, recomputed after every successful
    // (re)factorization by resetFactorPolicy(). Replaces the fixed
    // kMaxExtraEtas / kResidCheckInterval constants.
    long baseFill_ = 0;      ///< factor fill right after refactorization
    long fillLimit_ = 0;     ///< refactor when factorFill() exceeds this
    int updateLimit_ = 0;    ///< ... or after this many updates
    int updatesSince_ = 0;   ///< pivot updates absorbed since refactor
    int residInterval_ = 50; ///< iterations between residual drift checks
    bool factorStale_ = false;  ///< set when an FT update fails mid-pivot

    // Pricing state: devex reference weights + partial-pricing cursor.
    std::vector<double> devex_;     ///< size n_ + m_
    int pricingPos_ = 0;

    // Dual row pricing weights (gamma_i ~ ||B^{-T} e_i||^2; exact for DSE,
    // reference-framework approximations for devex). They persist in
    // dseGamma_ across resolves while the basis is unchanged — dseFresh_ is
    // dropped by every pivot outside the dual loop and re-earned by the
    // loop's own update — and refactorizations permute them together with
    // basic_ (permuteDseGamma). weightsRule_ records which rule produced
    // them: weights are never reused across rules.
    Pricing pricing_ = Pricing::DSE;
    std::vector<double> dseGamma_;
    bool dseFresh_ = false;
    Pricing weightsRule_ = Pricing::Devex;
    /// Re-order dseGamma_ by the slot->row map a refactorization applied to
    /// basic_ (weights belong to the slot's basic variable, not to the row
    /// index). Unmapped slots (singular-repair) restart at weight 1.
    void permuteDseGamma(const std::vector<int>& rowOfSlot);

    // Hyper-sparse pipeline state: reusable sparse work vectors (entering
    // column, BTRAN row, DSE tau) and the solve-path counters. iota_ is the
    // identity index list the consumers iterate when a solve came back in
    // dense-result mode (support(v)).
    bool hyper_ = true;
    SparseVec wVec_, rhoVec_, tauVec_, flipVec_;
    std::vector<int> iota_;
    long hyperSolves_ = 0;
    long denseSolves_ = 0;
    long solveNnzSum_ = 0;

    double obj_ = 0.0;
    std::vector<double> primalX_, dualY_, redCost_;
    long totalIters_ = 0;
    long numFactor_ = 0;
    long iterLimit_ = 200000;
    bool basisValid_ = false;

    // -- internals -----------------------------------------------------------
    void ensureCsc();
    double nonbasicValue(int j) const;
    void computeBasicSolution();
    bool refactorize();  ///< rebuild the factor from basic_; false if singular
    /// Recompute the fill/update/residual refactorization triggers from the
    /// fresh factor's fill.
    void resetFactorPolicy();
    bool needRefactor() const {
        return factorStale_ || updatesSince_ >= updateLimit_ ||
               factorFill() > fillLimit_;
    }
    // Kernel dispatch (PFI eta file vs LU).
    void factFtran(std::vector<double>& x) const;
    void factBtran(std::vector<double>& y) const;
    /// Sparse dispatch with telemetry: solve through the reach kernels when
    /// the factor offers them, fall back to dense + support rebuild. `cls`
    /// selects the LU factor's per-RHS-class density controller (ignored by
    /// the PFI path, which has no hysteresis state).
    void factFtranSparse(SparseVec& x, LuRhs cls = LuRhs::Column);
    void factBtranSparse(SparseVec& y, LuRhs cls = LuRhs::Row);
    /// Size the sparse work vectors to the current row count.
    void ensureSparseWork();
    void countSolve(bool sparse, const SparseVec& v) {
        ++(sparse ? hyperSolves_ : denseSolves_);
        solveNnzSum_ += static_cast<long>(v.nnz());
    }
    /// Index list a consumer loop should walk for v: its support when the
    /// solve stayed sparse, 0..m-1 (iota_) after a dense-result solve. Both
    /// ascend, so tie-break-sensitive loops see the same visit order.
    const std::vector<int>& support(const SparseVec& v) const {
        return v.dense ? iota_ : v.idx;
    }
    /// Hot-loop variant of support(): runs f(i) over the visit order above,
    /// but gives the dense case a plain counted loop so the compiler can
    /// unroll/vectorize it instead of chasing iota_ through a gather.
    template <class F>
    static void forSupport(const SparseVec& v, F&& f) {
        if (v.dense) {
            const int m = v.dim();
            for (int i = 0; i < m; ++i) f(i);
        } else {
            for (int i : v.idx) f(i);
        }
    }
    /// Absorb a simplex pivot into the factor. On LU update failure marks
    /// the factor stale — the pivot loop refactorizes before the next solve.
    void factUpdate(int leaveRow, const SparseVec& w);
    /// Max residual of A x over all rows for the current (incrementally
    /// updated) solution; large values mean the factor has drifted.
    double solutionResidual() const;
    void pivot(int enter, int leaveRow, const SparseVec& w,
               double t, VStat enterFrom);
    void priceDuals(const std::vector<double>& cb, std::vector<double>& y) const;
    double columnDot(int j, const std::vector<double>& y) const;
    /// w = B^{-1} a_j for an entering column; in LU mode this also caches
    /// the Forrest–Tomlin spike consumed by the subsequent factUpdate().
    void ftranColumn(int j, SparseVec& w);
    /// Partial pricing: pick an entering variable (devex-scored candidate
    /// window; full lowest-index scan in Bland mode). Returns -1 if a full
    /// sweep proves no eligible candidate exists.
    int pricePrimal(bool phase1, const std::vector<double>& y,
                    const std::vector<double>& perturb, bool bland,
                    int& sigma);
    void resetDevex();

    SolveStatus primalSimplex(bool phase1Allowed);
    SolveStatus dualSimplex();
    double infeasibilitySum() const;
    void extractSolution();
    void setupSlackBasis();
};

}  // namespace lp
