// Bounded-variable revised simplex (primal phase I/II + dual reoptimize).
//
// This plays the role CPLEX/SoPlex play for SCIP in the paper: the LP
// relaxation engine under branch-and-cut. It supports
//   * solving from scratch (composite phase-1 primal simplex),
//   * adding rows (cuts) and reoptimizing with the dual simplex,
//   * changing column bounds (branching) and reoptimizing dually,
//   * dual values and reduced costs (needed for reduced-cost fixing and
//     dual-ascent-style bound reasoning in the Steiner solver).
//
// The basis inverse is kept explicitly (dense) with rank-one pivot updates
// and periodic refactorization; instances in this project are small enough
// that the O(m^2)/iteration cost is not the bottleneck.
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace lp {

enum class SolveStatus {
    Optimal,
    Infeasible,
    Unbounded,
    IterLimit,
    NumericalTrouble,
};

const char* toString(SolveStatus s);

class SimplexSolver {
public:
    SimplexSolver() = default;

    /// Load a model (copies rows/cols into internal column-wise form).
    void load(const LpModel& model);

    /// Solve from scratch (fresh slack basis, primal phase I/II).
    SolveStatus solve();

    /// Append rows (e.g. separated cuts) and reoptimize with dual simplex.
    SolveStatus addRowsAndResolve(const std::vector<Row>& rows);

    /// Change bounds of a structural column and reoptimize dually.
    /// Multiple bound changes may be batched before a single resolve().
    void changeBounds(int col, double lb, double ub);

    /// Change the side bounds (lhs/rhs) of an existing row — equivalent to
    /// re-bounding its slack variable. Used for node-locally activated rows
    /// (constraint branching).
    void changeRowBounds(int row, double lhs, double rhs) {
        changeBounds(n_ + row, lhs, rhs);
    }

    /// Reoptimize after bound changes (dual simplex; falls back to a fresh
    /// primal solve on numerical trouble).
    SolveStatus resolve();

    // -- solution access (valid after Optimal) ------------------------------
    double objective() const { return obj_; }
    const std::vector<double>& primal() const { return primalX_; }
    /// Dual multiplier of row i (sign convention: c - A'y are the reduced
    /// costs; y_i >= 0 for binding >= rows, <= 0 for binding <= rows).
    const std::vector<double>& duals() const { return dualY_; }
    /// Reduced cost of structural column j.
    const std::vector<double>& reducedCosts() const { return redCost_; }

    long iterations() const { return totalIters_; }
    int numRows() const { return m_; }
    int numCols() const { return n_; }

    /// Iteration limit per (re)solve; guards against cycling in pathological
    /// cases. Default is generous.
    void setIterLimit(long lim) { iterLimit_ = lim; }

private:
    enum VStat : unsigned char { AtLower, AtUpper, Basic, FreeZero };

    // Column-wise sparse matrix over [structural | slack] variables.
    struct SparseCol {
        std::vector<std::pair<int, double>> entries;  // (row, coef)
    };

    int n_ = 0;  ///< structural columns
    int m_ = 0;  ///< rows
    std::vector<SparseCol> cols_;   ///< size n_ + m_ (slack j has single -1)
    std::vector<double> cost_;      ///< size n_ + m_ (slack cost 0)
    std::vector<double> lb_, ub_;   ///< size n_ + m_
    std::vector<VStat> vstat_;      ///< size n_ + m_
    std::vector<int> basic_;        ///< size m_: variable index basic in row
    std::vector<std::vector<double>> binv_;  ///< m_ x m_ explicit B^{-1}
    std::vector<double> xb_;        ///< basic variable values
    std::vector<double> xn_;        ///< cached nonbasic values (all vars)

    double obj_ = 0.0;
    std::vector<double> primalX_, dualY_, redCost_;
    long totalIters_ = 0;
    long iterLimit_ = 200000;
    bool basisValid_ = false;

    // -- internals -----------------------------------------------------------
    double nonbasicValue(int j) const;
    void computeBasicSolution();
    bool refactorize();  ///< recompute binv_ from basic_; false if singular
    void pivot(int enter, int leaveRow, const std::vector<double>& w,
               double t, VStat enterFrom);
    void priceDuals(const std::vector<double>& cb, std::vector<double>& y) const;
    double columnDot(int j, const std::vector<double>& y) const;
    void ftran(int j, std::vector<double>& w) const;  ///< w = B^{-1} a_j

    SolveStatus primalSimplex(bool phase1Allowed);
    SolveStatus dualSimplex();
    double infeasibilitySum() const;
    void extractSolution();
    void setupSlackBasis();
};

}  // namespace lp
