// Indexed sparse vector for the hyper-sparse simplex pipeline.
//
// A SparseVec is a dense value array paired with an explicit nonzero index
// list and a touched-flag scratch array. The invariant every producer
// maintains is
//
//     val[i] == 0.0  for every i not listed in idx,
//
// i.e. idx is a *superset* of the support (it may contain positions whose
// value cancelled to an exact zero — consumers that care re-check the
// value). flag[i] != 0 iff i is listed in idx, so membership tests during
// reach computation are O(1) and clearing is O(|idx|), never O(m).
//
// idx is kept sorted ascending by every LuFactor/EtaFile solve entry point.
// That is not cosmetic: the simplex ratio tests and devex updates break
// exact ties by iteration order, so producing the support in ascending
// order is what keeps the hyper-sparse and dense solve paths bit-identical
// (see src/lp/README.md, "Hyper-sparse solves").
//
// Dense-result mode: a solve that ran through the dense fallback kernel
// marks the vector dense instead of rescanning all m positions to rebuild
// idx. In that state val alone is authoritative, idx is empty and flag is
// all-zero; consumers iterate 0..m-1 (ascending, so tie-break order is
// unchanged) with the same val != 0 guards the sparse walk needs anyway.
#pragma once

#include <algorithm>
#include <vector>

namespace lp {

struct SparseVec {
    std::vector<double> val;  ///< dense values, size dim
    std::vector<int> idx;     ///< superset of the support (empty when dense)
    std::vector<char> flag;   ///< flag[i] != 0 iff i is in idx
    bool dense = false;       ///< val authoritative, idx/flag unmaintained

    int dim() const { return static_cast<int>(val.size()); }

    /// Resize to dimension m and clear. Shrinking keeps no stale support.
    void reset(int m) {
        val.assign(m, 0.0);
        flag.assign(m, 0);
        idx.clear();
        dense = false;
    }

    /// Zero out the entries and empty the support: O(|idx|) in sparse mode,
    /// O(m) after a dense-mode solve (matching what a dense pipeline pays).
    void clear() {
        if (dense) {
            std::fill(val.begin(), val.end(), 0.0);
            dense = false;
            return;  // idx already empty, flag already all-zero
        }
        for (int i : idx) {
            val[i] = 0.0;
            flag[i] = 0;
        }
        idx.clear();
    }

    /// Enter dense-result mode: drop the (stale) support bookkeeping and
    /// declare val authoritative. Called by the solve wrappers right before
    /// running a dense fallback kernel.
    void markDense() {
        for (int i : idx) flag[i] = 0;
        idx.clear();
        dense = true;
    }

    /// Support size a consumer loop walks: |idx| for a sparse result, all
    /// m positions after a dense-mode solve. O(1) — deliberately *not* a
    /// val scan; this feeds the density EWMA and the solve telemetry on
    /// every solve, and an O(m) count there would tax exactly the dense
    /// fallback path the hyper-sparse machinery exists to keep cheap.
    int nnz() const {
        return dense ? dim() : static_cast<int>(idx.size());
    }

    /// Add i to the support if not yet present (value untouched).
    void touch(int i) {
        if (!flag[i]) {
            flag[i] = 1;
            idx.push_back(i);
        }
    }

    /// Set value and record the index.
    void set(int i, double v) {
        val[i] = v;
        touch(i);
    }

    void sortSupport() { std::sort(idx.begin(), idx.end()); }

    /// Rebuild the support from the dense values (exits dense mode for
    /// consumers that need an explicit index list). Produces the exact
    /// nonzero set, ascending. O(m).
    void rebuildSupport() {
        for (int i : idx) flag[i] = 0;
        idx.clear();
        dense = false;
        const int m = dim();
        for (int i = 0; i < m; ++i) {
            if (val[i] != 0.0) {
                flag[i] = 1;
                idx.push_back(i);
            }
        }
    }
};

}  // namespace lp
