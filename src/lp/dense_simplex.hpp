// Dense-basis reference simplex (the pre-eta-file engine, kept verbatim).
//
// This is the original bounded-variable revised simplex with an explicit
// dense B^{-1}, O(m^2)-per-iteration updates and full Dantzig pricing. It is
// retained for two purposes only:
//   * equivalence testing: the sparse engine in simplex.hpp must reproduce
//     its optimal objective values within tolerance on randomized models;
//   * benchmarking: BM_SimplexWarm* in bench/micro_kernels.cpp measures the
//     sparse engine's reoptimization speedup against this baseline.
// Production code (cip::Solver) must use lp::SimplexSolver instead.
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"  // SolveStatus

namespace lp {

class DenseSimplexSolver {
public:
    DenseSimplexSolver() = default;

    /// Load a model (copies rows/cols into internal column-wise form).
    void load(const LpModel& model);

    /// Solve from scratch (fresh slack basis, primal phase I/II).
    SolveStatus solve();

    /// Append rows (e.g. separated cuts) and reoptimize with dual simplex.
    SolveStatus addRowsAndResolve(const std::vector<Row>& rows);

    /// Change bounds of a structural column and reoptimize dually.
    void changeBounds(int col, double lb, double ub);

    /// Change the side bounds (lhs/rhs) of an existing row.
    void changeRowBounds(int row, double lhs, double rhs) {
        changeBounds(n_ + row, lhs, rhs);
    }

    /// Reoptimize after bound changes (dual simplex with primal fallback).
    SolveStatus resolve();

    // -- solution access (valid after Optimal) ------------------------------
    double objective() const { return obj_; }
    const std::vector<double>& primal() const { return primalX_; }
    const std::vector<double>& duals() const { return dualY_; }
    const std::vector<double>& reducedCosts() const { return redCost_; }

    long iterations() const { return totalIters_; }
    int numRows() const { return m_; }
    int numCols() const { return n_; }

    void setIterLimit(long lim) { iterLimit_ = lim; }

private:
    enum VStat : unsigned char { AtLower, AtUpper, Basic, FreeZero };

    // Column-wise sparse matrix over [structural | slack] variables.
    struct SparseCol {
        std::vector<std::pair<int, double>> entries;  // (row, coef)
    };

    int n_ = 0;  ///< structural columns
    int m_ = 0;  ///< rows
    std::vector<SparseCol> cols_;   ///< size n_ + m_ (slack j has single -1)
    std::vector<double> cost_;      ///< size n_ + m_ (slack cost 0)
    std::vector<double> lb_, ub_;   ///< size n_ + m_
    std::vector<VStat> vstat_;      ///< size n_ + m_
    std::vector<int> basic_;        ///< size m_: variable index basic in row
    std::vector<std::vector<double>> binv_;  ///< m_ x m_ explicit B^{-1}
    std::vector<double> xb_;        ///< basic variable values

    double obj_ = 0.0;
    std::vector<double> primalX_, dualY_, redCost_;
    long totalIters_ = 0;
    long iterLimit_ = 200000;
    bool basisValid_ = false;

    double nonbasicValue(int j) const;
    void computeBasicSolution();
    bool refactorize();
    void pivot(int enter, int leaveRow, const std::vector<double>& w,
               double t, VStat enterFrom);
    void priceDuals(const std::vector<double>& cb, std::vector<double>& y) const;
    double columnDot(int j, const std::vector<double>& y) const;
    void ftran(int j, std::vector<double>& w) const;

    SolveStatus primalSimplex(bool phase1Allowed);
    SolveStatus dualSimplex();
    double infeasibilitySum() const;
    void extractSolution();
    void setupSlackBasis();
};

}  // namespace lp
