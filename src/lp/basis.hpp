// Basis snapshots: the warm-start currency between the LP engine and the
// branch-and-bound layer.
//
// A simplex basis is fully described by the status of every variable
// (structural columns first, then one slack per row): the Basic set plus the
// bound each nonbasic variable rests at. Row assignment and factorization
// are NOT part of the snapshot — SimplexSolver::loadBasis() re-derives both
// by refactorizing, which also makes snapshots robust against the LP having
// gained or lost trailing rows (cuts) since the snapshot was taken: slacks
// of unknown new rows enter the basis, statuses of vanished rows are
// dropped.
//
// Contract used by cip::Solver:
//   * after an Optimal node LP, basis() is attached to the node's children;
//   * before a child's first LP, loadBasis() restores the parent basis and
//     the dual simplex reoptimizes from there;
//   * strong-branching probes snapshot before probing and restore after, so
//     a probe costs its own pivots only, not a re-solve of the node LP.
// loadBasis() returning false means the snapshot could not be applied
// (column count changed, or the implied basis matrix is singular); callers
// must fall back to a cold solve.
#pragma once

#include <vector>

namespace lp {

/// Simplex status of one variable (structural or slack).
enum class VarStatus : unsigned char {
    AtLower,   ///< nonbasic at its lower bound
    AtUpper,   ///< nonbasic at its upper bound
    Basic,     ///< in the basis
    FreeZero,  ///< nonbasic free variable, held at zero
};

/// Snapshot of a simplex basis over n structural columns and m rows.
struct Basis {
    int cols = 0;  ///< structural column count at snapshot time
    int rows = 0;  ///< row count at snapshot time
    std::vector<VarStatus> status;  ///< size cols + rows (slacks trailing)

    bool valid() const {
        return !status.empty() &&
               static_cast<int>(status.size()) == cols + rows;
    }
};

}  // namespace lp
