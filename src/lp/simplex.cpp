#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lp {

namespace {
constexpr double kFeasTol = 1e-7;    // primal feasibility tolerance
constexpr double kOptTol = 1e-7;     // reduced-cost tolerance
constexpr double kPivotTol = 1e-9;   // minimum admissible pivot magnitude
constexpr double kResidTol = 1e-8;   // drift backstop on ||A x||
// Fill-ratio refactorization policy: refactorize once the factor holds more
// than this multiple of (fresh fill + m) nonzeros. Dense-ish updates hit
// the limit quickly; sparse ones are allowed to chain much longer than the
// old fixed 64-eta budget.
constexpr double kRefactorFillGrowth = 2.0;
constexpr double kDevexReset = 1e12;  // weight overflow -> reference reset
}  // namespace

const char* toString(SolveStatus s) {
    switch (s) {
        case SolveStatus::Optimal: return "optimal";
        case SolveStatus::Infeasible: return "infeasible";
        case SolveStatus::Unbounded: return "unbounded";
        case SolveStatus::IterLimit: return "iterlimit";
        case SolveStatus::NumericalTrouble: return "numerical";
    }
    return "?";
}

const char* toString(Factorization f) {
    switch (f) {
        case Factorization::PFI: return "pfi";
        case Factorization::LU: return "lu";
    }
    return "?";
}

const char* toString(Pricing p) {
    switch (p) {
        case Pricing::Devex: return "devex";
        case Pricing::DSE: return "dse";
    }
    return "?";
}

void SimplexSolver::load(const LpModel& model) {
    n_ = model.numCols();
    m_ = model.numRows();
    const int tot = n_ + m_;
    cols_.assign(tot, {});
    cost_.assign(tot, 0.0);
    lb_.assign(tot, 0.0);
    ub_.assign(tot, 0.0);
    for (int j = 0; j < n_; ++j) {
        cost_[j] = model.col(j).obj;
        lb_[j] = model.col(j).lb;
        ub_[j] = model.col(j).ub;
    }
    for (int i = 0; i < m_; ++i) {
        const Row& r = model.row(i);
        for (const auto& [j, v] : r.coefs) {
            if (j < 0 || j >= n_) throw std::out_of_range("row coef column");
            if (v != 0.0) cols_[j].entries.emplace_back(i, v);
        }
        // Slack s_i with A x - s = 0, s in [lhs, rhs].
        cols_[n_ + i].entries.emplace_back(i, -1.0);
        lb_[n_ + i] = r.lhs;
        ub_[n_ + i] = r.rhs;
    }
    cscDirty_ = true;
    basisValid_ = false;
    totalIters_ = 0;
    pricingPos_ = 0;
}

void SimplexSolver::ensureCsc() {
    if (!cscDirty_) return;
    const int tot = n_ + m_;
    std::size_t nnz = 0;
    for (const SparseCol& c : cols_) nnz += c.entries.size();
    cscPtr_.assign(tot + 1, 0);
    cscRow_.resize(nnz);
    cscVal_.resize(nnz);
    std::size_t p = 0;
    for (int j = 0; j < tot; ++j) {
        cscPtr_[j] = static_cast<int>(p);
        for (const auto& [row, coef] : cols_[j].entries) {
            cscRow_[p] = row;
            cscVal_[p] = coef;
            ++p;
        }
    }
    cscPtr_[tot] = static_cast<int>(p);

    // CSR transpose via counting sort over the CSC arrays.
    csrPtr_.assign(m_ + 1, 0);
    for (std::size_t q = 0; q < nnz; ++q) ++csrPtr_[cscRow_[q] + 1];
    for (int i = 0; i < m_; ++i) csrPtr_[i + 1] += csrPtr_[i];
    csrCol_.resize(nnz);
    csrVal_.resize(nnz);
    std::vector<int> fill(csrPtr_.begin(), csrPtr_.end() - 1);
    for (int j = 0; j < tot; ++j)
        for (int q = cscPtr_[j]; q < cscPtr_[j + 1]; ++q) {
            const int at = fill[cscRow_[q]]++;
            csrCol_[at] = j;
            csrVal_[at] = cscVal_[q];
        }
    cscDirty_ = false;
}

double SimplexSolver::nonbasicValue(int j) const {
    switch (vstat_[j]) {
        case VStat::AtLower: return lb_[j];
        case VStat::AtUpper: return ub_[j];
        case VStat::FreeZero: return 0.0;
        case VStat::Basic: break;
    }
    return 0.0;  // not reached for nonbasic
}

void SimplexSolver::resetDevex() {
    devex_.assign(static_cast<std::size_t>(n_) + m_, 1.0);
}

void SimplexSolver::setupSlackBasis() {
    const int tot = n_ + m_;
    vstat_.assign(tot, VStat::AtLower);
    for (int j = 0; j < tot; ++j) {
        if (lb_[j] > -kInf)
            vstat_[j] = VStat::AtLower;
        else if (ub_[j] < kInf)
            vstat_[j] = VStat::AtUpper;
        else
            vstat_[j] = VStat::FreeZero;
    }
    basic_.resize(m_);
    // B = -I for the all-slack basis: one trivial pivot per row.
    if (factKind_ == Factorization::PFI) {
        eta_.clear(m_);
        for (int i = 0; i < m_; ++i) eta_.appendUnit(i, -1.0);
    } else {
        lu_.loadSlack(m_, -1.0);
    }
    for (int i = 0; i < m_; ++i) {
        basic_[i] = n_ + i;
        vstat_[n_ + i] = VStat::Basic;
    }
    ++numFactor_;
    resetFactorPolicy();
    resetDevex();
    // DSE weights are exactly 1 for the slack basis (B = -I).
    dseGamma_.assign(m_, 1.0);
    dseFresh_ = true;
    basisValid_ = true;
    computeBasicSolution();
}

void SimplexSolver::resetFactorPolicy() {
    baseFill_ = factorFill();
    fillLimit_ =
        static_cast<long>(kRefactorFillGrowth * static_cast<double>(baseFill_ + m_));
    updateLimit_ = std::max(64, m_);
    residInterval_ = std::clamp(m_ / 2, 16, 128);
    updatesSince_ = 0;
    factorStale_ = false;
}

void SimplexSolver::factFtran(std::vector<double>& x) const {
    if (factKind_ == Factorization::PFI)
        eta_.ftran(x);
    else
        lu_.ftran(x);
}

void SimplexSolver::factBtran(std::vector<double>& y) const {
    if (factKind_ == Factorization::PFI)
        eta_.btran(y);
    else
        lu_.btran(y);
}

void SimplexSolver::ensureSparseWork() {
    if (wVec_.dim() != m_) wVec_.reset(m_);
    if (rhoVec_.dim() != m_) rhoVec_.reset(m_);
    if (tauVec_.dim() != m_) tauVec_.reset(m_);
    if (flipVec_.dim() != m_) flipVec_.reset(m_);
    if (static_cast<int>(iota_.size()) != m_) {
        iota_.resize(m_);
        std::iota(iota_.begin(), iota_.end(), 0);
    }
}

void SimplexSolver::factFtranSparse(SparseVec& x, LuRhs cls) {
    const bool sparse = factKind_ == Factorization::PFI
                            ? eta_.ftranSparseVec(x)
                            : lu_.ftranSparse(x, cls);
    countSolve(sparse, x);
}

void SimplexSolver::factBtranSparse(SparseVec& y, LuRhs cls) {
    const bool sparse = factKind_ == Factorization::PFI
                            ? eta_.btranSparseVec(y)
                            : lu_.btranSparse(y, cls);
    countSolve(sparse, y);
}

void SimplexSolver::factUpdate(int leaveRow, const SparseVec& w) {
    if (factKind_ == Factorization::PFI) {
        // The update eta maps w = B^{-1} a_enter to e_leaveRow; w is exactly
        // zero outside its support, which is the pattern overload's
        // contract. A dense-mode w has no support list — scan all rows.
        if (w.dense)
            eta_.append(leaveRow, w.val);
        else
            eta_.append(leaveRow, w.val, w.idx);
        ++updatesSince_;
    } else if (lu_.update(leaveRow)) {
        ++updatesSince_;
    } else {
        // Unusable Forrest–Tomlin pivot: the factor is invalid, but basic_
        // is already correct — the pivot loop refactorizes before the next
        // FTRAN/BTRAN touches it.
        factorStale_ = true;
    }
}

void SimplexSolver::computeBasicSolution() {
    // x_B = -B^{-1} * (sum over nonbasic j: a_j * value_j)
    ensureCsc();
    std::vector<double> rhs(m_, 0.0);
    const int tot = n_ + m_;
    for (int j = 0; j < tot; ++j) {
        if (vstat_[j] == VStat::Basic) continue;
        const double v = nonbasicValue(j);
        if (v == 0.0) continue;
        for (int p = cscPtr_[j]; p < cscPtr_[j + 1]; ++p)
            rhs[cscRow_[p]] += cscVal_[p] * v;
    }
    factFtran(rhs);
    xb_.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) xb_[i] = -rhs[i];
}

bool SimplexSolver::refactorize() {
    ensureCsc();
    ++numFactor_;
    if (factKind_ == Factorization::LU) {
        auto snapped = [&](int j) {
            if (lb_[j] > -kInf) return VStat::AtLower;
            if (ub_[j] < kInf) return VStat::AtUpper;
            return VStat::FreeZero;
        };
        std::vector<int> rowOfSlot;
        bool ok = lu_.factorize(basic_, cscPtr_, cscRow_, cscVal_, rowOfSlot);
        if (!ok) {
            // Singular-basis repair: every slot the factorization could not
            // pivot gets the slack of a row no pivot claimed (the extended
            // basis is nonsingular because each slack has a lone -1 in its
            // own row). Demoted variables go to a finite bound.
            std::vector<char> used(m_, 0);
            for (int s = 0; s < m_; ++s)
                if (rowOfSlot[s] >= 0) used[rowOfSlot[s]] = 1;
            std::vector<int> freeRows;
            for (int r = 0; r < m_; ++r)
                if (!used[r] && vstat_[n_ + r] != VStat::Basic)
                    freeRows.push_back(r);
            std::size_t fi = 0;
            bool repaired = true;
            for (int s = 0; s < m_; ++s) {
                if (rowOfSlot[s] >= 0) continue;
                if (fi >= freeRows.size()) {
                    repaired = false;
                    break;
                }
                const int r = freeRows[fi++];
                const int old = basic_[s];
                vstat_[old] = snapped(old);
                basic_[s] = n_ + r;
                vstat_[n_ + r] = VStat::Basic;
            }
            if (repaired)
                ok = lu_.factorize(basic_, cscPtr_, cscRow_, cscVal_,
                                   rowOfSlot);
            if (!ok) return false;
        }
        std::vector<int> newBasic(m_);
        for (int s = 0; s < m_; ++s) newBasic[rowOfSlot[s]] = basic_[s];
        basic_ = std::move(newBasic);
        // DSE weights are attached to the basic variable of a slot, not to
        // the matrix row, so they move with the permutation just applied to
        // basic_. Leaving them in the old order silently feeds scrambled
        // norms to the exact Forrest–Goldfarb recurrence after every
        // refactorization.
        permuteDseGamma(rowOfSlot);
        resetFactorPolicy();
        return true;
    }

    // PFI: rebuild the eta file with one Gaussian pivot per basic column.
    // Columns are processed sparsest-first (a cheap Markowitz surrogate);
    // each step FTRANs the column through the etas built so far — tracking
    // the touched pattern so the work and the appended eta are O(fill), not
    // O(m) — and pivots on the largest entry among still-unassigned rows.
    // The pivot row becomes the column's basis position, so basic_ is
    // re-permuted here.
    std::vector<int> order(m_);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return cols_[basic_[a]].entries.size() < cols_[basic_[b]].entries.size();
    });
    eta_.clear(m_);
    std::vector<int> rowOfSlot(m_, -1);
    std::vector<int> newBasic(m_, -1);
    std::vector<char> rowUsed(m_, 0);
    std::vector<double> w(m_, 0.0);
    std::vector<int> pattern;
    std::vector<char> mark(m_, 0);
    for (int k : order) {
        const int j = basic_[k];
        pattern.clear();
        for (int p = cscPtr_[j]; p < cscPtr_[j + 1]; ++p) {
            w[cscRow_[p]] = cscVal_[p];
            mark[cscRow_[p]] = 1;
            pattern.push_back(cscRow_[p]);
        }
        eta_.ftranSparse(w, pattern, mark);
        int r = -1;
        double best = 0.0;
        for (int i : pattern) {
            if (rowUsed[i]) continue;
            const double a = std::fabs(w[i]);
            if (a > best) {
                best = a;
                r = i;
            }
        }
        if (r < 0 || best < 1e-11) return false;  // singular basis
        eta_.append(r, w, pattern);
        newBasic[r] = j;
        rowOfSlot[k] = r;
        rowUsed[r] = 1;
        for (int i : pattern) {
            w[i] = 0.0;
            mark[i] = 0;
        }
    }
    basic_ = std::move(newBasic);
    permuteDseGamma(rowOfSlot);  // weights follow their slot, see LU branch
    resetFactorPolicy();
    return true;
}

void SimplexSolver::permuteDseGamma(const std::vector<int>& rowOfSlot) {
    if (static_cast<int>(dseGamma_.size()) != m_) return;
    std::vector<double> g(m_, 1.0);
    for (int s = 0; s < m_; ++s)
        if (rowOfSlot[s] >= 0) g[rowOfSlot[s]] = dseGamma_[s];
    dseGamma_ = std::move(g);
}

double SimplexSolver::solutionResidual() const {
    // ||A x - s|| over the full [structural | slack] system: exact zero for
    // a perfectly computed basic solution, grows with eta-file drift.
    std::vector<double> r(m_, 0.0);
    const int tot = n_ + m_;
    double scale = 1.0;
    std::vector<double> xfull(tot, 0.0);
    for (int j = 0; j < tot; ++j)
        if (vstat_[j] != VStat::Basic) xfull[j] = nonbasicValue(j);
    for (int i = 0; i < m_; ++i) xfull[basic_[i]] = xb_[i];
    for (int j = 0; j < tot; ++j) {
        const double v = xfull[j];
        if (v == 0.0) continue;
        scale = std::max(scale, std::fabs(v));
        for (int p = cscPtr_[j]; p < cscPtr_[j + 1]; ++p)
            r[cscRow_[p]] += cscVal_[p] * v;
    }
    double worst = 0.0;
    for (int i = 0; i < m_; ++i) worst = std::max(worst, std::fabs(r[i]));
    return worst / scale;
}

void SimplexSolver::priceDuals(const std::vector<double>& cb,
                               std::vector<double>& y) const {
    y = cb;
    factBtran(y);
}

double SimplexSolver::columnDot(int j, const std::vector<double>& y) const {
    double s = 0.0;
    for (int p = cscPtr_[j]; p < cscPtr_[j + 1]; ++p)
        s += cscVal_[p] * y[cscRow_[p]];
    return s;
}

void SimplexSolver::ftranColumn(int j, SparseVec& w) {
    w.clear();
    for (int p = cscPtr_[j]; p < cscPtr_[j + 1]; ++p)
        w.set(cscRow_[p], cscVal_[p]);
    if (factKind_ == Factorization::PFI) {
        w.markDense();
        eta_.ftran(w.val);
        countSolve(false, w);
    } else {
        // Caches the FT spike for the coming pivot.
        countSolve(lu_.ftranSpikeSparse(w), w);
    }
}

void SimplexSolver::pivot(int enter, int leaveRow, const SparseVec& w,
                          double enterValue, VStat leaveTo) {
    const int leaveVar = basic_[leaveRow];
    // Incremental update of basic values: the entering variable moves by dz
    // from its nonbasic value, changing x_B by -w*dz. O(nnz w) instead of a
    // full recompute; the residual check + refactorization clear accumulated
    // drift.
    const double dz = enterValue - nonbasicValue(enter);
    forSupport(w, [&](int i) { xb_[i] -= w.val[i] * dz; });
    factUpdate(leaveRow, w);
    basic_[leaveRow] = enter;
    vstat_[enter] = VStat::Basic;
    vstat_[leaveVar] = leaveTo;
    xb_[leaveRow] = enterValue;
    dseFresh_ = false;  // re-earned by the dual loop's own weight update
}

double SimplexSolver::infeasibilitySum() const {
    double s = 0.0;
    for (int i = 0; i < m_; ++i) {
        const int j = basic_[i];
        if (xb_[i] < lb_[j] - kFeasTol) s += lb_[j] - xb_[i];
        if (xb_[i] > ub_[j] + kFeasTol) s += xb_[i] - ub_[j];
    }
    return s;
}

int SimplexSolver::pricePrimal(bool phase1, const std::vector<double>& y,
                               const std::vector<double>& perturb, bool bland,
                               int& sigma) {
    const int tot = n_ + m_;
    auto redCostOf = [&](int j) {
        const double cj =
            phase1 ? 0.0 : cost_[j] + (perturb.empty() ? 0.0 : perturb[j]);
        return cj - columnDot(j, y);
    };
    auto eligible = [&](int j, double d, int& sig) {
        if ((vstat_[j] == VStat::AtLower || vstat_[j] == VStat::FreeZero) &&
            d < -kOptTol) {
            sig = 1;  // entering increases from its bound
            return true;
        }
        if ((vstat_[j] == VStat::AtUpper || vstat_[j] == VStat::FreeZero) &&
            d > kOptTol) {
            sig = -1;  // entering decreases from its bound
            return true;
        }
        return false;
    };

    if (bland) {
        // Anti-cycling: lowest eligible index, full scan. Also the mode any
        // claim of optimality under degeneracy ultimately rests on.
        for (int j = 0; j < tot; ++j) {
            if (vstat_[j] == VStat::Basic) continue;
            int sig = 0;
            if (eligible(j, redCostOf(j), sig)) {
                sigma = sig;
                return j;
            }
        }
        return -1;
    }

    // Partial pricing: sweep rotating windows starting at the cursor and
    // stop at the first window holding any candidate; pick the best devex
    // score (d^2 / weight) within it. Declaring optimality requires the
    // sweep to cover every column, so -1 is still exact.
    const int window = std::max(32, tot / 8);
    int best = -1, bestSig = 0;
    double bestScore = 0.0;
    int scanned = 0;
    int pos = (tot > 0) ? pricingPos_ % tot : 0;
    while (scanned < tot) {
        const int end = std::min(pos + window, tot);
        for (int j = pos; j < end; ++j) {
            if (vstat_[j] == VStat::Basic) continue;
            const double d = redCostOf(j);
            int sig = 0;
            if (!eligible(j, d, sig)) continue;
            const double score = d * d / devex_[j];
            if (score > bestScore) {
                bestScore = score;
                best = j;
                bestSig = sig;
            }
        }
        scanned += end - pos;
        pos = (end == tot) ? 0 : end;
        if (best >= 0) break;
    }
    pricingPos_ = pos;
    sigma = bestSig;
    return best;
}

SolveStatus SimplexSolver::primalSimplex(bool phase1Allowed) {
    ensureCsc();
    ensureSparseWork();
    std::vector<double> cb(m_), y;
    SparseVec& w = wVec_;
    bool bland = false;
    int stall = 0;
    double lastMeasure = kInf;
    long iters = 0;
    int sinceCheck = 0;
    // Anti-degeneracy cost perturbation (classical): deterministic tiny
    // offsets break ties; once perturbed-optimal, the perturbation is
    // removed and optimization continues with the true costs.
    std::vector<double> perturb;
    auto costOf = [&](int j) {
        return cost_[j] + (perturb.empty() ? 0.0 : perturb[j]);
    };

    while (true) {
        if (++iters > iterLimit_) return SolveStatus::IterLimit;
        ++totalIters_;
        // Drift backstop: refactorize when the factor has outgrown its fill
        // budget (or a failed FT update marked it stale), or when the
        // periodic residual check detects that the incrementally updated
        // solution no longer satisfies A x = 0.
        if (needRefactor()) {
            if (!refactorize()) return SolveStatus::NumericalTrouble;
            computeBasicSolution();
        } else if (++sinceCheck >= residInterval_) {
            sinceCheck = 0;
            if (solutionResidual() > kResidTol) {
                if (!refactorize()) return SolveStatus::NumericalTrouble;
                computeBasicSolution();
            }
        }

        const double infeas = infeasibilitySum();
        const bool phase1 = infeas > kFeasTol * (1 + m_);
        if (phase1 && !phase1Allowed) return SolveStatus::NumericalTrouble;

        // Cost vector for pricing: real costs in phase 2, infeasibility
        // gradient in phase 1.
        if (phase1) {
            for (int i = 0; i < m_; ++i) {
                const int j = basic_[i];
                cb[i] = 0.0;
                if (xb_[i] < lb_[j] - kFeasTol) cb[i] = -1.0;
                else if (xb_[i] > ub_[j] + kFeasTol) cb[i] = 1.0;
            }
        } else {
            for (int i = 0; i < m_; ++i) cb[i] = costOf(basic_[i]);
        }
        priceDuals(cb, y);

        // Progress / stalling detection (switch to Bland's rule on stall).
        double measure;
        if (phase1) {
            measure = infeas;
        } else {
            measure = 0.0;
            for (int i = 0; i < m_; ++i) measure += cost_[basic_[i]] * xb_[i];
            const int tot = n_ + m_;
            for (int j = 0; j < tot; ++j)
                if (vstat_[j] != VStat::Basic && cost_[j] != 0.0)
                    measure += cost_[j] * nonbasicValue(j);
        }
        if (measure < lastMeasure - 1e-10) {
            stall = 0;
            bland = false;
        } else {
            ++stall;
            if (stall == 60 && !phase1 && perturb.empty()) {
                // Degenerate plateau: perturb the phase-2 costs.
                const int tot = n_ + m_;
                perturb.assign(tot, 0.0);
                for (int j = 0; j < tot; ++j) {
                    const unsigned h =
                        static_cast<unsigned>(j) * 2654435761u;
                    perturb[j] = 1e-7 * (1.0 + double(h % 1024) / 1024.0);
                }
            }
            if (stall > 500) bland = true;
        }
        lastMeasure = measure;

        // Pricing: pick entering variable.
        int sigma = 0;
        const int enter = pricePrimal(phase1, y, perturb, bland, sigma);
        if (enter < 0) {
            // No improving direction anywhere.
            if (phase1) return SolveStatus::Infeasible;
            if (!perturb.empty()) {
                // Perturbed-optimal: drop the perturbation and continue
                // with the true costs (usually a handful of extra pivots).
                perturb.clear();
                stall = 0;
                lastMeasure = kInf;
                continue;
            }
            extractSolution();
            return SolveStatus::Optimal;
        }

        ftranColumn(enter, w);

        // Two-pass ratio test: entering moves by t >= 0 in direction sigma;
        // basic values change by -sigma * w * t. Pass 1 finds the tightest
        // ratio; pass 2 picks, among rows blocking within a small tolerance
        // of it, the largest |pivot| (lowest basic index in Bland mode).
        // Preferring big pivots on degenerate ties is what keeps the eta
        // file well conditioned: always taking the first ~0-step row can
        // chain 1e-9-sized pivots until B^{-1} (and the duals priced
        // through it) are pure noise.
        // Both passes walk only the FTRAN support: rows with w[i] == 0 have
        // |delta| < kPivotTol and never block, and the support is sorted
        // ascending so tie-breaks see rows in the same order a dense scan
        // would.
        auto rowRatio = [&](int i, double& ti, VStat& to) {
            const double delta = -sigma * w.val[i];
            ti = kInf;
            to = VStat::AtLower;
            if (std::fabs(delta) < kPivotTol) return;
            const int j = basic_[i];
            const bool belowLb = xb_[i] < lb_[j] - kFeasTol;
            const bool aboveUb = xb_[i] > ub_[j] + kFeasTol;
            if (delta > 0.0) {
                // basic value increases
                if (belowLb) {
                    ti = (lb_[j] - xb_[i]) / delta;  // reaches feasibility
                    to = VStat::AtLower;
                } else if (!aboveUb && ub_[j] < kInf) {
                    ti = (ub_[j] - xb_[i]) / delta;
                    to = VStat::AtUpper;
                }
                // above-ub basics moving further up never block (phase 1
                // accounts for their worsening in the reduced costs)
                if (aboveUb) ti = kInf;
            } else {
                // basic value decreases
                if (aboveUb) {
                    ti = (ub_[j] - xb_[i]) / delta;
                    to = VStat::AtUpper;
                } else if (!belowLb && lb_[j] > -kInf) {
                    ti = (lb_[j] - xb_[i]) / delta;
                    to = VStat::AtLower;
                }
                if (belowLb) ti = kInf;
            }
            if (ti < 0.0) ti = 0.0;
        };
        // Pass 1: tightest ratio (bound flip of the entering variable
        // itself included).
        double tLimit = kInf;
        if (lb_[enter] > -kInf && ub_[enter] < kInf)
            tLimit = ub_[enter] - lb_[enter];
        forSupport(w, [&](int i) {
            double ti;
            VStat to;
            rowRatio(i, ti, to);
            if (ti < tLimit) tLimit = ti;
        });
        // Pass 2: best blocking row within tolerance of the limit.
        const double tTol = 1e-9 + 1e-7 * std::min(tLimit, 1.0);
        double tMax = tLimit;
        int leaveRow = -1;
        VStat leaveTo = VStat::AtLower;
        double bestPivot = 0.0;
        forSupport(w, [&](int i) {
            double ti;
            VStat to;
            rowRatio(i, ti, to);
            if (ti > tLimit + tTol) return;
            if (bland) {
                if (leaveRow < 0 || basic_[i] < basic_[leaveRow]) {
                    leaveRow = i;
                    leaveTo = to;
                    tMax = ti;
                }
            } else if (std::fabs(w.val[i]) > bestPivot) {
                bestPivot = std::fabs(w.val[i]);
                leaveRow = i;
                leaveTo = to;
                tMax = ti;
            }
        });
        if (leaveRow >= 0) tMax = std::min(tMax, tLimit);

        if (tMax >= kInf) {
            if (phase1) {
                // Entering improves infeasibility without bound: cannot
                // happen for consistent data; treat as numerical trouble.
                return SolveStatus::NumericalTrouble;
            }
            return SolveStatus::Unbounded;
        }

        if (leaveRow < 0) {
            // Bound flip: entering variable moves to its other bound; the
            // basic values shift by -sigma*w*t (incremental).
            vstat_[enter] = (sigma > 0) ? VStat::AtUpper : VStat::AtLower;
            forSupport(w, [&](int i) { xb_[i] -= sigma * w.val[i] * tMax; });
            continue;
        }

        // Devex reference-weight update (cheap variant): the entering
        // column's exact steepest-edge weight ||B^{-1} a_q||^2 is a free
        // byproduct of the FTRAN; the leaving variable inherits it scaled
        // by the pivot. Other weights stay stale until the next reset.
        double wNorm2 = 0.0;
        forSupport(w, [&](int i) { wNorm2 += w.val[i] * w.val[i]; });
        const double alphaR = w.val[leaveRow];
        const double gammaQ = std::max(devex_[enter], wNorm2);
        const int leaveVar = basic_[leaveRow];
        devex_[leaveVar] = std::max(1.0, gammaQ / (alphaR * alphaR));
        devex_[enter] = 1.0;
        if (devex_[leaveVar] > kDevexReset) resetDevex();

        const double enterValue = nonbasicValue(enter) + sigma * tMax;
        pivot(enter, leaveRow, w, enterValue, leaveTo);
    }
}

SolveStatus SimplexSolver::dualSimplex() {
    ensureCsc();
    ensureSparseWork();
    const int tot = n_ + m_;
    std::vector<double> cb(m_), y;
    SparseVec& w = wVec_;
    SparseVec& rho = rhoVec_;
    struct DualCand {
        int j;
        double alpha, ratio;
    };
    std::vector<DualCand> cand;
    std::vector<int> flips;  // columns passed (bound-flipped) by long steps
    std::vector<std::pair<int, double>> alphas;  // (j, rho.a_j), all nonbasic
    std::vector<double> alphaAcc(tot, 0.0);      // scatter accumulator
    std::vector<int> touched;
    // Dual row weights gamma[i] ~ ||B^{-T} e_i||^2, the steepest-edge norm
    // of row i. Selecting the leaving row by viol^2 / gamma instead of raw
    // violation favors rows whose dual direction is short, which cuts the
    // pivot count on the box-bounded cut LPs the tree produces.
    //   * Devex (default): approximate weights updated from the entering
    //     column's FTRAN — no extra solves.
    //   * DSE: exact weights maintained by the Forrest–Goldfarb recurrence
    //     at one extra sparse FTRAN (tau = B^{-1} rho) per pivot.
    // DSE weights persist in dseGamma_ across resolves while the basis is
    // unchanged (dseFresh_; refactorizations permute them with basic_) —
    // restarting at all-1 would throw away exact norms the FG recurrence
    // paid an FTRAN apiece to maintain. Devex deliberately restarts at the
    // reference framework every call: its update only ever *raises* weights
    // (a max ratchet), so persisted devex weights inflate across resolves
    // and were measured slightly worse than a clean restart. The shared
    // member array is still used (no per-resolve allocation); weightsRule_
    // keeps devex approximations from ever seeding the exact recurrence.
    const bool useDse = pricing_ == Pricing::DSE;
    if (!useDse || !dseFresh_ || weightsRule_ != pricing_ ||
        static_cast<int>(dseGamma_.size()) != m_)
        dseGamma_.assign(m_, 1.0);  // reference framework / slack-exact
    weightsRule_ = pricing_;
    std::vector<double>& gamma = dseGamma_;
    long iters = 0;
    int sinceCheck = 0;
    bool bland = false;
    int stall = 0;
    double lastInfeas = kInf;

    // Reduced costs are maintained incrementally across pivots (the rho row
    // used by the ratio test doubles as the dual update direction), so the
    // per-iteration full BTRAN for y disappears; a refactorization recomputes
    // them from scratch, which also clears accumulated drift.
    std::vector<double> d(tot, 0.0);
    auto recomputeDuals = [&]() {
        for (int i = 0; i < m_; ++i) cb[i] = cost_[basic_[i]];
        priceDuals(cb, y);
        for (int j = 0; j < tot; ++j)
            d[j] = (vstat_[j] == VStat::Basic)
                       ? 0.0
                       : cost_[j] - columnDot(j, y);
    };
    recomputeDuals();

    while (true) {
        if (++iters > iterLimit_) return SolveStatus::IterLimit;
        ++totalIters_;
        if (needRefactor()) {
            if (!refactorize()) return SolveStatus::NumericalTrouble;
            computeBasicSolution();
            recomputeDuals();
        } else if (++sinceCheck >= residInterval_) {
            sinceCheck = 0;
            if (solutionResidual() > kResidTol) {
                if (!refactorize()) return SolveStatus::NumericalTrouble;
                computeBasicSolution();
                recomputeDuals();
            }
        }

        // Select leaving row: largest devex-weighted primal bound violation
        // viol^2 / gamma. The same scan accumulates the total infeasibility
        // the stall detector needs, so no separate O(m) infeasibilitySum()
        // pass runs per iteration.
        int leaveRow = -1;
        double bestScore = 0.0;
        double infeas = 0.0;
        bool leaveToUpper = false;
        for (int i = 0; i < m_; ++i) {
            const int j = basic_[i];
            const double below = lb_[j] - xb_[i];
            const double above = xb_[i] - ub_[j];
            double viol = std::max(below, above);
            if (viol <= kFeasTol) continue;
            infeas += viol;
            if (bland) {
                if (leaveRow < 0) {
                    leaveRow = i;
                    leaveToUpper = above > below;
                }
            } else {
                const double score = viol * viol / gamma[i];
                if (score > bestScore) {
                    bestScore = score;
                    leaveRow = i;
                    leaveToUpper = above > below;
                }
            }
        }
        if (leaveRow < 0) {
            // Primal feasible; polish with phase-2 primal (confirms/regains
            // optimality in a handful of iterations).
            return primalSimplex(/*phase1Allowed=*/false);
        }
        if (infeas < lastInfeas - 1e-10) {
            stall = 0;
            bland = false;
        } else if (++stall > 300) {
            bland = true;
        }
        lastInfeas = infeas;

        // Row leaveRow of B^{-1} A over nonbasic columns: rho = B^{-T} e_r,
        // then alpha_j = rho . a_j. The unit right-hand side is the
        // hyper-sparse sweet spot: the reach kernel touches only the rows
        // e_r can influence through the factor.
        rho.clear();
        rho.set(leaveRow, 1.0);
        factBtranSparse(rho);
        const int leaveVar = basic_[leaveRow];
        const double target = leaveToUpper ? ub_[leaveVar] : lb_[leaveVar];
        // Leaving basic must move toward target:
        //   xb_r changes by -alpha_j * dz_j for entering j.
        const bool needIncrease = !leaveToUpper;  // below lb -> increase

        // Two-pass dual ratio test (same rationale as the primal one: on
        // tied ratios take the largest |alpha| so the appended eta stays
        // well conditioned).
        auto dualEligible = [&](int j, double alpha) {
            // dz_j = sig * t (t>0); xb_r changes by -alpha * sig * t.
            if (needIncrease) {
                if ((vstat_[j] == VStat::AtLower ||
                     vstat_[j] == VStat::FreeZero) &&
                    alpha < 0)
                    return 1;
                if ((vstat_[j] == VStat::AtUpper ||
                     vstat_[j] == VStat::FreeZero) &&
                    alpha > 0)
                    return -1;
            } else {
                if ((vstat_[j] == VStat::AtLower ||
                     vstat_[j] == VStat::FreeZero) &&
                    alpha > 0)
                    return 1;
                if ((vstat_[j] == VStat::AtUpper ||
                     vstat_[j] == VStat::FreeZero) &&
                    alpha < 0)
                    return -1;
            }
            return 0;
        };
        // alpha_j for every column hit by rho, via one CSR scatter over the
        // BTRAN support: touches only the nonzeros of rows where rho != 0
        // instead of scanning all m_ rows for them first. The support is
        // sorted ascending, so the accumulation (and hence `touched`) order
        // matches what the dense row sweep produced.
        cand.clear();
        alphas.clear();
        touched.clear();
        forSupport(rho, [&](int i) {
            const double ri = rho.val[i];
            if (ri == 0.0) return;
            for (int p = csrPtr_[i]; p < csrPtr_[i + 1]; ++p) {
                const int j = csrCol_[p];
                if (alphaAcc[j] == 0.0) touched.push_back(j);
                alphaAcc[j] += ri * csrVal_[p];
            }
        });
        double bestRatio = kInf;
        int bestIdx = -1;  // first candidate attaining bestRatio
        for (int j : touched) {
            const double alpha = alphaAcc[j];
            alphaAcc[j] = 0.0;  // leave the accumulator clean for next pivot
            if (alpha == 0.0 || vstat_[j] == VStat::Basic) continue;
            alphas.emplace_back(j, alpha);  // for the incremental d update
            if (std::fabs(alpha) < kPivotTol) continue;
            if (dualEligible(j, alpha) == 0) continue;
            const double ratio = std::fabs(d[j]) / std::fabs(alpha);
            if (ratio < bestRatio) {
                bestRatio = ratio;
                bestIdx = static_cast<int>(cand.size());
            }
            cand.push_back({j, alpha, ratio});
        }
        // Long-step (bound-flip) ratio test: walking the candidates in
        // ratio order, a boxed candidate whose zero crossing theta passes
        // can simply jump to its other bound — its reduced cost changes
        // sign, which is dual feasible at the opposite bound — as long as
        // the aggregate primal movement of all flips does not overshoot the
        // leaving row's target. Each flip shrinks the remaining violation
        // ("slope" of the dual objective) by |alpha_j| * box width; the
        // first candidate that cannot be passed enters the basis. One dual
        // iteration thereby absorbs what plain ratio testing would spend a
        // pivot (FTRAN + BTRAN + factor update) apiece on — the dominant
        // win on the 0/1-box cut LPs this solver exists for. Flipped
        // columns are corrected in x_B with a single aggregated FTRAN.
        // Disabled under Bland's rule, whose anti-cycling argument needs
        // the plain lowest-index pivot.
        int enter = -1;
        double enterAlpha = 0.0;
        flips.clear();
        // Cheap gate first: the ordered walk only matters when the
        // smallest-ratio candidate itself can be passed; on most pivots it
        // cannot (unboxed slack, or its flip would already overshoot), and
        // the plain two-scan test below runs with zero ordering cost.
        bool longStep = false;
        if (!bland && bestIdx >= 0) {
            const double w0 =
                std::max(ub_[cand[bestIdx].j] - lb_[cand[bestIdx].j], 0.0);
            longStep = w0 < kInf &&
                       std::fabs(xb_[leaveRow] - target) -
                               std::fabs(cand[bestIdx].alpha) * w0 >
                           kFeasTol;
        }
        if (longStep) {
            // Min-ratio heap instead of a full sort: the walk usually stops
            // after a handful of flips, so ordering the whole candidate set
            // would be wasted work on every pivot.
            auto byRatioDesc = [](const DualCand& a, const DualCand& b) {
                return a.ratio > b.ratio;
            };
            std::make_heap(cand.begin(), cand.end(), byRatioDesc);
            auto end = cand.end();
            double slope = std::fabs(xb_[leaveRow] - target);
            double stopRatio = kInf;
            while (cand.begin() != end) {
                const DualCand& top = cand.front();
                const double width = std::max(ub_[top.j] - lb_[top.j], 0.0);
                const double drop = std::fabs(top.alpha) * width;
                if (!(width < kInf) || slope - drop <= kFeasTol) {
                    stopRatio = top.ratio;
                    break;
                }
                slope -= drop;
                flips.push_back(top.j);
                std::pop_heap(cand.begin(), end, byRatioDesc);
                --end;
            }
            if (cand.begin() == end) {
                // Even flipping every candidate leaves the row violated —
                // a dual ray. Fall back to the plain smallest-ratio pivot
                // so the infeasibility verdict is reached by the standard
                // (tolerance-hardened) path rather than declared here.
                flips.clear();
                longStep = false;
            } else {
                // Tie-break among near-equal stop ratios by largest |alpha|
                // (numerical stability); successive heap pops visit the
                // tolerance band in ascending ratio order.
                const double ratioTol =
                    1e-9 + 1e-7 * std::min(stopRatio, 1.0);
                while (cand.begin() != end &&
                       cand.front().ratio <= stopRatio + ratioTol) {
                    if (std::fabs(cand.front().alpha) >
                        std::fabs(enterAlpha)) {
                        enterAlpha = cand.front().alpha;
                        enter = cand.front().j;
                    }
                    std::pop_heap(cand.begin(), end, byRatioDesc);
                    --end;
                }
            }
        }
        if (!longStep) {
            const double ratioTol = 1e-9 + 1e-7 * std::min(bestRatio, 1.0);
            for (const DualCand& c : cand) {
                if (c.ratio > bestRatio + ratioTol) continue;
                if (bland) {
                    if (enter < 0 || c.j < enter) {
                        enter = c.j;
                        enterAlpha = c.alpha;
                    }
                } else if (std::fabs(c.alpha) > std::fabs(enterAlpha)) {
                    enterAlpha = c.alpha;
                    enter = c.j;
                }
            }
        }
        if (enter < 0) {
            // Dual unbounded -> primal infeasible.
            return SolveStatus::Infeasible;
        }

        if (!flips.empty()) {
            // Move every passed column to its other bound and shift x_B by
            // -B^{-1} (sum a_j * delta_j), one FTRAN for the whole batch.
            // Runs before the DSE/entering FTRANs below so the cached FT
            // spike belonging to the entering column is not clobbered.
            flipVec_.clear();
            for (int j : flips) {
                double delta = ub_[j] - lb_[j];
                if (vstat_[j] == VStat::AtLower) {
                    vstat_[j] = VStat::AtUpper;
                } else {
                    vstat_[j] = VStat::AtLower;
                    delta = -delta;
                }
                if (delta == 0.0) continue;
                for (int p = cscPtr_[j]; p < cscPtr_[j + 1]; ++p) {
                    const int r = cscRow_[p];
                    flipVec_.touch(r);
                    flipVec_.val[r] += cscVal_[p] * delta;
                }
            }
            factFtranSparse(flipVec_, LuRhs::Flip);
            forSupport(flipVec_,
                       [&](int i) { xb_[i] -= flipVec_.val[i]; });
        }

        const double alphaE = enterAlpha;
        const double dz = (xb_[leaveRow] - target) / alphaE;

        // DSE needs tau = B^{-1} rho before w overwrites the work vectors;
        // the FTRAN below then re-caches the FT spike for factUpdate.
        double rhoNorm2 = 0.0;
        if (useDse) {
            forSupport(rho,
                       [&](int i) { rhoNorm2 += rho.val[i] * rho.val[i]; });
            tauVec_.clear();
            if (rho.dense) {
                tauVec_.val = rho.val;
                tauVec_.dense = true;  // idx empty + flags clear after clear()
            } else {
                for (int i : rho.idx) tauVec_.set(i, rho.val[i]);
            }
            // tau carries the pricing row back through FTRAN — its density
            // tracks rho's, not an entering column's, so it shares the Row
            // controller.
            factFtranSparse(tauVec_, LuRhs::Row);
        }
        ftranColumn(enter, w);
        const double enterValue = nonbasicValue(enter) + dz;

        if (useDse) {
            // Exact steepest-edge update (Forrest–Goldfarb):
            //   gamma_r' = ||rho||^2 / alpha_r^2
            //   gamma_i' = gamma_i - 2 (w_i/alpha_r) tau_i
            //              + (w_i/alpha_r)^2 ||rho||^2      (i != r, w_i != 0)
            // with w = B^{-1} a_q and tau = B^{-1} rho. The pivot row's new
            // weight uses the exactly recomputed ||rho||^2, so any
            // initialization error dies off as rows pivot.
            const double ar = std::fabs(w.val[leaveRow]) > 1e-12
                                  ? w.val[leaveRow]
                                  : alphaE;
            forSupport(w, [&](int i) {
                if (i == leaveRow) return;
                const double k = w.val[i] / ar;
                if (k == 0.0) return;
                const double g =
                    gamma[i] - 2.0 * k * tauVec_.val[i] + k * k * rhoNorm2;
                gamma[i] = std::max(g, 1e-10);
            });
            gamma[leaveRow] = std::max(rhoNorm2 / (ar * ar), 1e-10);
        } else {
            // Devex weight update from the entering column (the dual
            // analogue of the primal scheme): rows moved by the pivot
            // inherit the pivot row's weight scaled by their step, and the
            // pivot row's own weight shrinks by the pivot element squared.
            const double ar = std::fabs(w.val[leaveRow]) > 1e-12
                                  ? w.val[leaveRow]
                                  : alphaE;
            const double gammaR = std::max(gamma[leaveRow], 1.0);
            const double scale = gammaR / (ar * ar);
            forSupport(w, [&](int i) {
                if (w.val[i] == 0.0 || i == leaveRow) return;
                const double cndt = w.val[i] * w.val[i] * scale;
                if (cndt > gamma[i]) gamma[i] = cndt;
            });
            gamma[leaveRow] = std::max(scale, 1.0);
            if (gamma[leaveRow] > kDevexReset) gamma.assign(m_, 1.0);
        }

        // Incremental dual update: d'_j = d_j - theta * alpha_j with
        // theta = d_enter / alpha_enter. The leaving variable has
        // alpha = rho . a_leaveVar = e_r^T e_r = 1, so it lands at -theta.
        const double theta = d[enter] / alphaE;
        if (theta != 0.0)
            for (const auto& [j, a] : alphas) d[j] -= theta * a;
        d[enter] = 0.0;
        d[leaveVar] = -theta;

        pivot(enter, leaveRow, w, enterValue,
              leaveToUpper ? VStat::AtUpper : VStat::AtLower);
        // The weight update above already describes the post-pivot basis
        // (both rules); re-validate what pivot() just invalidated.
        dseFresh_ = true;
    }
}

namespace {
/// Branching can produce an empty variable box (lb > ub); detect it early.
bool hasCrossedBounds(const std::vector<double>& lb,
                      const std::vector<double>& ub) {
    for (std::size_t j = 0; j < lb.size(); ++j)
        if (lb[j] > ub[j] + kFeasTol) return true;
    return false;
}
}  // namespace

SolveStatus SimplexSolver::solve() {
    if (hasCrossedBounds(lb_, ub_)) return SolveStatus::Infeasible;
    ensureCsc();
    setupSlackBasis();
    SolveStatus st = primalSimplex(/*phase1Allowed=*/true);
    if (st == SolveStatus::NumericalTrouble) {
        // One retry with a fresh factorization.
        setupSlackBasis();
        st = primalSimplex(true);
    }
    return st;
}

SolveStatus SimplexSolver::addRowsAndResolve(const std::vector<Row>& rows) {
    if (rows.empty()) return resolve();
    const int mOld = m_;
    for (std::size_t k = 0; k < rows.size(); ++k) {
        const Row& r = rows[k];
        const int i = mOld + static_cast<int>(k);
        for (const auto& [j, v] : r.coefs) {
            if (j < 0 || j >= n_) throw std::out_of_range("cut column index");
            if (v != 0.0) cols_[j].entries.emplace_back(i, v);
        }
        SparseCol slack;
        slack.entries.emplace_back(i, -1.0);
        cols_.push_back(std::move(slack));
        cost_.push_back(0.0);
        lb_.push_back(r.lhs);
        ub_.push_back(r.rhs);
    }
    m_ = mOld + static_cast<int>(rows.size());
    cscDirty_ = true;

    if (!basisValid_) return solve();

    // Extend the basis with the new rows' slacks (B_new = [[B,0],[G,-I]] is
    // nonsingular whenever B is) and refactorize; the dual simplex then
    // drives out any violated new slacks.
    for (int i = mOld; i < m_; ++i) {
        vstat_.push_back(VStat::Basic);
        basic_.push_back(n_ + i);
    }
    devex_.resize(static_cast<std::size_t>(n_) + m_, 1.0);
    dseFresh_ = false;  // row set changed: DSE weights must restart
    if (!refactorize()) {
        setupSlackBasis();
        return primalSimplex(true);
    }
    computeBasicSolution();
    SolveStatus st = dualSimplex();
    if (st == SolveStatus::NumericalTrouble || st == SolveStatus::IterLimit) {
        setupSlackBasis();
        st = primalSimplex(true);
    }
    return st;
}

void SimplexSolver::changeBounds(int col, double lb, double ub) {
    lb_[col] = lb;
    ub_[col] = ub;
    if (!basisValid_ || vstat_[col] == VStat::Basic) return;
    // Re-snap nonbasic status to a consistent finite bound.
    if (vstat_[col] == VStat::AtLower && lb <= -kInf)
        vstat_[col] = (ub < kInf) ? VStat::AtUpper : VStat::FreeZero;
    else if (vstat_[col] == VStat::AtUpper && ub >= kInf)
        vstat_[col] = (lb > -kInf) ? VStat::AtLower : VStat::FreeZero;
}

SolveStatus SimplexSolver::resolve() {
    if (hasCrossedBounds(lb_, ub_)) return SolveStatus::Infeasible;
    if (!basisValid_) return solve();
    computeBasicSolution();
    SolveStatus st = dualSimplex();
    if (st == SolveStatus::NumericalTrouble || st == SolveStatus::IterLimit) {
        setupSlackBasis();
        st = primalSimplex(true);
    }
    return st;
}

Basis SimplexSolver::basis() const {
    Basis b;
    if (!basisValid_) return b;
    b.cols = n_;
    b.rows = m_;
    b.status.assign(vstat_.begin(), vstat_.end());
    return b;
}

bool SimplexSolver::loadBasis(const Basis& b) {
    if (!b.valid() || b.cols != n_) return false;
    const int tot = n_ + m_;
    std::vector<VStat> vs(tot);
    for (int j = 0; j < n_; ++j) vs[j] = b.status[j];
    // Rows added since the snapshot get their slack basic; statuses of rows
    // that no longer exist are dropped.
    for (int i = 0; i < m_; ++i)
        vs[n_ + i] = (i < b.rows) ? b.status[b.cols + i] : VStat::Basic;
    // Snap nonbasic statuses to the *current* bounds (branching may have
    // changed them since the snapshot was taken).
    for (int j = 0; j < tot; ++j) {
        if (vs[j] == VStat::Basic) continue;
        if (vs[j] == VStat::AtLower && lb_[j] <= -kInf)
            vs[j] = (ub_[j] < kInf) ? VStat::AtUpper : VStat::FreeZero;
        else if (vs[j] == VStat::AtUpper && ub_[j] >= kInf)
            vs[j] = (lb_[j] > -kInf) ? VStat::AtLower : VStat::FreeZero;
        else if (vs[j] == VStat::FreeZero && lb_[j] > -kInf)
            vs[j] = VStat::AtLower;
        else if (vs[j] == VStat::FreeZero && ub_[j] < kInf)
            vs[j] = VStat::AtUpper;
    }
    // The basic set must have exactly m_ members: demote surplus basics
    // (slacks first, from the back) and promote nonbasic slacks to fill.
    int nbasic = 0;
    for (int j = 0; j < tot; ++j)
        if (vs[j] == VStat::Basic) ++nbasic;
    auto snapped = [&](int j) {
        if (lb_[j] > -kInf) return VStat::AtLower;
        if (ub_[j] < kInf) return VStat::AtUpper;
        return VStat::FreeZero;
    };
    for (int j = tot - 1; j >= n_ && nbasic > m_; --j)
        if (vs[j] == VStat::Basic) {
            vs[j] = snapped(j);
            --nbasic;
        }
    for (int j = n_ - 1; j >= 0 && nbasic > m_; --j)
        if (vs[j] == VStat::Basic) {
            vs[j] = snapped(j);
            --nbasic;
        }
    for (int i = 0; i < m_ && nbasic < m_; ++i)
        if (vs[n_ + i] != VStat::Basic) {
            vs[n_ + i] = VStat::Basic;
            ++nbasic;
        }
    if (nbasic != m_) return false;

    std::vector<int> newBasic;
    newBasic.reserve(m_);
    for (int j = 0; j < tot; ++j)
        if (vs[j] == VStat::Basic) newBasic.push_back(j);
    std::vector<VStat> savedStat = vstat_;
    std::vector<int> savedBasic = basic_;
    vstat_ = std::move(vs);
    basic_ = std::move(newBasic);
    if (!refactorize()) {
        // Singular snapshot (cuts/rows changed underneath): roll back so a
        // subsequent resolve() can still use whatever basis was held.
        vstat_ = std::move(savedStat);
        basic_ = std::move(savedBasic);
        if (basisValid_ && !refactorize()) basisValid_ = false;
        return false;
    }
    resetDevex();
    dseFresh_ = false;  // arbitrary loaded basis: DSE weights unknown
    basisValid_ = true;
    computeBasicSolution();
    return true;
}

void SimplexSolver::extractSolution() {
    primalX_.assign(n_, 0.0);
    const int tot = n_ + m_;
    std::vector<double> full(tot, 0.0);
    for (int j = 0; j < tot; ++j)
        if (vstat_[j] != VStat::Basic) full[j] = nonbasicValue(j);
    for (int i = 0; i < m_; ++i) full[basic_[i]] = xb_[i];
    for (int j = 0; j < n_; ++j) primalX_[j] = full[j];

    std::vector<double> cb(m_);
    for (int i = 0; i < m_; ++i) cb[i] = cost_[basic_[i]];
    priceDuals(cb, dualY_);

    redCost_.assign(n_, 0.0);
    for (int j = 0; j < n_; ++j)
        redCost_[j] = cost_[j] - columnDot(j, dualY_);

    obj_ = 0.0;
    for (int j = 0; j < n_; ++j) obj_ += cost_[j] * primalX_[j];
}

}  // namespace lp
