#include "lp/dense_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lp {

namespace {
constexpr double kFeasTol = 1e-7;   // primal feasibility tolerance
constexpr double kOptTol = 1e-7;    // reduced-cost tolerance
constexpr double kPivotTol = 1e-9;  // minimum admissible pivot magnitude
constexpr int kRefactorInterval = 64;
}  // namespace

void DenseSimplexSolver::load(const LpModel& model) {
    n_ = model.numCols();
    m_ = model.numRows();
    const int tot = n_ + m_;
    cols_.assign(tot, {});
    cost_.assign(tot, 0.0);
    lb_.assign(tot, 0.0);
    ub_.assign(tot, 0.0);
    for (int j = 0; j < n_; ++j) {
        cost_[j] = model.col(j).obj;
        lb_[j] = model.col(j).lb;
        ub_[j] = model.col(j).ub;
    }
    for (int i = 0; i < m_; ++i) {
        const Row& r = model.row(i);
        for (const auto& [j, v] : r.coefs) {
            if (j < 0 || j >= n_) throw std::out_of_range("row coef column");
            if (v != 0.0) cols_[j].entries.emplace_back(i, v);
        }
        // Slack s_i with A x - s = 0, s in [lhs, rhs].
        cols_[n_ + i].entries.emplace_back(i, -1.0);
        lb_[n_ + i] = r.lhs;
        ub_[n_ + i] = r.rhs;
    }
    basisValid_ = false;
    totalIters_ = 0;
}

double DenseSimplexSolver::nonbasicValue(int j) const {
    switch (vstat_[j]) {
        case AtLower: return lb_[j];
        case AtUpper: return ub_[j];
        case FreeZero: return 0.0;
        case Basic: break;
    }
    return 0.0;  // not reached for nonbasic
}

void DenseSimplexSolver::setupSlackBasis() {
    const int tot = n_ + m_;
    vstat_.assign(tot, AtLower);
    for (int j = 0; j < tot; ++j) {
        if (lb_[j] > -kInf)
            vstat_[j] = AtLower;
        else if (ub_[j] < kInf)
            vstat_[j] = AtUpper;
        else
            vstat_[j] = FreeZero;
    }
    basic_.resize(m_);
    for (int i = 0; i < m_; ++i) {
        basic_[i] = n_ + i;
        vstat_[n_ + i] = Basic;
    }
    binv_.assign(m_, std::vector<double>(m_, 0.0));
    // B = -I for the all-slack basis, so B^{-1} = -I.
    for (int i = 0; i < m_; ++i) binv_[i][i] = -1.0;
    basisValid_ = true;
    computeBasicSolution();
}

void DenseSimplexSolver::computeBasicSolution() {
    // z_B = -B^{-1} * (sum over nonbasic j: a_j * value_j)
    std::vector<double> rhs(m_, 0.0);
    const int tot = n_ + m_;
    for (int j = 0; j < tot; ++j) {
        if (vstat_[j] == Basic) continue;
        const double v = nonbasicValue(j);
        if (v == 0.0) continue;
        for (const auto& [row, coef] : cols_[j].entries) rhs[row] += coef * v;
    }
    xb_.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
        double s = 0.0;
        for (int k = 0; k < m_; ++k) s -= binv_[i][k] * rhs[k];
        xb_[i] = s;
    }
}

bool DenseSimplexSolver::refactorize() {
    // Build B column-wise, then invert by Gauss-Jordan with partial pivoting.
    std::vector<std::vector<double>> a(m_, std::vector<double>(2 * m_, 0.0));
    for (int k = 0; k < m_; ++k) {
        for (const auto& [row, coef] : cols_[basic_[k]].entries)
            a[row][k] = coef;
        a[k][m_ + k] = 1.0;
    }
    for (int col = 0; col < m_; ++col) {
        int best = col;
        double bestAbs = std::fabs(a[col][col]);
        for (int i = col + 1; i < m_; ++i)
            if (std::fabs(a[i][col]) > bestAbs) {
                bestAbs = std::fabs(a[i][col]);
                best = i;
            }
        if (bestAbs < 1e-11) return false;
        std::swap(a[col], a[best]);
        const double piv = a[col][col];
        for (int j = col; j < 2 * m_; ++j) a[col][j] /= piv;
        for (int i = 0; i < m_; ++i) {
            if (i == col) continue;
            const double f = a[i][col];
            if (f == 0.0) continue;
            for (int j = col; j < 2 * m_; ++j) a[i][j] -= f * a[col][j];
        }
    }
    binv_.assign(m_, std::vector<double>(m_, 0.0));
    for (int i = 0; i < m_; ++i)
        for (int j = 0; j < m_; ++j) binv_[i][j] = a[i][m_ + j];
    return true;
}

void DenseSimplexSolver::priceDuals(const std::vector<double>& cb,
                               std::vector<double>& y) const {
    y.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
        const double c = cb[i];
        if (c == 0.0) continue;
        const std::vector<double>& bi = binv_[i];
        for (int k = 0; k < m_; ++k) y[k] += c * bi[k];
    }
}

double DenseSimplexSolver::columnDot(int j, const std::vector<double>& y) const {
    double s = 0.0;
    for (const auto& [row, coef] : cols_[j].entries) s += coef * y[row];
    return s;
}

void DenseSimplexSolver::ftran(int j, std::vector<double>& w) const {
    w.assign(m_, 0.0);
    for (const auto& [row, coef] : cols_[j].entries) {
        if (coef == 0.0) continue;
        for (int i = 0; i < m_; ++i) w[i] += binv_[i][row] * coef;
    }
}

void DenseSimplexSolver::pivot(int enter, int leaveRow, const std::vector<double>& w,
                          double enterValue, VStat leaveTo) {
    const int leaveVar = basic_[leaveRow];
    // Incremental update of basic values: the entering variable moves by dz
    // from its nonbasic value, changing z_B by -w*dz. O(m) instead of a full
    // recompute; periodic refactorization clears accumulated drift.
    const double dz = enterValue - nonbasicValue(enter);
    for (int i = 0; i < m_; ++i) xb_[i] -= w[i] * dz;
    // Update binv: premultiply by the elementary matrix that maps w -> e_r.
    const double piv = w[leaveRow];
    std::vector<double>& br = binv_[leaveRow];
    for (int k = 0; k < m_; ++k) br[k] /= piv;
    for (int i = 0; i < m_; ++i) {
        if (i == leaveRow) continue;
        const double f = w[i];
        if (f == 0.0) continue;
        std::vector<double>& bi = binv_[i];
        for (int k = 0; k < m_; ++k) bi[k] -= f * br[k];
    }
    basic_[leaveRow] = enter;
    vstat_[enter] = Basic;
    vstat_[leaveVar] = leaveTo;
    xb_[leaveRow] = enterValue;
}

double DenseSimplexSolver::infeasibilitySum() const {
    double s = 0.0;
    for (int i = 0; i < m_; ++i) {
        const int j = basic_[i];
        if (xb_[i] < lb_[j] - kFeasTol) s += lb_[j] - xb_[i];
        if (xb_[i] > ub_[j] + kFeasTol) s += xb_[i] - ub_[j];
    }
    return s;
}

SolveStatus DenseSimplexSolver::primalSimplex(bool phase1Allowed) {
    std::vector<double> cb(m_), y, w;
    bool bland = false;
    int stall = 0;
    double lastMeasure = kInf;
    long iters = 0;
    int sinceRefactor = 0;
    // Anti-degeneracy cost perturbation (classical): deterministic tiny
    // offsets break ties; once perturbed-optimal, the perturbation is
    // removed and optimization continues with the true costs.
    std::vector<double> perturb;
    auto costOf = [&](int j) {
        return cost_[j] + (perturb.empty() ? 0.0 : perturb[j]);
    };

    while (true) {
        if (++iters > iterLimit_) return SolveStatus::IterLimit;
        ++totalIters_;
        if (++sinceRefactor >= kRefactorInterval) {
            if (!refactorize()) return SolveStatus::NumericalTrouble;
            computeBasicSolution();
            sinceRefactor = 0;
        }

        const double infeas = infeasibilitySum();
        const bool phase1 = infeas > kFeasTol * (1 + m_);
        if (phase1 && !phase1Allowed) return SolveStatus::NumericalTrouble;

        // Cost vector for pricing: real costs in phase 2, infeasibility
        // gradient in phase 1.
        if (phase1) {
            for (int i = 0; i < m_; ++i) {
                const int j = basic_[i];
                cb[i] = 0.0;
                if (xb_[i] < lb_[j] - kFeasTol) cb[i] = -1.0;
                else if (xb_[i] > ub_[j] + kFeasTol) cb[i] = 1.0;
            }
        } else {
            for (int i = 0; i < m_; ++i) cb[i] = costOf(basic_[i]);
        }
        priceDuals(cb, y);

        // Progress / stalling detection (switch to Bland's rule on stall).
        double measure;
        if (phase1) {
            measure = infeas;
        } else {
            measure = 0.0;
            for (int i = 0; i < m_; ++i) measure += cost_[basic_[i]] * xb_[i];
            const int tot = n_ + m_;
            for (int j = 0; j < tot; ++j)
                if (vstat_[j] != Basic && cost_[j] != 0.0)
                    measure += cost_[j] * nonbasicValue(j);
        }
        if (measure < lastMeasure - 1e-10) {
            stall = 0;
            bland = false;
        } else {
            ++stall;
            if (stall == 60 && !phase1 && perturb.empty()) {
                // Degenerate plateau: perturb the phase-2 costs.
                const int tot = n_ + m_;
                perturb.assign(tot, 0.0);
                for (int j = 0; j < tot; ++j) {
                    const unsigned h =
                        static_cast<unsigned>(j) * 2654435761u;
                    perturb[j] = 1e-7 * (1.0 + double(h % 1024) / 1024.0);
                }
            }
            if (stall > 500) bland = true;
        }
        lastMeasure = measure;

        // Pricing: pick entering variable.
        int enter = -1;
        int sigma = 0;  // +1: entering increases, -1: decreases
        double bestScore = phase1 ? -kOptTol : -kOptTol;
        const int tot = n_ + m_;
        for (int j = 0; j < tot; ++j) {
            if (vstat_[j] == Basic) continue;
            const double cj = phase1 ? 0.0 : costOf(j);
            const double d = cj - columnDot(j, y);
            int sig = 0;
            double score = 0.0;
            if ((vstat_[j] == AtLower || vstat_[j] == FreeZero) && d < -kOptTol) {
                sig = 1;
                score = d;
            } else if ((vstat_[j] == AtUpper || vstat_[j] == FreeZero) &&
                       d > kOptTol) {
                sig = -1;
                score = -d;
            } else {
                continue;
            }
            if (bland) {
                enter = j;
                sigma = sig;
                break;
            }
            if (score < bestScore) {
                bestScore = score;
                enter = j;
                sigma = sig;
            }
        }
        if (enter < 0) {
            // No improving direction.
            if (phase1) return SolveStatus::Infeasible;
            if (!perturb.empty()) {
                // Perturbed-optimal: drop the perturbation and continue
                // with the true costs (usually a handful of extra pivots).
                perturb.clear();
                stall = 0;
                lastMeasure = kInf;
                continue;
            }
            extractSolution();
            return SolveStatus::Optimal;
        }

        ftran(enter, w);

        // Ratio test: entering moves by t >= 0 in direction sigma;
        // basic values change by -sigma * w * t.
        double tMax = kInf;
        int leaveRow = -1;
        VStat leaveTo = AtLower;
        // Bound flip of the entering variable itself.
        if (lb_[enter] > -kInf && ub_[enter] < kInf)
            tMax = ub_[enter] - lb_[enter];
        for (int i = 0; i < m_; ++i) {
            const double delta = -sigma * w[i];
            if (std::fabs(delta) < kPivotTol) continue;
            const int j = basic_[i];
            const bool belowLb = xb_[i] < lb_[j] - kFeasTol;
            const bool aboveUb = xb_[i] > ub_[j] + kFeasTol;
            double ti = kInf;
            VStat to = AtLower;
            if (delta > 0.0) {
                // basic value increases
                if (belowLb) {
                    ti = (lb_[j] - xb_[i]) / delta;  // reaches feasibility
                    to = AtLower;
                } else if (!aboveUb && ub_[j] < kInf) {
                    ti = (ub_[j] - xb_[i]) / delta;
                    to = AtUpper;
                }
                // above-ub basics moving further up never block (phase 1
                // accounts for their worsening in the reduced costs)
                if (aboveUb) ti = kInf;
            } else {
                // basic value decreases
                if (aboveUb) {
                    ti = (ub_[j] - xb_[i]) / delta;
                    to = AtUpper;
                } else if (!belowLb && lb_[j] > -kInf) {
                    ti = (lb_[j] - xb_[i]) / delta;
                    to = AtLower;
                }
                if (belowLb) ti = kInf;
            }
            if (ti < -1e-12) ti = 0.0;
            if (ti < tMax - 1e-12 ||
                (bland && leaveRow >= 0 && std::fabs(ti - tMax) <= 1e-12 &&
                 basic_[i] < basic_[leaveRow])) {
                tMax = ti;
                leaveRow = i;
                leaveTo = to;
            }
        }

        if (tMax >= kInf) {
            if (phase1) {
                // Entering improves infeasibility without bound: cannot
                // happen for consistent data; treat as numerical trouble.
                return SolveStatus::NumericalTrouble;
            }
            return SolveStatus::Unbounded;
        }

        if (leaveRow < 0) {
            // Bound flip: entering variable moves to its other bound; the
            // basic values shift by -sigma*w*t (incremental).
            vstat_[enter] = (sigma > 0) ? AtUpper : AtLower;
            for (int i = 0; i < m_; ++i) xb_[i] -= sigma * w[i] * tMax;
            continue;
        }

        const double enterValue = nonbasicValue(enter) + sigma * tMax;
        pivot(enter, leaveRow, w, enterValue, leaveTo);
    }
}

SolveStatus DenseSimplexSolver::dualSimplex() {
    std::vector<double> cb(m_), y, w;
    long iters = 0;
    int sinceRefactor = 0;
    bool bland = false;
    int stall = 0;
    double lastInfeas = kInf;

    while (true) {
        if (++iters > iterLimit_) return SolveStatus::IterLimit;
        ++totalIters_;
        if (++sinceRefactor >= kRefactorInterval) {
            if (!refactorize()) return SolveStatus::NumericalTrouble;
            computeBasicSolution();
            sinceRefactor = 0;
        }

        // Select leaving row: maximum primal bound violation.
        int leaveRow = -1;
        double worst = kFeasTol;
        bool leaveToUpper = false;
        for (int i = 0; i < m_; ++i) {
            const int j = basic_[i];
            const double below = lb_[j] - xb_[i];
            const double above = xb_[i] - ub_[j];
            double viol = std::max(below, above);
            if (bland) {
                if (viol > kFeasTol) {
                    leaveRow = i;
                    leaveToUpper = above > below;
                    break;
                }
            } else if (viol > worst) {
                worst = viol;
                leaveRow = i;
                leaveToUpper = above > below;
            }
        }
        if (leaveRow < 0) {
            // Primal feasible; polish with phase-2 primal (confirms/regains
            // optimality in a handful of iterations).
            return primalSimplex(/*phase1Allowed=*/false);
        }

        const double infeas = infeasibilitySum();
        if (infeas < lastInfeas - 1e-10) {
            stall = 0;
            bland = false;
        } else if (++stall > 300) {
            bland = true;
        }
        lastInfeas = infeas;

        // Reduced costs wrt real objective.
        for (int i = 0; i < m_; ++i) cb[i] = cost_[basic_[i]];
        priceDuals(cb, y);

        // Row r of B^{-1} * A over nonbasic columns.
        const std::vector<double>& brow = binv_[leaveRow];
        const int leaveVar = basic_[leaveRow];
        const double target = leaveToUpper ? ub_[leaveVar] : lb_[leaveVar];
        // Leaving basic must move toward target:
        //   xb_r changes by -alpha_j * dz_j for entering j.
        const bool needIncrease = !leaveToUpper;  // below lb -> increase

        int enter = -1;
        double bestRatio = kInf;
        int enterSigma = 0;
        const int tot = n_ + m_;
        for (int j = 0; j < tot; ++j) {
            if (vstat_[j] == Basic) continue;
            const double alpha = columnDot(j, brow);
            if (std::fabs(alpha) < kPivotTol) continue;
            int sig = 0;
            // dz_j = sig * t (t>0); xb_r changes by -alpha * sig * t.
            if (needIncrease) {
                if ((vstat_[j] == AtLower || vstat_[j] == FreeZero) && alpha < 0)
                    sig = 1;
                else if ((vstat_[j] == AtUpper || vstat_[j] == FreeZero) &&
                         alpha > 0)
                    sig = -1;
            } else {
                if ((vstat_[j] == AtLower || vstat_[j] == FreeZero) && alpha > 0)
                    sig = 1;
                else if ((vstat_[j] == AtUpper || vstat_[j] == FreeZero) &&
                         alpha < 0)
                    sig = -1;
            }
            if (sig == 0) continue;
            const double d = cost_[j] - columnDot(j, y);
            const double ratio = std::fabs(d) / std::fabs(alpha);
            if (ratio < bestRatio - 1e-12) {
                bestRatio = ratio;
                enter = j;
                enterSigma = sig;
            }
        }
        if (enter < 0) {
            // Dual unbounded -> primal infeasible.
            return SolveStatus::Infeasible;
        }

        const double alphaE = columnDot(enter, brow);
        const double dz = (xb_[leaveRow] - target) / alphaE;
        // Guard direction consistency; tiny reversed steps are degenerate.
        (void)enterSigma;
        ftran(enter, w);
        const double enterValue = nonbasicValue(enter) + dz;
        pivot(enter, leaveRow, w, enterValue, leaveToUpper ? AtUpper : AtLower);
    }
}

namespace {
/// Branching can produce an empty variable box (lb > ub); detect it early.
bool hasCrossedBounds(const std::vector<double>& lb,
                      const std::vector<double>& ub) {
    for (std::size_t j = 0; j < lb.size(); ++j)
        if (lb[j] > ub[j] + kFeasTol) return true;
    return false;
}
}  // namespace

SolveStatus DenseSimplexSolver::solve() {
    if (hasCrossedBounds(lb_, ub_)) return SolveStatus::Infeasible;
    setupSlackBasis();
    SolveStatus st = primalSimplex(/*phase1Allowed=*/true);
    if (st == SolveStatus::NumericalTrouble) {
        // One retry with a fresh factorization.
        setupSlackBasis();
        st = primalSimplex(true);
    }
    return st;
}

SolveStatus DenseSimplexSolver::addRowsAndResolve(const std::vector<Row>& rows) {
    if (rows.empty()) return resolve();
    if (!basisValid_) {
        // No warm basis: just extend the problem and solve fresh.
        for (const Row& r : rows) {
            const int i = m_;
            for (const auto& [j, v] : r.coefs)
                if (v != 0.0) cols_[j].entries.emplace_back(i, v);
            SparseCol slack;
            slack.entries.emplace_back(i, -1.0);
            cols_.push_back(std::move(slack));
            cost_.push_back(0.0);
            lb_.push_back(r.lhs);
            ub_.push_back(r.rhs);
            ++m_;
        }
        return solve();
    }

    const int mOld = m_;
    for (std::size_t k = 0; k < rows.size(); ++k) {
        const Row& r = rows[k];
        const int i = mOld + static_cast<int>(k);
        for (const auto& [j, v] : r.coefs) {
            if (j < 0 || j >= n_) throw std::out_of_range("cut column index");
            if (v != 0.0) cols_[j].entries.emplace_back(i, v);
        }
        SparseCol slack;
        slack.entries.emplace_back(i, -1.0);
        cols_.push_back(std::move(slack));
        cost_.push_back(0.0);
        lb_.push_back(r.lhs);
        ub_.push_back(r.rhs);
        vstat_.push_back(Basic);
    }
    const int mNew = mOld + static_cast<int>(rows.size());

    // Extend B^{-1}:  B_new = [[B, 0], [G, -I]]  =>
    //                 B_new^{-1} = [[B^{-1}, 0], [G B^{-1}, -I]]
    // where G holds the new-row coefficients of the old basic columns.
    for (int i = 0; i < mOld; ++i) binv_[i].resize(mNew, 0.0);
    for (std::size_t k = 0; k < rows.size(); ++k) {
        std::vector<double> gRow(mNew, 0.0);
        // g over old basic variables: structural coefs only (old slacks have
        // no entries in new rows).
        std::vector<double> g(mOld, 0.0);
        for (const auto& [j, v] : rows[k].coefs) {
            if (vstat_[j] == Basic) {
                for (int p = 0; p < mOld; ++p)
                    if (basic_[p] == j) {
                        g[p] += v;
                        break;
                    }
            }
        }
        for (int c = 0; c < mOld; ++c) {
            double s = 0.0;
            for (int p = 0; p < mOld; ++p) s += g[p] * binv_[p][c];
            gRow[c] = s;
        }
        gRow[mOld + k] = -1.0;
        binv_.push_back(std::move(gRow));
        basic_.push_back(n_ + mOld + static_cast<int>(k));
    }
    m_ = mNew;
    computeBasicSolution();
    SolveStatus st = dualSimplex();
    if (st == SolveStatus::NumericalTrouble || st == SolveStatus::IterLimit) {
        setupSlackBasis();
        st = primalSimplex(true);
    }
    return st;
}

void DenseSimplexSolver::changeBounds(int col, double lb, double ub) {
    lb_[col] = lb;
    ub_[col] = ub;
    if (!basisValid_ || vstat_[col] == Basic) return;
    // Re-snap nonbasic status to a consistent finite bound.
    if (vstat_[col] == AtLower && lb <= -kInf)
        vstat_[col] = (ub < kInf) ? AtUpper : FreeZero;
    else if (vstat_[col] == AtUpper && ub >= kInf)
        vstat_[col] = (lb > -kInf) ? AtLower : FreeZero;
}

SolveStatus DenseSimplexSolver::resolve() {
    if (hasCrossedBounds(lb_, ub_)) return SolveStatus::Infeasible;
    if (!basisValid_) return solve();
    computeBasicSolution();
    SolveStatus st = dualSimplex();
    if (st == SolveStatus::NumericalTrouble || st == SolveStatus::IterLimit) {
        setupSlackBasis();
        st = primalSimplex(true);
    }
    return st;
}

void DenseSimplexSolver::extractSolution() {
    primalX_.assign(n_, 0.0);
    const int tot = n_ + m_;
    std::vector<double> full(tot, 0.0);
    for (int j = 0; j < tot; ++j)
        if (vstat_[j] != Basic) full[j] = nonbasicValue(j);
    for (int i = 0; i < m_; ++i) full[basic_[i]] = xb_[i];
    for (int j = 0; j < n_; ++j) primalX_[j] = full[j];

    std::vector<double> cb(m_);
    for (int i = 0; i < m_; ++i) cb[i] = cost_[basic_[i]];
    priceDuals(cb, dualY_);

    redCost_.assign(n_, 0.0);
    for (int j = 0; j < n_; ++j)
        redCost_[j] = cost_[j] - columnDot(j, dualY_);

    obj_ = 0.0;
    for (int j = 0; j < n_; ++j) obj_ += cost_[j] * primalX_[j];
}

}  // namespace lp
