// Sparse LU factorization of the simplex basis with Forrest–Tomlin updates.
//
// This is the successor of the product-form-inverse eta file (lp/eta.hpp):
// instead of representing B^{-1} as a growing product of elementary etas —
// whose update etas densify between refactorizations — the basis is held as
//
//     B = L * U            (modulo row and pivot-order permutations)
//
// where L is a product of unit-lower-triangular elementary operations and U
// is a sparse permuted upper triangular matrix stored both column- and
// row-wise. A simplex pivot performs a Forrest–Tomlin rank-1 update: the
// entering column's partially solved "spike" replaces the leaving column of
// U, the leaving pivot moves to the last position, and the sub-diagonal row
// this creates is eliminated by row operations appended to the L product.
// Fill growth per update is one sparse column plus one single-entry row
// operation per eliminated position — bounded by U's own sparsity — instead
// of one near-dense eta per pivot.
//
// Factorization uses Markowitz pivoting: each Gaussian step picks, among a
// handful of sparsest active columns, the entry minimizing the fill bound
// (rowcount-1)*(colcount-1) subject to the threshold stability test
// |a_rc| >= kLuMarkowitzTau * max|a_*c|.
//
// Index conventions (shared with SimplexSolver): the factorization assigns
// every basic column a pivot row; after `factorize` the caller re-permutes
// its `basic_` array with `rowOfSlot` so that slot == pivot row. From then
// on `ftran` maps a right-hand side b (indexed by row) to the solution x
// with x[r] = coefficient of the variable basic in row r, and `btran` maps
// basic costs (indexed by row) to row duals — exactly the EtaFile contract.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "lp/sparsevec.hpp"

namespace lp {

/// Fill dropped from L/U on creation (products of rounded quantities).
inline constexpr double kLuDropTol = 1e-13;
/// Minimum admissible factorization / update pivot magnitude.
inline constexpr double kLuPivotTol = 1e-11;
/// Markowitz threshold: a pivot candidate must be at least this fraction of
/// its column's largest entry.
inline constexpr double kLuMarkowitzTau = 0.1;

/// Right-hand-side class for the hyper-sparse solves. The three RHS
/// families a simplex iteration feeds through the factor have persistently
/// different result densities (an entering structural column is far sparser
/// than a unit pricing row; a bound-flip patch is sparser still), so each
/// class keeps its own density EWMA + hysteresis state instead of sharing
/// one per direction — a dense burst of pricing rows no longer parks
/// entering-column solves on the dense fallback and vice versa.
enum class LuRhs {
    Column = 0,  ///< entering column / spike (FTRAN of a matrix column)
    Row = 1,     ///< pricing row ops (BTRAN unit row, FTRAN of the row)
    Flip = 2,    ///< bound-flip patch column accumulations
};
inline constexpr int kLuRhsClasses = 3;

class LuFactor {
public:
    /// Reset to an empty, invalid factor of dimension m.
    void clear(int m);

    int dim() const { return m_; }
    bool valid() const { return valid_; }

    /// Slack-basis shortcut: B = diag * I (one trivial pivot per row).
    void loadSlack(int m, double diag);

    /// Factorize the basis whose slot s (s = 0..m-1) holds column basic[s]
    /// of the CSC matrix. On success fills rowOfSlot[s] with the pivot row
    /// chosen for slot s (the caller re-permutes its basic array so that
    /// slot == row). On singularity returns false with rowOfSlot[s] == -1
    /// for every slot that could not be pivoted — callers can repair the
    /// basis by substituting slacks of the unused rows and retry.
    bool factorize(const std::vector<int>& basic,
                   const std::vector<int>& cscPtr,
                   const std::vector<int>& cscRow,
                   const std::vector<double>& cscVal,
                   std::vector<int>& rowOfSlot);

    /// FTRAN: x <- B^{-1} x (x dense, indexed by row).
    void ftran(std::vector<double>& x) const;

    /// FTRAN that additionally caches the post-L intermediate (the
    /// Forrest–Tomlin spike) so an immediately following update() of the
    /// same column needs no second solve. Used for entering columns.
    void ftranSpike(std::vector<double>& x);

    /// BTRAN: y <- B^{-T} y (y dense, indexed by row).
    void btran(std::vector<double>& y) const;

    // -- hyper-sparse solves (Gilbert–Peierls reach) ------------------------
    // Symbolic pass first: from the right-hand-side support, the set of
    // positions the substitution can possibly write (the "reach") is
    // computed by graph traversal over the L/U nonzero structure; the
    // numeric pass then visits only reached positions, in exactly the order
    // the dense loops would, so the two paths produce bit-identical nonzero
    // values. Each call decides between the reach kernel and the dense loop
    // via a result-density EWMA with hysteresis (enter dense above ~30%,
    // re-enter sparse below ~15%) kept per (direction, LuRhs class); the
    // return value reports which path ran (true = reach kernel). The result
    // support is sorted ascending either way, and the numeric result is
    // bit-identical on both paths regardless of the class passed.
    bool ftranSparse(SparseVec& x, LuRhs cls = LuRhs::Column);
    bool btranSparse(SparseVec& y, LuRhs cls = LuRhs::Row);
    /// Sparse analogue of ftranSpike(): caches the post-L spike (support +
    /// values) for the coming Forrest–Tomlin update. Always an entering
    /// column, so it shares the LuRhs::Column FTRAN controller.
    bool ftranSpikeSparse(SparseVec& x);
    /// Master switch for the reach kernels (density fallback still applies).
    void setHyperSparse(bool on) { hyper_ = on; }
    bool hyperSparse() const { return hyper_; }

    /// Forrest–Tomlin update: the variable basic in row leaveRow is replaced
    /// by the column last passed through ftranSpike(). Returns false — and
    /// invalidates the factor, forcing a refactorization — if no spike is
    /// cached or the new diagonal is numerically unusable.
    bool update(int leaveRow);

    /// Stored nonzeros across L ops, U off-diagonals and U diagonals. The
    /// simplex layer's refactorization policy is driven by the growth of
    /// this count relative to its value right after factorize().
    long fill() const {
        return static_cast<long>(lVal_.size() + uFill_) + m_;
    }
    /// Forrest–Tomlin updates absorbed since the last factorization.
    int updates() const { return updates_; }

private:
    /// U entry: the stable pivot id keys the nonzero graph the reach DFS
    /// walks (posOf_ comparisons), and the entry's pivot row is denormalized
    /// alongside so the dense substitution loops index the solution vector
    /// directly instead of chasing rowOfId_ per entry. Rows never change for
    /// a live id (Forrest–Tomlin only recycles the leaving id), so the copy
    /// cannot go stale. Same 16-byte footprint as the pair<int, double> it
    /// replaces (the pair padded its int to 8 bytes anyway).
    struct UEnt {
        int id;
        int row;
        double val;
    };
    static void eraseEntry(std::vector<UEnt>& v, int id);
    void appendLOp(int pivotRow);
    double* udiag() { return Udiag_.data(); }

    // Hyper-sparse internals.
    struct HyperCtl {
        double ewma = 0.0;  ///< smoothed result density per (dir, class)
        bool dense = false; ///< currently in dense fallback mode
    };
    bool chooseSparse(HyperCtl& c, const SparseVec& v) const;
    void noteDensity(HyperCtl& c, const SparseVec& v);
    void ftranLSparse(SparseVec& x);
    void ftranUSparse(SparseVec& x);
    void btranUSparse(SparseVec& y);
    void btranLSparse(SparseVec& y);

    int m_ = 0;
    bool valid_ = false;
    int updates_ = 0;

    // L: packed pool of elementary row operations, applied in order during
    // FTRAN: x[row] -= mult * x[pivotRow]. Unit diagonal, no divisions.
    std::vector<int> lPiv_;            ///< pivot row per op
    std::vector<std::size_t> lStart_;  ///< entry range per op (size ops+1)
    std::vector<int> lRow_;            ///< packed target rows
    std::vector<double> lVal_;         ///< packed multipliers

    // U: keyed by stable pivot id (0..m-1). Position in the pivot order is
    // indirection through order_/posOf_ so Forrest–Tomlin's cyclic
    // permutation never renumbers stored entries.
    std::vector<double> Udiag_;  ///< diagonal per id
    /// Column id: entries with posOf_[entry.id] < posOf_[column id].
    std::vector<std::vector<UEnt>> Ucol_;
    /// Row id: entries with posOf_[entry.id] > posOf_[row id].
    std::vector<std::vector<UEnt>> Urow_;
    std::vector<int> rowOfId_;  ///< pivot row (matrix row index) per id
    std::vector<int> idAtRow_;  ///< inverse of rowOfId_
    std::vector<int> order_;    ///< ids in pivot order
    std::vector<int> posOf_;    ///< position per id
    long uFill_ = 0;            ///< total Ucol_ (== Urow_) entries

    // Forrest–Tomlin scratch.
    std::vector<double> spike_;  ///< cached post-L entering column
    bool spikeValid_ = false;
    std::vector<double> alpha_;  ///< dense elimination accumulator (by id)
    /// Support of spike_ when it came from ftranSpikeSparse (sorted
    /// ascending); invariant: spike_ is exactly zero outside spikeIdx_
    /// whenever spikeSparse_ is set.
    std::vector<int> spikeIdx_;
    bool spikeSparse_ = false;

    // Reach-kernel indexes over L: op ids by pivot row (drives FTRAN
    // propagation) and by target row (drives transposed BTRAN propagation).
    // Both lists stay sorted ascending because ops are only ever appended.
    std::vector<std::vector<int>> lOpsOfRow_;
    std::vector<std::vector<int>> lOpsOfTarget_;
    /// The L-op reach indexes above are only consumed by the reach kernels.
    /// While the density controller has parked *both* solve directions on
    /// the dense fallback, update() skips the per-op index pushes (two
    /// scattered vector appends per elimination op — measurable in the
    /// FT-update hot path) and clears this flag; the first solve that picks
    /// a reach kernel again rebuilds both indexes from the op pool.
    bool lOpsValid_ = true;
    void rebuildLOps();

    // Reach scratch (cleared via their own contents after each solve).
    std::vector<int> heap_;                     ///< op-index / position heap
    std::vector<char> opQueued_;                ///< per-op dedup (BTRAN L^T)
    std::vector<char> elimQueued_;              ///< per-id dedup (FT update)
    std::vector<char> reachMark_;               ///< per-id DFS mark
    std::vector<int> reachIds_;                 ///< collected reach
    std::vector<std::pair<int, int>> dfsStack_; ///< (id, next edge)

    bool hyper_ = true;
    /// Density controllers per direction and RHS class, indexed by LuRhs;
    /// persist across refactorizations.
    HyperCtl ftranCtl_[kLuRhsClasses];
    HyperCtl btranCtl_[kLuRhsClasses];
    /// True when every (direction, class) controller sits on the dense
    /// fallback — the only state in which update() may skip reach-index
    /// upkeep, since no reach kernel can run before the next re-entry.
    bool allCtlDense() const {
        for (int k = 0; k < kLuRhsClasses; ++k)
            if (!ftranCtl_[k].dense || !btranCtl_[k].dense) return false;
        return true;
    }

    // Markowitz workspace, persistent across factorizations: warm resolves
    // refactorize every few dozen pivots, and reallocating ~6 vectors of
    // vectors per call dominated the factorization cost before this cache
    // (inner vectors keep their capacity; only sizes are reset per call).
    struct FactorWork {
        std::vector<std::vector<std::pair<int, double>>> col;
        std::vector<std::vector<int>> rowCols;
        std::vector<std::vector<std::pair<int, double>>> urow;  // (slot, val)
        std::vector<int> rowCount, colCount;
        std::vector<char> rowDone, colDone;
        std::vector<int> pivRow, pivSlot;
        std::vector<double> pivVal;
        std::vector<double> acc;
        std::vector<char> mark, seenSlot;
        std::vector<int> pattern, cand, singles, idOfSlot;
        void reset(int m);
    };
    FactorWork work_;
};

}  // namespace lp
