// MisdpSolver — sequential SCIP-SDP-analogue facade over the CIP framework.
#pragma once

#include "cip/solver.hpp"
#include "misdp/problem.hpp"

namespace misdp {

struct MisdpResult {
    cip::Status status = cip::Status::Unsolved;
    double objective = -1e100;  ///< best feasible value of sup obj'y
    double dualBound = 1e100;   ///< proven upper bound on sup obj'y
    std::vector<double> y;
    cip::Stats stats;
};

class MisdpSolver {
public:
    explicit MisdpSolver(MisdpProblem prob) : prob_(std::move(prob)) {}

    const MisdpProblem& problem() const { return prob_; }

    /// The CIP model (minimization of -obj'y with the linear rows; PSD
    /// blocks live in the plugins).
    cip::Model buildModel() const;

    /// Solve sequentially. "misdp/solvemode" in `params` selects "lp"
    /// (eigenvector cuts) or "sdp" (nonlinear branch-and-bound; default).
    MisdpResult solve(const cip::ParamSet& params = {}) const;

    /// Translate a finished CIP state into max-sense MISDP terms.
    static MisdpResult makeResult(const cip::Solver& solver);

private:
    MisdpProblem prob_;
};

}  // namespace misdp
