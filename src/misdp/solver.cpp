#include "misdp/solver.hpp"

#include "misdp/plugins.hpp"

namespace misdp {

cip::Model MisdpSolver::buildModel() const {
    cip::Model m;
    for (int i = 0; i < prob_.numVars; ++i)
        m.addVar(-prob_.obj[i], prob_.lb[i], prob_.ub[i], prob_.isInt[i]);
    for (const lp::Row& r : prob_.linearRows) m.addLinear(r);
    return m;
}

MisdpResult MisdpSolver::makeResult(const cip::Solver& solver) {
    MisdpResult res;
    res.status = solver.status();
    res.stats = solver.stats();
    res.dualBound = -solver.dualBound();
    if (solver.incumbent().valid()) {
        res.objective = -solver.incumbent().obj;
        res.y = solver.incumbent().x;
    }
    return res;
}

MisdpResult MisdpSolver::solve(const cip::ParamSet& params) const {
    cip::Solver solver;
    solver.setModel(buildModel());
    solver.params().merge(params);
    installMisdpPlugins(solver, prob_);
    solver.solve();
    return makeResult(solver);
}

}  // namespace misdp
