#include "misdp/instances.hpp"

#include <cmath>
#include <random>
#include <sstream>
#include <vector>

#include "linalg/factor.hpp"

namespace misdp {

using linalg::Matrix;

MisdpProblem genTrussTopology(int gridW, int gridH, double cbarFactor,
                              std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    // Nodes on a gridW x gridH lattice; the left column is clamped
    // (supports), all other nodes are free with 2 dofs each.
    struct Node {
        double x, y;
        bool fixed;
        int dof;  ///< first dof index, -1 if fixed
    };
    std::vector<Node> nodes;
    int ndof = 0;
    for (int i = 0; i < gridW; ++i)
        for (int j = 0; j < gridH; ++j) {
            Node n{double(i), double(j), i == 0, -1};
            if (!n.fixed) {
                n.dof = ndof;
                ndof += 2;
            }
            nodes.push_back(n);
        }
    // Bars between nodes within distance < 1.6 (axis + diagonal neighbors).
    struct Bar {
        int p, q;
        double len;
        std::vector<double> gamma;  ///< dof-space direction embedding
    };
    std::vector<Bar> bars;
    for (std::size_t p = 0; p < nodes.size(); ++p) {
        for (std::size_t q = p + 1; q < nodes.size(); ++q) {
            const double dx = nodes[q].x - nodes[p].x;
            const double dy = nodes[q].y - nodes[p].y;
            const double len = std::hypot(dx, dy);
            if (len > 1.6) continue;
            if (nodes[p].fixed && nodes[q].fixed) continue;
            Bar b{int(p), int(q), len, std::vector<double>(ndof, 0.0)};
            const double cx = dx / len, cy = dy / len;
            if (!nodes[p].fixed) {
                b.gamma[nodes[p].dof] = cx;
                b.gamma[nodes[p].dof + 1] = cy;
            }
            if (!nodes[q].fixed) {
                b.gamma[nodes[q].dof] = -cx;
                b.gamma[nodes[q].dof + 1] = -cy;
            }
            bars.push_back(std::move(b));
        }
    }
    const int nb = static_cast<int>(bars.size());

    // Load: unit force with random direction at the top-right free node.
    std::uniform_real_distribution<double> angle(-1.0, 1.0);
    std::vector<double> f(ndof, 0.0);
    const int loadNode = gridW * gridH - 1;
    const double fy = -1.0, fx = 0.4 * angle(rng);
    f[nodes[loadNode].dof] = fx;
    f[nodes[loadNode].dof + 1] = fy;

    // Full-structure stiffness (unit areas) and its compliance f' K^{-1} f.
    const double area = 1.0;
    Matrix kFull(ndof, ndof);
    std::vector<Matrix> kBar(nb);
    for (int j = 0; j < nb; ++j) {
        kBar[j] = Matrix(ndof, ndof);
        const double s = area / bars[j].len;
        for (int r = 0; r < ndof; ++r) {
            if (bars[j].gamma[r] == 0.0) continue;
            for (int c = 0; c < ndof; ++c)
                kBar[j](r, c) += s * bars[j].gamma[r] * bars[j].gamma[c];
        }
        kFull += kBar[j];
    }
    double cFull = 1.0;
    if (auto chol = linalg::Cholesky::factor(kFull, 1e-10)) {
        linalg::Vector u = chol->solve(f);
        cFull = linalg::dot(f, u);
    }
    const double cbar = cbarFactor * cFull;

    MisdpProblem p;
    p.init(nb);
    std::ostringstream nm;
    nm << "ttd" << gridW << "x" << gridH << "_s" << seed;
    p.name = nm.str();
    p.family = "TTD";
    for (int j = 0; j < nb; ++j) {
        p.obj[j] = -bars[j].len * area;  // maximize -volume
        p.lb[j] = 0.0;
        p.ub[j] = 1.0;
        p.isInt[j] = true;
    }
    // Compliance block: [[cbar, f'], [f, K(z)]] >= 0.
    sdp::SdpBlock blk;
    blk.dim = 1 + ndof;
    blk.c = Matrix(blk.dim, blk.dim);
    blk.c(0, 0) = cbar;
    for (int r = 0; r < ndof; ++r) {
        blk.c(0, r + 1) = f[r];
        blk.c(r + 1, 0) = f[r];
    }
    blk.a.assign(nb, Matrix{});
    for (int j = 0; j < nb; ++j) {
        Matrix a(blk.dim, blk.dim);
        for (int r = 0; r < ndof; ++r)
            for (int c = 0; c < ndof; ++c)
                a(r + 1, c + 1) = -kBar[j](r, c);
        blk.a[j] = std::move(a);
    }
    p.addBlock(std::move(blk));
    return p;
}

MisdpProblem genCardinalityLS(int d, int n, int k, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gauss(0.0, 1.0);
    Matrix a(d, n);
    for (int i = 0; i < d; ++i)
        for (int j = 0; j < n; ++j) a(i, j) = gauss(rng);
    // Planted k-sparse ground truth + noise.
    std::vector<double> xTrue(n, 0.0);
    for (int j = 0; j < k; ++j) xTrue[j] = gauss(rng);
    std::vector<double> b(d, 0.0);
    for (int i = 0; i < d; ++i) {
        for (int j = 0; j < n; ++j) b[i] += a(i, j) * xTrue[j];
        b[i] += 0.1 * gauss(rng);
    }
    const double bigM = 5.0;
    double tMax = 1.0;
    for (int i = 0; i < d; ++i) tMax += b[i] * b[i];
    tMax *= 4.0;

    MisdpProblem p;
    // Variables: x_0..x_{n-1}, z_0..z_{n-1}, t.
    p.init(2 * n + 1);
    std::ostringstream nm;
    nm << "cls" << d << "x" << n << "k" << k << "_s" << seed;
    p.name = nm.str();
    p.family = "CLS";
    const int tVar = 2 * n;
    for (int j = 0; j < n; ++j) {
        p.lb[j] = -bigM;
        p.ub[j] = bigM;
        p.lb[n + j] = 0.0;
        p.ub[n + j] = 1.0;
        p.isInt[n + j] = true;
    }
    p.lb[tVar] = 0.0;
    p.ub[tVar] = tMax;
    p.obj[tVar] = -1.0;  // maximize -t == minimize residual

    // |x_j| <= M z_j and cardinality.
    std::vector<std::pair<int, double>> card;
    for (int j = 0; j < n; ++j) {
        p.linearRows.push_back(
            lp::Row({{j, 1.0}, {n + j, -bigM}}, -lp::kInf, 0.0));
        p.linearRows.push_back(
            lp::Row({{j, 1.0}, {n + j, bigM}}, 0.0, lp::kInf));
        card.emplace_back(n + j, 1.0);
    }
    p.linearRows.push_back(lp::Row(std::move(card), -lp::kInf, double(k)));

    // Epigraph block: [[I, Ax-b], [(Ax-b)', t]] >= 0.
    sdp::SdpBlock blk;
    blk.dim = d + 1;
    blk.c = Matrix(blk.dim, blk.dim);
    for (int i = 0; i < d; ++i) {
        blk.c(i, i) = 1.0;
        blk.c(i, d) = -b[i];
        blk.c(d, i) = -b[i];
    }
    blk.a.assign(p.numVars, Matrix{});
    for (int j = 0; j < n; ++j) {
        Matrix m(blk.dim, blk.dim);
        for (int i = 0; i < d; ++i) {
            m(i, d) = -a(i, j);
            m(d, i) = -a(i, j);
        }
        blk.a[j] = std::move(m);
    }
    Matrix mt(blk.dim, blk.dim);
    mt(d, d) = -1.0;
    blk.a[tVar] = std::move(mt);
    p.addBlock(std::move(blk));
    return p;
}

MisdpProblem genMinKPartition(int n, int k, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> weight(0.5, 3.0);
    // Same-part indicator X_ij for i < j.
    auto varOf = [n](int i, int j) {
        // Index in the upper-triangle enumeration.
        int idx = 0;
        for (int r = 0; r < i; ++r) idx += n - 1 - r;
        return idx + (j - i - 1);
    };
    const int nv = n * (n - 1) / 2;
    MisdpProblem p;
    p.init(nv);
    std::ostringstream nm;
    nm << "mkp" << n << "k" << k << "_s" << seed;
    p.name = nm.str();
    p.family = "MkP";
    std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) {
            w[i][j] = weight(rng);
            const int v = varOf(i, j);
            p.lb[v] = 0.0;
            p.ub[v] = 1.0;
            p.isInt[v] = true;
            p.obj[v] = -w[i][j];  // maximize -cut-within... minimize weight
        }
    // Transitivity triangles.
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            for (int l = j + 1; l < n; ++l) {
                const int ij = varOf(i, j), jl = varOf(j, l), il = varOf(i, l);
                p.linearRows.push_back(lp::Row(
                    {{ij, 1.0}, {jl, 1.0}, {il, -1.0}}, -lp::kInf, 1.0));
                p.linearRows.push_back(lp::Row(
                    {{ij, 1.0}, {il, 1.0}, {jl, -1.0}}, -lp::kInf, 1.0));
                p.linearRows.push_back(lp::Row(
                    {{jl, 1.0}, {il, 1.0}, {ij, -1.0}}, -lp::kInf, 1.0));
            }
    // PSD block: M_ii = 1, M_ij = (k X_ij - 1)/(k-1) — feasible iff the
    // equivalence relation has at most k classes.
    sdp::SdpBlock blk;
    blk.dim = n;
    blk.c = Matrix(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            blk.c(i, j) = (i == j) ? 1.0 : -1.0 / (k - 1);
    blk.a.assign(nv, Matrix{});
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) {
            Matrix m(n, n);
            m(i, j) = -double(k) / (k - 1);
            m(j, i) = -double(k) / (k - 1);
            blk.a[varOf(i, j)] = std::move(m);
        }
    p.addBlock(std::move(blk));
    return p;
}

}  // namespace misdp
