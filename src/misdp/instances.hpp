// Generators for the three CBLIB families of Table 4 / Figure 1:
//   TTD  — truss topology design with binary bars (compliance constraint as
//          a Schur-complement SDP block over a 2D ground structure);
//   CLS  — cardinality-constrained least squares (epigraph SDP block,
//          big-M cardinality coupling);
//   MkP  — minimum k-partitioning (binary same-part variables, triangle
//          inequalities, PSD matrix constraint).
#pragma once

#include <cstdint>

#include "misdp/problem.hpp"

namespace misdp {

/// Truss topology design: `gridW` x `gridH` node grid (left column
/// supported, load at the right), binary bar selection, compliance bound
/// `cbarFactor` times the full structure's compliance.
MisdpProblem genTrussTopology(int gridW, int gridH, double cbarFactor,
                              std::uint64_t seed = 1);

/// Cardinality-constrained least squares: d observations, n regressors,
/// at most k nonzeros.
MisdpProblem genCardinalityLS(int d, int n, int k, std::uint64_t seed = 1);

/// Minimum k-partitioning on a random weighted complete graph with n nodes.
MisdpProblem genMinKPartition(int n, int k, std::uint64_t seed = 1);

}  // namespace misdp
