// Mixed-integer semidefinite program (paper problem (8)):
//
//   sup  b'y
//   s.t. C_k - sum_i A_{k,i} y_i >= 0   for every block k
//        linear rows on y (optional)
//        l <= y <= u,  y_i integer for i in I
#pragma once

#include <string>
#include <vector>

#include "lp/model.hpp"
#include "sdp/problem.hpp"

namespace misdp {

struct MisdpProblem {
    int numVars = 0;
    std::vector<double> obj;  ///< maximize obj'y
    std::vector<double> lb, ub;
    std::vector<bool> isInt;
    std::vector<sdp::SdpBlock> blocks;
    std::vector<lp::Row> linearRows;
    std::string name;
    std::string family;  ///< "TTD", "CLS", "MkP" (benchmark bookkeeping)

    void init(int m) {
        numVars = m;
        obj.assign(m, 0.0);
        lb.assign(m, -1e30);
        ub.assign(m, 1e30);
        isInt.assign(m, false);
    }

    void addBlock(sdp::SdpBlock block) { blocks.push_back(std::move(block)); }

    /// Check PSD blocks + linear rows + bounds + integrality of a point.
    bool isFeasible(const std::vector<double>& y, double tol = 1e-6) const;

    double objective(const std::vector<double>& y) const {
        double s = 0.0;
        for (int i = 0; i < numVars; ++i) s += obj[i] * y[i];
        return s;
    }
};

}  // namespace misdp
