// Extended sparse-SDPA (.dat-s) I/O for MISDPs — the file format SCIP-SDP
// consumes (SDPA with a "*INTEGER" section marking integer variables; see
// Gally/Pfetsch/Ulbrich 2018). Linear rows are stored as a diagonal block,
// the standard SDPA convention (negative block size).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "misdp/problem.hpp"

namespace misdp {

bool writeSdpa(std::ostream& os, const MisdpProblem& prob);
std::optional<MisdpProblem> readSdpa(std::istream& is);

bool writeSdpaFile(const std::string& path, const MisdpProblem& prob);
std::optional<MisdpProblem> readSdpaFile(const std::string& path);

}  // namespace misdp
