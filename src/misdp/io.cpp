#include "misdp/io.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace misdp {

namespace {
constexpr double kBoundInf = 1e29;
}

bool writeSdpa(std::ostream& os, const MisdpProblem& prob) {
    os << "\"" << (prob.name.empty() ? "misdp" : prob.name) << "\"\n";
    const int m = prob.numVars;
    // Blocks: the SDP blocks, then one diagonal block holding linear rows
    // and finite variable bounds (SDPA encodes LP rows as a negative-size
    // diagonal block).
    int diagSize = 0;
    struct DiagEntry {
        // row: a'y >= rhs  encoded as sum a_i y_i - rhs on the diagonal.
        std::vector<std::pair<int, double>> coefs;
        double rhs;
    };
    std::vector<DiagEntry> diag;
    for (const lp::Row& r : prob.linearRows) {
        if (r.lhs > -kBoundInf) {
            DiagEntry d;
            d.coefs = r.coefs;
            d.rhs = r.lhs;
            diag.push_back(std::move(d));
        }
        if (r.rhs < kBoundInf) {
            DiagEntry d;
            for (auto [j, c] : r.coefs) d.coefs.emplace_back(j, -c);
            d.rhs = -r.rhs;
            diag.push_back(std::move(d));
        }
    }
    for (int j = 0; j < m; ++j) {
        if (prob.lb[j] > -kBoundInf) {
            DiagEntry d;
            d.coefs = {{j, 1.0}};
            d.rhs = prob.lb[j];
            diag.push_back(std::move(d));
        }
        if (prob.ub[j] < kBoundInf) {
            DiagEntry d;
            d.coefs = {{j, -1.0}};
            d.rhs = -prob.ub[j];
            diag.push_back(std::move(d));
        }
    }
    diagSize = static_cast<int>(diag.size());
    const int nBlocks =
        static_cast<int>(prob.blocks.size()) + (diagSize > 0 ? 1 : 0);
    os << m << " = mDIM\n" << nBlocks << " = nBLOCK\n";
    for (std::size_t k = 0; k < prob.blocks.size(); ++k)
        os << prob.blocks[k].dim << (k + 1 < prob.blocks.size() || diagSize
                                         ? " "
                                         : "");
    if (diagSize > 0) os << -diagSize;
    os << " = bLOCKsTRUCT\n";
    os.precision(17);
    for (int j = 0; j < m; ++j) os << prob.obj[j] << (j + 1 < m ? " " : "");
    os << "\n";
    // Entries: <matno> <blkno> <i> <j> <value>, matno 0 = constant matrix.
    // SDPA convention: max b'y s.t. sum_i y_i F_i - F_0 >= 0, i.e.
    // F_i = -A_i and F_0 = -C in our C - sum A_i y_i >= 0 form.
    auto emit = [&](int matno, int blkno, int i, int j, double v) {
        if (std::fabs(v) < 1e-300) return;
        os << matno << " " << blkno << " " << i + 1 << " " << j + 1 << " "
           << v << "\n";
    };
    for (std::size_t k = 0; k < prob.blocks.size(); ++k) {
        const sdp::SdpBlock& blk = prob.blocks[k];
        for (int i = 0; i < blk.dim; ++i)
            for (int j = i; j < blk.dim; ++j)
                emit(0, static_cast<int>(k) + 1, i, j, -blk.c(i, j));
        for (int v = 0; v < m && v < static_cast<int>(blk.a.size()); ++v) {
            if (blk.a[v].empty()) continue;
            for (int i = 0; i < blk.dim; ++i)
                for (int j = i; j < blk.dim; ++j)
                    emit(v + 1, static_cast<int>(k) + 1, i, j,
                         -blk.a[v](i, j));
        }
    }
    const int diagBlk = static_cast<int>(prob.blocks.size()) + 1;
    for (int d = 0; d < diagSize; ++d) {
        emit(0, diagBlk, d, d, diag[d].rhs);
        for (auto [j, c] : diag[d].coefs) emit(j + 1, diagBlk, d, d, c);
    }
    os << "*INTEGER\n";
    for (int j = 0; j < m; ++j)
        if (prob.isInt[j]) os << "*" << j + 1 << "\n";
    return static_cast<bool>(os);
}

std::optional<MisdpProblem> readSdpa(std::istream& is) {
    // Tolerant line-based parser for the subset written above.
    std::string line;
    auto nextContentLine = [&](std::string& out) -> bool {
        while (std::getline(is, line)) {
            if (line.empty()) continue;
            if (line[0] == '"' || line[0] == '#') continue;
            out = line;
            return true;
        }
        return false;
    };
    // Optional comment/title line is skipped by nextContentLine's '"' rule.
    std::string l;
    if (!nextContentLine(l)) return std::nullopt;
    int m = 0;
    {
        std::istringstream ls(l);
        if (!(ls >> m) || m <= 0) return std::nullopt;
    }
    if (!nextContentLine(l)) return std::nullopt;
    int nBlocks = 0;
    {
        std::istringstream ls(l);
        if (!(ls >> nBlocks) || nBlocks <= 0) return std::nullopt;
    }
    if (!nextContentLine(l)) return std::nullopt;
    std::vector<int> blockStruct;
    {
        // Strip commas/braces occasionally used in SDPA files.
        for (char& c : l)
            if (c == ',' || c == '{' || c == '}' || c == '(' || c == ')')
                c = ' ';
        std::istringstream ls(l);
        int b;
        while (ls >> b) blockStruct.push_back(b);
        if (static_cast<int>(blockStruct.size()) < nBlocks)
            return std::nullopt;
        blockStruct.resize(nBlocks);
    }
    if (!nextContentLine(l)) return std::nullopt;
    MisdpProblem prob;
    prob.init(m);
    {
        for (char& c : l)
            if (c == ',' || c == '{' || c == '}') c = ' ';
        std::istringstream ls(l);
        for (int j = 0; j < m; ++j)
            if (!(ls >> prob.obj[j])) return std::nullopt;
    }
    // Prepare blocks (diagonal blocks become linear rows).
    std::vector<int> sdpBlockIndex(nBlocks, -1);
    std::vector<int> diagOfBlock(nBlocks, 0);
    for (int k = 0; k < nBlocks; ++k) {
        if (blockStruct[k] > 0) {
            sdp::SdpBlock blk;
            blk.dim = blockStruct[k];
            blk.c = linalg::Matrix(blk.dim, blk.dim);
            blk.a.assign(m, linalg::Matrix{});
            sdpBlockIndex[k] = static_cast<int>(prob.blocks.size());
            prob.blocks.push_back(std::move(blk));
        } else {
            diagOfBlock[k] = -blockStruct[k];
        }
    }
    // Diagonal entries accumulate into rows: sum coef*y >= rhs.
    std::map<std::pair<int, int>, lp::Row> diagRows;  // (block, i) -> row
    // Entry lines until *INTEGER or EOF.
    std::vector<int> integer;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        if (line[0] == '*') {
            std::istringstream ls(line.substr(1));
            int v;
            if (ls >> v && v >= 1 && v <= m) integer.push_back(v - 1);
            continue;
        }
        for (char& c : line)
            if (c == ',' || c == '{' || c == '}') c = ' ';
        std::istringstream ls(line);
        int matno, blkno, i, j;
        double val;
        if (!(ls >> matno >> blkno >> i >> j >> val)) continue;
        if (blkno < 1 || blkno > nBlocks || matno < 0 || matno > m)
            return std::nullopt;
        const int k = blkno - 1;
        if (sdpBlockIndex[k] >= 0) {
            sdp::SdpBlock& blk = prob.blocks[sdpBlockIndex[k]];
            if (i < 1 || j < 1 || i > blk.dim || j > blk.dim)
                return std::nullopt;
            // F_i = -A_i, F_0 = -C.
            if (matno == 0) {
                blk.c(i - 1, j - 1) = -val;
                blk.c(j - 1, i - 1) = -val;
            } else {
                if (blk.a[matno - 1].empty())
                    blk.a[matno - 1] = linalg::Matrix(blk.dim, blk.dim);
                blk.a[matno - 1](i - 1, j - 1) = -val;
                blk.a[matno - 1](j - 1, i - 1) = -val;
            }
        } else {
            if (i != j || i < 1 || i > diagOfBlock[k]) return std::nullopt;
            lp::Row& row = diagRows[{k, i}];
            if (matno == 0)
                row.lhs = val;  // rhs of (sum coef y >= rhs)
            else
                row.coefs.emplace_back(matno - 1, val);
        }
    }
    for (auto& [key, row] : diagRows) {
        row.rhs = lp::kInf;
        if (row.lhs <= -kBoundInf) row.lhs = 0.0;  // entries default to 0
        // Single-variable rows become bounds.
        if (row.coefs.size() == 1) {
            auto [j, c] = row.coefs[0];
            if (c > 0)
                prob.lb[j] = std::max(prob.lb[j], row.lhs / c);
            else if (c < 0)
                prob.ub[j] = std::min(prob.ub[j], row.lhs / c);
            continue;
        }
        prob.linearRows.push_back(row);
    }
    for (int j : integer) prob.isInt[j] = true;
    return prob;
}

bool writeSdpaFile(const std::string& path, const MisdpProblem& prob) {
    std::ofstream out(path);
    if (!out) return false;
    return writeSdpa(out, prob);
}

std::optional<MisdpProblem> readSdpaFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    return readSdpa(in);
}

}  // namespace misdp
