#include "misdp/plugins.hpp"

#include <cmath>

#include "linalg/eigen.hpp"
#include "sdp/ipm.hpp"

namespace misdp {

namespace {
constexpr double kPsdTol = 1e-6;
constexpr int kMaxCutsPerBlock = 2;
}  // namespace

bool MisdpProblem::isFeasible(const std::vector<double>& y, double tol) const {
    for (int i = 0; i < numVars; ++i) {
        if (y[i] < lb[i] - tol || y[i] > ub[i] + tol) return false;
        if (isInt[i]) {
            const double f = y[i] - std::floor(y[i]);
            if (f > tol && f < 1.0 - tol) return false;
        }
    }
    for (const lp::Row& r : linearRows) {
        const double a = r.activity(y);
        if (a < r.lhs - tol || a > r.rhs + tol) return false;
    }
    for (const sdp::SdpBlock& blk : blocks)
        if (linalg::smallestEigenvalue(blk.zMatrix(y)) < -tol) return false;
    return true;
}

// ---------------------------------------------------------------------------
// SdpEigenCutHandler
// ---------------------------------------------------------------------------

SdpEigenCutHandler::SdpEigenCutHandler(const MisdpProblem& prob,
                                       bool separationEnabled)
    : ConstraintHandler("sdp_eigencut", 0),
      prob_(prob),
      separationEnabled_(separationEnabled) {}

bool SdpEigenCutHandler::check(cip::Solver&, const std::vector<double>& x) {
    for (const sdp::SdpBlock& blk : prob_.blocks)
        if (linalg::smallestEigenvalue(blk.zMatrix(x)) < -kPsdTol)
            return false;
    return true;
}

int SdpEigenCutHandler::separate(cip::Solver& solver,
                                 const std::vector<double>& x) {
    if (!separationEnabled_) return 0;
    int cuts = 0;
    for (const sdp::SdpBlock& blk : prob_.blocks) {
        linalg::Matrix z = blk.zMatrix(x);
        linalg::EigenSystem sys = linalg::symmetricEigen(z);
        for (std::size_t k = 0;
             k < sys.values.size() && k < kMaxCutsPerBlock; ++k) {
            if (sys.values[k] >= -kPsdTol) break;
            const linalg::Vector v = sys.vector(k);
            // v'(C - sum A_i y_i)v >= 0  <=>  sum (v'A_i v) y_i <= v'C v.
            std::vector<std::pair<int, double>> coefs;
            for (int i = 0; i < prob_.numVars; ++i) {
                if (static_cast<int>(blk.a.size()) <= i || blk.a[i].empty())
                    continue;
                const double c = linalg::quadForm(blk.a[i], v);
                if (std::fabs(c) > 1e-12) coefs.emplace_back(i, c);
            }
            const double rhs = linalg::quadForm(blk.c, v);
            if (coefs.empty()) continue;
            solver.addCut(lp::Row(std::move(coefs), -lp::kInf, rhs));
            ++cuts;
        }
        // Eigendecomposition cost charged as deterministic work.
        solver.addCost(blk.dim);
    }
    return cuts;
}

int SdpEigenCutHandler::enforce(cip::Solver& solver,
                                const std::vector<double>& x,
                                cip::BranchDecision&) {
    const bool saved = separationEnabled_;
    separationEnabled_ = true;  // enforcement must be able to cut
    const int cuts = separate(solver, x);
    separationEnabled_ = saved;
    return cuts;
}

// ---------------------------------------------------------------------------
// SdpRelaxator
// ---------------------------------------------------------------------------

SdpRelaxator::SdpRelaxator(const MisdpProblem& prob)
    : Relaxator("sdp_relax", 0), prob_(prob) {}

cip::RelaxResult SdpRelaxator::solveRelaxation(cip::Solver& solver) {
    sdp::SdpProblem sp;
    sp.init(prob_.numVars);
    sp.b = prob_.obj;
    sp.lb = solver.localLb();
    sp.ub = solver.localUb();
    sp.blocks = prob_.blocks;
    // Linear rows become 1x1 blocks: rhs - a'y >= 0 and a'y - lhs >= 0.
    for (const lp::Row& r : prob_.linearRows) {
        if (r.rhs < lp::kInf) {
            sdp::SdpBlock blk;
            blk.dim = 1;
            blk.c = linalg::Matrix(1, 1, r.rhs);
            blk.a.assign(prob_.numVars, linalg::Matrix{});
            for (const auto& [j, c] : r.coefs)
                blk.a[j] = linalg::Matrix(1, 1, c);
            sp.addBlock(std::move(blk));
        }
        if (r.lhs > -lp::kInf) {
            sdp::SdpBlock blk;
            blk.dim = 1;
            blk.c = linalg::Matrix(1, 1, -r.lhs);
            blk.a.assign(prob_.numVars, linalg::Matrix{});
            for (const auto& [j, c] : r.coefs)
                blk.a[j] = linalg::Matrix(1, 1, -c);
            sp.addBlock(std::move(blk));
        }
    }

    sdp::SdpResult sr = sdp::solveSdp(sp);
    int dims = 0;
    for (const auto& blk : sp.blocks) dims += blk.dim;
    solver.addCost(static_cast<std::int64_t>(sr.iterations) * (1 + dims / 4));

    cip::RelaxResult rr;
    switch (sr.status) {
        case sdp::SdpStatus::Infeasible:
            rr.status = cip::RelaxResult::Status::Infeasible;
            return rr;
        case sdp::SdpStatus::Failed:
            rr.status = cip::RelaxResult::Status::Failed;
            return rr;
        case sdp::SdpStatus::Optimal:
            break;
    }
    rr.status = cip::RelaxResult::Status::Solved;
    // CIP minimizes -obj'y; the SDP's primal upper bound on sup obj'y is a
    // valid lower bound after negation.
    rr.bound = -sr.upperBound;
    rr.x = std::move(sr.y);
    return rr;
}

// ---------------------------------------------------------------------------
// MisdpRoundingHeuristic
// ---------------------------------------------------------------------------

MisdpRoundingHeuristic::MisdpRoundingHeuristic(const MisdpProblem& prob)
    : Heuristic("misdp_rounding", 0), prob_(prob) {}

std::optional<cip::Solution> MisdpRoundingHeuristic::run(
    cip::Solver& solver, const std::vector<double>& x) {
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    std::optional<cip::Solution> best;
    const int trials = solver.params().getInt("misdp/roundingtrials", 6);
    for (int t = 0; t < trials; ++t) {
        std::vector<double> y = x;
        for (int i = 0; i < prob_.numVars; ++i) {
            if (!prob_.isInt[i]) continue;
            const double f = y[i] - std::floor(y[i]);
            const double p = (t == 0) ? 0.5 : unif(solver.rng());
            y[i] = (f > p) ? std::ceil(y[i]) : std::floor(y[i]);
            y[i] = std::clamp(y[i], solver.localLb()[i], solver.localUb()[i]);
        }
        if (!prob_.isFeasible(y, 1e-6)) continue;
        cip::Solution s;
        s.x = std::move(y);
        const double obj = -prob_.objective(s.x);
        if (!best || obj < -prob_.objective(best->x)) best = std::move(s);
    }
    return best;
}

// ---------------------------------------------------------------------------

void installMisdpPlugins(cip::Solver& solver, const MisdpProblem& prob) {
    const bool sdpMode =
        solver.params().getString("misdp/solvemode", "sdp") == "sdp";
    solver.addConstraintHandler(
        std::make_unique<SdpEigenCutHandler>(prob, !sdpMode));
    if (sdpMode) solver.setRelaxator(std::make_unique<SdpRelaxator>(prob));
    solver.addHeuristic(std::make_unique<MisdpRoundingHeuristic>(prob));
    // Generic LP diving is meaningless against PSD constraints in LP mode
    // and unavailable in relaxator mode anyway.
    solver.params().setBool("heuristics/diving/enabled", false);
}

}  // namespace misdp
