// SCIP-SDP-style plugins for the CIP framework.
//
// The two solution approaches of the paper (section 3.2):
//   * LP-based cutting planes — SdpEigenCutHandler separates the
//     Sherali-Fraticelli eigenvector cuts v'(C - sum A_i y_i)v >= 0 for an
//     eigenvector v of the most negative eigenvalue;
//   * nonlinear branch-and-bound — SdpRelaxator solves the continuous SDP
//     relaxation at every node through the interior-point solver, falling
//     back to the penalty formulation when Slater fails.
// MisdpRoundingHeuristic is the randomized rounding heuristic; LP-mode dual
// fixing comes for free from the CIP framework's reduced-cost fixing.
#pragma once

#include "cip/plugins.hpp"
#include "cip/solver.hpp"
#include "misdp/problem.hpp"

namespace misdp {

class SdpEigenCutHandler : public cip::ConstraintHandler {
public:
    /// `separationEnabled` false turns this into a pure feasibility checker
    /// (used in SDP-relaxator mode, where the relaxation enforces PSD-ness).
    SdpEigenCutHandler(const MisdpProblem& prob, bool separationEnabled);

    bool check(cip::Solver& solver, const std::vector<double>& x) override;
    int separate(cip::Solver& solver, const std::vector<double>& x) override;
    int enforce(cip::Solver& solver, const std::vector<double>& x,
                cip::BranchDecision& decision) override;

private:
    const MisdpProblem& prob_;
    bool separationEnabled_;
};

class SdpRelaxator : public cip::Relaxator {
public:
    explicit SdpRelaxator(const MisdpProblem& prob);
    cip::RelaxResult solveRelaxation(cip::Solver& solver) override;

private:
    const MisdpProblem& prob_;
};

class MisdpRoundingHeuristic : public cip::Heuristic {
public:
    explicit MisdpRoundingHeuristic(const MisdpProblem& prob);
    std::optional<cip::Solution> run(cip::Solver& solver,
                                     const std::vector<double>& x) override;

private:
    const MisdpProblem& prob_;
};

/// Install the SCIP-SDP-style plugin set; the parameter
/// "misdp/solvemode" ("lp" | "sdp") selects the approach.
void installMisdpPlugins(cip::Solver& solver, const MisdpProblem& prob);

}  // namespace misdp
