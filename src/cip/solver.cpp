#include "cip/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cip {

namespace {
constexpr double kIntTol = 1e-6;
constexpr double kBoundTol = 1e-9;
constexpr double kFeasTol = 1e-6;
}  // namespace

const char* toString(Status s) {
    switch (s) {
        case Status::Unsolved: return "unsolved";
        case Status::Optimal: return "optimal";
        case Status::Infeasible: return "infeasible";
        case Status::Unbounded: return "unbounded";
        case Status::NodeLimit: return "nodelimit";
        case Status::CostLimit: return "costlimit";
        case Status::GapLimit: return "gaplimit";
        case Status::Interrupted: return "interrupted";
    }
    return "?";
}

Solver::Solver() : params_(ParamSet::emphasis("default")) {}
Solver::~Solver() = default;

void Solver::setModel(Model m) {
    model_ = std::move(m);
    phase_ = Phase::Setup;
    status_ = Status::Unsolved;
}

void Solver::addPresolver(std::unique_ptr<Presolver> p) {
    presolvers_.push_back(std::move(p));
}
void Solver::addPropagator(std::unique_ptr<Propagator> p) {
    propagators_.push_back(std::move(p));
}
void Solver::addSeparator(std::unique_ptr<Separator> p) {
    separators_.push_back(std::move(p));
}
void Solver::addHeuristic(std::unique_ptr<Heuristic> p) {
    heuristics_.push_back(std::move(p));
}
void Solver::addBranchrule(std::unique_ptr<Branchrule> p) {
    branchrules_.push_back(std::move(p));
    std::stable_sort(branchrules_.begin(), branchrules_.end(),
                     [](const auto& a, const auto& b) {
                         return a->priority() > b->priority();
                     });
}
void Solver::addConstraintHandler(std::unique_ptr<ConstraintHandler> p) {
    conshdlrs_.push_back(std::move(p));
}
void Solver::addEventHandler(std::unique_ptr<EventHandler> p) {
    eventhdlrs_.push_back(std::move(p));
}
void Solver::setRelaxator(std::unique_ptr<Relaxator> r) {
    relaxator_ = std::move(r);
}

ConstraintHandler* Solver::findConstraintHandler(const std::string& name) {
    for (auto& h : conshdlrs_)
        if (h->name() == name) return h.get();
    return nullptr;
}

bool Solver::integralObjective() const {
    if (!params_.getBool("misc/objintegral", false)) return false;
    return true;
}

double Solver::cutoffSlack() const {
    // With an integral objective, any improving solution is better by >= 1.
    return integralObjective() ? 1.0 - 1e-6 : 1e-9;
}

double Solver::primalBound() const {
    return incumbent_.valid() ? incumbent_.obj : kInf;
}

double Solver::dualBound() const {
    if (phase_ == Phase::Done &&
        (status_ == Status::Optimal || status_ == Status::Infeasible))
        return primalBound();
    double bound = kInf;
    bool any = false;
    for (const auto& n : open_) {
        bound = std::min(bound, n->lowerBound);
        any = true;
    }
    if (processing_) {
        bound = std::min(bound, processing_->lowerBound);
        any = true;
    }
    if (!any) return primalBound();
    if (integralObjective() && bound > -kInf) bound = std::ceil(bound - 1e-6);
    return std::min(bound, primalBound());
}

double Solver::gap() const {
    const double p = primalBound();
    const double d = dualBound();
    if (p >= kInf || d <= -kInf) return kInf;
    if (std::fabs(p - d) < 1e-9) return 0.0;
    return std::fabs(p - d) / std::max(1e-9, std::fabs(p));
}

// ---------------------------------------------------------------------------
// Setup / presolve
// ---------------------------------------------------------------------------

void Solver::initSolve() {
    if (phase_ != Phase::Setup) return;
    const int n = model_.numVars();
    rootLb_.resize(n);
    rootUb_.resize(n);
    for (int j = 0; j < n; ++j) {
        rootLb_[j] = model_.var(j).lb;
        rootUb_[j] = model_.var(j).ub;
    }
    // Apply transferred bound changes before presolving: this is what makes
    // layered presolving effective deep in the tree.
    for (const BoundChange& bc : rootDesc_.boundChanges) {
        if (bc.var < 0 || bc.var >= n) continue;
        rootLb_[bc.var] = std::max(rootLb_[bc.var], bc.lb);
        rootUb_[bc.var] = std::min(rootUb_[bc.var], bc.ub);
    }
    rng_.seed(static_cast<std::uint64_t>(
        params_.getInt("randomization/permutationseed", 0)));
    pseudo_.assign(n, {});
    cutPool_.clear();
    pendingCuts_.clear();
    pendingCutTokens_.clear();
    retiredTokens_.clear();
    // nextCutToken_ is deliberately NOT reset: tokens are unique over the
    // Solver's lifetime, so a plugin pool surviving a re-init can never
    // confuse an old token with a new cut.
    managedRows_.clear();
    lpBuilt_ = false;
    lpDualsFresh_ = false;
    incumbent_ = {};
    cutoff_ = kInf;
    stats_ = {};
    open_.clear();
    processing_.reset();
    nextNodeId_ = 0;

    phase_ = Phase::Presolving;
    curLb_ = rootLb_;
    curUb_ = rootUb_;
    bool infeasible = false;
    for (int j = 0; j < n && !infeasible; ++j)
        if (curLb_[j] > curUb_[j] + kBoundTol) infeasible = true;
    if (!infeasible && params_.getBool("presolving/enabled", true)) {
        runPresolve();
        if (status_ == Status::Infeasible) {
            phase_ = Phase::Done;
            return;
        }
    }
    rootLb_ = curLb_;
    rootUb_ = curUb_;
    if (infeasible) {
        status_ = Status::Infeasible;
        phase_ = Phase::Done;
        return;
    }

    auto root = std::make_unique<Node>();
    root->id = nextNodeId_++;
    root->desc = rootDesc_;
    root->lowerBound = rootDesc_.lowerBound;
    root->estimate = rootDesc_.lowerBound;
    open_.push_back(std::move(root));
    ++stats_.nodesCreated;
    phase_ = Phase::Solving;
}

void Solver::runPresolve() {
    const int maxRounds = params_.getInt("presolving/maxrounds", 10);
    for (int round = 0; round < maxRounds; ++round) {
        bool reduced = false;
        // Built-in linear bound tightening participates in presolving.
        ReduceResult r = linearPropagation();
        if (r == ReduceResult::Infeasible) {
            status_ = Status::Infeasible;
            return;
        }
        reduced |= (r == ReduceResult::Reduced);
        for (auto& p : presolvers_) {
            r = p->presolve(*this);
            if (r == ReduceResult::Infeasible) {
                status_ = Status::Infeasible;
                return;
            }
            reduced |= (r == ReduceResult::Reduced);
        }
        if (!reduced) break;
    }
}

// ---------------------------------------------------------------------------
// LP management
// ---------------------------------------------------------------------------

void Solver::buildLp() {
    lp::LpModel lpm;
    const int n = model_.numVars();
    for (int j = 0; j < n; ++j)
        lpm.addCol(model_.var(j).obj, curLb_[j], curUb_[j]);
    for (int i = 0; i < model_.numRows(); ++i) lpm.addRow(model_.row(i));
    for (PoolCut& pc : cutPool_) pc.lpIndex = lpm.addRow(pc.row);
    for (ManagedRow& mr : managedRows_)
        mr.lpIndex = lpm.addRow(mr.row);
    // Basis factorization kernel: sparse LU with Forrest–Tomlin updates by
    // default; "pfi" selects the product-form eta file (kept for comparison
    // runs and as a numerical fallback).
    lp_.setFactorization(
        params_.getString("lp/factorization", "lu") == "pfi"
            ? lp::Factorization::PFI
            : lp::Factorization::LU);
    // Dual pricing rule: "auto" (default) uses exact dual steepest-edge for
    // bound-changed resolves and devex for cold solves (see solveLp);
    // "devex"/"dse" pin the rule for comparison runs.
    const std::string pricing = params_.getString("lp/pricing", "auto");
    lpPricingAuto_ = (pricing == "auto");
    lp_.setPricing(pricing == "dse" ? lp::Pricing::DSE : lp::Pricing::Devex);
    lp_.setHyperSparse(params_.getBool("lp/hypersparse", true));
    lp_.load(lpm);
    lpLb_ = curLb_;
    lpUb_ = curUb_;
    lpBuilt_ = true;
    lpSolutionValid_ = false;
    lpDualsFresh_ = false;
}

lp::SolveStatus Solver::flushPendingCutsToLp() {
    if (pendingCuts_.empty()) return lp::SolveStatus::Optimal;
    const int base = lp_.numRows();
    const long before = lp_.iterations();
    const lp::SolveStatus st = lp_.addRowsAndResolve(pendingCuts_);
    stats_.lpIterations += lp_.iterations() - before;
    syncLpStats();
    pendingCost_ += lp_.iterations() - before;
    lpDualsFresh_ = (st == lp::SolveStatus::Optimal);
    for (std::size_t k = 0; k < pendingCuts_.size(); ++k) {
        PoolCut pc;
        pc.row = std::move(pendingCuts_[k]);
        pc.token = pendingCutTokens_[k];
        pc.lpIndex = base + static_cast<int>(k);
        cutPool_.push_back(std::move(pc));
    }
    pendingCuts_.clear();
    pendingCutTokens_.clear();
    return st;
}

void Solver::manageCutPool() {
    if (cutPool_.empty()) return;
    // Age cuts using the duals of the last optimal LP basis: a cut with a
    // (near-)zero dual multiplier was not binding. Aging needs both a built
    // LP (so lpIndex values are row positions, see the PoolCut invariant)
    // and fresh duals — if the last (re)solve failed (NumericalTrouble,
    // iteration limit, infeasible probe), the stored duals are stale
    // garbage and must not drive cut deletion. Dominance retirement below
    // is independent of either condition.
    if (lpBuilt_ && lpDualsFresh_) {
        const auto& duals = lp_.duals();
        for (PoolCut& pc : cutPool_) {
            if (pc.lpIndex < 0 || pc.lpIndex >= static_cast<int>(duals.size()))
                continue;
            // Cache the magnitude for overflow scoring: when a later prune
            // runs with stale duals, the last fresh price is still a far
            // better importance signal than falling back to aging.
            pc.lastDual = std::fabs(duals[pc.lpIndex]);
            if (pc.lastDual > 1e-9)
                pc.age = 0;
            else
                ++pc.age;
        }
    }

    bool anyRetired = false;
    for (const PoolCut& pc : cutPool_)
        if (pc.retired) {
            anyRetired = true;
            break;
        }

    // Overflow pruning down to "separating/maxpoolsize". The keep-set is
    // chosen by greedy dual-magnitude + orthogonality selection: a cut's
    // base score |y_i| * ||a_i||_2 measures how hard the last optimal basis
    // leaned on it (scale-invariant: scaling a row scales its dual
    // inversely), and the orthogonality term keeps the survivors from being
    // near-parallel copies of one strong cut — a bundle of parallel binding
    // rows prices like one row but costs many. The dual magnitudes come
    // from each cut's cached last-fresh price (PoolCut::lastDual, refreshed
    // by the aging loop above whenever the duals are fresh), so the rule
    // stays active even when the *current* duals are stale — the old code
    // degraded to age-based eviction then. Only when no cut has ever been
    // priced by a fresh basis (lastDual < 0 everywhere) does the fallback
    // drop long-non-binding cuts (age >= 2, oldest first), as many as
    // needed.
    const int maxPool = params_.getInt("separating/maxpoolsize", 300);
    const int overflow = static_cast<int>(cutPool_.size()) - maxPool;
    std::vector<char> drop(cutPool_.size(), 0);
    int toDrop = 0;
    bool anyDualSeen = false;
    if (overflow > 0)
        for (const PoolCut& pc : cutPool_)
            if (!pc.retired && pc.lastDual >= 0.0) {
                anyDualSeen = true;
                break;
            }
    if (overflow > 0 && anyDualSeen) {
        std::vector<std::size_t> cand;   // non-retired pool indices
        std::vector<double> norm, base;  // ||a_i||_2, |y_i| * ||a_i||_2
        for (std::size_t i = 0; i < cutPool_.size(); ++i) {
            const PoolCut& pc = cutPool_[i];
            if (pc.retired) continue;
            double n2 = 0.0;
            for (const auto& [j, a] : pc.row.coefs) n2 += a * a;
            const double nrm = std::sqrt(std::max(n2, 1e-30));
            const double y = std::max(pc.lastDual, 0.0);
            cand.push_back(i);
            norm.push_back(nrm);
            base.push_back(y * nrm);
        }
        const int nKeep =
            std::max(0, static_cast<int>(cand.size()) - overflow);
        double maxBase = 0.0;
        for (double b : base) maxBase = std::max(maxBase, b);
        if (maxBase <= 0.0) maxBase = 1.0;  // all duals zero: pure diversity
        // Greedy keep-set: pick the best score = dual/maxDual + 0.5 * ortho,
        // where ortho starts at 1 and shrinks to min(ortho, 1 - |cos|)
        // against every already-kept row. Dot products go through a dense
        // scatter of the freshly kept row, O(sum nnz) per round.
        std::vector<double> ortho(cand.size(), 1.0);
        std::vector<char> kept(cand.size(), 0);
        std::vector<double> dense(static_cast<std::size_t>(model_.numVars()),
                                  0.0);
        for (int pick = 0; pick < nKeep; ++pick) {
            int best = -1;
            double bestScore = -1.0;
            for (std::size_t k = 0; k < cand.size(); ++k) {
                if (kept[k]) continue;
                const double s = base[k] / maxBase + 0.5 * ortho[k];
                if (s > bestScore) {
                    bestScore = s;
                    best = static_cast<int>(k);
                }
            }
            if (best < 0) break;
            kept[best] = 1;
            const Row& rb = cutPool_[cand[best]].row;
            for (const auto& [j, a] : rb.coefs) dense[j] = a;
            for (std::size_t k = 0; k < cand.size(); ++k) {
                if (kept[k]) continue;
                double dot = 0.0;
                for (const auto& [j, a] : cutPool_[cand[k]].row.coefs)
                    dot += a * dense[j];
                const double cosv =
                    std::fabs(dot) / (norm[best] * norm[k]);
                ortho[k] = std::min(ortho[k], 1.0 - std::min(cosv, 1.0));
            }
            for (const auto& [j, a] : rb.coefs) {
                (void)a;
                dense[j] = 0.0;
            }
        }
        for (std::size_t k = 0; k < cand.size(); ++k)
            if (!kept[k]) {
                drop[cand[k]] = 1;
                ++toDrop;
            }
    } else if (overflow > 0) {
        std::vector<std::pair<int, std::size_t>> byAge;
        for (std::size_t i = 0; i < cutPool_.size(); ++i)
            if (!cutPool_[i].retired && cutPool_[i].age >= 2)
                byAge.emplace_back(cutPool_[i].age, i);
        std::stable_sort(byAge.begin(), byAge.end(),
                         [](const auto& a, const auto& b) {
                             return a.first > b.first;
                         });
        for (const auto& [age, i] : byAge) {
            if (toDrop >= overflow) break;
            (void)age;
            drop[i] = 1;
            ++toDrop;
        }
    }
    if (!anyRetired && toDrop == 0) return;

    std::vector<PoolCut> kept;
    kept.reserve(cutPool_.size() - static_cast<std::size_t>(toDrop));
    for (std::size_t i = 0; i < cutPool_.size(); ++i) {
        PoolCut& pc = cutPool_[i];
        if (pc.retired) {
            // Plugin-initiated retirement: the plugin already dropped the
            // cut from its own pool, no need to echo the token back.
            ++stats_.cutsRetired;
        } else if (drop[i]) {
            // Solver-initiated drop: report the token so pooling plugins
            // unregister the cut and can re-admit it if it re-violates.
            retiredTokens_.push_back(pc.token);
            ++stats_.cutsRetired;
        } else {
            kept.push_back(std::move(pc));
        }
    }
    cutPool_ = std::move(kept);
    // The LP still carries the dropped rows until the lazy rebuild; until
    // then no pool cut may claim an LP position (leaving the pre-prune row
    // ids in place here is exactly the stale-index bug this replaces).
    for (PoolCut& pc : cutPool_) pc.lpIndex = -1;
    lpBuilt_ = false;  // rebuilt lazily with the trimmed pool
}

int Solver::syncLpBounds() {
    if (!lpBuilt_) {
        buildLp();
        return model_.numVars();  // every bound is "new" to the fresh LP
    }
    const int n = model_.numVars();
    int changed = 0;
    for (int j = 0; j < n; ++j) {
        if (lpLb_[j] != curLb_[j] || lpUb_[j] != curUb_[j]) {
            lp_.changeBounds(j, curLb_[j], curUb_[j]);
            lpLb_[j] = curLb_[j];
            lpUb_[j] = curUb_[j];
            ++changed;
        }
    }
    return changed;
}

void Solver::syncLpStats() {
    stats_.lpFactorizations = lp_.factorizations();
    stats_.lpHyperSolves = lp_.hyperSolves();
    stats_.lpDenseSolves = lp_.denseSolves();
    stats_.lpSolveNnzSum = lp_.solveNnzSum();
}

lp::SolveStatus Solver::solveLp() {
    const int changedBounds = syncLpBounds();
    // Bound-change reoptimization (node jumps, branching, strong-branch
    // restores): devex restarts its reference weights and misprices the
    // early pivots, while DSE's exact row norms persist across the resolve.
    // Measured on the Steiner-cut LP family, DSE needs ~1.4-1.5x fewer
    // resolve iterations at every change depth from 1 to 64, so auto picks
    // it whenever any bound moved. Cold solves start in primal phase 1,
    // where the dual pricing rule is irrelevant — devex avoids DSE's extra
    // FTRAN per pivot in whatever dual cleanup follows.
    if (lpPricingAuto_)
        lp_.setPricing(changedBounds > 0 ? lp::Pricing::DSE
                                         : lp::Pricing::Devex);
    const long before = lp_.iterations();
    lp::SolveStatus st = lpSolutionValid_ ? lp_.resolve() : lp_.solve();
    lpSolutionValid_ = true;
    lpDualsFresh_ = (st == lp::SolveStatus::Optimal);
    const long used = lp_.iterations() - before;
    stats_.lpIterations += used;
    syncLpStats();
    pendingCost_ += used + 1;
    if (st == lp::SolveStatus::Optimal) lpObj_ = lp_.objective() + model_.objOffset;
    return st;
}

const std::vector<double>& Solver::lpDuals() const { return lp_.duals(); }
const std::vector<double>& Solver::lpRedcosts() const {
    return lp_.reducedCosts();
}
const std::vector<double>& Solver::lpPrimal() const { return lp_.primal(); }

// ---------------------------------------------------------------------------
// Bounds / propagation
// ---------------------------------------------------------------------------

ReduceResult Solver::tightenLb(int var, double v) {
    if (model_.var(var).isInt) v = std::ceil(v - kIntTol);
    if (v <= curLb_[var] + kBoundTol) return ReduceResult::Unchanged;
    curLb_[var] = v;
    if (curLb_[var] > curUb_[var] + kBoundTol) return ReduceResult::Infeasible;
    return ReduceResult::Reduced;
}

ReduceResult Solver::tightenUb(int var, double v) {
    if (model_.var(var).isInt) v = std::floor(v + kIntTol);
    if (v >= curUb_[var] - kBoundTol) return ReduceResult::Unchanged;
    curUb_[var] = v;
    if (curLb_[var] > curUb_[var] + kBoundTol) return ReduceResult::Infeasible;
    return ReduceResult::Reduced;
}

ReduceResult Solver::linearPropagation() {
    bool reduced = false;
    for (int i = 0; i < model_.numRows(); ++i) {
        const Row& row = model_.row(i);
        // Min/max activity from current bounds.
        double minAct = 0.0, maxAct = 0.0;
        bool minInf = false, maxInf = false;
        for (const auto& [j, a] : row.coefs) {
            const double lo = a > 0 ? curLb_[j] : curUb_[j];
            const double hi = a > 0 ? curUb_[j] : curLb_[j];
            if (lo <= -kInf || lo >= kInf)
                minInf = true;
            else
                minAct += a * lo;
            if (hi >= kInf || hi <= -kInf)
                maxInf = true;
            else
                maxAct += a * hi;
        }
        if (!minInf && minAct > row.rhs + kFeasTol) return ReduceResult::Infeasible;
        if (!maxInf && maxAct < row.lhs - kFeasTol) return ReduceResult::Infeasible;
        // Tighten each variable against both row sides.
        for (const auto& [j, a] : row.coefs) {
            if (a == 0.0) continue;
            const double lo = a > 0 ? curLb_[j] : curUb_[j];
            const double hi = a > 0 ? curUb_[j] : curLb_[j];
            // Upper side: a_j x_j <= rhs - (minAct - contribution of j).
            if (!minInf && row.rhs < kInf) {
                const double rest = minAct - a * lo;
                const double limit = (row.rhs - rest) / a;
                ReduceResult r = a > 0 ? tightenUb(j, limit) : tightenLb(j, limit);
                if (r == ReduceResult::Infeasible) return r;
                reduced |= (r == ReduceResult::Reduced);
            }
            // Lower side: a_j x_j >= lhs - (maxAct - contribution of j).
            if (!maxInf && row.lhs > -kInf) {
                const double rest = maxAct - a * hi;
                const double limit = (row.lhs - rest) / a;
                ReduceResult r = a > 0 ? tightenLb(j, limit) : tightenUb(j, limit);
                if (r == ReduceResult::Infeasible) return r;
                reduced |= (r == ReduceResult::Reduced);
            }
        }
    }
    return reduced ? ReduceResult::Reduced : ReduceResult::Unchanged;
}

ReduceResult Solver::reducedCostFixing() {
    // Requires a solved LP and a finite cutoff.
    if (cutoff_ >= kInf || !lpSolutionValid_) return ReduceResult::Unchanged;
    if (!params_.getBool("propagating/redcostfix", true))
        return ReduceResult::Unchanged;
    // Frequency gate: run at nodes with depth % freq == 0 (freq<=0: root
    // only), matching the convention of the other frequency parameters.
    const int freq = params_.getInt("propagating/redcostfreq", 1);
    const int depth = processing_ ? processing_->depth : 0;
    if (freq <= 0 ? depth != 0 : depth % freq != 0)
        return ReduceResult::Unchanged;
    const double gapAbs = cutoff_ - cutoffSlack() - lpObj_;
    if (gapAbs <= 0) return ReduceResult::Unchanged;
    ++stats_.redcostCalls;
    // Cutoff-derived tightenings stay valid in the whole subtree (the
    // incumbent only improves below this node), so children may inherit
    // them through the subproblem description instead of rediscovering
    // them from scratch at every descendant.
    const bool inherit = params_.getBool("propagating/redcostinherit", true);
    bool reduced = false;
    const auto& rc = lp_.reducedCosts();
    const auto& x = lp_.primal();
    const int n = model_.numVars();
    for (int j = 0; j < n && j < static_cast<int>(rc.size()); ++j) {
        if (curUb_[j] - curLb_[j] < kBoundTol) continue;
        // Nonbasic at lower with positive reduced cost: raising x_j by t
        // costs rc[j] * t; fix ub if even max useful move exceeds the gap.
        // Note the tightened bound always stays on the far side of the
        // current LP value (maxMove >= 0 from the nonbasic bound), so these
        // reductions never exclude the LP optimum.
        ReduceResult r = ReduceResult::Unchanged;
        if (rc[j] > 1e-9 && x[j] <= curLb_[j] + kIntTol) {
            const double maxMove = gapAbs / rc[j];
            r = tightenUb(j, curLb_[j] + maxMove);
        } else if (rc[j] < -1e-9 && x[j] >= curUb_[j] - kIntTol) {
            const double maxMove = gapAbs / (-rc[j]);
            r = tightenLb(j, curUb_[j] - maxMove);
        }
        if (r == ReduceResult::Infeasible) return r;
        if (r == ReduceResult::Reduced) {
            reduced = true;
            ++stats_.redcostTightenings;
            if (curUb_[j] - curLb_[j] < kBoundTol) ++stats_.redcostFixings;
            if (inherit) recordInheritedBound(j);
        }
    }
    return reduced ? ReduceResult::Reduced : ReduceResult::Unchanged;
}

ReduceResult Solver::propagateRounds() {
    const int maxRounds = params_.getInt("propagating/maxrounds", 5);
    bool any = false;
    for (int round = 0; round < maxRounds; ++round) {
        bool reduced = false;
        ReduceResult r = linearPropagation();
        if (r == ReduceResult::Infeasible) return r;
        reduced |= (r == ReduceResult::Reduced);
        for (auto& p : propagators_) {
            r = p->propagate(*this);
            if (r == ReduceResult::Infeasible) return r;
            reduced |= (r == ReduceResult::Reduced);
        }
        if (!reduced) break;
        any = true;
    }
    return any ? ReduceResult::Reduced : ReduceResult::Unchanged;
}

// ---------------------------------------------------------------------------
// Solutions
// ---------------------------------------------------------------------------

bool Solver::isIntegral(const std::vector<double>& x) const {
    for (int j = 0; j < model_.numVars(); ++j) {
        if (!model_.var(j).isInt) continue;
        const double f = x[j] - std::floor(x[j]);
        if (f > kIntTol && f < 1.0 - kIntTol) return false;
    }
    return true;
}

bool Solver::checkSolutionFeasible(const std::vector<double>& x, double* objOut) {
    if (static_cast<int>(x.size()) != model_.numVars()) return false;
    double obj = model_.objOffset;
    for (int j = 0; j < model_.numVars(); ++j) {
        const Var& v = model_.var(j);
        if (x[j] < v.lb - kFeasTol || x[j] > v.ub + kFeasTol) return false;
        if (v.isInt) {
            const double f = x[j] - std::floor(x[j]);
            if (f > kIntTol && f < 1.0 - kIntTol) return false;
        }
        obj += v.obj * x[j];
    }
    for (int i = 0; i < model_.numRows(); ++i) {
        const Row& r = model_.row(i);
        const double a = r.activity(x);
        if (a < r.lhs - kFeasTol || a > r.rhs + kFeasTol) return false;
    }
    for (auto& h : conshdlrs_)
        if (!h->check(*this, x)) return false;
    if (objOut) *objOut = obj;
    return true;
}

bool Solver::submitSolution(Solution sol) {
    // Snap integers to exact values first.
    for (int j = 0; j < model_.numVars() &&
                    j < static_cast<int>(sol.x.size());
         ++j)
        if (model_.var(j).isInt) sol.x[j] = std::round(sol.x[j]);
    double obj = 0.0;
    if (!checkSolutionFeasible(sol.x, &obj)) return false;
    if (incumbent_.valid() && obj >= incumbent_.obj - 1e-9) return false;
    sol.obj = obj;
    incumbent_ = sol;
    cutoff_ = obj;
    ++stats_.solutionsFound;
    for (auto& e : eventhdlrs_) e->onIncumbent(*this, incumbent_);
    if (incumbentCallback_) incumbentCallback_(incumbent_);
    pruneOpenNodes();
    return true;
}

void Solver::injectSolution(const Solution& sol) {
    if (!sol.valid()) return;
    if (incumbent_.valid() && sol.obj >= incumbent_.obj - 1e-12) return;
    // Trust transferred solutions only if they verify locally; a transferred
    // solution can be infeasible for a *subproblem*'s bounds, in which case
    // we still adopt its objective as a cutoff.
    Solution s = sol;
    double obj = 0.0;
    if (checkSolutionFeasible(s.x, &obj)) {
        s.obj = obj;
        if (!incumbent_.valid() || obj < incumbent_.obj - 1e-12) {
            incumbent_ = s;
            cutoff_ = obj;
            ++stats_.solutionsFound;
            pruneOpenNodes();
        }
    } else {
        cutoff_ = std::min(cutoff_, sol.obj);
        pruneOpenNodes();
    }
}

void Solver::pruneOpenNodes() {
    if (cutoff_ >= kInf) return;
    const double limit = cutoff_ - cutoffSlack() + 1e-12;
    std::erase_if(open_, [&](const NodePtr& n) {
        return n->lowerBound >= limit;
    });
}

// ---------------------------------------------------------------------------
// Heuristics
// ---------------------------------------------------------------------------

std::optional<Solution> Solver::roundingHeuristic(const std::vector<double>& x) {
    Solution s;
    s.x = x;
    for (int j = 0; j < model_.numVars(); ++j)
        if (model_.var(j).isInt) s.x[j] = std::round(s.x[j]);
    double obj = 0.0;
    if (!checkSolutionFeasible(s.x, &obj)) return std::nullopt;
    s.obj = obj;
    return s;
}

std::optional<Solution> Solver::divingHeuristic(const std::vector<double>& x0) {
    // LP diving: repeatedly bound the most fractional integer variable to its
    // nearest integer and resolve, up to a depth limit. All bound changes are
    // rolled back afterwards.
    const int maxDepth = params_.getInt("heuristics/diving/maxdepth", 20);
    std::vector<double> saveLb = curLb_, saveUb = curUb_;
    std::vector<double> x = x0;
    std::optional<Solution> found;
    for (int d = 0; d < maxDepth; ++d) {
        const int j = mostFractionalVar(x);
        if (j < 0) {
            // Integral: candidate.
            Solution s;
            s.x = x;
            double obj = 0.0;
            for (int k = 0; k < model_.numVars(); ++k)
                if (model_.var(k).isInt) s.x[k] = std::round(s.x[k]);
            if (checkSolutionFeasible(s.x, &obj)) {
                s.obj = obj;
                found = s;
            }
            break;
        }
        const double v = std::round(x[j]);
        curLb_[j] = v;
        curUb_[j] = v;
        if (solveLp() != lp::SolveStatus::Optimal) break;
        if (cutoff_ < kInf && lpObj_ >= cutoff_ - cutoffSlack()) break;
        x = lp_.primal();
    }
    curLb_ = saveLb;
    curUb_ = saveUb;
    // Restore the LP to the node's state for subsequent separation.
    if (solveLp() != lp::SolveStatus::Optimal) lpSolutionValid_ = false;
    return found;
}

void Solver::runHeuristics(const std::vector<double>& relaxSol) {
    const int freq = params_.getInt("heuristics/freq", 5);
    const int depth = processing_ ? processing_->depth : 0;
    const bool runHere = freq > 0 ? (depth % freq == 0) : depth == 0;
    if (!runHere) return;
    if (auto s = roundingHeuristic(relaxSol)) submitSolution(std::move(*s));
    if (!relaxator_ && params_.getBool("heuristics/diving/enabled", true)) {
        if (auto s = divingHeuristic(relaxSol)) submitSolution(std::move(*s));
    }
    for (auto& h : heuristics_) {
        if (auto s = h->run(*this, relaxSol)) submitSolution(std::move(*s));
    }
}

// ---------------------------------------------------------------------------
// Branching
// ---------------------------------------------------------------------------

int Solver::mostFractionalVar(const std::vector<double>& x) const {
    int best = -1;
    double bestScore = kIntTol;
    for (int j = 0; j < model_.numVars(); ++j) {
        if (!model_.var(j).isInt) continue;
        const double f = x[j] - std::floor(x[j]);
        const double score = std::min(f, 1.0 - f);
        if (score > bestScore) {
            bestScore = score;
            best = j;
        }
    }
    return best;
}

int Solver::pseudocostVar(const std::vector<double>& x) const {
    int best = -1;
    double bestScore = -1.0;
    for (int j = 0; j < model_.numVars(); ++j) {
        if (!model_.var(j).isInt) continue;
        const double f = x[j] - std::floor(x[j]);
        if (f <= kIntTol || f >= 1.0 - kIntTol) continue;
        const PseudoCost& pc = pseudo_[j];
        const double upUnit =
            pc.upCount > 0 ? pc.upSum / pc.upCount
                           : std::fabs(model_.var(j).obj) + 1.0;
        const double downUnit =
            pc.downCount > 0 ? pc.downSum / pc.downCount
                             : std::fabs(model_.var(j).obj) + 1.0;
        const double up = upUnit * (1.0 - f);
        const double down = downUnit * f;
        const double score =
            std::max(up, 1e-6) * std::max(down, 1e-6);
        if (score > bestScore) {
            bestScore = score;
            best = j;
        }
    }
    return best;
}

int Solver::strongBranchingVar(const std::vector<double>& x) {
    if (!lpBuilt_ || !lpSolutionValid_) return -1;
    const int maxCands = params_.getInt("branching/strong/maxcands", 8);
    const long probeLimit = params_.getInt("branching/strong/iterlimit", 200);
    // Candidates: fractional integer variables, most fractional first.
    std::vector<std::pair<double, int>> cands;
    for (int j = 0; j < model_.numVars(); ++j) {
        if (!model_.var(j).isInt) continue;
        const double f = x[j] - std::floor(x[j]);
        if (f <= kIntTol || f >= 1.0 - kIntTol) continue;
        cands.emplace_back(std::min(f, 1.0 - f), j);
    }
    if (cands.empty()) return -1;
    std::sort(cands.rbegin(), cands.rend());
    if (static_cast<int>(cands.size()) > maxCands) cands.resize(maxCands);

    const lp::Basis preProbe = lp_.basis();
    if (!preProbe.valid()) return -1;
    const double baseObj = lpObj_;
    const long savedLimit = lp_.iterLimit();
    lp_.setIterLimit(probeLimit);

    int best = -1;
    double bestScore = -1.0;
    for (const auto& [fracScore, j] : cands) {
        (void)fracScore;
        const double f = x[j] - std::floor(x[j]);
        const double lb0 = lpLb_[j], ub0 = lpUb_[j];
        auto probe = [&](bool up) {
            if (up)
                lp_.changeBounds(j, std::ceil(x[j]), ub0);
            else
                lp_.changeBounds(j, lb0, std::floor(x[j]));
            const long before = lp_.iterations();
            const lp::SolveStatus st = lp_.resolve();
            const long used = lp_.iterations() - before;
            stats_.lpIterations += used;
            syncLpStats();
            pendingCost_ += used + 1;
            ++stats_.strongBranchProbes;
            double gain = 0.0;
            if (st == lp::SolveStatus::Infeasible)
                gain = 1e12;  // that child would be pruned outright
            else if (st == lp::SolveStatus::Optimal)
                gain = std::max(
                    0.0, lp_.objective() + model_.objOffset - baseObj);
            // Undo the probe: restore the bounds and the pre-probe basis
            // (one refactorization, zero pivots) instead of re-solving the
            // node LP from wherever the probe ended.
            lp_.changeBounds(j, lb0, ub0);
            if (!lp_.loadBasis(preProbe)) lp_.resolve();
            // Feed the observed per-unit gain into the pseudocosts.
            if (st == lp::SolveStatus::Optimal) {
                const double dist = up ? (1.0 - f) : f;
                if (dist > 1e-9) {
                    PseudoCost& pc = pseudo_[j];
                    if (up) {
                        pc.upSum += gain / dist;
                        ++pc.upCount;
                    } else {
                        pc.downSum += gain / dist;
                        ++pc.downCount;
                    }
                }
            }
            return gain;
        };
        const double down = probe(false);
        const double upg = probe(true);
        const double score = std::max(down, 1e-6) * std::max(upg, 1e-6);
        if (score > bestScore) {
            bestScore = score;
            best = j;
        }
    }
    lp_.setIterLimit(savedLimit);
    // The LP holds the restored pre-probe basis but its solution arrays are
    // stale (from the last probe): not a source of duals for cut aging.
    lpDualsFresh_ = false;
    return best;
}

void Solver::updatePseudocost(const Node& node, double lpObj) {
    if (node.branchVar < 0 || node.parentRelaxObj <= -kInf) return;
    const double gain = std::max(0.0, lpObj - node.parentRelaxObj);
    PseudoCost& pc = pseudo_[node.branchVar];
    const double frac = node.branchUp ? (1.0 - node.branchFrac) : node.branchFrac;
    if (frac < 1e-9) return;
    if (node.branchUp) {
        pc.upSum += gain / frac;
        ++pc.upCount;
    } else {
        pc.downSum += gain / frac;
        ++pc.downCount;
    }
}

void Solver::branchOn(const BranchDecision& dec, const std::vector<double>& x) {
    const Node& parent = *processing_;
    // Snapshot the node's final LP basis once; all children share it as
    // their warm-start point (lp::Basis is immutable after creation).
    std::shared_ptr<const lp::Basis> snap;
    if (lpBuilt_ && lpSolutionValid_ &&
        params_.getBool("lp/warmstart", true)) {
        lp::Basis b = lp_.basis();
        if (b.valid()) snap = std::make_shared<const lp::Basis>(std::move(b));
    }
    auto makeChild = [&]() {
        auto child = std::make_unique<Node>();
        child->id = nextNodeId_++;
        child->depth = parent.depth + 1;
        child->lowerBound = parent.lowerBound;
        child->estimate = parent.lowerBound;
        child->desc = parent.desc;
        child->desc.lowerBound = parent.lowerBound;
        child->parentRelaxObj = parent.lowerBound;
        child->warmBasis = snap;
        stats_.maxDepth = std::max(stats_.maxDepth, child->depth);
        ++stats_.nodesCreated;
        return child;
    };

    if (dec.isVarBranch()) {
        const int j = dec.var;
        const double v = dec.point;
        const double f = v - std::floor(v);
        // Down child: x_j <= floor(v).
        auto down = makeChild();
        down->desc.boundChanges.push_back(
            {j, curLb_[j], std::floor(v)});
        down->branchVar = j;
        down->branchFrac = f;
        down->branchUp = false;
        // Up child: x_j >= ceil(v).
        auto up = makeChild();
        up->desc.boundChanges.push_back({j, std::ceil(v), curUb_[j]});
        up->branchVar = j;
        up->branchFrac = f;
        up->branchUp = true;
        // Plunge order: process the child on the side of the LP value first
        // under DFS (pushed last).
        if (f > 0.5) {
            open_.push_back(std::move(down));
            open_.push_back(std::move(up));
        } else {
            open_.push_back(std::move(up));
            open_.push_back(std::move(down));
        }
        (void)x;
        return;
    }

    for (const BranchDecision::Child& c : dec.children) {
        auto child = makeChild();
        for (const BoundChange& bc : c.boundChanges)
            child->desc.boundChanges.push_back(bc);
        for (const CustomBranch& cb : c.customBranches)
            child->desc.customBranches.push_back(cb);
        open_.push_back(std::move(child));
    }
}

// ---------------------------------------------------------------------------
// Node selection
// ---------------------------------------------------------------------------

NodePtr Solver::popNextNode() {
    if (open_.empty()) return nullptr;
    const std::string sel = params_.getString("nodeselection", "bestbound");
    std::size_t pick = open_.size() - 1;  // dfs default: newest node
    if (sel == "bestbound") {
        double best = kInf;
        for (std::size_t i = 0; i < open_.size(); ++i) {
            if (open_[i]->lowerBound < best - 1e-12 ||
                (open_[i]->lowerBound < best + 1e-12 &&
                 open_[i]->depth > open_[pick]->depth)) {
                best = open_[i]->lowerBound;
                pick = i;
            }
        }
    } else if (sel == "estimate") {
        double best = kInf;
        for (std::size_t i = 0; i < open_.size(); ++i) {
            if (open_[i]->estimate < best) {
                best = open_[i]->estimate;
                pick = i;
            }
        }
    }
    NodePtr node = std::move(open_[pick]);
    open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(pick));
    return node;
}

void Solver::applyNodeBounds(const Node& node) {
    curLb_ = rootLb_;
    curUb_ = rootUb_;
    for (const BoundChange& bc : node.desc.boundChanges) {
        curLb_[bc.var] = std::max(curLb_[bc.var], bc.lb);
        curUb_[bc.var] = std::min(curUb_[bc.var], bc.ub);
    }
    for (auto& h : conshdlrs_) h->nodeActivated(*this);
}

// ---------------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------------

bool Solver::finished() const { return phase_ == Phase::Done; }

void Solver::finishIfDone() {
    if (phase_ == Phase::Done) return;
    if (interrupt_ && interrupt_->load(std::memory_order_relaxed)) {
        status_ = Status::Interrupted;
        phase_ = Phase::Done;
        return;
    }
    const double nodeLimit = params_.getReal("limits/nodes", 1e18);
    if (static_cast<double>(stats_.nodesProcessed) >= nodeLimit) {
        status_ = Status::NodeLimit;
        phase_ = Phase::Done;
        return;
    }
    const double costLimit = params_.getReal("limits/cost", 1e18);
    if (static_cast<double>(stats_.totalCost) >= costLimit) {
        status_ = Status::CostLimit;
        phase_ = Phase::Done;
        return;
    }
    const double gapLimit = params_.getReal("limits/gap", 0.0);
    if (gapLimit > 0.0 && gap() <= gapLimit) {
        status_ = Status::GapLimit;
        phase_ = Phase::Done;
        return;
    }
    if (open_.empty() && !processing_) {
        status_ = incumbent_.valid() ? Status::Optimal : Status::Infeasible;
        phase_ = Phase::Done;
    }
}

std::int64_t Solver::step() {
    if (phase_ == Phase::Setup) initSolve();
    if (phase_ == Phase::Done) return 0;
    pendingCost_ = 0;

    finishIfDone();
    if (phase_ == Phase::Done) return 0;

    processing_ = popNextNode();
    if (!processing_) {
        finishIfDone();
        return 0;
    }
    Node& node = *processing_;
    const bool isRootNode = (stats_.nodesProcessed == 0);
    ++stats_.nodesProcessed;
    pendingCost_ += 1;

    auto leaveNode = [&]() {
        processing_.reset();
        stats_.totalCost += pendingCost_;
        if (isRootNode) stats_.rootCost = pendingCost_;
        for (auto& e : eventhdlrs_) e->onNodeProcessed(*this);
        finishIfDone();
    };

    // Cutoff check on entry.
    if (cutoff_ < kInf && node.lowerBound >= cutoff_ - cutoffSlack() + 1e-12) {
        leaveNode();
        return pendingCost_;
    }

    manageCutPool();
    applyNodeBounds(node);

    // Domain propagation.
    if (propagateRounds() == ReduceResult::Infeasible) {
        leaveNode();
        return pendingCost_;
    }

    // Relaxation loop.
    std::vector<double> relaxSol;
    bool pruned = false;
    if (relaxator_) {
        RelaxResult rr = relaxator_->solveRelaxation(*this);
        if (rr.status == RelaxResult::Status::Infeasible) {
            pruned = true;
        } else if (rr.status == RelaxResult::Status::Solved) {
            node.lowerBound = std::max(node.lowerBound, rr.bound);
            updatePseudocost(node, rr.bound);
            if (cutoff_ < kInf &&
                node.lowerBound >= cutoff_ - cutoffSlack() + 1e-12)
                pruned = true;
            else
                relaxSol = std::move(rr.x);
        } else {
            // Relaxator failed (numerical breakdown). Shrink the domain by
            // branching on an unfixed integer variable so the subproblems
            // get easier; a node with every integer fixed is dropped and
            // counted — coverage of such a node cannot be certified.
            int j = -1;
            for (int v = 0; v < model_.numVars(); ++v) {
                if (model_.var(v).isInt && curUb_[v] - curLb_[v] > 0.5) {
                    j = v;
                    break;
                }
            }
            if (j >= 0) {
                BranchDecision dec;
                dec.var = j;
                dec.point = 0.5 * (curLb_[j] + curUb_[j]);
                // Guard against an integral midpoint (floor==ceil children).
                if (dec.point == std::floor(dec.point)) dec.point += 0.5;
                std::vector<double> dummy(model_.numVars(), 0.0);
                branchOn(dec, dummy);
            } else {
                ++stats_.numericalFailures;
            }
            pruned = true;
        }
    } else {
        // Warm start: restore the parent's optimal basis before the first
        // LP of this node. Under DFS plunging the LP often still holds that
        // basis, but after a best-bound jump this is what turns the node's
        // first solve into a short dual reoptimization instead of a cold
        // phase-1/2 run.
        if (node.warmBasis && params_.getBool("lp/warmstart", true)) {
            syncLpBounds();  // may rebuild the LP if the cut pool changed
            if (lpBuilt_ && lp_.loadBasis(*node.warmBasis)) {
                lpSolutionValid_ = true;
                ++stats_.basisWarmStarts;
            }
        }
        // Deeper nodes separate less aggressively (cuts are most valuable
        // near the root, and every extra row makes the LP pricier).
        const int maxSepaRounds =
            node.depth == 0
                ? params_.getInt("separating/maxroundsroot",
                                 2 * params_.getInt("separating/maxrounds", 10))
                : params_.getInt("separating/maxrounds", 10);
        int round = 0;
        double lastObj = -kInf;
        while (true) {
            lp::SolveStatus st = solveLp();
            if (st == lp::SolveStatus::Infeasible) {
                pruned = true;
                break;
            }
            if (st == lp::SolveStatus::Unbounded) {
                // Only possible at the root of a bounded MIP with unbounded
                // relaxation; treat as unbounded problem.
                status_ = Status::Unbounded;
                phase_ = Phase::Done;
                processing_.reset();
                return pendingCost_;
            }
            if (st != lp::SolveStatus::Optimal) {
                pruned = true;  // numerical trouble: drop the node (safe only
                                // with a finite cutoff; rare at our scale)
                break;
            }
            node.lowerBound = std::max(node.lowerBound, lpObj_);
            if (round == 0) updatePseudocost(node, lpObj_);
            if (cutoff_ < kInf &&
                node.lowerBound >= cutoff_ - cutoffSlack() + 1e-12) {
                pruned = true;
                break;
            }
            relaxSol = lp_.primal();

            // Reduced-cost fixing. Every bound it tightens stops at or
            // beyond the variable's current (nonbasic) LP value, so the LP
            // optimum stays feasible and no re-solve is needed — the new
            // bounds reach the LP with the next syncLpBounds(). The
            // "propagating/redcostresolve" escape hatch restores the old
            // resolve-after-fixing behavior bit-for-bit.
            const ReduceResult rcf = reducedCostFixing();
            if (rcf == ReduceResult::Infeasible) {
                pruned = true;
                break;
            }
            if (rcf == ReduceResult::Reduced &&
                params_.getBool("propagating/redcostresolve", false))
                continue;

            // LP-aware plugin propagation (same contract: reductions must
            // keep the current LP optimum feasible, see Propagator docs).
            if (cutoff_ < kInf && lpDualsFresh_) {
                bool lpPropInfeas = false;
                for (auto& p : propagators_) {
                    const ReduceResult r = p->propagateLp(*this);
                    if (r == ReduceResult::Infeasible) {
                        lpPropInfeas = true;
                        break;
                    }
                }
                if (lpPropInfeas) {
                    pruned = true;
                    break;
                }
            }

            if (round >= maxSepaRounds) break;
            // Separation: plugins first, then constraint handlers.
            dropPendingCuts();
            int cuts = 0;
            for (auto& s : separators_) cuts += s->separate(*this, relaxSol);
            for (auto& h : conshdlrs_) cuts += h->separate(*this, relaxSol);
            if (cuts == 0) break;
            stats_.cutsAdded += cuts;
            lp::SolveStatus rst = lp::SolveStatus::Optimal;
            if (!pendingCuts_.empty()) {
                rst = flushPendingCutsToLp();
            } else {
                // Cuts were contributed as managed rows (already in the LP);
                // re-optimize against them.
                const long before = lp_.iterations();
                rst = lp_.resolve();
                stats_.lpIterations += lp_.iterations() - before;
                syncLpStats();
                pendingCost_ += lp_.iterations() - before;
                lpDualsFresh_ = (rst == lp::SolveStatus::Optimal);
            }
            if (rst == lp::SolveStatus::Infeasible) {
                pruned = true;
                break;
            }
            if (rst != lp::SolveStatus::Optimal) break;
            lpObj_ = lp_.objective() + model_.objOffset;
            ++round;
            // LP-leanness sample: rows the LP carries after this round
            // (model rows + surviving pool cuts + managed rows).
            ++stats_.sepaRounds;
            stats_.sepaLpRowsSum += lp_.numRows();
            // Tailing off: stop separating on negligible improvement.
            // A negative threshold disables the stall exit, so separation
            // runs to its fixpoint (no violated cuts) or the round limit.
            const double tailOff =
                params_.getReal("separating/tailoffeps", 1e-7);
            if (tailOff >= 0.0 && lpObj_ < lastObj + tailOff && round > 2) {
                node.lowerBound = std::max(node.lowerBound, lpObj_);
                relaxSol = lp_.primal();
                break;
            }
            lastObj = lpObj_;
        }
    }

    if (pruned || relaxSol.empty()) {
        leaveNode();
        return pendingCost_;
    }

    // Primal heuristics.
    runHeuristics(relaxSol);
    if (cutoff_ < kInf && node.lowerBound >= cutoff_ - cutoffSlack() + 1e-12) {
        leaveNode();
        return pendingCost_;
    }

    // Integral? Then constraint handlers decide feasibility.
    if (isIntegral(relaxSol)) {
        bool allOk = true;
        for (auto& h : conshdlrs_) {
            if (!h->check(*this, relaxSol)) {
                allOk = false;
                break;
            }
        }
        if (allOk) {
            Solution s;
            s.x = relaxSol;
            submitSolution(std::move(s));
            leaveNode();
            return pendingCost_;
        }
        // Integral but violated: let handlers enforce (cut or branch).
        BranchDecision dec;
        int enforceCuts = 0;
        dropPendingCuts();
        for (auto& h : conshdlrs_) {
            enforceCuts += h->enforce(*this, relaxSol, dec);
            if (!dec.empty()) break;
        }
        if (enforceCuts > 0 && !lpBuilt_) {
            // No LP to carry cuts (relaxator mode): cuts cannot help here.
            dropPendingCuts();
            enforceCuts = 0;
        }
        if (enforceCuts > 0) {
            // Re-queue this node with its cuts in the pool (managed-row cuts
            // are already in the LP).
            stats_.cutsAdded += enforceCuts;
            flushPendingCutsToLp();
            auto requeue = std::make_unique<Node>();
            *requeue = node;
            requeue->id = nextNodeId_++;
            open_.push_back(std::move(requeue));
            leaveNode();
            return pendingCost_;
        }
        if (!dec.empty()) {
            branchOn(dec, relaxSol);
            leaveNode();
            return pendingCost_;
        }
        // Handler reported violation but offered no remedy: drop node to
        // avoid an infinite loop (counts as numerical failure).
        leaveNode();
        return pendingCost_;
    }

    // Fractional: branch. Plugin rules first.
    BranchDecision dec;
    for (auto& b : branchrules_) {
        dec = b->branch(*this, relaxSol);
        if (!dec.empty()) break;
    }
    if (dec.empty()) {
        const std::string rule = params_.getString("branching", "pseudocost");
        int j = -1;
        if (rule == "strong") j = strongBranchingVar(relaxSol);
        if (j < 0 && (rule == "pseudocost" || rule == "strong"))
            j = pseudocostVar(relaxSol);
        if (j < 0) j = mostFractionalVar(relaxSol);
        if (j >= 0) {
            dec.var = j;
            dec.point = relaxSol[j];
        }
    }
    if (!dec.empty()) {
        // Children inherit this node's relaxation bound for pseudocosts.
        branchOn(dec, relaxSol);
    }
    // If no branching candidate exists the solution must have been integral
    // (handled above); reaching here with dec.empty() means the relaxation
    // is integral-feasible for all handlers -> already submitted.
    leaveNode();
    return pendingCost_;
}

Status Solver::solve() {
    initSolve();
    while (!finished()) step();
    return status_;
}

std::optional<SubproblemDesc> Solver::extractOpenNode() {
    if (open_.empty()) return std::nullopt;
    // Heavy candidate: best (lowest) bound, tie-broken by lowest depth.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < open_.size(); ++i) {
        if (open_[i]->lowerBound < open_[pick]->lowerBound - 1e-12 ||
            (std::fabs(open_[i]->lowerBound - open_[pick]->lowerBound) <=
                 1e-12 &&
             open_[i]->depth < open_[pick]->depth))
            pick = i;
    }
    SubproblemDesc desc = std::move(open_[pick]->desc);
    desc.lowerBound = open_[pick]->lowerBound;
    open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(pick));
    return desc;
}

std::int64_t Solver::addCut(Row row) {
    const std::int64_t token = nextCutToken_++;
    pendingCuts_.push_back(std::move(row));
    pendingCutTokens_.push_back(token);
    return token;
}

void Solver::retireCuts(const std::vector<std::int64_t>& tokens) {
    for (const std::int64_t tok : tokens) {
        bool found = false;
        for (std::size_t k = 0; k < pendingCutTokens_.size(); ++k) {
            if (pendingCutTokens_[k] == tok) {
                // Never reached the LP: drop it outright.
                pendingCuts_.erase(pendingCuts_.begin() +
                                   static_cast<std::ptrdiff_t>(k));
                pendingCutTokens_.erase(pendingCutTokens_.begin() +
                                        static_cast<std::ptrdiff_t>(k));
                ++stats_.cutsRetired;
                found = true;
                break;
            }
        }
        if (found) continue;
        for (PoolCut& pc : cutPool_) {
            if (pc.token == tok) {
                pc.retired = true;  // removed at the next manageCutPool()
                break;
            }
        }
    }
}

std::vector<std::int64_t> Solver::takeRetiredCutTokens() {
    std::vector<std::int64_t> out = std::move(retiredTokens_);
    retiredTokens_.clear();
    return out;
}

void Solver::dropPendingCuts() {
    // Pending cuts discarded before any LP flush (relaxator mode): report
    // their tokens so pooling plugins unregister them — the pool must only
    // mirror cuts that actually live in the solver.
    for (const std::int64_t tok : pendingCutTokens_)
        retiredTokens_.push_back(tok);
    pendingCuts_.clear();
    pendingCutTokens_.clear();
}

bool Solver::cutLpBindingConsistent() const {
    std::vector<char> used;
    if (lpBuilt_) used.assign(static_cast<std::size_t>(lp_.numRows()), 0);
    for (const PoolCut& pc : cutPool_) {
        if (!lpBuilt_) {
            if (pc.lpIndex != -1) return false;
            continue;
        }
        if (pc.lpIndex < 0 || pc.lpIndex >= lp_.numRows()) return false;
        if (used[static_cast<std::size_t>(pc.lpIndex)]) return false;
        used[static_cast<std::size_t>(pc.lpIndex)] = 1;
    }
    return true;
}

int Solver::addManagedRow(Row row) {
    // Managed rows start inactive: free on both sides.
    row.lhs = -kInf;
    row.rhs = kInf;
    ManagedRow mr;
    mr.row = std::move(row);
    if (lpBuilt_) {
        const long before = lp_.iterations();
        const lp::SolveStatus st = lp_.addRowsAndResolve({mr.row});
        stats_.lpIterations += lp_.iterations() - before;
        syncLpStats();
        pendingCost_ += lp_.iterations() - before;
        lpDualsFresh_ = (st == lp::SolveStatus::Optimal);
        mr.lpIndex = lp_.numRows() - 1;
    }
    managedRows_.push_back(std::move(mr));
    return static_cast<int>(managedRows_.size()) - 1;
}

void Solver::setManagedRowBounds(int handle, double lhs, double rhs) {
    ManagedRow& mr = managedRows_[handle];
    mr.row.lhs = lhs;
    mr.row.rhs = rhs;
    if (lpBuilt_ && mr.lpIndex >= 0)
        lp_.changeRowBounds(mr.lpIndex, lhs, rhs);
}

}  // namespace cip
